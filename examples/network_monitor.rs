//! Network monitoring (paper §2: "network management applications …
//! need to monitor transit traffic at routers, and to gather and report
//! various statistics … it is important to be able to quickly and easily
//! change the kinds of statistics being collected").
//!
//! Demonstrates: binding a stats instance to *selected* flows only,
//! re-targeting the monitoring at run time without touching the data
//! path, and flow-cache idle expiry folding finished flows into the
//! long-term report.
//!
//! Run with: `cargo run --example network_monitor`

use router_plugins::core::plugins::register_builtin_factories;
use router_plugins::core::pmgr::{run_command, run_script};
use router_plugins::core::{Router, RouterConfig};
use router_plugins::netsim::traffic::v6_host;
use router_plugins::packet::builder::PacketSpec;
use router_plugins::packet::Mbuf;

fn burst(router: &mut Router, sport: u16, dport: u16, n: usize) {
    let pkt = PacketSpec::udp(v6_host(1), v6_host(100), sport, dport, 200).build();
    for _ in 0..n {
        router.receive(Mbuf::new(pkt.clone(), 0));
    }
}

fn main() {
    let mut router = Router::new(RouterConfig {
        verify_checksums: false,
        ..RouterConfig::default()
    });
    register_builtin_factories(&mut router.loader);
    run_script(
        &mut router,
        "
        route 2001:db8::/32 1
        load stats
        create stats          # instance 0: watches DNS only
        create stats          # instance 1: watches web only
        bind stats stats 0 <*, *, UDP, *, 53, *>
        bind stats stats 1 <*, *, UDP, *, 80, *>
        ",
    )
    .unwrap();

    println!("phase 1: DNS and web monitored by separate instances");
    burst(&mut router, 5000, 53, 20);
    burst(&mut router, 5001, 80, 35);
    burst(&mut router, 5002, 9999, 50); // unmonitored traffic
    println!(
        "  dns monitor: {}",
        run_command(&mut router, "msg stats 0 report").unwrap()
    );
    println!(
        "  web monitor: {}",
        run_command(&mut router, "msg stats 1 report").unwrap()
    );

    println!("phase 2: re-target monitoring at run time (watch port 9999 instead of 80)");
    // Find instance 1's filter and move it — no data-path interruption.
    run_command(&mut router, "free stats 1").unwrap();
    run_script(
        &mut router,
        "create stats\nbind stats stats 2 <*, *, UDP, *, 9999, *>",
    )
    .unwrap();
    burst(&mut router, 5002, 9999, 15);
    println!(
        "  new monitor: {}",
        run_command(&mut router, "msg stats 2 report").unwrap()
    );

    println!("phase 3: idle expiry retires finished flows into the report");
    router.set_time_ns(60_000_000_000);
    let expired = router.expire_idle_flows(10_000_000_000);
    println!("  expired {expired} idle flows");
    println!(
        "  dns monitor: {}",
        run_command(&mut router, "msg stats 0 report").unwrap()
    );

    let f = router.flow_stats();
    println!(
        "flow cache after expiry: {} live / {} recycled / {} hits",
        f.live, f.recycled, f.hits
    );
    assert_eq!(f.live, 0);
    println!("network_monitor OK");
}
