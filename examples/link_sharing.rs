//! Link sharing with the weighted DRR plugin and the SSP daemon — the
//! demo the paper calls "extremely useful … for demonstrations of the
//! link-sharing capabilities of our architecture" (§6.1).
//!
//! Three best-effort flows share an interface fairly; then SSP grants one
//! of them a weight-4 reservation and its share quadruples — all while
//! traffic keeps flowing (plugins reconfigure at run time).
//!
//! Run with: `cargo run --example link_sharing`

use router_plugins::core::plugin::InstanceId;
use router_plugins::core::plugins::register_builtin_factories;
use router_plugins::core::pmgr::run_script;
use router_plugins::core::{Router, RouterConfig};
use router_plugins::netsim::ssp::SspDaemon;
use router_plugins::netsim::traffic::v6_host;
use router_plugins::packet::builder::PacketSpec;
use router_plugins::packet::{FlowTuple, Mbuf};
use std::collections::HashMap;

/// Offer one packet per flow per round, draining 1 packet per round
/// (a 3:1 overload), and count egress bytes per flow.
fn run_phase(router: &mut Router, flows: &[Vec<u8>], rounds: usize) -> HashMap<u16, u64> {
    let mut out: HashMap<u16, u64> = HashMap::new();
    for _ in 0..rounds {
        for f in flows {
            let _ = router.receive(Mbuf::new(f.clone(), 0));
        }
        router.pump(1, 1);
        for m in router.take_tx(1) {
            let t = FlowTuple::from_mbuf(&m).unwrap();
            *out.entry(t.sport).or_insert(0) += m.len() as u64;
        }
    }
    // Drain what's left without counting: phases stay independent.
    loop {
        if router.pump(1, 64) == 0 {
            break;
        }
        router.take_tx(1);
    }
    out
}

fn main() {
    let mut router = Router::new(RouterConfig {
        verify_checksums: false,
        ..RouterConfig::default()
    });
    register_builtin_factories(&mut router.loader);
    run_script(
        &mut router,
        "
        route 2001:db8::/32 1
        load drr
        create drr quantum=1500 limit=16
        attach 1 drr 0
        bind sched drr 0 <*, *, UDP, *, *, *>
        ",
    )
    .unwrap();

    let flows: Vec<Vec<u8>> = (0..3u16)
        .map(|i| PacketSpec::udp(v6_host(i + 1), v6_host(100), 7000 + i, 9000, 1000).build())
        .collect();

    println!("phase 1: three best-effort flows, equal weights");
    let shares = run_phase(&mut router, &flows, 3000);
    let total: u64 = shares.values().sum();
    for port in [7000u16, 7001, 7002] {
        let pct = 100.0 * *shares.get(&port).unwrap_or(&0) as f64 / total as f64;
        println!("  flow sport={port}: {pct:.1}% of egress bytes");
    }
    let f0 = *shares.get(&7000).unwrap() as f64 / total as f64;
    assert!((f0 - 1.0 / 3.0).abs() < 0.05, "fair share off: {f0}");

    println!("phase 2: SSP reserves weight 4 for flow 7000 (others stay 1)");
    let mut ssp = SspDaemon::new("drr", InstanceId(0), 100);
    let reserved_flow = FlowTuple {
        src: v6_host(1),
        dst: v6_host(100),
        proto: 17,
        sport: 7000,
        dport: 9000,
        rx_if: 0,
    };
    let session = ssp
        .reserve(&mut router, reserved_flow, 4)
        .expect("admission");
    let shares = run_phase(&mut router, &flows, 3000);
    let total: u64 = shares.values().sum();
    for port in [7000u16, 7001, 7002] {
        let pct = 100.0 * *shares.get(&port).unwrap_or(&0) as f64 / total as f64;
        println!("  flow sport={port}: {pct:.1}% of egress bytes");
    }
    let f0 = *shares.get(&7000).unwrap() as f64 / total as f64;
    assert!((f0 - 4.0 / 6.0).abs() < 0.06, "reserved share off: {f0}");

    println!("phase 3: reservation torn down, fairness returns");
    ssp.teardown(&mut router, session).unwrap();
    let shares = run_phase(&mut router, &flows, 3000);
    let total: u64 = shares.values().sum();
    let f0 = *shares.get(&7000).unwrap() as f64 / total as f64;
    println!("  flow sport=7000 back to {:.1}%", 100.0 * f0);
    assert!((f0 - 1.0 / 3.0).abs() < 0.05, "post-teardown share: {f0}");

    println!("link_sharing OK");
}
