//! Level-4 switching (paper §8 future work, implemented here): routing
//! decisions based on the *full six-tuple classification* rather than the
//! destination address alone — "by unifying routing and packet
//! classification, we get QoS-based routing / Level 4 switching for
//! free."
//!
//! Scenario: all traffic to a server normally leaves via interface 1, but
//! interactive DNS (UDP/53) is steered over a low-latency path on
//! interface 2, and one customer's web traffic is pinned to interface 3 —
//! policies no destination-based routing table can express.
//!
//! Run with: `cargo run --example l4_switching`

use router_plugins::core::plugins::register_builtin_factories;
use router_plugins::core::pmgr::run_script;
use router_plugins::core::{Router, RouterConfig};
use router_plugins::netsim::traffic::v6_host;
use router_plugins::packet::builder::PacketSpec;
use router_plugins::packet::Mbuf;

fn main() {
    let mut router = Router::new(RouterConfig {
        verify_checksums: false,
        ..RouterConfig::default()
    });
    register_builtin_factories(&mut router.loader);
    run_script(
        &mut router,
        "
        # destination routing: everything to the site via if1
        route 2001:db8::/32 1

        # L4 switching policies
        load l4route
        create l4route tx_if=2
        create l4route tx_if=3
        bind routing l4route 0 <*, *, UDP, *, 53, *>                # DNS → if2
        bind routing l4route 1 <2001:db8::42, *, TCP, *, 80, *>     # customer web → if3
        ",
    )
    .unwrap();

    let cases = [
        (
            "bulk UDP",
            PacketSpec::udp(v6_host(1), v6_host(100), 4000, 9000, 512),
            1u32,
        ),
        (
            "DNS query",
            PacketSpec::udp(v6_host(1), v6_host(100), 4000, 53, 64),
            2,
        ),
        (
            "customer web",
            PacketSpec::tcp(v6_host(0x42), v6_host(100), 5000, 80, 128),
            3,
        ),
        (
            "other web",
            PacketSpec::tcp(v6_host(7), v6_host(100), 5000, 80, 128),
            1,
        ),
    ];

    for (name, spec, want_if) in cases {
        let d = router.receive(Mbuf::new(spec.build(), 0));
        println!("{name:13} → {d:?}");
        let got = router.take_tx(want_if).len();
        assert_eq!(got, 1, "{name} should leave via if{want_if}");
    }

    // The decision is cached per flow: repeat DNS packets hit the flow
    // cache, not the filter tables.
    let before = router.flow_stats();
    for _ in 0..100 {
        let d = router.receive(Mbuf::new(
            PacketSpec::udp(v6_host(1), v6_host(100), 4000, 53, 64).build(),
            0,
        ));
        assert!(matches!(
            d,
            router_plugins::core::ip_core::Disposition::Forwarded(2)
        ));
    }
    let after = router.flow_stats();
    assert_eq!(after.misses - before.misses, 0, "flow was already cached");
    assert_eq!(after.hits - before.hits, 100);
    println!("100 follow-up DNS packets: all flow-cache hits, all via if2");
    println!("l4_switching OK");
}
