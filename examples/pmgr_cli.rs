//! `pmgr` — the Plugin Manager as an interactive command-line tool
//! (paper §3.1: "it can also be used to manually issue commands to
//! various plugins").
//!
//! Run with: `cargo run --example pmgr_cli`, then type commands:
//!
//! ```text
//! > load drr
//! > create drr quantum=9180
//! > attach 1 drr 0
//! > bind sched drr 0 <*, *, UDP, *, *, *>
//! > route 2001:db8::/32 1
//! > send 2001:db8::1 2001:db8::100 5000 6000   # inject a test packet
//! > info
//! > quit
//! ```

use router_plugins::core::plugins::register_builtin_factories;
use router_plugins::core::pmgr::run_command;
use router_plugins::core::{Router, RouterConfig};
use router_plugins::packet::builder::PacketSpec;
use router_plugins::packet::Mbuf;
use std::io::{self, BufRead, Write};

fn main() {
    let mut router = Router::new(RouterConfig {
        verify_checksums: false,
        ..RouterConfig::default()
    });
    register_builtin_factories(&mut router.loader);
    println!(
        "router-plugins pmgr. available modules: {}",
        router.loader.available().join(", ")
    );
    println!(
        "type pmgr commands; extra commands: send <src> <dst> <sport> <dport>, pump <if>, quit"
    );

    let stdin = io::stdin();
    loop {
        print!("> ");
        io::stdout().flush().ok();
        let Some(Ok(line)) = stdin.lock().lines().next() else {
            break;
        };
        let toks: Vec<&str> = line.split_whitespace().collect();
        match toks.first().copied() {
            None => continue,
            Some("quit") | Some("exit") => break,
            Some("send") => {
                if toks.len() != 5 {
                    println!("usage: send <src> <dst> <sport> <dport>");
                    continue;
                }
                let parse = || -> Option<Mbuf> {
                    let src = toks[1].parse().ok()?;
                    let dst = toks[2].parse().ok()?;
                    let sport = toks[3].parse().ok()?;
                    let dport = toks[4].parse().ok()?;
                    Some(Mbuf::new(
                        PacketSpec::udp(src, dst, sport, dport, 256).build(),
                        0,
                    ))
                };
                match parse() {
                    Some(m) => println!("{:?}", router.receive(m)),
                    None => println!("bad addresses/ports"),
                }
            }
            Some("pump") => {
                let iface: u32 = toks.get(1).and_then(|t| t.parse().ok()).unwrap_or(1);
                let n = router.pump(iface, 64);
                let tx = router.take_tx(iface);
                println!(
                    "pumped {n} packets ({} bytes)",
                    tx.iter().map(Mbuf::len).sum::<usize>()
                );
            }
            _ => match run_command(&mut router, &line) {
                Ok(out) if out.is_empty() => {}
                Ok(out) => println!("{out}"),
                Err(e) => println!("{e}"),
            },
        }
    }
    println!("bye");
}
