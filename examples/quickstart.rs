//! Quickstart: assemble an EISR, load plugins at run time, bind them to
//! flows, and forward packets.
//!
//! Run with: `cargo run --example quickstart`

use router_plugins::core::plugins::register_builtin_factories;
use router_plugins::core::pmgr::run_script;
use router_plugins::core::{Router, RouterConfig};
use router_plugins::netsim::traffic::v6_host;
use router_plugins::packet::builder::PacketSpec;
use router_plugins::packet::Mbuf;

fn main() {
    // 1. A router with every gate compiled in.
    let mut router = Router::new(RouterConfig::default());
    register_builtin_factories(&mut router.loader);

    // 2. Configuration, exactly as a boot script (or an operator at the
    //    pmgr prompt) would issue it — the paper's §6.1 flavour.
    let out = run_script(
        &mut router,
        "
        # routes
        route 2001:db8::/32 1

        # statistics on everything
        load stats
        create stats
        bind stats stats 0 <*, *, *, *, *, *>

        # a firewall instance denying TCP from one prefix
        load firewall
        create firewall action=deny
        bind fw firewall 0 <2001:db8::bad:0/112, *, TCP, *, *, *>

        # fair queueing on the egress interface
        load drr
        create drr quantum=9180 limit=64
        attach 1 drr 0
        bind sched drr 0 <*, *, UDP, *, *, *>
        ",
    )
    .expect("configuration script");
    for line in &out {
        println!("pmgr: {line}");
    }

    // 3. Traffic: a UDP flow (forwarded + scheduled), and a TCP packet
    //    from the banned prefix (dropped by the firewall plugin).
    let udp = PacketSpec::udp(v6_host(1), v6_host(100), 5000, 6000, 512).build();
    for i in 0..5 {
        let d = router.receive(Mbuf::new(udp.clone(), 0));
        println!("udp packet {i}: {d:?}");
    }
    let sent = router.pump(1, 16);
    println!("pumped {sent} packets out of the DRR queue on if1");

    let bad_src: std::net::IpAddr = "2001:db8::bad:1".parse().unwrap();
    let tcp = PacketSpec::tcp(bad_src, v6_host(100), 4000, 80, 64).build();
    let d = router.receive(Mbuf::new(tcp, 0));
    println!("tcp from banned prefix: {d:?}");

    // 4. Observability.
    println!(
        "stats plugin says: {}",
        run_script(&mut router, "msg stats 0 report").unwrap()[0]
    );
    let f = router.flow_stats();
    println!(
        "flow cache: {} live, {} hits, {} misses",
        f.live, f.hits, f.misses
    );
    let s = router.stats();
    println!(
        "data path: rx={} fwd={} plugin_drops={}",
        s.received, s.forwarded, s.dropped_plugin
    );
    assert_eq!(s.dropped_plugin, 1);
    println!("quickstart OK");
}
