//! VPN gateway scenario (paper §3.2's IP-security walkthrough, Figure 3's
//! SEC1/SEC2 instances): two routers form a security tunnel. The entry
//! router signs + encrypts selected flows (AH then ESP); the exit router
//! decrypts + verifies; tampered or replayed traffic dies at the exit.
//!
//! Run with: `cargo run --example vpn_gateway`

use router_plugins::core::plugins::register_builtin_factories;
use router_plugins::core::pmgr::run_script;
use router_plugins::core::{Router, RouterConfig};
use router_plugins::netsim::traffic::v6_host;
use router_plugins::packet::builder::PacketSpec;
use router_plugins::packet::Mbuf;

fn make_router(script: &str) -> Router {
    let mut r = Router::new(RouterConfig {
        verify_checksums: false,
        ..RouterConfig::default()
    });
    register_builtin_factories(&mut r.loader);
    run_script(&mut r, script).expect("vpn configuration");
    r
}

fn main() {
    // Entry gateway: ESP-encapsulate corporate traffic (the 2001:db8::/48
    // site talking to the remote 2001:db8:0:5::/64 subnet).
    let mut entry = make_router(
        "
        route 2001:db8::/32 1
        load esp
        create esp mode=encap key=corp-vpn-key spi=700
        bind ipsec esp 0 <2001:db8::/48, *, UDP, *, *, *>
        ",
    );

    // Exit gateway: decapsulate anything arriving with that SPI.
    let mut exit = make_router(
        "
        route 2001:db8::/32 1
        load esp
        create esp mode=decap key=corp-vpn-key spi=700
        bind ipsec esp 0 <*, *, ESP, *, *, *>
        ",
    );

    let clear = PacketSpec::udp(v6_host(1), v6_host(200), 4500, 4500, 256).build();
    println!("original packet: {} bytes", clear.len());

    // Through the entry gateway: encrypted on the wire.
    let d = entry.receive(Mbuf::new(clear.clone(), 0));
    println!("entry gateway: {d:?}");
    let wire = entry.take_tx(1).pop().expect("forwarded");
    println!("on the wire: {} bytes (ESP)", wire.len());
    assert_ne!(wire.data(), &clear[..], "payload must be transformed");

    // Through the exit gateway: restored.
    let mut inbound = Mbuf::new(wire.data().to_vec(), 0);
    inbound.fix = None;
    let d = exit.receive(inbound);
    println!("exit gateway: {d:?}");
    let restored = exit.take_tx(1).pop().expect("forwarded");
    // Hop limits differ (two forwarding hops); compare payloads.
    assert_eq!(&restored.data()[8..], &clear[8..]);
    println!("payload restored byte-for-byte after decapsulation");

    // Replay the same ESP packet: the anti-replay window kills it.
    let mut replay = Mbuf::new(wire.data().to_vec(), 0);
    replay.fix = None;
    let d = exit.receive(replay);
    println!("replayed packet: {d:?}");
    assert!(matches!(
        d,
        router_plugins::core::ip_core::Disposition::Dropped(_)
    ));

    // Tamper with a fresh encrypted packet: the pad check catches it.
    let d = entry.receive(Mbuf::new(clear, 0));
    println!("entry gateway (2nd packet): {d:?}");
    let wire2 = entry.take_tx(1).pop().unwrap();
    let mut tampered_bytes = wire2.data().to_vec();
    let last = tampered_bytes.len() - 1;
    tampered_bytes[last] ^= 0xA5;
    let d = exit.receive(Mbuf::new(tampered_bytes, 0));
    println!("tampered packet: {d:?}");
    assert!(matches!(
        d,
        router_plugins::core::ip_core::Disposition::Dropped(_)
    ));

    println!("vpn_gateway OK");
}
