//! A four-router diamond with automatic route installation, per-hop
//! policies, and end-to-end delivery — netsim's multi-router API.
//!
//! ```text
//!                ┌── B (stats monitor) ──┐
//!   left net ─ A ┤                       ├ D ─ right net
//!                └── C (stats monitor) ──┘
//! ```
//!
//! Run with: `cargo run --example diamond_topology`

use router_plugins::core::plugins::register_builtin_factories;
use router_plugins::core::pmgr::{run_command, run_script};
use router_plugins::core::{Router, RouterConfig};
use router_plugins::netsim::topology::{Port, Topology};
use router_plugins::packet::builder::PacketSpec;

fn node(script: &str) -> Router {
    let mut r = Router::new(RouterConfig {
        verify_checksums: false,
        ..RouterConfig::default()
    });
    register_builtin_factories(&mut r.loader);
    run_script(&mut r, script).expect("node config");
    r
}

fn main() {
    let mut topo = Topology::new();
    let a = topo.add_node(node(""));
    let b = topo.add_node(node(
        "load stats\ncreate stats\nbind stats stats 0 <*, *, *, *, *, *>",
    ));
    let c = topo.add_node(node(
        "load stats\ncreate stats\nbind stats stats 0 <*, *, *, *, *, *>",
    ));
    let d = topo.add_node(node(""));
    topo.connect(Port { node: a, iface: 1 }, Port { node: b, iface: 0 });
    topo.connect(Port { node: a, iface: 2 }, Port { node: c, iface: 0 });
    topo.connect(Port { node: b, iface: 1 }, Port { node: d, iface: 0 });
    topo.connect(Port { node: c, iface: 1 }, Port { node: d, iface: 1 });

    // Attach edge networks and let the route daemon do the rest.
    let left: std::net::IpAddr = "2001:db8:a::".parse().unwrap();
    let right: std::net::IpAddr = "2001:db8:d::".parse().unwrap();
    topo.attach_network(Port { node: a, iface: 0 }, left, 48);
    topo.attach_network(Port { node: d, iface: 2 }, right, 48);
    topo.install_routes();
    println!("routes installed across the diamond");

    // 50 packets left→right.
    for i in 0..50u16 {
        let pkt = PacketSpec::udp(
            "2001:db8:a::1".parse().unwrap(),
            "2001:db8:d::9".parse().unwrap(),
            4000 + i,
            9000,
            256,
        )
        .build();
        topo.inject(Port { node: a, iface: 0 }, pkt);
    }
    let steps = topo.run_until_idle(16);
    let delivered = topo.take_delivered(d);
    println!(
        "delivered {} / 50 packets in {steps} topology steps ({} link hops)",
        delivered.len(),
        topo.forwarded_hops
    );
    assert_eq!(delivered.len(), 50);

    // One of the two middle monitors saw the traffic (BFS picked one arm).
    let b_report = run_command(topo.node_mut(b), "msg stats 0 report").unwrap();
    let c_report = run_command(topo.node_mut(c), "msg stats 0 report").unwrap();
    println!("monitor B: {b_report}");
    println!("monitor C: {c_report}");
    assert!(
        b_report.contains("50 pkts") || c_report.contains("50 pkts"),
        "one arm must carry the traffic"
    );
    println!("diamond_topology OK");
}
