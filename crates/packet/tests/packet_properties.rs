//! Property tests for the wire formats: parse∘emit identity, checksum
//! invariants under mutation, six-tuple extraction robustness on
//! arbitrary bytes (the parser must never panic), and IPsec transform
//! round-trips.

use proptest::prelude::*;
use rp_packet::builder::PacketSpec;
use rp_packet::checksum;
use rp_packet::ipsec::{esp_decapsulate, esp_encapsulate, ToyCipher};
use rp_packet::ipv4::Ipv4Packet;
use rp_packet::{FlowTuple, Protocol};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

proptest! {
    /// Any byte soup: extraction returns Ok or Err but never panics, and
    /// Ok implies internally consistent lengths.
    #[test]
    fn extraction_never_panics(data in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = FlowTuple::extract(&data, 0);
    }

    /// Parse-what-you-emit for UDP/IPv4 across the parameter space.
    #[test]
    fn udp_v4_roundtrip(
        src in any::<u32>(),
        dst in any::<u32>(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        len in 0usize..2048,
        ttl in 1u8..=255,
    ) {
        let mut spec = PacketSpec::udp(
            IpAddr::V4(Ipv4Addr::from(src)),
            IpAddr::V4(Ipv4Addr::from(dst)),
            sport, dport, len,
        );
        spec.ttl = ttl;
        let buf = spec.build();
        let pkt = Ipv4Packet::new_checked(&buf[..]).unwrap();
        prop_assert!(pkt.verify_checksum());
        prop_assert_eq!(pkt.ttl(), ttl);
        let t = FlowTuple::extract(&buf, 7).unwrap();
        prop_assert_eq!(t.src, IpAddr::V4(Ipv4Addr::from(src)));
        prop_assert_eq!(t.dst, IpAddr::V4(Ipv4Addr::from(dst)));
        prop_assert_eq!(t.sport, sport);
        prop_assert_eq!(t.dport, dport);
        prop_assert_eq!(t.rx_if, 7);
    }

    /// TTL decrement keeps the IPv4 header checksum valid from any
    /// starting checksum state.
    #[test]
    fn incremental_checksum_invariant(
        src in any::<u32>(),
        dst in any::<u32>(),
        ttl in 2u8..=255,
    ) {
        let mut spec = PacketSpec::udp(
            IpAddr::V4(Ipv4Addr::from(src)),
            IpAddr::V4(Ipv4Addr::from(dst)),
            1, 2, 8,
        );
        spec.ttl = ttl;
        let mut buf = spec.build();
        let mut pkt = Ipv4Packet::new_unchecked(&mut buf[..]);
        pkt.decrement_ttl().unwrap();
        prop_assert!(pkt.verify_checksum());
    }

    /// RFC 1624 incremental update equals full recomputation for any
    /// 16-bit field change.
    #[test]
    fn rfc1624_equivalence(words in prop::collection::vec(any::<u16>(), 4..20), idx in 0usize..4, new in any::<u16>()) {
        let mut data: Vec<u8> = words.iter().flat_map(|w| w.to_be_bytes()).collect();
        let old_sum = checksum::checksum(&data);
        let idx = idx % words.len();
        let old_word = words[idx];
        data[idx * 2..idx * 2 + 2].copy_from_slice(&new.to_be_bytes());
        let full = checksum::checksum(&data);
        let incr = checksum::update_u16(old_sum, old_word, new);
        prop_assert_eq!(full, incr);
    }

    /// ESP decapsulation inverts encapsulation for any payload/keys.
    #[test]
    fn esp_roundtrip(
        key in prop::collection::vec(any::<u8>(), 1..40),
        payload in prop::collection::vec(any::<u8>(), 0..512),
        spi in any::<u32>(),
        seq in 1u32..u32::MAX,
    ) {
        let cipher = ToyCipher::new(&key);
        let pkt = esp_encapsulate(&cipher, spi, seq, Protocol::Tcp, &payload);
        let (next, plain) = esp_decapsulate(&cipher, &pkt).unwrap();
        prop_assert_eq!(next, Protocol::Tcp);
        prop_assert_eq!(plain, payload);
    }

    /// v6 flows with hop-by-hop options still classify to the transport
    /// protocol.
    #[test]
    fn v6_hbh_extraction(
        tail in any::<u16>(),
        sport in any::<u16>(),
        optlen in 0usize..16,
    ) {
        let buf = PacketSpec::udp(
            IpAddr::V6(Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, tail)),
            IpAddr::V6(Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 2)),
            sport, 443, 32,
        )
        .with_hbh_option(0x1E, vec![0u8; optlen])
        .build();
        let t = FlowTuple::extract(&buf, 0).unwrap();
        prop_assert_eq!(t.proto, 17);
        prop_assert_eq!(t.sport, sport);
        prop_assert_eq!(t.dport, 443);
    }
}

#[test]
fn truncation_sweep_udp_v4() {
    // Every truncation point of a valid packet must yield Err or a
    // consistent parse — never a panic or out-of-bounds.
    let buf = PacketSpec::udp(
        IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1)),
        IpAddr::V4(Ipv4Addr::new(10, 0, 0, 2)),
        1111,
        2222,
        64,
    )
    .build();
    for cut in 0..buf.len() {
        let _ = FlowTuple::extract(&buf[..cut], 0);
        let _ = Ipv4Packet::new_checked(&buf[..cut]);
    }
}

#[test]
fn bitflip_sweep_never_panics() {
    let buf = PacketSpec::udp(
        IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1)),
        IpAddr::V4(Ipv4Addr::new(10, 0, 0, 2)),
        1111,
        2222,
        32,
    )
    .build();
    for byte in 0..buf.len() {
        for bit in 0..8 {
            let mut b = buf.clone();
            b[byte] ^= 1 << bit;
            let _ = FlowTuple::extract(&b, 0);
        }
    }
}
