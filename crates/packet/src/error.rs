//! Error types shared by all wire-format parsers in this crate.

use core::fmt;

/// Errors produced while parsing or emitting packet headers.
///
/// Following the smoltcp idiom, parsers return `Err` instead of panicking on
/// malformed input: a router must survive any byte pattern arriving from the
/// wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// The buffer is shorter than the fixed header of the protocol.
    Truncated,
    /// A length field points outside the buffer (e.g. IPv4 `total_len`
    /// exceeding the slice, or UDP `len` shorter than its header).
    BadLength,
    /// The version field does not match the parser (e.g. parsing an IPv6
    /// packet with the IPv4 wrapper).
    BadVersion,
    /// A checksum failed verification.
    BadChecksum,
    /// A field holds a value the protocol forbids (e.g. IPv4 IHL < 5).
    Malformed,
    /// An IPv6 extension-header chain is cyclic or longer than the permitted
    /// maximum (defensive bound against crafted packets).
    ExtensionChainTooLong,
    /// The requested operation needs a protocol this crate does not model.
    Unsupported,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Error::Truncated => "buffer truncated",
            Error::BadLength => "length field inconsistent with buffer",
            Error::BadVersion => "IP version mismatch",
            Error::BadChecksum => "checksum verification failed",
            Error::Malformed => "malformed header field",
            Error::ExtensionChainTooLong => "IPv6 extension chain too long",
            Error::Unsupported => "unsupported protocol element",
        };
        f.write_str(s)
    }
}

impl std::error::Error for Error {}

/// Convenience alias used across the crate.
pub type Result<T> = core::result::Result<T, Error>;
