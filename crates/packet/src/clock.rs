//! Coarse monotonic wall clock for ingress timestamping.
//!
//! The I/O plane stamps every received [`crate::Mbuf`] with
//! [`coarse_now_ns`] so the data path can measure end-to-end sojourn
//! (ingress → egress/drop) and shed packets that have already blown a
//! latency deadline. The clock is process-global and anchored at the
//! first call, so values are small, monotonic and comparable across
//! threads; `0` is reserved to mean "unstamped".

use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds elapsed since the first call in this process. Always
/// non-zero (an unstamped mbuf carries `timestamp_ns == 0`), monotonic,
/// and cheap enough to read once per received batch.
#[inline]
pub fn coarse_now_ns() -> u64 {
    let epoch = *EPOCH.get_or_init(Instant::now);
    (Instant::now().duration_since(epoch).as_nanos() as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nonzero_and_monotonic() {
        let a = coarse_now_ns();
        let b = coarse_now_ns();
        assert!(a >= 1);
        assert!(b >= a);
    }
}
