//! Protocol numbers and IP version handling shared by both IP parsers.

use core::fmt;

/// IP protocol / IPv6 next-header numbers used by the EISR data path.
///
/// The enum is open (`Unknown`) because a router forwards protocols it does
/// not understand; only classification-relevant values get names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Protocol {
    /// IPv6 hop-by-hop options header (must be first, RFC 2460).
    HopByHop,
    /// ICMP (v4).
    Icmp,
    /// IGMP.
    Igmp,
    /// TCP.
    Tcp,
    /// UDP.
    Udp,
    /// IPv6 routing header.
    Ipv6Route,
    /// IPv6 fragment header.
    Ipv6Frag,
    /// Encapsulating Security Payload (IPsec).
    Esp,
    /// Authentication Header (IPsec).
    Ah,
    /// ICMPv6.
    Icmpv6,
    /// "No next header" terminator for IPv6 chains.
    Ipv6NoNxt,
    /// IPv6 destination options header.
    Ipv6Opts,
    /// Anything else, by number.
    Unknown(u8),
}

impl From<u8> for Protocol {
    fn from(v: u8) -> Self {
        match v {
            0 => Protocol::HopByHop,
            1 => Protocol::Icmp,
            2 => Protocol::Igmp,
            6 => Protocol::Tcp,
            17 => Protocol::Udp,
            43 => Protocol::Ipv6Route,
            44 => Protocol::Ipv6Frag,
            50 => Protocol::Esp,
            51 => Protocol::Ah,
            58 => Protocol::Icmpv6,
            59 => Protocol::Ipv6NoNxt,
            60 => Protocol::Ipv6Opts,
            other => Protocol::Unknown(other),
        }
    }
}

impl From<Protocol> for u8 {
    fn from(p: Protocol) -> u8 {
        match p {
            Protocol::HopByHop => 0,
            Protocol::Icmp => 1,
            Protocol::Igmp => 2,
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
            Protocol::Ipv6Route => 43,
            Protocol::Ipv6Frag => 44,
            Protocol::Esp => 50,
            Protocol::Ah => 51,
            Protocol::Icmpv6 => 58,
            Protocol::Ipv6NoNxt => 59,
            Protocol::Ipv6Opts => 60,
            Protocol::Unknown(v) => v,
        }
    }
}

impl Protocol {
    /// True for the headers that form the IPv6 extension chain (i.e. the
    /// walk to the upper-layer protocol must continue through them).
    pub fn is_ipv6_extension(self) -> bool {
        matches!(
            self,
            Protocol::HopByHop
                | Protocol::Ipv6Route
                | Protocol::Ipv6Frag
                | Protocol::Ipv6Opts
                | Protocol::Ah
        )
    }

    /// True if the protocol carries 16-bit source/destination ports in its
    /// first four bytes (what the six-tuple extraction relies on).
    pub fn has_ports(self) -> bool {
        matches!(self, Protocol::Tcp | Protocol::Udp)
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Protocol::HopByHop => write!(f, "HBH"),
            Protocol::Icmp => write!(f, "ICMP"),
            Protocol::Igmp => write!(f, "IGMP"),
            Protocol::Tcp => write!(f, "TCP"),
            Protocol::Udp => write!(f, "UDP"),
            Protocol::Ipv6Route => write!(f, "IPv6-Route"),
            Protocol::Ipv6Frag => write!(f, "IPv6-Frag"),
            Protocol::Esp => write!(f, "ESP"),
            Protocol::Ah => write!(f, "AH"),
            Protocol::Icmpv6 => write!(f, "ICMPv6"),
            Protocol::Ipv6NoNxt => write!(f, "NoNxt"),
            Protocol::Ipv6Opts => write!(f, "IPv6-Opts"),
            Protocol::Unknown(v) => write!(f, "proto-{v}"),
        }
    }
}

/// IP version discriminator read from the first nibble of a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IpVersion {
    /// IPv4.
    V4,
    /// IPv6.
    V6,
}

impl IpVersion {
    /// Sniff the version nibble of a raw packet.
    pub fn of_packet(data: &[u8]) -> crate::Result<IpVersion> {
        match data.first().map(|b| b >> 4) {
            Some(4) => Ok(IpVersion::V4),
            Some(6) => Ok(IpVersion::V6),
            Some(_) => Err(crate::Error::BadVersion),
            None => Err(crate::Error::Truncated),
        }
    }

    /// Address width in bits — 32 or 128. The paper's Table 2 costs depend
    /// on this (`2·log2(W)` BSPL probes per address lookup).
    pub fn address_bits(self) -> u32 {
        match self {
            IpVersion::V4 => 32,
            IpVersion::V6 => 128,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_roundtrip() {
        for v in 0..=255u8 {
            assert_eq!(u8::from(Protocol::from(v)), v);
        }
    }

    #[test]
    fn extension_set() {
        assert!(Protocol::HopByHop.is_ipv6_extension());
        assert!(Protocol::Ah.is_ipv6_extension());
        assert!(!Protocol::Esp.is_ipv6_extension()); // ESP hides what follows
        assert!(!Protocol::Tcp.is_ipv6_extension());
    }

    #[test]
    fn version_sniff() {
        assert_eq!(IpVersion::of_packet(&[0x45]).unwrap(), IpVersion::V4);
        assert_eq!(IpVersion::of_packet(&[0x60]).unwrap(), IpVersion::V6);
        assert!(IpVersion::of_packet(&[0x15]).is_err());
        assert!(IpVersion::of_packet(&[]).is_err());
    }

    #[test]
    fn ports_only_on_tcp_udp() {
        assert!(Protocol::Tcp.has_ports());
        assert!(Protocol::Udp.has_ports());
        assert!(!Protocol::Icmp.has_ports());
        assert!(!Protocol::Esp.has_ports());
    }
}
