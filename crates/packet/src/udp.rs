//! UDP header wrapper and representation.

use crate::checksum::{self, Checksum};
use crate::ip::Protocol;
use crate::wire::{get_u16, set_u16};
use crate::{Error, Result};
use std::net::{Ipv4Addr, Ipv6Addr};

/// UDP header length.
pub const HEADER_LEN: usize = 8;

/// A read/write view of a UDP datagram.
#[derive(Debug, Clone)]
pub struct UdpPacket<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> UdpPacket<T> {
    /// Wrap without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        UdpPacket { buffer }
    }

    /// Wrap and validate the length field against the buffer.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let pkt = Self::new_unchecked(buffer);
        let data = pkt.buffer.as_ref();
        if data.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        let len = usize::from(get_u16(data, 4));
        if len < HEADER_LEN || len > data.len() {
            return Err(Error::BadLength);
        }
        Ok(pkt)
    }

    /// Consume the wrapper and return the inner buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        get_u16(self.buffer.as_ref(), 0)
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        get_u16(self.buffer.as_ref(), 2)
    }

    /// Length field (header + payload).
    pub fn len(&self) -> u16 {
        get_u16(self.buffer.as_ref(), 4)
    }

    /// True when the datagram carries no payload.
    pub fn is_empty(&self) -> bool {
        self.len() == HEADER_LEN as u16
    }

    /// Checksum field (0 = not computed, legal for UDP over IPv4).
    pub fn checksum(&self) -> u16 {
        get_u16(self.buffer.as_ref(), 6)
    }

    /// Payload slice.
    pub fn payload(&self) -> &[u8] {
        let end = usize::from(self.len()).min(self.buffer.as_ref().len());
        &self.buffer.as_ref()[HEADER_LEN..end]
    }

    /// Verify the checksum given the IPv6 pseudo-header.
    pub fn verify_checksum_v6(&self, src: Ipv6Addr, dst: Ipv6Addr) -> bool {
        let mut c = checksum::pseudo_header_v6(src, dst, Protocol::Udp, u32::from(self.len()));
        c.add_bytes(&self.buffer.as_ref()[..usize::from(self.len())]);
        c.finish() == 0
    }

    /// Verify the checksum given the IPv4 pseudo-header. A zero checksum
    /// means "not computed" and verifies trivially (RFC 768).
    pub fn verify_checksum_v4(&self, src: Ipv4Addr, dst: Ipv4Addr) -> bool {
        if self.checksum() == 0 {
            return true;
        }
        let mut c = checksum::pseudo_header_v4(src, dst, Protocol::Udp, u32::from(self.len()));
        c.add_bytes(&self.buffer.as_ref()[..usize::from(self.len())]);
        c.finish() == 0
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> UdpPacket<T> {
    /// Set the source port.
    pub fn set_src_port(&mut self, p: u16) {
        set_u16(self.buffer.as_mut(), 0, p);
    }

    /// Set the destination port.
    pub fn set_dst_port(&mut self, p: u16) {
        set_u16(self.buffer.as_mut(), 2, p);
    }

    /// Set the length field.
    pub fn set_len(&mut self, l: u16) {
        set_u16(self.buffer.as_mut(), 4, l);
    }

    /// Set the checksum field.
    pub fn set_checksum(&mut self, c: u16) {
        set_u16(self.buffer.as_mut(), 6, c);
    }

    /// Compute and store the checksum with an IPv6 pseudo-header.
    pub fn fill_checksum_v6(&mut self, src: Ipv6Addr, dst: Ipv6Addr) {
        self.set_checksum(0);
        let len = self.len();
        let mut c: Checksum = checksum::pseudo_header_v6(src, dst, Protocol::Udp, u32::from(len));
        c.add_bytes(&self.buffer.as_ref()[..usize::from(len)]);
        let sum = c.finish();
        // An all-zero computed checksum is transmitted as 0xFFFF (RFC 768/2460).
        self.set_checksum(if sum == 0 { 0xFFFF } else { sum });
    }

    /// Compute and store the checksum with an IPv4 pseudo-header.
    pub fn fill_checksum_v4(&mut self, src: Ipv4Addr, dst: Ipv4Addr) {
        self.set_checksum(0);
        let len = self.len();
        let mut c: Checksum = checksum::pseudo_header_v4(src, dst, Protocol::Udp, u32::from(len));
        c.add_bytes(&self.buffer.as_ref()[..usize::from(len)]);
        let sum = c.finish();
        self.set_checksum(if sum == 0 { 0xFFFF } else { sum });
    }

    /// Mutable payload slice.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let end = usize::from(self.len());
        let data = self.buffer.as_mut();
        let end = end.min(data.len());
        &mut data[HEADER_LEN..end]
    }
}

/// Parsed UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpRepr {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Payload length in bytes.
    pub payload_len: usize,
}

impl UdpRepr {
    /// Total bytes when emitted.
    pub fn buffer_len(&self) -> usize {
        HEADER_LEN + self.payload_len
    }

    /// Emit header fields (ports + length); the caller fills the payload and
    /// then calls one of the `fill_checksum_*` methods.
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, packet: &mut UdpPacket<T>) {
        packet.set_src_port(self.src_port);
        packet.set_dst_port(self.dst_port);
        packet.set_len((HEADER_LEN + self.payload_len) as u16);
        packet.set_checksum(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_with_v6_checksum() {
        let src = Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 1);
        let dst = Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 2);
        let repr = UdpRepr {
            src_port: 5001,
            dst_port: 53,
            payload_len: 5,
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        let mut pkt = UdpPacket::new_unchecked(&mut buf[..]);
        repr.emit(&mut pkt);
        pkt.payload_mut().copy_from_slice(b"hello");
        pkt.fill_checksum_v6(src, dst);
        assert!(pkt.verify_checksum_v6(src, dst));

        let pkt = UdpPacket::new_checked(&buf[..]).unwrap();
        assert_eq!(pkt.src_port(), 5001);
        assert_eq!(pkt.dst_port(), 53);
        assert_eq!(pkt.payload(), b"hello");
    }

    #[test]
    fn v4_zero_checksum_is_valid() {
        let repr = UdpRepr {
            src_port: 1,
            dst_port: 2,
            payload_len: 0,
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        let mut pkt = UdpPacket::new_unchecked(&mut buf[..]);
        repr.emit(&mut pkt);
        assert!(pkt.verify_checksum_v4(Ipv4Addr::LOCALHOST, Ipv4Addr::LOCALHOST));
    }

    #[test]
    fn corruption_detected() {
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(10, 0, 0, 2);
        let repr = UdpRepr {
            src_port: 9,
            dst_port: 10,
            payload_len: 4,
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        let mut pkt = UdpPacket::new_unchecked(&mut buf[..]);
        repr.emit(&mut pkt);
        pkt.payload_mut().copy_from_slice(b"data");
        pkt.fill_checksum_v4(src, dst);
        assert!(pkt.verify_checksum_v4(src, dst));
        buf[8] ^= 1;
        let pkt = UdpPacket::new_checked(&buf[..]).unwrap();
        assert!(!pkt.verify_checksum_v4(src, dst));
    }

    #[test]
    fn length_validation() {
        assert_eq!(
            UdpPacket::new_checked(&[0u8; 4][..]).unwrap_err(),
            Error::Truncated
        );
        let mut buf = [0u8; 8];
        buf[5] = 4; // len 4 < header
        assert_eq!(
            UdpPacket::new_checked(&buf[..]).unwrap_err(),
            Error::BadLength
        );
        buf[5] = 200; // len beyond buffer
        assert_eq!(
            UdpPacket::new_checked(&buf[..]).unwrap_err(),
            Error::BadLength
        );
    }
}
