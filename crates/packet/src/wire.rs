//! Small helpers shared by the wire-format wrapper types: network-order
//! reads/writes over byte slices with explicit bounds handling.
//!
//! All accessors in the header wrappers go through these functions so that
//! byte-order handling lives in exactly one place.

/// Read a big-endian `u16` at `offset`.
///
/// # Panics
/// Panics if the slice is too short; wrapper types validate lengths in
/// `new_checked` before any field accessor runs, so this is an internal
/// invariant, not an input-validation path.
#[inline]
pub fn get_u16(data: &[u8], offset: usize) -> u16 {
    u16::from_be_bytes([data[offset], data[offset + 1]])
}

/// Read a big-endian `u32` at `offset`.
#[inline]
pub fn get_u32(data: &[u8], offset: usize) -> u32 {
    u32::from_be_bytes([
        data[offset],
        data[offset + 1],
        data[offset + 2],
        data[offset + 3],
    ])
}

/// Read a big-endian `u128` at `offset` (IPv6 addresses).
#[inline]
pub fn get_u128(data: &[u8], offset: usize) -> u128 {
    let mut b = [0u8; 16];
    b.copy_from_slice(&data[offset..offset + 16]);
    u128::from_be_bytes(b)
}

/// Write a big-endian `u16` at `offset`.
#[inline]
pub fn set_u16(data: &mut [u8], offset: usize, value: u16) {
    data[offset..offset + 2].copy_from_slice(&value.to_be_bytes());
}

/// Write a big-endian `u32` at `offset`.
#[inline]
pub fn set_u32(data: &mut [u8], offset: usize, value: u32) {
    data[offset..offset + 4].copy_from_slice(&value.to_be_bytes());
}

/// Write a big-endian `u128` at `offset`.
#[inline]
pub fn set_u128(data: &mut [u8], offset: usize, value: u128) {
    data[offset..offset + 16].copy_from_slice(&value.to_be_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u16() {
        let mut buf = [0u8; 4];
        set_u16(&mut buf, 1, 0xBEEF);
        assert_eq!(get_u16(&buf, 1), 0xBEEF);
        assert_eq!(buf, [0, 0xBE, 0xEF, 0]);
    }

    #[test]
    fn roundtrip_u32() {
        let mut buf = [0u8; 6];
        set_u32(&mut buf, 2, 0xDEAD_BEEF);
        assert_eq!(get_u32(&buf, 2), 0xDEAD_BEEF);
    }

    #[test]
    fn roundtrip_u128() {
        let mut buf = [0u8; 16];
        set_u128(&mut buf, 0, 0x0102_0304_0506_0708_090A_0B0C_0D0E_0F10);
        assert_eq!(get_u128(&buf, 0), 0x0102_0304_0506_0708_090A_0B0C_0D0E_0F10);
        assert_eq!(buf[0], 1);
        assert_eq!(buf[15], 0x10);
    }

    #[test]
    fn big_endian_order() {
        let buf = [0x12, 0x34, 0x56, 0x78];
        assert_eq!(get_u16(&buf, 0), 0x1234);
        assert_eq!(get_u32(&buf, 0), 0x1234_5678);
    }
}
