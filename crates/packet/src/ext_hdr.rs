//! IPv6 extension headers: the generic `(next_header, hdr_ext_len)` framing
//! shared by hop-by-hop, destination-options and routing headers, plus a TLV
//! option iterator for the options headers.
//!
//! The paper's architecture puts a *gate* at IPv6 option processing and
//! dispatches each option to an option plugin; this module supplies the
//! parsing that gate relies on.

use crate::ip::Protocol;
use crate::{Error, Result};

/// Defensive bound on the number of chained extension headers; real chains
/// have a handful, crafted packets could otherwise loop the walker.
pub const MAX_EXTENSION_HEADERS: usize = 16;

/// Generic extension-header view: `next_header` (1 byte), `hdr_ext_len`
/// (length in 8-byte units, *not including* the first 8 bytes), body.
#[derive(Debug, Clone)]
pub struct ExtHeader<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> ExtHeader<T> {
    /// Wrap and validate that the buffer covers the declared length.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let hdr = ExtHeader { buffer };
        let data = hdr.buffer.as_ref();
        if data.len() < 8 {
            return Err(Error::Truncated);
        }
        if data.len() < hdr.total_len() {
            return Err(Error::BadLength);
        }
        Ok(hdr)
    }

    /// The protocol following this header.
    pub fn next_header(&self) -> Protocol {
        Protocol::from(self.buffer.as_ref()[0])
    }

    /// Total length of this header in bytes: `(hdr_ext_len + 1) * 8`.
    pub fn total_len(&self) -> usize {
        (usize::from(self.buffer.as_ref()[1]) + 1) * 8
    }

    /// Option/body area (after the 2 framing bytes, within `total_len`).
    pub fn body(&self) -> &[u8] {
        &self.buffer.as_ref()[2..self.total_len()]
    }

    /// Iterate the TLV options in an options-type header (hop-by-hop or
    /// destination options).
    pub fn options(&self) -> OptionIter<'_> {
        OptionIter {
            data: self.body(),
            pos: 0,
        }
    }
}

/// One TLV option inside an options extension header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv6Option<'a> {
    /// Option type byte. The two high bits encode the required action when
    /// the option is unrecognised (RFC 2460 §4.2).
    pub kind: u8,
    /// Option data (empty for Pad1).
    pub data: &'a [u8],
}

impl Ipv6Option<'_> {
    /// Pad1 option type.
    pub const PAD1: u8 = 0;
    /// PadN option type.
    pub const PADN: u8 = 1;
    /// Router alert (RFC 2711) — the classic "a router must look at me"
    /// option, used by the example option plugins.
    pub const ROUTER_ALERT: u8 = 5;

    /// Action required when the option is unrecognised: 0 = skip,
    /// 1 = discard, 2/3 = discard + ICMP.
    pub fn unrecognised_action(&self) -> u8 {
        self.kind >> 6
    }

    /// True for padding options that carry no semantics.
    pub fn is_padding(&self) -> bool {
        self.kind == Self::PAD1 || self.kind == Self::PADN
    }
}

/// Iterator over the TLV options of an options header body.
#[derive(Debug)]
pub struct OptionIter<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Iterator for OptionIter<'a> {
    type Item = Result<Ipv6Option<'a>>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.data.len() {
            return None;
        }
        let kind = self.data[self.pos];
        if kind == Ipv6Option::PAD1 {
            self.pos += 1;
            return Some(Ok(Ipv6Option { kind, data: &[] }));
        }
        if self.pos + 2 > self.data.len() {
            self.pos = self.data.len();
            return Some(Err(Error::Truncated));
        }
        let len = usize::from(self.data[self.pos + 1]);
        let start = self.pos + 2;
        if start + len > self.data.len() {
            self.pos = self.data.len();
            return Some(Err(Error::Truncated));
        }
        self.pos = start + len;
        Some(Ok(Ipv6Option {
            kind,
            data: &self.data[start..start + len],
        }))
    }
}

/// Result of walking an IPv6 extension chain to the upper-layer protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainWalk {
    /// The first non-extension protocol found (e.g. UDP, TCP, ESP).
    pub upper_protocol: Protocol,
    /// Offset of that protocol's header from the start of the IPv6 payload.
    pub upper_offset: usize,
    /// Number of extension headers traversed.
    pub ext_count: usize,
    /// Offset of the hop-by-hop header if present (always 0 when present).
    pub hop_by_hop: Option<usize>,
    /// Offset of the fragment header if present. Classification treats any
    /// packet carrying one as a fragment (ports unreadable or unreliable).
    pub fragment: Option<usize>,
}

/// Walk the extension-header chain of an IPv6 payload starting at
/// `first_header`, returning where the upper-layer protocol begins.
///
/// ESP terminates the walk (its contents are encrypted); AH participates in
/// the chain (RFC 2402 gives it the standard framing, with its length field
/// in 4-byte units — handled as a special case).
pub fn walk_chain(first_header: Protocol, payload: &[u8]) -> Result<ChainWalk> {
    let mut proto = first_header;
    let mut offset = 0usize;
    let mut count = 0usize;
    let mut hbh = None;
    let mut frag = None;

    while proto.is_ipv6_extension() {
        if count >= MAX_EXTENSION_HEADERS {
            return Err(Error::ExtensionChainTooLong);
        }
        let rest = payload.get(offset..).ok_or(Error::Truncated)?;
        if rest.len() < 8 {
            return Err(Error::Truncated);
        }
        if proto == Protocol::HopByHop {
            if offset != 0 {
                // Hop-by-hop is only legal as the first header.
                return Err(Error::Malformed);
            }
            hbh = Some(0);
        }
        if proto == Protocol::Ipv6Frag && frag.is_none() {
            frag = Some(offset);
        }
        let (next, len) = if proto == Protocol::Ah {
            // AH: payload len field counts 4-byte units minus 2.
            let units = usize::from(rest[1]) + 2;
            (Protocol::from(rest[0]), units * 4)
        } else {
            let hdr = ExtHeader::new_checked(rest)?;
            (hdr.next_header(), hdr.total_len())
        };
        if offset + len > payload.len() {
            return Err(Error::BadLength);
        }
        offset += len;
        proto = next;
        count += 1;
    }

    Ok(ChainWalk {
        upper_protocol: proto,
        upper_offset: offset,
        ext_count: count,
        hop_by_hop: hbh,
        fragment: frag,
    })
}

/// Build a hop-by-hop options header containing the given options, padded to
/// an 8-byte multiple, with `next_header` as its successor. Returns raw
/// bytes ready to prepend to the transport payload.
pub fn build_hop_by_hop(next_header: Protocol, options: &[(u8, &[u8])]) -> Vec<u8> {
    let mut body = Vec::new();
    for (kind, data) in options {
        body.push(*kind);
        body.push(data.len() as u8);
        body.extend_from_slice(data);
    }
    // Pad (2 framing bytes + body) to a multiple of 8 using Pad1/PadN.
    let total = 2 + body.len();
    let pad = (8 - total % 8) % 8;
    match pad {
        0 => {}
        1 => body.push(Ipv6Option::PAD1),
        n => {
            body.push(Ipv6Option::PADN);
            body.push((n - 2) as u8);
            body.extend(std::iter::repeat_n(0, n - 2));
        }
    }
    let mut out = Vec::with_capacity(2 + body.len());
    out.push(next_header.into());
    out.push(((2 + body.len()) / 8 - 1) as u8);
    out.extend_from_slice(&body);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_iterate_hbh() {
        let hbh = build_hop_by_hop(Protocol::Udp, &[(Ipv6Option::ROUTER_ALERT, &[0, 0])]);
        assert_eq!(hbh.len() % 8, 0);
        let hdr = ExtHeader::new_checked(&hbh[..]).unwrap();
        assert_eq!(hdr.next_header(), Protocol::Udp);
        let opts: Vec<_> = hdr.options().map(|o| o.unwrap()).collect();
        assert_eq!(opts[0].kind, Ipv6Option::ROUTER_ALERT);
        assert_eq!(opts[0].data, &[0, 0]);
        // Remaining options are padding.
        assert!(opts[1..].iter().all(|o| o.is_padding()));
    }

    #[test]
    fn walk_plain_udp() {
        let walk = walk_chain(Protocol::Udp, &[0u8; 64]).unwrap();
        assert_eq!(walk.upper_protocol, Protocol::Udp);
        assert_eq!(walk.upper_offset, 0);
        assert_eq!(walk.ext_count, 0);
        assert!(walk.hop_by_hop.is_none());
        assert!(walk.fragment.is_none());
    }

    #[test]
    fn walk_through_fragment_header() {
        // Fragment header: next, reserved (reads as hdr_ext_len 0 → 8 bytes),
        // offset+flags, identification.
        let mut payload = vec![Protocol::Udp.into(), 0u8, 0x00, 0xA9, 1, 2, 3, 4];
        payload.extend_from_slice(&[0u8; 16]); // mid-datagram bytes
        let walk = walk_chain(Protocol::Ipv6Frag, &payload).unwrap();
        assert_eq!(walk.upper_protocol, Protocol::Udp);
        assert_eq!(walk.upper_offset, 8);
        assert_eq!(walk.fragment, Some(0));

        // Behind a hop-by-hop header the recorded offset moves with it.
        let mut chain = build_hop_by_hop(Protocol::Ipv6Frag, &[]);
        let hbh_len = chain.len();
        chain.extend_from_slice(&payload);
        let walk = walk_chain(Protocol::HopByHop, &chain).unwrap();
        assert_eq!(walk.fragment, Some(hbh_len));
        assert_eq!(walk.upper_protocol, Protocol::Udp);
    }

    #[test]
    fn walk_hbh_then_udp() {
        let mut payload = build_hop_by_hop(Protocol::Udp, &[(Ipv6Option::ROUTER_ALERT, &[0, 0])]);
        let hbh_len = payload.len();
        payload.extend_from_slice(&[0u8; 16]); // pretend UDP
        let walk = walk_chain(Protocol::HopByHop, &payload).unwrap();
        assert_eq!(walk.upper_protocol, Protocol::Udp);
        assert_eq!(walk.upper_offset, hbh_len);
        assert_eq!(walk.ext_count, 1);
        assert_eq!(walk.hop_by_hop, Some(0));
    }

    #[test]
    fn hbh_not_first_is_malformed() {
        // dst-opts followed by hop-by-hop: illegal.
        let mut payload = build_hop_by_hop(Protocol::HopByHop, &[]);
        payload.extend(build_hop_by_hop(Protocol::Udp, &[]));
        let err = walk_chain(Protocol::Ipv6Opts, &payload).unwrap_err();
        assert_eq!(err, Error::Malformed);
    }

    #[test]
    fn cyclic_chain_bounded() {
        // A hop-by-hop header pointing at dst-opts pointing at itself forever
        // would loop; length accounting walks forward so craft a long chain.
        let mut payload = Vec::new();
        for _ in 0..MAX_EXTENSION_HEADERS + 1 {
            payload.extend(build_hop_by_hop(Protocol::Ipv6Opts, &[]));
        }
        // Rewrite each header's next to Ipv6Opts so the walk keeps going;
        // first header type is HopByHop only at position 0.
        let err = walk_chain(Protocol::HopByHop, &payload);
        // Either too-long or truncated is acceptable; must not loop.
        assert!(err.is_err());
    }

    #[test]
    fn walk_through_routing_header() {
        // A type-0-style routing header uses the generic framing: next,
        // hdr_ext_len, then routing data. 8 + 16 bytes here.
        let mut payload = vec![Protocol::Udp.into(), 2u8];
        payload.extend_from_slice(&[0u8; 22]); // routing data to 24 bytes
        payload.extend_from_slice(&[0u8; 16]); // pretend UDP
        let walk = walk_chain(Protocol::Ipv6Route, &payload).unwrap();
        assert_eq!(walk.upper_protocol, Protocol::Udp);
        assert_eq!(walk.upper_offset, 24);
        assert_eq!(walk.ext_count, 1);
    }

    #[test]
    fn walk_through_ah_framing() {
        // AH length is in 4-byte units minus 2: payload_len=4 → 24 bytes.
        let mut payload = vec![Protocol::Tcp.into(), 4u8];
        payload.extend_from_slice(&[0u8; 22]);
        payload.extend_from_slice(&[0u8; 20]); // pretend TCP
        let walk = walk_chain(Protocol::Ah, &payload).unwrap();
        assert_eq!(walk.upper_protocol, Protocol::Tcp);
        assert_eq!(walk.upper_offset, 24);
    }

    #[test]
    fn esp_terminates_walk() {
        let payload = vec![0u8; 32];
        let walk = walk_chain(Protocol::Esp, &payload).unwrap();
        assert_eq!(walk.upper_protocol, Protocol::Esp);
        assert_eq!(walk.upper_offset, 0);
    }

    #[test]
    fn truncated_option_reported() {
        // An options body claiming a 10-byte option in 4 bytes of space.
        let raw = [Protocol::Udp.into(), 0u8, 0x05, 10, 0, 0, 0, 0];
        let hdr = ExtHeader::new_checked(&raw[..]).unwrap();
        let first = hdr.options().next().unwrap();
        assert_eq!(first.unwrap_err(), Error::Truncated);
    }

    #[test]
    fn pad1_advances_one_byte() {
        let raw = [Protocol::Udp.into(), 0u8, 0, 0, 0, 0, 0, 0];
        let hdr = ExtHeader::new_checked(&raw[..]).unwrap();
        let opts: Vec<_> = hdr.options().map(|o| o.unwrap()).collect();
        assert_eq!(opts.len(), 6);
        assert!(opts.iter().all(|o| o.kind == Ipv6Option::PAD1));
    }
}
