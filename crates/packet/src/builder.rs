//! Convenience packet constructors used by tests, examples and the traffic
//! generators: one call builds a complete, checksummed UDP or TCP datagram
//! inside either IP version.

use crate::ext_hdr;
use crate::ip::Protocol;
use crate::ipv4::{Ipv4Packet, Ipv4Repr};
use crate::ipv6::{Ipv6Packet, Ipv6Repr};
use crate::tcp::{TcpFlags, TcpPacket, TcpRepr};
use crate::udp::{UdpPacket, UdpRepr};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// Declarative description of a test/workload packet.
#[derive(Debug, Clone)]
pub struct PacketSpec {
    /// Source address (family selects the IP version; must match `dst`).
    pub src: IpAddr,
    /// Destination address.
    pub dst: IpAddr,
    /// Transport protocol: only [`Protocol::Udp`] and [`Protocol::Tcp`]
    /// produce transport headers; anything else yields a raw payload.
    pub proto: Protocol,
    /// Source port.
    pub sport: u16,
    /// Destination port.
    pub dport: u16,
    /// Transport payload length in bytes.
    pub payload_len: usize,
    /// TTL / hop limit.
    pub ttl: u8,
    /// Hop-by-hop options to insert (IPv6 only): `(type, data)` pairs.
    pub hop_by_hop: Vec<(u8, Vec<u8>)>,
    /// IPv4 header options to insert (IPv4 only): `(kind, data)` pairs.
    pub v4_options: Vec<(u8, Vec<u8>)>,
}

impl PacketSpec {
    /// A UDP packet between two addresses with the given ports and payload
    /// size — the common case in the paper's experiments.
    pub fn udp(src: IpAddr, dst: IpAddr, sport: u16, dport: u16, payload_len: usize) -> Self {
        PacketSpec {
            src,
            dst,
            proto: Protocol::Udp,
            sport,
            dport,
            payload_len,
            ttl: 64,
            hop_by_hop: Vec::new(),
            v4_options: Vec::new(),
        }
    }

    /// A TCP packet (header only + payload, ACK flag set).
    pub fn tcp(src: IpAddr, dst: IpAddr, sport: u16, dport: u16, payload_len: usize) -> Self {
        PacketSpec {
            src,
            dst,
            proto: Protocol::Tcp,
            sport,
            dport,
            payload_len,
            ttl: 64,
            hop_by_hop: Vec::new(),
            v4_options: Vec::new(),
        }
    }

    /// Add a hop-by-hop option (IPv6 only; ignored for IPv4).
    pub fn with_hbh_option(mut self, kind: u8, data: Vec<u8>) -> Self {
        self.hop_by_hop.push((kind, data));
        self
    }

    /// Add an IPv4 header option (IPv4 only; ignored for IPv6).
    pub fn with_v4_option(mut self, kind: u8, data: Vec<u8>) -> Self {
        self.v4_options.push((kind, data));
        self
    }

    /// Materialise the packet bytes.
    pub fn build(&self) -> Vec<u8> {
        match (self.src, self.dst) {
            (IpAddr::V4(s), IpAddr::V4(d)) => self.build_v4(s, d),
            (IpAddr::V6(s), IpAddr::V6(d)) => self.build_v6(s, d),
            _ => panic!("PacketSpec: src/dst address family mismatch"),
        }
    }

    fn transport(&self, src6: Option<(Ipv6Addr, Ipv6Addr)>) -> Vec<u8> {
        match self.proto {
            Protocol::Udp => {
                let repr = UdpRepr {
                    src_port: self.sport,
                    dst_port: self.dport,
                    payload_len: self.payload_len,
                };
                let mut buf = vec![0u8; repr.buffer_len()];
                let mut u = UdpPacket::new_unchecked(&mut buf[..]);
                repr.emit(&mut u);
                fill_payload(u.payload_mut());
                if let Some((s, d)) = src6 {
                    u.fill_checksum_v6(s, d);
                }
                buf
            }
            Protocol::Tcp => {
                let repr = TcpRepr {
                    src_port: self.sport,
                    dst_port: self.dport,
                    seq: 1,
                    ack: 1,
                    flags: TcpFlags::ACK,
                    window: 65535,
                    payload_len: self.payload_len,
                };
                let mut buf = vec![0u8; repr.buffer_len()];
                let mut t = TcpPacket::new_unchecked(&mut buf[..]);
                repr.emit(&mut t);
                fill_payload(&mut buf[20..]);
                if let Some((s, d)) = src6 {
                    let mut t = TcpPacket::new_unchecked(&mut buf[..]);
                    t.fill_checksum_v6(s, d);
                }
                buf
            }
            _ => {
                let mut buf = vec![0u8; self.payload_len];
                fill_payload(&mut buf);
                buf
            }
        }
    }

    fn build_v4(&self, src: Ipv4Addr, dst: Ipv4Addr) -> Vec<u8> {
        let transport = self.transport(None);
        let opts: Vec<(crate::ipv4_opts::OptionKind, &[u8])> = self
            .v4_options
            .iter()
            .map(|(k, d)| (crate::ipv4_opts::OptionKind(*k), d.as_slice()))
            .collect();
        let opt_bytes = crate::ipv4_opts::build_options(&opts);
        let ip = Ipv4Repr {
            src_addr: src,
            dst_addr: dst,
            protocol: self.proto,
            payload_len: transport.len(),
            ttl: self.ttl,
            tos: 0,
        };
        let hdr_len = ip.buffer_len() + opt_bytes.len();
        let mut buf = vec![0u8; hdr_len + transport.len()];
        {
            let mut pkt = Ipv4Packet::new_unchecked(&mut buf[..]);
            ip.emit(&mut pkt);
        }
        if !opt_bytes.is_empty() {
            // Widen the header: set IHL, splice options, refresh lengths.
            buf[0] = 0x40 | ((hdr_len / 4) as u8);
            buf[20..20 + opt_bytes.len()].copy_from_slice(&opt_bytes);
            let mut pkt = Ipv4Packet::new_unchecked(&mut buf[..]);
            pkt.set_total_len((hdr_len + transport.len()) as u16);
            pkt.fill_checksum();
        }
        let mut pkt = Ipv4Packet::new_unchecked(&mut buf[..]);
        pkt.payload_mut().copy_from_slice(&transport);
        if self.proto == Protocol::Udp {
            let mut u = UdpPacket::new_unchecked(pkt.payload_mut());
            u.fill_checksum_v4(src, dst);
        }
        buf
    }

    fn build_v6(&self, src: Ipv6Addr, dst: Ipv6Addr) -> Vec<u8> {
        let transport = self.transport(Some((src, dst)));
        let (first_header, chain) = if self.hop_by_hop.is_empty() {
            (self.proto, Vec::new())
        } else {
            let opts: Vec<(u8, &[u8])> = self
                .hop_by_hop
                .iter()
                .map(|(k, d)| (*k, d.as_slice()))
                .collect();
            (
                Protocol::HopByHop,
                ext_hdr::build_hop_by_hop(self.proto, &opts),
            )
        };
        let payload_len = chain.len() + transport.len();
        let ip = Ipv6Repr {
            src_addr: src,
            dst_addr: dst,
            next_header: first_header,
            payload_len,
            hop_limit: self.ttl,
            traffic_class: 0,
            flow_label: 0,
        };
        let mut buf = vec![0u8; ip.buffer_len() + payload_len];
        let mut pkt = Ipv6Packet::new_unchecked(&mut buf[..]);
        ip.emit(&mut pkt);
        pkt.payload_mut()[..chain.len()].copy_from_slice(&chain);
        pkt.payload_mut()[chain.len()..].copy_from_slice(&transport);
        buf
    }
}

fn fill_payload(buf: &mut [u8]) {
    for (i, b) in buf.iter_mut().enumerate() {
        *b = (i & 0xFF) as u8;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowTuple;

    fn v4(a: u8) -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(10, 0, 0, a))
    }

    fn v6(a: u16) -> IpAddr {
        IpAddr::V6(Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, a))
    }

    #[test]
    fn udp_v4_is_parseable_and_checksummed() {
        let buf = PacketSpec::udp(v4(1), v4(2), 100, 200, 64).build();
        let ip = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert!(ip.verify_checksum());
        let udp = UdpPacket::new_checked(ip.payload()).unwrap();
        assert!(udp.verify_checksum_v4(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2)));
        let t = FlowTuple::extract(&buf, 0).unwrap();
        assert_eq!((t.sport, t.dport), (100, 200));
    }

    #[test]
    fn udp_v6_with_hbh() {
        let buf = PacketSpec::udp(v6(1), v6(2), 5, 6, 32)
            .with_hbh_option(crate::ext_hdr::Ipv6Option::ROUTER_ALERT, vec![0, 0])
            .build();
        let t = FlowTuple::extract(&buf, 0).unwrap();
        assert_eq!(t.proto, 17);
        assert_eq!((t.sport, t.dport), (5, 6));
        let ip = Ipv6Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(ip.next_header(), Protocol::HopByHop);
    }

    #[test]
    fn tcp_v6_checksum_valid() {
        let buf = PacketSpec::tcp(v6(1), v6(2), 443, 80, 100).build();
        let ip = Ipv6Packet::new_checked(&buf[..]).unwrap();
        let tcp = TcpPacket::new_checked(ip.payload()).unwrap();
        assert!(tcp.verify_checksum_v6(ip.src_addr(), ip.dst_addr()));
    }

    #[test]
    #[should_panic(expected = "family mismatch")]
    fn family_mismatch_panics() {
        PacketSpec::udp(v4(1), v6(2), 1, 2, 0).build();
    }

    #[test]
    fn paper_workload_8k_datagram() {
        // The paper forwards 8 KB UDP/IPv6 datagrams, ATM MTU 9180, no
        // fragmentation. Make sure such a packet builds and parses.
        let buf = PacketSpec::udp(v6(1), v6(2), 1111, 2222, 8192).build();
        assert!(buf.len() <= 9180);
        let t = FlowTuple::extract(&buf, 0).unwrap();
        assert_eq!(t.proto, 17);
    }
}
