//! [`MbufPool`] — a free list of packet backing buffers.
//!
//! The paper's performance argument (Section 5, Table 2) prices the plugin
//! architecture in *memory accesses per packet*; a heap allocation per
//! packet would dwarf that budget. BSD routers avoid it by recycling mbufs
//! through a free list, and this type is that free list for the
//! reproduction: a router acquires every ingress/fragment buffer here and
//! returns it when the packet is dropped, consumed, or its egress bytes
//! have been re-serialised. In steady state the list reaches the working-set
//! size of the pipeline and the fast path stops touching the allocator.
//!
//! The pool is deliberately **not** thread-safe: each shard of the parallel
//! data plane owns its router and therefore its own pool, mirroring the
//! share-nothing design — a lock here would put a contended atomic back on
//! the per-packet path that sharding exists to remove.

use crate::mbuf::{IfIndex, Mbuf};

/// Counters describing pool behaviour, snapshotted into the observability
/// layer so steady-state allocation behaviour is testable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers handed out (`fresh` + reuses of recycled buffers).
    pub acquired: u64,
    /// Buffers returned to the free list for reuse.
    pub recycled: u64,
    /// Acquisitions that had to allocate because the free list was empty.
    /// In steady state this counter stops moving.
    pub fresh: u64,
}

impl PoolStats {
    /// Merge another snapshot into this one (mirrors
    /// `MetricsRegistry::absorb` so per-shard pools sum cleanly).
    pub fn absorb(&mut self, other: &PoolStats) {
        self.acquired += other.acquired;
        self.recycled += other.recycled;
        self.fresh += other.fresh;
    }
}

/// A bounded free list of `Vec<u8>` packet buffers.
#[derive(Debug)]
pub struct MbufPool {
    free: Vec<Vec<u8>>,
    max_free: usize,
    stats: PoolStats,
}

impl Default for MbufPool {
    fn default() -> Self {
        MbufPool::new(Self::DEFAULT_MAX_FREE)
    }
}

impl MbufPool {
    /// Default cap on retained buffers. Generous: at 9180-byte ATM MTU this
    /// bounds retained memory to ~150 MiB worst case, and real working sets
    /// (a few packet batches in flight) are orders of magnitude smaller.
    pub const DEFAULT_MAX_FREE: usize = 16_384;

    /// Create a pool retaining at most `max_free` idle buffers.
    pub fn new(max_free: usize) -> Self {
        MbufPool {
            free: Vec::new(),
            max_free,
            stats: PoolStats::default(),
        }
    }

    /// Hand out an empty buffer (length 0, capacity whatever the recycled
    /// buffer had). Callers `extend_from_slice` their bytes into it; after
    /// a few round trips capacities stabilise at the workload's packet
    /// sizes and acquisition is allocation-free.
    pub fn buffer(&mut self) -> Vec<u8> {
        self.stats.acquired += 1;
        match self.free.pop() {
            Some(b) => b,
            None => {
                self.stats.fresh += 1;
                Vec::new()
            }
        }
    }

    /// Build an [`Mbuf`] whose backing store comes from the pool,
    /// copying `bytes` into it.
    pub fn mbuf_from(&mut self, bytes: &[u8], rx_if: IfIndex) -> Mbuf {
        let mut b = self.buffer();
        b.extend_from_slice(bytes);
        Mbuf::new(b, rx_if)
    }

    /// Return an mbuf's backing buffer to the free list.
    pub fn recycle(&mut self, mbuf: Mbuf) {
        self.recycle_buf(mbuf.into_data());
    }

    /// Return a raw buffer to the free list. Buffers beyond the retention
    /// cap (or with no capacity worth keeping) are dropped to the
    /// allocator.
    pub fn recycle_buf(&mut self, mut buf: Vec<u8>) {
        if self.free.len() < self.max_free && buf.capacity() > 0 {
            buf.clear();
            self.free.push(buf);
            self.stats.recycled += 1;
        }
    }

    /// Number of idle buffers currently retained.
    pub fn free_len(&self) -> usize {
        self.free.len()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_then_reuse() {
        let mut pool = MbufPool::default();
        let m = pool.mbuf_from(&[1, 2, 3], 0);
        assert_eq!(pool.stats().fresh, 1);
        pool.recycle(m);
        assert_eq!(pool.stats().recycled, 1);
        let m2 = pool.mbuf_from(&[9; 3], 1);
        assert_eq!(m2.data(), &[9; 3]);
        let s = pool.stats();
        assert_eq!((s.acquired, s.fresh, s.recycled), (2, 1, 1));
    }

    #[test]
    fn steady_state_stops_allocating() {
        let mut pool = MbufPool::default();
        // Warm-up: one buffer in flight at a time.
        for _ in 0..4 {
            let m = pool.mbuf_from(&[0u8; 64], 0);
            pool.recycle(m);
        }
        let fresh_before = pool.stats().fresh;
        for _ in 0..1000 {
            let m = pool.mbuf_from(&[0u8; 64], 0);
            pool.recycle(m);
        }
        assert_eq!(pool.stats().fresh, fresh_before, "steady state allocated");
    }

    #[test]
    fn retention_cap_respected() {
        let mut pool = MbufPool::new(2);
        for _ in 0..5 {
            pool.recycle_buf(Vec::with_capacity(16));
        }
        assert_eq!(pool.free_len(), 2);
        // Zero-capacity buffers are not worth retaining.
        pool.recycle_buf(Vec::new());
        assert_eq!(pool.free_len(), 2);
    }

    #[test]
    fn stats_absorb_sums() {
        let mut a = PoolStats {
            acquired: 1,
            recycled: 2,
            fresh: 3,
        };
        let b = PoolStats {
            acquired: 10,
            recycled: 20,
            fresh: 30,
        };
        a.absorb(&b);
        assert_eq!(
            a,
            PoolStats {
                acquired: 11,
                recycled: 22,
                fresh: 33,
            }
        );
    }
}
