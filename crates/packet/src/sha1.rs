//! SHA-1 (RFC 3174), implemented from the specification.
//!
//! Used only by the AH security plugin; no cryptographic crate exists in the
//! offline dependency set and the algorithm is ~100 lines. SHA-1 is what the
//! paper-era IPsec (RFC 1852 / 2404) actually used. This is a faithful,
//! test-vectored implementation — but 1998-era HMAC-SHA1, so do not reuse it
//! for modern systems.

/// Digest size in bytes.
pub const DIGEST_LEN: usize = 20;
/// Internal block size in bytes (relevant to HMAC).
pub const BLOCK_LEN: usize = 64;

/// Incremental SHA-1 hasher.
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    buffer: [u8; BLOCK_LEN],
    buffered: usize,
    length_bits: u64,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Create a hasher in the RFC 3174 initial state.
    pub fn new() -> Self {
        Sha1 {
            state: [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0],
            buffer: [0u8; BLOCK_LEN],
            buffered: 0,
            length_bits: 0,
        }
    }

    /// Feed data.
    pub fn update(&mut self, mut data: &[u8]) {
        self.length_bits = self
            .length_bits
            .wrapping_add((data.len() as u64).wrapping_mul(8));
        if self.buffered > 0 {
            let take = (BLOCK_LEN - self.buffered).min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == BLOCK_LEN {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            } else {
                // Data fully absorbed into the partial block; the tail
                // below must not clobber `buffered`.
                return;
            }
        }
        while data.len() >= BLOCK_LEN {
            let mut block = [0u8; BLOCK_LEN];
            block.copy_from_slice(&data[..BLOCK_LEN]);
            self.compress(&block);
            data = &data[BLOCK_LEN..];
        }
        self.buffer[..data.len()].copy_from_slice(data);
        self.buffered = data.len();
    }

    /// Finish and produce the digest.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let len_bits = self.length_bits;
        self.update(&[0x80]);
        while self.buffered != 56 {
            self.update(&[0]);
        }
        // Length goes in directly (bypassing update's length accounting,
        // which we snapshotted before padding).
        self.buffer[56..64].copy_from_slice(&len_bits.to_be_bytes());
        let block = self.buffer;
        self.compress(&block);
        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// One-shot convenience.
    pub fn digest(data: &[u8]) -> [u8; DIGEST_LEN] {
        let mut h = Sha1::new();
        h.update(data);
        h.finalize()
    }

    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A827999),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// RFC 3174 §7.3 test vectors.
    #[test]
    fn rfc3174_vectors() {
        assert_eq!(
            hex(&Sha1::digest(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
        assert_eq!(
            hex(&Sha1::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
        let a1m: Vec<u8> = std::iter::repeat_n(b'a', 1_000_000).collect();
        assert_eq!(
            hex(&Sha1::digest(&a1m)),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
        assert_eq!(
            hex(&Sha1::digest(
                &b"0123456701234567012345670123456701234567012345670123456701234567".repeat(10)
            )),
            "dea356a2cddd90c7a7ecedc5ebb563934f460452"
        );
    }

    #[test]
    fn empty_input() {
        assert_eq!(
            hex(&Sha1::digest(b"")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for split in [0, 1, 63, 64, 65, 500, 999, 1000] {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), Sha1::digest(&data), "split {split}");
        }
    }
}
