//! The Internet checksum (RFC 1071) and its incremental update (RFC 1624).
//!
//! The forwarding fast path decrements the IPv4 TTL on every packet; the
//! paper's best-effort baseline (and every real router) uses the incremental
//! form rather than recomputing the sum over the whole header, so both are
//! provided and benchmarked.

use crate::ip::Protocol;
use std::net::{Ipv4Addr, Ipv6Addr};

/// Running ones-complement sum, fed 16-bit words in network order.
#[derive(Debug, Clone, Copy, Default)]
pub struct Checksum {
    sum: u32,
}

impl Checksum {
    /// Start a fresh sum.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a byte slice. Odd-length slices are padded with a zero byte, per
    /// RFC 1071 — callers chaining multiple slices must therefore only pass
    /// an odd-length slice as the final one.
    pub fn add_bytes(&mut self, data: &[u8]) {
        let mut chunks = data.chunks_exact(2);
        for c in &mut chunks {
            self.sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
        }
        if let [last] = chunks.remainder() {
            self.sum += u32::from(u16::from_be_bytes([*last, 0]));
        }
    }

    /// Add a single 16-bit word.
    pub fn add_u16(&mut self, word: u16) {
        self.sum += u32::from(word);
    }

    /// Add a 32-bit value as two 16-bit words.
    pub fn add_u32(&mut self, word: u32) {
        self.add_u16((word >> 16) as u16);
        self.add_u16(word as u16);
    }

    /// Finish: fold carries and take the ones complement.
    pub fn finish(self) -> u16 {
        let mut sum = self.sum;
        while sum >> 16 != 0 {
            sum = (sum & 0xFFFF) + (sum >> 16);
        }
        !(sum as u16)
    }
}

/// Compute the checksum of `data` (e.g. an IPv4 header with its checksum
/// field zeroed, or zeroed implicitly by summing around it).
pub fn checksum(data: &[u8]) -> u16 {
    let mut c = Checksum::new();
    c.add_bytes(data);
    c.finish()
}

/// Verify a buffer that *includes* its checksum field: the total must be
/// zero (i.e. the folded sum is `0xFFFF` before complementing).
pub fn verify(data: &[u8]) -> bool {
    checksum(data) == 0
}

/// RFC 1624 incremental update: given the old checksum and one 16-bit field
/// changing `old` → `new`, return the new checksum. Used for TTL/hop-limit
/// rewrites on the fast path.
pub fn update_u16(old_checksum: u16, old: u16, new: u16) -> u16 {
    // HC' = ~(~HC + ~m + m')   (RFC 1624 eq. 3, avoids the -0 pitfall)
    let mut sum = u32::from(!old_checksum) + u32::from(!old) + u32::from(new);
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

/// Pseudo-header sum for IPv4 transport checksums (UDP/TCP).
pub fn pseudo_header_v4(src: Ipv4Addr, dst: Ipv4Addr, protocol: Protocol, length: u32) -> Checksum {
    let mut c = Checksum::new();
    c.add_u32(u32::from(src));
    c.add_u32(u32::from(dst));
    c.add_u16(u16::from(u8::from(protocol)));
    c.add_u32(length);
    c
}

/// Pseudo-header sum for IPv6 transport checksums (RFC 2460 §8.1).
pub fn pseudo_header_v6(src: Ipv6Addr, dst: Ipv6Addr, protocol: Protocol, length: u32) -> Checksum {
    let mut c = Checksum::new();
    c.add_bytes(&src.octets());
    c.add_bytes(&dst.octets());
    c.add_u32(length);
    c.add_u32(u32::from(u8::from(protocol)));
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Worked example from RFC 1071 §3: the sequence 00 01 f2 03 f4 f5 f6 f7
    /// sums to ddf2 (before complement).
    #[test]
    fn rfc1071_example() {
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(checksum(&data), !0xddf2);
    }

    #[test]
    fn odd_length_pads_zero() {
        assert_eq!(checksum(&[0x12]), !0x1200);
        assert_eq!(checksum(&[0x12, 0x00]), !0x1200);
    }

    #[test]
    fn verify_detects_corruption() {
        // A real IPv4 header (from RFC 1071-era examples / tcpdump capture).
        let mut hdr = [
            0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8,
            0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7,
        ];
        let c = checksum(&hdr);
        hdr[10..12].copy_from_slice(&c.to_be_bytes());
        // Known value for this classic example header.
        assert_eq!(c, 0xb861);
        assert!(verify(&hdr));
        hdr[8] = hdr[8].wrapping_sub(1); // corrupt TTL
        assert!(!verify(&hdr));
    }

    #[test]
    fn incremental_matches_full_recompute() {
        let mut hdr = [
            0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8,
            0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7,
        ];
        let c0 = checksum(&hdr);
        hdr[10..12].copy_from_slice(&c0.to_be_bytes());

        // Decrement the TTL: the ttl/protocol pair is bytes 8..10.
        let old_word = u16::from_be_bytes([hdr[8], hdr[9]]);
        hdr[8] -= 1;
        let new_word = u16::from_be_bytes([hdr[8], hdr[9]]);
        let incr = update_u16(c0, old_word, new_word);

        hdr[10] = 0;
        hdr[11] = 0;
        let full = checksum(&hdr);
        assert_eq!(incr, full);
    }

    #[test]
    fn incremental_is_involutive() {
        // Applying the inverse change restores the original checksum.
        let c0 = 0x1234u16;
        let c1 = update_u16(c0, 0x4011, 0x3f11);
        let c2 = update_u16(c1, 0x3f11, 0x4011);
        assert_eq!(c0, c2);
    }

    #[test]
    fn u32_equals_two_u16() {
        let mut a = Checksum::new();
        a.add_u32(0xDEAD_BEEF);
        let mut b = Checksum::new();
        b.add_u16(0xDEAD);
        b.add_u16(0xBEEF);
        assert_eq!(a.finish(), b.finish());
    }
}
