//! # rp-packet — wire formats and packet buffers for the Router Plugins EISR
//!
//! This crate is the lowest substrate of the Router Plugins reproduction
//! (Decasper et al., SIGCOMM '98). It provides:
//!
//! * Zero-copy **wrapper types** over byte slices for IPv4, IPv6, UDP, TCP,
//!   ICMP, IPv6 extension headers and the IPsec AH/ESP headers, in the style
//!   of `smoltcp`: `Ipv4Packet<&[u8]>` for parsing, `Ipv4Packet<&mut [u8]>`
//!   for in-place mutation, plus `*Repr` value types with `emit`.
//! * The Internet **checksum** (RFC 1071) with incremental update
//!   (RFC 1624) used by the forwarding fast path for TTL decrement.
//! * [`Mbuf`] — the BSD `mbuf` analogue: an owned packet buffer carrying the
//!   metadata the architecture threads through the data path, most
//!   importantly the **flow index** (FIX) that caches the flow-table row for
//!   gates after the first one.
//! * [`FlowTuple`] — the paper's six-tuple `<src, dst, proto, sport, dport,
//!   incoming interface>` and its extraction from raw packets (including the
//!   IPv6 extension-header walk).
//! * From-scratch **SHA-1/HMAC-SHA1** (RFC 3174 / RFC 2104) for the AH
//!   security plugin; no crypto crates are available offline and the
//!   algorithms are small and fully test-vectored.
//!
//! Nothing in this crate knows about plugins, gates or classification; those
//! live in `rp-classifier` and `router-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod checksum;
pub mod clock;
pub mod error;
pub mod ext_hdr;
pub mod flow;
pub mod hmac;
pub mod icmp;
pub mod ip;
pub mod ipsec;
pub mod ipv4;
pub mod ipv4_opts;
pub mod ipv6;
pub mod mbuf;
pub mod pool;
pub mod sha1;
pub mod tcp;
pub mod udp;
pub mod wire;

pub use clock::coarse_now_ns;
pub use error::{Error, Result};
pub use flow::FlowTuple;
pub use ip::{IpVersion, Protocol};
pub use mbuf::{FlowIndex, Mbuf};
pub use pool::{MbufPool, PoolStats};
