//! TCP header wrapper (the subset a router needs: ports, sequence numbers,
//! flags — for classification, firewalling and the TCP-monitoring plugin the
//! paper lists among envisioned plugin types).

use crate::checksum::{self};
use crate::ip::Protocol;
use crate::wire::{get_u16, get_u32, set_u16, set_u32};
use crate::{Error, Result};
use std::net::Ipv6Addr;

/// Minimum TCP header length (data offset = 5).
pub const HEADER_LEN: usize = 20;

/// TCP flag bits (byte 13 of the header), a transparent newtype over the
/// raw flag byte (the `bitflags` crate is not in the offline set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// FIN — sender is done.
    pub const FIN: TcpFlags = TcpFlags(0x01);
    /// SYN — connection setup.
    pub const SYN: TcpFlags = TcpFlags(0x02);
    /// RST — reset.
    pub const RST: TcpFlags = TcpFlags(0x04);
    /// PSH — push.
    pub const PSH: TcpFlags = TcpFlags(0x08);
    /// ACK — acknowledgment field valid.
    pub const ACK: TcpFlags = TcpFlags(0x10);
    /// URG — urgent pointer valid.
    pub const URG: TcpFlags = TcpFlags(0x20);

    /// True if every bit of `other` is set in `self`.
    pub fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Union of two flag sets.
    pub fn union(self, other: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | other.0)
    }
}

/// A read/write view of a TCP segment.
#[derive(Debug, Clone)]
pub struct TcpPacket<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> TcpPacket<T> {
    /// Wrap without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        TcpPacket { buffer }
    }

    /// Wrap and validate the fixed header and data offset.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let pkt = Self::new_unchecked(buffer);
        let data = pkt.buffer.as_ref();
        if data.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        let off = pkt.header_len();
        if off < HEADER_LEN || off > data.len() {
            return Err(Error::Malformed);
        }
        Ok(pkt)
    }

    /// Consume the wrapper and return the inner buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        get_u16(self.buffer.as_ref(), 0)
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        get_u16(self.buffer.as_ref(), 2)
    }

    /// Sequence number.
    pub fn seq_number(&self) -> u32 {
        get_u32(self.buffer.as_ref(), 4)
    }

    /// Acknowledgment number.
    pub fn ack_number(&self) -> u32 {
        get_u32(self.buffer.as_ref(), 8)
    }

    /// Header length in bytes (data offset × 4).
    pub fn header_len(&self) -> usize {
        usize::from(self.buffer.as_ref()[12] >> 4) * 4
    }

    /// Flag byte.
    pub fn flags(&self) -> TcpFlags {
        TcpFlags(self.buffer.as_ref()[13] & 0x3F)
    }

    /// Receive window.
    pub fn window(&self) -> u16 {
        get_u16(self.buffer.as_ref(), 14)
    }

    /// Checksum field.
    pub fn checksum(&self) -> u16 {
        get_u16(self.buffer.as_ref(), 16)
    }

    /// Payload (after the variable-length header).
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[self.header_len()..]
    }

    /// Verify checksum with an IPv6 pseudo-header; `segment_len` is the TCP
    /// header + payload length from the IP layer.
    pub fn verify_checksum_v6(&self, src: Ipv6Addr, dst: Ipv6Addr) -> bool {
        let data = self.buffer.as_ref();
        let mut c = checksum::pseudo_header_v6(src, dst, Protocol::Tcp, data.len() as u32);
        c.add_bytes(data);
        c.finish() == 0
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> TcpPacket<T> {
    /// Set the source port.
    pub fn set_src_port(&mut self, p: u16) {
        set_u16(self.buffer.as_mut(), 0, p);
    }

    /// Set the destination port.
    pub fn set_dst_port(&mut self, p: u16) {
        set_u16(self.buffer.as_mut(), 2, p);
    }

    /// Set the sequence number.
    pub fn set_seq_number(&mut self, v: u32) {
        set_u32(self.buffer.as_mut(), 4, v);
    }

    /// Set the acknowledgment number.
    pub fn set_ack_number(&mut self, v: u32) {
        set_u32(self.buffer.as_mut(), 8, v);
    }

    /// Set data offset (header length in bytes; must be a multiple of 4).
    pub fn set_header_len(&mut self, bytes: usize) {
        debug_assert_eq!(bytes % 4, 0);
        let data = self.buffer.as_mut();
        data[12] = ((bytes / 4) as u8) << 4;
    }

    /// Set the flag byte.
    pub fn set_flags(&mut self, f: TcpFlags) {
        let data = self.buffer.as_mut();
        data[13] = (data[13] & 0xC0) | (f.0 & 0x3F);
    }

    /// Set the receive window.
    pub fn set_window(&mut self, w: u16) {
        set_u16(self.buffer.as_mut(), 14, w);
    }

    /// Set the checksum field.
    pub fn set_checksum(&mut self, c: u16) {
        set_u16(self.buffer.as_mut(), 16, c);
    }

    /// Compute and store the checksum with an IPv6 pseudo-header.
    pub fn fill_checksum_v6(&mut self, src: Ipv6Addr, dst: Ipv6Addr) {
        self.set_checksum(0);
        let data = self.buffer.as_ref();
        let mut c = checksum::pseudo_header_v6(src, dst, Protocol::Tcp, data.len() as u32);
        c.add_bytes(data);
        let sum = c.finish();
        self.set_checksum(sum);
    }
}

/// Parsed TCP header essentials.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpRepr {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number.
    pub ack: u32,
    /// Flags.
    pub flags: TcpFlags,
    /// Window.
    pub window: u16,
    /// Payload length.
    pub payload_len: usize,
}

impl TcpRepr {
    /// Bytes occupied when emitted (no options).
    pub fn buffer_len(&self) -> usize {
        HEADER_LEN + self.payload_len
    }

    /// Emit header fields into a zeroed buffer.
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, packet: &mut TcpPacket<T>) {
        packet.set_src_port(self.src_port);
        packet.set_dst_port(self.dst_port);
        packet.set_seq_number(self.seq);
        packet.set_ack_number(self.ack);
        packet.set_header_len(HEADER_LEN);
        packet.set_flags(self.flags);
        packet.set_window(self.window);
        packet.set_checksum(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let repr = TcpRepr {
            src_port: 443,
            dst_port: 51000,
            seq: 0x11223344,
            ack: 0x55667788,
            flags: TcpFlags::SYN.union(TcpFlags::ACK),
            window: 65535,
            payload_len: 3,
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        let mut pkt = TcpPacket::new_unchecked(&mut buf[..]);
        repr.emit(&mut pkt);
        pkt.payload_mut_for_test().copy_from_slice(b"abc");

        let pkt = TcpPacket::new_checked(&buf[..]).unwrap();
        assert_eq!(pkt.src_port(), 443);
        assert_eq!(pkt.dst_port(), 51000);
        assert_eq!(pkt.seq_number(), 0x11223344);
        assert!(pkt.flags().contains(TcpFlags::SYN));
        assert!(pkt.flags().contains(TcpFlags::ACK));
        assert!(!pkt.flags().contains(TcpFlags::FIN));
        assert_eq!(pkt.payload(), b"abc");
    }

    impl<T: AsRef<[u8]> + AsMut<[u8]>> TcpPacket<T> {
        fn payload_mut_for_test(&mut self) -> &mut [u8] {
            let off = self.header_len();
            &mut self.buffer.as_mut()[off..]
        }
    }

    #[test]
    fn checksum_v6() {
        let src = Ipv6Addr::new(0xfe80, 0, 0, 0, 0, 0, 0, 1);
        let dst = Ipv6Addr::new(0xfe80, 0, 0, 0, 0, 0, 0, 2);
        let repr = TcpRepr {
            src_port: 1,
            dst_port: 2,
            seq: 7,
            ack: 8,
            flags: TcpFlags::ACK,
            window: 1000,
            payload_len: 0,
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        let mut pkt = TcpPacket::new_unchecked(&mut buf[..]);
        repr.emit(&mut pkt);
        pkt.fill_checksum_v6(src, dst);
        assert!(pkt.verify_checksum_v6(src, dst));
        buf[14] ^= 0xFF;
        let pkt = TcpPacket::new_checked(&buf[..]).unwrap();
        assert!(!pkt.verify_checksum_v6(src, dst));
    }

    #[test]
    fn bad_offset_rejected() {
        let mut buf = [0u8; 20];
        buf[12] = 0x30; // data offset 3 (12 bytes) < 20
        assert_eq!(
            TcpPacket::new_checked(&buf[..]).unwrap_err(),
            Error::Malformed
        );
        buf[12] = 0xF0; // 60 bytes > buffer
        assert_eq!(
            TcpPacket::new_checked(&buf[..]).unwrap_err(),
            Error::Malformed
        );
    }
}
