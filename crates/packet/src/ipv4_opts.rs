//! IPv4 header options (RFC 791 §3.1): the original "IP option plugin"
//! target — the paper notes an IP option plugin can be "a dozen lines of
//! code". This module supplies the option iterator and builders the
//! `opt4` plugin consumes.

use crate::{Error, Result};

/// Option kinds the router recognises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptionKind(pub u8);

impl OptionKind {
    /// End of option list.
    pub const EOL: OptionKind = OptionKind(0);
    /// No-operation padding.
    pub const NOP: OptionKind = OptionKind(1);
    /// Record route.
    pub const RECORD_ROUTE: OptionKind = OptionKind(7);
    /// Internet timestamp.
    pub const TIMESTAMP: OptionKind = OptionKind(68);
    /// Router alert (RFC 2113) — "routers should examine this packet".
    pub const ROUTER_ALERT: OptionKind = OptionKind(148);

    /// The copied flag (bit 7): option must be copied into fragments.
    pub fn copied(self) -> bool {
        self.0 & 0x80 != 0
    }
}

/// One parsed IPv4 option.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Option<'a> {
    /// Kind byte.
    pub kind: OptionKind,
    /// Option payload (without kind/length bytes).
    pub data: &'a [u8],
}

/// Iterator over the options area of an IPv4 header.
pub struct OptionIter<'a> {
    data: &'a [u8],
    pos: usize,
    done: bool,
}

impl<'a> OptionIter<'a> {
    /// Iterate a raw options slice (see [`crate::ipv4::Ipv4Packet::options`]).
    pub fn from_slice(data: &'a [u8]) -> OptionIter<'a> {
        OptionIter {
            data,
            pos: 0,
            done: false,
        }
    }
}

impl<'a> Iterator for OptionIter<'a> {
    type Item = Result<Ipv4Option<'a>>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done || self.pos >= self.data.len() {
            return None;
        }
        let kind = OptionKind(self.data[self.pos]);
        match kind {
            OptionKind::EOL => {
                self.done = true;
                None
            }
            OptionKind::NOP => {
                self.pos += 1;
                Some(Ok(Ipv4Option { kind, data: &[] }))
            }
            _ => {
                if self.pos + 2 > self.data.len() {
                    self.done = true;
                    return Some(Err(Error::Truncated));
                }
                let len = usize::from(self.data[self.pos + 1]);
                if len < 2 || self.pos + len > self.data.len() {
                    self.done = true;
                    return Some(Err(Error::Malformed));
                }
                let data = &self.data[self.pos + 2..self.pos + len];
                self.pos += len;
                Some(Ok(Ipv4Option { kind, data }))
            }
        }
    }
}

/// Serialise options into a header options area, padded with EOL to a
/// 4-byte multiple. Returns the padded bytes (possibly empty).
pub fn build_options(options: &[(OptionKind, &[u8])]) -> Vec<u8> {
    let mut out = Vec::new();
    for (kind, data) in options {
        match *kind {
            OptionKind::NOP => out.push(OptionKind::NOP.0),
            k => {
                out.push(k.0);
                out.push((data.len() + 2) as u8);
                out.extend_from_slice(data);
            }
        }
    }
    while out.len() % 4 != 0 {
        out.push(OptionKind::EOL.0);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_iterate() {
        let opts = build_options(&[(OptionKind::NOP, &[]), (OptionKind::ROUTER_ALERT, &[0, 0])]);
        assert_eq!(opts.len() % 4, 0);
        let parsed: Vec<_> = OptionIter::from_slice(&opts).map(|o| o.unwrap()).collect();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].kind, OptionKind::NOP);
        assert_eq!(parsed[1].kind, OptionKind::ROUTER_ALERT);
        assert_eq!(parsed[1].data, &[0, 0]);
    }

    #[test]
    fn eol_terminates() {
        let raw = [1u8, 0, 7, 7, 7, 7]; // NOP, EOL, then garbage
        let parsed: Vec<_> = OptionIter::from_slice(&raw).collect();
        assert_eq!(parsed.len(), 1);
    }

    #[test]
    fn malformed_lengths() {
        // Length 1 is illegal.
        let raw = [148u8, 1, 0, 0];
        let out: Vec<_> = OptionIter::from_slice(&raw).collect();
        assert_eq!(out.len(), 1);
        assert!(out[0].is_err());
        // Length beyond the buffer.
        let raw = [148u8, 40, 0, 0];
        let out: Vec<_> = OptionIter::from_slice(&raw).collect();
        assert!(out[0].is_err());
        // Truncated at the kind byte boundary.
        let raw = [148u8];
        let out: Vec<_> = OptionIter::from_slice(&raw).collect();
        assert!(out[0].is_err());
    }

    #[test]
    fn copied_flag() {
        assert!(OptionKind::ROUTER_ALERT.copied());
        assert!(!OptionKind::RECORD_ROUTE.copied());
    }
}
