//! IPv6 header wrapper and representation.
//!
//! The paper's testbed forwards 8 KB UDP/IPv6 datagrams (flow label unused),
//! so IPv6 is the primary wire format of the reproduction. Extension-header
//! handling lives in [`crate::ext_hdr`].

use crate::ip::Protocol;
use crate::wire::{get_u128, get_u16, get_u32, set_u128, set_u16, set_u32};
use crate::{Error, Result};
use std::net::Ipv6Addr;

/// Fixed IPv6 header length.
pub const HEADER_LEN: usize = 40;

/// A read/write view of an IPv6 packet over any byte container.
#[derive(Debug, Clone)]
pub struct Ipv6Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Ipv6Packet<T> {
    /// Wrap a buffer without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        Ipv6Packet { buffer }
    }

    /// Wrap and validate version and length consistency.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let pkt = Self::new_unchecked(buffer);
        pkt.check()?;
        Ok(pkt)
    }

    fn check(&self) -> Result<()> {
        let data = self.buffer.as_ref();
        if data.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        if data[0] >> 4 != 6 {
            return Err(Error::BadVersion);
        }
        let payload = usize::from(get_u16(data, 4));
        if data.len() < HEADER_LEN + payload {
            return Err(Error::BadLength);
        }
        Ok(())
    }

    /// Consume the wrapper and return the inner buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Traffic class byte.
    pub fn traffic_class(&self) -> u8 {
        let data = self.buffer.as_ref();
        (data[0] << 4) | (data[1] >> 4)
    }

    /// 20-bit flow label. The paper notes its testbed does *not* use the
    /// flow label — classification is on the six-tuple — but the field is
    /// modelled for completeness.
    pub fn flow_label(&self) -> u32 {
        get_u32(self.buffer.as_ref(), 0) & 0x000F_FFFF
    }

    /// Payload length (everything after the fixed header, including
    /// extension headers).
    pub fn payload_len(&self) -> u16 {
        get_u16(self.buffer.as_ref(), 4)
    }

    /// Next header directly after the fixed header.
    pub fn next_header(&self) -> Protocol {
        Protocol::from(self.buffer.as_ref()[6])
    }

    /// Hop limit.
    pub fn hop_limit(&self) -> u8 {
        self.buffer.as_ref()[7]
    }

    /// Source address.
    pub fn src_addr(&self) -> Ipv6Addr {
        Ipv6Addr::from(get_u128(self.buffer.as_ref(), 8))
    }

    /// Destination address.
    pub fn dst_addr(&self) -> Ipv6Addr {
        Ipv6Addr::from(get_u128(self.buffer.as_ref(), 24))
    }

    /// Payload slice (extension headers + upper-layer data).
    pub fn payload(&self) -> &[u8] {
        let data = self.buffer.as_ref();
        let end = (HEADER_LEN + usize::from(self.payload_len())).min(data.len());
        &data[HEADER_LEN..end]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Ipv6Packet<T> {
    /// Set the traffic class.
    pub fn set_traffic_class(&mut self, tc: u8) {
        let data = self.buffer.as_mut();
        data[0] = (data[0] & 0xF0) | (tc >> 4);
        data[1] = (data[1] & 0x0F) | (tc << 4);
    }

    /// Set the flow label (lower 20 bits used).
    pub fn set_flow_label(&mut self, label: u32) {
        let data = self.buffer.as_mut();
        let word = (get_u32(data, 0) & 0xFFF0_0000) | (label & 0x000F_FFFF);
        set_u32(data, 0, word);
    }

    /// Set the payload length.
    pub fn set_payload_len(&mut self, len: u16) {
        set_u16(self.buffer.as_mut(), 4, len);
    }

    /// Set the next-header field.
    pub fn set_next_header(&mut self, p: Protocol) {
        self.buffer.as_mut()[6] = p.into();
    }

    /// Set the hop limit.
    pub fn set_hop_limit(&mut self, hl: u8) {
        self.buffer.as_mut()[7] = hl;
    }

    /// Set the source address.
    pub fn set_src_addr(&mut self, a: Ipv6Addr) {
        set_u128(self.buffer.as_mut(), 8, u128::from(a));
    }

    /// Set the destination address.
    pub fn set_dst_addr(&mut self, a: Ipv6Addr) {
        set_u128(self.buffer.as_mut(), 24, u128::from(a));
    }

    /// Forwarding fast path: decrement the hop limit. IPv6 has no header
    /// checksum, so this is a single byte store. Errors if already zero.
    pub fn decrement_hop_limit(&mut self) -> Result<u8> {
        let data = self.buffer.as_mut();
        if data[7] == 0 {
            return Err(Error::Malformed);
        }
        data[7] -= 1;
        Ok(data[7])
    }

    /// Mutable payload slice.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let end = HEADER_LEN + usize::from(self.payload_len());
        let data = self.buffer.as_mut();
        let end = end.min(data.len());
        &mut data[HEADER_LEN..end]
    }
}

/// Parsed IPv6 fixed header, used to build packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv6Repr {
    /// Source address.
    pub src_addr: Ipv6Addr,
    /// Destination address.
    pub dst_addr: Ipv6Addr,
    /// Next header after the fixed header.
    pub next_header: Protocol,
    /// Payload length in bytes.
    pub payload_len: usize,
    /// Hop limit.
    pub hop_limit: u8,
    /// Traffic class.
    pub traffic_class: u8,
    /// Flow label (20 bits).
    pub flow_label: u32,
}

impl Ipv6Repr {
    /// Parse a validated packet into a repr.
    pub fn parse<T: AsRef<[u8]>>(packet: &Ipv6Packet<T>) -> Ipv6Repr {
        Ipv6Repr {
            src_addr: packet.src_addr(),
            dst_addr: packet.dst_addr(),
            next_header: packet.next_header(),
            payload_len: usize::from(packet.payload_len()),
            hop_limit: packet.hop_limit(),
            traffic_class: packet.traffic_class(),
            flow_label: packet.flow_label(),
        }
    }

    /// Bytes this header occupies when emitted.
    pub fn buffer_len(&self) -> usize {
        HEADER_LEN
    }

    /// Emit the fixed header into the front of the packet buffer.
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, packet: &mut Ipv6Packet<T>) {
        {
            let data = packet.buffer.as_mut();
            data[0] = 0x60;
        }
        packet.set_traffic_class(self.traffic_class);
        packet.set_flow_label(self.flow_label);
        packet.set_payload_len(self.payload_len as u16);
        packet.set_next_header(self.next_header);
        packet.set_hop_limit(self.hop_limit);
        packet.set_src_addr(self.src_addr);
        packet.set_dst_addr(self.dst_addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(last: u16) -> Ipv6Addr {
        Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, last)
    }

    fn sample() -> Vec<u8> {
        let repr = Ipv6Repr {
            src_addr: addr(1),
            dst_addr: addr(2),
            next_header: Protocol::Udp,
            payload_len: 16,
            hop_limit: 64,
            traffic_class: 0xA5,
            flow_label: 0xBEEF,
        };
        let mut buf = vec![0u8; repr.buffer_len() + repr.payload_len];
        let mut pkt = Ipv6Packet::new_unchecked(&mut buf[..]);
        repr.emit(&mut pkt);
        buf
    }

    #[test]
    fn emit_parse_roundtrip() {
        let buf = sample();
        let pkt = Ipv6Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(pkt.src_addr(), addr(1));
        assert_eq!(pkt.dst_addr(), addr(2));
        assert_eq!(pkt.next_header(), Protocol::Udp);
        assert_eq!(pkt.hop_limit(), 64);
        assert_eq!(pkt.traffic_class(), 0xA5);
        assert_eq!(pkt.flow_label(), 0xBEEF);
        assert_eq!(pkt.payload().len(), 16);
    }

    #[test]
    fn traffic_class_and_flow_label_are_independent() {
        let mut buf = sample();
        let mut pkt = Ipv6Packet::new_unchecked(&mut buf[..]);
        pkt.set_flow_label(0xFFFFF);
        assert_eq!(pkt.traffic_class(), 0xA5);
        pkt.set_traffic_class(0x00);
        assert_eq!(pkt.flow_label(), 0xFFFFF);
    }

    #[test]
    fn checked_rejects_garbage() {
        assert_eq!(
            Ipv6Packet::new_checked(&[0u8; 39][..]).unwrap_err(),
            Error::Truncated
        );
        let mut buf = sample();
        buf[0] = 0x45;
        assert_eq!(
            Ipv6Packet::new_checked(&buf[..]).unwrap_err(),
            Error::BadVersion
        );
        let mut buf = sample();
        buf[5] = 0xFF; // payload_len too large
        assert_eq!(
            Ipv6Packet::new_checked(&buf[..]).unwrap_err(),
            Error::BadLength
        );
    }

    #[test]
    fn hop_limit_decrement() {
        let mut buf = sample();
        let mut pkt = Ipv6Packet::new_unchecked(&mut buf[..]);
        assert_eq!(pkt.decrement_hop_limit().unwrap(), 63);
        pkt.set_hop_limit(0);
        assert!(pkt.decrement_hop_limit().is_err());
    }
}
