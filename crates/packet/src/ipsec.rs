//! IPsec wire formats: the Authentication Header (AH, RFC 2402) and the
//! Encapsulating Security Payload (ESP, RFC 2406) as deployed in the
//! paper's era (RFC 1825 architecture).
//!
//! The security *plugins* in `router-core` use these views; this module only
//! knows the byte layouts and the transform bookkeeping (SPI, sequence
//! numbers, ICV placement, ESP trailer).

use crate::hmac::HmacSha1;
use crate::ip::Protocol;
use crate::wire::{get_u32, set_u32};
use crate::{Error, Result};

/// AH fixed part: next(1) len(1) reserved(2) spi(4) seq(4) = 12 bytes,
/// followed by the ICV.
pub const AH_FIXED_LEN: usize = 12;
/// The HMAC-SHA1-96 ICV length used by this implementation.
pub const AH_ICV_LEN: usize = 12;
/// Total AH header length with HMAC-SHA1-96.
pub const AH_TOTAL_LEN: usize = AH_FIXED_LEN + AH_ICV_LEN;

/// A read/write view of an Authentication Header.
#[derive(Debug, Clone)]
pub struct AhHeader<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> AhHeader<T> {
    /// Wrap without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        AhHeader { buffer }
    }

    /// Wrap and validate the length field against the buffer.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let hdr = Self::new_unchecked(buffer);
        let data = hdr.buffer.as_ref();
        if data.len() < AH_FIXED_LEN {
            return Err(Error::Truncated);
        }
        if data.len() < hdr.total_len() {
            return Err(Error::BadLength);
        }
        Ok(hdr)
    }

    /// Protocol following AH.
    pub fn next_header(&self) -> Protocol {
        Protocol::from(self.buffer.as_ref()[0])
    }

    /// `payload_len` field: AH length in 4-byte units minus 2.
    pub fn payload_len_field(&self) -> u8 {
        self.buffer.as_ref()[1]
    }

    /// Total AH length in bytes.
    pub fn total_len(&self) -> usize {
        (usize::from(self.payload_len_field()) + 2) * 4
    }

    /// Security Parameters Index.
    pub fn spi(&self) -> u32 {
        get_u32(self.buffer.as_ref(), 4)
    }

    /// Anti-replay sequence number.
    pub fn seq(&self) -> u32 {
        get_u32(self.buffer.as_ref(), 8)
    }

    /// Integrity check value bytes.
    pub fn icv(&self) -> &[u8] {
        &self.buffer.as_ref()[AH_FIXED_LEN..self.total_len()]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> AhHeader<T> {
    /// Set the next-header field.
    pub fn set_next_header(&mut self, p: Protocol) {
        self.buffer.as_mut()[0] = p.into();
    }

    /// Set the AH length field from a byte count (must be 4-byte aligned).
    pub fn set_total_len(&mut self, bytes: usize) {
        debug_assert_eq!(bytes % 4, 0);
        self.buffer.as_mut()[1] = (bytes / 4 - 2) as u8;
    }

    /// Set the SPI.
    pub fn set_spi(&mut self, spi: u32) {
        set_u32(self.buffer.as_mut(), 4, spi);
    }

    /// Set the sequence number.
    pub fn set_seq(&mut self, seq: u32) {
        set_u32(self.buffer.as_mut(), 8, seq);
    }

    /// Store the ICV.
    pub fn set_icv(&mut self, icv: &[u8]) {
        let len = self.total_len();
        self.buffer.as_mut()[AH_FIXED_LEN..len].copy_from_slice(icv);
    }
}

/// Compute the AH ICV over `spi || seq || next || payload` with the ICV
/// field implicitly zeroed (we MAC the logical content rather than the
/// mutable header image; both ends of this implementation agree).
pub fn ah_icv(key: &[u8], spi: u32, seq: u32, next: Protocol, payload: &[u8]) -> [u8; AH_ICV_LEN] {
    let mut h = HmacSha1::new(key);
    h.update(&spi.to_be_bytes());
    h.update(&seq.to_be_bytes());
    h.update(&[u8::from(next)]);
    h.update(payload);
    let full = h.finalize();
    let mut out = [0u8; AH_ICV_LEN];
    out.copy_from_slice(&full[..AH_ICV_LEN]);
    out
}

/// ESP header: spi(4) seq(4), then ciphertext, then trailer
/// `pad .. pad_len(1) next_header(1)` and optional ICV.
pub const ESP_HEADER_LEN: usize = 8;
/// ESP trailer fixed part (pad_len + next_header).
pub const ESP_TRAILER_LEN: usize = 2;

/// A read-only view of an ESP packet (header + opaque body).
#[derive(Debug, Clone)]
pub struct EspPacket<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> EspPacket<T> {
    /// Wrap and validate minimum length.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let pkt = EspPacket { buffer };
        if pkt.buffer.as_ref().len() < ESP_HEADER_LEN + ESP_TRAILER_LEN {
            return Err(Error::Truncated);
        }
        Ok(pkt)
    }

    /// Security Parameters Index.
    pub fn spi(&self) -> u32 {
        get_u32(self.buffer.as_ref(), 0)
    }

    /// Anti-replay sequence number.
    pub fn seq(&self) -> u32 {
        get_u32(self.buffer.as_ref(), 4)
    }

    /// Ciphertext body (everything after the 8-byte header).
    pub fn body(&self) -> &[u8] {
        &self.buffer.as_ref()[ESP_HEADER_LEN..]
    }
}

/// The paper-era cipher is DES-CBC; exporting DES would add nothing to the
/// architecture being reproduced, so ESP uses an explicitly-labelled *toy*
/// stream transform (keyed byte stream xor) that preserves the interesting
/// properties: length preservation modulo padding, key dependence, and a
/// real trailer walk on decryption. **Not cryptography** — a stand-in
/// documented in DESIGN.md.
#[derive(Debug, Clone)]
pub struct ToyCipher {
    key: [u8; 16],
}

impl ToyCipher {
    /// Build from arbitrary key bytes.
    pub fn new(key: &[u8]) -> Self {
        let mut k = [0u8; 16];
        for (i, b) in key.iter().enumerate() {
            k[i % 16] ^= *b;
        }
        // Avoid the all-zero degenerate keystream.
        k[0] |= 1;
        ToyCipher { key: k }
    }

    fn keystream_byte(&self, seq: u32, idx: usize) -> u8 {
        let k = self.key[idx % 16];
        let mix = (seq as usize)
            .wrapping_mul(0x9E37)
            .wrapping_add(idx.wrapping_mul(0x85EB))
            .wrapping_add(usize::from(k) << 3);
        (mix ^ (mix >> 8) ^ usize::from(k)) as u8
    }

    /// In-place transform (xor keystream, involutive).
    pub fn apply(&self, seq: u32, data: &mut [u8]) {
        for (i, b) in data.iter_mut().enumerate() {
            *b ^= self.keystream_byte(seq, i);
        }
    }
}

/// Length of the keyed integrity value appended to the ciphertext (real
/// ESP pairs the cipher with an authenticator; the toy transform carries
/// a 4-byte keyed fold so corruption and wrong keys are detected
/// deterministically rather than probabilistically via pad bytes).
pub const ESP_ICV_LEN: usize = 4;

impl ToyCipher {
    /// Keyed fold over plaintext bytes — the toy authenticator.
    fn icv(&self, seq: u32, data: &[u8]) -> [u8; ESP_ICV_LEN] {
        let mut acc: u32 = 0x6A5D_21C3 ^ seq;
        for (i, k) in self.key.iter().enumerate() {
            acc = acc.rotate_left(3) ^ (u32::from(*k) << (i % 4 * 8));
        }
        for b in data {
            acc = acc
                .rotate_left(5)
                .wrapping_add(u32::from(*b))
                .wrapping_mul(0x0101_0101 | 1);
        }
        acc.to_be_bytes()
    }
}

/// Encapsulate `payload` (carrying `next` protocol) into an ESP packet:
/// header, encrypted (payload + padding + trailer), keyed ICV. 4-byte
/// alignment is used.
pub fn esp_encapsulate(
    cipher: &ToyCipher,
    spi: u32,
    seq: u32,
    next: Protocol,
    payload: &[u8],
) -> Vec<u8> {
    let pad = (4 - (payload.len() + ESP_TRAILER_LEN) % 4) % 4;
    let body_len = payload.len() + pad + ESP_TRAILER_LEN;
    let mut out = vec![0u8; ESP_HEADER_LEN + body_len + ESP_ICV_LEN];
    set_u32(&mut out, 0, spi);
    set_u32(&mut out, 4, seq);
    out[ESP_HEADER_LEN..ESP_HEADER_LEN + payload.len()].copy_from_slice(payload);
    for (i, slot) in out[ESP_HEADER_LEN + payload.len()..ESP_HEADER_LEN + payload.len() + pad]
        .iter_mut()
        .enumerate()
    {
        *slot = (i + 1) as u8; // RFC 2406 monotonic pad bytes
    }
    out[ESP_HEADER_LEN + body_len - 2] = pad as u8;
    out[ESP_HEADER_LEN + body_len - 1] = next.into();
    let icv = cipher.icv(seq, &out[ESP_HEADER_LEN..ESP_HEADER_LEN + body_len]);
    cipher.apply(seq, &mut out[ESP_HEADER_LEN..ESP_HEADER_LEN + body_len]);
    out[ESP_HEADER_LEN + body_len..].copy_from_slice(&icv);
    out
}

/// Decapsulate an ESP packet, returning `(next_protocol, plaintext)`.
pub fn esp_decapsulate(cipher: &ToyCipher, packet: &[u8]) -> Result<(Protocol, Vec<u8>)> {
    let esp = EspPacket::new_checked(packet)?;
    let seq = esp.seq();
    let body_with_icv = esp.body();
    if body_with_icv.len() < ESP_TRAILER_LEN + ESP_ICV_LEN {
        return Err(Error::Truncated);
    }
    let (cipher_body, icv) = body_with_icv.split_at(body_with_icv.len() - ESP_ICV_LEN);
    let mut body = cipher_body.to_vec();
    cipher.apply(seq, &mut body);
    if cipher.icv(seq, &body) != icv {
        return Err(Error::BadChecksum);
    }
    let next = Protocol::from(body[body.len() - 1]);
    let pad = usize::from(body[body.len() - 2]);
    if pad + ESP_TRAILER_LEN > body.len() {
        return Err(Error::Malformed);
    }
    // Verify the monotonic pad as well (structure check).
    let payload_len = body.len() - ESP_TRAILER_LEN - pad;
    for (i, b) in body[payload_len..payload_len + pad].iter().enumerate() {
        if *b != (i + 1) as u8 {
            return Err(Error::BadChecksum);
        }
    }
    body.truncate(payload_len);
    Ok((next, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ah_header_roundtrip() {
        let mut buf = [0u8; AH_TOTAL_LEN];
        let mut ah = AhHeader::new_unchecked(&mut buf[..]);
        ah.set_next_header(Protocol::Udp);
        ah.set_total_len(AH_TOTAL_LEN);
        ah.set_spi(0x1001);
        ah.set_seq(42);
        let icv = ah_icv(b"test key", 0x1001, 42, Protocol::Udp, b"payload");
        ah.set_icv(&icv);

        let ah = AhHeader::new_checked(&buf[..]).unwrap();
        assert_eq!(ah.next_header(), Protocol::Udp);
        assert_eq!(ah.total_len(), AH_TOTAL_LEN);
        assert_eq!(ah.spi(), 0x1001);
        assert_eq!(ah.seq(), 42);
        assert_eq!(ah.icv(), &icv[..]);
    }

    #[test]
    fn ah_icv_depends_on_everything() {
        let base = ah_icv(b"k", 1, 1, Protocol::Udp, b"data");
        assert_ne!(base, ah_icv(b"k2", 1, 1, Protocol::Udp, b"data"));
        assert_ne!(base, ah_icv(b"k", 2, 1, Protocol::Udp, b"data"));
        assert_ne!(base, ah_icv(b"k", 1, 2, Protocol::Udp, b"data"));
        assert_ne!(base, ah_icv(b"k", 1, 1, Protocol::Tcp, b"data"));
        assert_ne!(base, ah_icv(b"k", 1, 1, Protocol::Udp, b"datb"));
    }

    #[test]
    fn esp_roundtrip_various_lengths() {
        let cipher = ToyCipher::new(b"vpn key");
        for len in [0usize, 1, 2, 3, 4, 5, 63, 64, 1500, 8192] {
            let payload: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let pkt = esp_encapsulate(&cipher, 7, 1000 + len as u32, Protocol::Tcp, &payload);
            assert_eq!((pkt.len() - ESP_HEADER_LEN) % 4, 0, "alignment at {len}");
            let (next, plain) = esp_decapsulate(&cipher, &pkt).unwrap();
            assert_eq!(next, Protocol::Tcp);
            assert_eq!(plain, payload, "len {len}");
        }
    }

    #[test]
    fn esp_ciphertext_differs_from_plaintext() {
        let cipher = ToyCipher::new(b"vpn key");
        let payload = vec![0xAAu8; 64];
        let pkt = esp_encapsulate(&cipher, 7, 5, Protocol::Udp, &payload);
        assert_ne!(&pkt[ESP_HEADER_LEN..ESP_HEADER_LEN + 64], &payload[..]);
    }

    #[test]
    fn esp_wrong_key_detected() {
        let c1 = ToyCipher::new(b"key one");
        let c2 = ToyCipher::new(b"key two");
        let pkt = esp_encapsulate(&c1, 7, 5, Protocol::Udp, &[1, 2, 3, 4, 5, 6, 7, 8]);
        // Wrong key: pad check fails (overwhelmingly likely) or pad length
        // is nonsense; either way an error, not silent garbage.
        assert!(esp_decapsulate(&c2, &pkt).is_err());
    }

    #[test]
    fn esp_spi_seq_visible_in_clear() {
        let cipher = ToyCipher::new(b"k");
        let pkt = esp_encapsulate(&cipher, 0xABCD, 77, Protocol::Udp, b"x");
        let esp = EspPacket::new_checked(&pkt[..]).unwrap();
        assert_eq!(esp.spi(), 0xABCD);
        assert_eq!(esp.seq(), 77);
    }
}
