//! IPv4 header wrapper and high-level representation.
//!
//! `Ipv4Packet<T>` is a zero-copy view: field accessors read straight from
//! the underlying buffer; with `T: AsMut<[u8]>` the same type supports
//! in-place mutation (the forwarding path rewrites TTL + checksum without
//! copying the packet). `Ipv4Repr` is the parsed value type used when
//! *constructing* packets (traffic generators, tests).

use crate::checksum;
use crate::ip::Protocol;
use crate::wire::{get_u16, get_u32, set_u16, set_u32};
use crate::{Error, Result};
use std::net::Ipv4Addr;

/// Minimum IPv4 header length (IHL = 5).
pub const HEADER_LEN: usize = 20;

/// A read/write view of an IPv4 packet over any byte container.
#[derive(Debug, Clone)]
pub struct Ipv4Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Ipv4Packet<T> {
    /// Wrap a buffer without validation. Use [`Ipv4Packet::new_checked`] for
    /// data arriving from the wire.
    pub fn new_unchecked(buffer: T) -> Self {
        Ipv4Packet { buffer }
    }

    /// Wrap and validate: version, IHL, and the length fields must be
    /// consistent with the buffer.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let pkt = Self::new_unchecked(buffer);
        pkt.check()?;
        Ok(pkt)
    }

    fn check(&self) -> Result<()> {
        let data = self.buffer.as_ref();
        if data.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        if data[0] >> 4 != 4 {
            return Err(Error::BadVersion);
        }
        let ihl = usize::from(data[0] & 0x0F) * 4;
        if ihl < HEADER_LEN {
            return Err(Error::Malformed);
        }
        let total = usize::from(get_u16(data, 2));
        if total < ihl {
            return Err(Error::BadLength);
        }
        if data.len() < total {
            return Err(Error::BadLength);
        }
        Ok(())
    }

    /// Consume the wrapper and return the inner buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Header length in bytes (IHL × 4).
    pub fn header_len(&self) -> usize {
        usize::from(self.buffer.as_ref()[0] & 0x0F) * 4
    }

    /// Differentiated services code point + ECN byte (historic ToS).
    pub fn tos(&self) -> u8 {
        self.buffer.as_ref()[1]
    }

    /// Total length field (header + payload) in bytes.
    pub fn total_len(&self) -> u16 {
        get_u16(self.buffer.as_ref(), 2)
    }

    /// Identification field.
    pub fn ident(&self) -> u16 {
        get_u16(self.buffer.as_ref(), 4)
    }

    /// Don't-fragment flag.
    pub fn dont_frag(&self) -> bool {
        self.buffer.as_ref()[6] & 0x40 != 0
    }

    /// More-fragments flag.
    pub fn more_frags(&self) -> bool {
        self.buffer.as_ref()[6] & 0x20 != 0
    }

    /// Fragment offset in 8-byte units.
    pub fn frag_offset(&self) -> u16 {
        get_u16(self.buffer.as_ref(), 6) & 0x1FFF
    }

    /// Time to live.
    pub fn ttl(&self) -> u8 {
        self.buffer.as_ref()[8]
    }

    /// Upper-layer protocol.
    pub fn protocol(&self) -> Protocol {
        Protocol::from(self.buffer.as_ref()[9])
    }

    /// Header checksum field.
    pub fn checksum(&self) -> u16 {
        get_u16(self.buffer.as_ref(), 10)
    }

    /// Source address.
    pub fn src_addr(&self) -> Ipv4Addr {
        Ipv4Addr::from(get_u32(self.buffer.as_ref(), 12))
    }

    /// Destination address.
    pub fn dst_addr(&self) -> Ipv4Addr {
        Ipv4Addr::from(get_u32(self.buffer.as_ref(), 16))
    }

    /// Verify the header checksum over IHL bytes.
    pub fn verify_checksum(&self) -> bool {
        let data = self.buffer.as_ref();
        checksum::verify(&data[..self.header_len()])
    }

    /// The options area (between the fixed header and the payload; empty
    /// when IHL = 5).
    pub fn options(&self) -> &[u8] {
        &self.buffer.as_ref()[20..self.header_len()]
    }

    /// Payload (everything after the header, bounded by `total_len`).
    pub fn payload(&self) -> &[u8] {
        let data = self.buffer.as_ref();
        let start = self.header_len();
        let end = usize::from(self.total_len()).min(data.len());
        &data[start..end]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Ipv4Packet<T> {
    /// Set the ToS byte.
    pub fn set_tos(&mut self, v: u8) {
        self.buffer.as_mut()[1] = v;
    }

    /// Set the total-length field.
    pub fn set_total_len(&mut self, v: u16) {
        set_u16(self.buffer.as_mut(), 2, v);
    }

    /// Set the identification field.
    pub fn set_ident(&mut self, v: u16) {
        set_u16(self.buffer.as_mut(), 4, v);
    }

    /// Set the TTL (does not touch the checksum; see
    /// [`Ipv4Packet::decrement_ttl`] for the fast-path combined update).
    pub fn set_ttl(&mut self, v: u8) {
        self.buffer.as_mut()[8] = v;
    }

    /// Set the protocol field.
    pub fn set_protocol(&mut self, p: Protocol) {
        self.buffer.as_mut()[9] = p.into();
    }

    /// Set the checksum field.
    pub fn set_checksum(&mut self, v: u16) {
        set_u16(self.buffer.as_mut(), 10, v);
    }

    /// Set the source address.
    pub fn set_src_addr(&mut self, a: Ipv4Addr) {
        set_u32(self.buffer.as_mut(), 12, u32::from(a));
    }

    /// Set the destination address.
    pub fn set_dst_addr(&mut self, a: Ipv4Addr) {
        set_u32(self.buffer.as_mut(), 16, u32::from(a));
    }

    /// Recompute and store the header checksum.
    pub fn fill_checksum(&mut self) {
        self.set_checksum(0);
        let len = self.header_len();
        let sum = checksum::checksum(&self.buffer.as_ref()[..len]);
        self.set_checksum(sum);
    }

    /// Forwarding fast path: decrement TTL and incrementally patch the
    /// checksum (RFC 1624). Returns the new TTL, or `Err(Malformed)` if the
    /// TTL was already zero (the packet must be dropped, not forwarded).
    pub fn decrement_ttl(&mut self) -> Result<u8> {
        let data = self.buffer.as_mut();
        if data[8] == 0 {
            return Err(Error::Malformed);
        }
        let old_word = u16::from_be_bytes([data[8], data[9]]);
        data[8] -= 1;
        let new_word = u16::from_be_bytes([data[8], data[9]]);
        let old_sum = get_u16(data, 10);
        set_u16(data, 10, checksum::update_u16(old_sum, old_word, new_word));
        Ok(data[8])
    }

    /// Mutable payload view.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let start = self.header_len();
        let end = usize::from(self.total_len());
        let data = self.buffer.as_mut();
        let end = end.min(data.len());
        &mut data[start..end]
    }
}

/// Parsed IPv4 header, used to build packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Repr {
    /// Source address.
    pub src_addr: Ipv4Addr,
    /// Destination address.
    pub dst_addr: Ipv4Addr,
    /// Upper-layer protocol.
    pub protocol: Protocol,
    /// Payload length in bytes (not counting this header).
    pub payload_len: usize,
    /// Time to live.
    pub ttl: u8,
    /// ToS/DSCP byte.
    pub tos: u8,
}

impl Ipv4Repr {
    /// Parse a validated packet into a repr.
    pub fn parse<T: AsRef<[u8]>>(packet: &Ipv4Packet<T>) -> Ipv4Repr {
        Ipv4Repr {
            src_addr: packet.src_addr(),
            dst_addr: packet.dst_addr(),
            protocol: packet.protocol(),
            payload_len: usize::from(packet.total_len()) - packet.header_len(),
            ttl: packet.ttl(),
            tos: packet.tos(),
        }
    }

    /// Bytes this header occupies when emitted (no options).
    pub fn buffer_len(&self) -> usize {
        HEADER_LEN
    }

    /// Emit the header into the front of `buffer` (which must be at least
    /// `buffer_len() + payload_len` bytes) and fill the checksum.
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, packet: &mut Ipv4Packet<T>) {
        let data = packet.buffer.as_mut();
        data[0] = 0x45; // version 4, IHL 5
        data[1] = self.tos;
        set_u16(data, 2, (HEADER_LEN + self.payload_len) as u16);
        set_u16(data, 4, 0);
        set_u16(data, 6, 0x4000); // DF set, as modern stacks do
        data[8] = self.ttl;
        data[9] = self.protocol.into();
        set_u16(data, 10, 0);
        set_u32(data, 12, u32::from(self.src_addr));
        set_u32(data, 16, u32::from(self.dst_addr));
        packet.fill_checksum();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let repr = Ipv4Repr {
            src_addr: Ipv4Addr::new(128, 252, 153, 1),
            dst_addr: Ipv4Addr::new(128, 252, 153, 7),
            protocol: Protocol::Udp,
            payload_len: 12,
            ttl: 64,
            tos: 0,
        };
        let mut buf = vec![0u8; repr.buffer_len() + repr.payload_len];
        let mut pkt = Ipv4Packet::new_unchecked(&mut buf[..]);
        repr.emit(&mut pkt);
        buf
    }

    #[test]
    fn emit_parse_roundtrip() {
        let buf = sample();
        let pkt = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(pkt.src_addr(), Ipv4Addr::new(128, 252, 153, 1));
        assert_eq!(pkt.dst_addr(), Ipv4Addr::new(128, 252, 153, 7));
        assert_eq!(pkt.protocol(), Protocol::Udp);
        assert_eq!(pkt.ttl(), 64);
        assert_eq!(pkt.total_len(), 32);
        assert!(pkt.verify_checksum());
        assert_eq!(pkt.payload().len(), 12);
    }

    #[test]
    fn checked_rejects_garbage() {
        assert_eq!(
            Ipv4Packet::new_checked(&[0u8; 10][..]).unwrap_err(),
            Error::Truncated
        );
        let mut buf = sample();
        buf[0] = 0x65; // version 6
        assert_eq!(
            Ipv4Packet::new_checked(&buf[..]).unwrap_err(),
            Error::BadVersion
        );
        let mut buf = sample();
        buf[0] = 0x44; // IHL 4 < 5
        assert_eq!(
            Ipv4Packet::new_checked(&buf[..]).unwrap_err(),
            Error::Malformed
        );
        let mut buf = sample();
        buf[3] = 0xFF; // total_len beyond buffer
        assert_eq!(
            Ipv4Packet::new_checked(&buf[..]).unwrap_err(),
            Error::BadLength
        );
    }

    #[test]
    fn ttl_decrement_keeps_checksum_valid() {
        let mut buf = sample();
        let mut pkt = Ipv4Packet::new_unchecked(&mut buf[..]);
        for expected in (0..64u8).rev() {
            let ttl = pkt.decrement_ttl().unwrap();
            assert_eq!(ttl, expected);
            assert!(pkt.verify_checksum(), "checksum broken at ttl {expected}");
        }
        // TTL now 0: further decrement refuses.
        assert_eq!(pkt.decrement_ttl().unwrap_err(), Error::Malformed);
    }

    #[test]
    fn repr_parse_matches_emit() {
        let buf = sample();
        let pkt = Ipv4Packet::new_checked(&buf[..]).unwrap();
        let repr = Ipv4Repr::parse(&pkt);
        assert_eq!(repr.payload_len, 12);
        assert_eq!(repr.protocol, Protocol::Udp);
    }

    #[test]
    fn total_len_bounds_payload() {
        // Buffer longer than total_len: payload must stop at total_len.
        let mut buf = sample();
        buf.extend_from_slice(&[0xAA; 8]);
        let pkt = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(pkt.payload().len(), 12);
    }
}
