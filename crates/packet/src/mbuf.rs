//! [`Mbuf`] — the BSD `mbuf` analogue.
//!
//! In the paper, the mbuf carries the *flow index* (FIX): after the first
//! gate classifies a packet, the FIX points at the packet's row in the flow
//! table so that every subsequent gate retrieves its plugin instance with a
//! single indexed load instead of calling the AIU again (Section 3.2,
//! "Associating the packet with a flow index").

use std::fmt;

/// Index of a row in the AIU's flow table, cached in the packet between
/// gates. Opaque to everything except the flow table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowIndex(pub u32);

/// Interface identifier (port number on the router).
pub type IfIndex = u32;

/// An owned packet buffer with router metadata.
///
/// Single contiguous allocation (the paper's ATM testbed had no
/// fragmentation at MTU 9180; chained mbufs add nothing the architecture
/// depends on).
#[derive(Clone)]
pub struct Mbuf {
    data: Vec<u8>,
    /// Interface the packet arrived on — the sixth field of the six-tuple.
    pub rx_if: IfIndex,
    /// Cached flow-table row, set by the first gate's AIU call.
    pub fix: Option<FlowIndex>,
    /// Flow-table admission control refused this packet a record: later
    /// gates must not reclassify (the packet runs the default path
    /// uncached end to end).
    pub class_denied: bool,
    /// Arrival timestamp in simulated nanoseconds (set by the driver;
    /// mirrors the paper's device-driver cycle-counter timestamping).
    pub timestamp_ns: u64,
    /// Egress interface decided by the routing step.
    pub tx_if: Option<IfIndex>,
}

impl Mbuf {
    /// Wrap raw packet bytes received on `rx_if`.
    pub fn new(data: Vec<u8>, rx_if: IfIndex) -> Self {
        Mbuf {
            data,
            rx_if,
            fix: None,
            class_denied: false,
            timestamp_ns: 0,
            tx_if: None,
        }
    }

    /// Packet bytes.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Mutable packet bytes.
    pub fn data_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Packet length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Replace the packet contents (used by transforms that change length,
    /// e.g. ESP encapsulation), preserving metadata.
    pub fn replace_data(&mut self, data: Vec<u8>) {
        self.data = data;
    }

    /// Take the buffer out, consuming the mbuf.
    pub fn into_data(self) -> Vec<u8> {
        self.data
    }
}

impl fmt::Debug for Mbuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mbuf")
            .field("len", &self.data.len())
            .field("rx_if", &self.rx_if)
            .field("fix", &self.fix)
            .field("tx_if", &self.tx_if)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metadata_defaults() {
        let m = Mbuf::new(vec![1, 2, 3], 4);
        assert_eq!(m.len(), 3);
        assert_eq!(m.rx_if, 4);
        assert!(m.fix.is_none());
        assert!(m.tx_if.is_none());
        assert!(!m.is_empty());
    }

    #[test]
    fn replace_preserves_metadata() {
        let mut m = Mbuf::new(vec![1, 2, 3], 4);
        m.fix = Some(FlowIndex(9));
        m.replace_data(vec![0; 100]);
        assert_eq!(m.len(), 100);
        assert_eq!(m.fix, Some(FlowIndex(9)));
        assert_eq!(m.rx_if, 4);
    }
}
