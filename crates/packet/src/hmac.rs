//! HMAC-SHA1 (RFC 2104 / RFC 2202) for the AH security plugin.

use crate::sha1::{Sha1, BLOCK_LEN, DIGEST_LEN};

/// HMAC-SHA1 keyed MAC.
#[derive(Clone)]
pub struct HmacSha1 {
    inner: Sha1,
    opad_key: [u8; BLOCK_LEN],
}

impl HmacSha1 {
    /// Initialise with a key of any length (long keys are hashed first, per
    /// RFC 2104).
    pub fn new(key: &[u8]) -> Self {
        let mut k = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            k[..DIGEST_LEN].copy_from_slice(&Sha1::digest(key));
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = k[i] ^ 0x36;
            opad[i] = k[i] ^ 0x5C;
        }
        let mut inner = Sha1::new();
        inner.update(&ipad);
        HmacSha1 {
            inner,
            opad_key: opad,
        }
    }

    /// Feed message data.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Produce the 20-byte MAC.
    pub fn finalize(self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha1::new();
        outer.update(&self.opad_key);
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// One-shot MAC.
    pub fn mac(key: &[u8], data: &[u8]) -> [u8; DIGEST_LEN] {
        let mut h = HmacSha1::new(key);
        h.update(data);
        h.finalize()
    }

    /// The truncated 96-bit MAC used by AH (RFC 2404: HMAC-SHA-1-96).
    pub fn mac_96(key: &[u8], data: &[u8]) -> [u8; 12] {
        let full = Self::mac(key, data);
        let mut out = [0u8; 12];
        out.copy_from_slice(&full[..12]);
        out
    }
}

/// Constant-time comparison of two MACs (length must match).
pub fn verify_mac(expected: &[u8], computed: &[u8]) -> bool {
    if expected.len() != computed.len() {
        return false;
    }
    let mut diff = 0u8;
    for (a, b) in expected.iter().zip(computed) {
        diff |= a ^ b;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// RFC 2202 HMAC-SHA1 test cases 1–7.
    #[test]
    fn rfc2202_vectors() {
        let cases: &[(&[u8], &[u8], &str)] = &[
            (
                &[0x0b; 20],
                b"Hi There",
                "b617318655057264e28bc0b6fb378c8ef146be00",
            ),
            (
                b"Jefe",
                b"what do ya want for nothing?",
                "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79",
            ),
            (
                &[0xaa; 20],
                &[0xdd; 50],
                "125d7342b9ac11cd91a39af48aa17b4f63f175d3",
            ),
            (
                &[
                    0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
                    0x0e, 0x0f, 0x10, 0x11, 0x12, 0x13, 0x14, 0x15, 0x16, 0x17, 0x18, 0x19,
                ],
                &[0xcd; 50],
                "4c9007f4026250c6bc8414f9bf50c86c2d7235da",
            ),
            (
                &[0x0c; 20],
                b"Test With Truncation",
                "4c1a03424b55e07fe7f27be1d58bb9324a9a5a04",
            ),
            (
                &[0xaa; 80],
                b"Test Using Larger Than Block-Size Key - Hash Key First",
                "aa4ae5e15272d00e95705637ce8a3b55ed402112",
            ),
            (
                &[0xaa; 80],
                b"Test Using Larger Than Block-Size Key and Larger Than One Block-Size Data",
                "e8e99d0f45237d786d6bbaa7965c7808bbff1a91",
            ),
        ];
        for (i, (key, data, want)) in cases.iter().enumerate() {
            assert_eq!(hex(&HmacSha1::mac(key, data)), *want, "case {}", i + 1);
        }
    }

    #[test]
    fn mac96_is_prefix() {
        let full = HmacSha1::mac(b"key", b"data");
        let short = HmacSha1::mac_96(b"key", b"data");
        assert_eq!(&full[..12], &short[..]);
    }

    #[test]
    fn verify_rejects_mismatch() {
        let a = HmacSha1::mac(b"key", b"data");
        let mut b = a;
        assert!(verify_mac(&a, &b));
        b[0] ^= 1;
        assert!(!verify_mac(&a, &b));
        assert!(!verify_mac(&a[..10], &a));
    }

    #[test]
    fn incremental_equals_oneshot() {
        let mut h = HmacSha1::new(b"secret");
        h.update(b"hello ");
        h.update(b"world");
        assert_eq!(h.finalize(), HmacSha1::mac(b"secret", b"hello world"));
    }
}
