//! The six-tuple `<source address, destination address, protocol, source
//! port, destination port, incoming interface>` (paper §3) and its
//! extraction from raw packets.
//!
//! Extraction is the part of classification every gate shares: parse the IP
//! header, walk IPv6 extension headers to the transport protocol, read the
//! ports. The AIU hashes the resulting [`FlowTuple`] into the flow table and
//! matches it against filter tables.

use crate::ext_hdr;
use crate::ip::{IpVersion, Protocol};
use crate::ipv4::Ipv4Packet;
use crate::ipv6::Ipv6Packet;
use crate::mbuf::{IfIndex, Mbuf};
use crate::wire::get_u16;
use crate::{Error, Result};
use std::fmt;
use std::net::IpAddr;

/// A fully specified flow identity — the paper's six-tuple with no
/// wildcards. Flow-table entries are keyed by this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowTuple {
    /// Source IP address.
    pub src: IpAddr,
    /// Destination IP address.
    pub dst: IpAddr,
    /// Transport protocol number.
    pub proto: u8,
    /// Source port (0 when the protocol has none).
    pub sport: u16,
    /// Destination port (0 when the protocol has none).
    pub dport: u16,
    /// Incoming interface.
    pub rx_if: IfIndex,
}

impl FlowTuple {
    /// Extract the six-tuple from a packet buffer plus its receive
    /// interface. For IPv6, walks the extension chain to the upper-layer
    /// protocol; for port-less protocols the ports are zero.
    pub fn extract(data: &[u8], rx_if: IfIndex) -> Result<FlowTuple> {
        match IpVersion::of_packet(data)? {
            IpVersion::V4 => {
                let ip = Ipv4Packet::new_checked(data)?;
                let proto = ip.protocol();
                // Fragments are keyed port-less: non-first fragments carry no
                // transport header (mid-datagram bytes would be read as
                // "ports"), and the first fragment must land in the same flow
                // record — and on the same shard — as the rest, so it gets the
                // same <src, dst, proto, rx_if> key.
                let (sport, dport) = if ip.frag_offset() > 0 || ip.more_frags() {
                    (0, 0)
                } else {
                    ports_of(proto, ip.payload())?
                };
                Ok(FlowTuple {
                    src: IpAddr::V4(ip.src_addr()),
                    dst: IpAddr::V4(ip.dst_addr()),
                    proto: proto.into(),
                    sport,
                    dport,
                    rx_if,
                })
            }
            IpVersion::V6 => {
                let ip = Ipv6Packet::new_checked(data)?;
                let walk = ext_hdr::walk_chain(ip.next_header(), ip.payload())?;
                let upper = &ip.payload()[walk.upper_offset..];
                // Same port-less keying as v4 whenever a fragment header is
                // present (the first fragment included).
                let (sport, dport) = if walk.fragment.is_some() {
                    (0, 0)
                } else {
                    ports_of(walk.upper_protocol, upper)?
                };
                Ok(FlowTuple {
                    src: IpAddr::V6(ip.src_addr()),
                    dst: IpAddr::V6(ip.dst_addr()),
                    proto: walk.upper_protocol.into(),
                    sport,
                    dport,
                    rx_if,
                })
            }
        }
    }

    /// Extract from an [`Mbuf`], using its receive interface.
    pub fn from_mbuf(mbuf: &Mbuf) -> Result<FlowTuple> {
        Self::extract(mbuf.data(), mbuf.rx_if)
    }

    /// The IP version of the flow (source address decides; a flow never
    /// mixes families).
    pub fn version(&self) -> IpVersion {
        match self.src {
            IpAddr::V4(_) => IpVersion::V4,
            IpAddr::V6(_) => IpVersion::V6,
        }
    }
}

impl fmt::Display for FlowTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "<{}, {}, {}, {}, {}, if{}>",
            self.src,
            self.dst,
            Protocol::from(self.proto),
            self.sport,
            self.dport,
            self.rx_if
        )
    }
}

fn ports_of(proto: Protocol, transport: &[u8]) -> Result<(u16, u16)> {
    if !proto.has_ports() {
        return Ok((0, 0));
    }
    // A TCP/UDP header shorter than its port fields is truncated garbage;
    // reporting (0, 0) would alias it with legitimate port-less protocols.
    if transport.len() < 4 {
        return Err(Error::Truncated);
    }
    Ok((get_u16(transport, 0), get_u16(transport, 2)))
}

/// True when the packet is an IP fragment (IPv4 with a nonzero fragment
/// offset or MF set; IPv6 carrying a fragment extension header). Such packets
/// are classified port-less — this predicate lets the data path count them.
pub fn is_fragment(data: &[u8]) -> bool {
    match IpVersion::of_packet(data) {
        Ok(IpVersion::V4) => Ipv4Packet::new_checked(data)
            .map(|ip| ip.frag_offset() > 0 || ip.more_frags())
            .unwrap_or(false),
        Ok(IpVersion::V6) => Ipv6Packet::new_checked(data)
            .and_then(|ip| ext_hdr::walk_chain(ip.next_header(), ip.payload()))
            .map(|walk| walk.fragment.is_some())
            .unwrap_or(false),
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipv4::Ipv4Repr;
    use crate::ipv6::Ipv6Repr;
    use crate::udp::{UdpPacket, UdpRepr};
    use std::net::{Ipv4Addr, Ipv6Addr};

    fn build_v4_udp(src: Ipv4Addr, dst: Ipv4Addr, sport: u16, dport: u16) -> Vec<u8> {
        let udp = UdpRepr {
            src_port: sport,
            dst_port: dport,
            payload_len: 4,
        };
        let ip = Ipv4Repr {
            src_addr: src,
            dst_addr: dst,
            protocol: Protocol::Udp,
            payload_len: udp.buffer_len(),
            ttl: 64,
            tos: 0,
        };
        let mut buf = vec![0u8; ip.buffer_len() + ip.payload_len];
        let mut pkt = Ipv4Packet::new_unchecked(&mut buf[..]);
        ip.emit(&mut pkt);
        let mut u = UdpPacket::new_unchecked(pkt.payload_mut());
        udp.emit(&mut u);
        buf
    }

    #[test]
    fn v4_udp_tuple() {
        let buf = build_v4_udp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            5000,
            53,
        );
        let t = FlowTuple::extract(&buf, 3).unwrap();
        assert_eq!(t.src, IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1)));
        assert_eq!(t.dst, IpAddr::V4(Ipv4Addr::new(10, 0, 0, 2)));
        assert_eq!(t.proto, 17);
        assert_eq!(t.sport, 5000);
        assert_eq!(t.dport, 53);
        assert_eq!(t.rx_if, 3);
        assert_eq!(t.version(), IpVersion::V4);
    }

    #[test]
    fn v6_udp_behind_hop_by_hop() {
        let udp = UdpRepr {
            src_port: 9999,
            dst_port: 80,
            payload_len: 0,
        };
        let hbh = ext_hdr::build_hop_by_hop(Protocol::Udp, &[]);
        let payload_len = hbh.len() + udp.buffer_len();
        let ip = Ipv6Repr {
            src_addr: Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 1),
            dst_addr: Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 2),
            next_header: Protocol::HopByHop,
            payload_len,
            hop_limit: 64,
            traffic_class: 0,
            flow_label: 0,
        };
        let mut buf = vec![0u8; ip.buffer_len() + payload_len];
        let mut pkt = Ipv6Packet::new_unchecked(&mut buf[..]);
        ip.emit(&mut pkt);
        pkt.payload_mut()[..hbh.len()].copy_from_slice(&hbh);
        let mut u = UdpPacket::new_unchecked(&mut pkt.payload_mut()[hbh.len()..]);
        udp.emit(&mut u);

        let t = FlowTuple::extract(&buf, 0).unwrap();
        assert_eq!(t.proto, 17);
        assert_eq!(t.sport, 9999);
        assert_eq!(t.dport, 80);
        assert_eq!(t.version(), IpVersion::V6);
    }

    #[test]
    fn portless_protocol_zero_ports() {
        let mut buf = build_v4_udp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            5000,
            53,
        );
        buf[9] = 47; // GRE
                     // Fix the checksum so new_checked still passes (it doesn't verify
                     // checksums, only lengths, so no fix needed actually).
        let t = FlowTuple::extract(&buf, 0).unwrap();
        assert_eq!(t.proto, 47);
        assert_eq!(t.sport, 0);
        assert_eq!(t.dport, 0);
    }

    #[test]
    fn v4_fragments_keyed_portless() {
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(10, 0, 0, 2);
        let whole = FlowTuple::extract(&build_v4_udp(src, dst, 5000, 53), 3).unwrap();
        assert_eq!((whole.sport, whole.dport), (5000, 53));

        // First fragment: offset 0, MF set. Carries the real UDP header but
        // must still key port-less so it co-locates with later fragments.
        let mut first = build_v4_udp(src, dst, 5000, 53);
        first[6] |= 0x20;
        let t_first = FlowTuple::extract(&first, 3).unwrap();
        assert_eq!((t_first.sport, t_first.dport), (0, 0));
        assert!(is_fragment(&first));

        // Non-first fragment: nonzero offset, payload is mid-datagram bytes
        // that would previously have been misread as ports.
        let mut rest = build_v4_udp(src, dst, 5000, 53);
        rest[6] = 0x20;
        rest[7] = 0x02; // offset 16 bytes
        let t_rest = FlowTuple::extract(&rest, 3).unwrap();
        assert_eq!(t_first, t_rest);

        // Last fragment: nonzero offset, MF clear.
        let mut last = build_v4_udp(src, dst, 5000, 53);
        last[7] = 0x04;
        assert_eq!(FlowTuple::extract(&last, 3).unwrap(), t_first);
        assert!(is_fragment(&last));

        assert!(!is_fragment(&build_v4_udp(src, dst, 5000, 53)));
        assert_ne!(whole, t_first); // ports differ — but same 4-tuple key
    }

    #[test]
    fn v6_fragment_keyed_portless() {
        let udp = UdpRepr {
            src_port: 7777,
            dst_port: 443,
            payload_len: 0,
        };
        let frag_hdr = [Protocol::Udp.into(), 0u8, 0x00, 0x01, 9, 9, 9, 9];
        let payload_len = frag_hdr.len() + udp.buffer_len();
        let ip = Ipv6Repr {
            src_addr: Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 1),
            dst_addr: Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 2),
            next_header: Protocol::Ipv6Frag,
            payload_len,
            hop_limit: 64,
            traffic_class: 0,
            flow_label: 0,
        };
        let mut buf = vec![0u8; ip.buffer_len() + payload_len];
        let mut pkt = Ipv6Packet::new_unchecked(&mut buf[..]);
        ip.emit(&mut pkt);
        pkt.payload_mut()[..frag_hdr.len()].copy_from_slice(&frag_hdr);
        let mut u = UdpPacket::new_unchecked(&mut pkt.payload_mut()[frag_hdr.len()..]);
        udp.emit(&mut u);

        let t = FlowTuple::extract(&buf, 0).unwrap();
        assert_eq!(t.proto, 17);
        assert_eq!((t.sport, t.dport), (0, 0));
        assert!(is_fragment(&buf));
    }

    #[test]
    fn truncated_transport_is_error() {
        // A TCP packet whose "header" is 2 bytes: previously aliased to
        // ports (0, 0); must now be a parse error.
        let ip = Ipv4Repr {
            src_addr: Ipv4Addr::new(10, 0, 0, 1),
            dst_addr: Ipv4Addr::new(10, 0, 0, 2),
            protocol: Protocol::Tcp,
            payload_len: 2,
            ttl: 64,
            tos: 0,
        };
        let mut buf = vec![0u8; ip.buffer_len() + 2];
        let mut pkt = Ipv4Packet::new_unchecked(&mut buf[..]);
        ip.emit(&mut pkt);
        assert_eq!(FlowTuple::extract(&buf, 0).unwrap_err(), Error::Truncated);
    }

    #[test]
    fn display_format() {
        let buf = build_v4_udp(
            Ipv4Addr::new(128, 252, 153, 1),
            Ipv4Addr::new(128, 252, 153, 7),
            1024,
            2048,
        );
        let t = FlowTuple::extract(&buf, 1).unwrap();
        assert_eq!(
            t.to_string(),
            "<128.252.153.1, 128.252.153.7, UDP, 1024, 2048, if1>"
        );
    }

    #[test]
    fn garbage_rejected() {
        assert!(FlowTuple::extract(&[], 0).is_err());
        assert!(FlowTuple::extract(&[0xFF; 64], 0).is_err());
    }
}
