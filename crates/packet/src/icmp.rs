//! Minimal ICMP (v4 and v6 share the layout a router cares about): type,
//! code, checksum. The router generates Time Exceeded / Hop Limit Exceeded
//! messages when TTL expires, and the firewall plugin matches on ICMP types.

use crate::checksum;
use crate::wire::{get_u16, set_u16};
use crate::{Error, Result};

/// ICMP header length (type, code, checksum + 4 bytes rest-of-header).
pub const HEADER_LEN: usize = 8;

/// ICMPv4 message types the router emits or inspects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Icmpv4Type {
    /// Echo reply.
    EchoReply,
    /// Destination unreachable.
    DestUnreachable,
    /// Echo request.
    EchoRequest,
    /// Time exceeded (TTL expired in transit) — what a router sends when
    /// `decrement_ttl` fails.
    TimeExceeded,
    /// Any other type.
    Other(u8),
}

impl From<u8> for Icmpv4Type {
    fn from(v: u8) -> Self {
        match v {
            0 => Icmpv4Type::EchoReply,
            3 => Icmpv4Type::DestUnreachable,
            8 => Icmpv4Type::EchoRequest,
            11 => Icmpv4Type::TimeExceeded,
            other => Icmpv4Type::Other(other),
        }
    }
}

impl From<Icmpv4Type> for u8 {
    fn from(t: Icmpv4Type) -> u8 {
        match t {
            Icmpv4Type::EchoReply => 0,
            Icmpv4Type::DestUnreachable => 3,
            Icmpv4Type::EchoRequest => 8,
            Icmpv4Type::TimeExceeded => 11,
            Icmpv4Type::Other(v) => v,
        }
    }
}

/// A read/write view of an ICMP message.
#[derive(Debug, Clone)]
pub struct IcmpPacket<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> IcmpPacket<T> {
    /// Wrap without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        IcmpPacket { buffer }
    }

    /// Wrap and validate length.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let pkt = Self::new_unchecked(buffer);
        if pkt.buffer.as_ref().len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        Ok(pkt)
    }

    /// Message type byte.
    pub fn msg_type(&self) -> u8 {
        self.buffer.as_ref()[0]
    }

    /// Message code byte.
    pub fn msg_code(&self) -> u8 {
        self.buffer.as_ref()[1]
    }

    /// Checksum field.
    pub fn checksum(&self) -> u16 {
        get_u16(self.buffer.as_ref(), 2)
    }

    /// Verify the ICMPv4 checksum (over the whole message, no pseudo-header).
    pub fn verify_checksum(&self) -> bool {
        checksum::verify(self.buffer.as_ref())
    }

    /// Body after the 8-byte header.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[HEADER_LEN..]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> IcmpPacket<T> {
    /// Set the type byte.
    pub fn set_msg_type(&mut self, t: u8) {
        self.buffer.as_mut()[0] = t;
    }

    /// Set the code byte.
    pub fn set_msg_code(&mut self, c: u8) {
        self.buffer.as_mut()[1] = c;
    }

    /// Set the checksum field.
    pub fn set_checksum(&mut self, c: u16) {
        set_u16(self.buffer.as_mut(), 2, c);
    }

    /// Compute and store the ICMPv4 checksum.
    pub fn fill_checksum(&mut self) {
        self.set_checksum(0);
        let sum = checksum::checksum(self.buffer.as_ref());
        self.set_checksum(sum);
    }
}

/// Build a Time Exceeded message quoting the offending packet's header +
/// first 8 payload bytes, per RFC 792.
pub fn time_exceeded(original: &[u8]) -> Vec<u8> {
    let quote = &original[..original.len().min(28)];
    let mut buf = vec![0u8; HEADER_LEN + quote.len()];
    buf[HEADER_LEN..].copy_from_slice(quote);
    let mut pkt = IcmpPacket::new_unchecked(&mut buf[..]);
    pkt.set_msg_type(Icmpv4Type::TimeExceeded.into());
    pkt.set_msg_code(0);
    pkt.fill_checksum();
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_roundtrip() {
        for v in 0..=255u8 {
            assert_eq!(u8::from(Icmpv4Type::from(v)), v);
        }
    }

    #[test]
    fn time_exceeded_checksums() {
        let orig = vec![0x45u8; 40];
        let msg = time_exceeded(&orig);
        let pkt = IcmpPacket::new_checked(&msg[..]).unwrap();
        assert_eq!(pkt.msg_type(), 11);
        assert!(pkt.verify_checksum());
        assert_eq!(pkt.payload().len(), 28);
    }

    #[test]
    fn short_quote() {
        let orig = vec![0x45u8; 10];
        let msg = time_exceeded(&orig);
        assert_eq!(msg.len(), HEADER_LEN + 10);
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(
            IcmpPacket::new_checked(&[0u8; 7][..]).unwrap_err(),
            Error::Truncated
        );
    }
}
