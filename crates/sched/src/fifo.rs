//! FIFO (drop-tail) queueing — the best-effort baseline every comparison
//! in the paper starts from.

use crate::link::{SchedPacket, Scheduler};
use std::collections::VecDeque;

/// Single drop-tail queue with a packet-count limit.
pub struct FifoScheduler {
    queue: VecDeque<SchedPacket>,
    limit: usize,
    drops: u64,
}

impl FifoScheduler {
    /// FIFO with space for `limit` packets.
    pub fn new(limit: usize) -> Self {
        FifoScheduler {
            queue: VecDeque::with_capacity(limit.min(4096)),
            limit,
            drops: 0,
        }
    }

    /// Packets dropped at the tail so far.
    pub fn drops(&self) -> u64 {
        self.drops
    }
}

impl Scheduler for FifoScheduler {
    fn enqueue(&mut self, pkt: SchedPacket, _now_ns: u64) -> bool {
        if self.queue.len() >= self.limit {
            self.drops += 1;
            return false;
        }
        self.queue.push_back(pkt);
        true
    }

    fn dequeue(&mut self, _now_ns: u64) -> Option<SchedPacket> {
        self.queue.pop_front()
    }

    fn backlog(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(flow: u32, len: u32) -> SchedPacket {
        SchedPacket {
            flow,
            len,
            arrival_ns: 0,
            cookie: 0,
        }
    }

    #[test]
    fn fifo_order() {
        let mut q = FifoScheduler::new(10);
        assert!(q.enqueue(pkt(1, 100), 0));
        assert!(q.enqueue(pkt(2, 200), 0));
        assert_eq!(q.dequeue(0).unwrap().flow, 1);
        assert_eq!(q.dequeue(0).unwrap().flow, 2);
        assert!(q.dequeue(0).is_none());
    }

    #[test]
    fn drop_tail_at_limit() {
        let mut q = FifoScheduler::new(2);
        assert!(q.enqueue(pkt(1, 1), 0));
        assert!(q.enqueue(pkt(1, 1), 0));
        assert!(!q.enqueue(pkt(1, 1), 0));
        assert_eq!(q.drops(), 1);
        assert_eq!(q.backlog(), 2);
    }
}
