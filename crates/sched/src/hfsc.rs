//! Hierarchical Fair Service Curve scheduler (Stoica, Zhang & Ng,
//! SIGCOMM '97) — the paper's flagship complex plugin (§6: a port of the
//! CMU scheduler, "results consistent with that paper").
//!
//! Structure follows the well-known BSD `hfsc.c` implementation:
//!
//! * Every class has a two-piece **service curve** (`m1` for `d`, then
//!   `m2`), which may be *concave* (`m1 > m2`, low-delay burst) or
//!   *convex*.
//! * Leaf classes with a real-time curve maintain **eligible** and
//!   **deadline** runtime curves. The runtime curves are the pointwise
//!   minimum of the configured curve re-anchored at every fresh backlog
//!   period — exactly the "no credit across idle periods" rule — and are
//!   represented here as general piecewise-linear functions, so the min
//!   composition is exact rather than BSD's two-segment approximation.
//! * Dequeue applies the **real-time criterion** first (serve the
//!   eligible class with the earliest deadline) to honor guarantees, then
//!   the **link-sharing criterion** (descend the hierarchy picking the
//!   active child with the smallest virtual time) to distribute excess
//!   bandwidth hierarchically — this split is what decouples delay from
//!   bandwidth allocation.

use crate::link::{FlowId, SchedPacket, Scheduler};
use std::collections::{HashMap, VecDeque};

/// A two-piece linear service curve: rate `m1` (bits/s) for the first
/// `d_us` microseconds of a backlog period, rate `m2` afterwards.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceCurve {
    /// First-segment rate in bits per second.
    pub m1_bps: u64,
    /// First-segment duration in microseconds.
    pub d_us: u64,
    /// Long-term rate in bits per second.
    pub m2_bps: u64,
}

impl ServiceCurve {
    /// A linear curve (single slope): the pure-bandwidth case.
    pub fn linear(rate_bps: u64) -> Self {
        ServiceCurve {
            m1_bps: rate_bps,
            d_us: 0,
            m2_bps: rate_bps,
        }
    }

    /// True when the curve is concave (burst segment faster than the
    /// long-term rate).
    pub fn is_concave(&self) -> bool {
        self.m1_bps > self.m2_bps
    }

    fn m1_bytes(&self) -> f64 {
        self.m1_bps as f64 / 8.0
    }

    fn m2_bytes(&self) -> f64 {
        self.m2_bps as f64 / 8.0
    }

    fn d_secs(&self) -> f64 {
        self.d_us as f64 / 1e6
    }
}

/// One segment of a piecewise-linear monotone curve: starting point
/// `(x, y)` with slope `m` until the next segment.
#[derive(Debug, Clone, Copy)]
struct Seg {
    x: f64,
    y: f64,
    m: f64,
}

/// Piecewise-linear, monotone non-decreasing runtime curve. `x` is time in
/// seconds, `y` service in bytes; the final segment extends to infinity.
#[derive(Debug, Clone, Default)]
struct Curve {
    segs: Vec<Seg>,
}

impl Curve {
    /// The configured service curve anchored at `(t0, w0)`.
    fn from_sc(sc: &ServiceCurve, t0: f64, w0: f64) -> Curve {
        let mut segs = Vec::with_capacity(2);
        if sc.d_us == 0 || (sc.m1_bps == sc.m2_bps) {
            segs.push(Seg {
                x: t0,
                y: w0,
                m: sc.m2_bytes(),
            });
        } else {
            segs.push(Seg {
                x: t0,
                y: w0,
                m: sc.m1_bytes(),
            });
            segs.push(Seg {
                x: t0 + sc.d_secs(),
                y: w0 + sc.m1_bytes() * sc.d_secs(),
                m: sc.m2_bytes(),
            });
        }
        Curve { segs }
    }

    fn start_x(&self) -> f64 {
        self.segs[0].x
    }

    /// Evaluate the curve at time `x` (clamped to the start on the left).
    /// Exercised directly by the curve unit tests; the scheduler itself
    /// only inverts curves (`y2x`).
    #[cfg_attr(not(test), allow(dead_code))]
    fn x2y(&self, x: f64) -> f64 {
        let mut cur = self.segs[0];
        for s in &self.segs {
            if s.x <= x {
                cur = *s;
            } else {
                break;
            }
        }
        if x <= cur.x {
            cur.y
        } else {
            cur.y + cur.m * (x - cur.x)
        }
    }

    /// Earliest time at which the curve reaches service `y`
    /// (`+∞` when it never does).
    fn y2x(&self, y: f64) -> f64 {
        if y <= self.segs[0].y {
            return self.segs[0].x;
        }
        // Find the segment containing y.
        let mut cur = self.segs[0];
        for (i, s) in self.segs.iter().enumerate() {
            let seg_end_y = if i + 1 < self.segs.len() {
                self.segs[i + 1].y
            } else {
                f64::INFINITY
            };
            if y <= seg_end_y {
                cur = *s;
                break;
            }
            cur = *s;
        }
        if cur.m <= 0.0 {
            if y <= cur.y {
                cur.x
            } else {
                f64::INFINITY
            }
        } else {
            cur.x + (y - cur.y) / cur.m
        }
    }

    /// Pointwise minimum of `self` and `other`, defined for
    /// `x ≥ max(start of other, start of self)` — the BSD `rtsc_min`,
    /// exact for arbitrarily many segments.
    fn min_with(&self, other: &Curve) -> Curve {
        let x0 = self.start_x().max(other.start_x());
        // Candidate breakpoints: both curves' segment starts ≥ x0, plus x0.
        let mut xs: Vec<f64> = vec![x0];
        for s in self.segs.iter().chain(&other.segs) {
            if s.x > x0 {
                xs.push(s.x);
            }
        }
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        // Add crossing points inside each interval.
        let mut all_xs = Vec::with_capacity(xs.len() * 2);
        for (i, &x) in xs.iter().enumerate() {
            all_xs.push(x);
            let x_next = xs.get(i + 1).copied().unwrap_or(f64::INFINITY);
            // Slopes immediately after x.
            let eps = 0.0;
            let _ = eps;
            let (ya, ma) = self.point_slope(x);
            let (yb, mb) = other.point_slope(x);
            let dy = ya - yb;
            let dm = ma - mb;
            if dm.abs() > 1e-12 {
                let cross = x - dy / dm;
                if cross > x + 1e-12 && cross < x_next - 1e-12 {
                    all_xs.push(cross);
                }
            }
        }
        all_xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        all_xs.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        let mut segs = Vec::with_capacity(all_xs.len());
        for &x in &all_xs {
            let (ya, ma) = self.point_slope(x);
            let (yb, mb) = other.point_slope(x);
            let (y, m) = if (ya < yb) || ((ya - yb).abs() < 1e-9 && ma <= mb) {
                (ya, ma)
            } else {
                (yb, mb)
            };
            // Skip redundant collinear points.
            if let Some(last) = segs.last() {
                let last: &Seg = last;
                if (last.m - m).abs() < 1e-12 && (last.y + last.m * (x - last.x) - y).abs() < 1e-9 {
                    continue;
                }
            }
            segs.push(Seg { x, y, m });
        }
        Curve { segs }
    }

    /// Value and slope of the curve at (just after) `x`.
    fn point_slope(&self, x: f64) -> (f64, f64) {
        let mut cur = self.segs[0];
        for s in &self.segs {
            if s.x <= x + 1e-12 {
                cur = *s;
            } else {
                break;
            }
        }
        if x <= cur.x {
            (cur.y, cur.m)
        } else {
            (cur.y + cur.m * (x - cur.x), cur.m)
        }
    }
}

/// Identifier of a class in the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClassId(pub u32);

struct Class {
    parent: Option<ClassId>,
    children: Vec<ClassId>,
    /// Real-time service curve (leaves only).
    rsc: Option<ServiceCurve>,
    /// Link-share rate (the fair-share weight), bytes/s.
    ls_rate: f64,
    /// Virtual time for link-sharing (seconds of normalised service).
    vt: f64,
    /// Backlogged descendants counter (class is LS-active when > 0).
    active_desc: usize,
    // -- leaf state --
    queue: VecDeque<SchedPacket>,
    /// Cumulative bytes served under the real-time criterion.
    cumul: f64,
    deadline: Option<Curve>,
    eligible: Option<Curve>,
    /// Eligible time / deadline for the head packet.
    e: f64,
    d: f64,
    dropped: u64,
}

/// The hierarchical fair service curve scheduler.
pub struct HfscScheduler {
    classes: Vec<Class>,
    root: ClassId,
    flow_map: HashMap<FlowId, ClassId>,
    default_class: Option<ClassId>,
    per_class_limit: usize,
    backlog: usize,
    /// Count of packets served by the real-time criterion (for tests and
    /// the E7 report).
    pub rt_served: u64,
    /// Count served by link-sharing.
    pub ls_served: u64,
}

impl HfscScheduler {
    /// A scheduler whose root represents a link of `link_bps`.
    pub fn new(link_bps: u64, per_class_limit: usize) -> Self {
        let root = Class {
            parent: None,
            children: Vec::new(),
            rsc: None,
            ls_rate: link_bps as f64 / 8.0,
            vt: 0.0,
            active_desc: 0,
            queue: VecDeque::new(),
            cumul: 0.0,
            deadline: None,
            eligible: None,
            e: 0.0,
            d: 0.0,
            dropped: 0,
        };
        HfscScheduler {
            classes: vec![root],
            root: ClassId(0),
            flow_map: HashMap::new(),
            default_class: None,
            per_class_limit,
            backlog: 0,
            rt_served: 0,
            ls_served: 0,
        }
    }

    /// The root class id.
    pub fn root(&self) -> ClassId {
        self.root
    }

    /// Add a class under `parent`. `ls_bps` sets the link-share weight;
    /// `rt` optionally attaches a real-time guarantee (meaningful on
    /// leaves).
    pub fn add_class(&mut self, parent: ClassId, ls_bps: u64, rt: Option<ServiceCurve>) -> ClassId {
        let id = ClassId(self.classes.len() as u32);
        self.classes.push(Class {
            parent: Some(parent),
            children: Vec::new(),
            rsc: rt,
            ls_rate: ls_bps as f64 / 8.0,
            vt: 0.0,
            active_desc: 0,
            queue: VecDeque::new(),
            cumul: 0.0,
            deadline: None,
            eligible: None,
            e: 0.0,
            d: 0.0,
            dropped: 0,
        });
        self.classes[parent.0 as usize].children.push(id);
        id
    }

    /// Route a flow id to a leaf class.
    pub fn bind_flow(&mut self, flow: FlowId, class: ClassId) {
        self.flow_map.insert(flow, class);
    }

    /// Class that receives unmapped flows (else they are dropped).
    pub fn set_default_class(&mut self, class: ClassId) {
        self.default_class = Some(class);
    }

    /// Packets dropped at a class's queue limit or for having no class.
    pub fn drops(&self) -> u64 {
        self.classes.iter().map(|c| c.dropped).sum()
    }

    fn cls(&self, id: ClassId) -> &Class {
        &self.classes[id.0 as usize]
    }

    fn cls_mut(&mut self, id: ClassId) -> &mut Class {
        &mut self.classes[id.0 as usize]
    }

    /// BSD `init_ed`: fresh backlog period for a leaf at time `t`.
    fn init_ed(&mut self, id: ClassId, t: f64) {
        let c = self.cls(id);
        let Some(rsc) = c.rsc else { return };
        let anchored = Curve::from_sc(&rsc, t, c.cumul);
        let deadline = match &c.deadline {
            Some(old) => old.min_with(&anchored),
            None => anchored.clone(),
        };
        // Eligible: equal to the deadline curve when concave; a single
        // m2-slope curve from the anchor otherwise (BSD rule).
        let eligible = if rsc.is_concave() {
            deadline.clone()
        } else {
            let lin = ServiceCurve::linear(rsc.m2_bps);
            let anchored_lin = Curve::from_sc(&lin, t, c.cumul);
            match &c.eligible {
                Some(old) => old.min_with(&anchored_lin),
                None => anchored_lin,
            }
        };
        let head_len = c.queue.front().map(|p| f64::from(p.len)).unwrap_or(0.0);
        let cumul = c.cumul;
        let e = eligible.y2x(cumul);
        let d = deadline.y2x(cumul + head_len);
        let c = self.cls_mut(id);
        c.deadline = Some(deadline);
        c.eligible = Some(eligible);
        c.e = e;
        c.d = d;
    }

    /// BSD `update_ed`: recompute e/d after real-time service.
    fn update_ed(&mut self, id: ClassId) {
        let c = self.cls(id);
        let (Some(el), Some(dl)) = (&c.eligible, &c.deadline) else {
            return;
        };
        let head_len = c.queue.front().map(|p| f64::from(p.len)).unwrap_or(0.0);
        let e = el.y2x(c.cumul);
        let d = dl.y2x(c.cumul + head_len);
        let c = self.cls_mut(id);
        c.e = e;
        c.d = d;
    }

    /// Mark the path from `leaf` to the root active (+1 backlogged
    /// descendant), syncing virtual times on activation.
    fn activate_path(&mut self, leaf: ClassId) {
        let mut id = Some(leaf);
        while let Some(cur) = id {
            let parent = self.cls(cur).parent;
            self.cls_mut(cur).active_desc += 1;
            if self.cls(cur).active_desc == 1 {
                // Newly active: catch its virtual time up with active
                // siblings so it cannot claim service "owed" while idle.
                if let Some(p) = parent {
                    let min_sibling_vt = self
                        .cls(p)
                        .children
                        .iter()
                        .filter(|&&c| c != cur && self.cls(c).active_desc > 0)
                        .map(|&c| self.cls(c).vt)
                        .fold(f64::INFINITY, f64::min);
                    if min_sibling_vt.is_finite() {
                        let c = self.cls_mut(cur);
                        c.vt = c.vt.max(min_sibling_vt);
                    }
                }
            }
            id = parent;
        }
    }

    fn deactivate_path(&mut self, leaf: ClassId) {
        let mut id = Some(leaf);
        while let Some(cur) = id {
            self.cls_mut(cur).active_desc -= 1;
            id = self.cls(cur).parent;
        }
    }

    /// Charge `len` bytes of virtual time along the path leaf→root.
    fn update_vt_path(&mut self, leaf: ClassId, len: f64) {
        let mut id = Some(leaf);
        while let Some(cur) = id {
            let c = self.cls_mut(cur);
            if c.ls_rate > 0.0 {
                c.vt += len / c.ls_rate;
            }
            id = self.cls(cur).parent;
        }
    }

    /// Link-sharing descent: active child with minimum virtual time.
    fn ls_select(&self) -> Option<ClassId> {
        let mut cur = self.root;
        loop {
            let c = self.cls(cur);
            if c.children.is_empty() {
                return if c.queue.is_empty() { None } else { Some(cur) };
            }
            let next = c
                .children
                .iter()
                .filter(|&&ch| self.cls(ch).active_desc > 0)
                .min_by(|&&a, &&b| {
                    self.cls(a)
                        .vt
                        .partial_cmp(&self.cls(b).vt)
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
            match next {
                Some(&ch) => cur = ch,
                None => return None,
            }
        }
    }

    fn finish_send(&mut self, leaf: ClassId, pkt: &SchedPacket, realtime: bool) {
        let len = f64::from(pkt.len);
        self.backlog -= 1;
        if realtime {
            self.cls_mut(leaf).cumul += len;
        }
        self.update_vt_path(leaf, len);
        if self.cls(leaf).queue.is_empty() {
            self.deactivate_path(leaf);
        } else if realtime {
            self.update_ed(leaf);
        } else {
            // Link-share service still advances the head deadline basis?
            // No: cumul counts RT work only (BSD); but the head changed,
            // so refresh d for the new head with unchanged cumul.
            self.update_ed(leaf);
        }
    }
}

impl Scheduler for HfscScheduler {
    fn enqueue(&mut self, pkt: SchedPacket, now_ns: u64) -> bool {
        let class = match self.flow_map.get(&pkt.flow).copied().or(self.default_class) {
            Some(c) => c,
            None => return false,
        };
        let limit = self.per_class_limit;
        let c = self.cls_mut(class);
        if !c.children.is_empty() {
            // Only leaves queue packets.
            c.dropped += 1;
            return false;
        }
        if c.queue.len() >= limit {
            c.dropped += 1;
            return false;
        }
        c.queue.push_back(pkt);
        self.backlog += 1;
        if self.cls(class).queue.len() == 1 {
            self.activate_path(class);
            self.init_ed(class, now_ns as f64 / 1e9);
        }
        true
    }

    fn dequeue(&mut self, now_ns: u64) -> Option<SchedPacket> {
        let now = now_ns as f64 / 1e9;
        // Real-time criterion: eligible leaf with the earliest deadline.
        let mut rt_pick: Option<(ClassId, f64)> = None;
        for (i, c) in self.classes.iter().enumerate() {
            if c.rsc.is_some() && !c.queue.is_empty() && c.e <= now + 1e-12 {
                match rt_pick {
                    Some((_, best_d)) if c.d >= best_d => {}
                    _ => rt_pick = Some((ClassId(i as u32), c.d)),
                }
            }
        }
        if let Some((leaf, _)) = rt_pick {
            let pkt = self.cls_mut(leaf).queue.pop_front().unwrap();
            self.rt_served += 1;
            self.finish_send(leaf, &pkt, true);
            return Some(pkt);
        }
        // Link-sharing criterion.
        let leaf = self.ls_select()?;
        let pkt = self.cls_mut(leaf).queue.pop_front().unwrap();
        self.ls_served += 1;
        self.finish_send(leaf, &pkt, false);
        Some(pkt)
    }

    fn backlog(&self) -> usize {
        self.backlog
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkSim;

    const MBPS: u64 = 1_000_000;

    #[test]
    fn curve_eval_and_inverse() {
        let sc = ServiceCurve {
            m1_bps: 8 * MBPS, // 1 MB/s
            d_us: 10_000,     // 10 ms
            m2_bps: 800_000,  // 0.1 MB/s
        };
        let c = Curve::from_sc(&sc, 1.0, 100.0);
        assert!((c.x2y(1.0) - 100.0).abs() < 1e-9);
        // 5 ms into the burst: +5000 bytes.
        assert!((c.x2y(1.005) - 5100.0).abs() < 1e-6);
        // Past the burst: 10 ms × 1 MB/s = 10_000, then 0.1 MB/s.
        assert!((c.x2y(1.020) - (100.0 + 10_000.0 + 1_000.0)).abs() < 1e-6);
        // Inverse agrees.
        for y in [100.0, 5100.0, 11_100.0] {
            let x = c.y2x(y);
            assert!((c.x2y(x) - y).abs() < 1e-6, "y={y}");
        }
    }

    #[test]
    fn curve_min_discards_idle_credit() {
        let sc = ServiceCurve::linear(8 * MBPS); // 1 MB/s
        let old = Curve::from_sc(&sc, 0.0, 0.0);
        // Re-anchor at t=10 s with only 1 MB served (9 MB "behind").
        let fresh = Curve::from_sc(&sc, 10.0, 1_000_000.0);
        let min = old.min_with(&fresh);
        // At t=10 the old curve promises 10 MB; min must promise 1 MB.
        assert!((min.x2y(10.0) - 1_000_000.0).abs() < 1.0);
        // Far in the future both grow at the same slope; min stays with
        // the fresh anchor.
        assert!((min.x2y(20.0) - 11_000_000.0).abs() < 1.0);
    }

    #[test]
    fn curve_min_with_crossing() {
        // Old: slow from origin. New: fast from (1, 0). They cross; the min
        // must follow old first, then new... (new starts below).
        let a = Curve::from_sc(&ServiceCurve::linear(8 * MBPS), 0.0, 0.0);
        let b = Curve::from_sc(&ServiceCurve::linear(32 * MBPS), 1.0, 0.0);
        let min = a.min_with(&b);
        assert!((min.x2y(1.0) - 0.0).abs() < 1.0); // b wins at t=1
                                                   // b catches a at: 1e6·t = 4e6·(t-1) → t = 4/3.
        assert!((min.x2y(4.0 / 3.0) - (4e6 / 3.0)).abs() < 10.0);
        // After the crossing, a is the min again.
        assert!((min.x2y(2.0) - 2e6).abs() < 10.0);
    }

    fn backlog_two_classes(ls1: u64, ls2: u64) -> (f64, f64) {
        let mut h = HfscScheduler::new(10 * MBPS, 64);
        let root = h.root();
        let c1 = h.add_class(root, ls1, None);
        let c2 = h.add_class(root, ls2, None);
        h.bind_flow(1, c1);
        h.bind_flow(2, c2);
        let mut sim = LinkSim::new(h, 10 * MBPS);
        sim.run_backlogged(&[(1, 1000), (2, 1000)], 2_000_000_000);
        (sim.stats(1).bytes as f64, sim.stats(2).bytes as f64)
    }

    #[test]
    fn link_share_equal() {
        let (b1, b2) = backlog_two_classes(5 * MBPS, 5 * MBPS);
        assert!((b1 / b2 - 1.0).abs() < 0.05, "b1={b1} b2={b2}");
    }

    #[test]
    fn link_share_weighted_70_30() {
        let (b1, b2) = backlog_two_classes(7 * MBPS, 3 * MBPS);
        let ratio = b1 / b2;
        assert!((ratio - 7.0 / 3.0).abs() < 0.15, "ratio = {ratio}");
    }

    #[test]
    fn hierarchy_two_levels() {
        // root → A(70%){A1, A2 equal}, B(30%). All backlogged: A1 and A2
        // each get 35%, B gets 30%.
        let mut h = HfscScheduler::new(10 * MBPS, 64);
        let root = h.root();
        let a = h.add_class(root, 7 * MBPS, None);
        let b = h.add_class(root, 3 * MBPS, None);
        let a1 = h.add_class(a, 35 * MBPS / 10, None);
        let a2 = h.add_class(a, 35 * MBPS / 10, None);
        h.bind_flow(1, a1);
        h.bind_flow(2, a2);
        h.bind_flow(3, b);
        let mut sim = LinkSim::new(h, 10 * MBPS);
        sim.run_backlogged(&[(1, 1000), (2, 1000), (3, 1000)], 2_000_000_000);
        let total = sim.total_tx_bytes() as f64;
        let share = |f| sim.stats(f).bytes as f64 / total;
        assert!((share(1) - 0.35).abs() < 0.03, "A1 {}", share(1));
        assert!((share(2) - 0.35).abs() < 0.03, "A2 {}", share(2));
        assert!((share(3) - 0.30).abs() < 0.03, "B {}", share(3));
    }

    #[test]
    fn sibling_excess_stays_in_subtree() {
        // A(70%){A1 active, A2 idle}, B(30%) active: A1 should absorb all
        // of A's 70% — hierarchical sharing, not global.
        let mut h = HfscScheduler::new(10 * MBPS, 64);
        let root = h.root();
        let a = h.add_class(root, 7 * MBPS, None);
        let b = h.add_class(root, 3 * MBPS, None);
        let a1 = h.add_class(a, 35 * MBPS / 10, None);
        let _a2 = h.add_class(a, 35 * MBPS / 10, None);
        h.bind_flow(1, a1);
        h.bind_flow(3, b);
        let mut sim = LinkSim::new(h, 10 * MBPS);
        sim.run_backlogged(&[(1, 1000), (3, 1000)], 2_000_000_000);
        let total = sim.total_tx_bytes() as f64;
        let s1 = sim.stats(1).bytes as f64 / total;
        assert!((s1 - 0.70).abs() < 0.04, "A1 share = {s1}");
    }

    #[test]
    fn realtime_guarantee_overrides_tiny_link_share() {
        // A leaf with a 5 Mb/s real-time curve but negligible link-share
        // weight must still receive ≈ half the 10 Mb/s link.
        let mut h = HfscScheduler::new(10 * MBPS, 256);
        let root = h.root();
        let rt = h.add_class(root, MBPS / 100, Some(ServiceCurve::linear(5 * MBPS)));
        let be = h.add_class(root, 10 * MBPS, None);
        h.bind_flow(1, rt);
        h.bind_flow(2, be);
        let mut sim = LinkSim::new(h, 10 * MBPS);
        sim.run_backlogged(&[(1, 1000), (2, 1000)], 2_000_000_000);
        let b1 = sim.stats(1).bytes as f64;
        let elapsed = sim.now_ns() as f64 / 1e9;
        let rate = b1 * 8.0 / elapsed;
        assert!(
            rate > 4.5e6,
            "real-time class got only {:.2} Mb/s",
            rate / 1e6
        );
        assert!(sim.scheduler.rt_served > 0);
    }

    #[test]
    fn concave_curve_gives_low_delay_to_sparse_flow() {
        // Decoupling of delay and bandwidth: a voice-like flow (small
        // packets, low rate) with a concave curve (high m1) sees much
        // lower delay than with a linear curve of the same m2, under
        // heavy cross-traffic.
        let run = |rt_curve: ServiceCurve| -> u64 {
            let mut h = HfscScheduler::new(10 * MBPS, 256);
            let root = h.root();
            let voice = h.add_class(root, MBPS / 10, Some(rt_curve));
            let bulk = h.add_class(root, 9 * MBPS, None);
            h.bind_flow(1, voice);
            h.bind_flow(2, bulk);
            let mut sim = LinkSim::new(h, 10 * MBPS);
            // Voice: a burst of ten 200-byte packets every 200 ms (a
            // video-frame-like source); bulk: backlogged. Long-term voice
            // rate = 2000 B / 200 ms = 80 kb/s either way; the curves
            // differ only in how fast a burst may drain.
            let mut next_voice = 0u64;
            for _ in 0..200_000 {
                if sim.now_ns() >= next_voice {
                    for _ in 0..10 {
                        sim.offer(1, 200, 0);
                    }
                    next_voice += 200_000_000;
                }
                sim.offer(2, 1500, 0);
                sim.offer(2, 1500, 0);
                if sim.transmit_one().is_none() {
                    sim.advance(10_000);
                }
                if sim.now_ns() > 2_000_000_000 {
                    break;
                }
            }
            sim.stats(1).max_delay_ns
        };
        let linear = run(ServiceCurve::linear(80_000));
        let concave = run(ServiceCurve {
            m1_bps: 2 * MBPS,
            d_us: 20_000,
            m2_bps: 80_000,
        });
        assert!(
            concave < linear / 4,
            "concave max delay {concave} ns not ≪ linear {linear} ns"
        );
    }

    #[test]
    fn unmapped_flow_dropped_without_default() {
        let mut h = HfscScheduler::new(MBPS, 8);
        assert!(!h.enqueue(
            SchedPacket {
                flow: 42,
                len: 100,
                arrival_ns: 0,
                cookie: 0
            },
            0
        ));
        let root = h.root();
        let c = h.add_class(root, MBPS, None);
        h.set_default_class(c);
        assert!(h.enqueue(
            SchedPacket {
                flow: 42,
                len: 100,
                arrival_ns: 0,
                cookie: 0
            },
            0
        ));
        assert_eq!(h.dequeue(0).unwrap().flow, 42);
    }

    #[test]
    fn internal_class_refuses_packets() {
        let mut h = HfscScheduler::new(MBPS, 8);
        let root = h.root();
        let a = h.add_class(root, MBPS, None);
        let _leaf = h.add_class(a, MBPS, None);
        h.bind_flow(1, a); // an internal class
        assert!(!h.enqueue(
            SchedPacket {
                flow: 1,
                len: 100,
                arrival_ns: 0,
                cookie: 0
            },
            0
        ));
        assert_eq!(h.drops(), 1);
    }
}
