//! # rp-sched — packet scheduling substrate
//!
//! The schedulers the paper ships as plugins — weighted Deficit Round
//! Robin (Shreedhar & Varghese, SIGCOMM '95) and the Hierarchical Fair
//! Service Curve scheduler (Stoica, Zhang, Ng, SIGCOMM '97) — plus FIFO
//! (the best-effort baseline), RED queue management (an "envisioned
//! plugin" in paper §4), and a discrete-event output-link model used by
//! the link-sharing experiments (E6/E7 in DESIGN.md).
//!
//! Schedulers here are framework-agnostic: they see opaque packets with a
//! length and a flow/class id. `router-core` wraps them into plugins and
//! supplies per-flow soft state from the AIU flow table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod drr;
pub mod fifo;
pub mod hfsc;
pub mod hsf;
pub mod link;
pub mod red;
pub mod vclock;

pub use drr::DrrScheduler;
pub use fifo::FifoScheduler;
pub use hfsc::{HfscScheduler, ServiceCurve};
pub use hsf::HsfScheduler;
pub use link::{LinkSim, SchedPacket, Scheduler};
pub use red::RedQueue;
pub use vclock::VirtualClockScheduler;
