//! Virtual Clock scheduling (Zhang, 1990; the paper's related-work space
//! also cites Leap Forward Virtual Clock [28]). Included as the
//! "third-party plugin" the paper predicts: "doubtless, additional
//! plugin types will be introduced by third parties once we have
//! released our code" — this one slots into the same `Scheduler`
//! interface and plugin wrapper as DRR/H-FSC without touching the
//! framework.
//!
//! Each flow has a configured rate; packet `k` of a flow is stamped
//! `VC = max(now, VC_prev) + len/rate` and packets transmit in stamp
//! order. Flows sending faster than their rate accumulate stamps in the
//! future and lose to conforming flows — rate policing by sorting.

use crate::link::{FlowId, SchedPacket, Scheduler};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

#[derive(Debug, Clone, Copy, PartialEq)]
struct Stamped {
    vc: f64,
    seq: u64,
    pkt: SchedPacket,
}

impl Eq for Stamped {}

impl Ord for Stamped {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.vc
            .partial_cmp(&other.vc)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(self.seq.cmp(&other.seq))
    }
}

impl PartialOrd for Stamped {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Per-flow bookkeeping.
struct VcFlow {
    rate: f64,
    last_stamp: f64,
    queued: usize,
}

/// Virtual Clock scheduler.
pub struct VirtualClockScheduler {
    heap: BinaryHeap<Reverse<Stamped>>,
    flows: HashMap<FlowId, VcFlow>,
    default_rate: f64,
    /// Per-flow queue limit: a flow stamping far into the future must not
    /// starve other flows' buffer space (the usual VC deployment pairs the
    /// stamp discipline with per-flow accounting).
    per_flow_limit: usize,
    seq: u64,
    drops: u64,
}

impl VirtualClockScheduler {
    /// Scheduler with a default per-flow rate (bits/s) and a per-flow
    /// queue limit in packets.
    pub fn new(default_rate_bps: u64, per_flow_limit: usize) -> Self {
        assert!(default_rate_bps > 0);
        VirtualClockScheduler {
            heap: BinaryHeap::new(),
            flows: HashMap::new(),
            default_rate: default_rate_bps as f64 / 8.0,
            per_flow_limit,
            seq: 0,
            drops: 0,
        }
    }

    /// Configure a flow's rate (bits/s).
    pub fn set_rate(&mut self, flow: FlowId, rate_bps: u64) {
        assert!(rate_bps > 0);
        let default = self.default_rate;
        let e = self.flows.entry(flow).or_insert(VcFlow {
            rate: default,
            last_stamp: 0.0,
            queued: 0,
        });
        e.rate = rate_bps as f64 / 8.0;
    }

    /// Packets dropped at the limit.
    pub fn drops(&self) -> u64 {
        self.drops
    }
}

impl Scheduler for VirtualClockScheduler {
    fn enqueue(&mut self, pkt: SchedPacket, now_ns: u64) -> bool {
        let default = self.default_rate;
        let entry = self.flows.entry(pkt.flow).or_insert(VcFlow {
            rate: default,
            last_stamp: 0.0,
            queued: 0,
        });
        if entry.queued >= self.per_flow_limit {
            self.drops += 1;
            return false;
        }
        let now = now_ns as f64 / 1e9;
        let vc = entry.last_stamp.max(now) + f64::from(pkt.len) / entry.rate;
        entry.last_stamp = vc;
        entry.queued += 1;
        self.seq += 1;
        self.heap.push(Reverse(Stamped {
            vc,
            seq: self.seq,
            pkt,
        }));
        true
    }

    fn dequeue(&mut self, _now_ns: u64) -> Option<SchedPacket> {
        let Reverse(s) = self.heap.pop()?;
        if let Some(f) = self.flows.get_mut(&s.pkt.flow) {
            f.queued -= 1;
        }
        Some(s.pkt)
    }

    fn backlog(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkSim;

    const MBPS: u64 = 1_000_000;

    #[test]
    fn stamps_order_transmissions() {
        let mut vc = VirtualClockScheduler::new(8 * MBPS, 64); // 1 MB/s
        vc.set_rate(1, 8 * MBPS);
        vc.set_rate(2, 2 * 8 * MBPS); // flow 2 at twice the rate
                                      // Same arrival time: flow 2's stamps advance half as fast, so in
                                      // 4 packets each, flow 2 gets service earlier on average.
        for _ in 0..4 {
            vc.enqueue(
                SchedPacket {
                    flow: 1,
                    len: 1000,
                    arrival_ns: 0,
                    cookie: 1,
                },
                0,
            );
            vc.enqueue(
                SchedPacket {
                    flow: 2,
                    len: 1000,
                    arrival_ns: 0,
                    cookie: 2,
                },
                0,
            );
        }
        let order: Vec<u32> = std::iter::from_fn(|| vc.dequeue(0).map(|p| p.flow)).collect();
        // First two: one of each (stamps 1ms vs 0.5ms → flow 2 first).
        assert_eq!(order[0], 2);
        // Flow 2's four packets all leave within the first six slots.
        let pos_last_f2 = order.iter().rposition(|f| *f == 2).unwrap();
        assert!(pos_last_f2 <= 5, "order = {order:?}");
    }

    #[test]
    fn rates_divide_bandwidth() {
        let mut vc = VirtualClockScheduler::new(MBPS, 1024);
        vc.set_rate(1, 2 * MBPS);
        vc.set_rate(2, 6 * MBPS);
        let mut sim = LinkSim::new(vc, 8 * MBPS);
        sim.run_backlogged(&[(1, 1000), (2, 1000)], 2_000_000_000);
        let ratio = sim.stats(2).bytes as f64 / sim.stats(1).bytes as f64;
        assert!((ratio - 3.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn tie_break_is_fifo() {
        let mut vc = VirtualClockScheduler::new(8 * MBPS, 16);
        for i in 0..3u64 {
            vc.enqueue(
                SchedPacket {
                    flow: i as u32 + 10,
                    len: 1000,
                    arrival_ns: 0,
                    cookie: i,
                },
                0,
            );
        }
        // Same rate, same length, same arrival → identical stamps →
        // FIFO by sequence.
        let cookies: Vec<u64> = std::iter::from_fn(|| vc.dequeue(0).map(|p| p.cookie)).collect();
        assert_eq!(cookies, vec![0, 1, 2]);
    }

    #[test]
    fn limit_and_drops() {
        // Per-flow limit of 2.
        let mut vc = VirtualClockScheduler::new(MBPS, 2);
        let pkt = |c| SchedPacket {
            flow: 1,
            len: 100,
            arrival_ns: 0,
            cookie: c,
        };
        assert!(vc.enqueue(pkt(1), 0));
        assert!(vc.enqueue(pkt(2), 0));
        assert!(!vc.enqueue(pkt(3), 0));
        assert_eq!(vc.drops(), 1);
        assert_eq!(vc.backlog(), 2);
    }
}
