//! Hierarchical Scheduling Framework (HSF) — the paper's §6 future work:
//! "allow different instances of packet scheduling plugins to be placed
//! at individual nodes in the scheduling hierarchy. For example, this
//! will allow us to combine both the H-FSC and the DRR scheduling
//! schemes, where DRR could be used to do fair queuing for all flows
//! ending in the same H-FSC leaf node" — fixing H-FSC's per-leaf FIFO
//! unfairness.
//!
//! Implementation: an outer [`HfscScheduler`] decides *which leaf class*
//! transmits next; each leaf may carry an inner scheduler (here: weighted
//! DRR over the flows mapped to that leaf) that decides *which flow's*
//! packet leaves. The outer scheduler sees one proxy flow id per leaf;
//! the inner one sees real flow ids.

use crate::drr::DrrScheduler;
use crate::hfsc::{ClassId, HfscScheduler, ServiceCurve};
use crate::link::{FlowId, SchedPacket, Scheduler};
use std::collections::HashMap;

/// H-FSC over leaves, DRR within each leaf.
pub struct HsfScheduler {
    outer: HfscScheduler,
    /// Inner DRR per leaf class.
    inner: HashMap<ClassId, DrrScheduler>,
    /// flow → leaf class routing.
    flow_leaf: HashMap<FlowId, ClassId>,
    default_leaf: Option<ClassId>,
    quantum: u32,
    per_flow_limit: usize,
}

impl HsfScheduler {
    /// A framework over a link of `link_bps`; leaf-internal DRR uses
    /// `quantum` and `per_flow_limit`.
    pub fn new(link_bps: u64, quantum: u32, per_flow_limit: usize) -> Self {
        HsfScheduler {
            // The outer scheduler's own per-class limit is effectively
            // unbounded: admission happens at the inner DRR.
            outer: HfscScheduler::new(link_bps, usize::MAX / 2),
            inner: HashMap::new(),
            flow_leaf: HashMap::new(),
            default_leaf: None,
            quantum,
            per_flow_limit,
        }
    }

    /// The root of the outer hierarchy.
    pub fn root(&self) -> ClassId {
        self.outer.root()
    }

    /// Add an interior class (pure link-share node).
    pub fn add_interior(&mut self, parent: ClassId, ls_bps: u64) -> ClassId {
        self.outer.add_class(parent, ls_bps, None)
    }

    /// Add a leaf class with an inner DRR; optionally with a real-time
    /// curve.
    pub fn add_leaf(&mut self, parent: ClassId, ls_bps: u64, rt: Option<ServiceCurve>) -> ClassId {
        let id = self.outer.add_class(parent, ls_bps, rt);
        self.inner
            .insert(id, DrrScheduler::new(self.quantum, self.per_flow_limit));
        // The leaf's proxy flow in the outer scheduler is the class id.
        self.outer.bind_flow(id.0, id);
        id
    }

    /// Route a flow to a leaf.
    pub fn bind_flow(&mut self, flow: FlowId, leaf: ClassId) {
        assert!(self.inner.contains_key(&leaf), "not a leaf class");
        self.flow_leaf.insert(flow, leaf);
    }

    /// Leaf for unmapped flows.
    pub fn set_default_leaf(&mut self, leaf: ClassId) {
        assert!(self.inner.contains_key(&leaf), "not a leaf class");
        self.default_leaf = Some(leaf);
    }

    /// Set a flow's weight within its leaf's DRR.
    pub fn set_flow_weight(&mut self, flow: FlowId, weight: u32) {
        if let Some(leaf) = self.flow_leaf.get(&flow) {
            if let Some(drr) = self.inner.get_mut(leaf) {
                drr.set_weight(flow, weight);
            }
        }
    }
}

impl Scheduler for HsfScheduler {
    fn enqueue(&mut self, pkt: SchedPacket, now_ns: u64) -> bool {
        let Some(leaf) = self.flow_leaf.get(&pkt.flow).copied().or(self.default_leaf) else {
            return false;
        };
        let drr = self.inner.get_mut(&leaf).expect("leaf has inner DRR");
        if !drr.enqueue(pkt, now_ns) {
            return false;
        }
        // Mirror a proxy packet into the outer H-FSC so its curves and
        // virtual times account for the leaf's backlog byte-accurately.
        let accepted = self.outer.enqueue(
            SchedPacket {
                flow: leaf.0,
                len: pkt.len,
                arrival_ns: pkt.arrival_ns,
                cookie: 0,
            },
            now_ns,
        );
        debug_assert!(accepted, "outer proxy queue must not reject");
        accepted
    }

    fn dequeue(&mut self, now_ns: u64) -> Option<SchedPacket> {
        // Outer pick decides the leaf (its proxy packet's byte count may
        // differ from the inner head's; both drain the same totals, and
        // per-leaf byte accounting stays exact in the long run because
        // every enqueued byte is mirrored).
        let proxy = self.outer.dequeue(now_ns)?;
        let leaf = ClassId(proxy.flow);
        let drr = self.inner.get_mut(&leaf).expect("leaf has inner DRR");
        let pkt = drr
            .dequeue(now_ns)
            .expect("outer backlog implies inner backlog");
        Some(pkt)
    }

    fn backlog(&self) -> usize {
        self.inner.values().map(|d| d.backlog()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkSim;

    const MBPS: u64 = 1_000_000;

    #[test]
    fn leaf_shares_and_intra_leaf_fairness() {
        // Two leaves 70/30; leaf A carries two flows that plain H-FSC
        // (FIFO within the leaf) would serve unfairly under asymmetric
        // load — the inner DRR splits A's share evenly.
        let mut hsf = HsfScheduler::new(10 * MBPS, 1500, 64);
        let root = hsf.root();
        let a = hsf.add_leaf(root, 7 * MBPS, None);
        let b = hsf.add_leaf(root, 3 * MBPS, None);
        hsf.bind_flow(1, a);
        hsf.bind_flow(2, a);
        hsf.bind_flow(3, b);
        let mut sim = LinkSim::new(hsf, 10 * MBPS);
        // Flow 1 sends big packets, flow 2 small: byte-fairness inside A
        // is exactly what leaf-FIFO cannot give.
        sim.run_backlogged(&[(1, 1500), (2, 300), (3, 1000)], 2_000_000_000);
        let total: f64 = [1, 2, 3].iter().map(|f| sim.stats(*f).bytes as f64).sum();
        let share = |f| sim.stats(f).bytes as f64 / total;
        assert!((share(1) - 0.35).abs() < 0.04, "A1 {}", share(1));
        assert!((share(2) - 0.35).abs() < 0.04, "A2 {}", share(2));
        assert!((share(3) - 0.30).abs() < 0.04, "B {}", share(3));
    }

    #[test]
    fn weighted_flows_within_leaf() {
        let mut hsf = HsfScheduler::new(10 * MBPS, 1500, 64);
        let root = hsf.root();
        let a = hsf.add_leaf(root, 10 * MBPS, None);
        hsf.bind_flow(1, a);
        hsf.bind_flow(2, a);
        hsf.set_flow_weight(1, 1);
        hsf.set_flow_weight(2, 3);
        let mut sim = LinkSim::new(hsf, 10 * MBPS);
        sim.run_backlogged(&[(1, 1000), (2, 1000)], 2_000_000_000);
        let ratio = sim.stats(2).bytes as f64 / sim.stats(1).bytes as f64;
        assert!((ratio - 3.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn unmapped_flow_needs_default() {
        let mut hsf = HsfScheduler::new(MBPS, 1500, 8);
        let root = hsf.root();
        let leaf = hsf.add_leaf(root, MBPS, None);
        let pkt = SchedPacket {
            flow: 99,
            len: 100,
            arrival_ns: 0,
            cookie: 1,
        };
        assert!(!hsf.enqueue(pkt, 0));
        hsf.set_default_leaf(leaf);
        assert!(hsf.enqueue(pkt, 0));
        assert_eq!(hsf.dequeue(0).unwrap().cookie, 1);
        assert_eq!(hsf.backlog(), 0);
    }

    #[test]
    fn inner_limit_enforced() {
        let mut hsf = HsfScheduler::new(MBPS, 1500, 2);
        let root = hsf.root();
        let leaf = hsf.add_leaf(root, MBPS, None);
        hsf.bind_flow(1, leaf);
        let pkt = |i| SchedPacket {
            flow: 1,
            len: 100,
            arrival_ns: i,
            cookie: i,
        };
        assert!(hsf.enqueue(pkt(0), 0));
        assert!(hsf.enqueue(pkt(1), 0));
        assert!(!hsf.enqueue(pkt(2), 0));
        assert_eq!(hsf.backlog(), 2);
    }
}
