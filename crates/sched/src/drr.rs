//! Weighted Deficit Round Robin (Shreedhar & Varghese, SIGCOMM '95), as
//! extended by the paper's DRR plugin (§6.1): one queue **per flow** (the
//! AIU's flow table already does the classification, so the plugin can
//! afford per-flow state instead of ALTQ's fixed queue array), with
//! per-queue *weights* so reserved flows can be given larger shares.
//!
//! Each active flow holds a deficit counter; a round visits active flows
//! in order, adds `weight × quantum` to the deficit, and transmits packets
//! while the deficit covers them. O(1) per packet as long as the quantum
//! is at least the maximum packet size (the classic DRR requirement).

use crate::link::{FlowId, SchedPacket, Scheduler};
use std::collections::{HashMap, VecDeque};

struct FlowQueue {
    queue: VecDeque<SchedPacket>,
    deficit: u64,
    weight: u32,
    active: bool,
    /// Quantum already credited for the current round visit.
    visited: bool,
}

/// Weighted DRR over per-flow queues.
pub struct DrrScheduler {
    flows: HashMap<FlowId, FlowQueue>,
    /// Round-robin list of active flows.
    active: VecDeque<FlowId>,
    quantum: u32,
    per_flow_limit: usize,
    default_weight: u32,
    backlog: usize,
    drops: u64,
}

impl DrrScheduler {
    /// DRR with the given quantum (bytes credited per weight unit per
    /// round; should be ≥ the MTU) and per-flow queue limit in packets.
    pub fn new(quantum: u32, per_flow_limit: usize) -> Self {
        assert!(quantum > 0);
        DrrScheduler {
            flows: HashMap::new(),
            active: VecDeque::new(),
            quantum,
            per_flow_limit,
            default_weight: 1,
            backlog: 0,
            drops: 0,
        }
    }

    /// Set the weight for a flow (reserved flows get weights > 1, §6.1:
    /// "weights … dynamically recalculated for reserved flows"). Takes
    /// effect from the flow's next round.
    pub fn set_weight(&mut self, flow: FlowId, weight: u32) {
        assert!(weight > 0);
        let w = self.default_weight;
        let limit = self.per_flow_limit;
        let entry = self.flows.entry(flow).or_insert_with(|| FlowQueue {
            queue: VecDeque::new(),
            deficit: 0,
            weight: w,
            active: false,
            visited: false,
        });
        let _ = limit;
        entry.weight = weight;
    }

    /// Current weight of a flow.
    pub fn weight(&self, flow: FlowId) -> u32 {
        self.flows
            .get(&flow)
            .map(|f| f.weight)
            .unwrap_or(self.default_weight)
    }

    /// Packets dropped due to per-flow queue limits.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Remove a flow entirely (its classifier cache entry was evicted),
    /// returning any packets still queued so the caller can release them.
    pub fn purge_flow(&mut self, flow: FlowId) -> Vec<SchedPacket> {
        let Some(fq) = self.flows.remove(&flow) else {
            return Vec::new();
        };
        if fq.active {
            self.active.retain(|f| *f != flow);
        }
        self.backlog -= fq.queue.len();
        fq.queue.into_iter().collect()
    }

    /// Number of flows with queued packets.
    pub fn active_flows(&self) -> usize {
        self.active.len()
    }
}

impl Scheduler for DrrScheduler {
    fn enqueue(&mut self, pkt: SchedPacket, _now_ns: u64) -> bool {
        let w = self.default_weight;
        let entry = self.flows.entry(pkt.flow).or_insert_with(|| FlowQueue {
            queue: VecDeque::new(),
            deficit: 0,
            weight: w,
            active: false,
            visited: false,
        });
        if entry.queue.len() >= self.per_flow_limit {
            self.drops += 1;
            return false;
        }
        entry.queue.push_back(pkt);
        self.backlog += 1;
        if !entry.active {
            entry.active = true;
            entry.deficit = 0;
            entry.visited = false;
            self.active.push_back(pkt.flow);
        }
        true
    }

    fn dequeue(&mut self, _now_ns: u64) -> Option<SchedPacket> {
        // Visit active flows round-robin. Each flow is credited its
        // quantum exactly once per visit (Shreedhar & Varghese); it then
        // transmits packets while the deficit lasts and rotates to the
        // tail when the head no longer fits. The loop terminates: every
        // full round credits the front flow ≥ quantum ≥ 1, so its head
        // packet eventually fits.
        loop {
            let flow = *self.active.front()?;
            let fq = self.flows.get_mut(&flow).expect("active flow has queue");
            if fq.queue.is_empty() {
                // Became empty after its last service: deactivate.
                fq.active = false;
                fq.deficit = 0;
                fq.visited = false;
                self.active.pop_front();
                continue;
            }
            if !fq.visited {
                fq.deficit += u64::from(self.quantum) * u64::from(fq.weight);
                fq.visited = true;
            }
            let head_len = u64::from(fq.queue.front().unwrap().len);
            if fq.deficit >= head_len {
                fq.deficit -= head_len;
                let pkt = fq.queue.pop_front().unwrap();
                self.backlog -= 1;
                if fq.queue.is_empty() {
                    // Deactivate; deficit resets (classic DRR: an emptied
                    // flow forfeits leftover deficit).
                    fq.active = false;
                    fq.deficit = 0;
                    fq.visited = false;
                    self.active.pop_front();
                }
                return Some(pkt);
            }
            // Head no longer fits in the remaining deficit: end of this
            // flow's turn; it keeps the residue for its next visit.
            fq.visited = false;
            self.active.rotate_left(1);
        }
    }

    fn backlog(&self) -> usize {
        self.backlog
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkSim;

    #[test]
    fn equal_weights_equal_service() {
        let mut sim = LinkSim::new(DrrScheduler::new(1500, 64), 10_000_000);
        sim.run_backlogged(&[(1, 1000), (2, 1000), (3, 1000)], 1_000_000_000);
        let totals: Vec<u64> = [1, 2, 3].iter().map(|f| sim.stats(*f).bytes).collect();
        let j = sim.jain_index(&[1, 2, 3], None);
        assert!(j > 0.999, "jain = {j}, totals = {totals:?}");
    }

    #[test]
    fn unequal_packet_sizes_still_fair_in_bytes() {
        // DRR's claim to fame over round-robin: fairness in *bytes* even
        // with different packet sizes.
        let mut sim = LinkSim::new(DrrScheduler::new(1500, 64), 10_000_000);
        sim.run_backlogged(&[(1, 1500), (2, 300)], 1_000_000_000);
        let b1 = sim.stats(1).bytes as f64;
        let b2 = sim.stats(2).bytes as f64;
        assert!((b1 / b2 - 1.0).abs() < 0.05, "b1={b1} b2={b2}");
    }

    #[test]
    fn weights_divide_bandwidth() {
        let mut drr = DrrScheduler::new(1500, 64);
        drr.set_weight(1, 1);
        drr.set_weight(2, 3);
        let mut sim = LinkSim::new(drr, 10_000_000);
        sim.run_backlogged(&[(1, 1000), (2, 1000)], 2_000_000_000);
        let b1 = sim.stats(1).bytes as f64;
        let b2 = sim.stats(2).bytes as f64;
        assert!((b2 / b1 - 3.0).abs() < 0.1, "ratio = {}", b2 / b1);
        // Weighted fairness index ≈ 1.
        let jw = sim.jain_index(&[1, 2], Some(&[1.0, 3.0]));
        assert!(jw > 0.999, "jw = {jw}");
    }

    #[test]
    fn idle_flow_restarts_clean() {
        // A flow that drains completely deactivates and re-registers
        // cleanly on its next packet (deficit forfeited, §SIGCOMM'95).
        let mut drr = DrrScheduler::new(1500, 64);
        for _ in 0..5 {
            drr.enqueue(
                SchedPacket {
                    flow: 1,
                    len: 1000,
                    arrival_ns: 0,
                    cookie: 0,
                },
                0,
            );
        }
        while drr.dequeue(0).is_some() {}
        assert_eq!(drr.active_flows(), 0);
        drr.enqueue(
            SchedPacket {
                flow: 1,
                len: 1000,
                arrival_ns: 0,
                cookie: 0,
            },
            0,
        );
        assert_eq!(drr.active_flows(), 1);
        assert_eq!(drr.dequeue(0).unwrap().flow, 1);
        assert!(drr.dequeue(0).is_none());
    }

    #[test]
    fn per_flow_limit_drops() {
        let mut drr = DrrScheduler::new(1500, 2);
        for i in 0..3 {
            let ok = drr.enqueue(
                SchedPacket {
                    flow: 7,
                    len: 100,
                    arrival_ns: i,
                    cookie: 0,
                },
                i,
            );
            assert_eq!(ok, i < 2);
        }
        assert_eq!(drr.drops(), 1);
        assert_eq!(drr.backlog(), 2);
        // Other flows unaffected by flow 7's limit.
        assert!(drr.enqueue(
            SchedPacket {
                flow: 8,
                len: 100,
                arrival_ns: 0,
                cookie: 0
            },
            0
        ));
    }

    #[test]
    fn oversized_packet_eventually_served() {
        // Packet bigger than quantum: needs several rounds of credit.
        let mut drr = DrrScheduler::new(500, 8);
        drr.enqueue(
            SchedPacket {
                flow: 1,
                len: 1400,
                arrival_ns: 0,
                cookie: 0,
            },
            0,
        );
        drr.enqueue(
            SchedPacket {
                flow: 2,
                len: 100,
                arrival_ns: 0,
                cookie: 0,
            },
            0,
        );
        let seq: Vec<u32> = std::iter::from_fn(|| drr.dequeue(0).map(|p| p.flow)).collect();
        assert_eq!(seq.len(), 2);
        assert!(seq.contains(&1) && seq.contains(&2));
    }

    #[test]
    fn many_flows_all_served() {
        let mut drr = DrrScheduler::new(1500, 16);
        for f in 0..100u32 {
            for _ in 0..3 {
                drr.enqueue(
                    SchedPacket {
                        flow: f,
                        len: 200 + f * 10,
                        arrival_ns: 0,
                        cookie: 0,
                    },
                    0,
                );
            }
        }
        let mut count = 0;
        while drr.dequeue(0).is_some() {
            count += 1;
        }
        assert_eq!(count, 300);
        assert_eq!(drr.backlog(), 0);
        assert_eq!(drr.active_flows(), 0);
    }
}
