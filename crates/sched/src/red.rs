//! Random Early Detection (Floyd & Jacobson, 1993) — the paper lists "a
//! plugin for congestion control (RED)" among its envisioned plugin types
//! (§4); this is the queue-management algorithm behind that plugin.
//!
//! Implements the classic gentle-less RED: exponentially weighted moving
//! average of the queue length, linear drop probability between `min_th`
//! and `max_th`, count-based probability correction, and idle-time
//! compensation.

use crate::link::{SchedPacket, Scheduler};
use std::collections::VecDeque;

/// RED configuration parameters.
#[derive(Debug, Clone, Copy)]
pub struct RedConfig {
    /// EWMA weight (classic value 0.002).
    pub w_q: f64,
    /// Minimum average-queue threshold in packets.
    pub min_th: f64,
    /// Maximum average-queue threshold in packets.
    pub max_th: f64,
    /// Drop probability at `max_th`.
    pub max_p: f64,
    /// Hard queue limit in packets.
    pub limit: usize,
    /// Assumed packet transmission time (ns) for idle compensation.
    pub mean_pkt_time_ns: u64,
}

impl Default for RedConfig {
    fn default() -> Self {
        RedConfig {
            w_q: 0.002,
            min_th: 5.0,
            max_th: 15.0,
            max_p: 0.1,
            limit: 64,
            mean_pkt_time_ns: 10_000,
        }
    }
}

/// A RED-managed drop-tail queue. Deterministic: the "random" component is
/// a seeded LCG so experiments are reproducible.
pub struct RedQueue {
    cfg: RedConfig,
    queue: VecDeque<SchedPacket>,
    avg: f64,
    /// Packets since the last early drop (the `count` variable).
    count: i64,
    /// Time the queue went idle (for avg decay on wake-up).
    idle_since: Option<u64>,
    rng_state: u64,
    early_drops: u64,
    forced_drops: u64,
}

impl RedQueue {
    /// New RED queue with the given parameters and RNG seed.
    pub fn new(cfg: RedConfig, seed: u64) -> Self {
        assert!(cfg.min_th < cfg.max_th);
        assert!((0.0..=1.0).contains(&cfg.max_p));
        RedQueue {
            cfg,
            queue: VecDeque::new(),
            avg: 0.0,
            count: -1,
            idle_since: None,
            rng_state: seed | 1,
            early_drops: 0,
            forced_drops: 0,
        }
    }

    fn uniform(&mut self) -> f64 {
        // 64-bit LCG (Knuth constants); plenty for drop decisions.
        self.rng_state = self
            .rng_state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.rng_state >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Current average queue estimate.
    pub fn avg_queue(&self) -> f64 {
        self.avg
    }

    /// Early (probabilistic) drops so far.
    pub fn early_drops(&self) -> u64 {
        self.early_drops
    }

    /// Forced (overflow / avg ≥ max_th) drops so far.
    pub fn forced_drops(&self) -> u64 {
        self.forced_drops
    }
}

impl Scheduler for RedQueue {
    fn enqueue(&mut self, pkt: SchedPacket, now_ns: u64) -> bool {
        // Update the average; compensate for idle time by decaying as if
        // empty-queue samples had been taken.
        if let Some(idle_start) = self.idle_since.take() {
            let m = ((now_ns.saturating_sub(idle_start)) / self.cfg.mean_pkt_time_ns) as i32;
            self.avg *= (1.0 - self.cfg.w_q).powi(m);
        }
        self.avg = (1.0 - self.cfg.w_q) * self.avg + self.cfg.w_q * self.queue.len() as f64;

        if self.queue.len() >= self.cfg.limit || self.avg >= self.cfg.max_th {
            self.forced_drops += 1;
            self.count = 0;
            return false;
        }
        if self.avg > self.cfg.min_th {
            self.count += 1;
            let p_b =
                self.cfg.max_p * (self.avg - self.cfg.min_th) / (self.cfg.max_th - self.cfg.min_th);
            let p_a = (p_b / (1.0 - (self.count as f64) * p_b).max(1e-9)).min(1.0);
            if self.uniform() < p_a {
                self.early_drops += 1;
                self.count = 0;
                return false;
            }
        } else {
            self.count = -1;
        }
        self.queue.push_back(pkt);
        true
    }

    fn dequeue(&mut self, now_ns: u64) -> Option<SchedPacket> {
        let pkt = self.queue.pop_front();
        if self.queue.is_empty() && self.idle_since.is_none() {
            self.idle_since = Some(now_ns);
        }
        pkt
    }

    fn backlog(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(i: u64) -> SchedPacket {
        SchedPacket {
            flow: 1,
            len: 1000,
            arrival_ns: i,
            cookie: i,
        }
    }

    #[test]
    fn below_min_th_never_drops() {
        let mut red = RedQueue::new(RedConfig::default(), 42);
        // Alternate enqueue/dequeue keeping the queue tiny.
        for i in 0..1000 {
            assert!(red.enqueue(pkt(i), i * 10_000));
            red.dequeue(i * 10_000 + 5_000);
        }
        assert_eq!(red.early_drops(), 0);
        assert_eq!(red.forced_drops(), 0);
    }

    #[test]
    fn sustained_overload_triggers_early_drops() {
        let mut red = RedQueue::new(RedConfig::default(), 42);
        let mut accepted = 0;
        // Enqueue 30 for every 1 dequeued: queue builds, avg crosses min_th.
        for i in 0..5000u64 {
            if red.enqueue(pkt(i), i * 100) {
                accepted += 1;
            }
            if i % 30 == 0 {
                red.dequeue(i * 100);
            }
        }
        assert!(red.early_drops() > 0, "no early drops under overload");
        assert!(accepted < 5000);
        // Hard limit respected.
        assert!(red.backlog() <= RedConfig::default().limit);
    }

    #[test]
    fn forced_drop_above_max_th() {
        let cfg = RedConfig {
            min_th: 1.0,
            max_th: 3.0,
            limit: 100,
            ..RedConfig::default()
        };
        let mut red = RedQueue::new(cfg, 1);
        // Build a large standing queue; avg will pass max_th.
        let mut forced_seen = false;
        for i in 0..5000u64 {
            red.enqueue(pkt(i), i);
            if red.forced_drops() > 0 {
                forced_seen = true;
                break;
            }
        }
        assert!(forced_seen);
    }

    #[test]
    fn idle_decay_resets_average() {
        let cfg = RedConfig {
            min_th: 2.0,
            max_th: 10.0,
            ..RedConfig::default()
        };
        let mut red = RedQueue::new(cfg, 7);
        for i in 0..40u64 {
            red.enqueue(pkt(i), i * 100);
        }
        let avg_loaded = red.avg_queue();
        while red.dequeue(10_000).is_some() {}
        // Long idle period, then one enqueue: avg must have decayed.
        assert!(red.enqueue(pkt(999), 1_000_000_000));
        assert!(red.avg_queue() < avg_loaded / 2.0);
    }

    #[test]
    fn deterministic_with_same_seed() {
        let run = |seed| {
            let mut red = RedQueue::new(RedConfig::default(), seed);
            let mut pattern = Vec::new();
            for i in 0..2000u64 {
                pattern.push(red.enqueue(pkt(i), i * 50));
                if i % 20 == 0 {
                    red.dequeue(i * 50);
                }
            }
            pattern
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
