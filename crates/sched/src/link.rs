//! The scheduler interface and a discrete-event output-link simulator.
//!
//! A [`Scheduler`] decides which queued packet leaves next on an output
//! interface. [`LinkSim`] drains a scheduler at a configured line rate on a
//! virtual clock and records per-flow service, which is how the
//! link-sharing experiments measure bandwidth shares without real NICs.

use std::collections::HashMap;

/// Flow (or leaf-class) identifier within a scheduler.
pub type FlowId = u32;

/// A packet as seen by a scheduler: its wire length and the flow it was
/// classified into. The actual bytes travel alongside in the router; the
/// scheduling decision needs only this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedPacket {
    /// Flow/class id assigned by the classifier.
    pub flow: FlowId,
    /// Length in bytes (what the link drains).
    pub len: u32,
    /// Arrival time in virtual nanoseconds (used by H-FSC deadlines).
    pub arrival_ns: u64,
    /// Opaque cookie for the owner (e.g. an index into a packet store).
    pub cookie: u64,
}

/// A work-conserving packet scheduler for one output link.
pub trait Scheduler {
    /// Offer a packet to the scheduler. Returns `false` (and drops) when
    /// the scheduler refuses it (queue limits, unknown flow policy, RED).
    fn enqueue(&mut self, pkt: SchedPacket, now_ns: u64) -> bool;

    /// Pick the next packet to transmit at virtual time `now_ns`.
    fn dequeue(&mut self, now_ns: u64) -> Option<SchedPacket>;

    /// Total queued packets.
    fn backlog(&self) -> usize;

    /// True when nothing is queued.
    fn is_empty(&self) -> bool {
        self.backlog() == 0
    }
}

/// Per-flow service statistics collected by the link simulator.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FlowStats {
    /// Bytes transmitted.
    pub bytes: u64,
    /// Packets transmitted.
    pub packets: u64,
    /// Sum of per-packet queueing delays (ns), for mean-delay reporting.
    pub total_delay_ns: u64,
    /// Maximum queueing delay seen (ns).
    pub max_delay_ns: u64,
}

impl FlowStats {
    /// Mean queueing delay in nanoseconds.
    pub fn mean_delay_ns(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.total_delay_ns as f64 / self.packets as f64
        }
    }
}

/// Discrete-event simulation of one output link draining a scheduler.
pub struct LinkSim<S: Scheduler> {
    /// The scheduler under test.
    pub scheduler: S,
    rate_bps: u64,
    now_ns: u64,
    stats: HashMap<FlowId, FlowStats>,
    total_tx_bytes: u64,
}

impl<S: Scheduler> LinkSim<S> {
    /// A link of `rate_bps` bits per second.
    pub fn new(scheduler: S, rate_bps: u64) -> Self {
        assert!(rate_bps > 0);
        LinkSim {
            scheduler,
            rate_bps,
            now_ns: 0,
            stats: HashMap::new(),
            total_tx_bytes: 0,
        }
    }

    /// Current virtual time.
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Transmission time of `len` bytes at the link rate, in ns.
    pub fn tx_time_ns(&self, len: u32) -> u64 {
        (u64::from(len) * 8 * 1_000_000_000).div_ceil(self.rate_bps)
    }

    /// Offer a packet at the current virtual time.
    pub fn offer(&mut self, flow: FlowId, len: u32, cookie: u64) -> bool {
        let pkt = SchedPacket {
            flow,
            len,
            arrival_ns: self.now_ns,
            cookie,
        };
        self.scheduler.enqueue(pkt, self.now_ns)
    }

    /// Advance the clock without transmitting (e.g. while sources are
    /// idle).
    pub fn advance(&mut self, delta_ns: u64) {
        self.now_ns += delta_ns;
    }

    /// Transmit one packet if any is queued; advances the clock by its
    /// transmission time. Returns the packet sent.
    pub fn transmit_one(&mut self) -> Option<SchedPacket> {
        let pkt = self.scheduler.dequeue(self.now_ns)?;
        let delay = self.now_ns.saturating_sub(pkt.arrival_ns);
        let tx = self.tx_time_ns(pkt.len);
        self.now_ns += tx;
        let s = self.stats.entry(pkt.flow).or_default();
        s.bytes += u64::from(pkt.len);
        s.packets += 1;
        s.total_delay_ns += delay;
        s.max_delay_ns = s.max_delay_ns.max(delay);
        self.total_tx_bytes += u64::from(pkt.len);
        Some(pkt)
    }

    /// Drain until the scheduler is empty.
    pub fn drain(&mut self) {
        while self.transmit_one().is_some() {}
    }

    /// Run a closed-loop experiment: `arrivals` yields `(flow, len)` pairs
    /// offered back-to-back whenever the corresponding flow's queue runs
    /// low, keeping every listed flow backlogged for `duration_ns`. This
    /// models the "all sources greedy" setup of fair-queueing evaluations.
    pub fn run_backlogged(&mut self, flows: &[(FlowId, u32)], duration_ns: u64) {
        let end = self.now_ns + duration_ns;
        // Prime each flow with a few packets.
        for &(f, len) in flows {
            for _ in 0..4 {
                self.offer(f, len, 0);
            }
        }
        let mut next_refill = vec![0u64; flows.len()];
        while self.now_ns < end {
            // Keep sources backlogged.
            for (i, &(f, len)) in flows.iter().enumerate() {
                if self.now_ns >= next_refill[i] {
                    self.offer(f, len, 0);
                    self.offer(f, len, 0);
                    next_refill[i] = self.now_ns + self.tx_time_ns(len) / 2;
                }
            }
            if self.transmit_one().is_none() {
                self.advance(1000);
            }
        }
    }

    /// Per-flow statistics.
    pub fn stats(&self, flow: FlowId) -> FlowStats {
        self.stats.get(&flow).copied().unwrap_or_default()
    }

    /// All flows with statistics.
    pub fn flows(&self) -> Vec<FlowId> {
        let mut v: Vec<FlowId> = self.stats.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Total bytes transmitted.
    pub fn total_tx_bytes(&self) -> u64 {
        self.total_tx_bytes
    }

    /// Jain's fairness index over the byte counts of the given flows,
    /// optionally weighted (`shares[i]` = configured share of flow i).
    /// 1.0 = perfectly (weighted-)fair.
    pub fn jain_index(&self, flows: &[FlowId], shares: Option<&[f64]>) -> f64 {
        let xs: Vec<f64> = flows
            .iter()
            .enumerate()
            .map(|(i, f)| {
                let b = self.stats(*f).bytes as f64;
                match shares {
                    Some(s) => b / s[i],
                    None => b,
                }
            })
            .collect();
        let n = xs.len() as f64;
        let sum: f64 = xs.iter().sum();
        let sum_sq: f64 = xs.iter().map(|x| x * x).sum();
        if sum_sq == 0.0 {
            return 0.0;
        }
        (sum * sum) / (n * sum_sq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fifo::FifoScheduler;

    #[test]
    fn tx_time_math() {
        let sim = LinkSim::new(FifoScheduler::new(1000), 8_000_000); // 8 Mb/s
                                                                     // 1000 bytes = 8000 bits at 8 Mb/s = 1 ms.
        assert_eq!(sim.tx_time_ns(1000), 1_000_000);
    }

    #[test]
    fn fifo_drain_counts() {
        let mut sim = LinkSim::new(FifoScheduler::new(100), 1_000_000_000);
        sim.offer(1, 500, 0);
        sim.offer(2, 500, 0);
        sim.offer(1, 500, 0);
        sim.drain();
        assert_eq!(sim.stats(1).packets, 2);
        assert_eq!(sim.stats(2).packets, 1);
        assert_eq!(sim.total_tx_bytes(), 1500);
        assert_eq!(sim.flows(), vec![1, 2]);
    }

    #[test]
    fn jain_index_perfect_and_skewed() {
        let mut sim = LinkSim::new(FifoScheduler::new(100), 1_000_000_000);
        for _ in 0..10 {
            sim.offer(1, 100, 0);
            sim.offer(2, 100, 0);
        }
        sim.drain();
        let j = sim.jain_index(&[1, 2], None);
        assert!((j - 1.0).abs() < 1e-9);
        // Weighted view with unequal shares is no longer perfectly fair.
        let jw = sim.jain_index(&[1, 2], Some(&[1.0, 3.0]));
        assert!(jw < 1.0);
    }

    #[test]
    fn delay_accounting() {
        let mut sim = LinkSim::new(FifoScheduler::new(100), 8_000_000);
        sim.offer(1, 1000, 0); // tx = 1 ms
        sim.offer(1, 1000, 0); // waits 1 ms behind the first
        sim.drain();
        let s = sim.stats(1);
        assert_eq!(s.max_delay_ns, 1_000_000);
        assert_eq!(s.total_delay_ns, 1_000_000);
    }
}
