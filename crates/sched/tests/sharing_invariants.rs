//! Cross-scheduler invariants on the link simulator: work conservation,
//! byte conservation, and fairness properties that E6/E7 rely on.

use rp_sched::link::{LinkSim, Scheduler};
use rp_sched::red::RedConfig;
use rp_sched::{DrrScheduler, FifoScheduler, HfscScheduler, HsfScheduler, RedQueue};

const MBPS: u64 = 1_000_000;

fn offered_equals_transmitted<S: Scheduler>(sched: S) {
    let mut sim = LinkSim::new(sched, 10 * MBPS);
    let mut offered = 0u64;
    for i in 0..500u32 {
        if sim.offer(i % 5, 400 + (i % 7) * 100, u64::from(i)) {
            offered += u64::from(400 + (i % 7) * 100);
        }
    }
    sim.drain();
    assert_eq!(sim.total_tx_bytes(), offered, "bytes conserved");
}

#[test]
fn byte_conservation_all_schedulers() {
    offered_equals_transmitted(FifoScheduler::new(10_000));
    let mut drr = DrrScheduler::new(1500, 10_000);
    for f in 0..5 {
        drr.set_weight(f, 1 + f);
    }
    offered_equals_transmitted(drr);
    let mut hfsc = HfscScheduler::new(10 * MBPS, 10_000);
    let root = hfsc.root();
    let c = hfsc.add_class(root, 10 * MBPS, None);
    hfsc.set_default_class(c);
    offered_equals_transmitted(hfsc);
    let mut hsf = HsfScheduler::new(10 * MBPS, 1500, 10_000);
    let root = hsf.root();
    let leaf = hsf.add_leaf(root, 10 * MBPS, None);
    hsf.set_default_leaf(leaf);
    offered_equals_transmitted(hsf);
    offered_equals_transmitted(RedQueue::new(
        RedConfig {
            limit: 10_000,
            min_th: 9_000.0,
            max_th: 9_500.0,
            ..RedConfig::default()
        },
        3,
    ));
}

#[test]
fn work_conservation_under_backlog() {
    // A backlogged work-conserving scheduler keeps the link ~100% busy:
    // transmitted bytes ≈ rate × time.
    let mut drr = DrrScheduler::new(1500, 64);
    let _ = &mut drr;
    let mut sim = LinkSim::new(drr, 8 * MBPS);
    sim.run_backlogged(&[(1, 1000), (2, 500)], 1_000_000_000);
    let expected = 1e9 * 8e6 / 8.0 / 1e9; // bytes in 1 s at 8 Mb/s
    let got = sim.total_tx_bytes() as f64;
    assert!(
        (got - expected).abs() / expected < 0.02,
        "link utilisation off: got {got}, expected {expected}"
    );
}

#[test]
fn drr_fairness_is_robust_to_flow_count() {
    for flows in [2u32, 5, 16] {
        let mut sim = LinkSim::new(DrrScheduler::new(1500, 64), 50 * MBPS);
        let specs: Vec<(u32, u32)> = (0..flows).map(|f| (f, 200 + f * 137 % 1300)).collect();
        sim.run_backlogged(&specs, 1_000_000_000);
        let ids: Vec<u32> = (0..flows).collect();
        let j = sim.jain_index(&ids, None);
        assert!(j > 0.99, "jain {j} at {flows} flows");
    }
}

#[test]
fn hfsc_guarantee_holds_under_any_competing_weight() {
    // 2 Mb/s real-time guarantee on a 10 Mb/s link must survive a
    // link-share hog.
    let mut hfsc = HfscScheduler::new(10 * MBPS, 256);
    let root = hfsc.root();
    let rt = hfsc.add_class(
        root,
        MBPS / 100,
        Some(rp_sched::ServiceCurve::linear(2 * MBPS)),
    );
    let hog = hfsc.add_class(root, 100 * MBPS, None);
    hfsc.bind_flow(1, rt);
    hfsc.bind_flow(2, hog);
    let mut sim = LinkSim::new(hfsc, 10 * MBPS);
    sim.run_backlogged(&[(1, 800), (2, 1500)], 2_000_000_000);
    let secs = sim.now_ns() as f64 / 1e9;
    let rate = sim.stats(1).bytes as f64 * 8.0 / secs;
    assert!(rate > 1.85e6, "guaranteed flow got {:.2} Mb/s", rate / 1e6);
}

#[test]
fn fifo_is_unfair_where_drr_is_fair() {
    // Sanity for the whole comparison: with one aggressive flow (twice
    // the offered packets), FIFO gives it ~2× bandwidth, DRR equalises.
    fn run<S: Scheduler>(s: S) -> (f64, f64) {
        let mut sim = LinkSim::new(s, 10 * MBPS);
        let end = 1_000_000_000;
        while sim.now_ns() < end {
            sim.offer(1, 1000, 0);
            sim.offer(1, 1000, 0); // flow 1 offers double
            sim.offer(2, 1000, 0);
            if sim.transmit_one().is_none() {
                sim.advance(1000);
            }
        }
        (sim.stats(1).bytes as f64, sim.stats(2).bytes as f64)
    }
    let (f1, f2) = run(FifoScheduler::new(64));
    assert!(f1 / f2 > 1.6, "FIFO ratio {}", f1 / f2);
    let (d1, d2) = run(DrrScheduler::new(1500, 64));
    assert!((d1 / d2 - 1.0).abs() < 0.1, "DRR ratio {}", d1 / d2);
}
