//! # rp-bench — benchmark harness for the Router Plugins reproduction
//!
//! Criterion benches live in `benches/`; the paper-table regenerators are
//! binaries under `src/bin/` (one per table/figure, see EXPERIMENTS.md).
//! This library hosts the shared reporting helpers.

#![forbid(unsafe_code)]

pub mod report;
