//! Table-formatting helpers shared by the experiment binaries: fixed-width
//! text tables resembling the paper's layout, written to stdout so runs can
//! be `tee`d into EXPERIMENTS.md, plus a dependency-free JSON emitter so
//! every experiment also leaves a machine-readable `BENCH_<name>.json`
//! behind (consumed by CI artifacts and regression tooling).
//!
//! JSON schema (shared by all emitters): the top-level object always has
//! `"bench"` (the experiment name), `"schema_version"` (integer, bumped on
//! breaking layout changes), and `"rows"` (array of per-measurement
//! objects whose keys are experiment-specific but stable per bench).

/// A simple left-aligned text table.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must have as many cells as there are headers).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {c:<w$} |"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{:-<1$}|", "", w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a nanosecond quantity with 2 decimals in µs.
pub fn us(ns: f64) -> String {
    format!("{:.2}", ns / 1000.0)
}

/// A JSON value (no external dependencies; just enough for bench output).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (serialized via `{:?}` on f64; integers stay integral).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
    /// Pre-rendered JSON emitted verbatim (e.g. a metrics snapshot that
    /// already knows how to serialize itself). The caller must guarantee
    /// the string is valid JSON.
    Raw(String),
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Num(v as f64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Num(v as f64)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Self {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

impl Json {
    /// Build an object from `(key, value)` pairs, preserving order.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Serialize with 2-space indentation.
    pub fn render(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, 0);
        s.push('\n');
        s
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Raw(s) => out.push_str(s),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n:?}"));
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    out.push_str("  ");
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(&pad);
                    out.push_str("  ");
                    Json::Str(k.clone()).write(out, indent + 1);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

/// Embed a metrics snapshot as a JSON value: the registry renders itself
/// compactly and we splice the result in verbatim.
pub fn metrics_json(snap: &router_core::MetricsSnapshot) -> Json {
    Json::Raw(snap.render_json())
}

/// A log-2 histogram as a JSON object (`count`, `sum`, `mean`, and the
/// bucket array trimmed of trailing zeros; bucket `b` counts values in
/// `[2^(b-1), 2^b)`, bucket 0 counts zeros).
pub fn hist_json(h: &router_core::obs::Histogram) -> Json {
    Json::obj(vec![
        ("count", Json::from(h.count)),
        ("sum", Json::from(h.sum)),
        ("mean", Json::from(h.mean())),
        ("buckets", Json::from(h.trimmed_buckets().to_vec())),
    ])
}

/// Write a bench result as `BENCH_<name>.json` in the current directory
/// (the repo root under `cargo run`). `rows` become the standard
/// `"rows"` array; `extra` pairs are appended at the top level. Returns
/// the path written.
pub fn write_bench_json(
    name: &str,
    rows: Vec<Json>,
    extra: Vec<(&str, Json)>,
) -> std::io::Result<std::path::PathBuf> {
    let mut pairs = vec![
        ("bench", Json::from(name)),
        ("schema_version", Json::from(1u64)),
    ];
    pairs.extend(extra);
    pairs.push(("rows", Json::Arr(rows)));
    let doc = Json::obj(pairs);
    let path = std::path::PathBuf::from(format!("BENCH_{name}.json"));
    std::fs::write(&path, doc.render())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["Kernel", "Cycles"]);
        t.row(&["plain".into(), "6460".into()]);
        t.row(&["plugins".into(), "6970".into()]);
        let r = t.render();
        assert!(r.contains("| Kernel  | Cycles |"));
        assert!(r.lines().count() == 4);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        Table::new(&["a", "b"]).row(&["x".into()]);
    }

    #[test]
    fn json_renders_types_and_escapes() {
        let j = Json::obj(vec![
            ("name", Json::from("say \"hi\"\n")),
            ("n", Json::from(42u64)),
            ("pi", Json::from(3.5)),
            ("ok", Json::from(true)),
            ("none", Json::Null),
            ("xs", Json::from(vec![1u64, 2, 3])),
        ]);
        let s = j.render();
        assert!(s.contains("\"say \\\"hi\\\"\\n\""), "{s}");
        assert!(s.contains("\"n\": 42"), "{s}");
        assert!(s.contains("\"pi\": 3.5"), "{s}");
        assert!(s.contains("\"none\": null"), "{s}");
        assert!(s.contains('['), "{s}");
    }

    #[test]
    fn json_integers_stay_integral() {
        assert_eq!(Json::from(1_000_000u64).render().trim(), "1000000");
    }

    #[test]
    fn raw_spliced_verbatim() {
        let j = Json::obj(vec![("m", Json::Raw("{\"x\":1}".into()))]);
        assert!(j.render().contains("\"m\": {\"x\":1}"), "{}", j.render());
    }

    #[test]
    fn hist_json_shape() {
        let mut h = router_core::obs::Histogram::default();
        h.observe(0);
        h.observe(3);
        let s = hist_json(&h).render();
        assert!(s.contains("\"count\": 2"), "{s}");
        assert!(s.contains("\"sum\": 3"), "{s}");
        assert!(s.contains("\"buckets\""), "{s}");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::Arr(vec![]).render().trim(), "[]");
        assert_eq!(Json::Obj(vec![]).render().trim(), "{}");
    }
}
