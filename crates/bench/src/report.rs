//! Table-formatting helpers shared by the experiment binaries: fixed-width
//! text tables resembling the paper's layout, written to stdout so runs can
//! be `tee`d into EXPERIMENTS.md.

/// A simple left-aligned text table.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must have as many cells as there are headers).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {c:<w$} |"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{:-<1$}|", "", w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a nanosecond quantity with 2 decimals in µs.
pub fn us(ns: f64) -> String {
    format!("{:.2}", ns / 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["Kernel", "Cycles"]);
        t.row(&["plain".into(), "6460".into()]);
        t.row(&["plugins".into(), "6970".into()]);
        let r = t.render();
        assert!(r.contains("| Kernel  | Cycles |"));
        assert!(r.lines().count() == 4);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        Table::new(&["a", "b"]).row(&["x".into()]);
    }
}
