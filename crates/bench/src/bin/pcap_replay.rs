//! E15 — pcap replay through the I/O plane vs the in-memory testbench.
//!
//! The I/O plane promises that putting real device plumbing in front of
//! the data plane costs little and changes nothing: a trace replayed
//! through `PcapReplayDev` → `IoPlane` → router → loopback egress must
//! emit **byte-identical per-flow output** to the same workload driven
//! directly by the in-memory testbench, on both data planes, and the
//! replay path must sustain at least [`MIN_REPLAY_RATIO`] of the
//! in-memory throughput at the same batch size.
//!
//! Two phases per plane:
//!
//! * **Differential (untimed)** — workload → pcap (Ethernet linktype, so
//!   the replay exercises L2 strip too) → replay through the plane;
//!   egress frames compared against the direct run (whole-interface
//!   order on the single router, per-flow order on the parallel one).
//! * **Throughput (timed)** — the same trace in looping mode, wall-clock
//!   pps over [`REPS`] trace passes vs the pooled/batched in-memory
//!   drivers at the same effective batch.
//!
//! Output: a text table and `BENCH_pcap.json` (schema: `bench`,
//! `schema_version`, `workload` metadata, `acceptance` block, `rows`
//! with `plane`, `variant`, `packets`, `wall_ns`, `pps_wall`,
//! `ns_per_packet`, `identical`, `conserved`). Exits non-zero when a
//! gate fails, so CI runs it directly.
//!
//! Run: `cargo run --release -p rp-bench --bin pcap_replay`

use router_core::plugins::register_builtin_factories;
use router_core::pmgr::run_script;
use router_core::{ControlPlane, ParallelRouter, ParallelRouterConfig, Router, RouterConfig};
use rp_bench::report::{write_bench_json, Json, Table};
use rp_netdev::loopback::LoopbackDev;
use rp_netdev::pcap::{PcapReplayDev, LINKTYPE_ETHERNET};
use rp_netdev::{IoPlane, IoRouter, NetDev};
use rp_netsim::testbench::Testbench;
use rp_netsim::traffic::{v6_host, Workload};
use rp_packet::FlowTuple;
use std::collections::HashMap;

const FLOWS: usize = 32;
const PKTS_PER_FLOW: usize = 64;
const REPS: usize = 40;
const WARMUP_REPS: usize = 2;
const SHARDS: usize = 4;

/// Acceptance gate: replay throughput ≥ this fraction of in-memory.
const MIN_REPLAY_RATIO: f64 = 0.8;

const CONFIG_SCRIPT: &str = "load drr\n\
     create drr quantum=9180 limit=512\n\
     attach 1 drr 0\n\
     bind sched drr 0 <*, *, UDP, *, *, *>\n";

fn router_config() -> RouterConfig {
    RouterConfig {
        verify_checksums: false,
        ..RouterConfig::default()
    }
}

fn configure<C: ControlPlane>(cp: &mut C) {
    cp.cp_add_route(v6_host(0), 32, 1);
    run_script(cp, CONFIG_SCRIPT).expect("configure data plane");
}

fn single_router() -> Router {
    let mut r = Router::new(router_config());
    register_builtin_factories(&mut r.loader);
    configure(&mut r);
    r
}

fn parallel_router() -> ParallelRouter {
    let mut template = router_core::loader::PluginLoader::new();
    register_builtin_factories(&mut template);
    let mut pr = ParallelRouter::new(
        ParallelRouterConfig {
            shards: SHARDS,
            router: router_config(),
            ingress_depth: 8192,
            ..ParallelRouterConfig::default()
        },
        &template,
    );
    configure(&mut pr);
    pr
}

/// Direct reference: the workload straight through a single router,
/// interface 1's emissions in order.
fn direct_output(tb: &Testbench) -> Vec<Vec<u8>> {
    let mut r = single_router();
    for pkt in tb.packets() {
        if let router_core::ip_core::Disposition::Queued(i) = r.receive(pkt.clone()) {
            r.pump(i, 1);
        }
    }
    r.take_tx(1).iter().map(|m| m.data().to_vec()).collect()
}

fn by_flow(frames: &[Vec<u8>]) -> HashMap<FlowTuple, Vec<Vec<u8>>> {
    let mut map: HashMap<FlowTuple, Vec<Vec<u8>>> = HashMap::new();
    for f in frames {
        let mut t = FlowTuple::extract(f, 0).expect("emitted packet parses");
        t.rx_if = 0;
        map.entry(t).or_default().push(f.clone());
    }
    map
}

/// Replay the trace once (non-looping) through an I/O plane over
/// `plane_router`, returning egress frames in emission order and
/// whether the conservation ledger checked out.
fn replay_once<P: IoRouter>(
    plane_router: P,
    trace: &[u8],
    budget: usize,
) -> (Vec<Vec<u8>>, bool, rp_netdev::IoLedger) {
    let (egress, _peer) = LoopbackDev::pair("lo-out", "sink", 1 << 15);
    let handle = egress.handle();
    let mut plane = IoPlane::new(plane_router, budget);
    plane.bind(
        0,
        Box::new(PcapReplayDev::new("pcap:replay", trace).unwrap()),
    );
    plane.bind(1, Box::new(egress));
    plane.poll_until_quiet(3, 100_000);
    let mut got = Vec::new();
    while let Some(f) = handle.drain_tx() {
        got.push(f);
    }
    let conserved =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| plane.check_conservation()))
            .is_ok();
    (got, conserved, plane.ledger())
}

/// Timed looping replay: `reps` full trace passes through the plane,
/// returning wall ns for the measured reps (after `WARMUP_REPS`).
fn replay_timed<P: IoRouter>(plane_router: P, trace: &[u8], per_rep: u64, budget: usize) -> u64 {
    let (egress, mut peer) = LoopbackDev::pair("lo-out", "sink", 1 << 15);
    let mut replay = PcapReplayDev::new("pcap:replay", trace).unwrap();
    replay.set_looping(true);
    let mut plane = IoPlane::new(plane_router, budget);
    plane.bind(0, Box::new(replay));
    plane.bind(1, Box::new(egress));

    let pump = |plane: &mut IoPlane<P>, peer: &mut LoopbackDev, target: u64| {
        while plane.ledger().device_rx < target {
            plane.poll();
            peer.rx_batch(usize::MAX, &mut |_p| {});
        }
    };
    pump(&mut plane, &mut peer, per_rep * WARMUP_REPS as u64);
    let t0 = std::time::Instant::now();
    pump(&mut plane, &mut peer, per_rep * (WARMUP_REPS + REPS) as u64);
    t0.elapsed().as_nanos() as u64
}

struct Row {
    plane: &'static str,
    variant: &'static str,
    packets: u64,
    wall_ns: u64,
    identical: Option<bool>,
    conserved: Option<bool>,
    /// Wire ledger of the conservation pass (replay-diff rows only).
    ledger: Option<rp_netdev::IoLedger>,
}

impl Row {
    fn pps_wall(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.packets as f64 * 1e9 / self.wall_ns as f64
        }
    }

    fn json(&self) -> Json {
        Json::obj(vec![
            ("plane", Json::from(self.plane)),
            ("variant", Json::from(self.variant)),
            ("packets", Json::from(self.packets)),
            ("wall_ns", Json::from(self.wall_ns)),
            ("pps_wall", Json::from(self.pps_wall())),
            (
                "ns_per_packet",
                Json::from(if self.packets == 0 {
                    0.0
                } else {
                    self.wall_ns as f64 / self.packets as f64
                }),
            ),
            (
                "identical",
                self.identical.map(Json::from).unwrap_or(Json::Null),
            ),
            (
                "conserved",
                self.conserved.map(Json::from).unwrap_or(Json::Null),
            ),
            (
                "ledger",
                self.ledger.map_or(Json::Null, |l| {
                    Json::obj(vec![
                        ("device_rx", Json::from(l.device_rx)),
                        ("device_tx", Json::from(l.device_tx)),
                        ("decap_dropped", Json::from(l.decap_dropped)),
                        ("tx_errors", Json::from(l.tx_errors)),
                        ("tx_dropped", Json::from(l.tx_dropped)),
                    ])
                }),
            ),
        ])
    }
}

fn main() {
    let workload = Workload::uniform(FLOWS, PKTS_PER_FLOW, 512);
    let tb = Testbench::new(&workload);
    let per_rep = workload.total_packets() as u64;
    let measured = per_rep * REPS as u64;
    // One poll ingests a whole trace pass, so the parallel plane's
    // flush cadence matches the in-memory batched driver's (per rep).
    let budget = per_rep as usize;
    eprintln!(
        "[pcap_replay] {FLOWS} flows × {PKTS_PER_FLOW} pkts = {per_rep}/rep, \
         {WARMUP_REPS}+{REPS} reps per variant…"
    );

    let trace = tb.record_pcap(LINKTYPE_ETHERNET, false);
    let direct = direct_output(&tb);
    assert_eq!(
        direct.len() as u64,
        per_rep,
        "reference run dropped packets"
    );
    let direct_flows = by_flow(&direct);
    let mut failures = Vec::new();
    let mut rows = Vec::new();

    // ---- single plane ---------------------------------------------
    let (replayed, conserved, ledger) = replay_once(single_router(), &trace, budget);
    let identical = replayed == direct;
    if !identical {
        failures.push(format!(
            "single: replay output differs from direct run ({} vs {} frames)",
            replayed.len(),
            direct.len()
        ));
    }
    if !conserved {
        failures.push("single: conservation ledger violated".into());
    }
    rows.push(Row {
        plane: "single",
        variant: "replay-diff",
        packets: per_rep,
        wall_ns: 0,
        identical: Some(identical),
        conserved: Some(conserved),
        ledger: Some(ledger),
    });

    {
        let mut r = single_router();
        tb.run_router_pooled(&mut r, WARMUP_REPS);
        let t0 = std::time::Instant::now();
        tb.run_router_pooled(&mut r, REPS);
        rows.push(Row {
            plane: "single",
            variant: "direct",
            packets: measured,
            wall_ns: t0.elapsed().as_nanos() as u64,
            identical: None,
            conserved: None,
            ledger: None,
        });
    }
    rows.push(Row {
        plane: "single",
        variant: "replay",
        packets: measured,
        wall_ns: replay_timed(single_router(), &trace, per_rep, budget),
        identical: None,
        conserved: None,
        ledger: None,
    });

    // ---- parallel plane -------------------------------------------
    let (replayed, conserved, ledger) = replay_once(parallel_router(), &trace, budget);
    let par_flows = by_flow(&replayed);
    let mut par_identical = par_flows.len() == direct_flows.len();
    if par_identical {
        for (flow, frames) in &direct_flows {
            if par_flows.get(flow) != Some(frames) {
                par_identical = false;
                break;
            }
        }
    }
    if !par_identical {
        failures.push("parallel: per-flow replay output differs from direct run".into());
    }
    if !conserved {
        failures.push("parallel: conservation ledger violated".into());
    }
    rows.push(Row {
        plane: "parallel",
        variant: "replay-diff",
        packets: per_rep,
        wall_ns: 0,
        identical: Some(par_identical),
        conserved: Some(conserved),
        ledger: Some(ledger),
    });

    {
        let mut pr = parallel_router();
        tb.run_parallel_batched(&mut pr, WARMUP_REPS, budget);
        let s = tb.run_parallel_batched(&mut pr, REPS, budget);
        rows.push(Row {
            plane: "parallel",
            variant: "direct",
            packets: measured,
            wall_ns: s.wall_ns,
            identical: None,
            conserved: None,
            ledger: None,
        });
    }
    rows.push(Row {
        plane: "parallel",
        variant: "replay",
        packets: measured,
        wall_ns: replay_timed(parallel_router(), &trace, per_rep, budget),
        identical: None,
        conserved: None,
        ledger: None,
    });

    // ---- report ---------------------------------------------------
    println!();
    println!(
        "pcap replay vs in-memory testbench ({FLOWS}-flow UDP/IPv6 workload, \
         Ethernet-framed trace, {measured} packets per timed variant)"
    );
    println!();
    let mut t = Table::new(&["Plane", "Variant", "pkt/s (wall)", "identical", "conserved"]);
    for r in &rows {
        t.row(&[
            r.plane.into(),
            r.variant.into(),
            if r.wall_ns == 0 {
                "—".into()
            } else {
                format!("{:.0}", r.pps_wall())
            },
            r.identical
                .map(|b| b.to_string())
                .unwrap_or_else(|| "—".into()),
            r.conserved
                .map(|b| b.to_string())
                .unwrap_or_else(|| "—".into()),
        ]);
    }
    t.print();

    // ---- acceptance -----------------------------------------------
    let find = |plane: &str, variant: &str| {
        rows.iter()
            .find(|r| r.plane == plane && r.variant == variant)
            .expect("variant measured")
    };
    let mut ratios = Vec::new();
    for plane in ["single", "parallel"] {
        let direct_pps = find(plane, "direct").pps_wall();
        let replay_pps = find(plane, "replay").pps_wall();
        let ratio = if direct_pps > 0.0 {
            replay_pps / direct_pps
        } else {
            0.0
        };
        ratios.push((plane, ratio));
        if ratio < MIN_REPLAY_RATIO {
            failures.push(format!(
                "{plane}: replay at {:.0}% of in-memory throughput (floor {:.0}%)",
                ratio * 100.0,
                MIN_REPLAY_RATIO * 100.0
            ));
        }
    }

    println!();
    for (plane, ratio) in &ratios {
        println!(
            "{plane}: replay sustains {:.0}% of in-memory throughput (floor {:.0}%)",
            ratio * 100.0,
            MIN_REPLAY_RATIO * 100.0
        );
    }

    let extra = vec![
        (
            "workload",
            Json::obj(vec![
                ("flows", Json::from(FLOWS)),
                ("pkts_per_flow", Json::from(PKTS_PER_FLOW)),
                ("reps", Json::from(REPS)),
                ("payload_len", Json::from(512usize)),
                ("shards", Json::from(SHARDS)),
                ("linktype", Json::from("ethernet")),
                ("rx_budget", Json::from(budget)),
            ]),
        ),
        (
            "acceptance",
            Json::obj(vec![
                ("min_replay_ratio", Json::from(MIN_REPLAY_RATIO)),
                ("single_replay_ratio", Json::from(ratios[0].1)),
                ("parallel_replay_ratio", Json::from(ratios[1].1)),
                ("single_identical", Json::from(identical)),
                ("parallel_identical", Json::from(par_identical)),
                ("pass", Json::from(failures.is_empty())),
            ]),
        ),
        ("host_cores", Json::from(num_cpus())),
    ];
    let rows_json = rows.iter().map(Row::json).collect();
    match write_bench_json("pcap", rows_json, extra) {
        Ok(p) => eprintln!("[pcap_replay] wrote {}", p.display()),
        Err(e) => eprintln!("[pcap_replay] could not write JSON: {e}"),
    }

    if !failures.is_empty() {
        eprintln!("[pcap_replay] ACCEPTANCE FAILED:");
        for f in &failures {
            eprintln!("[pcap_replay]   - {f}");
        }
        std::process::exit(1);
    }
}

fn num_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}
