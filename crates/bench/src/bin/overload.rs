//! E12 — overload shedding and fault-window accounting in the sharded
//! data plane.
//!
//! Two scenarios drive the dispatcher's policy-driven shed paths:
//!
//! 1. **Saturation** — bursts of increasing size are offered
//!    back-to-back to a small-FIFO shard array with zero overload wait.
//!    Once the per-shard FIFOs fill faster than the workers drain them,
//!    dispatch sheds with a counted `shard_overload` drop instead of
//!    blocking the ingress thread.
//! 2. **Fault window** — one shard is killed mid-burst (`shard kill`,
//!    a panic injected into its worker). Packets dispatched to the dead
//!    shard before detection, plus everything shed while it is
//!    quarantined and restarting, are re-accounted as `shard_down`
//!    drops when the incarnation's final report is harvested.
//!
//! The quantity under test is not throughput but **conservation**: in
//! every row, `offered == wire + dropped_total` must hold exactly (zero
//! silent loss), with the loss split across named buckets.
//!
//! Output: a text table on stdout and `BENCH_overload.json` (schema:
//! `bench`, `schema_version`, `rows` with `scenario`, `offered`, `wire`,
//! `shed_overload`, `shed_down`, `other_drops`, `restarts`,
//! `conserved`).
//!
//! Run: `cargo run --release -p rp-bench --bin overload`
//!
//! Pass `--heavy-tailed` to draw the burst workloads from the
//! heavy-tailed generator (few elephants, many mice) instead of the
//! uniform one; the default behaviour is unchanged without the flag.

use router_core::plugins::register_builtin_factories;
use router_core::pmgr::run_script;
use router_core::supervisor::HealthState;
use router_core::{ControlPlane, ParallelRouter, ParallelRouterConfig, RouterConfig};
use rp_bench::report::{write_bench_json, Json, Table};
use rp_netsim::traffic::{v6_host, Workload};
use rp_packet::Mbuf;
use std::time::{Duration, Instant};

const SHARDS: usize = 2;
const INGRESS_DEPTH: usize = 256;
const FLOWS: usize = 64;
const PAYLOAD: usize = 1500;

/// Full pipeline per shard: all gates, an observer at the stats gate,
/// checksum verification on (real per-packet work, so a back-to-back
/// offered burst genuinely outruns the workers).
const CONFIG_SCRIPT: &str = "load null\n\
     create null\n\
     bind stats null 0 <*, *, *, *, *, *>\n\
     load drr\n\
     create drr quantum=9180 limit=512\n\
     attach 1 drr 0\n\
     bind sched drr 0 <*, *, UDP, *, *, *>\n";

struct Row {
    scenario: String,
    offered: u64,
    wire: u64,
    shed_overload: u64,
    shed_down: u64,
    other_drops: u64,
    restarts: u32,
    conserved: bool,
    wall_ns: u64,
}

fn build() -> ParallelRouter {
    let mut template = router_core::loader::PluginLoader::new();
    register_builtin_factories(&mut template);
    let mut pr = ParallelRouter::new(
        ParallelRouterConfig {
            shards: SHARDS,
            router: RouterConfig {
                verify_checksums: true,
                ..RouterConfig::default()
            },
            ingress_depth: INGRESS_DEPTH,
            overload_wait: Duration::ZERO,
            ..ParallelRouterConfig::default()
        },
        &template,
    );
    pr.cp_add_route(v6_host(0), 32, 1);
    run_script(&mut pr, CONFIG_SCRIPT).expect("configure data plane");
    pr
}

fn drain(pr: &mut ParallelRouter) {
    pr.flush();
    for i in 0..pr.interface_count() {
        let _ = pr.take_tx(i as u32);
    }
}

/// Offer `packets` back-to-back, flush, and settle the books.
fn run_burst(
    pr: &mut ParallelRouter,
    scenario: &str,
    packets: &[Mbuf],
    kill_at: Option<usize>,
) -> Row {
    let before = pr.stats();
    let restarts_before: u32 = pr.cp_shard_status().iter().map(|s| s.restarts).sum();
    let t0 = Instant::now();
    for (i, pkt) in packets.iter().enumerate() {
        if Some(i) == kill_at {
            let _ = pr.cp_shard_kill(0);
        }
        pr.receive(pkt.clone());
    }
    // Close the fault window inside the measured scenario: wait until
    // the supervisor has detected the death, harvested the dead
    // incarnation, and brought a replacement back into service.
    if kill_at.is_some() {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let status = pr.cp_shard_status();
            let restarted = status.iter().map(|s| s.restarts).sum::<u32>() > restarts_before;
            let all_serving = status.iter().all(|s| s.health != HealthState::Quarantined);
            if (restarted && all_serving) || Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    pr.flush();
    let wall_ns = t0.elapsed().as_nanos() as u64;
    let after = pr.stats();
    let restarts_after: u32 = pr.cp_shard_status().iter().map(|s| s.restarts).sum();
    drain(pr);

    let offered = packets.len() as u64;
    let received = after.received - before.received;
    let wire = after.forwarded - before.forwarded;
    let shed_overload = after.dropped_shard_overload - before.dropped_shard_overload;
    let shed_down = after.dropped_shard_down - before.dropped_shard_down;
    let dropped = after.dropped_total() - before.dropped_total();
    Row {
        scenario: scenario.to_string(),
        offered,
        wire,
        shed_overload,
        shed_down,
        other_drops: dropped - shed_overload - shed_down,
        restarts: restarts_after - restarts_before,
        conserved: received == offered && offered == wire + dropped,
        wall_ns,
    }
}

/// Burst workload: uniform by default, heavy-tailed with the same flow
/// count and (approximate) volume under `--heavy-tailed`.
fn burst_workload(pkts_per_flow: usize, heavy_tailed: bool) -> Vec<Mbuf> {
    if heavy_tailed {
        // min_pkts scaled down so the Pareto tail lands near the same
        // total volume as the uniform burst.
        Workload::heavy_tailed(FLOWS, (pkts_per_flow / 4).max(1), PAYLOAD, 0xE1E).build()
    } else {
        Workload::uniform(FLOWS, pkts_per_flow, PAYLOAD).build()
    }
}

fn main() {
    let heavy_tailed = std::env::args().any(|a| a == "--heavy-tailed");
    if heavy_tailed {
        eprintln!("[overload] heavy-tailed burst workloads enabled");
    }
    let mut pr = build();
    // Warm the flow caches and schedulers at comfortable load.
    let warm = Workload::uniform(FLOWS, 20, PAYLOAD).build();
    for p in &warm {
        pr.receive(p.clone());
    }
    drain(&mut pr);

    let mut rows = Vec::new();

    // Scenario 1: saturation sweep. Burst sizes scale against the total
    // FIFO capacity of the array (SHARDS × INGRESS_DEPTH).
    let capacity = SHARDS * INGRESS_DEPTH;
    for mult in [1usize, 4, 16] {
        let n = capacity * mult / FLOWS;
        let burst = burst_workload(n.max(1), heavy_tailed);
        let label = format!("burst {}x capacity", mult);
        eprintln!("[overload] {label}: offering {} packets…", burst.len());
        rows.push(run_burst(&mut pr, &label, &burst, None));
        drain(&mut pr);
    }

    // Scenario 2: fault window. Kill shard 0 a third of the way into a
    // sustained burst; the supervisor quarantines, restarts with
    // backoff, and replays the journal while the offered load continues.
    let burst = burst_workload(16 * capacity / FLOWS, heavy_tailed);
    let kill_at = burst.len() / 3;
    eprintln!(
        "[overload] fault window: offering {} packets, killing shard 0 at {}…",
        burst.len(),
        kill_at
    );
    rows.push(run_burst(
        &mut pr,
        "shard kill mid-burst",
        &burst,
        Some(kill_at),
    ));

    println!();
    println!("Overload shedding and fault-window accounting ({SHARDS} shards, FIFO depth {INGRESS_DEPTH}, zero overload wait)");
    println!(
        "(conservation: offered == wire + dropped_total, with loss split across named buckets)"
    );
    println!();
    let mut t = Table::new(&[
        "Scenario",
        "offered",
        "wire",
        "shed overload",
        "shed down",
        "other drops",
        "restarts",
        "conserved",
    ]);
    let mut rows_json = Vec::new();
    let mut all_conserved = true;
    for r in &rows {
        all_conserved &= r.conserved;
        t.row(&[
            r.scenario.clone(),
            r.offered.to_string(),
            r.wire.to_string(),
            r.shed_overload.to_string(),
            r.shed_down.to_string(),
            r.other_drops.to_string(),
            r.restarts.to_string(),
            if r.conserved {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
        rows_json.push(Json::obj(vec![
            ("scenario", Json::from(r.scenario.clone())),
            ("offered", Json::from(r.offered)),
            ("wire", Json::from(r.wire)),
            ("shed_overload", Json::from(r.shed_overload)),
            ("shed_down", Json::from(r.shed_down)),
            ("other_drops", Json::from(r.other_drops)),
            ("restarts", Json::from(r.restarts as u64)),
            ("conserved", Json::from(r.conserved)),
            ("wall_ns", Json::from(r.wall_ns)),
        ]));
    }
    t.print();
    println!();
    println!(
        "zero silent loss across all scenarios: {}",
        if all_conserved { "yes" } else { "NO" }
    );

    let extra = vec![
        ("shards", Json::from(SHARDS)),
        ("ingress_depth", Json::from(INGRESS_DEPTH)),
        ("payload_len", Json::from(PAYLOAD)),
        ("zero_silent_loss", Json::from(all_conserved)),
    ];
    match write_bench_json("overload", rows_json, extra) {
        Ok(p) => eprintln!("[overload] wrote {}", p.display()),
        Err(e) => eprintln!("[overload] could not write JSON: {e}"),
    }
    if !all_conserved {
        std::process::exit(1);
    }
}
