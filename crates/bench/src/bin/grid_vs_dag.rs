//! Ablation — set-pruning DAG vs grid-of-tries on 2D filters.
//!
//! Paper §5.1.2: "if there are many ambiguous filters, the memory
//! requirements of our algorithm can be excessive. More advanced
//! techniques such as grid-of-tries can provide better memory utilization
//! without sacrificing performance, but work only in the special case of
//! two-dimensional filters."
//!
//! This binary measures exactly that trade-off: identical 2D (src, dst)
//! filter sets are installed into the six-field set-pruning DAG and into
//! grid-of-tries; we compare node counts (memory) and lookup times. The
//! workload deliberately includes cross-products of overlapping prefixes
//! — the replication-hostile case.
//!
//! The sweep stops at 1024 filters: beyond that the set-pruning DAG's
//! replication on this overlap-heavy workload exhausts memory — which is
//! itself the §5.1.2 observation being quantified.
//!
//! Run: `cargo run --release -p rp-bench --bin grid_vs_dag`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rp_bench::report::Table;
use rp_classifier::grid::TwoDFilter;
use rp_classifier::{BmpKind, DagTable, FilterSpec, GridOfTries};
use rp_lpm::Prefix;
use rp_packet::FlowTuple;
use std::net::{IpAddr, Ipv4Addr};
use std::time::Instant;

/// Overlap-heavy 2D filters: nested prefixes on both axes.
fn overlapping_filters(n: usize, seed: u64) -> Vec<TwoDFilter> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            // Few distinct base networks, many lengths → heavy nesting.
            let dbase: u32 =
                0x0A00_0000 | (rng.gen_range(0u32..4) << 20) | rng.gen_range(0u32..0xFFFF);
            let sbase: u32 =
                0xC0A8_0000 | (rng.gen_range(0u32..4) << 8) | rng.gen_range(0u32..0xFF);
            TwoDFilter {
                dst: Prefix::new(dbase, rng.gen_range(8..=32)),
                src: Prefix::new(sbase, rng.gen_range(8..=32)),
            }
        })
        .collect()
}

fn to_spec(f: &TwoDFilter) -> FilterSpec {
    format!(
        "{}/{}, {}/{}, *, *, *, *",
        Ipv4Addr::from(f.src.bits()),
        f.src.len(),
        Ipv4Addr::from(f.dst.bits()),
        f.dst.len()
    )
    .parse()
    .unwrap()
}

fn main() {
    println!("ablation: set-pruning DAG vs grid-of-tries on overlap-heavy 2D filters");
    println!();
    let mut t = Table::new(&[
        "filters",
        "DAG nodes",
        "grid nodes (d+s)",
        "DAG ns/lookup",
        "grid ns/lookup",
    ]);
    let mut rng = StdRng::seed_from_u64(1);
    for &n in &[64usize, 256, 512, 1024] {
        let filters = overlapping_filters(n, 42 + n as u64);
        let mut dag: DagTable<u32> = DagTable::new(BmpKind::Bspl);
        for (i, f) in filters.iter().enumerate() {
            dag.insert(to_spec(f), i as u32).unwrap();
        }
        let grid = GridOfTries::from_filters(filters.iter().map(|f| (*f, 0u32)).collect());
        let (dn, sn) = grid.node_counts();

        let probes: Vec<(u32, u32)> = (0..2048)
            .map(|_| {
                (
                    0x0A00_0000 | rng.gen_range(0u32..4) << 20 | rng.gen::<u32>() & 0xFFFF,
                    0xC0A8_0000 | rng.gen_range(0u32..4) << 8 | rng.gen::<u32>() & 0xFF,
                )
            })
            .collect();
        let tuples: Vec<FlowTuple> = probes
            .iter()
            .map(|(d, s)| FlowTuple {
                src: IpAddr::V4(Ipv4Addr::from(*s)),
                dst: IpAddr::V4(Ipv4Addr::from(*d)),
                proto: 17,
                sport: 1,
                dport: 2,
                rx_if: 0,
            })
            .collect();

        let t0 = Instant::now();
        for tup in &tuples {
            std::hint::black_box(dag.lookup(tup));
        }
        let dag_ns = t0.elapsed().as_nanos() as f64 / tuples.len() as f64;
        let t0 = Instant::now();
        for (d, s) in &probes {
            std::hint::black_box(grid.lookup(*d, *s));
        }
        let grid_ns = t0.elapsed().as_nanos() as f64 / probes.len() as f64;

        t.row(&[
            n.to_string(),
            dag.node_count().to_string(),
            format!("{}", dn + sn),
            format!("{dag_ns:.0}"),
            format!("{grid_ns:.0}"),
        ]);
    }
    t.print();
    println!();
    println!("expected shape: DAG node count grows super-linearly with nested");
    println!("filters (replication); grid-of-tries stays near-linear at similar");
    println!("or better lookup cost — matching the paper's §5.1.2 assessment.");
}
