//! E3 — reproduce **Table 3: Overall Packet Processing Time**.
//!
//! Paper setup: 8 KB UDP/IPv6 datagrams, 3 concurrent flows, 100 packets
//! per flow, repeated 1000 times, 16 filters installed, three gates with
//! empty plugins (framework row) or one scheduling gate with DRR.
//!
//! ```text
//! Kernel                              Avg cycles   µs     overhead
//! Unmodified NetBSD 1.2.1                 6460   27.7        —
//! NetBSD + Plugin framework               6970   29.9       +8%
//! NetBSD + ALTQ DRR (monolithic)          8160   35.0      +26%
//! NetBSD + Plugin framework + DRR plugin  8110   34.8      +26%
//! ```
//!
//! Absolute numbers move with the host CPU; the *relative overheads* are
//! the reproduced result: single-digit % for the framework, plugin DRR ≈
//! monolithic DRR, scheduling ≈ +20%.
//!
//! Run: `cargo run --release -p rp-bench --bin table3`

use router_core::monolithic::{AltqDrrRouter, BestEffortRouter};
use router_core::plugins::register_builtin_factories;
use router_core::pmgr::run_script;
use router_core::{Gate, Router, RouterConfig};
use rp_bench::report::{metrics_json, write_bench_json, Json, Table};
use rp_netsim::testbench::{RunStats, Testbench};
use rp_netsim::traffic::{v6_host, Workload};

const REPS: usize = 100; // paper: 1000 × 300 pkts; 100 reps is plenty stable

/// Host clock for ns→cycles conversion (falls back to 3 GHz when
/// /proc/cpuinfo is unavailable).
fn host_hz() -> f64 {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("cpu MHz"))
                .and_then(|l| l.split(':').nth(1))
                .and_then(|v| v.trim().parse::<f64>().ok())
        })
        .map(|mhz| mhz * 1e6)
        .unwrap_or(3e9)
}

/// Sixteen filters as in the paper's run ("The system had 16 filters
/// installed") — background policies that do not match the test flows.
fn sixteen_background_filters(r: &mut Router, plugin: &str, gate: &str) {
    for i in 0..16 {
        let spec = format!(
            "bind {gate} {plugin} 0 <2001:db8:ff{i:02x}::/48, *, TCP, *, {}, *>",
            20000 + i
        );
        run_script(r, &spec).expect("background filter");
    }
}

fn plugin_router(gates: Vec<Gate>) -> Router {
    let mut r = Router::new(RouterConfig {
        verify_checksums: false,
        enabled_gates: gates,
        ..RouterConfig::default()
    });
    register_builtin_factories(&mut r.loader);
    r.add_route(v6_host(0), 32, 1);
    r
}

fn main() {
    let workload = Workload::paper_table3();
    let tb = Testbench::new(&workload);
    eprintln!(
        "[table3] {} packets/rep × {REPS} reps per kernel…",
        workload.total_packets()
    );

    // Row 1: unmodified best-effort kernel.
    let mut be = BestEffortRouter::new(4, false);
    be.add_route(v6_host(0), 32, 1);
    let be_warm = tb.run_best_effort(&mut be, 2); // warm caches
    let _ = be_warm;
    let s_be = tb.run_best_effort(&mut be, REPS);

    // Row 2: plugin framework, three gates calling empty plugins.
    let mut fw = plugin_router(vec![Gate::Firewall, Gate::IpSecurity, Gate::Stats]);
    run_script(
        &mut fw,
        "load null\ncreate null\n\
         bind fw null 0 <*, *, *, *, *, *>\n\
         bind ipsec null 0 <*, *, *, *, *, *>\n\
         bind stats null 0 <*, *, *, *, *, *>\n",
    )
    .unwrap();
    sixteen_background_filters(&mut fw, "null", "fw");
    tb.run_router(&mut fw, 2);
    let s_fw = tb.run_router(&mut fw, REPS);

    // Row 3: monolithic ALTQ-style DRR kernel.
    let mut altq = AltqDrrRouter::new(4, 64, 9180, false);
    altq.add_route(v6_host(0), 32, 1);
    tb.run_altq(&mut altq, 2);
    let s_altq = tb.run_altq(&mut altq, REPS);

    // Row 4: plugin framework with the DRR plugin at one gate.
    let mut pd = plugin_router(vec![Gate::Scheduling]);
    run_script(
        &mut pd,
        "load drr\ncreate drr quantum=9180 limit=512\nattach 1 drr 0\n\
         bind sched drr 0 <*, *, UDP, *, *, *>\n",
    )
    .unwrap();
    sixteen_background_filters(&mut pd, "drr", "sched");
    tb.run_router(&mut pd, 2);
    let s_pd = tb.run_router(&mut pd, REPS);

    println!();
    println!("Table 3: Overall Packet Processing Time");
    println!("(workload: 3 × 100 × {REPS} UDP/IPv6 8 KB datagrams, 16+ filters)");
    println!();
    // The paper's baseline (6460 cycles ≈ 27.7 µs on a P6/233) is a full
    // kernel path: interrupt handling, ATM driver work, mbuf management.
    // Our lean user-space baseline does none of that, so two comparisons
    // are reported: (a) raw percentages against the lean baseline, and
    // (b) the architectural quantity the paper actually isolates — the
    // *added* cycles per packet, comparable against the paper's added
    // cycles over ITS baseline (framework +510, ALTQ DRR +1700, plugin
    // DRR +1650).
    let base = s_be.ns_per_packet();
    let hz = host_hz();
    let row = |name: &str, s: &RunStats, paper_added: &str| {
        let ns = s.ns_per_packet();
        let added_cycles = (ns - base) * hz / 1e9;
        vec![
            name.to_string(),
            format!("{:.2}", ns / 1000.0),
            format!("{:+.1}%", 100.0 * (ns - base) / base),
            format!("{:+.0}", added_cycles),
            paper_added.to_string(),
            format!("{:.0}", s.packets_per_sec()),
        ]
    };
    let mut t = Table::new(&[
        "Kernel",
        "µs/pkt",
        "overhead (lean base)",
        "added host-cycles",
        "paper added cycles",
        "pkt/s",
    ]);
    t.row(&row("Best-effort (unmodified)", &s_be, "—"));
    t.row(&row(
        "Plugin framework (3 empty-plugin gates)",
        &s_fw,
        "+510 (+7.9%)",
    ));
    t.row(&row("Monolithic ALTQ DRR", &s_altq, "+1700 (+26.3%)"));
    t.row(&row(
        "Plugin framework + DRR plugin",
        &s_pd,
        "+1650 (+25.5%)",
    ));
    t.print();

    let json_row = |name: &str, s: &RunStats| {
        let ns = s.ns_per_packet();
        Json::obj(vec![
            ("kernel", Json::from(name)),
            ("ns_per_pkt", Json::from(ns)),
            (
                "overhead_vs_lean_pct",
                Json::from(100.0 * (ns - base) / base),
            ),
            ("added_host_cycles", Json::from((ns - base) * hz / 1e9)),
            ("pps", Json::from(s.packets_per_sec())),
            ("cache_hits", Json::from(s.cache_hits)),
            ("cache_misses", Json::from(s.cache_misses)),
        ])
    };
    let rows = vec![
        json_row("best_effort", &s_be),
        json_row("plugin_framework", &s_fw),
        json_row("monolithic_altq_drr", &s_altq),
        json_row("plugin_framework_drr", &s_pd),
    ];
    // The plugin rows carry their routers' full metrics snapshot (gate
    // latency histograms, classification outcomes, interface counters) so
    // the bench artifact is self-describing; the monolithic kernels have
    // no gates and hence no registry.
    let extra = vec![
        ("host_hz", Json::from(hz)),
        ("reps", Json::from(REPS)),
        ("packets_per_rep", Json::from(workload.total_packets())),
        (
            "metrics",
            Json::obj(vec![
                ("plugin_framework", metrics_json(&fw.take_metrics())),
                ("plugin_framework_drr", metrics_json(&pd.take_metrics())),
            ]),
        ),
    ];
    match write_bench_json("table3", rows, extra) {
        Ok(p) => eprintln!("[table3] wrote {}", p.display()),
        Err(e) => eprintln!("[table3] could not write JSON: {e}"),
    }

    println!();
    let fw_added = (s_fw.ns_per_packet() - base) * hz / 1e9;
    println!(
        "framework added {:.0} host-cycles/pkt; against the paper's 6460-cycle kernel",
        fw_added
    );
    println!(
        "baseline that is {:+.1}% (paper measured +7.9% = +510 of its cycles)",
        100.0 * fw_added / 6460.0
    );
    let pd = s_pd.ns_per_packet();
    let altq = s_altq.ns_per_packet();
    println!(
        "plugin DRR vs monolithic ALTQ DRR: {:+.1}%  (paper: -0.6% — plugin not slower)",
        100.0 * (pd - altq) / altq
    );
    println!(
        "cache behaviour: framework run had {} misses / {} hits (flow cache working)",
        s_fw.cache_misses, s_fw.cache_hits
    );
}
