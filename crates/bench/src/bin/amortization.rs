//! E8 — flow-cache amortization: per-packet cost vs flow length.
//!
//! Paper §3.2: the n-gate filter lookup "cycle is executed only for the
//! first packet arriving on an uncached flow. Subsequent packets follow a
//! faster path." Sweeping packets-per-flow shows the uncached cost
//! amortizing away; with 1-packet flows every packet pays the filter
//! lookups (the paper's worst case: "many flows may be very short-lived —
//! just one or a few packets").
//!
//! Run: `cargo run --release -p rp-bench --bin amortization`

use router_core::plugins::register_builtin_factories;
use router_core::pmgr::run_script;
use router_core::{Gate, Router, RouterConfig};
use rp_bench::report::Table;
use rp_classifier::FlowTableConfig;
use rp_netsim::testbench::Testbench;
use rp_netsim::traffic::{v6_host, Workload};

fn router_with_three_gates() -> Router {
    let mut r = Router::new(RouterConfig {
        verify_checksums: false,
        enabled_gates: vec![Gate::Firewall, Gate::IpSecurity, Gate::Stats],
        flow_table: FlowTableConfig {
            buckets: 32768,
            initial_records: 1024,
            max_records: 1 << 20,
            gates: 6,
            max_idle_ns: 0,
            ..FlowTableConfig::default()
        },
        ..RouterConfig::default()
    });
    register_builtin_factories(&mut r.loader);
    r.add_route(v6_host(0), 32, 1);
    run_script(
        &mut r,
        "load null\ncreate null\n\
         bind fw null 0 <*, *, *, *, *, *>\n\
         bind ipsec null 0 <*, *, *, *, *, *>\n\
         bind stats null 0 <*, *, *, *, *, *>\n",
    )
    .unwrap();
    r
}

fn main() {
    println!("E8: per-packet cost vs flow length (3 gates, empty plugins)");
    println!();
    const TOTAL_PKTS: usize = 65536;
    let mut t = Table::new(&[
        "pkts/flow",
        "flows",
        "ns/pkt",
        "cache hit rate",
        "filter lookups/pkt",
    ]);
    for &per_flow in &[1usize, 2, 4, 16, 64, 256, 1024] {
        let flows = TOTAL_PKTS / per_flow;
        let workload = Workload::uniform(flows, per_flow, 64);
        let tb = Testbench::new(&workload);
        let mut r = router_with_three_gates();
        let f0 = r.filter_stats().dag_edges;
        let stats = tb.run_router(&mut r, 1);
        let f1 = r.filter_stats().dag_edges;
        let lookups_per_pkt = (f1 - f0) as f64 / 6.0 / stats.packets as f64; // 6 edge accesses ≈ 1 lookup
        t.row(&[
            per_flow.to_string(),
            flows.to_string(),
            format!("{:.0}", stats.ns_per_packet()),
            format!(
                "{:.3}",
                stats.cache_hits as f64 / (stats.cache_hits + stats.cache_misses) as f64
            ),
            format!("{lookups_per_pkt:.2}"),
        ]);
    }
    t.print();
    println!();
    println!("expected shape: ns/pkt falls toward the cached-path floor as flows");
    println!("lengthen; filter-table work per packet scales as 1/flow_len (all gate");
    println!("tables are consulted once, on the flow's first packet only).");
}
