//! E7 — scaling of the sharded parallel data plane.
//!
//! A uniform 64-flow UDP/IPv6 workload is replayed through
//! [`ParallelRouter`] arrays of 1/2/4/8 flow-affine shards, each shard a
//! complete single-threaded plugin router (gates enabled, a null plugin
//! bound, DRR attached), plus the plain single-threaded [`Router`] as the
//! no-sharding reference.
//!
//! ## Methodology
//!
//! The quantity reported is the **aggregate throughput a one-core-per-
//! shard array sustains**: total packets divided by the busiest shard's
//! CPU time (the array's critical path). Per-shard CPU demand is read
//! from the shard thread's CPU clock (`/proc/thread-self/stat`), which is
//! immune to preemption inflation when the measurement host has fewer
//! cores than shards — wall-clock speedup on such a host measures the
//! host, not the architecture, and is reported separately as
//! `wall_ns` only. Flow-affine dispatch (`flow_hash % N`) means shards
//! share no state, so per-shard CPU cost is independent of N and the
//! speedup is set by dispatch balance: `speedup ≈ N / balance_ratio`.
//!
//! Output: a text table on stdout and `BENCH_parallel.json`
//! (schema: `bench`, `schema_version`, `workload` metadata, and `rows`
//! with `shards`, `packets`, `forwarded`, `dropped`,
//! `max_shard_busy_ns`, `total_busy_ns`, `wall_ns`, `aggregate_pps`,
//! `speedup_vs_1shard`, `balance_ratio`, `shard_packets`).
//!
//! Run: `cargo run --release -p rp-bench --bin parallel_scaling`

use router_core::plugins::register_builtin_factories;
use router_core::pmgr::run_script;
use router_core::{ControlPlane, ParallelRouter, ParallelRouterConfig, Router, RouterConfig};
use rp_bench::report::{metrics_json, write_bench_json, Json, Table};
use rp_netsim::testbench::Testbench;
use rp_netsim::traffic::{v6_host, Workload};

const FLOWS: usize = 64;
const PKTS_PER_FLOW: usize = 200;
const REPS: usize = 150;
const WARMUP_REPS: usize = 2;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The per-shard configuration every variant runs: all gates on, a null
/// plugin observing every flow at the stats gate, DRR scheduling egress.
const CONFIG_SCRIPT: &str = "load null\n\
     create null\n\
     bind stats null 0 <*, *, *, *, *, *>\n\
     load drr\n\
     create drr quantum=9180 limit=512\n\
     attach 1 drr 0\n\
     bind sched drr 0 <*, *, UDP, *, *, *>\n";

fn router_config() -> RouterConfig {
    RouterConfig {
        verify_checksums: false,
        ..RouterConfig::default()
    }
}

fn configure<C: ControlPlane>(cp: &mut C) {
    cp.cp_add_route(v6_host(0), 32, 1);
    run_script(cp, CONFIG_SCRIPT).expect("configure data plane");
}

fn main() {
    let workload = Workload::uniform(FLOWS, PKTS_PER_FLOW, 512);
    let tb = Testbench::new(&workload);
    let per_rep = workload.total_packets();
    eprintln!(
        "[parallel_scaling] {FLOWS} flows × {PKTS_PER_FLOW} pkts = {per_rep}/rep, \
         {WARMUP_REPS}+{REPS} reps per variant…"
    );

    // Reference: the paper-faithful single-threaded router (no dispatch,
    // no channels).
    let mut single = Router::new(router_config());
    register_builtin_factories(&mut single.loader);
    configure(&mut single);
    tb.run_router(&mut single, WARMUP_REPS);
    let s_single = tb.run_router(&mut single, REPS);
    eprintln!(
        "[parallel_scaling] single-threaded reference: {:.0} pkt/s",
        s_single.packets_per_sec()
    );

    // Shared plugin factory table (the single on-disk module set).
    let mut template = router_core::loader::PluginLoader::new();
    register_builtin_factories(&mut template);

    let mut rows_json = Vec::new();
    let mut results = Vec::new();
    for &shards in &SHARD_COUNTS {
        let mut pr = ParallelRouter::new(
            ParallelRouterConfig {
                shards,
                router: router_config(),
                ingress_depth: 1024,
                ..ParallelRouterConfig::default()
            },
            &template,
        );
        configure(&mut pr);
        tb.run_parallel(&mut pr, WARMUP_REPS);
        let s = tb.run_parallel(&mut pr, REPS);
        eprintln!(
            "[parallel_scaling] {shards} shard(s): {:.0} pkt/s aggregate, balance {:.2}",
            s.aggregate_pps(),
            s.balance_ratio()
        );
        // Merged observability snapshot across the shard array, so the
        // artifact records classification and drop behaviour per variant.
        let snap = pr.metrics_snapshot();
        results.push((shards, s, snap));
    }

    let base_pps = results[0].1.aggregate_pps();
    println!();
    println!("Parallel data plane scaling (uniform {FLOWS}-flow UDP/IPv6 workload)");
    println!("(aggregate rate = packets ÷ busiest shard's CPU time: the critical path of a");
    println!(
        "one-core-per-shard array; measurement host has {} core(s))",
        num_cpus()
    );
    println!();
    let mut t = Table::new(&[
        "Shards",
        "pkt/s (aggregate)",
        "speedup vs 1",
        "balance (max/mean)",
        "µs/pkt (per shard)",
    ]);
    t.row(&[
        "single-threaded ref".into(),
        format!("{:.0}", s_single.packets_per_sec()),
        "—".into(),
        "—".into(),
        format!("{:.2}", s_single.ns_per_packet() / 1000.0),
    ]);
    for (shards, s, snap) in &results {
        let speedup = s.aggregate_pps() / base_pps;
        t.row(&[
            shards.to_string(),
            format!("{:.0}", s.aggregate_pps()),
            format!("{speedup:.2}×"),
            format!("{:.2}", s.balance_ratio()),
            format!("{:.2}", s.ns_per_packet() / 1000.0),
        ]);
        rows_json.push(Json::obj(vec![
            ("shards", Json::from(*shards)),
            ("packets", Json::from(s.packets)),
            ("forwarded", Json::from(s.forwarded)),
            ("dropped", Json::from(s.dropped)),
            ("max_shard_busy_ns", Json::from(s.max_shard_busy_ns)),
            ("total_busy_ns", Json::from(s.total_busy_ns)),
            ("wall_ns", Json::from(s.wall_ns)),
            ("aggregate_pps", Json::from(s.aggregate_pps())),
            ("speedup_vs_1shard", Json::from(speedup)),
            ("balance_ratio", Json::from(s.balance_ratio())),
            ("shard_packets", Json::from(s.shard_packets.clone())),
            ("metrics", metrics_json(snap)),
        ]));
    }
    t.print();

    let four = results
        .iter()
        .find(|(n, _, _)| *n == 4)
        .map(|(_, s, _)| s.aggregate_pps() / base_pps)
        .unwrap_or(0.0);
    println!();
    println!("4-shard aggregate speedup: {four:.2}× (acceptance floor: 3.0×); per-flow order");
    println!("and delivery parity with the single-threaded router are asserted by the");
    println!("differential test (tests/parallel_dataplane.rs).");

    let extra = vec![
        (
            "workload",
            Json::obj(vec![
                ("flows", Json::from(FLOWS)),
                ("pkts_per_flow", Json::from(PKTS_PER_FLOW)),
                ("reps", Json::from(REPS)),
                ("payload_len", Json::from(512usize)),
            ]),
        ),
        (
            "single_threaded_pps",
            Json::from(s_single.packets_per_sec()),
        ),
        ("host_cores", Json::from(num_cpus())),
        ("speedup_4shard", Json::from(four)),
    ];
    match write_bench_json("parallel", rows_json, extra) {
        Ok(p) => eprintln!("[parallel_scaling] wrote {}", p.display()),
        Err(e) => eprintln!("[parallel_scaling] could not write JSON: {e}"),
    }
}

fn num_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}
