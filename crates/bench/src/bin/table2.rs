//! E2 — reproduce **Table 2: Memory Accesses for a Filter Lookup**.
//!
//! The paper counts worst-case memory accesses for one filter-table
//! lookup with ~50,000 filters installed and the BSPL BMP plugin:
//!
//! ```text
//! Access to function pointer for BMP function        1
//! Access to function pointer for index hash          1
//! IP address lookup (2·log2(32) / 2·log2(128))    10/14
//! Port number lookup                                  2
//! Access to DAG edges                                  6
//! Total                                            20/24
//! ```
//!
//! Two sections:
//!
//! 1. **Adversarial length population** — prefix sets that populate the
//!    full range of lengths at both address levels, which is exactly the
//!    regime the paper's `2·log2(W)` accounting assumes. Measured worst
//!    case must equal the paper's numbers.
//! 2. **Realistic 50,000 random filters** — with BGP-like CIDR length
//!    mixes the mutating binary search visits only populated lengths, so
//!    the measured worst case comes in *under* the paper's bound (the
//!    bound still holds).
//!
//! Run: `cargo run --release -p rp-bench --bin table2`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use router_core::obs::Histogram;
use rp_bench::report::{hist_json, write_bench_json, Json, Table};
use rp_classifier::{AddrMatch, BmpKind, DagTable, FilterSpec, LookupStats, PortMatch};
use rp_lpm::Prefix;
use rp_netsim::traffic::random_filters;
use rp_packet::FlowTuple;
use std::net::IpAddr;

const FILTERS: usize = 50_000;
const PROBES: usize = 20_000;

/// Synthesize a tuple matching `spec` (random bits in wildcarded
/// positions) so probes exercise deep DAG walks.
fn matching_tuple(spec: &FilterSpec, rng: &mut StdRng) -> FlowTuple {
    fn addr_of(m: &AddrMatch, rng: &mut StdRng) -> IpAddr {
        match m {
            AddrMatch::Any => IpAddr::V4(std::net::Ipv4Addr::from(rng.gen::<u32>())),
            AddrMatch::V4(p) => {
                let suffix_bits = 32 - u32::from(p.len());
                let suffix = if suffix_bits == 0 {
                    0
                } else {
                    rng.gen::<u32>() >> (32 - suffix_bits)
                };
                IpAddr::V4(std::net::Ipv4Addr::from(p.bits() | suffix))
            }
            AddrMatch::V6(p) => {
                let suffix_bits = 128 - u32::from(p.len());
                let suffix = if suffix_bits == 0 {
                    0
                } else {
                    rng.gen::<u128>() >> (128 - suffix_bits)
                };
                IpAddr::V6(std::net::Ipv6Addr::from(p.bits() | suffix))
            }
        }
    }
    let port_of = |m: &PortMatch, rng: &mut StdRng| match m {
        PortMatch::Any => rng.gen(),
        PortMatch::Range(lo, hi) => rng.gen_range(*lo..=*hi),
    };
    FlowTuple {
        src: addr_of(&spec.src, rng),
        dst: addr_of(&spec.dst, rng),
        proto: spec.proto.unwrap_or(if rng.gen_bool(0.5) { 6 } else { 17 }),
        sport: port_of(&spec.sport, rng),
        dport: port_of(&spec.dport, rng),
        rx_if: spec.rx_if.unwrap_or(0),
    }
}

fn worst_case(
    dag: &DagTable<u32>,
    specs: &[FilterSpec],
    probes: usize,
    seed: u64,
) -> (LookupStats, Histogram) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut worst = LookupStats::default();
    let mut hist = Histogram::default();
    for i in 0..probes {
        let t = if i % 4 == 0 {
            // Fully random probe (likely early miss).
            let mut t = matching_tuple(&specs[rng.gen_range(0..specs.len())], &mut rng);
            t.sport = rng.gen();
            t.dport = rng.gen();
            t
        } else {
            matching_tuple(&specs[rng.gen_range(0..specs.len())], &mut rng)
        };
        let (_, stats) = dag.lookup_with_stats(&t);
        hist.observe(stats.total());
        if stats.total() > worst.total() {
            worst = stats;
        }
    }
    (worst, hist)
}

/// Section 1: populate every prefix length at both address levels along
/// one probe path. Two groups of filters:
///
/// * one filter per source length 1..W-1 (nested prefixes of the all-ones
///   address) with a fixed exact destination — the root source matcher
///   then holds W-1 populated lengths, so BSPL does `log2(W)` probes;
/// * under the *longest* source prefix, one filter per destination
///   length 1..W-1 — the destination matcher on that path also holds
///   W-1 lengths.
///
/// A probe matching the deepest path therefore pays `log2(W)` probes per
/// address — exactly the paper's `2·log2(32)=10` / `2·log2(128)=14`.
fn adversarial(v6: bool) -> (LookupStats, Histogram, usize) {
    let mut dag: DagTable<u32> = DagTable::new(BmpKind::Bspl);
    let mut specs = Vec::new();
    let max_len: u8 = if v6 { 127 } else { 31 };
    let src_of = |len: u8| {
        if v6 {
            AddrMatch::V6(Prefix::new(u128::MAX, len))
        } else {
            AddrMatch::V4(Prefix::new(u32::MAX, len))
        }
    };
    let dst_of = |len: u8| {
        if v6 {
            AddrMatch::V6(Prefix::new(u128::MAX, len))
        } else {
            AddrMatch::V4(Prefix::new(u32::MAX, len))
        }
    };
    let mut id = 0u32;
    // Group 1: every source length, fixed exact destination.
    for sl in 1..=max_len {
        let spec = FilterSpec {
            src: src_of(sl),
            dst: dst_of(max_len),
            proto: Some(17),
            sport: PortMatch::eq(1000),
            dport: PortMatch::eq(2000),
            rx_if: None,
        };
        specs.push(spec.clone());
        dag.insert(spec, id).unwrap();
        id += 1;
    }
    // Group 2: under the longest source prefix, every destination length.
    for dl in 1..=max_len {
        let spec = FilterSpec {
            src: src_of(max_len),
            dst: dst_of(dl),
            proto: Some(17),
            sport: PortMatch::eq(1000),
            dport: PortMatch::eq(2000),
            rx_if: None,
        };
        specs.push(spec.clone());
        dag.insert(spec, id).unwrap();
        id += 1;
    }
    let (worst, hist) = worst_case(&dag, &specs, 4000, 0xAD5E);
    (worst, hist, specs.len())
}

/// Section 2: realistic random filters.
fn realistic(v6: bool) -> (LookupStats, Histogram, usize) {
    let specs = random_filters(FILTERS, v6, 0xF1F7E2);
    let mut dag: DagTable<u32> = DagTable::new(BmpKind::Bspl);
    let mut installed = Vec::new();
    for (i, f) in specs.into_iter().enumerate() {
        // Random port fields occasionally collide ambiguously; skip those
        // (real filter sets are curated policies, not random).
        if dag.insert(f.clone(), i as u32).is_ok() {
            installed.push(f);
        }
    }
    let (worst, hist) = worst_case(&dag, &installed, PROBES, 7);
    (worst, hist, installed.len())
}

fn print_table(title: &str, w4: LookupStats, n4: usize, w6: LookupStats, n6: usize) {
    println!();
    println!("{title}");
    println!("({n4} IPv4 / {n6} IPv6 filters installed)");
    let mut t = Table::new(&["Component", "paper v4", "ours v4", "paper v6", "ours v6"]);
    t.row(&[
        "Access to fn pointer for BMP function".into(),
        "1".into(),
        w4.bmp_fn_ptr.to_string(),
        "1".into(),
        w6.bmp_fn_ptr.to_string(),
    ]);
    t.row(&[
        "Access to fn pointer for index hash".into(),
        "1".into(),
        w4.hash_fn_ptr.to_string(),
        "1".into(),
        w6.hash_fn_ptr.to_string(),
    ]);
    t.row(&[
        "IP address lookup (2*log2(W))".into(),
        "10".into(),
        w4.addr_probes.to_string(),
        "14".into(),
        w6.addr_probes.to_string(),
    ]);
    t.row(&[
        "Port number lookup".into(),
        "2".into(),
        w4.port_probes.to_string(),
        "2".into(),
        w6.port_probes.to_string(),
    ]);
    t.row(&[
        "Access to DAG edges".into(),
        "6".into(),
        w4.dag_edges.to_string(),
        "6".into(),
        w6.dag_edges.to_string(),
    ]);
    t.row(&[
        "Total".into(),
        "20".into(),
        w4.total().to_string(),
        "24".into(),
        w6.total().to_string(),
    ]);
    t.print();
    println!(
        "worst-case at the paper's 60 ns/access: {:.2} µs v4, {:.2} µs v6 (paper: 1.2 / 1.4 µs)",
        w4.total() as f64 * 0.06,
        w6.total() as f64 * 0.06
    );
}

fn json_row(
    section: &str,
    family: &str,
    w: &LookupStats,
    hist: &Histogram,
    n: usize,
    paper_total: u64,
) -> Json {
    Json::obj(vec![
        ("section", Json::from(section)),
        ("family", Json::from(family)),
        ("filters", Json::from(n)),
        ("bmp_fn_ptr", Json::from(w.bmp_fn_ptr)),
        ("hash_fn_ptr", Json::from(w.hash_fn_ptr)),
        ("addr_probes", Json::from(w.addr_probes)),
        ("port_probes", Json::from(w.port_probes)),
        ("dag_edges", Json::from(w.dag_edges)),
        ("total", Json::from(w.total())),
        ("paper_total", Json::from(paper_total)),
        // Distribution of per-probe access counts (log-2 buckets), not
        // just the worst case — shows how far typical lookups sit below
        // the bound.
        ("access_hist", hist_json(hist)),
    ])
}

fn main() {
    eprintln!("[table2] adversarial length population…");
    let (a4, ah4, an4) = adversarial(false);
    let (a6, ah6, an6) = adversarial(true);
    print_table(
        "Table 2 — adversarial: every prefix length populated (paper's accounting regime)",
        a4,
        an4,
        a6,
        an6,
    );

    eprintln!("[table2] realistic 50k random filters…");
    let (r4, rh4, rn4) = realistic(false);
    let (r6, rh6, rn6) = realistic(true);
    print_table(
        "Table 2 — realistic: 50,000 random CIDR filters (mutating binary search beats the bound)",
        r4,
        rn4,
        r6,
        rn6,
    );
    println!();
    println!("Both sections are independent of the number of filters (the paper's");
    println!("headline property); the bound 20/24 is met exactly in the adversarial");
    println!("regime and undercut with realistic length distributions.");

    let rows = vec![
        json_row("adversarial", "v4", &a4, &ah4, an4, 20),
        json_row("adversarial", "v6", &a6, &ah6, an6, 24),
        json_row("realistic", "v4", &r4, &rh4, rn4, 20),
        json_row("realistic", "v6", &r6, &rh6, rn6, 24),
    ];
    let extra = vec![
        ("filters_requested", Json::from(FILTERS)),
        ("probes", Json::from(PROBES)),
    ];
    match write_bench_json("table2", rows, extra) {
        Ok(p) => eprintln!("[table2] wrote {}", p.display()),
        Err(e) => eprintln!("[table2] could not write JSON: {e}"),
    }
}
