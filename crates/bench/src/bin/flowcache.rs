//! E4 — flow-table (cache-hit) lookup cost and scaling.
//!
//! Paper claims: "in the best case, the IPv6 flow entry for a packet can
//! be found in 1.3 µs (when the flow is cached)" on a P6/233, with the
//! hash executed "in 17 processor cycles". We measure the cached-lookup
//! cost across cache populations and report ns plus P6/233-equivalent
//! cycles (shape: flat until chains lengthen, far below the uncached
//! path).
//!
//! Run: `cargo run --release -p rp-bench --bin flowcache`

use rp_bench::report::Table;
use rp_classifier::flow_table::{flow_hash, FlowTable, FlowTableConfig};
use rp_netsim::traffic::v6_host;
use rp_packet::FlowTuple;
use std::time::Instant;

/// Host clock for ns→cycles conversion (fallback 3 GHz).
fn host_hz() -> f64 {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("cpu MHz"))
                .and_then(|l| l.split(':').nth(1))
                .and_then(|v| v.trim().parse::<f64>().ok())
        })
        .map(|mhz| mhz * 1e6)
        .unwrap_or(3e9)
}

fn tuple(i: u32) -> FlowTuple {
    FlowTuple {
        src: v6_host((i % 50000) as u16),
        dst: v6_host(((i / 50000) % 50000 + 1) as u16),
        proto: 17,
        sport: (i % 60000) as u16,
        dport: 80,
        rx_if: 0,
    }
}

fn main() {
    println!("E4: flow-table cached-lookup cost vs cache population");
    println!("(paper: best-case cached IPv6 lookup ≈ 1.3 µs ≈ 300 cycles on P6/233)");
    println!();
    let hz = host_hz();
    let mut t = Table::new(&["cached flows", "ns/lookup", "host cycles", "hit rate"]);
    for &n in &[1usize, 64, 1024, 8192, 65536, 262_144] {
        let mut ft: FlowTable<u32> = FlowTable::new(FlowTableConfig {
            buckets: 32768,
            initial_records: 1024,
            max_records: n.max(1024) * 2,
            gates: 4,
            max_idle_ns: 0,
            ..FlowTableConfig::default()
        });
        for i in 0..n {
            ft.insert(tuple(i as u32));
        }
        // Probe uniformly over the cached population.
        let probes: Vec<FlowTuple> = (0..4096).map(|i| tuple((i % n) as u32)).collect();
        // Warm.
        for p in &probes {
            std::hint::black_box(ft.lookup(p));
        }
        let h0 = ft.stats();
        let t0 = Instant::now();
        let rounds = 64;
        for _ in 0..rounds {
            for p in &probes {
                std::hint::black_box(ft.lookup(p));
            }
        }
        let elapsed = t0.elapsed().as_nanos() as f64;
        let h1 = ft.stats();
        let lookups = (rounds * probes.len()) as f64;
        let ns = elapsed / lookups;
        let hits = (h1.hits - h0.hits) as f64 / lookups;
        t.row(&[
            n.to_string(),
            format!("{ns:.1}"),
            format!("{:.0}", ns * hz / 1e9),
            format!("{:.3}", hits),
        ]);
    }
    t.print();

    // The 17-cycle hash claim: time the bare hash function.
    let probes: Vec<FlowTuple> = (0..4096).map(tuple).collect();
    let t0 = Instant::now();
    let mut acc = 0u32;
    let rounds = 256;
    for _ in 0..rounds {
        for p in &probes {
            acc = acc.wrapping_add(flow_hash(std::hint::black_box(p)));
        }
    }
    let ns = t0.elapsed().as_nanos() as f64 / (rounds * probes.len()) as f64;
    std::hint::black_box(acc);
    println!();
    println!(
        "bare five-tuple hash: {ns:.2} ns ≈ {:.1} host cycles (paper: 17 cycles on its P6/233)",
        ns * host_hz() / 1e9
    );
}
