//! E6 — weighted DRR link sharing (the paper's §6.1 demo).
//!
//! Eight backlogged flows on one simulated link: first with equal
//! weights (fair queueing — Jain index → 1.0, byte-fair even with mixed
//! packet sizes), then with reserved weights 1..4 (shares proportional
//! to weights).
//!
//! Run: `cargo run --release -p rp-bench --bin drr_sharing`

use rp_bench::report::Table;
use rp_sched::link::LinkSim;
use rp_sched::DrrScheduler;

const LINK_BPS: u64 = 100_000_000; // 100 Mb/s
const RUN_NS: u64 = 2_000_000_000; // 2 s

fn main() {
    println!(
        "E6: weighted DRR link sharing on a {} Mb/s link",
        LINK_BPS / 1_000_000
    );

    // Phase 1: equal weights, deliberately mixed packet sizes.
    let sizes = [1500u32, 300, 9180, 700, 1500, 64, 4000, 1200];
    let mut drr = DrrScheduler::new(9180, 64);
    for f in 0..8 {
        drr.set_weight(f, 1);
    }
    let mut sim = LinkSim::new(drr, LINK_BPS);
    let flows: Vec<(u32, u32)> = (0..8u32).map(|f| (f, sizes[f as usize])).collect();
    sim.run_backlogged(&flows, RUN_NS);
    println!();
    println!("phase 1: equal weights, mixed packet sizes");
    let mut t = Table::new(&["flow", "pkt size", "Mbytes", "share %"]);
    let total: u64 = (0..8).map(|f| sim.stats(f).bytes).sum();
    for f in 0..8u32 {
        let b = sim.stats(f).bytes;
        t.row(&[
            f.to_string(),
            sizes[f as usize].to_string(),
            format!("{:.2}", b as f64 / 1e6),
            format!("{:.1}", 100.0 * b as f64 / total as f64),
        ]);
    }
    t.print();
    let j = sim.jain_index(&(0..8).collect::<Vec<_>>(), None);
    println!("Jain fairness index: {j:.4} (1.0 = perfect byte fairness)");

    // Phase 2: weights 1,1,2,2,3,3,4,4 — reserved flows.
    let mut drr = DrrScheduler::new(9180, 64);
    let weights = [1u32, 1, 2, 2, 3, 3, 4, 4];
    for f in 0..8u32 {
        drr.set_weight(f, weights[f as usize]);
    }
    let mut sim = LinkSim::new(drr, LINK_BPS);
    let flows: Vec<(u32, u32)> = (0..8u32).map(|f| (f, 1500)).collect();
    sim.run_backlogged(&flows, RUN_NS);
    println!();
    println!("phase 2: weights 1,1,2,2,3,3,4,4 (bandwidth reservations)");
    let total: u64 = (0..8).map(|f| sim.stats(f).bytes).sum();
    let wsum: u32 = weights.iter().sum();
    let mut t = Table::new(&["flow", "weight", "share %", "expected %"]);
    for f in 0..8u32 {
        let b = sim.stats(f).bytes;
        t.row(&[
            f.to_string(),
            weights[f as usize].to_string(),
            format!("{:.1}", 100.0 * b as f64 / total as f64),
            format!("{:.1}", 100.0 * weights[f as usize] as f64 / wsum as f64),
        ]);
    }
    t.print();
    let shares: Vec<f64> = weights.iter().map(|w| *w as f64).collect();
    let jw = sim.jain_index(&(0..8).collect::<Vec<_>>(), Some(&shares));
    println!("weighted Jain index: {jw:.4} (1.0 = shares exactly ∝ weights)");
}
