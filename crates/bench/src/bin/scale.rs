//! E18 — Internet-scale state: million-flow tables over a ~900K-prefix FIB.
//!
//! The paper's testbed measured three flows against a toy routing table;
//! a default-free-zone deployment holds ~900K prefixes and millions of
//! concurrent flows. This bench drives the full data path (wildcard
//! classification at one gate, hot-prefix-cached FIB routing) across a
//! sweep of live-flow populations and gates the properties that make
//! that scale workable:
//!
//! * **Throughput flatness** — per-packet cost at the largest population
//!   stays within 20% of the 64-flow row (the incremental-resize and
//!   cache-layout work is what buys this).
//! * **Bounded memory** — the flow table's resident bytes stay under a
//!   fixed per-flow budget plus slack; growth is linear, not quadratic.
//! * **Exact conservation** — `received == forwarded + Σdrops` on every
//!   row; nothing is lost across resizes, evictions, or cache fills.
//! * **The machinery actually engaged** — rows larger than the initial
//!   bucket array must show `flow_resize_steps > 0`, and the FIB cache
//!   must be absorbing at least half the route lookups.
//!
//! Traffic is heavy-tailed (elephants and mice): 90% of probe packets
//! go to a fixed 64-flow elephant set; the rest belong to flows drawn
//! uniformly over the whole live population, arriving in short packet
//! trains (the paper's flow-cache premise) — the regime flow and FIB
//! caches target. All generators are seeded; the run is deterministic.
//!
//! Output: a text table and `BENCH_scale.json`; any gate failure exits
//! non-zero.
//!
//! Run: `cargo run --release -p rp-bench --bin scale [-- --flows N --prefixes P]`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use router_core::plugins::register_builtin_factories;
use router_core::pmgr::run_script;
use router_core::{Router, RouterConfig};
use rp_bench::report::{write_bench_json, Json, Table};
use rp_classifier::FlowTableConfig;
use rp_netsim::traffic::synthetic_fib_v4;
use rp_packet::builder::PacketSpec;
use rp_packet::Mbuf;
use std::net::{IpAddr, Ipv4Addr};
use std::time::Instant;

const INTERFACES: u32 = 4;
const HOT_DSTS: usize = 512;
const PROBES: usize = 1 << 19;
const INITIAL_BUCKETS: usize = 1024;
/// Elephants-and-mice traffic model: this many heavy flows carry
/// `1 - MICE_SHARE` of the probe packets; the rest belong to flows drawn
/// uniformly over the whole live population.
const ELEPHANTS: usize = 64;
const MICE_SHARE: f64 = 0.10;
/// Mouse packets arrive in short trains (the paper's flow-cache premise,
/// §3.2: "packet trains"): the train's first packet takes the cold-record
/// miss, the rest ride the warmed cache lines.
const TRAIN: usize = 8;
/// Timed passes per row; the best is reported.
const REPS: usize = 5;
/// Resident flow-table budget: per-flow bytes plus fixed slack for the
/// bucket arrays and free list.
const MEM_PER_FLOW: usize = 1024;
const MEM_SLACK: usize = 64 << 20;
/// Largest row's pps must be ≥ this fraction of the 64-flow row's.
const PPS_GATE: f64 = 0.80;
/// FIB-cache hit-rate floor over a row's measure pass.
const FIB_HIT_GATE: f64 = 0.50;

fn arg(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One packet template per hot destination; flows patch src/sport in.
fn templates(hot: &[Ipv4Addr]) -> Vec<Vec<u8>> {
    hot.iter()
        .map(|d| {
            PacketSpec::udp(
                IpAddr::V4(Ipv4Addr::new(11, 0, 0, 1)),
                IpAddr::V4(*d),
                1024,
                80,
                64,
            )
            .build()
        })
        .collect()
}

/// The packet of flow `i`: template for its destination with the flow's
/// source address and port patched in (checksum verification is off, so
/// no refill is needed — the paper's kernel trusts its NICs too).
fn flow_packet(tpls: &[Vec<u8>], i: usize) -> Mbuf {
    let mut buf = tpls[i % tpls.len()].clone();
    let src = 0x0B00_0000u32 | (i as u32 & 0x00FF_FFFF);
    buf[12..16].copy_from_slice(&src.to_be_bytes());
    let sport = 1024 + (i % 50_000) as u16;
    buf[20..22].copy_from_slice(&sport.to_be_bytes());
    Mbuf::new(buf, 0)
}

fn drain(r: &mut Router) -> u64 {
    let mut n = 0u64;
    for i in 0..r.interface_count() {
        n += r.take_tx(i as u32).len() as u64;
    }
    n
}

fn build_router(flows: usize) -> Router {
    let mut r = Router::new(RouterConfig {
        verify_checksums: false,
        flow_table: FlowTableConfig {
            buckets: INITIAL_BUCKETS,
            max_buckets: 1 << 21,
            initial_records: 4096,
            max_records: flows + 1024,
            gates: 6,
            max_idle_ns: 0,
            lru_evict: true,
        },
        ..RouterConfig::default()
    });
    register_builtin_factories(&mut r.loader);
    run_script(
        &mut r,
        "load null\ncreate null\nbind stats null 0 <*, *, *, *, *, *>\n",
    )
    .expect("configure router");
    r
}

struct Row {
    flows: usize,
    pps: f64,
    ns_per_pkt: f64,
    live: usize,
    mem_bytes: usize,
    resize_steps: u64,
    evicted_lru: u64,
    fib_hit_rate: f64,
    conserved: bool,
    resize_ok: bool,
    mem_ok: bool,
    wall_ns: u64,
}

/// A warmed router plus its probe schedule, ready for timed passes.
struct RowState {
    flows: usize,
    r: Router,
    idx: Vec<usize>,
    wall_ns: u64,
}

fn prepare_row(flows: usize, fib: &[(IpAddr, u8, u32)], tpls: &[Vec<u8>]) -> RowState {
    let mut r = build_router(flows);
    for (a, l, tx_if) in fib {
        r.add_route(*a, *l, *tx_if);
    }
    r.optimize_routes();

    // Warm: one packet per flow — every flow ends up live in the table,
    // driving the incremental resize through its full doubling ladder.
    for i in 0..flows {
        r.receive(flow_packet(tpls, i));
        if i % 65_536 == 65_535 {
            drain(&mut r);
        }
    }
    drain(&mut r);

    // Probe schedule: elephants-and-mice — most packets belong to a small
    // fixed set of heavy flows; mouse flows sample the whole population
    // and send TRAIN-packet bursts. The train-draw probability is set so
    // mice carry MICE_SHARE of the *packets*.
    let mut rng = StdRng::seed_from_u64(0x5CA1E + flows as u64);
    let hot_n = flows.min(ELEPHANTS);
    let t = TRAIN as f64;
    let p_train = MICE_SHARE / (t - (t - 1.0) * MICE_SHARE);
    let mut idx = Vec::with_capacity(PROBES);
    while idx.len() < PROBES {
        if rng.gen::<f64>() < p_train {
            let f = rng.gen_range(0..flows);
            for _ in 0..TRAIN.min(PROBES - idx.len()) {
                idx.push(f);
            }
        } else {
            idx.push(rng.gen_range(0..hot_n));
        }
    }
    RowState {
        flows,
        r,
        idx,
        wall_ns: u64::MAX,
    }
}

fn timed_pass(st: &mut RowState, tpls: &[Vec<u8>]) {
    let t0 = Instant::now();
    for (n, &i) in st.idx.iter().enumerate() {
        st.r.receive(flow_packet(tpls, i));
        if n % 65_536 == 65_535 {
            drain(&mut st.r);
        }
    }
    st.wall_ns = st.wall_ns.min(t0.elapsed().as_nanos() as u64);
    drain(&mut st.r);
}

fn finish_row(st: &RowState) -> Row {
    let flows = st.flows;
    let s = st.r.stats();
    let f = st.r.flow_stats();
    let c = st.r.fib_cache_stats();
    let fib_hit_rate = if c.hits + c.misses > 0 {
        c.hits as f64 / (c.hits + c.misses) as f64
    } else {
        0.0
    };
    let offered = (flows + REPS * PROBES) as u64;
    let mem_bytes = st.r.flow_mem_bytes();
    Row {
        flows,
        pps: PROBES as f64 / (st.wall_ns as f64 / 1e9),
        ns_per_pkt: st.wall_ns as f64 / PROBES as f64,
        live: f.live,
        mem_bytes,
        resize_steps: f.resize_steps,
        evicted_lru: f.evicted_lru,
        fib_hit_rate,
        conserved: s.received == offered && s.received == s.forwarded + s.dropped_total(),
        resize_ok: flows <= INITIAL_BUCKETS || f.resize_steps > 0,
        mem_ok: mem_bytes <= flows * MEM_PER_FLOW + MEM_SLACK,
        wall_ns: st.wall_ns,
    }
}

fn main() {
    let flows = arg("--flows", 1_000_000).max(64);
    let prefixes = arg("--prefixes", 900_000);

    eprintln!("[scale] generating {prefixes}-prefix FIB…");
    let fib = synthetic_fib_v4(prefixes, INTERFACES, 0xF1B);
    // Hot destinations drawn from installed prefixes (first host in every
    // k-th prefix), so each resolves through the FIB.
    let hot: Vec<Ipv4Addr> = fib
        .iter()
        .step_by((prefixes / HOT_DSTS).max(1))
        .take(HOT_DSTS)
        .map(|(a, l, _)| {
            let IpAddr::V4(v4) = a else { unreachable!() };
            Ipv4Addr::from(u32::from(*v4) | (1u32 << (32 - *l) >> 1).max(1))
        })
        .collect();
    let tpls = templates(&hot);

    let mut counts: Vec<usize> = [64usize, 4096, 65_536, 1 << 20]
        .into_iter()
        .filter(|&c| c < flows)
        .collect();
    counts.push(flows);

    println!("E18: internet-scale state ({prefixes} prefixes, up to {flows} flows)");
    println!("(gates: pps within 20% of the 64-flow row; memory ≤ {MEM_PER_FLOW}B/flow + slack;");
    println!(" conservation exact; resize engaged; FIB-cache hit rate ≥ {FIB_HIT_GATE})");
    println!();

    let mut states = Vec::new();
    for &c in &counts {
        eprintln!("[scale] warming row: {c} flows…");
        states.push(prepare_row(c, &fib, &tpls));
    }
    // Timed passes round-robin across rows (best of REPS per row), so a
    // noisy scheduling window degrades every row alike instead of biasing
    // whichever row it landed on.
    for rep in 0..REPS {
        eprintln!("[scale] timed pass {}/{REPS}…", rep + 1);
        for st in &mut states {
            timed_pass(st, &tpls);
        }
    }
    let rows: Vec<Row> = states.iter().map(finish_row).collect();

    let base_pps = rows[0].pps;
    let mut t = Table::new(&[
        "flows",
        "ns/pkt",
        "Mpps",
        "live",
        "MB",
        "resize steps",
        "fib hit",
        "conserved",
        "gates",
    ]);
    let mut rows_json = Vec::new();
    let mut all_ok = true;
    for r in &rows {
        let pps_ok = r.flows == rows[0].flows || r.pps >= PPS_GATE * base_pps;
        let fib_ok = r.fib_hit_rate >= FIB_HIT_GATE;
        let ok = r.conserved && r.resize_ok && r.mem_ok && pps_ok && fib_ok;
        all_ok &= ok;
        t.row(&[
            r.flows.to_string(),
            format!("{:.0}", r.ns_per_pkt),
            format!("{:.2}", r.pps / 1e6),
            r.live.to_string(),
            format!("{:.1}", r.mem_bytes as f64 / 1e6),
            r.resize_steps.to_string(),
            format!("{:.3}", r.fib_hit_rate),
            if r.conserved {
                "yes".into()
            } else {
                "NO".into()
            },
            if ok { "pass".into() } else { "FAIL".into() },
        ]);
        rows_json.push(Json::obj(vec![
            ("flows", Json::from(r.flows)),
            ("pps", Json::from(r.pps)),
            ("ns_per_pkt", Json::from(r.ns_per_pkt)),
            ("live_flows", Json::from(r.live)),
            ("mem_bytes", Json::from(r.mem_bytes)),
            ("resize_steps", Json::from(r.resize_steps)),
            ("evicted_lru", Json::from(r.evicted_lru)),
            ("fib_hit_rate", Json::from(r.fib_hit_rate)),
            ("pps_vs_base", Json::from(r.pps / base_pps)),
            ("conserved", Json::from(r.conserved)),
            ("gates_ok", Json::from(ok)),
            ("wall_ns", Json::from(r.wall_ns)),
        ]));
    }
    t.print();
    println!();
    let last = rows.last().unwrap();
    println!(
        "largest row: {} live flows at {:.2} Mpps ({:.0}% of 64-flow baseline)",
        last.live,
        last.pps / 1e6,
        100.0 * last.pps / base_pps
    );
    println!("all scale gates: {}", if all_ok { "pass" } else { "FAIL" });

    let extra = vec![
        ("prefixes", Json::from(prefixes)),
        ("target_flows", Json::from(flows)),
        ("hot_dsts", Json::from(HOT_DSTS)),
        ("probes_per_row", Json::from(PROBES)),
        ("pps_gate", Json::from(PPS_GATE)),
        ("fib_hit_gate", Json::from(FIB_HIT_GATE)),
        ("mem_per_flow_budget", Json::from(MEM_PER_FLOW)),
        ("all_gates_pass", Json::from(all_ok)),
    ];
    match write_bench_json("scale", rows_json, extra) {
        Ok(p) => eprintln!("[scale] wrote {}", p.display()),
        Err(e) => eprintln!("[scale] could not write JSON: {e}"),
    }
    if !all_ok {
        std::process::exit(1);
    }
}
