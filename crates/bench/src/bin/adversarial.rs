//! E14 — adversarial traffic resilience: heavy-tailed load balancing,
//! flow-table thrash defense, and a compressed chaos soak.
//!
//! Scenarios (each a gated row):
//!
//! 1. **Elephants** — a staggered heavy-tailed workload (few elephants,
//!    many mice) through the single router, the hash-placed parallel
//!    plane, and the load-aware (steered) parallel plane. Gate: the
//!    steered plane's shard imbalance (max/mean packets) stays ≤ 1.5.
//! 2. **SYN flood** — a one-packet-flow flood against a tiny
//!    admission-controlled flow table while 32 established flows keep
//!    talking, on both planes. Gates: zero established-flow loss,
//!    admission denials observed, zero established records recycled.
//! 3. **Fragment flood** — interleaved fragments of many datagrams, on
//!    both planes. Gate: conservation with bounded table occupancy.
//! 4. **Chaos soak** — a compressed multi-phase soak on the steered
//!    parallel plane cycling all three workloads while a chaos plugin
//!    panics/drops/stalls, shards are killed and journal-rebuilt, and
//!    the simulated clock advances past the idle window. Gates:
//!    conservation, bounded flow-table occupancy at every phase
//!    boundary, and the faults actually fired (restarts observed).
//! 5. **Link soak** — the single-threaded plane in a two-node topology
//!    with link down/loss/corruption faults. Gate: end-to-end
//!    conservation including the link-fault counters.
//! 6. **Device chaos** — the full I/O plane (supervised devices under
//!    [`FaultyDev`] wrappers) soaked with flapping devices and a
//!    mid-run shard kill. Gates: exact *wire-level* conservation, at
//!    least one quarantine→reopen cycle, and the hard-error/backpressure
//!    ledger split visible.
//!
//! Rows that stamp ingress also carry the end-to-end p99 sojourn
//! (ingress stamp → shard dequeue), gated against a generous ceiling so
//! a scheduling regression that parks packets in queues fails loudly.
//!
//! Every row also checks the universal ledger
//! `received == forwarded + Σdrops`. Any gate failure exits non-zero.
//!
//! Output: a text table on stdout and `BENCH_adversarial.json`.
//!
//! Run: `cargo run --release -p rp-bench --bin adversarial`

use router_core::dataplane::SteerConfig;
use router_core::plugins::register_builtin_factories;
use router_core::pmgr::{run_command, run_script};
use router_core::supervisor::HealthState;
use router_core::{ControlPlane, ParallelRouter, ParallelRouterConfig, Router, RouterConfig};
use rp_bench::report::{write_bench_json, Json, Table};
use rp_classifier::FlowTableConfig;
use rp_netsim::topology::{Port, Topology};
use rp_netsim::traffic::{fragment_flood, v6_host, Workload};
use rp_packet::{FlowTuple, Mbuf};
use std::time::{Duration, Instant};

const SHARDS: usize = 4;
const FT_CAP: usize = 64;
const IDLE_NS: u64 = 5_000_000;
const BALANCE_GATE: f64 = 1.5;
/// End-to-end p99 sojourn ceiling (wall ns, ingress stamp → dequeue).
/// Generous — CI machines are noisy — but a plane that parks packets
/// for a quarter second under these loads is broken, not slow.
const SOJOURN_GATE_NS: u64 = 250_000_000;

/// Wildcard-classified, routed rig (classification on every packet).
const RIG_SCRIPT: &str = "load null\n\
     create null\n\
     bind stats null 0 <*, *, *, *, *, *>\n\
     route 2001:db8::/32 1\n\
     route 10.0.0.0/8 1\n";

/// Soak rig: adds a chaos instance on a narrow filter so fault modes can
/// be cycled at runtime without touching the bulk of the traffic.
const SOAK_SCRIPT: &str = "load null\n\
     create null\n\
     bind stats null 0 <*, *, *, *, *, *>\n\
     load chaos\n\
     create chaos mode=none\n\
     bind fw chaos 0 <*, *, UDP, *, 7777, *>\n\
     route 2001:db8::/32 1\n\
     route 10.0.0.0/8 1\n";

fn defended_flow_table() -> FlowTableConfig {
    FlowTableConfig {
        buckets: 256,
        initial_records: 32,
        max_records: FT_CAP,
        max_idle_ns: IDLE_NS,
        ..FlowTableConfig::default()
    }
}

fn defended_router_config() -> RouterConfig {
    RouterConfig {
        // Off so fragment floods exercise the fragment-keyed classifier
        // path instead of the checksum gate (a first fragment's UDP
        // checksum covers the original, unfragmented payload).
        verify_checksums: false,
        flow_table: defended_flow_table(),
        ..RouterConfig::default()
    }
}

fn single_router() -> Router {
    let mut r = Router::new(defended_router_config());
    register_builtin_factories(&mut r.loader);
    run_script(&mut r, RIG_SCRIPT).expect("configure single router");
    r
}

fn parallel_router(steer: Option<SteerConfig>, script: &str) -> ParallelRouter {
    let mut template = router_core::loader::PluginLoader::new();
    register_builtin_factories(&mut template);
    let mut pr = ParallelRouter::new(
        ParallelRouterConfig {
            shards: SHARDS,
            router: defended_router_config(),
            ingress_depth: 4096,
            steer,
            ..ParallelRouterConfig::default()
        },
        &template,
    );
    run_script(&mut pr, script).expect("configure parallel router");
    pr
}

/// Heavy-tailed workload with *staggered* flow arrivals and heavy-tailed
/// per-flow **rates**: flow `i` is born at round `2i` and then sends a
/// fixed burst every round for `dur` rounds — mice a packet or two per
/// round, elephants up to 32× that. The load picture builds up the way
/// live traffic does, so when a later flow is born the steerer can see
/// which shards currently host elephants.
fn staggered_heavy_tailed(flows: usize, dur: usize, payload: usize, seed: u64) -> Vec<Mbuf> {
    let wl = Workload::heavy_tailed(flows, dur, payload, seed);
    let templates: Vec<Mbuf> = wl
        .flows
        .iter()
        .map(|f| {
            Mbuf::new(
                rp_packet::builder::PacketSpec::udp(f.src, f.dst, f.sport, f.dport, f.payload_len)
                    .build(),
                f.rx_if,
            )
        })
        .collect();
    // Per-round burst: the heavy-tailed totals spread over `dur` rounds,
    // clamped so no single flow can exceed a shard's fair share on its
    // own (a flow cannot be split across shards by any placement).
    let bursts: Vec<usize> = wl
        .flows
        .iter()
        .map(|f| (f.count / dur).clamp(1, 32))
        .collect();
    let spread = 2usize;
    let mut out = Vec::new();
    for round in 0..(flows - 1) * spread + dur {
        for i in 0..flows {
            let start = i * spread;
            if round >= start && round < start + dur {
                for _ in 0..bursts[i] {
                    out.push(templates[i].clone());
                }
            }
        }
    }
    out
}

struct Row {
    scenario: String,
    plane: &'static str,
    offered: u64,
    wire: u64,
    dropped: u64,
    denied: u64,
    balance: Option<f64>,
    occupancy_max: u64,
    occupancy_cap: u64,
    conserved: bool,
    gates_ok: bool,
    /// End-to-end p99 sojourn (None when the scenario does not stamp).
    p99_sojourn_ns: Option<u64>,
    detail: String,
    wall_ns: u64,
}

impl Row {
    fn ok(&self) -> bool {
        self.conserved
            && self.gates_ok
            && self.occupancy_max <= self.occupancy_cap
            && self.p99_sojourn_ns.is_none_or(|p| p <= SOJOURN_GATE_NS)
    }
}

/// Clone a template with a fresh ingress wall-clock stamp, the way the
/// I/O plane stamps frames at `poll_rx`.
fn stamped(m: &Mbuf) -> Mbuf {
    let mut m = m.clone();
    m.timestamp_ns = rp_packet::coarse_now_ns();
    m
}

fn p99_of(m: &router_core::obs::MetricsSnapshot) -> Option<u64> {
    (m.sojourn_ns.count > 0).then(|| m.sojourn_ns.quantile(0.99))
}

fn drain_parallel(pr: &mut ParallelRouter) -> Vec<Mbuf> {
    pr.flush();
    let mut tx = Vec::new();
    for i in 0..pr.interface_count() {
        tx.extend(pr.take_tx(i as u32));
    }
    tx
}

fn drain_single(r: &mut Router) -> Vec<Mbuf> {
    let mut tx = Vec::new();
    for i in 0..r.interface_count() {
        tx.extend(r.take_tx(i as u32));
    }
    tx
}

fn balance_of(shard_packets: &[u64]) -> f64 {
    let total: u64 = shard_packets.iter().sum();
    if total == 0 || shard_packets.is_empty() {
        return 1.0;
    }
    let max = *shard_packets.iter().max().unwrap() as f64;
    max / (total as f64 / shard_packets.len() as f64)
}

// ---------------------------------------------------------------------
// Scenario 1: elephants
// ---------------------------------------------------------------------

fn elephants_single(pkts: &[Mbuf]) -> Row {
    let mut r = single_router();
    let t0 = Instant::now();
    for p in pkts {
        let m = stamped(p);
        let wall = m.timestamp_ns;
        r.receive_stamped(m, wall);
    }
    let wall_ns = t0.elapsed().as_nanos() as u64;
    let wire = drain_single(&mut r).len() as u64;
    let s = r.stats();
    let f = r.flow_stats();
    let p99_sojourn_ns = p99_of(&r.metrics_snapshot());
    Row {
        scenario: "elephants".into(),
        plane: "single",
        offered: pkts.len() as u64,
        wire,
        dropped: s.dropped_total(),
        denied: f.denied,
        balance: None,
        occupancy_max: f.live as u64,
        occupancy_cap: FT_CAP as u64,
        conserved: s.received == pkts.len() as u64 && s.received == s.forwarded + s.dropped_total(),
        gates_ok: true,
        p99_sojourn_ns,
        detail: String::new(),
        wall_ns,
    }
}

fn elephants_parallel(pkts: &[Mbuf], steer: Option<SteerConfig>) -> Row {
    let steered = steer.is_some();
    let mut pr = parallel_router(steer, RIG_SCRIPT);
    let before = pr.shard_reports();
    let t0 = Instant::now();
    for (n, p) in pkts.iter().enumerate() {
        pr.receive(stamped(p));
        if n % 1024 == 1023 {
            pr.flush(); // pace: elephants must not overflow a FIFO
        }
    }
    let wall_ns = t0.elapsed().as_nanos() as u64;
    let wire = drain_parallel(&mut pr).len() as u64;
    let after = pr.shard_reports();
    let shard_packets: Vec<u64> = before
        .iter()
        .zip(&after)
        .map(|(b, a)| a.packets.saturating_sub(b.packets))
        .collect();
    let balance = balance_of(&shard_packets);
    let s = pr.stats();
    let f = pr.flow_stats();
    let p99_sojourn_ns = p99_of(&pr.metrics_snapshot());
    let gates_ok = !steered || balance <= BALANCE_GATE;
    let steer_note = pr
        .steer_stats()
        .map(|st| {
            format!(
                ", steered={} untracked={} elephants={}",
                st.steered, st.untracked, st.elephants
            )
        })
        .unwrap_or_default();
    Row {
        scenario: "elephants".into(),
        plane: if steered {
            "parallel steered"
        } else {
            "parallel hash"
        },
        offered: pkts.len() as u64,
        wire,
        dropped: s.dropped_total(),
        denied: f.denied,
        balance: Some(balance),
        occupancy_max: f.live as u64,
        occupancy_cap: (SHARDS * FT_CAP) as u64,
        conserved: s.received == pkts.len() as u64 && s.received == s.forwarded + s.dropped_total(),
        gates_ok,
        p99_sojourn_ns,
        detail: format!("shard packets {shard_packets:?}{steer_note}"),
        wall_ns,
    }
}

// ---------------------------------------------------------------------
// Scenario 2: SYN flood (one-packet flows vs established flows)
// ---------------------------------------------------------------------

fn established_packet(i: u16) -> Mbuf {
    Mbuf::new(
        rp_packet::builder::PacketSpec::udp(v6_host(10 + i), v6_host(200), 4000 + i, 80, 256)
            .build(),
        0,
    )
}

fn count_established(tx: &[Mbuf]) -> u64 {
    tx.iter()
        .filter(|m| {
            FlowTuple::from_mbuf(m)
                .map(|t| {
                    // Flood sports can collide with the established range;
                    // the destination host disambiguates.
                    t.dst == v6_host(200) && t.dport == 80 && (4000..4032).contains(&t.sport)
                })
                .unwrap_or(false)
        })
        .count() as u64
}

/// Drive the flood against either plane through one closure interface.
#[allow(clippy::too_many_arguments)]
fn syn_flood<R>(
    plane: &'static str,
    cap: u64,
    mut receive: impl FnMut(&mut R, Mbuf),
    mut set_time: impl FnMut(&mut R, u64),
    rig: &mut R,
    drain: impl FnOnce(&mut R) -> Vec<Mbuf>,
    stats: impl FnOnce(
        &mut R,
    ) -> (
        router_core::ip_core::DataPathStats,
        rp_classifier::flow_table::FlowTableStats,
    ),
    p99: impl FnOnce(&mut R) -> Option<u64>,
) -> Row {
    let mut sent_established = 0u64;
    set_time(rig, 0);
    for i in 0..32u16 {
        receive(rig, stamped(&established_packet(i)));
        sent_established += 1;
    }
    let flood = Workload::one_packet_flood(4000, 64, 0xF100D).build();
    let offered = 32 + flood.len() as u64 + (flood.len() as u64 / 200) * 32 + 32;
    let mut now = 1_000_000u64;
    let t0 = Instant::now();
    for (n, pkt) in flood.into_iter().enumerate() {
        now += 10_000;
        receive(rig, stamped(&pkt));
        if n % 200 == 199 {
            set_time(rig, now);
            for i in 0..32u16 {
                receive(rig, stamped(&established_packet(i)));
                sent_established += 1;
            }
        }
    }
    set_time(rig, now);
    for i in 0..32u16 {
        receive(rig, stamped(&established_packet(i)));
        sent_established += 1;
    }
    let wall_ns = t0.elapsed().as_nanos() as u64;
    let tx = drain(rig);
    let delivered_established = count_established(&tx);
    let (s, f) = stats(rig);
    let p99_sojourn_ns = p99(rig);
    let zero_loss = delivered_established == sent_established;
    let gates_ok = zero_loss && f.denied > 0 && f.recycled == 0;
    Row {
        scenario: "syn flood".into(),
        plane,
        offered,
        wire: tx.len() as u64,
        dropped: s.dropped_total(),
        denied: f.denied,
        balance: None,
        occupancy_max: f.live as u64,
        occupancy_cap: cap,
        conserved: s.received == offered && s.received == s.forwarded + s.dropped_total(),
        gates_ok,
        p99_sojourn_ns,
        detail: format!(
            "established {delivered_established}/{sent_established}, inline_expired={}",
            f.inline_expired
        ),
        wall_ns,
    }
}

// ---------------------------------------------------------------------
// Scenario 3: fragment flood
// ---------------------------------------------------------------------

fn frag_flood_single(pkts: &[Mbuf]) -> Row {
    let mut r = single_router();
    let t0 = Instant::now();
    for p in pkts {
        r.receive(p.clone());
    }
    let wall_ns = t0.elapsed().as_nanos() as u64;
    let wire = drain_single(&mut r).len() as u64;
    let s = r.stats();
    let f = r.flow_stats();
    Row {
        scenario: "frag flood".into(),
        plane: "single",
        offered: pkts.len() as u64,
        wire,
        dropped: s.dropped_total(),
        denied: f.denied,
        balance: None,
        occupancy_max: f.live as u64,
        occupancy_cap: FT_CAP as u64,
        conserved: s.received == pkts.len() as u64 && s.received == s.forwarded + s.dropped_total(),
        gates_ok: true,
        p99_sojourn_ns: None,
        detail: String::new(),
        wall_ns,
    }
}

fn frag_flood_parallel(pkts: &[Mbuf]) -> Row {
    let mut pr = parallel_router(Some(SteerConfig::default()), RIG_SCRIPT);
    let t0 = Instant::now();
    for (n, p) in pkts.iter().enumerate() {
        pr.receive(p.clone());
        if n % 1024 == 1023 {
            pr.flush();
        }
    }
    let wall_ns = t0.elapsed().as_nanos() as u64;
    let wire = drain_parallel(&mut pr).len() as u64;
    let s = pr.stats();
    let f = pr.flow_stats();
    Row {
        scenario: "frag flood".into(),
        plane: "parallel steered",
        offered: pkts.len() as u64,
        wire,
        dropped: s.dropped_total(),
        denied: f.denied,
        balance: None,
        occupancy_max: f.live as u64,
        occupancy_cap: (SHARDS * FT_CAP) as u64,
        conserved: s.received == pkts.len() as u64 && s.received == s.forwarded + s.dropped_total(),
        gates_ok: true,
        p99_sojourn_ns: None,
        detail: String::new(),
        wall_ns,
    }
}

// ---------------------------------------------------------------------
// Scenario 4: chaos soak (parallel plane)
// ---------------------------------------------------------------------

fn wait_for_restart(pr: &mut ParallelRouter, restarts_before: u32) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let status = pr.cp_shard_status();
        let restarted = status.iter().map(|s| s.restarts).sum::<u32>() > restarts_before;
        let all_serving = status.iter().all(|s| s.health != HealthState::Quarantined);
        if (restarted && all_serving) || Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn chaos_soak() -> Row {
    let mut pr = parallel_router(Some(SteerConfig::default()), SOAK_SCRIPT);
    let chaos_modes = ["panic-once", "drop every=7", "stall cost=20000", "none"];
    let mut offered = 0u64;
    let mut occupancy_max = 0u64;
    let mut now = 0u64;
    let mut wire = 0u64;
    let t0 = Instant::now();

    let heavy = staggered_heavy_tailed(64, 8, 256, 0x50AC);
    let flood = Workload::one_packet_flood(1500, 64, 0x50AD).build();
    let frags = fragment_flood(150, 3000, 600, 0x50AE);

    // Probe flow matched by the chaos filter (dport 7777): keeps the
    // fault plugin in the traffic path so its mode actually bites.
    let probe = Mbuf::new(
        rp_packet::builder::PacketSpec::udp(v6_host(50), v6_host(300), 7000, 7777, 64).build(),
        0,
    );
    for cycle in 0..3u32 {
        for (phase, pkts) in [&heavy, &flood, &frags].into_iter().enumerate() {
            // Cycle the chaos instance's fault mode (plugin faults) and
            // kill one shard mid-phase (shard faults + journal rebuild).
            let mode = chaos_modes[(cycle as usize + phase) % chaos_modes.len()];
            let _ = run_command(&mut pr, &format!("msg chaos 0 set mode={mode}"));
            let restarts_before: u32 = pr.cp_shard_status().iter().map(|s| s.restarts).sum();
            let victim = (cycle as usize + phase) % SHARDS;

            for (n, p) in pkts.iter().enumerate() {
                if n == pkts.len() / 2 {
                    let _ = pr.cp_shard_kill(victim);
                }
                pr.receive(stamped(p));
                offered += 1;
                if n % 100 == 99 {
                    pr.receive(stamped(&probe));
                    offered += 1;
                }
                if n % 512 == 511 {
                    pr.flush();
                }
            }
            wait_for_restart(&mut pr, restarts_before);
            // Sample peak occupancy before the idle sweep: the gate is
            // that the table stays bounded *while under attack*.
            pr.flush();
            let f = pr.flow_stats();
            occupancy_max = occupancy_max.max(f.live as u64);
            // Advance the simulated clock past the idle window between
            // phases so admission reclaim and idle expiry both engage.
            now += IDLE_NS + 1;
            pr.set_time_ns(now);
            pr.expire_idle_flows(IDLE_NS);
            wire += drain_parallel(&mut pr).len() as u64;
        }
    }
    let wall_ns = t0.elapsed().as_nanos() as u64;
    let s = pr.stats();
    let f = pr.flow_stats();
    let p99_sojourn_ns = p99_of(&pr.metrics_snapshot());
    let restarts: u32 = pr.cp_shard_status().iter().map(|s| s.restarts).sum();
    // The soak must have genuinely hurt: shards restarted, admission
    // engaged, and the injected plugin/shard faults produced counted
    // (never silent) drops.
    let gates_ok = restarts > 0 && f.denied > 0 && s.dropped_total() > 0;
    Row {
        scenario: "chaos soak".into(),
        plane: "parallel steered",
        offered,
        wire,
        dropped: s.dropped_total(),
        denied: f.denied,
        balance: None,
        occupancy_max,
        occupancy_cap: (SHARDS * FT_CAP) as u64,
        conserved: s.received == offered && s.received == s.forwarded + s.dropped_total(),
        gates_ok,
        p99_sojourn_ns,
        detail: format!("restarts={restarts}, inline_expired={}", f.inline_expired),
        wall_ns,
    }
}

// ---------------------------------------------------------------------
// Scenario 5: link soak (single plane, two-node topology)
// ---------------------------------------------------------------------

fn link_soak() -> Row {
    let mut topo = Topology::new();
    let mk = || {
        let mut r = Router::new(defended_router_config());
        register_builtin_factories(&mut r.loader);
        run_script(
            &mut r,
            "load null\ncreate null\nbind stats null 0 <*, *, *, *, *, *>\n",
        )
        .expect("configure node");
        r
    };
    let a = topo.add_node(mk());
    let b = topo.add_node(mk());
    let a_up = Port { node: a, iface: 1 };
    let b_in = Port { node: b, iface: 0 };
    topo.connect(a_up, b_in);
    topo.attach_network(b_in.node_port(1), v6_host(0), 32);
    topo.install_routes();

    let mut offered = 0u64;
    let t0 = Instant::now();
    let phases: [(&str, u64, u64, bool); 4] = [
        ("clean", 0, 0, false),
        ("loss", 7, 0, false),
        ("corrupt", 0, 11, false),
        ("down+up", 0, 0, true),
    ];
    for (pi, (_, loss, corrupt, down_mid)) in phases.iter().enumerate() {
        topo.set_link_loss(a_up, *loss);
        topo.set_link_corruption(a_up, *corrupt);
        let heavy = staggered_heavy_tailed(32, 6, 256, 0x11A0 + pi as u64);
        for (n, p) in heavy.iter().enumerate() {
            if *down_mid && n == heavy.len() / 3 {
                topo.set_link_down(a_up, true);
            }
            if *down_mid && n == 2 * heavy.len() / 3 {
                topo.set_link_down(a_up, false);
            }
            let _ = topo.inject(Port { node: a, iface: 0 }, p.data().to_vec());
            offered += 1;
            topo.run_until_idle(16);
        }
        topo.set_link_down(a_up, false);
    }
    topo.run_until_idle(64);
    let wall_ns = t0.elapsed().as_nanos() as u64;
    let delivered = topo.take_delivered(b).len() as u64;
    let sa = topo.node_mut(a).stats();
    let fa = topo.node_mut(a).flow_stats();
    let sb = topo.node_mut(b).stats();
    // End-to-end ledger: everything injected is delivered, dropped at a
    // node (counted), or eaten by an injected link fault (counted).
    let conserved = offered
        == delivered + sa.dropped_total() + sb.dropped_total() + topo.lost_to_faults
        && sa.received == sa.forwarded + sa.dropped_total()
        && sb.received == sb.forwarded + sb.dropped_total();
    Row {
        scenario: "link soak".into(),
        plane: "single topo",
        offered,
        wire: delivered,
        dropped: sa.dropped_total() + sb.dropped_total() + topo.lost_to_faults,
        denied: fa.denied,
        balance: None,
        occupancy_max: fa.live as u64,
        occupancy_cap: FT_CAP as u64,
        conserved,
        gates_ok: topo.lost_to_faults > 0 && topo.corrupted_by_faults > 0,
        p99_sojourn_ns: None,
        detail: format!(
            "link lost={}, corrupted={}",
            topo.lost_to_faults, topo.corrupted_by_faults
        ),
        wall_ns,
    }
}

// ---------------------------------------------------------------------
// Scenario 6: device chaos (supervised I/O plane, FaultyDev wrappers)
// ---------------------------------------------------------------------

fn device_chaos() -> Row {
    use router_core::dataplane::control::DeviceHealth;
    use rp_netdev::loopback::LoopbackDev;
    use rp_netdev::{DeviceSupervisorConfig, FaultProgram, FaultyDev, IoPlane};

    const PACKETS: usize = 8_000;
    const CHUNK: usize = 200;

    let (ingress, _peer_in) = LoopbackDev::pair("lo-in", "peer-in", 1 << 15);
    let (egress, _peer_out) = LoopbackDev::pair("lo-out", "peer-out", 1 << 15);
    let in_handle = ingress.handle();
    let out_handle = egress.handle();
    let (f_in, ctl_in) = FaultyDev::wrap(Box::new(ingress));
    let (f_out, ctl_out) = FaultyDev::wrap(Box::new(egress));

    let mut plane = IoPlane::new(
        parallel_router(Some(SteerConfig::default()), RIG_SCRIPT),
        CHUNK,
    );
    plane.bind(0, Box::new(f_in));
    plane.bind(1, Box::new(f_out));
    plane.supervise(DeviceSupervisorConfig {
        error_threshold: 8,
        error_window_polls: 16,
        rx_stall_polls: u32::MAX,
        quarantine_after: 4,
        recover_after: 2,
        backoff_initial: Duration::from_millis(1),
        backoff_max: Duration::from_millis(8),
    });

    let wl = Workload::uniform(32, PACKETS / 32, 256);
    let pkts = wl.build();
    let offered = pkts.len() as u64;
    let n_chunks = pkts.len().div_ceil(CHUNK);
    let t0 = Instant::now();
    for (ci, chunk) in pkts.chunks(CHUNK).enumerate() {
        if ci == n_chunks / 8 {
            ctl_in.update(|p| p.drop_rx_every = 5);
        }
        if ci == n_chunks / 4 {
            ctl_in.set(FaultProgram::default());
        }
        if ci == n_chunks / 3 {
            ctl_out.update(|p| {
                p.fail_tx = true;
                p.heal_on_reopen = true;
            });
        }
        if ci == n_chunks / 2 {
            let _ = plane.plane_mut().cp_shard_kill(ci % SHARDS);
        }
        for pkt in chunk {
            let _ = in_handle.inject(pkt.data());
        }
        plane.poll();
        plane.poll();
        while out_handle.drain_tx().is_some() {}
        if plane
            .device_rows()
            .iter()
            .any(|r| r.health == DeviceHealth::Quarantined)
        {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    // Heal everything and settle.
    ctl_in.set(FaultProgram::default());
    ctl_out.set(FaultProgram::default());
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        plane.poll_until_quiet(4, 200);
        while out_handle.drain_tx().is_some() {}
        let rows = plane.device_rows();
        if rows.iter().all(|r| r.health != DeviceHealth::Quarantined) || Instant::now() >= deadline
        {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    plane.poll_until_quiet(4, 1000);
    let wall_ns = t0.elapsed().as_nanos() as u64;

    let rows = plane.device_rows();
    let quarantines: u64 = rows.iter().map(|r| r.quarantines).sum();
    let reopens: u64 = rows.iter().map(|r| r.reopens).sum();
    let led = plane.ledger();
    let conserved =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| plane.check_conservation()))
            .is_ok();
    let s = plane.plane().stats_read();
    let f = plane.plane_mut().flow_stats();
    let p99_sojourn_ns = p99_of(&plane.plane_mut().metrics_snapshot());
    let gates_ok = quarantines >= 1 && reopens >= 1 && led.tx_errors + led.tx_dropped > 0;
    Row {
        scenario: "device chaos".into(),
        plane: "ioplane steered",
        offered,
        wire: led.device_tx,
        dropped: s.dropped_total(),
        denied: f.denied,
        balance: None,
        occupancy_max: f.live as u64,
        occupancy_cap: (SHARDS * FT_CAP) as u64,
        conserved,
        gates_ok,
        p99_sojourn_ns,
        detail: format!(
            "quarantines={} reopens={} ledger: rx={} tx={} tx_errors={} tx_dropped={}",
            quarantines, reopens, led.device_rx, led.device_tx, led.tx_errors, led.tx_dropped
        ),
        wall_ns,
    }
}

trait PortExt {
    fn node_port(&self, iface: u32) -> Port;
}
impl PortExt for Port {
    fn node_port(&self, iface: u32) -> Port {
        Port {
            node: self.node,
            iface,
        }
    }
}

// ---------------------------------------------------------------------

fn main() {
    let mut rows = Vec::new();

    eprintln!("[adversarial] elephants…");
    let heavy = staggered_heavy_tailed(96, 16, 512, 0xE1E);
    rows.push(elephants_single(&heavy));
    rows.push(elephants_parallel(&heavy, None));
    rows.push(elephants_parallel(&heavy, Some(SteerConfig::default())));

    eprintln!("[adversarial] syn flood…");
    {
        let mut r = single_router();
        rows.push(syn_flood(
            "single",
            FT_CAP as u64,
            |r: &mut Router, m| {
                let wall = m.timestamp_ns;
                r.receive_stamped(m, wall);
            },
            |r, t| r.set_time_ns(t),
            &mut r,
            drain_single,
            |r| (r.stats(), r.flow_stats()),
            |r| p99_of(&r.metrics_snapshot()),
        ));
    }
    {
        let mut pr = parallel_router(None, RIG_SCRIPT);
        rows.push(syn_flood(
            "parallel",
            (SHARDS * FT_CAP) as u64,
            |pr: &mut ParallelRouter, m| {
                pr.receive(m);
            },
            |pr, t| pr.set_time_ns(t),
            &mut pr,
            drain_parallel,
            |pr| (pr.stats(), pr.flow_stats()),
            |pr| p99_of(&pr.metrics_snapshot()),
        ));
    }

    eprintln!("[adversarial] fragment flood…");
    let frags = fragment_flood(400, 4000, 600, 0xF7A6);
    rows.push(frag_flood_single(&frags));
    rows.push(frag_flood_parallel(&frags));

    eprintln!("[adversarial] chaos soak…");
    rows.push(chaos_soak());

    eprintln!("[adversarial] link soak…");
    rows.push(link_soak());

    eprintln!("[adversarial] device chaos…");
    rows.push(device_chaos());

    println!();
    println!("Adversarial traffic resilience ({SHARDS} shards, flow-table cap {FT_CAP}/shard, idle window {}ms)", IDLE_NS / 1_000_000);
    println!("(every row: received == forwarded + Σdrops; steered elephants: max/mean ≤ {BALANCE_GATE}; flood: zero established loss)");
    println!();
    let mut t = Table::new(&[
        "Scenario",
        "plane",
        "offered",
        "wire",
        "dropped",
        "denied",
        "balance",
        "occupancy",
        "p99 sojourn",
        "conserved",
        "gates",
    ]);
    let mut rows_json = Vec::new();
    let mut all_ok = true;
    for r in &rows {
        let ok = r.ok();
        all_ok &= ok;
        t.row(&[
            r.scenario.clone(),
            r.plane.to_string(),
            r.offered.to_string(),
            r.wire.to_string(),
            r.dropped.to_string(),
            r.denied.to_string(),
            r.balance.map_or("-".into(), |b| format!("{b:.2}")),
            format!("{}/{}", r.occupancy_max, r.occupancy_cap),
            r.p99_sojourn_ns
                .map_or("-".into(), |p| format!("{:.1}ms", p as f64 / 1e6)),
            if r.conserved {
                "yes".into()
            } else {
                "NO".into()
            },
            if ok { "pass".into() } else { "FAIL".into() },
        ]);
        if !r.detail.is_empty() {
            eprintln!("[adversarial] {} ({}): {}", r.scenario, r.plane, r.detail);
        }
        rows_json.push(Json::obj(vec![
            ("scenario", Json::from(r.scenario.clone())),
            ("plane", Json::from(r.plane.to_string())),
            ("offered", Json::from(r.offered)),
            ("wire", Json::from(r.wire)),
            ("dropped", Json::from(r.dropped)),
            ("denied", Json::from(r.denied)),
            ("balance_ratio", r.balance.map_or(Json::Null, Json::from)),
            ("occupancy_max", Json::from(r.occupancy_max)),
            ("occupancy_cap", Json::from(r.occupancy_cap)),
            (
                "p99_sojourn_ns",
                r.p99_sojourn_ns.map_or(Json::Null, Json::from),
            ),
            ("conserved", Json::from(r.conserved)),
            ("gates_ok", Json::from(ok)),
            ("detail", Json::from(r.detail.clone())),
            ("wall_ns", Json::from(r.wall_ns)),
        ]));
    }
    t.print();
    println!();
    println!(
        "all adversarial gates: {}",
        if all_ok { "pass" } else { "FAIL" }
    );

    let extra = vec![
        ("shards", Json::from(SHARDS)),
        ("flow_table_cap", Json::from(FT_CAP)),
        ("idle_window_ns", Json::from(IDLE_NS)),
        ("balance_gate", Json::from(BALANCE_GATE)),
        ("sojourn_gate_ns", Json::from(SOJOURN_GATE_NS)),
        ("all_gates_pass", Json::from(all_ok)),
    ];
    match write_bench_json("adversarial", rows_json, extra) {
        Ok(p) => eprintln!("[adversarial] wrote {}", p.display()),
        Err(e) => eprintln!("[adversarial] could not write JSON: {e}"),
    }
    if !all_ok {
        std::process::exit(1);
    }
}
