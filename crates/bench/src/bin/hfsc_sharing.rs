//! E7 — H-FSC hierarchical link sharing and delay/bandwidth decoupling,
//! the properties the paper reproduces from Stoica/Zhang/Ng by porting
//! the CMU scheduler ("our results are consistent with that paper").
//!
//! Experiment 1: a two-level hierarchy (A 70% {A1 50/A2 50}, B 30%) with
//! everything backlogged → leaf shares 35/35/30; with A2 idle → A1 takes
//! all of A's 70% (hierarchical, not global, redistribution).
//!
//! Experiment 2: a voice-like flow with a concave service curve sees far
//! lower worst-case delay than with a linear curve of the same long-term
//! rate — the decoupling of delay and bandwidth allocation.
//!
//! Run: `cargo run --release -p rp-bench --bin hfsc_sharing`

use rp_bench::report::Table;
use rp_sched::link::LinkSim;
use rp_sched::{HfscScheduler, ServiceCurve};

const MBPS: u64 = 1_000_000;
const LINK: u64 = 10 * MBPS;

fn hierarchy() -> (HfscScheduler, [u32; 3]) {
    let mut h = HfscScheduler::new(LINK, 128);
    let root = h.root();
    let a = h.add_class(root, 7 * MBPS, None);
    let b = h.add_class(root, 3 * MBPS, None);
    let a1 = h.add_class(a, 35 * MBPS / 10, None);
    let a2 = h.add_class(a, 35 * MBPS / 10, None);
    h.bind_flow(1, a1);
    h.bind_flow(2, a2);
    h.bind_flow(3, b);
    (h, [1, 2, 3])
}

fn main() {
    println!("E7: H-FSC hierarchical link sharing (10 Mb/s link; A=70% {{A1,A2}}, B=30%)");
    println!();

    // All backlogged.
    let (h, flows) = hierarchy();
    let mut sim = LinkSim::new(h, LINK);
    sim.run_backlogged(&[(1, 1000), (2, 1000), (3, 1000)], 3_000_000_000);
    let total: f64 = flows.iter().map(|f| sim.stats(*f).bytes as f64).sum();
    let mut t = Table::new(&["leaf", "share %", "expected %"]);
    for (f, want) in flows.iter().zip([35.0, 35.0, 30.0]) {
        t.row(&[
            format!("flow {f}"),
            format!("{:.1}", 100.0 * sim.stats(*f).bytes as f64 / total),
            format!("{want:.1}"),
        ]);
    }
    println!("all leaves backlogged:");
    t.print();

    // A2 idle: A1 should absorb A's whole 70%.
    let (h, _) = hierarchy();
    let mut sim = LinkSim::new(h, LINK);
    sim.run_backlogged(&[(1, 1000), (3, 1000)], 3_000_000_000);
    let total = (sim.stats(1).bytes + sim.stats(3).bytes) as f64;
    println!();
    println!("A2 idle (hierarchical redistribution):");
    let mut t = Table::new(&["leaf", "share %", "expected %"]);
    t.row(&[
        "flow 1 (A1)".into(),
        format!("{:.1}", 100.0 * sim.stats(1).bytes as f64 / total),
        "70.0".into(),
    ]);
    t.row(&[
        "flow 3 (B)".into(),
        format!("{:.1}", 100.0 * sim.stats(3).bytes as f64 / total),
        "30.0".into(),
    ]);
    t.print();

    // Decoupling experiment.
    println!();
    println!("delay/bandwidth decoupling: bursty 80 kb/s voice flow vs bulk traffic");
    let run = |curve: ServiceCurve| -> (u64, f64) {
        let mut h = HfscScheduler::new(LINK, 256);
        let root = h.root();
        let voice = h.add_class(root, MBPS / 10, Some(curve));
        let bulk = h.add_class(root, 9 * MBPS, None);
        h.bind_flow(1, voice);
        h.bind_flow(2, bulk);
        let mut sim = LinkSim::new(h, LINK);
        let mut next_burst = 0u64;
        while sim.now_ns() < 3_000_000_000 {
            if sim.now_ns() >= next_burst {
                for _ in 0..10 {
                    sim.offer(1, 200, 0);
                }
                next_burst += 200_000_000;
            }
            sim.offer(2, 1500, 0);
            sim.offer(2, 1500, 0);
            if sim.transmit_one().is_none() {
                sim.advance(10_000);
            }
        }
        let v = sim.stats(1);
        (v.max_delay_ns, v.bytes as f64 * 8.0 / 3.0)
    };
    let (d_lin, r_lin) = run(ServiceCurve::linear(80_000));
    let (d_con, r_con) = run(ServiceCurve {
        m1_bps: 2 * MBPS,
        d_us: 20_000,
        m2_bps: 80_000,
    });
    let mut t = Table::new(&["voice service curve", "max delay (ms)", "goodput (kb/s)"]);
    t.row(&[
        "linear 80 kb/s".into(),
        format!("{:.2}", d_lin as f64 / 1e6),
        format!("{:.0}", r_lin / 1e3),
    ]);
    t.row(&[
        "concave m1=2 Mb/s d=20 ms m2=80 kb/s".into(),
        format!("{:.2}", d_con as f64 / 1e6),
        format!("{:.0}", r_con / 1e3),
    ]);
    t.print();
    println!(
        "same bandwidth, {}x lower worst-case delay with the concave curve",
        if d_con > 0 { d_lin / d_con.max(1) } else { 0 }
    );
}
