//! E5 — filter-table lookup cost vs number of installed filters.
//!
//! The paper's claim (§5.1.2): "most of these existing techniques require
//! O(n) time … our solution is more or less independent of the number of
//! filters" — `O(f)` in the number of fields. We sweep the filter count
//! for the DAG (both BMP plugins) and the linear-scan baseline, reporting
//! ns/lookup and the DAG's deterministic memory-access count.
//!
//! Run: `cargo run --release -p rp-bench --bin filter_scaling`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rp_bench::report::Table;
use rp_classifier::{BmpKind, DagTable, LinearTable};
use rp_netsim::traffic::random_filters;
use rp_packet::FlowTuple;
use std::net::{IpAddr, Ipv4Addr};
use std::time::Instant;

fn probe_tuples(n: usize, seed: u64) -> Vec<FlowTuple> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| FlowTuple {
            src: IpAddr::V4(Ipv4Addr::from(rng.gen::<u32>())),
            dst: IpAddr::V4(Ipv4Addr::from(rng.gen::<u32>())),
            proto: if rng.gen_bool(0.5) { 6 } else { 17 },
            sport: rng.gen(),
            dport: rng.gen(),
            rx_if: 0,
        })
        .collect()
}

fn time_lookups<F: FnMut(&FlowTuple)>(probes: &[FlowTuple], rounds: usize, mut f: F) -> f64 {
    let t0 = Instant::now();
    for _ in 0..rounds {
        for p in probes {
            f(p);
        }
    }
    t0.elapsed().as_nanos() as f64 / (rounds * probes.len()) as f64
}

fn main() {
    println!("E5: filter lookup cost vs filter count (IPv4 filters)");
    println!();
    let probes = probe_tuples(2048, 99);
    let mut t = Table::new(&[
        "filters",
        "linear ns",
        "DAG/patricia ns",
        "DAG/bspl ns",
        "DAG/bspl worst accesses",
    ]);
    for &n in &[16usize, 128, 1024, 8192, 50_000] {
        eprintln!("[filter_scaling] n = {n}…");
        let filters = random_filters(n, false, 0xE5 + n as u64);

        let mut lin = LinearTable::new();
        let mut pat = DagTable::new(BmpKind::Patricia);
        let mut bspl = DagTable::new(BmpKind::Bspl);
        for (i, f) in filters.into_iter().enumerate() {
            lin.insert(f.clone(), i);
            let _ = pat.insert(f.clone(), i);
            let _ = bspl.insert(f, i);
        }

        // Fewer rounds for the expensive linear sweep at large n.
        let lin_rounds = if n > 1000 { 1 } else { 16 };
        let lin_probes = if n >= 50_000 {
            &probes[..256]
        } else {
            &probes[..]
        };
        let ns_lin = time_lookups(lin_probes, lin_rounds, |p| {
            std::hint::black_box(lin.lookup(p));
        });
        let ns_pat = time_lookups(&probes, 16, |p| {
            std::hint::black_box(pat.lookup(p));
        });
        let ns_bspl = time_lookups(&probes, 16, |p| {
            std::hint::black_box(bspl.lookup(p));
        });
        let worst = probes
            .iter()
            .map(|p| bspl.lookup_with_stats(p).1.total())
            .max()
            .unwrap();
        t.row(&[
            n.to_string(),
            format!("{ns_lin:.0}"),
            format!("{ns_pat:.0}"),
            format!("{ns_bspl:.0}"),
            worst.to_string(),
        ]);
    }
    t.print();
    println!();
    println!("expected shape: linear grows ~n; DAG columns stay flat (paper §5.1.2).");
}
