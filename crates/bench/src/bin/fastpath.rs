//! E13 — the zero-allocation batched fast path.
//!
//! Measures what the mbuf pool and batched shard dispatch buy, under a
//! counting global allocator so allocator traffic per packet is a
//! first-class result, not a guess:
//!
//! * **Single-threaded plane** — clone-per-packet ingress (the historical
//!   testbench loop) vs the pooled driver loop
//!   ([`Testbench::run_router_pooled`]): ingress buffers from the
//!   router's [`MbufPool`], transmitted buffers recycled. After warm-up
//!   the pooled loop must stay off the allocator entirely (the `fresh`
//!   pool counter is exact) — gated below.
//! * **Parallel plane** — per-packet dispatch (one channel send per
//!   packet; the vendored channel costs a lock and a heap node per send)
//!   vs [`ParallelRouter::receive_batch`] at batch sizes 1/8/64, over
//!   both shard-ingress transports: the vendored `channel` stub and the
//!   lock-free SPSC `ring` (batched cursor publication + carrier-batched
//!   egress). Gated below: channel batch-64 ≥ 1.3× channel batch-1
//!   (batching amortizes), ring batch-64 ≥ 1.3× the channel-stub
//!   baseline row (batch-1, the same entry point the historical 2.2×
//!   win was measured against), and the packet ledger
//!   `received == forwarded + Σdrops` holds exactly on **every** row.
//!   The equal-batch ring-vs-channel ratio is recorded in the JSON but
//!   not gated: on a single-core host both transports pay one
//!   context switch per shard per batch, so wall clock there measures
//!   the scheduler, not the transport.
//!
//! Output: text tables on stdout and `BENCH_fastpath.json` (schema:
//! `bench`, `schema_version`, `workload` metadata, acceptance block, and
//! `rows` with `plane`, `variant`, `dispatch`, `batch`, `packets`,
//! `wall_ns`, `pps_wall`, `ns_per_packet`, `allocs_per_packet`,
//! `mbuf_fresh_per_packet`, `mbuf_acquired`, `mbuf_recycled`,
//! `mbuf_fresh`, `conserved`). Exits non-zero when an acceptance gate
//! fails, so CI can run it directly.
//!
//! Run: `cargo run --release -p rp-bench --bin fastpath`

use router_core::plugins::register_builtin_factories;
use router_core::pmgr::run_script;
use router_core::{
    ControlPlane, DispatchMode, ParallelRouter, ParallelRouterConfig, Router, RouterConfig,
};
use rp_bench::report::{write_bench_json, Json, Table};
use rp_netsim::testbench::Testbench;
use rp_netsim::traffic::{v6_host, Workload};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

const FLOWS: usize = 64;
const PKTS_PER_FLOW: usize = 200;
const REPS: usize = 40;
const WARMUP_REPS: usize = 2;
const SHARDS: usize = 4;
const BATCH_SIZES: [usize; 3] = [1, 8, 64];

/// Acceptance gates (CI fails when violated).
const MIN_BATCH64_SPEEDUP: f64 = 1.3;
const MIN_RING_VS_CHANNEL: f64 = 1.3;
const MAX_FRESH_PER_PKT: f64 = 0.01;
const MAX_ALLOCS_PER_PKT_POOLED: f64 = 0.01;

/// Pass-through allocator counting every allocation and reallocation.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// The per-plane configuration every variant runs: a null plugin on the
/// stats gate, DRR scheduling egress — the same data path the scaling
/// bench prices.
const CONFIG_SCRIPT: &str = "load null\n\
     create null\n\
     bind stats null 0 <*, *, *, *, *, *>\n\
     load drr\n\
     create drr quantum=9180 limit=512\n\
     attach 1 drr 0\n\
     bind sched drr 0 <*, *, UDP, *, *, *>\n";

fn router_config() -> RouterConfig {
    RouterConfig {
        verify_checksums: false,
        ..RouterConfig::default()
    }
}

fn configure<C: ControlPlane>(cp: &mut C) {
    cp.cp_add_route(v6_host(0), 32, 1);
    run_script(cp, CONFIG_SCRIPT).expect("configure data plane");
}

fn single_router() -> Router {
    let mut r = Router::new(router_config());
    register_builtin_factories(&mut r.loader);
    configure(&mut r);
    r
}

fn parallel_router(dispatch: DispatchMode) -> ParallelRouter {
    let mut template = router_core::loader::PluginLoader::new();
    register_builtin_factories(&mut template);
    let mut pr = ParallelRouter::new(
        ParallelRouterConfig {
            shards: SHARDS,
            router: router_config(),
            ingress_depth: 1024,
            dispatch,
            ..ParallelRouterConfig::default()
        },
        &template,
    );
    configure(&mut pr);
    pr
}

fn dispatch_name(d: DispatchMode) -> &'static str {
    match d {
        DispatchMode::Channel => "channel",
        DispatchMode::Ring => "ring",
    }
}

/// One measured result, normalized per packet.
struct Row {
    plane: &'static str,
    variant: &'static str,
    dispatch: Option<&'static str>,
    batch: Option<usize>,
    conserved: bool,
    packets: u64,
    wall_ns: u64,
    ns_per_packet: f64,
    allocs_per_packet: f64,
    fresh_per_packet: f64,
    mbuf_acquired: u64,
    mbuf_recycled: u64,
    mbuf_fresh: u64,
    /// End-to-end sojourn percentiles (ingress stamp → final
    /// disposition), `None` when the variant stamped no packets.
    sojourn_p50_ns: Option<u64>,
    sojourn_p99_ns: Option<u64>,
}

fn sojourn(m: &router_core::obs::MetricsSnapshot, q: f64) -> Option<u64> {
    (m.sojourn_ns.count > 0).then(|| m.sojourn_ns.quantile(q))
}

impl Row {
    fn pps_wall(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.packets as f64 * 1e9 / self.wall_ns as f64
        }
    }

    fn json(&self) -> Json {
        Json::obj(vec![
            ("plane", Json::from(self.plane)),
            ("variant", Json::from(self.variant)),
            (
                "dispatch",
                self.dispatch.map(Json::from).unwrap_or(Json::Null),
            ),
            ("batch", self.batch.map(Json::from).unwrap_or(Json::Null)),
            ("conserved", Json::from(self.conserved)),
            ("packets", Json::from(self.packets)),
            ("wall_ns", Json::from(self.wall_ns)),
            ("pps_wall", Json::from(self.pps_wall())),
            ("ns_per_packet", Json::from(self.ns_per_packet)),
            ("allocs_per_packet", Json::from(self.allocs_per_packet)),
            ("mbuf_fresh_per_packet", Json::from(self.fresh_per_packet)),
            ("mbuf_acquired", Json::from(self.mbuf_acquired)),
            ("mbuf_recycled", Json::from(self.mbuf_recycled)),
            ("mbuf_fresh", Json::from(self.mbuf_fresh)),
            (
                "sojourn_p50_ns",
                self.sojourn_p50_ns.map_or(Json::Null, Json::from),
            ),
            (
                "sojourn_p99_ns",
                self.sojourn_p99_ns.map_or(Json::Null, Json::from),
            ),
        ])
    }
}

fn main() {
    let workload = Workload::uniform(FLOWS, PKTS_PER_FLOW, 512);
    let tb = Testbench::new(&workload);
    let per_rep = workload.total_packets() as u64;
    let measured = per_rep * REPS as u64;
    eprintln!(
        "[fastpath] {FLOWS} flows × {PKTS_PER_FLOW} pkts = {per_rep}/rep, \
         {WARMUP_REPS}+{REPS} reps per variant…"
    );

    let mut rows: Vec<Row> = Vec::new();

    // ---- single-threaded plane ------------------------------------
    {
        let mut r = single_router();
        tb.run_router(&mut r, WARMUP_REPS);
        let a0 = allocs();
        let t0 = std::time::Instant::now();
        let s = tb.run_router(&mut r, REPS);
        let wall_ns = t0.elapsed().as_nanos() as u64;
        let da = allocs() - a0;
        let m = r.metrics_snapshot();
        let st = r.stats();
        rows.push(Row {
            plane: "single",
            variant: "clone",
            dispatch: None,
            batch: None,
            conserved: st.received == st.forwarded + st.dropped_total(),
            packets: s.packets,
            wall_ns,
            ns_per_packet: s.ns_per_packet(),
            allocs_per_packet: da as f64 / s.packets as f64,
            fresh_per_packet: 0.0, // no pool on this path
            mbuf_acquired: m.mbuf_acquired,
            mbuf_recycled: m.mbuf_recycled,
            mbuf_fresh: m.mbuf_fresh,
            sojourn_p50_ns: sojourn(&m, 0.5),
            sojourn_p99_ns: sojourn(&m, 0.99),
        });
    }
    {
        let mut r = single_router();
        tb.run_router_pooled(&mut r, WARMUP_REPS);
        let p0 = r.pool_stats();
        let a0 = allocs();
        let t0 = std::time::Instant::now();
        let s = tb.run_router_pooled(&mut r, REPS);
        let wall_ns = t0.elapsed().as_nanos() as u64;
        let da = allocs() - a0;
        let p1 = r.pool_stats();
        let m = r.metrics_snapshot();
        let st = r.stats();
        rows.push(Row {
            plane: "single",
            variant: "pooled",
            dispatch: None,
            batch: None,
            conserved: st.received == st.forwarded + st.dropped_total(),
            packets: s.packets,
            wall_ns,
            ns_per_packet: s.ns_per_packet(),
            allocs_per_packet: da as f64 / s.packets as f64,
            fresh_per_packet: (p1.fresh - p0.fresh) as f64 / s.packets as f64,
            mbuf_acquired: m.mbuf_acquired,
            mbuf_recycled: m.mbuf_recycled,
            mbuf_fresh: m.mbuf_fresh,
            sojourn_p50_ns: sojourn(&m, 0.5),
            sojourn_p99_ns: sojourn(&m, 0.99),
        });
    }

    // ---- parallel plane -------------------------------------------
    {
        // Historical baseline: one channel send per packet.
        let mut pr = parallel_router(DispatchMode::Channel);
        tb.run_parallel(&mut pr, WARMUP_REPS);
        let a0 = allocs();
        let s = tb.run_parallel(&mut pr, REPS);
        let da = allocs() - a0;
        let m = pr.metrics_snapshot();
        let st = pr.stats();
        rows.push(Row {
            plane: "parallel",
            variant: "per-packet",
            dispatch: Some("channel"),
            batch: None,
            conserved: st.received == st.forwarded + st.dropped_total(),
            packets: s.packets,
            wall_ns: s.wall_ns,
            ns_per_packet: s.ns_per_packet(),
            allocs_per_packet: da as f64 / s.packets.max(1) as f64,
            fresh_per_packet: 0.0, // clone ingress: dispatcher pool unused
            mbuf_acquired: m.mbuf_acquired,
            mbuf_recycled: m.mbuf_recycled,
            mbuf_fresh: m.mbuf_fresh,
            sojourn_p50_ns: sojourn(&m, 0.5),
            sojourn_p99_ns: sojourn(&m, 0.99),
        });
    }
    for dispatch in [DispatchMode::Channel, DispatchMode::Ring] {
        for &batch in &BATCH_SIZES {
            let mut pr = parallel_router(dispatch);
            tb.run_parallel_batched(&mut pr, WARMUP_REPS, batch);
            let p0 = pr.pool_stats();
            let a0 = allocs();
            let s = tb.run_parallel_batched(&mut pr, REPS, batch);
            let da = allocs() - a0;
            let p1 = pr.pool_stats();
            let m = pr.metrics_snapshot();
            let st = pr.stats();
            rows.push(Row {
                plane: "parallel",
                variant: "batched",
                dispatch: Some(dispatch_name(dispatch)),
                batch: Some(batch),
                conserved: st.received == st.forwarded + st.dropped_total(),
                packets: s.packets,
                wall_ns: s.wall_ns,
                ns_per_packet: s.ns_per_packet(),
                allocs_per_packet: da as f64 / s.packets.max(1) as f64,
                fresh_per_packet: (p1.fresh - p0.fresh) as f64 / s.packets.max(1) as f64,
                mbuf_acquired: m.mbuf_acquired,
                mbuf_recycled: m.mbuf_recycled,
                mbuf_fresh: m.mbuf_fresh,
                sojourn_p50_ns: sojourn(&m, 0.5),
                sojourn_p99_ns: sojourn(&m, 0.99),
            });
        }
    }

    // ---- report ---------------------------------------------------
    println!();
    println!("Zero-allocation batched fast path ({FLOWS}-flow UDP/IPv6 workload, {measured} packets/variant)");
    println!("(allocs/pkt counts every heap allocation during the measured phase — channel");
    println!("nodes, carrier growth, everything — not just mbuf buffers)");
    println!();
    let mut t = Table::new(&[
        "Plane",
        "Variant",
        "Dispatch",
        "Batch",
        "pkt/s (wall)",
        "µs/pkt (CPU)",
        "allocs/pkt",
        "fresh mbufs/pkt",
        "conserved",
    ]);
    for r in &rows {
        t.row(&[
            r.plane.into(),
            r.variant.into(),
            r.dispatch.unwrap_or("—").into(),
            r.batch.map(|b| b.to_string()).unwrap_or_else(|| "—".into()),
            format!("{:.0}", r.pps_wall()),
            format!("{:.2}", r.ns_per_packet / 1000.0),
            format!("{:.4}", r.allocs_per_packet),
            format!("{:.4}", r.fresh_per_packet),
            if r.conserved {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    t.print();

    // ---- acceptance -----------------------------------------------
    let find = |variant: &str, dispatch: Option<&str>, batch: Option<usize>| {
        rows.iter()
            .find(|r| r.variant == variant && r.dispatch == dispatch && r.batch == batch)
            .expect("variant measured")
    };
    let batch1 = find("batched", Some("channel"), Some(1));
    let batch64 = find("batched", Some("channel"), Some(64));
    let ring64 = find("batched", Some("ring"), Some(64));
    let pooled = find("pooled", None, None);
    let speedup = if batch1.pps_wall() > 0.0 {
        batch64.pps_wall() / batch1.pps_wall()
    } else {
        0.0
    };
    let ring_speedup = if batch1.pps_wall() > 0.0 {
        ring64.pps_wall() / batch1.pps_wall()
    } else {
        0.0
    };
    // Informational only (see module docs): transport-vs-transport at
    // equal batch size — meaningful with real hardware parallelism.
    let ring_vs_channel64 = if batch64.pps_wall() > 0.0 {
        ring64.pps_wall() / batch64.pps_wall()
    } else {
        0.0
    };

    let mut failures = Vec::new();
    if speedup < MIN_BATCH64_SPEEDUP {
        failures.push(format!(
            "batch-64 wall throughput {speedup:.2}× batch-1 (floor {MIN_BATCH64_SPEEDUP}×)"
        ));
    }
    if ring_speedup < MIN_RING_VS_CHANNEL {
        failures.push(format!(
            "ring batch-64 wall throughput {ring_speedup:.2}× channel-stub baseline \
             (floor {MIN_RING_VS_CHANNEL}×)"
        ));
    }
    for r in rows.iter().filter(|r| !r.conserved) {
        failures.push(format!(
            "packet ledger violated on {}/{}{}{}",
            r.plane,
            r.variant,
            r.dispatch.map(|d| format!("/{d}")).unwrap_or_default(),
            r.batch.map(|b| format!("/batch-{b}")).unwrap_or_default(),
        ));
    }
    if pooled.fresh_per_packet >= MAX_FRESH_PER_PKT {
        failures.push(format!(
            "single pooled: {:.4} fresh mbufs/pkt (ceiling {MAX_FRESH_PER_PKT})",
            pooled.fresh_per_packet
        ));
    }
    if pooled.allocs_per_packet >= MAX_ALLOCS_PER_PKT_POOLED {
        failures.push(format!(
            "single pooled: {:.4} allocs/pkt (ceiling {MAX_ALLOCS_PER_PKT_POOLED})",
            pooled.allocs_per_packet
        ));
    }
    for (name, row) in [("channel", batch64), ("ring", ring64)] {
        if row.fresh_per_packet >= MAX_FRESH_PER_PKT {
            failures.push(format!(
                "parallel {name} batch-64: {:.4} fresh mbufs/pkt (ceiling {MAX_FRESH_PER_PKT})",
                row.fresh_per_packet
            ));
        }
    }

    println!();
    println!(
        "channel batch-64 vs batch-1 speedup: {speedup:.2}× (floor {MIN_BATCH64_SPEEDUP}×); \
         ring batch-64 vs channel baseline: {ring_speedup:.2}× (floor {MIN_RING_VS_CHANNEL}×); \
         ring vs channel at batch-64: {ring_vs_channel64:.2}× (informational); \
         pooled single plane: {:.4} allocs/pkt, {:.4} fresh mbufs/pkt",
        pooled.allocs_per_packet, pooled.fresh_per_packet
    );

    let extra = vec![
        (
            "workload",
            Json::obj(vec![
                ("flows", Json::from(FLOWS)),
                ("pkts_per_flow", Json::from(PKTS_PER_FLOW)),
                ("reps", Json::from(REPS)),
                ("payload_len", Json::from(512usize)),
                ("shards", Json::from(SHARDS)),
            ]),
        ),
        (
            "acceptance",
            Json::obj(vec![
                ("batch64_speedup_vs_batch1", Json::from(speedup)),
                ("min_batch64_speedup", Json::from(MIN_BATCH64_SPEEDUP)),
                (
                    "ring_batch64_speedup_vs_channel_baseline",
                    Json::from(ring_speedup),
                ),
                ("min_ring_vs_channel", Json::from(MIN_RING_VS_CHANNEL)),
                ("ring_vs_channel_at_batch64", Json::from(ring_vs_channel64)),
                (
                    "all_rows_conserved",
                    Json::from(rows.iter().all(|r| r.conserved)),
                ),
                (
                    "pooled_allocs_per_packet",
                    Json::from(pooled.allocs_per_packet),
                ),
                (
                    "max_allocs_per_packet_pooled",
                    Json::from(MAX_ALLOCS_PER_PKT_POOLED),
                ),
                (
                    "pooled_fresh_per_packet",
                    Json::from(pooled.fresh_per_packet),
                ),
                ("max_fresh_per_packet", Json::from(MAX_FRESH_PER_PKT)),
                ("pass", Json::from(failures.is_empty())),
            ]),
        ),
        ("host_cores", Json::from(num_cpus())),
    ];
    let rows_json = rows.iter().map(Row::json).collect();
    match write_bench_json("fastpath", rows_json, extra) {
        Ok(p) => eprintln!("[fastpath] wrote {}", p.display()),
        Err(e) => eprintln!("[fastpath] could not write JSON: {e}"),
    }

    if !failures.is_empty() {
        eprintln!("[fastpath] ACCEPTANCE FAILED:");
        for f in &failures {
            eprintln!("[fastpath]   - {f}");
        }
        std::process::exit(1);
    }
}

fn num_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}
