//! Criterion bench comparing the three BMP plugins (PATRICIA, BSPL,
//! CPE) on route-table-scale prefix sets — the per-level engine choice
//! inside the DAG classifier and the routing table.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rp_lpm::{BsplTable, CpeTable, LpmTable, PatriciaTable, Prefix};

fn prefixes(n: usize, seed: u64) -> Vec<(Prefix<u32>, u32)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let len = *[8u8, 16, 19, 20, 21, 22, 23, 24, 32]
                .get(rng.gen_range(0..9))
                .unwrap();
            (Prefix::new(rng.gen::<u32>(), len), i as u32)
        })
        .collect()
}

fn bench_lpm(c: &mut Criterion) {
    let mut group = c.benchmark_group("lpm_lookup");
    for &n in &[1_000usize, 100_000] {
        let pfx = prefixes(n, n as u64);
        let mut pat = PatriciaTable::new();
        let mut bspl = BsplTable::new();
        let mut cpe = CpeTable::<u32, u32>::new_v4();
        for (p, v) in &pfx {
            pat.insert(*p, *v);
            bspl.insert(*p, *v);
            cpe.insert(*p, *v);
        }
        let mut rng = StdRng::seed_from_u64(7);
        let probes: Vec<u32> = (0..1024).map(|_| rng.gen()).collect();
        let mut i = 0usize;
        group.bench_with_input(BenchmarkId::new("patricia", n), &n, |b, _| {
            b.iter(|| {
                i = (i + 1) & 1023;
                black_box(pat.lookup(probes[i]))
            })
        });
        group.bench_with_input(BenchmarkId::new("bspl", n), &n, |b, _| {
            b.iter(|| {
                i = (i + 1) & 1023;
                black_box(bspl.lookup(probes[i]))
            })
        });
        group.bench_with_input(BenchmarkId::new("cpe", n), &n, |b, _| {
            b.iter(|| {
                i = (i + 1) & 1023;
                black_box(cpe.lookup(probes[i]))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lpm);
criterion_main!(benches);
