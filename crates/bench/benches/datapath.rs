//! Criterion bench for E3/E8: per-packet forwarding cost of the four
//! Table 3 kernels, measured packet-by-packet on the cached path.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use router_core::monolithic::{AltqDrrRouter, BestEffortRouter};
use router_core::plugins::register_builtin_factories;
use router_core::pmgr::run_script;
use router_core::{Gate, Router, RouterConfig};
use rp_netsim::traffic::{v6_host, Workload};
use rp_packet::Mbuf;

/// Small-payload variant of the Table 3 flow mix: criterion measures the
/// per-packet *data-path* cost here, and an 8 KB clone per iteration
/// would drown it in allocator noise (the faithful 8 KB workload runs in
/// the `table3` binary).
fn packets() -> Vec<Mbuf> {
    let mut w = Workload::paper_table3();
    for f in &mut w.flows {
        f.payload_len = 256;
    }
    w.build()
}

fn plugin_router(gates: Vec<Gate>, script: &str) -> Router {
    let mut r = Router::new(RouterConfig {
        verify_checksums: false,
        enabled_gates: gates,
        ..RouterConfig::default()
    });
    register_builtin_factories(&mut r.loader);
    r.add_route(v6_host(0), 32, 1);
    run_script(&mut r, script).unwrap();
    r
}

fn bench_datapath(c: &mut Criterion) {
    let pkts = packets();
    let mut group = c.benchmark_group("datapath_per_packet");
    group.throughput(criterion::Throughput::Elements(1));

    // Row 1: best-effort.
    let mut be = BestEffortRouter::new(4, false);
    be.add_route(v6_host(0), 32, 1);
    let mut i = 0usize;
    group.bench_function("best_effort", |b| {
        b.iter(|| {
            i = (i + 1) % pkts.len();
            let d = be.receive(pkts[i].clone());
            if i.is_multiple_of(64) {
                be.take_tx(1);
            }
            black_box(d)
        })
    });

    // Row 2: plugin framework, 3 empty-plugin gates.
    let mut fw = plugin_router(
        vec![Gate::Firewall, Gate::IpSecurity, Gate::Stats],
        "load null\ncreate null\n\
         bind fw null 0 <*, *, *, *, *, *>\n\
         bind ipsec null 0 <*, *, *, *, *, *>\n\
         bind stats null 0 <*, *, *, *, *, *>\n",
    );
    let mut i = 0usize;
    group.bench_function("plugin_framework_3gates", |b| {
        b.iter(|| {
            i = (i + 1) % pkts.len();
            let d = fw.receive(pkts[i].clone());
            if i.is_multiple_of(64) {
                fw.take_tx(1);
            }
            black_box(d)
        })
    });

    // Row 3: monolithic ALTQ DRR.
    let mut altq = AltqDrrRouter::new(4, 64, 9180, false);
    altq.add_route(v6_host(0), 32, 1);
    let mut i = 0usize;
    let mut now = 0u64;
    group.bench_function("monolithic_altq_drr", |b| {
        b.iter(|| {
            i = (i + 1) % pkts.len();
            now += 1000;
            let d = altq.receive(pkts[i].clone(), now);
            altq.pump(1, 1, now);
            if i.is_multiple_of(64) {
                altq.take_tx(1);
            }
            black_box(d)
        })
    });

    // Row 4: plugin framework + DRR plugin.
    let mut pd = plugin_router(
        vec![Gate::Scheduling],
        "load drr\ncreate drr quantum=9180 limit=512\nattach 1 drr 0\n\
         bind sched drr 0 <*, *, UDP, *, *, *>\n",
    );
    let mut i = 0usize;
    group.bench_function("plugin_drr", |b| {
        b.iter(|| {
            i = (i + 1) % pkts.len();
            let d = pd.receive(pkts[i].clone());
            pd.pump(1, 1);
            if i.is_multiple_of(64) {
                pd.take_tx(1);
            }
            black_box(d)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_datapath);
criterion_main!(benches);
