//! Criterion bench for E4: flow-cache hit cost and the bare five-tuple
//! hash (the paper's "17 cycles" / "1.3 µs cached lookup" claims).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rp_classifier::flow_table::{flow_hash, FlowTable, FlowTableConfig};
use rp_netsim::traffic::v6_host;
use rp_packet::FlowTuple;

fn tuple(i: u32) -> FlowTuple {
    FlowTuple {
        src: v6_host((i % 50000) as u16),
        dst: v6_host(((i / 50000) % 50000 + 1) as u16),
        proto: 17,
        sport: (i % 60000) as u16,
        dport: 80,
        rx_if: 0,
    }
}

fn bench_flow_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow_table");

    let probes: Vec<FlowTuple> = (0..1024).map(tuple).collect();
    group.bench_function("hash_five_tuple", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) & 1023;
            black_box(flow_hash(&probes[i]))
        })
    });

    for &n in &[64usize, 8192, 262_144] {
        let mut ft: FlowTable<u32> = FlowTable::new(FlowTableConfig {
            buckets: 32768,
            initial_records: 1024,
            max_records: n.max(1024) * 2,
            gates: 6,
            max_idle_ns: 0,
            ..FlowTableConfig::default()
        });
        for i in 0..n {
            ft.insert(tuple(i as u32));
        }
        let keys: Vec<FlowTuple> = (0..1024).map(|i| tuple((i % n) as u32)).collect();
        group.bench_with_input(BenchmarkId::new("cached_lookup", n), &n, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) & 1023;
                black_box(ft.lookup(&keys[i]))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_flow_table);
criterion_main!(benches);
