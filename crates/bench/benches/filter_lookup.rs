//! Criterion bench for E2/E5: DAG filter-table lookup across filter
//! counts and BMP plugins, against the linear baseline.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rp_classifier::{BmpKind, DagTable, LinearTable};
use rp_netsim::traffic::random_filters;
use rp_packet::FlowTuple;
use std::net::{IpAddr, Ipv4Addr};

fn probes(n: usize) -> Vec<FlowTuple> {
    let mut rng = StdRng::seed_from_u64(12);
    (0..n)
        .map(|_| FlowTuple {
            src: IpAddr::V4(Ipv4Addr::from(rng.gen::<u32>())),
            dst: IpAddr::V4(Ipv4Addr::from(rng.gen::<u32>())),
            proto: 17,
            sport: rng.gen(),
            dport: rng.gen(),
            rx_if: 0,
        })
        .collect()
}

fn bench_filter_lookup(c: &mut Criterion) {
    let ps = probes(1024);
    let mut group = c.benchmark_group("filter_lookup");
    for &n in &[16usize, 1024, 16384] {
        let filters = random_filters(n, false, n as u64);
        let mut bspl = DagTable::new(BmpKind::Bspl);
        let mut pat = DagTable::new(BmpKind::Patricia);
        let mut lin = LinearTable::new();
        for (i, f) in filters.into_iter().enumerate() {
            let _ = bspl.insert(f.clone(), i);
            let _ = pat.insert(f.clone(), i);
            lin.insert(f, i);
        }
        let mut idx = 0usize;
        group.bench_with_input(BenchmarkId::new("dag_bspl", n), &n, |b, _| {
            b.iter(|| {
                idx = (idx + 1) & 1023;
                black_box(bspl.lookup(&ps[idx]))
            })
        });
        group.bench_with_input(BenchmarkId::new("dag_patricia", n), &n, |b, _| {
            b.iter(|| {
                idx = (idx + 1) & 1023;
                black_box(pat.lookup(&ps[idx]))
            })
        });
        if n <= 1024 {
            group.bench_with_input(BenchmarkId::new("linear", n), &n, |b, _| {
                b.iter(|| {
                    idx = (idx + 1) & 1023;
                    black_box(lin.lookup(&ps[idx]))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_filter_lookup);
criterion_main!(benches);
