//! Criterion bench for E7's overhead comparison: per-operation
//! enqueue+dequeue cost of FIFO vs DRR vs H-FSC vs RED. The paper's
//! ranking — H-FSC costs more than DRR, both cost more than FIFO —
//! should reproduce ("[27] reports 6.8–10.3 µs … 25% to 37% overhead"
//! versus DRR's 20%).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rp_sched::link::{SchedPacket, Scheduler};
use rp_sched::red::RedConfig;
use rp_sched::{DrrScheduler, FifoScheduler, HfscScheduler, RedQueue, ServiceCurve};

fn pkt(flow: u32, i: u64) -> SchedPacket {
    SchedPacket {
        flow,
        len: 1000,
        arrival_ns: i,
        cookie: i,
    }
}

fn bench_enq_deq<S: Scheduler>(c: &mut Criterion, name: &str, mut s: S) {
    // Keep a standing backlog of ~32 packets across 8 flows so both
    // operations do real work.
    let mut i = 0u64;
    for _ in 0..32 {
        i += 1;
        s.enqueue(pkt((i % 8) as u32, i), i);
    }
    c.bench_function(name, |b| {
        b.iter(|| {
            i += 1;
            s.enqueue(pkt((i % 8) as u32, i), i);
            black_box(s.dequeue(i))
        })
    });
}

fn bench_schedulers(c: &mut Criterion) {
    bench_enq_deq(c, "sched/fifo", FifoScheduler::new(1024));

    let mut drr = DrrScheduler::new(1500, 128);
    for f in 0..8 {
        drr.set_weight(f, 1 + f % 4);
    }
    bench_enq_deq(c, "sched/drr", drr);

    let mut hfsc = HfscScheduler::new(1_000_000_000, 128);
    let root = hfsc.root();
    let a = hfsc.add_class(root, 700_000_000, None);
    let b = hfsc.add_class(root, 300_000_000, None);
    for f in 0..4u32 {
        let leaf = hfsc.add_class(a, 100_000_000, Some(ServiceCurve::linear(50_000_000)));
        hfsc.bind_flow(f, leaf);
    }
    for f in 4..8u32 {
        let leaf = hfsc.add_class(b, 50_000_000, None);
        hfsc.bind_flow(f, leaf);
    }
    bench_enq_deq(c, "sched/hfsc", hfsc);

    bench_enq_deq(
        c,
        "sched/red",
        RedQueue::new(
            RedConfig {
                limit: 1024,
                min_th: 100.0,
                max_th: 500.0,
                ..RedConfig::default()
            },
            42,
        ),
    );
}

criterion_group!(benches, bench_schedulers);
criterion_main!(benches);
