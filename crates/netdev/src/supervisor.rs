//! Device supervision: the third tier of the Healthy→Degraded→Quarantined
//! architecture (tier one supervises plugin instances, tier two shard
//! workers; this supervises the [`NetDev`](crate::NetDev) boundary).
//!
//! Each bound device gets a [`DeviceMonitor`] fed one [`PollSample`] per
//! I/O-plane duty cycle, built from the device's own
//! [`DeviceStats`](router_core::dataplane::control::DeviceStats) deltas:
//!
//! * **error pressure** — hard rx/tx I/O errors accumulate in a decayed
//!   window (halved every [`DeviceSupervisorConfig::error_window_polls`]
//!   cycles, the same integer decay the flow steerer uses); crossing
//!   [`DeviceSupervisorConfig::error_threshold`] degrades the device.
//! * **rx stall** — polls in which this device read nothing *while its
//!   peers read frames*: traffic is flowing through the plane, this
//!   device alone is silent. A quiet wire never counts as a stall.
//!
//! A device that stays degraded for
//! [`DeviceSupervisorConfig::quarantine_after`] consecutive cycles is
//! quarantined: the I/O plane stops polling its receive side and sheds
//! its egress as counted device-tx drops (conservation stays exact —
//! nothing silently vanishes with the device). Quarantine ends through
//! [`crate::NetDev::reopen`] under capped exponential backoff; a
//! successful reopen returns the device to [`DeviceHealth::Degraded`]
//! *probation*, and [`DeviceSupervisorConfig::recover_after`] clean
//! cycles make it [`DeviceHealth::Healthy`] again.
//!
//! The monitor is pure state-machine: the I/O plane owns the sampling
//! and the reopen call, so the machine is testable without sockets.

use router_core::dataplane::control::DeviceHealth;
use std::time::{Duration, Instant};

/// Thresholds and timing of the per-device health machine.
#[derive(Debug, Clone, Copy)]
pub struct DeviceSupervisorConfig {
    /// Decayed hard-error count (rx + tx I/O errors) at which the device
    /// degrades.
    pub error_threshold: u64,
    /// The error window halves every this many polls, so "error rate"
    /// tracks the recent past, not all of history.
    pub error_window_polls: u32,
    /// Consecutive polls with zero rx progress while peer devices made
    /// progress before the device degrades.
    pub rx_stall_polls: u32,
    /// Consecutive degraded polls before quarantine.
    pub quarantine_after: u32,
    /// Consecutive clean polls before a degraded device recovers.
    pub recover_after: u32,
    /// First reopen backoff after quarantine.
    pub backoff_initial: Duration,
    /// Backoff cap (doubles per failed reopen up to this).
    pub backoff_max: Duration,
}

impl Default for DeviceSupervisorConfig {
    fn default() -> Self {
        DeviceSupervisorConfig {
            error_threshold: 8,
            error_window_polls: 64,
            rx_stall_polls: 64,
            quarantine_after: 16,
            recover_after: 8,
            backoff_initial: Duration::from_millis(5),
            backoff_max: Duration::from_secs(1),
        }
    }
}

/// One duty cycle's observation of a device, as counter deltas.
#[derive(Debug, Clone, Copy, Default)]
pub struct PollSample {
    /// Frames this device read this cycle (delivered + decap-dropped).
    pub rx_frames: u64,
    /// Frames every *other* bound device read this cycle (the liveness
    /// witness for the stall check).
    pub peer_rx_frames: u64,
    /// Hard I/O errors this cycle (rx read failures + tx write
    /// failures). Backpressure sheds (`tx_dropped`) are *not* errors —
    /// a saturated peer is not a broken device.
    pub io_errors: u64,
}

/// The per-device health machine (see module docs).
#[derive(Debug)]
pub struct DeviceMonitor {
    cfg: DeviceSupervisorConfig,
    health: DeviceHealth,
    err_window: u64,
    polls_in_window: u32,
    stall_polls: u32,
    degraded_streak: u32,
    clean_streak: u32,
    backoff: Duration,
    reopen_at: Option<Instant>,
    quarantines: u64,
    reopens: u64,
    reopen_failures: u64,
}

impl DeviceMonitor {
    /// A fresh monitor in [`DeviceHealth::Healthy`].
    pub fn new(cfg: DeviceSupervisorConfig) -> DeviceMonitor {
        DeviceMonitor {
            backoff: cfg.backoff_initial,
            cfg,
            health: DeviceHealth::Healthy,
            err_window: 0,
            polls_in_window: 0,
            stall_polls: 0,
            degraded_streak: 0,
            clean_streak: 0,
            reopen_at: None,
            quarantines: 0,
            reopens: 0,
            reopen_failures: 0,
        }
    }

    /// Current health.
    pub fn health(&self) -> DeviceHealth {
        self.health
    }

    /// Whether the device is currently off the wire.
    pub fn quarantined(&self) -> bool {
        self.health == DeviceHealth::Quarantined
    }

    /// Times the device was quarantined.
    pub fn quarantines(&self) -> u64 {
        self.quarantines
    }

    /// Successful quarantine→reopen cycles.
    pub fn reopens(&self) -> u64 {
        self.reopens
    }

    /// Failed reopen attempts (each doubles the backoff up to the cap).
    pub fn reopen_failures(&self) -> u64 {
        self.reopen_failures
    }

    /// Step the machine with one duty cycle's sample. No-op while
    /// quarantined (the device is not being polled; there is nothing to
    /// observe).
    pub fn note_poll(&mut self, s: &PollSample, now: Instant) {
        if self.quarantined() {
            return;
        }
        self.err_window += s.io_errors;
        self.polls_in_window += 1;
        if self.polls_in_window >= self.cfg.error_window_polls {
            self.err_window /= 2;
            self.polls_in_window = 0;
        }
        if s.rx_frames == 0 && s.peer_rx_frames > 0 {
            self.stall_polls += 1;
        } else {
            self.stall_polls = 0;
        }
        let troubled = self.err_window >= self.cfg.error_threshold
            || self.stall_polls >= self.cfg.rx_stall_polls;
        match self.health {
            DeviceHealth::Healthy | DeviceHealth::Unsupervised => {
                if troubled {
                    self.health = DeviceHealth::Degraded;
                    self.degraded_streak = 1;
                    self.clean_streak = 0;
                }
            }
            DeviceHealth::Degraded => {
                if troubled {
                    self.degraded_streak += 1;
                    self.clean_streak = 0;
                    if self.degraded_streak >= self.cfg.quarantine_after {
                        self.health = DeviceHealth::Quarantined;
                        self.quarantines += 1;
                        self.reopen_at = Some(now + self.backoff);
                    }
                } else {
                    self.clean_streak += 1;
                    self.degraded_streak = 0;
                    if self.clean_streak >= self.cfg.recover_after {
                        self.health = DeviceHealth::Healthy;
                        self.err_window = 0;
                        self.polls_in_window = 0;
                    }
                }
            }
            DeviceHealth::Quarantined => {}
        }
    }

    /// Whether the quarantine backoff has elapsed and the I/O plane
    /// should attempt [`crate::NetDev::reopen`].
    pub fn reopen_due(&self, now: Instant) -> bool {
        matches!(self.reopen_at, Some(at) if self.quarantined() && now >= at)
    }

    /// Record the outcome of a reopen attempt. Success puts the device
    /// on degraded probation with cleared windows and reset backoff;
    /// failure doubles the backoff (capped) and re-arms the timer.
    pub fn note_reopen(&mut self, ok: bool, now: Instant) {
        if ok {
            self.reopens += 1;
            self.health = DeviceHealth::Degraded;
            self.err_window = 0;
            self.polls_in_window = 0;
            self.stall_polls = 0;
            self.degraded_streak = 0;
            self.clean_streak = 0;
            self.backoff = self.cfg.backoff_initial;
            self.reopen_at = None;
        } else {
            self.reopen_failures += 1;
            self.backoff = (self.backoff * 2).min(self.cfg.backoff_max);
            self.reopen_at = Some(now + self.backoff);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DeviceSupervisorConfig {
        DeviceSupervisorConfig {
            error_threshold: 4,
            error_window_polls: 8,
            rx_stall_polls: 3,
            quarantine_after: 3,
            recover_after: 2,
            backoff_initial: Duration::from_millis(1),
            backoff_max: Duration::from_millis(4),
        }
    }

    fn errs(n: u64) -> PollSample {
        PollSample {
            io_errors: n,
            ..PollSample::default()
        }
    }

    #[test]
    fn error_burst_degrades_then_quarantines() {
        let mut m = DeviceMonitor::new(cfg());
        let now = Instant::now();
        m.note_poll(&errs(4), now);
        assert_eq!(m.health(), DeviceHealth::Degraded);
        m.note_poll(&errs(1), now);
        m.note_poll(&errs(1), now);
        assert_eq!(m.health(), DeviceHealth::Quarantined);
        assert_eq!(m.quarantines(), 1);
        // Backoff: not due immediately, due after it elapses.
        assert!(!m.reopen_due(now));
        assert!(m.reopen_due(now + Duration::from_millis(2)));
    }

    #[test]
    fn errors_decay_and_device_recovers() {
        // Fast decay (halve every poll) and a slow quarantine trigger:
        // a one-off error burst must degrade, decay, and recover without
        // ever reaching quarantine.
        let mut m = DeviceMonitor::new(DeviceSupervisorConfig {
            error_window_polls: 1,
            quarantine_after: 8,
            ..cfg()
        });
        let now = Instant::now();
        m.note_poll(&errs(8), now);
        assert_eq!(m.health(), DeviceHealth::Degraded);
        for _ in 0..10 {
            m.note_poll(&errs(0), now);
            if m.health() == DeviceHealth::Healthy {
                break;
            }
        }
        assert_eq!(m.health(), DeviceHealth::Healthy);
        assert_eq!(m.quarantines(), 0, "recovery must not pass quarantine");
    }

    #[test]
    fn rx_stall_only_counts_while_peers_progress() {
        let mut m = DeviceMonitor::new(cfg());
        let now = Instant::now();
        // A quiet wire: nobody reads anything — never a stall.
        for _ in 0..20 {
            m.note_poll(&PollSample::default(), now);
        }
        assert_eq!(m.health(), DeviceHealth::Healthy);
        // Peers read, this device does not: stall streak → degraded.
        let stalled = PollSample {
            peer_rx_frames: 10,
            ..PollSample::default()
        };
        m.note_poll(&stalled, now);
        m.note_poll(&stalled, now);
        assert_eq!(m.health(), DeviceHealth::Healthy);
        m.note_poll(&stalled, now);
        assert_eq!(m.health(), DeviceHealth::Degraded);
        // Progress resets the streak and recovers the device.
        let progressing = PollSample {
            rx_frames: 5,
            peer_rx_frames: 10,
            ..PollSample::default()
        };
        m.note_poll(&progressing, now);
        m.note_poll(&progressing, now);
        assert_eq!(m.health(), DeviceHealth::Healthy);
    }

    #[test]
    fn failed_reopens_double_backoff_to_cap() {
        let mut m = DeviceMonitor::new(cfg());
        let mut now = Instant::now();
        for _ in 0..3 {
            m.note_poll(&errs(4), now);
        }
        assert!(m.quarantined());
        // 1ms → fail → 2ms → fail → 4ms → fail → 4ms (capped).
        for expect_ms in [2u64, 4, 4] {
            now += Duration::from_millis(100);
            assert!(m.reopen_due(now));
            m.note_reopen(false, now);
            assert!(m.quarantined());
            assert!(!m.reopen_due(now + Duration::from_millis(expect_ms - 1)));
            assert!(m.reopen_due(now + Duration::from_millis(expect_ms)));
        }
        assert_eq!(m.reopen_failures(), 3);
        // Success: probation, then clean polls → healthy; backoff reset.
        now += Duration::from_millis(100);
        m.note_reopen(true, now);
        assert_eq!(m.health(), DeviceHealth::Degraded);
        assert_eq!(m.reopens(), 1);
        m.note_poll(&errs(0), now);
        m.note_poll(&errs(0), now);
        assert_eq!(m.health(), DeviceHealth::Healthy);
    }
}
