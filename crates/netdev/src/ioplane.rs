//! The I/O plane: binds [`NetDev`] backends to router interfaces and
//! drives traffic between the wire and the data plane.
//!
//! One [`poll`](IoPlane::poll) call is a full duty cycle:
//!
//! 1. **Ingress** — each device's `rx_batch` fills that device's
//!    scratch batch with pooled mbufs (bytes copied straight from the
//!    device's buffers into recycled pool buffers; zero fresh
//!    allocations at steady state), which is then injected into the
//!    data plane: per-packet `receive` + inline scheduler pump on the
//!    single router, `receive_batch` on the parallel router.
//! 2. **Flush** — the parallel plane's barrier + egress settle (no-op
//!    on the single router).
//! 3. **Egress** — per interface, queued output is drained into the
//!    device's transmit scratch (append-only, order preserving) and
//!    handed to `tx_batch`, which recycles every buffer into the pool.
//!
//! The plane keeps an [`IoLedger`] so conservation is checkable at the
//! *wire*, not just inside the IP core: every frame read from a device
//! is either forwarded back out of a device, or attributed to a counted
//! drop ([`check_conservation`](IoPlane::check_conservation)).
//!
//! The plane also re-exports the wrapped router's control plane
//! (`ControlPlane` by delegation), adding live rows for the pmgr
//! `devices` command — so an operator drives a device-backed router
//! with the identical command language.

use crate::supervisor::{DeviceMonitor, DeviceSupervisorConfig, PollSample};
use crate::{NetDev, RxBatch};
use router_core::dataplane::control::{
    ControlPlane, DeviceHealth, DeviceRow, DeviceStats, MetricsRow, ShardHealthReport, ShardStatus,
    ShardTraceEvent, StatsRow,
};
use router_core::dataplane::ParallelRouter;
use router_core::gate::Gate;
use router_core::ip_core::{DataPathStats, Disposition};
use router_core::message::{PluginMsg, PluginReply};
use router_core::plugin::{InstanceId, PluginError};
use router_core::router::Router;
use rp_packet::mbuf::IfIndex;
use rp_packet::pool::MbufPool;
use rp_packet::Mbuf;
use std::net::IpAddr;
use std::time::Instant;

/// The data-plane surface the [`IoPlane`] needs, implemented by both
/// [`Router`] (single-threaded) and [`ParallelRouter`] (sharded) so one
/// driver serves either shape.
pub trait IoRouter {
    /// Copy `bytes` into a pooled mbuf stamped with `rx_if`.
    fn io_mbuf(&mut self, bytes: &[u8], rx_if: IfIndex) -> Mbuf;
    /// Inject a batch of ingress packets. Drains `batch`; its capacity
    /// is reused (or swapped for a recycled carrier) across calls.
    fn io_inject_batch(&mut self, batch: &mut Vec<Mbuf>);
    /// Settle in-flight work so egress queues are complete (barrier on
    /// the parallel plane, no-op on the single router).
    fn io_flush(&mut self);
    /// Append interface `iface`'s queued egress to `out`.
    fn io_take_tx_into(&mut self, iface: IfIndex, out: &mut Vec<Mbuf>);
    /// The plane's mbuf pool, for recycling transmitted buffers.
    fn io_pool(&mut self) -> &mut MbufPool;
    /// Account `n` frames dropped at device receive (before the IP
    /// core); extends `received == forwarded + Σdrops` to the wire.
    fn io_note_device_rx_drops(&mut self, n: u64);
    /// Re-account `n` forwarded packets refused by an egress device.
    fn io_note_device_tx_drops(&mut self, n: u64);
    /// Merged data-path counters. Takes `&self` so conservation is
    /// checkable on a shared reference mid-run.
    fn io_stats(&self) -> DataPathStats;
    /// Number of router interfaces.
    fn io_interface_count(&self) -> usize;
}

impl IoRouter for Router {
    fn io_mbuf(&mut self, bytes: &[u8], rx_if: IfIndex) -> Mbuf {
        self.mbuf_with(bytes, rx_if)
    }

    fn io_inject_batch(&mut self, batch: &mut Vec<Mbuf>) {
        // One coarse wall-clock read covers the whole batch — sojourn
        // resolution is the batch, cost is amortised across it.
        let wall = rp_packet::coarse_now_ns();
        for m in batch.drain(..) {
            // Mirror the shard worker: pump the egress scheduler right
            // after a queuing disposition so DRR/WFQ output flows
            // without a separate scheduler thread.
            if let Disposition::Queued(iface) = self.receive_stamped(m, wall) {
                self.pump(iface, 1);
            }
        }
    }

    fn io_flush(&mut self) {}

    fn io_take_tx_into(&mut self, iface: IfIndex, out: &mut Vec<Mbuf>) {
        self.take_tx_into(iface, out);
    }

    fn io_pool(&mut self) -> &mut MbufPool {
        self.pool_mut()
    }

    fn io_note_device_rx_drops(&mut self, n: u64) {
        self.note_device_rx_drops(n);
    }

    fn io_note_device_tx_drops(&mut self, n: u64) {
        self.note_device_tx_drops(n);
    }

    fn io_stats(&self) -> DataPathStats {
        self.stats()
    }

    fn io_interface_count(&self) -> usize {
        self.interface_count()
    }
}

impl IoRouter for ParallelRouter {
    fn io_mbuf(&mut self, bytes: &[u8], rx_if: IfIndex) -> Mbuf {
        self.pool_mut().mbuf_from(bytes, rx_if)
    }

    fn io_inject_batch(&mut self, batch: &mut Vec<Mbuf>) {
        // Swap the caller's filled batch for a recycled carrier, so the
        // Vec the dispatcher consumes came from the scrap channel and
        // the caller keeps a warm empty one — capacities circulate
        // instead of being reallocated.
        let mut carrier = self.batch_carrier();
        std::mem::swap(&mut carrier, batch);
        self.receive_batch(carrier);
    }

    fn io_flush(&mut self) {
        self.flush();
    }

    fn io_take_tx_into(&mut self, iface: IfIndex, out: &mut Vec<Mbuf>) {
        self.take_tx_into(iface, out);
    }

    fn io_pool(&mut self) -> &mut MbufPool {
        self.pool_mut()
    }

    fn io_note_device_rx_drops(&mut self, n: u64) {
        self.note_device_rx_drops(n);
    }

    fn io_note_device_tx_drops(&mut self, n: u64) {
        self.note_device_tx_drops(n);
    }

    fn io_stats(&self) -> DataPathStats {
        self.stats_read()
    }

    fn io_interface_count(&self) -> usize {
        self.interface_count()
    }
}

/// Wire-level conservation counters kept by the [`IoPlane`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoLedger {
    /// Frames read off all devices (delivered + decap-dropped).
    pub device_rx: u64,
    /// Packets injected into the data plane.
    pub injected: u64,
    /// Frames dropped at device receive (truncated / non-IP).
    pub decap_dropped: u64,
    /// Packets written back out through devices.
    pub device_tx: u64,
    /// Forwarded packets lost to hard transmit failures (the device
    /// reported a write error).
    pub tx_errors: u64,
    /// Forwarded packets shed without a hard error: device backpressure
    /// (full queues after bounded retries) or a quarantined device's
    /// egress being drained by the supervisor.
    pub tx_dropped: u64,
}

/// A device bound to a router interface, with its reusable scratch
/// batches (ingress and egress Vecs are drained in place each cycle, so
/// their capacity — like the mbuf buffers inside — is recycled).
struct BoundDev {
    dev: Box<dyn NetDev>,
    iface: IfIndex,
    rx_scratch: Vec<Mbuf>,
    tx_scratch: Vec<Mbuf>,
    /// Health machine when supervision is enabled.
    monitor: Option<DeviceMonitor>,
    /// Stats snapshot at the last supervision step (delta baseline).
    last_stats: DeviceStats,
    /// Frames this device read in the current duty cycle.
    rx_frames: u64,
}

/// Binds [`NetDev`]s to a data plane and pumps traffic (see module
/// docs). `P` is either [`Router`] or [`ParallelRouter`].
pub struct IoPlane<P: IoRouter> {
    plane: P,
    devices: Vec<BoundDev>,
    ledger: IoLedger,
    rx_budget: usize,
    supervision: Option<DeviceSupervisorConfig>,
}

impl<P: IoRouter> IoPlane<P> {
    /// Wrap a data plane. `rx_budget` caps frames pulled from each
    /// device per poll (back-pressure toward the wire).
    pub fn new(plane: P, rx_budget: usize) -> IoPlane<P> {
        IoPlane {
            plane,
            devices: Vec::new(),
            ledger: IoLedger::default(),
            rx_budget: rx_budget.max(1),
            supervision: None,
        }
    }

    /// Enable device supervision: every bound device (current and
    /// future) gets a [`DeviceMonitor`] fed one [`PollSample`] per duty
    /// cycle, with quarantine and backed-off reopen driven from
    /// [`poll`](IoPlane::poll).
    pub fn supervise(&mut self, cfg: DeviceSupervisorConfig) {
        self.supervision = Some(cfg);
        for bd in self.devices.iter_mut() {
            if bd.monitor.is_none() {
                bd.last_stats = bd.dev.stats();
                bd.monitor = Some(DeviceMonitor::new(cfg));
            }
        }
    }

    /// Bind a device to router interface `iface`. Packets the device
    /// receives enter the plane on `iface`; packets the plane emits on
    /// `iface` leave through the device.
    pub fn bind(&mut self, iface: IfIndex, dev: Box<dyn NetDev>) {
        assert!(
            (iface as usize) < self.plane.io_interface_count(),
            "bind: interface {iface} out of range"
        );
        let last_stats = dev.stats();
        self.devices.push(BoundDev {
            dev,
            iface,
            rx_scratch: Vec::new(),
            tx_scratch: Vec::new(),
            monitor: self.supervision.map(DeviceMonitor::new),
            last_stats,
            rx_frames: 0,
        });
    }

    /// The wrapped data plane.
    pub fn plane(&self) -> &P {
        &self.plane
    }

    /// The wrapped data plane, mutably (route setup, plugin config).
    pub fn plane_mut(&mut self) -> &mut P {
        &mut self.plane
    }

    /// The wire-level conservation ledger.
    pub fn ledger(&self) -> IoLedger {
        self.ledger
    }

    /// One duty cycle: ingress from every device, flush, egress to
    /// every device, then (with supervision on) one health step per
    /// device. Returns frames read off the wire this cycle.
    pub fn poll(&mut self) -> u64 {
        let polled = self.poll_rx();
        self.plane.io_flush();
        self.poll_tx();
        if self.supervision.is_some() {
            self.supervise_step();
        }
        polled
    }

    /// Ingress half of a cycle (exposed for tests that want to observe
    /// the plane mid-cycle). Quarantined devices are not polled; when
    /// their reopen backoff has elapsed a [`NetDev::reopen`] is
    /// attempted first, and on success the device is polled again this
    /// same cycle (on degraded probation).
    pub fn poll_rx(&mut self) -> u64 {
        let now = Instant::now();
        let wall = rp_packet::coarse_now_ns();
        let mut polled = 0;
        for bd in self.devices.iter_mut() {
            bd.rx_frames = 0;
            if let Some(mon) = bd.monitor.as_mut() {
                if mon.reopen_due(now) {
                    let ok = bd.dev.reopen().is_ok();
                    mon.note_reopen(ok, now);
                }
                if mon.quarantined() {
                    continue;
                }
            }
            let iface = bd.iface;
            let budget = self.rx_budget;
            let plane = &mut self.plane;
            let rx = &mut bd.rx_scratch;
            let r: RxBatch = bd.dev.rx_batch(budget, &mut |bytes| {
                let mut m = plane.io_mbuf(bytes, iface);
                m.timestamp_ns = wall;
                rx.push(m);
            });
            polled += r.frames;
            bd.rx_frames = r.frames;
            self.ledger.device_rx += r.frames;
            self.ledger.injected += r.delivered;
            if r.dropped > 0 {
                self.ledger.decap_dropped += r.dropped;
                plane.io_note_device_rx_drops(r.dropped);
            }
            plane.io_inject_batch(&mut bd.rx_scratch);
        }
        polled
    }

    /// Egress half of a cycle. A quarantined device's queued egress is
    /// shed (recycled and counted as device-tx drops) rather than
    /// handed to a dead transport — conservation stays exact across the
    /// outage. For live devices, frames the device refused are split by
    /// cause: hard write errors (from the device's own `tx_errors`
    /// delta) vs backpressure sheds (everything else).
    pub fn poll_tx(&mut self) {
        for bd in self.devices.iter_mut() {
            self.plane.io_take_tx_into(bd.iface, &mut bd.tx_scratch);
            if bd.tx_scratch.is_empty() {
                continue;
            }
            if bd.monitor.as_ref().is_some_and(|m| m.quarantined()) {
                let n = bd.tx_scratch.len() as u64;
                let pool = self.plane.io_pool();
                for m in bd.tx_scratch.drain(..) {
                    pool.recycle(m);
                }
                self.ledger.tx_dropped += n;
                self.plane.io_note_device_tx_drops(n);
                continue;
            }
            let attempted = bd.tx_scratch.len() as u64;
            let errs_before = bd.dev.stats().tx_errors;
            let sent = bd.dev.tx_batch(&mut bd.tx_scratch, self.plane.io_pool());
            self.ledger.device_tx += sent;
            let failed = attempted - sent;
            if failed > 0 {
                let hard = (bd.dev.stats().tx_errors - errs_before).min(failed);
                self.ledger.tx_errors += hard;
                self.ledger.tx_dropped += failed - hard;
                self.plane.io_note_device_tx_drops(failed);
            }
        }
    }

    /// One supervision step: feed every monitored device a
    /// [`PollSample`] built from its [`DeviceStats`] deltas since the
    /// last step, with the sum of the *other* devices' rx frames as the
    /// liveness witness for the stall check.
    fn supervise_step(&mut self) {
        let now = Instant::now();
        let total_rx: u64 = self.devices.iter().map(|bd| bd.rx_frames).sum();
        for bd in self.devices.iter_mut() {
            let Some(mon) = bd.monitor.as_mut() else {
                continue;
            };
            let s = bd.dev.stats();
            let io_errors =
                (s.rx_errors - bd.last_stats.rx_errors) + (s.tx_errors - bd.last_stats.tx_errors);
            bd.last_stats = s;
            mon.note_poll(
                &PollSample {
                    rx_frames: bd.rx_frames,
                    peer_rx_frames: total_rx - bd.rx_frames,
                    io_errors,
                },
                now,
            );
        }
    }

    /// Poll until `cycles` consecutive cycles read nothing off the wire
    /// (traffic has settled), up to `max_polls`. Returns total frames.
    pub fn poll_until_quiet(&mut self, cycles: usize, max_polls: usize) -> u64 {
        let mut total = 0;
        let mut quiet = 0;
        for _ in 0..max_polls {
            let n = self.poll();
            total += n;
            if n == 0 {
                quiet += 1;
                if quiet >= cycles {
                    break;
                }
            } else {
                quiet = 0;
            }
        }
        total
    }

    /// Per-device rows for the pmgr `devices` command.
    pub fn device_rows(&self) -> Vec<DeviceRow> {
        self.devices
            .iter()
            .map(|bd| DeviceRow {
                name: bd.dev.name().to_string(),
                iface: bd.iface,
                stats: bd.dev.stats(),
                health: bd
                    .monitor
                    .as_ref()
                    .map_or(DeviceHealth::Unsupervised, |m| m.health()),
                quarantines: bd.monitor.as_ref().map_or(0, |m| m.quarantines()),
                reopens: bd.monitor.as_ref().map_or(0, |m| m.reopens()),
            })
            .collect()
    }

    /// Check exact wire-to-wire conservation, panicking with a labelled
    /// diff on violation. Valid once traffic has settled (all egress
    /// drained) when every interface carrying traffic is device-bound
    /// and no plugin consumed packets:
    ///
    /// * every frame read became a counted packet:
    ///   `device_rx == stats.received`;
    /// * every forwarded packet left through a device:
    ///   `forwarded == device_tx`;
    /// * nothing is unaccounted:
    ///   `device_rx == device_tx + Σdrops`.
    pub fn check_conservation(&self) {
        let stats = self.plane.io_stats();
        let led = self.ledger;
        assert_eq!(
            led.device_rx, stats.received,
            "conservation: device_rx ({}) != received ({})",
            led.device_rx, stats.received
        );
        assert_eq!(
            stats.forwarded, led.device_tx,
            "conservation: forwarded ({}) != device_tx ({})",
            stats.forwarded, led.device_tx
        );
        assert_eq!(
            led.device_rx,
            led.device_tx + stats.dropped_total(),
            "conservation: device_rx ({}) != device_tx ({}) + drops ({})",
            led.device_rx,
            led.device_tx,
            stats.dropped_total()
        );
    }
}

/// The I/O plane re-exports its router's control plane verbatim —
/// every command pmgr knows works unchanged — and supplies the live
/// `devices` rows.
impl<P: IoRouter + ControlPlane> ControlPlane for IoPlane<P> {
    fn cp_load_plugin(&mut self, name: &str) -> Result<(), PluginError> {
        self.plane.cp_load_plugin(name)
    }
    fn cp_unload_plugin(&mut self, name: &str) -> Result<(), PluginError> {
        self.plane.cp_unload_plugin(name)
    }
    fn cp_force_unload_plugin(&mut self, name: &str) -> Result<(), PluginError> {
        self.plane.cp_force_unload_plugin(name)
    }
    fn cp_send_message(
        &mut self,
        plugin: &str,
        msg: PluginMsg,
    ) -> Result<PluginReply, PluginError> {
        self.plane.cp_send_message(plugin, msg)
    }
    fn cp_add_route(&mut self, addr: IpAddr, prefix_len: u8, tx_if: IfIndex) {
        self.plane.cp_add_route(addr, prefix_len, tx_if)
    }
    fn cp_remove_route(&mut self, addr: IpAddr, prefix_len: u8) -> bool {
        self.plane.cp_remove_route(addr, prefix_len)
    }
    fn cp_set_gate_enabled(&mut self, gate: Gate, enabled: bool) {
        self.plane.cp_set_gate_enabled(gate, enabled)
    }
    fn cp_set_default_scheduler(
        &mut self,
        iface: IfIndex,
        plugin: &str,
        id: InstanceId,
    ) -> Result<(), PluginError> {
        self.plane.cp_set_default_scheduler(iface, plugin, id)
    }
    fn cp_describe_filters(&self, gate: Gate) -> Vec<String> {
        self.plane.cp_describe_filters(gate)
    }
    fn cp_describe_instances(&self) -> Vec<String> {
        self.plane.cp_describe_instances()
    }
    fn cp_health_reports(&self) -> Vec<ShardHealthReport> {
        self.plane.cp_health_reports()
    }
    fn cp_loaded_plugins(&self) -> Vec<String> {
        self.plane.cp_loaded_plugins()
    }
    fn cp_stats_rows(&self) -> Vec<StatsRow> {
        self.plane.cp_stats_rows()
    }
    fn cp_metrics_rows(&self) -> Vec<MetricsRow> {
        self.plane.cp_metrics_rows()
    }
    fn cp_trace_enable(&mut self, on: bool) {
        self.plane.cp_trace_enable(on)
    }
    fn cp_trace_dump(&self, n: usize) -> Vec<ShardTraceEvent> {
        self.plane.cp_trace_dump(n)
    }
    fn cp_shard_status(&mut self) -> Vec<ShardStatus> {
        self.plane.cp_shard_status()
    }
    fn cp_shard_restart(&mut self, shard: usize) -> Result<String, PluginError> {
        self.plane.cp_shard_restart(shard)
    }
    fn cp_shard_kill(&mut self, shard: usize) -> Result<String, PluginError> {
        self.plane.cp_shard_kill(shard)
    }
    fn cp_device_rows(&self) -> Vec<DeviceRow> {
        self.device_rows()
    }
}
