//! Dependency-free classic pcap (`.pcap`) reader and writer, plus the
//! replay and capture [`NetDev`] backends built on them.
//!
//! Only the classic format is implemented (magic `0xa1b2c3d4`, version
//! 2.4) — no pcapng. Both byte orders are accepted on read (the magic
//! doubles as the endianness marker) and either can be produced on
//! write, so the golden fixtures in `tests/fixtures/` exercise both.
//! Two link types are understood:
//!
//! * [`LINKTYPE_RAW`] (101): each record is a bare IPv4/IPv6 packet.
//! * [`LINKTYPE_ETHERNET`] (1): each record is an Ethernet frame; the
//!   replay device strips the header on the way in and the capture
//!   device attaches one on the way out.

use crate::frame;
use crate::{NetDev, NetDevError, RxBatch};
use router_core::dataplane::control::DeviceStats;
use rp_packet::pool::MbufPool;
use rp_packet::Mbuf;

/// Classic pcap magic in file order for a native-order writer.
pub const PCAP_MAGIC: u32 = 0xa1b2_c3d4;
/// Link type: raw IPv4/IPv6 packets, no L2 header.
pub const LINKTYPE_RAW: u32 = 101;
/// Link type: DIX Ethernet frames.
pub const LINKTYPE_ETHERNET: u32 = 1;

const GLOBAL_HDR_LEN: usize = 24;
const RECORD_HDR_LEN: usize = 16;
const SNAPLEN: u32 = 65535;

/// One captured packet record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcapRecord {
    /// Timestamp seconds.
    pub ts_sec: u32,
    /// Timestamp microseconds.
    pub ts_usec: u32,
    /// Original on-wire length (≥ `data.len()` if the capture truncated).
    pub orig_len: u32,
    /// Captured bytes.
    pub data: Vec<u8>,
}

/// A parsed classic pcap file.
#[derive(Debug, Clone)]
pub struct PcapFile {
    /// The file's link type ([`LINKTYPE_RAW`] or [`LINKTYPE_ETHERNET`]
    /// for our backends; other values parse but cannot be replayed).
    pub linktype: u32,
    /// Whether the file was written big-endian.
    pub big_endian: bool,
    /// The packet records, in file order.
    pub records: Vec<PcapRecord>,
}

fn rd_u32(b: &[u8], off: usize, big: bool) -> u32 {
    let raw = [b[off], b[off + 1], b[off + 2], b[off + 3]];
    if big {
        u32::from_be_bytes(raw)
    } else {
        u32::from_le_bytes(raw)
    }
}

fn rd_u16(b: &[u8], off: usize, big: bool) -> u16 {
    let raw = [b[off], b[off + 1]];
    if big {
        u16::from_be_bytes(raw)
    } else {
        u16::from_le_bytes(raw)
    }
}

impl PcapFile {
    /// Parse a classic pcap file from a byte buffer, accepting either
    /// endianness.
    pub fn parse(bytes: &[u8]) -> Result<PcapFile, NetDevError> {
        if bytes.len() < GLOBAL_HDR_LEN {
            return Err(NetDevError::Format(format!(
                "pcap too short for global header: {} bytes",
                bytes.len()
            )));
        }
        let magic_le = rd_u32(bytes, 0, false);
        let big = match magic_le {
            PCAP_MAGIC => false,
            m if m.swap_bytes() == PCAP_MAGIC => true,
            m => {
                return Err(NetDevError::Format(format!(
                    "bad pcap magic 0x{m:08x} (nanosecond and pcapng formats unsupported)"
                )))
            }
        };
        let (major, minor) = (rd_u16(bytes, 4, big), rd_u16(bytes, 6, big));
        if major != 2 {
            return Err(NetDevError::Format(format!(
                "unsupported pcap version {major}.{minor}"
            )));
        }
        let linktype = rd_u32(bytes, 20, big);
        let mut records = Vec::new();
        let mut off = GLOBAL_HDR_LEN;
        while off < bytes.len() {
            if bytes.len() - off < RECORD_HDR_LEN {
                return Err(NetDevError::Format(format!(
                    "truncated record header at offset {off}"
                )));
            }
            let ts_sec = rd_u32(bytes, off, big);
            let ts_usec = rd_u32(bytes, off + 4, big);
            let incl_len = rd_u32(bytes, off + 8, big) as usize;
            let orig_len = rd_u32(bytes, off + 12, big);
            off += RECORD_HDR_LEN;
            if incl_len > SNAPLEN as usize || bytes.len() - off < incl_len {
                return Err(NetDevError::Format(format!(
                    "truncated record body at offset {off} (incl_len {incl_len})"
                )));
            }
            records.push(PcapRecord {
                ts_sec,
                ts_usec,
                orig_len,
                data: bytes[off..off + incl_len].to_vec(),
            });
            off += incl_len;
        }
        Ok(PcapFile {
            linktype,
            big_endian: big,
            records,
        })
    }
}

/// Streaming classic-pcap writer producing an in-memory byte buffer.
#[derive(Debug)]
pub struct PcapWriter {
    buf: Vec<u8>,
    big_endian: bool,
}

impl PcapWriter {
    /// Start a new capture with the given link type and byte order.
    pub fn new(linktype: u32, big_endian: bool) -> PcapWriter {
        let mut w = PcapWriter {
            buf: Vec::with_capacity(GLOBAL_HDR_LEN),
            big_endian,
        };
        w.u32(PCAP_MAGIC);
        w.u16(2); // version major
        w.u16(4); // version minor
        w.u32(0); // thiszone
        w.u32(0); // sigfigs
        w.u32(SNAPLEN);
        w.u32(linktype);
        w
    }

    fn u32(&mut self, v: u32) {
        let raw = if self.big_endian {
            v.to_be_bytes()
        } else {
            v.to_le_bytes()
        };
        self.buf.extend_from_slice(&raw);
    }

    fn u16(&mut self, v: u16) {
        let raw = if self.big_endian {
            v.to_be_bytes()
        } else {
            v.to_le_bytes()
        };
        self.buf.extend_from_slice(&raw);
    }

    /// Append one record.
    pub fn push(&mut self, ts_sec: u32, ts_usec: u32, data: &[u8]) {
        let len = (data.len() as u32).min(SNAPLEN);
        self.u32(ts_sec);
        self.u32(ts_usec);
        self.u32(len);
        self.u32(data.len() as u32);
        self.buf.extend_from_slice(&data[..len as usize]);
    }

    /// The capture produced so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Finish and take the capture buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// A [`NetDev`] whose receive side replays a parsed pcap trace and
/// whose transmit side discards (counting packets as written).
///
/// Each `rx_batch` call serves the next `max` records. Ethernet traces
/// are decapsulated on the fly; frames that fail decap count as
/// `rx_dropped` (→ `DropReason::DeviceRx` in the plane's ledger).
/// [`rewind`](PcapReplayDev::rewind) restarts the trace for repeated
/// benchmark reps without reparsing.
#[derive(Debug)]
pub struct PcapReplayDev {
    name: String,
    file: PcapFile,
    cursor: usize,
    looping: bool,
    stats: DeviceStats,
}

impl PcapReplayDev {
    /// Build a replay device from parsed pcap bytes.
    pub fn new(name: &str, bytes: &[u8]) -> Result<PcapReplayDev, NetDevError> {
        let file = PcapFile::parse(bytes)?;
        if file.linktype != LINKTYPE_RAW && file.linktype != LINKTYPE_ETHERNET {
            return Err(NetDevError::Format(format!(
                "unsupported linktype {} (want RAW=101 or ETHERNET=1)",
                file.linktype
            )));
        }
        Ok(PcapReplayDev {
            name: name.to_string(),
            file,
            cursor: 0,
            looping: false,
            stats: DeviceStats::default(),
        })
    }

    /// Replay the trace endlessly (benchmark mode): reaching the last
    /// record rewinds instead of going quiet.
    pub fn set_looping(&mut self, on: bool) {
        self.looping = on;
    }

    /// Records remaining to replay.
    pub fn remaining(&self) -> usize {
        self.file.records.len() - self.cursor
    }

    /// Restart the trace from the first record (counters keep running).
    pub fn rewind(&mut self) {
        self.cursor = 0;
    }
}

impl NetDev for PcapReplayDev {
    fn name(&self) -> &str {
        &self.name
    }

    fn rx_batch(&mut self, max: usize, sink: &mut dyn FnMut(&[u8])) -> RxBatch {
        let mut batch = RxBatch::default();
        let ethernet = self.file.linktype == LINKTYPE_ETHERNET;
        while (batch.frames as usize) < max {
            if self.cursor >= self.file.records.len() {
                if self.looping && !self.file.records.is_empty() {
                    self.cursor = 0;
                } else {
                    break;
                }
            }
            let rec = &self.file.records[self.cursor];
            self.cursor += 1;
            batch.frames += 1;
            self.stats.rx_packets += 1;
            self.stats.rx_bytes += rec.data.len() as u64;
            let payload = if ethernet {
                match frame::strip_ethernet(&rec.data) {
                    Ok(p) => p,
                    Err(_) => {
                        batch.dropped += 1;
                        self.stats.rx_dropped += 1;
                        continue;
                    }
                }
            } else {
                &rec.data[..]
            };
            sink(payload);
            batch.delivered += 1;
        }
        self.stats.rx_batch.observe(batch.frames);
        batch
    }

    fn tx_batch(&mut self, pkts: &mut Vec<Mbuf>, pool: &mut MbufPool) -> u64 {
        let mut written = 0;
        for m in pkts.drain(..) {
            self.stats.tx_packets += 1;
            self.stats.tx_bytes += m.len() as u64;
            written += 1;
            pool.recycle(m);
        }
        self.stats.tx_batch.observe(written);
        written
    }

    fn stats(&self) -> DeviceStats {
        self.stats
    }
}

/// A [`NetDev`] whose transmit side appends every packet to an
/// in-memory pcap capture (receive side is always empty).
///
/// Timestamps come from each mbuf's `timestamp_ns`. With
/// [`LINKTYPE_ETHERNET`] an Ethernet header is attached (synthetic
/// MACs); packets that cannot be framed count as `tx_errors`. Capture
/// allocates per record — it is an offline diffing tool, not part of
/// the allocation-gated fast path.
#[derive(Debug)]
pub struct PcapCaptureDev {
    name: String,
    writer: PcapWriter,
    linktype: u32,
    scratch: Vec<u8>,
    stats: DeviceStats,
}

/// Destination MAC used for captured Ethernet frames.
pub const CAPTURE_DST_MAC: [u8; 6] = [0x02, 0, 0, 0, 0, 0x02];
/// Source MAC used for captured Ethernet frames.
pub const CAPTURE_SRC_MAC: [u8; 6] = [0x02, 0, 0, 0, 0, 0x01];

impl PcapCaptureDev {
    /// Start an egress capture with the given link type and byte order.
    pub fn new(name: &str, linktype: u32, big_endian: bool) -> PcapCaptureDev {
        PcapCaptureDev {
            name: name.to_string(),
            writer: PcapWriter::new(linktype, big_endian),
            linktype,
            scratch: Vec::new(),
            stats: DeviceStats::default(),
        }
    }

    /// The pcap bytes captured so far.
    pub fn bytes(&self) -> &[u8] {
        self.writer.bytes()
    }

    /// Finish and take the capture.
    pub fn into_bytes(self) -> Vec<u8> {
        self.writer.into_bytes()
    }
}

impl NetDev for PcapCaptureDev {
    fn name(&self) -> &str {
        &self.name
    }

    fn rx_batch(&mut self, _max: usize, _sink: &mut dyn FnMut(&[u8])) -> RxBatch {
        RxBatch::default()
    }

    fn tx_batch(&mut self, pkts: &mut Vec<Mbuf>, pool: &mut MbufPool) -> u64 {
        let mut written = 0;
        for m in pkts.drain(..) {
            let ts_sec = (m.timestamp_ns / 1_000_000_000) as u32;
            let ts_usec = ((m.timestamp_ns % 1_000_000_000) / 1_000) as u32;
            if self.linktype == LINKTYPE_ETHERNET {
                if frame::attach_ethernet(
                    &mut self.scratch,
                    &CAPTURE_DST_MAC,
                    &CAPTURE_SRC_MAC,
                    m.data(),
                ) {
                    self.writer.push(ts_sec, ts_usec, &self.scratch);
                } else {
                    self.stats.tx_errors += 1;
                    pool.recycle(m);
                    continue;
                }
            } else {
                self.writer.push(ts_sec, ts_usec, m.data());
            }
            self.stats.tx_packets += 1;
            self.stats.tx_bytes += m.len() as u64;
            written += 1;
            pool.recycle(m);
        }
        self.stats.tx_batch.observe(written);
        written
    }

    fn stats(&self) -> DeviceStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_parse_round_trip_both_endiannesses() {
        for big in [false, true] {
            let mut w = PcapWriter::new(LINKTYPE_RAW, big);
            w.push(1, 2, &[0x45, 1, 2, 3]);
            w.push(3, 4, &[0x60, 9, 8]);
            let bytes = w.into_bytes();
            let f = PcapFile::parse(&bytes).unwrap();
            assert_eq!(f.big_endian, big);
            assert_eq!(f.linktype, LINKTYPE_RAW);
            assert_eq!(f.records.len(), 2);
            assert_eq!(f.records[0].data, vec![0x45, 1, 2, 3]);
            assert_eq!(f.records[0].ts_sec, 1);
            assert_eq!(f.records[0].ts_usec, 2);
            assert_eq!(f.records[1].data, vec![0x60, 9, 8]);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(PcapFile::parse(&[]).is_err());
        assert!(PcapFile::parse(&[0u8; 24]).is_err());
        let mut w = PcapWriter::new(LINKTYPE_RAW, false);
        w.push(0, 0, &[1, 2, 3]);
        let mut bytes = w.into_bytes();
        bytes.truncate(bytes.len() - 1); // chop the record body
        assert!(PcapFile::parse(&bytes).is_err());
    }

    #[test]
    fn replay_serves_batches_and_rewinds() {
        let mut w = PcapWriter::new(LINKTYPE_RAW, false);
        for i in 0..5u8 {
            w.push(i as u32, 0, &[0x45, i]);
        }
        let mut dev = PcapReplayDev::new("replay", w.bytes()).unwrap();
        let mut seen = Vec::new();
        let b = dev.rx_batch(3, &mut |p| seen.push(p.to_vec()));
        assert_eq!((b.frames, b.delivered, b.dropped), (3, 3, 0));
        let b = dev.rx_batch(16, &mut |p| seen.push(p.to_vec()));
        assert_eq!((b.frames, b.delivered), (2, 2));
        assert_eq!(seen.len(), 5);
        assert_eq!(dev.remaining(), 0);
        dev.rewind();
        assert_eq!(dev.remaining(), 5);
    }

    #[test]
    fn ethernet_replay_strips_and_drops_non_ip() {
        let mut w = PcapWriter::new(LINKTYPE_ETHERNET, false);
        let mut f = Vec::new();
        frame::attach_ethernet(&mut f, &[1; 6], &[2; 6], &[0x45, 7, 7]);
        w.push(0, 0, &f);
        let mut arp = vec![0u8; 20];
        (arp[12], arp[13]) = (0x08, 0x06);
        w.push(0, 0, &arp);
        w.push(0, 0, &[0u8; 5]); // truncated frame
        let mut dev = PcapReplayDev::new("replay", w.bytes()).unwrap();
        let mut seen = Vec::new();
        let b = dev.rx_batch(16, &mut |p| seen.push(p.to_vec()));
        assert_eq!((b.frames, b.delivered, b.dropped), (3, 1, 2));
        assert_eq!(seen, vec![vec![0x45, 7, 7]]);
        assert_eq!(dev.stats().rx_dropped, 2);
    }

    #[test]
    fn capture_then_replay_is_identity() {
        let mut pool = MbufPool::new(4);
        let mut cap = PcapCaptureDev::new("cap", LINKTYPE_ETHERNET, true);
        let mut batch = vec![
            pool.mbuf_from(&[0x45, 1, 2, 3], 0),
            pool.mbuf_from(&[0x60, 4, 5], 0),
        ];
        assert_eq!(cap.tx_batch(&mut batch, &mut pool), 2);
        let bytes = cap.into_bytes();
        let mut dev = PcapReplayDev::new("replay", &bytes).unwrap();
        let mut seen = Vec::new();
        dev.rx_batch(16, &mut |p| seen.push(p.to_vec()));
        assert_eq!(seen, vec![vec![0x45, 1, 2, 3], vec![0x60, 4, 5]]);
    }
}
