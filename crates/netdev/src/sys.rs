//! Minimal Linux syscall surface for the TAP and `recvmmsg` paths.
//!
//! The workspace deliberately carries no `libc` crate, so the handful
//! of symbols we need are declared here directly. They resolve against
//! the platform C library that `std` already links — no new dependency.
//! Struct layouts match glibc/musl on 64-bit Linux (x86_64, aarch64):
//! `repr(C)` inserts the same padding the C definitions carry.
//!
//! Everything here is `pub(crate)`; the safe wrappers live in
//! [`crate::tap`] and [`crate::udp`].
#![allow(non_camel_case_types)]

use std::os::raw::{c_int, c_uint, c_ulong, c_void};

/// `ioctl(fd, TUNSETIFF, &ifreq)` — attach a tun/tap fd to an interface.
pub(crate) const TUNSETIFF: c_ulong = 0x4004_54ca;
/// `ifreq.ifr_flags` bit: TAP (Ethernet-level) rather than TUN.
pub(crate) const IFF_TAP: u16 = 0x0002;
/// `ifreq.ifr_flags` bit: no packet-information prefix on frames.
pub(crate) const IFF_NO_PI: u16 = 0x1000;
/// `ioctl(fd, FIONBIO, &1)` — set nonblocking on a plain fd.
pub(crate) const FIONBIO: c_ulong = 0x5421;
/// `recvmmsg` flag: never block even on blocking sockets.
pub(crate) const MSG_DONTWAIT: c_int = 0x40;
/// Set by the kernel in `msghdr.msg_flags` when a datagram was longer
/// than the supplied buffer and its tail was discarded.
pub(crate) const MSG_TRUNC: c_int = 0x20;

pub(crate) const IFNAMSIZ: usize = 16;

/// `struct ifreq` as the tun driver reads it: interface name followed
/// by a 24-byte union whose first two bytes are `ifr_flags`
/// (native-endian).
#[repr(C)]
pub(crate) struct ifreq {
    pub ifr_name: [u8; IFNAMSIZ],
    pub ifr_ifru: [u8; 24],
}

#[repr(C)]
pub(crate) struct iovec {
    pub iov_base: *mut c_void,
    pub iov_len: usize,
}

#[repr(C)]
pub(crate) struct msghdr {
    pub msg_name: *mut c_void,
    pub msg_namelen: c_uint,
    pub msg_iov: *mut iovec,
    pub msg_iovlen: usize,
    pub msg_control: *mut c_void,
    pub msg_controllen: usize,
    pub msg_flags: c_int,
}

#[repr(C)]
pub(crate) struct mmsghdr {
    pub msg_hdr: msghdr,
    pub msg_len: c_uint,
}

extern "C" {
    pub(crate) fn ioctl(fd: c_int, request: c_ulong, ...) -> c_int;
    pub(crate) fn recvmmsg(
        sockfd: c_int,
        msgvec: *mut mmsghdr,
        vlen: c_uint,
        flags: c_int,
        timeout: *mut c_void,
    ) -> c_int;
}
