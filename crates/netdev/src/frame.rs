//! Ethernet (DIX) framing rules shared by the TAP, framed-loopback, and
//! Ethernet-pcap backends.
//!
//! The rules are deliberately minimal — the router is an IP router, so
//! the L2 boundary does exactly two things:
//!
//! * **Strip on receive:** a frame shorter than the 14-byte header is a
//!   truncated-frame drop; an ethertype other than IPv4/IPv6 is a
//!   non-IP drop. Both are counted device-side and become
//!   [`DropReason::DeviceRx`](router_core::ip_core::DropReason::DeviceRx)
//!   in the conservation ledger. Anything else passes its payload
//!   upward unexamined (IP-level garbage is the IP core's `Malformed`).
//! * **Attach on transmit:** the ethertype comes from the packet's IP
//!   version nibble; a payload with neither version nibble cannot be
//!   framed and is a device-tx error.

/// Length of a DIX Ethernet header (no VLAN tags, no FCS).
pub const ETH_HDR_LEN: usize = 14;

/// Ethertype for IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;

/// Ethertype for IPv6.
pub const ETHERTYPE_IPV6: u16 = 0x86DD;

/// Why a received frame could not be decapsulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Shorter than the Ethernet header.
    Truncated,
    /// Ethertype is neither IPv4 nor IPv6 (ARP, LLDP, VLAN, …).
    NonIp(u16),
}

/// Strip the Ethernet header from a received frame, returning the IP
/// payload.
pub fn strip_ethernet(frame: &[u8]) -> Result<&[u8], FrameError> {
    if frame.len() < ETH_HDR_LEN {
        return Err(FrameError::Truncated);
    }
    let ethertype = u16::from_be_bytes([frame[12], frame[13]]);
    match ethertype {
        ETHERTYPE_IPV4 | ETHERTYPE_IPV6 => Ok(&frame[ETH_HDR_LEN..]),
        other => Err(FrameError::NonIp(other)),
    }
}

/// The ethertype implied by a packet's IP version nibble, or `None` when
/// the payload is not an IP packet (cannot be framed).
pub fn ethertype_of(ip: &[u8]) -> Option<u16> {
    match ip.first().map(|b| b >> 4) {
        Some(4) => Some(ETHERTYPE_IPV4),
        Some(6) => Some(ETHERTYPE_IPV6),
        _ => None,
    }
}

/// Build an Ethernet frame around an IP packet into `out` (cleared
/// first; its capacity is reused across calls). Returns `false` — and
/// leaves `out` empty — when the payload has no IP version nibble.
pub fn attach_ethernet(out: &mut Vec<u8>, dst: &[u8; 6], src: &[u8; 6], ip: &[u8]) -> bool {
    out.clear();
    let Some(ethertype) = ethertype_of(ip) else {
        return false;
    };
    out.extend_from_slice(dst);
    out.extend_from_slice(src);
    out.extend_from_slice(&ethertype.to_be_bytes());
    out.extend_from_slice(ip);
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_v4_and_v6() {
        let v4 = [0x45u8, 0, 0, 20];
        let v6 = [0x60u8, 0, 0, 0];
        let (dst, src) = ([1u8; 6], [2u8; 6]);
        let mut f = Vec::new();
        assert!(attach_ethernet(&mut f, &dst, &src, &v4));
        assert_eq!(u16::from_be_bytes([f[12], f[13]]), ETHERTYPE_IPV4);
        assert_eq!(strip_ethernet(&f).unwrap(), &v4);
        assert!(attach_ethernet(&mut f, &dst, &src, &v6));
        assert_eq!(u16::from_be_bytes([f[12], f[13]]), ETHERTYPE_IPV6);
        assert_eq!(strip_ethernet(&f).unwrap(), &v6);
    }

    #[test]
    fn truncated_and_non_ip_frames_are_errors() {
        assert_eq!(strip_ethernet(&[0u8; 13]), Err(FrameError::Truncated));
        let mut arp = vec![0u8; 14];
        arp[12] = 0x08;
        arp[13] = 0x06;
        assert_eq!(strip_ethernet(&arp), Err(FrameError::NonIp(0x0806)));
    }

    #[test]
    fn unframeable_payload_refused() {
        let mut f = vec![0xffu8; 3];
        assert!(!attach_ethernet(&mut f, &[0; 6], &[0; 6], &[0x15, 0, 0]));
        assert!(f.is_empty());
        assert!(!attach_ethernet(&mut f, &[0; 6], &[0; 6], &[]));
    }
}
