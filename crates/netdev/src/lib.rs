//! # rp-netdev — the real-traffic I/O plane
//!
//! Everything between the data plane and the outside world. The paper's
//! testbed fed its router from ATM device drivers; this crate is the
//! software analogue: pluggable [`NetDev`] backends with batched,
//! pool-integrated receive and transmit, and an [`IoPlane`] driver that
//! binds devices to router interfaces, pumps ingress batches into either
//! data plane, drains egress back to the devices, and keeps an exact
//! wire-to-wire conservation ledger.
//!
//! Backends:
//!
//! * [`loopback::LoopbackDev`] — in-memory queues, for deterministic
//!   tests (optionally with Ethernet framing to exercise the L2 path).
//! * [`udp::UdpDev`] — one UDP socket per router interface carrying raw
//!   IP packets, so two router processes exchange real traffic over
//!   `127.0.0.1` or between hosts. Uses `recvmmsg` batched reads on
//!   Linux with a plain nonblocking-`recv` fallback everywhere.
//! * [`tap::TapDev`] (Linux) — a kernel TAP interface
//!   (`/dev/net/tun`, `IFF_TAP|IFF_NO_PI`) with Ethernet header
//!   strip/attach, so the router forwards between kernel interfaces.
//! * [`pcap::PcapReplayDev`] / [`pcap::PcapCaptureDev`] — a
//!   dependency-free classic-pcap reader/writer (both endiannesses,
//!   `LINKTYPE_RAW` and `LINKTYPE_ETHERNET`): any captured trace becomes
//!   a reproducible workload, and egress can be captured for offline
//!   diffing.
//!
//! The pool contract: ingress frame bytes are copied into mbufs drawn
//! from the *router's* [`MbufPool`] (the devices own fixed scratch
//! buffers), and every transmitted or dropped mbuf is recycled back into
//! that pool — after warm-up the receive path performs zero fresh
//! allocations (gated by `tests/fastpath_alloc.rs`).

#![warn(missing_docs)]

pub mod faulty;
pub mod frame;
pub mod ioplane;
pub mod loopback;
pub mod pcap;
pub mod supervisor;
#[cfg(target_os = "linux")]
mod sys;
pub mod tap;
pub mod udp;

pub use faulty::{FaultHandle, FaultProgram, FaultyDev};
pub use ioplane::{IoLedger, IoPlane, IoRouter};
pub use supervisor::{DeviceMonitor, DeviceSupervisorConfig, PollSample};

use router_core::dataplane::control::DeviceStats;
use rp_packet::pool::MbufPool;
use rp_packet::Mbuf;

/// What one [`NetDev::rx_batch`] call did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RxBatch {
    /// Frames read off the device (delivered + dropped).
    pub frames: u64,
    /// Frames decapsulated and handed to the sink as IP packets.
    pub delivered: u64,
    /// Frames dropped at the device (truncated / non-IP L2 frames) —
    /// the I/O plane counts these as
    /// [`DropReason::DeviceRx`](router_core::ip_core::DropReason::DeviceRx).
    pub dropped: u64,
}

/// A batched, pool-integrated network device.
///
/// The receive side is a *sink* interface: the device reads frames into
/// its own scratch storage, decapsulates them, and hands each resulting
/// IP packet to the caller's closure as a byte slice. The caller (the
/// [`IoPlane`]) copies the slice into a pooled mbuf — the device never
/// allocates per frame, and the router's pool is the single buffer
/// owner on the IP side of the boundary.
///
/// The transmit side takes ownership of a batch of mbufs, frames and
/// writes each, and recycles **every** backing buffer into the supplied
/// pool (transmitted or not) — the "retransmit complete" step of a real
/// driver. I/O errors are counted in the device's [`DeviceStats`], not
/// surfaced per call, so the driver loop stays branch-light.
pub trait NetDev {
    /// Device name for reports (`udp0`, `tap0`, `pcap:replay`, …).
    fn name(&self) -> &str;

    /// Read up to `max` frames, delivering each decapsulated IP packet
    /// to `sink`. Never blocks: returns what is immediately available.
    fn rx_batch(&mut self, max: usize, sink: &mut dyn FnMut(&[u8])) -> RxBatch;

    /// Transmit a batch: drain `pkts`, frame and write each packet, and
    /// recycle every mbuf into `pool`. Returns packets written. Hard
    /// write failures are counted as `tx_errors` in [`NetDev::stats`];
    /// packets shed after bounded backpressure retries (`WouldBlock`)
    /// are counted separately as `tx_dropped`.
    fn tx_batch(&mut self, pkts: &mut Vec<Mbuf>, pool: &mut MbufPool) -> u64;

    /// The device's cumulative I/O counters.
    fn stats(&self) -> DeviceStats;

    /// Tear down and re-establish the device's OS resources — the
    /// supervised recovery path out of quarantine (UDP rebinds and
    /// reconnects its socket, TAP reattaches to the kernel interface;
    /// in-memory backends have nothing to re-establish and use this
    /// default). Counters survive the reopen; only the transport is
    /// rebuilt. Failure re-arms the supervisor's capped backoff.
    fn reopen(&mut self) -> Result<(), NetDevError> {
        Ok(())
    }
}

/// Errors constructing or parsing on the device boundary (steady-state
/// I/O errors are counted in [`DeviceStats`] instead).
#[derive(Debug)]
pub enum NetDevError {
    /// The backend cannot exist in this environment (no `/dev/net/tun`,
    /// no permission, unsupported OS). Tests skip, not fail, on this.
    Unavailable(String),
    /// An I/O error from the OS.
    Io(std::io::Error),
    /// Malformed input (pcap parse errors).
    Format(String),
}

impl std::fmt::Display for NetDevError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetDevError::Unavailable(m) => write!(f, "unavailable: {m}"),
            NetDevError::Io(e) => write!(f, "i/o error: {e}"),
            NetDevError::Format(m) => write!(f, "format error: {m}"),
        }
    }
}

impl std::error::Error for NetDevError {}

impl From<std::io::Error> for NetDevError {
    fn from(e: std::io::Error) -> Self {
        NetDevError::Io(e)
    }
}
