//! Chaos wrapper for [`NetDev`] backends — the device analog of the
//! plugin tier's chaos plugin. Wraps any device and injects faults on
//! command: hard transmit errors, receive stalls, frame drops every Nth
//! frame, and scripted flapping, all driven through a shared
//! [`FaultHandle`] so a test (or the adversarial bench) can flip modes
//! mid-run deterministically.
//!
//! Injected faults are indistinguishable from real ones at the
//! [`DeviceStats`] level — a synthetic tx error counts in `tx_errors`
//! exactly like a failed `send` — so the device supervisor and the
//! conservation ledger exercise their production paths.

use crate::{NetDev, NetDevError, RxBatch};
use router_core::dataplane::control::DeviceStats;
use rp_packet::pool::MbufPool;
use rp_packet::Mbuf;
use std::sync::{Arc, Mutex};

/// The live fault program, shared between the wrapper and the test.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultProgram {
    /// Every transmit write fails hard (counted `tx_errors`).
    pub fail_tx: bool,
    /// The receive side returns nothing (a silent device).
    pub stall_rx: bool,
    /// Drop (and count) every Nth delivered ingress frame; 0 disables.
    pub drop_rx_every: u64,
    /// Fail (and count) every Nth transmitted frame; 0 disables.
    pub fail_tx_every: u64,
    /// A [`NetDev::reopen`] clears `fail_tx` and `stall_rx` — the fault
    /// was "in the handle" and reopening fixed it. Leave false to model
    /// a fault reopening cannot cure (backoff keeps climbing).
    pub heal_on_reopen: bool,
}

/// Shared handle a test keeps to reprogram the faults mid-run.
#[derive(Debug, Clone, Default)]
pub struct FaultHandle(Arc<Mutex<FaultProgram>>);

impl FaultHandle {
    /// Replace the whole program.
    pub fn set(&self, p: FaultProgram) {
        *self.0.lock().unwrap_or_else(|e| e.into_inner()) = p;
    }

    /// Read the current program.
    pub fn get(&self) -> FaultProgram {
        *self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Edit the program in place.
    pub fn update(&self, f: impl FnOnce(&mut FaultProgram)) {
        f(&mut self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

/// A [`NetDev`] that forwards to an inner device, injecting the faults
/// its [`FaultHandle`] currently programs (see module docs).
pub struct FaultyDev {
    inner: Box<dyn NetDev>,
    name: String,
    ctl: FaultHandle,
    /// Injected-fault counters, merged over the inner device's stats.
    synth: DeviceStats,
    /// Frames seen by the rx drop-every-Nth counter.
    rx_seen: u64,
    /// Packets seen by the tx fail-every-Nth counter.
    tx_seen: u64,
    /// Completed reopen calls (observable by tests).
    reopens: u64,
}

impl FaultyDev {
    /// Wrap `inner`; faults start disabled. Returns the device and the
    /// control handle.
    pub fn wrap(inner: Box<dyn NetDev>) -> (FaultyDev, FaultHandle) {
        let ctl = FaultHandle::default();
        let name = format!("faulty:{}", inner.name());
        (
            FaultyDev {
                inner,
                name,
                ctl: ctl.clone(),
                synth: DeviceStats::default(),
                rx_seen: 0,
                tx_seen: 0,
                reopens: 0,
            },
            ctl,
        )
    }

    /// Completed [`NetDev::reopen`] calls on this wrapper.
    pub fn reopens(&self) -> u64 {
        self.reopens
    }
}

impl NetDev for FaultyDev {
    fn name(&self) -> &str {
        &self.name
    }

    fn rx_batch(&mut self, max: usize, sink: &mut dyn FnMut(&[u8])) -> RxBatch {
        let p = self.ctl.get();
        if p.stall_rx {
            return RxBatch::default();
        }
        if p.drop_rx_every == 0 {
            return self.inner.rx_batch(max, sink);
        }
        // Drop every Nth delivered frame: it still counts as a frame off
        // the wire (and a device-rx drop), it just never reaches the
        // sink — exactly what a driver overrun looks like.
        let every = p.drop_rx_every;
        let seen = &mut self.rx_seen;
        let dropped_now = &mut self.synth.rx_dropped;
        let errors_now = &mut self.synth.rx_errors;
        let mut injected = 0u64;
        let mut filtered = |bytes: &[u8]| {
            *seen += 1;
            if (*seen).is_multiple_of(every) {
                injected += 1;
                *dropped_now += 1;
                *errors_now += 1;
            } else {
                sink(bytes);
            }
        };
        let mut r = self.inner.rx_batch(max, &mut filtered);
        r.delivered -= injected;
        r.dropped += injected;
        r
    }

    fn tx_batch(&mut self, pkts: &mut Vec<Mbuf>, pool: &mut MbufPool) -> u64 {
        let p = self.ctl.get();
        if p.fail_tx {
            // Every write fails hard: recycle the batch, count errors.
            let n = pkts.len() as u64;
            for m in pkts.drain(..) {
                pool.recycle(m);
            }
            self.synth.tx_errors += n;
            return 0;
        }
        if p.fail_tx_every == 0 {
            return self.inner.tx_batch(pkts, pool);
        }
        // Fail every Nth packet before it reaches the inner device.
        let every = p.fail_tx_every;
        let mut kept: Vec<Mbuf> = Vec::with_capacity(pkts.len());
        for m in pkts.drain(..) {
            self.tx_seen += 1;
            if self.tx_seen.is_multiple_of(every) {
                self.synth.tx_errors += 1;
                pool.recycle(m);
            } else {
                kept.push(m);
            }
        }
        let sent = self.inner.tx_batch(&mut kept, pool);
        pkts.append(&mut kept);
        sent
    }

    fn stats(&self) -> DeviceStats {
        let mut s = self.inner.stats();
        s.absorb(&self.synth);
        s
    }

    fn reopen(&mut self) -> Result<(), NetDevError> {
        self.reopens += 1;
        if self.ctl.get().heal_on_reopen {
            self.ctl.update(|p| {
                p.fail_tx = false;
                p.stall_rx = false;
            });
        }
        self.inner.reopen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loopback::LoopbackDev;

    fn pair() -> (FaultyDev, FaultHandle, LoopbackDev) {
        let (a, b) = LoopbackDev::pair("a", "b", 32);
        let (f, ctl) = FaultyDev::wrap(Box::new(a));
        (f, ctl, b)
    }

    #[test]
    fn transparent_when_no_faults_programmed() {
        let (mut f, _ctl, mut peer) = pair();
        let mut pool = MbufPool::new(8);
        let mut batch = vec![pool.mbuf_from(&[0x45, 1, 2], 0)];
        assert_eq!(f.tx_batch(&mut batch, &mut pool), 1);
        let mut seen = 0;
        peer.rx_batch(16, &mut |_| seen += 1);
        assert_eq!(seen, 1);
    }

    #[test]
    fn fail_tx_counts_errors_and_recycles() {
        let (mut f, ctl, mut peer) = pair();
        ctl.update(|p| p.fail_tx = true);
        let mut pool = MbufPool::new(8);
        let mut batch = vec![pool.mbuf_from(&[0x45, 1], 0), pool.mbuf_from(&[0x45, 2], 0)];
        assert_eq!(f.tx_batch(&mut batch, &mut pool), 0);
        assert_eq!(f.stats().tx_errors, 2);
        let mut seen = 0;
        peer.rx_batch(16, &mut |_| seen += 1);
        assert_eq!(seen, 0, "failed packets must never reach the wire");
        assert!(
            pool.stats().recycled >= 2,
            "buffers must return to the pool"
        );
    }

    #[test]
    fn drop_rx_every_nth_counts_as_device_drop() {
        let (mut f, ctl, mut peer) = pair();
        ctl.update(|p| p.drop_rx_every = 3);
        let mut pool = MbufPool::new(16);
        let mut batch = (0..9u8).map(|i| pool.mbuf_from(&[0x45, i], 0)).collect();
        assert_eq!(peer.tx_batch(&mut batch, &mut pool), 9);
        let mut seen = 0;
        let r = f.rx_batch(16, &mut |_| seen += 1);
        assert_eq!(r.frames, 9);
        assert_eq!(r.delivered, 6);
        assert_eq!(r.dropped, 3);
        assert_eq!(seen, 6);
        assert_eq!(f.stats().rx_dropped, 3);
    }

    #[test]
    fn stall_and_heal_on_reopen() {
        let (mut f, ctl, mut peer) = pair();
        ctl.update(|p| {
            p.stall_rx = true;
            p.heal_on_reopen = true;
        });
        let mut pool = MbufPool::new(8);
        let mut batch = vec![pool.mbuf_from(&[0x45, 7], 0)];
        assert_eq!(peer.tx_batch(&mut batch, &mut pool), 1);
        assert_eq!(f.rx_batch(16, &mut |_| panic!("stalled")).frames, 0);
        f.reopen().unwrap();
        assert_eq!(f.reopens(), 1);
        let mut seen = 0;
        f.rx_batch(16, &mut |_| seen += 1);
        assert_eq!(seen, 1, "reopen must heal the stall");
    }
}
