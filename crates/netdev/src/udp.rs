//! UDP-socket backend: one datagram socket per router interface, each
//! datagram carrying one raw IPv4/IPv6 packet (`LINKTYPE_RAW`
//! semantics, no L2 header).
//!
//! This is the simplest way to put *real traffic* through the router:
//! two processes bind sockets on `127.0.0.1` (or two hosts bind real
//! addresses), point them at each other, and every packet crosses the
//! kernel's network stack.
//!
//! Receive is batched: on Linux one `recvmmsg` call drains up to
//! [`MMSG_BATCH`] datagrams into preallocated buffers; everywhere else
//! (and on Linux if `recvmmsg` ever fails with `ENOSYS`) a nonblocking
//! `recv` loop provides the same never-blocking semantics one datagram
//! at a time. Either way the datagrams land in scratch storage owned by
//! the device and are handed to the sink as slices — no per-packet
//! allocation.

use std::io::ErrorKind;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};

use crate::{NetDev, NetDevError, RxBatch};
use router_core::dataplane::control::DeviceStats;
use rp_packet::pool::MbufPool;
use rp_packet::Mbuf;

/// Datagrams drained per `recvmmsg` call on Linux.
pub const MMSG_BATCH: usize = 64;
/// Per-datagram scratch size — a full IP packet for any MTU we emit.
/// Datagrams longer than this are *oversize*: the kernel would truncate
/// them to the receive buffer, so they are detected (`MSG_TRUNC` on the
/// `recvmmsg` path, a buffer-filling read on the portable path), counted
/// as receive errors + device drops, and never delivered as mangled
/// packets.
const DGRAM_BUF: usize = 9216;
/// Transmit retries on a full socket buffer (`WouldBlock`) before the
/// packet becomes a counted backpressure drop.
const TX_RETRY: usize = 8;

/// How one packet's transmit attempt(s) ended (see [`tx_with_retry`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TxOutcome {
    /// The write succeeded.
    Sent,
    /// The socket buffer stayed full through every retry — a
    /// backpressure drop (`DeviceStats::tx_dropped`), not an I/O error.
    Backpressure,
    /// The write failed outright (`DeviceStats::tx_errors`).
    Error,
}

/// Drive one packet's send closure with bounded backpressure retries:
/// `WouldBlock` yields and retries up to `retries` times before the
/// packet is declared a backpressure drop; `Interrupted` retries without
/// consuming the budget; any other error is a transmit error. Split from
/// `tx_batch` so the classification is testable without a socket that
/// actually fills.
fn tx_with_retry(mut send: impl FnMut() -> std::io::Result<usize>, retries: usize) -> TxOutcome {
    let mut left = retries;
    loop {
        match send() {
            Ok(_) => return TxOutcome::Sent,
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                if left == 0 {
                    return TxOutcome::Backpressure;
                }
                left -= 1;
                std::thread::yield_now();
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return TxOutcome::Error,
        }
    }
}

/// A UDP-socket [`NetDev`] (see module docs).
pub struct UdpDev {
    name: String,
    sock: UdpSocket,
    /// The resolved bound address, kept for [`NetDev::reopen`]: the
    /// replacement socket must own the *same* port, or peers would keep
    /// sending into a void.
    local: SocketAddr,
    /// The resolved connected peer, reconnected on reopen.
    peer: Option<SocketAddr>,
    stats: DeviceStats,
    #[cfg(target_os = "linux")]
    mmsg: MmsgState,
    #[cfg(target_os = "linux")]
    mmsg_ok: bool,
    scratch: Vec<u8>,
}

impl std::fmt::Debug for UdpDev {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UdpDev").field("name", &self.name).finish()
    }
}

/// Persistent `recvmmsg` arrays — allocated once at construction so
/// the receive path itself never allocates.
#[cfg(target_os = "linux")]
struct MmsgState {
    bufs: Vec<Vec<u8>>,
    // Read only through raw pointers held by `hdrs`; kept alive here.
    #[allow(dead_code)]
    iovecs: Vec<crate::sys::iovec>,
    hdrs: Vec<crate::sys::mmsghdr>,
}

#[cfg(target_os = "linux")]
impl MmsgState {
    fn new() -> MmsgState {
        use crate::sys;
        use std::ptr;
        let mut bufs: Vec<Vec<u8>> = (0..MMSG_BATCH).map(|_| vec![0u8; DGRAM_BUF]).collect();
        let mut iovecs: Vec<sys::iovec> = bufs
            .iter_mut()
            .map(|b| sys::iovec {
                iov_base: b.as_mut_ptr() as *mut _,
                iov_len: b.len(),
            })
            .collect();
        let hdrs = iovecs
            .iter_mut()
            .map(|iov| sys::mmsghdr {
                msg_hdr: sys::msghdr {
                    msg_name: ptr::null_mut(),
                    msg_namelen: 0,
                    msg_iov: iov as *mut sys::iovec,
                    msg_iovlen: 1,
                    msg_control: ptr::null_mut(),
                    msg_controllen: 0,
                    msg_flags: 0,
                },
                msg_len: 0,
            })
            .collect();
        MmsgState { bufs, iovecs, hdrs }
    }
}

impl UdpDev {
    /// Bind `local` and connect the socket to `peer`; the socket is set
    /// nonblocking, so `rx_batch` never waits.
    pub fn connect<A: ToSocketAddrs, B: ToSocketAddrs>(
        name: &str,
        local: A,
        peer: B,
    ) -> Result<UdpDev, NetDevError> {
        let sock = UdpSocket::bind(local)?;
        sock.connect(peer)?;
        sock.set_nonblocking(true)?;
        let local = sock.local_addr()?;
        let peer = sock.peer_addr().ok();
        Ok(UdpDev {
            name: name.to_string(),
            sock,
            local,
            peer,
            stats: DeviceStats::default(),
            #[cfg(target_os = "linux")]
            mmsg: MmsgState::new(),
            #[cfg(target_os = "linux")]
            mmsg_ok: true,
            // One byte beyond the contract size: a read that fills the
            // whole buffer can only be an oversize datagram (possibly
            // truncated by the kernel), never a legitimate DGRAM_BUF-byte
            // one — the portable path's truncation sentinel.
            scratch: vec![0u8; DGRAM_BUF + 1],
        })
    }

    /// The socket's bound local address.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.sock.local_addr()
    }

    /// Re-point the connected peer. Needed to cross-connect two devices
    /// created in sequence (each needs the other's bound port).
    pub fn set_peer<A: ToSocketAddrs>(&mut self, peer: A) -> std::io::Result<()> {
        self.sock.connect(peer)?;
        self.peer = self.sock.peer_addr().ok();
        Ok(())
    }

    /// Drain with one `recvmmsg` call. `Ok((delivered, truncated))`
    /// counts sunk datagrams and oversize ones the kernel truncated
    /// (detected per-message via `MSG_TRUNC` in the output `msg_flags`
    /// and never delivered); `Err` means the syscall itself is unusable
    /// and the caller should fall back to the portable loop permanently.
    #[cfg(target_os = "linux")]
    fn rx_mmsg(&mut self, max: usize, sink: &mut dyn FnMut(&[u8])) -> Result<(u64, u64), ()> {
        use crate::sys;
        use std::os::fd::AsRawFd;
        use std::ptr;

        let vlen = max.min(MMSG_BATCH);
        // msg_flags is also an *output* field: the kernel reports
        // per-message truncation there. Clear stale values first.
        for h in &mut self.mmsg.hdrs[..vlen] {
            h.msg_hdr.msg_flags = 0;
        }
        // SAFETY: hdrs/iovecs were built once over the device's own
        // fixed buffers (never resized after construction, and Vec
        // storage is heap-stable under moves of the device); vlen is
        // within the array length; null timeout means a single
        // nonblocking sweep.
        let n = unsafe {
            sys::recvmmsg(
                self.sock.as_raw_fd(),
                self.mmsg.hdrs.as_mut_ptr(),
                vlen as u32,
                sys::MSG_DONTWAIT,
                ptr::null_mut(),
            )
        };
        if n < 0 {
            let err = std::io::Error::last_os_error();
            return match err.kind() {
                ErrorKind::WouldBlock | ErrorKind::Interrupted => Ok((0, 0)),
                // ENOSYS or anything structural: disable the fast path.
                _ => Err(()),
            };
        }
        let mut delivered = 0u64;
        let mut truncated = 0u64;
        for i in 0..n as usize {
            if self.mmsg.hdrs[i].msg_hdr.msg_flags & sys::MSG_TRUNC != 0 {
                // The tail of this datagram is gone; delivering the
                // remainder would inject a corrupt packet.
                truncated += 1;
                continue;
            }
            let len = self.mmsg.hdrs[i].msg_len as usize;
            sink(&self.mmsg.bufs[i][..len]);
            delivered += 1;
        }
        Ok((delivered, truncated))
    }

    /// Portable nonblocking drain, one `recv` per datagram. Returns
    /// `(delivered, truncated)`: a read filling the whole scratch buffer
    /// (sized one byte past the datagram contract) can only be an
    /// oversize datagram, counted and never delivered.
    fn rx_portable(&mut self, max: usize, sink: &mut dyn FnMut(&[u8])) -> (u64, u64) {
        let mut delivered = 0u64;
        let mut truncated = 0u64;
        while ((delivered + truncated) as usize) < max {
            match self.sock.recv(&mut self.scratch) {
                Ok(len) => {
                    if len == self.scratch.len() {
                        truncated += 1;
                        continue;
                    }
                    sink(&self.scratch[..len]);
                    delivered += 1;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.stats.rx_errors += 1;
                    break;
                }
            }
        }
        (delivered, truncated)
    }
}

impl NetDev for UdpDev {
    fn name(&self) -> &str {
        &self.name
    }

    fn rx_batch(&mut self, max: usize, sink: &mut dyn FnMut(&[u8])) -> RxBatch {
        let mut batch = RxBatch::default();
        let mut count = |(delivered, truncated): (u64, u64), stats: &mut DeviceStats| {
            batch.frames += delivered + truncated;
            batch.delivered += delivered;
            batch.dropped += truncated;
            stats.rx_packets += delivered + truncated;
            // An oversize datagram is both a receive error (the wire
            // carried bytes we could not take) and a device-rx drop the
            // conservation ledger accounts for.
            stats.rx_errors += truncated;
            stats.rx_dropped += truncated;
        };
        let mut bytes = 0u64;
        let mut counting_sink = |p: &[u8]| {
            bytes += p.len() as u64;
            sink(p);
        };
        #[cfg(target_os = "linux")]
        {
            if self.mmsg_ok {
                match self.rx_mmsg(max, &mut counting_sink) {
                    Ok(n) => count(n, &mut self.stats),
                    Err(()) => {
                        self.mmsg_ok = false;
                        let n = self.rx_portable(max, &mut counting_sink);
                        count(n, &mut self.stats);
                    }
                }
            } else {
                let n = self.rx_portable(max, &mut counting_sink);
                count(n, &mut self.stats);
            }
        }
        #[cfg(not(target_os = "linux"))]
        {
            let n = self.rx_portable(max, &mut counting_sink);
            count(n, &mut self.stats);
        }
        self.stats.rx_bytes += bytes;
        self.stats.rx_batch.observe(batch.frames);
        batch
    }

    fn tx_batch(&mut self, pkts: &mut Vec<Mbuf>, pool: &mut MbufPool) -> u64 {
        let mut written = 0;
        for m in pkts.drain(..) {
            match tx_with_retry(|| self.sock.send(m.data()), TX_RETRY) {
                TxOutcome::Sent => {
                    self.stats.tx_packets += 1;
                    self.stats.tx_bytes += m.len() as u64;
                    written += 1;
                }
                TxOutcome::Backpressure => self.stats.tx_dropped += 1,
                TxOutcome::Error => self.stats.tx_errors += 1,
            }
            pool.recycle(m);
        }
        self.stats.tx_batch.observe(written);
        written
    }

    fn stats(&self) -> DeviceStats {
        self.stats
    }

    /// Rebind the stored local address and reconnect to the stored peer
    /// — the full UDP transport rebuilt from scratch. The old socket is
    /// swapped for an ephemeral placeholder first so the port is free to
    /// rebind; if the rebind fails, the stored `local` stays
    /// authoritative and the next attempt retries the same port.
    fn reopen(&mut self) -> Result<(), NetDevError> {
        use std::net::Ipv4Addr;
        // Release the port (dropping the old socket) while keeping
        // `self.sock` a valid socket whatever happens below.
        self.sock = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0))?;
        let sock = UdpSocket::bind(self.local)?;
        if let Some(peer) = self.peer {
            sock.connect(peer)?;
        }
        sock.set_nonblocking(true)?;
        self.sock = sock;
        #[cfg(target_os = "linux")]
        {
            // A fresh fd earns another shot at the batched receive path.
            self.mmsg_ok = true;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datagrams_cross_a_socket_pair() {
        let mut a = UdpDev::connect("a", "127.0.0.1:0", "127.0.0.1:9").unwrap();
        let a_addr = a.local_addr().unwrap();
        let mut b = UdpDev::connect("b", "127.0.0.1:0", a_addr).unwrap();
        let b_addr = b.local_addr().unwrap();
        a.sock.connect(b_addr).unwrap();

        let mut pool = MbufPool::new(8);
        let mut batch = vec![
            pool.mbuf_from(&[0x45, 1, 2], 0),
            pool.mbuf_from(&[0x60, 3], 0),
        ];
        assert_eq!(a.tx_batch(&mut batch, &mut pool), 2);

        let mut seen = Vec::new();
        // Nonblocking: poll until the kernel delivers both datagrams.
        for _ in 0..200 {
            b.rx_batch(16, &mut |p| seen.push(p.to_vec()));
            if seen.len() == 2 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(seen, vec![vec![0x45, 1, 2], vec![0x60, 3]]);
        assert_eq!(b.stats().rx_packets, 2);
    }

    #[test]
    fn reopen_keeps_port_and_still_receives() {
        let mut a = UdpDev::connect("a", "127.0.0.1:0", "127.0.0.1:9").unwrap();
        let addr = a.local_addr().unwrap();
        a.reopen().unwrap();
        assert_eq!(a.local_addr().unwrap(), addr, "reopen must keep the port");

        let sender = std::net::UdpSocket::bind("127.0.0.1:0").unwrap();
        a.set_peer(sender.local_addr().unwrap()).unwrap();
        sender.send_to(&[0x45, 9, 9], addr).unwrap();
        let mut seen = Vec::new();
        for _ in 0..200 {
            a.rx_batch(16, &mut |p| seen.push(p.to_vec()));
            if !seen.is_empty() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(seen, vec![vec![0x45, 9, 9]]);
    }

    #[test]
    fn empty_socket_returns_immediately() {
        let mut a = UdpDev::connect("a", "127.0.0.1:0", "127.0.0.1:9").unwrap();
        let r = a.rx_batch(16, &mut |_p| panic!("no data expected"));
        assert_eq!(r, RxBatch::default());
    }

    /// Send one oversize (> DGRAM_BUF) and one normal datagram into
    /// `dev` and poll until both frames are accounted. Asserts the
    /// oversize one is counted (rx_errors + rx_dropped + batch.dropped)
    /// and never delivered, while the normal one arrives intact.
    fn oversize_roundtrip(mut dev: UdpDev) {
        let sender = std::net::UdpSocket::bind("127.0.0.1:0").unwrap();
        let dev_addr = dev.local_addr().unwrap();
        dev.set_peer(sender.local_addr().unwrap()).unwrap();
        sender.send_to(&vec![0x45u8; 20_000], dev_addr).unwrap();
        sender.send_to(&[0x45, 1, 2, 3], dev_addr).unwrap();

        let mut seen = Vec::new();
        let mut frames = 0u64;
        let mut dropped = 0u64;
        for _ in 0..200 {
            let r = dev.rx_batch(16, &mut |p| seen.push(p.to_vec()));
            frames += r.frames;
            dropped += r.dropped;
            if frames == 2 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(frames, 2, "both datagrams must be accounted as frames");
        assert_eq!(dropped, 1, "the oversize datagram must be a counted drop");
        assert_eq!(
            seen,
            vec![vec![0x45, 1, 2, 3]],
            "a truncated datagram must never reach the sink"
        );
        let st = dev.stats();
        assert_eq!(st.rx_packets, 2);
        assert_eq!(st.rx_errors, 1);
        assert_eq!(st.rx_dropped, 1);
    }

    #[test]
    fn oversize_datagram_is_dropped_not_delivered() {
        // Default receive path (recvmmsg on Linux, portable elsewhere).
        let dev = UdpDev::connect("rx", "127.0.0.1:0", "127.0.0.1:9").unwrap();
        oversize_roundtrip(dev);
    }

    #[test]
    fn oversize_datagram_detected_on_portable_path() {
        #[allow(unused_mut)]
        let mut dev = UdpDev::connect("rx", "127.0.0.1:0", "127.0.0.1:9").unwrap();
        // Force the portable recv loop (the non-Linux default) so the
        // scratch-sentinel detection is exercised on Linux too.
        #[cfg(target_os = "linux")]
        {
            dev.mmsg_ok = false;
        }
        oversize_roundtrip(dev);
    }

    #[test]
    fn tx_retry_classifies_backpressure_and_errors() {
        use std::io::{Error, ErrorKind};

        // Persistent WouldBlock: initial attempt + `retries` more, then a
        // backpressure drop (not a generic error).
        let mut calls = 0;
        let r = tx_with_retry(
            || {
                calls += 1;
                Err(Error::from(ErrorKind::WouldBlock))
            },
            3,
        );
        assert_eq!(r, TxOutcome::Backpressure);
        assert_eq!(calls, 4);

        // Transient WouldBlock: a retry delivers the packet.
        let mut calls = 0;
        let r = tx_with_retry(
            || {
                calls += 1;
                if calls < 3 {
                    Err(Error::from(ErrorKind::WouldBlock))
                } else {
                    Ok(1)
                }
            },
            TX_RETRY,
        );
        assert_eq!(r, TxOutcome::Sent);

        // A hard error is classified immediately, without retries.
        let mut calls = 0;
        let r = tx_with_retry(
            || {
                calls += 1;
                Err(Error::from(ErrorKind::PermissionDenied))
            },
            TX_RETRY,
        );
        assert_eq!(r, TxOutcome::Error);
        assert_eq!(calls, 1);

        // Interrupted retries without consuming the backpressure budget.
        let mut calls = 0;
        let r = tx_with_retry(
            || {
                calls += 1;
                if calls <= 5 {
                    Err(Error::from(ErrorKind::Interrupted))
                } else {
                    Ok(1)
                }
            },
            0,
        );
        assert_eq!(r, TxOutcome::Sent);
    }
}
