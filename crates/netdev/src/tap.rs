//! Linux TAP backend: a kernel-side Ethernet interface whose frames
//! are delivered to (and accepted from) this process through
//! `/dev/net/tun`.
//!
//! [`TapDev::open`] opens the clone device, attaches it to a named
//! interface with `TUNSETIFF` (`IFF_TAP | IFF_NO_PI`, so reads and
//! writes are bare Ethernet frames), and sets the fd nonblocking. The
//! receive path strips Ethernet headers (truncated / non-IP frames —
//! the kernel will happily send us ARP and IPv6 ND — become device-rx
//! drops); the transmit path attaches a header using synthetic MACs.
//!
//! Opening requires `CAP_NET_ADMIN` and an existing `/dev/net/tun`;
//! when either is missing `open` returns [`NetDevError::Unavailable`]
//! and the tests **skip** rather than fail — CI containers without the
//! device stay green.
//!
//! On non-Linux platforms the type exists but `open` always returns
//! `Unavailable`, keeping callers portable without `cfg` noise.

use crate::{NetDev, NetDevError, RxBatch};
use router_core::dataplane::control::DeviceStats;
use rp_packet::pool::MbufPool;
use rp_packet::Mbuf;

/// MAC address the router uses as source on transmitted frames.
pub const TAP_LOCAL_MAC: [u8; 6] = [0x02, 0, 0, 0, 0, 0x11];
/// MAC address frames are addressed to (the kernel side accepts any).
pub const TAP_PEER_MAC: [u8; 6] = [0x02, 0, 0, 0, 0, 0x12];

/// Maximum Ethernet frame we read in one go.
const FRAME_BUF: usize = 9230;

/// A TAP-interface [`NetDev`] (see module docs).
#[derive(Debug)]
pub struct TapDev {
    name: String,
    #[cfg(target_os = "linux")]
    file: std::fs::File,
    rx_scratch: Vec<u8>,
    tx_scratch: Vec<u8>,
    stats: DeviceStats,
}

#[cfg(target_os = "linux")]
impl TapDev {
    /// Open `/dev/net/tun` and attach it to the TAP interface `ifname`
    /// (created if absent, requires `CAP_NET_ADMIN`).
    pub fn open(ifname: &str) -> Result<TapDev, NetDevError> {
        use crate::sys;
        use std::os::fd::AsRawFd;

        if ifname.len() >= sys::IFNAMSIZ {
            return Err(NetDevError::Unavailable(format!(
                "interface name too long: {ifname}"
            )));
        }
        let file = match std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open("/dev/net/tun")
        {
            Ok(f) => f,
            Err(e) => {
                return Err(NetDevError::Unavailable(format!(
                    "cannot open /dev/net/tun: {e}"
                )))
            }
        };

        let mut req = sys::ifreq {
            ifr_name: [0u8; sys::IFNAMSIZ],
            ifr_ifru: [0u8; 24],
        };
        req.ifr_name[..ifname.len()].copy_from_slice(ifname.as_bytes());
        let flags = sys::IFF_TAP | sys::IFF_NO_PI;
        req.ifr_ifru[..2].copy_from_slice(&flags.to_ne_bytes());
        // SAFETY: TUNSETIFF reads a properly initialised ifreq; the fd
        // is a freshly opened tun clone device we own.
        let rc = unsafe { sys::ioctl(file.as_raw_fd(), sys::TUNSETIFF, &mut req) };
        if rc < 0 {
            return Err(NetDevError::Unavailable(format!(
                "TUNSETIFF({ifname}) failed: {}",
                std::io::Error::last_os_error()
            )));
        }
        let mut nb: i32 = 1;
        // SAFETY: FIONBIO reads one int; fd is ours.
        let rc = unsafe { sys::ioctl(file.as_raw_fd(), sys::FIONBIO, &mut nb) };
        if rc < 0 {
            return Err(NetDevError::Io(std::io::Error::last_os_error()));
        }

        Ok(TapDev {
            name: ifname.to_string(),
            file,
            rx_scratch: vec![0u8; FRAME_BUF],
            tx_scratch: Vec::with_capacity(FRAME_BUF),
            stats: DeviceStats::default(),
        })
    }
}

#[cfg(not(target_os = "linux"))]
impl TapDev {
    /// TAP interfaces are Linux-only; always returns `Unavailable`.
    pub fn open(ifname: &str) -> Result<TapDev, NetDevError> {
        Err(NetDevError::Unavailable(format!(
            "TAP ({ifname}) requires Linux /dev/net/tun"
        )))
    }
}

impl NetDev for TapDev {
    fn name(&self) -> &str {
        &self.name
    }

    #[cfg(target_os = "linux")]
    fn rx_batch(&mut self, max: usize, sink: &mut dyn FnMut(&[u8])) -> RxBatch {
        use std::io::Read;

        let mut batch = RxBatch::default();
        while (batch.frames as usize) < max {
            match self.file.read(&mut self.rx_scratch) {
                Ok(len) => {
                    batch.frames += 1;
                    self.stats.rx_packets += 1;
                    self.stats.rx_bytes += len as u64;
                    match crate::frame::strip_ethernet(&self.rx_scratch[..len]) {
                        Ok(p) => {
                            sink(p);
                            batch.delivered += 1;
                        }
                        Err(_) => {
                            batch.dropped += 1;
                            self.stats.rx_dropped += 1;
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.stats.rx_errors += 1;
                    break;
                }
            }
        }
        self.stats.rx_batch.observe(batch.frames);
        batch
    }

    #[cfg(not(target_os = "linux"))]
    fn rx_batch(&mut self, _max: usize, _sink: &mut dyn FnMut(&[u8])) -> RxBatch {
        let _ = &self.rx_scratch;
        RxBatch::default()
    }

    #[cfg(target_os = "linux")]
    fn tx_batch(&mut self, pkts: &mut Vec<Mbuf>, pool: &mut MbufPool) -> u64 {
        use std::io::Write;

        let mut written = 0;
        for m in pkts.drain(..) {
            let framed = crate::frame::attach_ethernet(
                &mut self.tx_scratch,
                &TAP_PEER_MAC,
                &TAP_LOCAL_MAC,
                m.data(),
            );
            if framed && self.file.write(&self.tx_scratch).is_ok() {
                self.stats.tx_packets += 1;
                self.stats.tx_bytes += m.len() as u64;
                written += 1;
            } else {
                self.stats.tx_errors += 1;
            }
            pool.recycle(m);
        }
        self.stats.tx_batch.observe(written);
        written
    }

    #[cfg(not(target_os = "linux"))]
    fn tx_batch(&mut self, pkts: &mut Vec<Mbuf>, pool: &mut MbufPool) -> u64 {
        let _ = &self.tx_scratch;
        for m in pkts.drain(..) {
            self.stats.tx_errors += 1;
            pool.recycle(m);
        }
        0
    }

    fn stats(&self) -> DeviceStats {
        self.stats
    }

    /// Reattach to the kernel interface: a fresh `/dev/net/tun` clone fd
    /// bound to the same interface name replaces the old one (which is
    /// closed on drop). Counters survive; only the fd is rebuilt.
    #[cfg(target_os = "linux")]
    fn reopen(&mut self) -> Result<(), NetDevError> {
        let fresh = TapDev::open(&self.name)?;
        self.file = fresh.file;
        Ok(())
    }

    #[cfg(not(target_os = "linux"))]
    fn reopen(&mut self) -> Result<(), NetDevError> {
        Err(NetDevError::Unavailable(format!(
            "TAP ({}) requires Linux /dev/net/tun",
            self.name
        )))
    }
}
