//! In-memory loopback device pair, for deterministic tests.
//!
//! [`LoopbackDev::pair`] makes two cross-connected devices: what one
//! transmits the other receives, in order. Each direction is a bounded
//! queue plus a freelist of recycled buffers, so at steady state the
//! pair shuttles packets with **zero fresh allocations** — the same
//! closed-loop discipline as the router's own [`MbufPool`], which lets
//! the loopback ride under the `tests/fastpath_alloc.rs` gate.
//!
//! With [`LoopbackDev::pair_framed`] the wire carries Ethernet frames
//! (synthetic MACs): transmit attaches a header, receive strips it, and
//! undecodable frames injected via [`LoopbackHandle`] become device-rx
//! drops — the deterministic way to exercise the L2 error path.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use crate::frame;
use crate::{NetDev, RxBatch};
use router_core::dataplane::control::DeviceStats;
use rp_packet::pool::MbufPool;
use rp_packet::Mbuf;

/// One direction of the wire: queued frames plus a buffer freelist.
#[derive(Debug)]
struct Wire {
    queue: VecDeque<Vec<u8>>,
    freelist: Vec<Vec<u8>>,
    capacity: usize,
}

impl Wire {
    fn new(capacity: usize) -> Wire {
        Wire {
            queue: VecDeque::with_capacity(capacity),
            freelist: Vec::with_capacity(capacity),
            capacity,
        }
    }

    fn buffer(&mut self) -> Vec<u8> {
        self.freelist.pop().unwrap_or_default()
    }

    /// Queue `bytes` (copied into a recycled buffer). False when full.
    fn push(&mut self, bytes: &[u8]) -> bool {
        if self.queue.len() >= self.capacity {
            return false;
        }
        let mut buf = self.buffer();
        buf.clear();
        buf.extend_from_slice(bytes);
        self.queue.push_back(buf);
        true
    }

    fn recycle(&mut self, mut buf: Vec<u8>) {
        if self.freelist.len() < self.capacity {
            buf.clear();
            self.freelist.push(buf);
        }
    }
}

type SharedWire = Arc<Mutex<Wire>>;

/// MAC address synthesised for loopback endpoint `a`.
pub const LOOPBACK_MAC_A: [u8; 6] = [0x02, 0, 0, 0, 0, 0x0a];
/// MAC address synthesised for loopback endpoint `b`.
pub const LOOPBACK_MAC_B: [u8; 6] = [0x02, 0, 0, 0, 0, 0x0b];

/// One endpoint of an in-memory wire (see module docs).
#[derive(Debug)]
pub struct LoopbackDev {
    name: String,
    rx: SharedWire,
    tx: SharedWire,
    framed: bool,
    mac_local: [u8; 6],
    mac_peer: [u8; 6],
    scratch: Vec<u8>,
    stats: DeviceStats,
}

impl LoopbackDev {
    /// Build a cross-connected pair carrying raw IP packets. `capacity`
    /// bounds each direction's in-flight queue.
    pub fn pair(name_a: &str, name_b: &str, capacity: usize) -> (LoopbackDev, LoopbackDev) {
        Self::build_pair(name_a, name_b, capacity, false)
    }

    /// Build a cross-connected pair carrying Ethernet frames.
    pub fn pair_framed(name_a: &str, name_b: &str, capacity: usize) -> (LoopbackDev, LoopbackDev) {
        Self::build_pair(name_a, name_b, capacity, true)
    }

    fn build_pair(
        name_a: &str,
        name_b: &str,
        capacity: usize,
        framed: bool,
    ) -> (LoopbackDev, LoopbackDev) {
        let a_to_b: SharedWire = Arc::new(Mutex::new(Wire::new(capacity)));
        let b_to_a: SharedWire = Arc::new(Mutex::new(Wire::new(capacity)));
        let a = LoopbackDev {
            name: name_a.to_string(),
            rx: Arc::clone(&b_to_a),
            tx: Arc::clone(&a_to_b),
            framed,
            mac_local: LOOPBACK_MAC_A,
            mac_peer: LOOPBACK_MAC_B,
            scratch: Vec::new(),
            stats: DeviceStats::default(),
        };
        let b = LoopbackDev {
            name: name_b.to_string(),
            rx: a_to_b,
            tx: b_to_a,
            framed,
            mac_local: LOOPBACK_MAC_B,
            mac_peer: LOOPBACK_MAC_A,
            scratch: Vec::new(),
            stats: DeviceStats::default(),
        };
        (a, b)
    }

    /// A raw handle onto this device's wires, letting tests inject
    /// arbitrary frames into the receive side and drain the transmit
    /// side without a peer device.
    pub fn handle(&self) -> LoopbackHandle {
        LoopbackHandle {
            rx: Arc::clone(&self.rx),
            tx: Arc::clone(&self.tx),
        }
    }
}

/// Test-side access to a [`LoopbackDev`]'s wires.
#[derive(Debug, Clone)]
pub struct LoopbackHandle {
    rx: SharedWire,
    tx: SharedWire,
}

impl LoopbackHandle {
    /// Inject raw wire bytes into the device's receive queue. Returns
    /// `false` when the queue is full.
    pub fn inject(&self, bytes: &[u8]) -> bool {
        self.rx.lock().unwrap().push(bytes)
    }

    /// Pop one transmitted wire frame, if any.
    pub fn drain_tx(&self) -> Option<Vec<u8>> {
        self.tx.lock().unwrap().queue.pop_front()
    }

    /// Frames currently queued toward the device.
    pub fn rx_pending(&self) -> usize {
        self.rx.lock().unwrap().queue.len()
    }
}

impl NetDev for LoopbackDev {
    fn name(&self) -> &str {
        &self.name
    }

    fn rx_batch(&mut self, max: usize, sink: &mut dyn FnMut(&[u8])) -> RxBatch {
        let mut batch = RxBatch::default();
        let mut wire = self.rx.lock().unwrap();
        while (batch.frames as usize) < max {
            let Some(buf) = wire.queue.pop_front() else {
                break;
            };
            batch.frames += 1;
            self.stats.rx_packets += 1;
            self.stats.rx_bytes += buf.len() as u64;
            if self.framed {
                match frame::strip_ethernet(&buf) {
                    Ok(p) => {
                        sink(p);
                        batch.delivered += 1;
                    }
                    Err(_) => {
                        batch.dropped += 1;
                        self.stats.rx_dropped += 1;
                    }
                }
            } else {
                sink(&buf);
                batch.delivered += 1;
            }
            wire.recycle(buf);
        }
        self.stats.rx_batch.observe(batch.frames);
        batch
    }

    fn tx_batch(&mut self, pkts: &mut Vec<Mbuf>, pool: &mut MbufPool) -> u64 {
        let mut written = 0;
        let mut wire = self.tx.lock().unwrap();
        for m in pkts.drain(..) {
            let ok = if self.framed {
                frame::attach_ethernet(&mut self.scratch, &self.mac_peer, &self.mac_local, m.data())
                    && wire.push(&self.scratch)
            } else {
                wire.push(m.data())
            };
            if ok {
                self.stats.tx_packets += 1;
                self.stats.tx_bytes += m.len() as u64;
                written += 1;
            } else {
                self.stats.tx_errors += 1;
            }
            pool.recycle(m);
        }
        self.stats.tx_batch.observe(written);
        written
    }

    fn stats(&self) -> DeviceStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_pair_carries_packets_in_order() {
        let (mut a, mut b) = LoopbackDev::pair("a", "b", 8);
        let mut pool = MbufPool::new(8);
        let mut batch = vec![pool.mbuf_from(&[0x45, 1], 0), pool.mbuf_from(&[0x45, 2], 0)];
        assert_eq!(a.tx_batch(&mut batch, &mut pool), 2);
        let mut seen = Vec::new();
        let r = b.rx_batch(16, &mut |p| seen.push(p.to_vec()));
        assert_eq!((r.frames, r.delivered, r.dropped), (2, 2, 0));
        assert_eq!(seen, vec![vec![0x45, 1], vec![0x45, 2]]);
    }

    #[test]
    fn framed_pair_strips_and_drops_garbage() {
        let (mut a, mut b) = LoopbackDev::pair_framed("a", "b", 8);
        let mut pool = MbufPool::new(8);
        let mut batch = vec![pool.mbuf_from(&[0x60, 9], 0)];
        assert_eq!(a.tx_batch(&mut batch, &mut pool), 1);
        b.handle().inject(&[0xde, 0xad]); // truncated frame
        let mut seen = Vec::new();
        let r = b.rx_batch(16, &mut |p| seen.push(p.to_vec()));
        assert_eq!((r.frames, r.delivered, r.dropped), (2, 1, 1));
        assert_eq!(seen, vec![vec![0x60, 9]]);
        assert_eq!(b.stats().rx_dropped, 1);
    }

    #[test]
    fn full_queue_counts_tx_errors() {
        let (mut a, _b) = LoopbackDev::pair("a", "b", 1);
        let mut pool = MbufPool::new(8);
        let mut batch = vec![pool.mbuf_from(&[0x45, 1], 0), pool.mbuf_from(&[0x45, 2], 0)];
        assert_eq!(a.tx_batch(&mut batch, &mut pool), 1);
        assert_eq!(a.stats().tx_errors, 1);
        assert!(batch.is_empty());
        assert_eq!(pool.free_len(), 2);
    }

    #[test]
    fn steady_state_wire_reuses_buffers() {
        let (mut a, mut b) = LoopbackDev::pair("a", "b", 8);
        let mut pool = MbufPool::new(8);
        // Warm up one full cycle so the freelists are primed.
        for _ in 0..3 {
            let mut batch = vec![pool.mbuf_from(&[0x45, 0, 1, 2], 0)];
            a.tx_batch(&mut batch, &mut pool);
            b.rx_batch(16, &mut |_p| {});
        }
        let fresh_before = pool.stats().fresh;
        for _ in 0..100 {
            let mut batch = vec![pool.mbuf_from(&[0x45, 0, 1, 2], 0)];
            a.tx_batch(&mut batch, &mut pool);
            b.rx_batch(16, &mut |_p| {});
        }
        assert_eq!(pool.stats().fresh, fresh_before);
    }
}
