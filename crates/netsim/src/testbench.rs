//! The measurement harness: plays a workload through a router
//! configuration and reports per-packet cost — the software analogue of
//! the paper's device-driver cycle-counter timestamps ("we added a time
//! stamp function into the ATM device driver which timestamped every
//! incoming packet … compared to the CPU cycle counter right before the
//! packet was output").

use crate::traffic::Workload;
use router_core::ip_core::Disposition;
use router_core::monolithic::{AltqDrrRouter, BestEffortRouter};
use router_core::{ParallelRouter, Router};
use rp_packet::Mbuf;
use std::time::Instant;

/// Results of one measured run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunStats {
    /// Packets offered.
    pub packets: u64,
    /// Packets forwarded/queued.
    pub forwarded: u64,
    /// Packets dropped.
    pub dropped: u64,
    /// Total processing wall time (ns) across all packets.
    pub total_ns: u64,
    /// Flow-cache hits (0 for routers without one).
    pub cache_hits: u64,
    /// Flow-cache misses.
    pub cache_misses: u64,
}

impl RunStats {
    /// Mean per-packet cost in nanoseconds.
    pub fn ns_per_packet(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.packets as f64
        }
    }

    /// Throughput in packets per second implied by the mean cost.
    pub fn packets_per_sec(&self) -> f64 {
        if self.total_ns == 0 {
            0.0
        } else {
            self.packets as f64 * 1e9 / self.total_ns as f64
        }
    }

    /// Cycles per packet at a given clock (the paper reports a 233 MHz
    /// P6; pass `233_000_000.0` to convert into its units).
    pub fn cycles_per_packet(&self, clock_hz: f64) -> f64 {
        self.ns_per_packet() * clock_hz / 1e9
    }
}

/// Results of one run through a sharded parallel data plane.
///
/// On a one-core-per-shard deployment each shard's `busy_ns` is the CPU
/// time that core spends, and the shards run concurrently — so the rate
/// the array sustains is bounded by its *critical path*, the busiest
/// shard. [`aggregate_pps`](ParallelRunStats::aggregate_pps) reports
/// exactly that (packets ÷ max shard busy time). Wall-clock time on the
/// measurement host is also recorded, but on a host with fewer cores
/// than shards the threads time-slice one CPU and wall time measures the
/// host, not the architecture.
#[derive(Debug, Clone, Default)]
pub struct ParallelRunStats {
    /// Packets offered.
    pub packets: u64,
    /// Packets forwarded/queued (merged across shards).
    pub forwarded: u64,
    /// Packets dropped (merged across shards, all reasons).
    pub dropped: u64,
    /// Wall-clock time for the whole run on the measurement host (ns).
    pub wall_ns: u64,
    /// Busiest shard's packet-processing CPU time (ns) — the critical
    /// path of a one-core-per-shard array.
    pub max_shard_busy_ns: u64,
    /// Sum of all shards' packet-processing CPU time (ns).
    pub total_busy_ns: u64,
    /// Packets processed per shard (dispatch balance).
    pub shard_packets: Vec<u64>,
    /// Busy time per shard (ns).
    pub shard_busy_ns: Vec<u64>,
}

impl ParallelRunStats {
    /// Aggregate throughput (packets/s) sustained by a one-core-per-shard
    /// array: total packets divided by the busiest shard's CPU time.
    pub fn aggregate_pps(&self) -> f64 {
        if self.max_shard_busy_ns == 0 {
            0.0
        } else {
            self.packets as f64 * 1e9 / self.max_shard_busy_ns as f64
        }
    }

    /// Mean per-packet CPU cost across all shards (ns) — comparable to
    /// [`RunStats::ns_per_packet`] on the single-threaded router.
    pub fn ns_per_packet(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.total_busy_ns as f64 / self.packets as f64
        }
    }

    /// Largest shard load divided by the mean shard load (1.0 = perfectly
    /// even dispatch).
    pub fn balance_ratio(&self) -> f64 {
        if self.shard_packets.is_empty() {
            return 1.0;
        }
        let max = self.shard_packets.iter().copied().max().unwrap_or(0) as f64;
        let mean = self.packets as f64 / self.shard_packets.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

/// Take (and reset) a router's observability snapshot after a measured
/// run, so successive runs on one router report per-run metrics rather
/// than cumulative ones. Queue-depth gauges are sampled at the drain
/// point.
pub fn drain_metrics(router: &mut Router) -> router_core::MetricsSnapshot {
    router.take_metrics()
}

/// The testbench: replays workloads and accumulates statistics.
pub struct Testbench {
    /// Prebuilt packet sequence (built once; cloned per repetition).
    packets: Vec<Mbuf>,
}

impl Testbench {
    /// Build from a workload.
    pub fn new(workload: &Workload) -> Self {
        Testbench {
            packets: workload.build(),
        }
    }

    /// The prebuilt packet sequence (one rep of the workload).
    pub fn packets(&self) -> &[Mbuf] {
        &self.packets
    }

    /// Serialize the workload as a classic pcap capture, so any
    /// testbench traffic doubles as a replayable trace for the I/O
    /// plane (`linktype` is `LINKTYPE_RAW` for bare IP records or
    /// `LINKTYPE_ETHERNET` to wrap each packet in a synthetic Ethernet
    /// frame). Record timestamps are synthetic: packet `i` is stamped
    /// `i` microseconds from zero, preserving order.
    pub fn record_pcap(&self, linktype: u32, big_endian: bool) -> Vec<u8> {
        let mut w = rp_netdev::pcap::PcapWriter::new(linktype, big_endian);
        let mut frame = Vec::new();
        for (i, pkt) in self.packets.iter().enumerate() {
            let (ts_sec, ts_usec) = ((i / 1_000_000) as u32, (i % 1_000_000) as u32);
            if linktype == rp_netdev::pcap::LINKTYPE_ETHERNET {
                if rp_netdev::frame::attach_ethernet(
                    &mut frame,
                    &rp_netdev::pcap::CAPTURE_DST_MAC,
                    &rp_netdev::pcap::CAPTURE_SRC_MAC,
                    pkt.data(),
                ) {
                    w.push(ts_sec, ts_usec, &frame);
                }
            } else {
                w.push(ts_sec, ts_usec, pkt.data());
            }
        }
        w.into_bytes()
    }

    /// Replay through the plugin router `reps` times; the scheduling gate
    /// is drained (`pump`) after each packet, mirroring the testbed's
    /// immediate retransmission on the output ATM port.
    pub fn run_router(&self, router: &mut Router, reps: usize) -> RunStats {
        let mut stats = RunStats::default();
        let h0 = router.flow_stats();
        for _ in 0..reps {
            for pkt in &self.packets {
                let m = pkt.clone();
                let t0 = Instant::now();
                let d = router.receive(m);
                let queued_if = match d {
                    Disposition::Queued(i) => Some(i),
                    _ => None,
                };
                if let Some(i) = queued_if {
                    router.pump(i, 1);
                }
                stats.total_ns += t0.elapsed().as_nanos() as u64;
                stats.packets += 1;
                match d {
                    Disposition::Forwarded(_) | Disposition::Queued(_) => stats.forwarded += 1,
                    Disposition::Dropped(_) => stats.dropped += 1,
                    Disposition::Consumed(_) => {}
                }
            }
            // Clear tx logs so memory stays bounded across reps.
            for i in 0..router.interface_count() {
                router.take_tx(i as u32);
            }
        }
        let h1 = router.flow_stats();
        stats.cache_hits = h1.hits - h0.hits;
        stats.cache_misses = h1.misses - h0.misses;
        stats
    }

    /// [`run_router`](Testbench::run_router) on the zero-allocation fast
    /// path: ingress mbufs are built from the router's buffer pool
    /// ([`Router::mbuf_with`]) instead of cloned, and transmitted packets
    /// are handed back to the pool after each repetition — the driver
    /// loop of a real port. After pool warm-up no per-packet heap
    /// allocation remains on this path.
    pub fn run_router_pooled(&self, router: &mut Router, reps: usize) -> RunStats {
        let mut stats = RunStats::default();
        let h0 = router.flow_stats();
        let mut done: Vec<Mbuf> = Vec::new();
        for _ in 0..reps {
            for pkt in &self.packets {
                let m = router.mbuf_with(pkt.data(), pkt.rx_if);
                let t0 = Instant::now();
                let d = router.receive(m);
                if let Disposition::Queued(i) = d {
                    router.pump(i, 1);
                }
                stats.total_ns += t0.elapsed().as_nanos() as u64;
                stats.packets += 1;
                match d {
                    Disposition::Forwarded(_) | Disposition::Queued(_) => stats.forwarded += 1,
                    Disposition::Dropped(_) => stats.dropped += 1,
                    Disposition::Consumed(_) => {}
                }
            }
            // The driver's retransmit-complete step: return transmitted
            // buffers to the pool instead of freeing them.
            for i in 0..router.interface_count() {
                router.take_tx_into(i as u32, &mut done);
                for m in done.drain(..) {
                    router.recycle_mbuf(m);
                }
            }
        }
        let h1 = router.flow_stats();
        stats.cache_hits = h1.hits - h0.hits;
        stats.cache_misses = h1.misses - h0.misses;
        stats
    }

    /// Replay through a sharded parallel data plane `reps` times.
    ///
    /// Dispatch is flow-affine (`flow_hash % shards`) inside
    /// [`ParallelRouter::receive`]; the run is quiesced with a barrier
    /// [`flush`](ParallelRouter::flush) before counters are read, and tx
    /// logs are drained after each rep so memory stays bounded.
    pub fn run_parallel(&self, router: &mut ParallelRouter, reps: usize) -> ParallelRunStats {
        let before = router.shard_reports();
        let t0 = Instant::now();
        for _ in 0..reps {
            for pkt in &self.packets {
                router.receive(pkt.clone());
            }
            router.flush();
            for i in 0..router.interface_count() {
                let _ = router.take_tx(i as u32);
            }
        }
        let wall_ns = t0.elapsed().as_nanos() as u64;
        let after = router.shard_reports();

        let mut stats = ParallelRunStats {
            wall_ns,
            ..ParallelRunStats::default()
        };
        for (b, a) in before.iter().zip(&after) {
            // All diffs saturate: a shard restarted by the supervisor
            // mid-run comes back with fresh counters, which must read as
            // "no progress observed", not as an underflow panic.
            let pkts = a.packets.saturating_sub(b.packets);
            // Prefer the thread CPU clock (immune to preemption inflation
            // when shards outnumber host cores); it has ~10 ms
            // granularity, so short runs that round to zero fall back to
            // the fine-grained in-path wall measure.
            let cpu = a.cpu_ns.saturating_sub(b.cpu_ns);
            let busy = if cpu > 0 {
                cpu
            } else {
                a.busy_ns.saturating_sub(b.busy_ns)
            };
            stats.packets += pkts;
            stats.forwarded += a.data.forwarded.saturating_sub(b.data.forwarded);
            stats.dropped += a
                .data
                .dropped_total()
                .saturating_sub(b.data.dropped_total());
            stats.total_busy_ns += busy;
            stats.max_shard_busy_ns = stats.max_shard_busy_ns.max(busy);
            stats.shard_packets.push(pkts);
            stats.shard_busy_ns.push(busy);
        }
        stats
    }

    /// [`run_parallel`](Testbench::run_parallel) on the batched fast
    /// path: ingress mbufs come from the dispatcher's buffer pool, up to
    /// `batch` packets are handed to [`ParallelRouter::receive_batch`]
    /// per call (one channel send per shard touched instead of one per
    /// packet), and transmitted packets are recycled after each
    /// repetition. `batch == 1` degenerates to per-packet dispatch
    /// through the same entry point.
    pub fn run_parallel_batched(
        &self,
        router: &mut ParallelRouter,
        reps: usize,
        batch: usize,
    ) -> ParallelRunStats {
        let batch = batch.max(1);
        let before = router.shard_reports();
        let t0 = Instant::now();
        for _ in 0..reps {
            let mut carrier = router.batch_carrier();
            for pkt in &self.packets {
                carrier.push(router.mbuf_with(pkt.data(), pkt.rx_if));
                if carrier.len() >= batch {
                    router.receive_batch(carrier);
                    carrier = router.batch_carrier();
                }
            }
            router.receive_batch(carrier);
            router.flush();
            for i in 0..router.interface_count() {
                for m in router.take_tx(i as u32) {
                    router.recycle_mbuf(m);
                }
            }
        }
        let wall_ns = t0.elapsed().as_nanos() as u64;
        let after = router.shard_reports();

        let mut stats = ParallelRunStats {
            wall_ns,
            ..ParallelRunStats::default()
        };
        for (b, a) in before.iter().zip(&after) {
            let pkts = a.packets.saturating_sub(b.packets);
            let cpu = a.cpu_ns.saturating_sub(b.cpu_ns);
            let busy = if cpu > 0 {
                cpu
            } else {
                a.busy_ns.saturating_sub(b.busy_ns)
            };
            stats.packets += pkts;
            stats.forwarded += a.data.forwarded.saturating_sub(b.data.forwarded);
            stats.dropped += a
                .data
                .dropped_total()
                .saturating_sub(b.data.dropped_total());
            stats.total_busy_ns += busy;
            stats.max_shard_busy_ns = stats.max_shard_busy_ns.max(busy);
            stats.shard_packets.push(pkts);
            stats.shard_busy_ns.push(busy);
        }
        stats
    }

    /// Replay through the best-effort baseline.
    pub fn run_best_effort(&self, router: &mut BestEffortRouter, reps: usize) -> RunStats {
        let mut stats = RunStats::default();
        for _ in 0..reps {
            for pkt in &self.packets {
                let m = pkt.clone();
                let t0 = Instant::now();
                let d = router.receive(m);
                stats.total_ns += t0.elapsed().as_nanos() as u64;
                stats.packets += 1;
                match d {
                    Disposition::Forwarded(_) => stats.forwarded += 1,
                    _ => stats.dropped += 1,
                }
            }
            for i in 0..4u32 {
                let _ = router.take_tx(i % 4);
            }
        }
        stats
    }

    /// Replay through the monolithic ALTQ-DRR baseline.
    pub fn run_altq(&self, router: &mut AltqDrrRouter, reps: usize) -> RunStats {
        let mut stats = RunStats::default();
        let mut now = 0u64;
        for _ in 0..reps {
            for pkt in &self.packets {
                let m = pkt.clone();
                now += 1000;
                let t0 = Instant::now();
                let d = router.receive(m, now);
                if let Disposition::Queued(i) = d {
                    router.pump(i, 1, now);
                }
                stats.total_ns += t0.elapsed().as_nanos() as u64;
                stats.packets += 1;
                match d {
                    Disposition::Queued(_) | Disposition::Forwarded(_) => stats.forwarded += 1,
                    _ => stats.dropped += 1,
                }
            }
            for i in 0..4u32 {
                let _ = router.take_tx(i % 4);
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{v6_host, Workload};
    use router_core::plugins::register_builtin_factories;
    use router_core::{Router, RouterConfig};

    fn plugin_router(gates: Vec<router_core::Gate>) -> Router {
        let mut r = Router::new(RouterConfig {
            enabled_gates: gates,
            verify_checksums: false,
            ..RouterConfig::default()
        });
        register_builtin_factories(&mut r.loader);
        r.add_route(v6_host(0), 32, 1);
        r
    }

    #[test]
    fn plugin_router_forwards_workload() {
        let mut r = plugin_router(vec![]);
        let tb = Testbench::new(&Workload::paper_table3());
        let stats = tb.run_router(&mut r, 2);
        assert_eq!(stats.packets, 600);
        assert_eq!(stats.forwarded, 600);
        assert_eq!(stats.dropped, 0);
        assert!(stats.total_ns > 0);
        assert!(stats.ns_per_packet() > 0.0);
    }

    #[test]
    fn flow_cache_amortizes() {
        let mut r = plugin_router(router_core::gate::ALL_GATES.to_vec());
        router_core::pmgr::run_script(
            &mut r,
            "load null\ncreate null\nbind stats null 0 <*, *, *, *, *, *>",
        )
        .unwrap();
        let tb = Testbench::new(&Workload::paper_table3());
        let stats = tb.run_router(&mut r, 1);
        // 3 flows → 3 misses, 297 hits.
        assert_eq!(stats.cache_misses, 3);
        assert_eq!(stats.cache_hits, 297);
    }

    #[test]
    fn parallel_router_forwards_workload() {
        use router_core::plugins::register_builtin_factories;
        use router_core::{ControlPlane, ParallelRouter, ParallelRouterConfig};

        let mut template = router_core::loader::PluginLoader::new();
        register_builtin_factories(&mut template);
        let mut pr = ParallelRouter::new(
            ParallelRouterConfig {
                shards: 4,
                router: RouterConfig {
                    verify_checksums: false,
                    enabled_gates: vec![],
                    ..RouterConfig::default()
                },
                ingress_depth: 256,
                ..ParallelRouterConfig::default()
            },
            &template,
        );
        pr.cp_add_route(v6_host(0), 32, 1);

        let tb = Testbench::new(&Workload::paper_table3());
        let stats = tb.run_parallel(&mut pr, 2);
        assert_eq!(stats.packets, 600);
        assert_eq!(stats.forwarded, 600);
        assert_eq!(stats.dropped, 0);
        assert_eq!(stats.shard_packets.len(), 4);
        assert_eq!(stats.shard_packets.iter().sum::<u64>(), 600);
        assert!(stats.max_shard_busy_ns > 0);
        assert!(stats.total_busy_ns >= stats.max_shard_busy_ns);
    }

    #[test]
    fn baselines_forward_too() {
        let tb = Testbench::new(&Workload::paper_table3());
        let mut be = BestEffortRouter::new(4, false);
        be.add_route(v6_host(0), 32, 1);
        let s = tb.run_best_effort(&mut be, 1);
        assert_eq!(s.forwarded, 300);

        let mut altq = AltqDrrRouter::new(4, 64, 9180, false);
        altq.add_route(v6_host(0), 32, 1);
        let s = tb.run_altq(&mut altq, 1);
        assert_eq!(s.forwarded, 300);
    }
}
