//! SSP daemon analogue (paper §3.1: "The RSVP, SSP (a simplified version
//! of RSVP), and route daemon are linked against the Router Plugin
//! Library … We implemented an SSP daemon for our system").
//!
//! SSP ("State Setup Protocol", Adiseshu & Parulkar) carries per-flow
//! reservation state; here the daemon's *effect* on the router is what
//! matters: each accepted reservation installs a fully specified filter
//! at the scheduling gate bound to the interface's DRR instance and sets
//! the flow's weight — §6.1's "dynamically recalculated" reserved-flow
//! weights.

use router_core::message::PluginMsg;
use router_core::plugin::{InstanceId, PluginError};
use router_core::{Gate, Router};
use rp_classifier::{FilterId, FilterSpec};
use rp_packet::FlowTuple;
use std::collections::HashMap;

/// One live reservation.
#[derive(Debug, Clone)]
pub struct Reservation {
    /// The reserved flow.
    pub flow: FlowTuple,
    /// DRR weight granted.
    pub weight: u32,
    /// The filter realising it.
    pub filter: FilterId,
    /// Soft-state deadline: the reservation dies unless refreshed
    /// (RSVP-style; SSP is "a simplified version of RSVP").
    pub expires_at_ns: u64,
}

/// The SSP daemon: manages reservations against one DRR instance.
pub struct SspDaemon {
    plugin: String,
    instance: InstanceId,
    reservations: HashMap<u64, Reservation>,
    next_session: u64,
    /// Admission limit: total weight the daemon may hand out.
    pub max_total_weight: u32,
    /// Soft-state lifetime: reservations expire this long after their
    /// last refresh.
    pub lifetime_ns: u64,
}

impl SspDaemon {
    /// A daemon managing reservations on `plugin` instance `instance`
    /// (typically the DRR scheduler on the bottleneck interface).
    pub fn new(plugin: &str, instance: InstanceId, max_total_weight: u32) -> Self {
        SspDaemon {
            plugin: plugin.to_string(),
            instance,
            reservations: HashMap::new(),
            next_session: 1,
            max_total_weight,
            lifetime_ns: 30_000_000_000, // 30 s, RSVP's classic refresh period
        }
    }

    /// Currently granted total weight.
    pub fn granted(&self) -> u32 {
        self.reservations.values().map(|r| r.weight).sum()
    }

    /// Process a reservation request: admission control, filter install,
    /// weight assignment. Returns a session id. The reservation is soft
    /// state: it expires `lifetime_ns` after the last [`SspDaemon::refresh`]
    /// unless swept by [`SspDaemon::sweep`].
    pub fn reserve(
        &mut self,
        router: &mut Router,
        flow: FlowTuple,
        weight: u32,
    ) -> Result<u64, PluginError> {
        self.reserve_at(router, flow, weight, 0)
    }

    /// [`SspDaemon::reserve`] with an explicit current time.
    pub fn reserve_at(
        &mut self,
        router: &mut Router,
        flow: FlowTuple,
        weight: u32,
        now_ns: u64,
    ) -> Result<u64, PluginError> {
        if self.granted() + weight > self.max_total_weight {
            return Err(PluginError::Busy(format!(
                "admission control: {} + {weight} exceeds {}",
                self.granted(),
                self.max_total_weight
            )));
        }
        let reply = router.send_message(
            &self.plugin,
            PluginMsg::RegisterInstance {
                id: self.instance,
                gate: Gate::Scheduling,
                filter: FilterSpec::exact(&flow),
            },
        )?;
        let filter = reply.filter().expect("register replies with a filter");
        router.send_message(
            &self.plugin,
            PluginMsg::Custom {
                instance: Some(self.instance),
                name: "setweight".to_string(),
                args: format!("filter={} weight={}", filter.0, weight),
            },
        )?;
        let session = self.next_session;
        self.next_session += 1;
        self.reservations.insert(
            session,
            Reservation {
                flow,
                weight,
                filter,
                expires_at_ns: now_ns + self.lifetime_ns,
            },
        );
        Ok(session)
    }

    /// Refresh a session's soft state (the periodic PATH/RESV refresh of
    /// RSVP). Returns false for unknown sessions.
    pub fn refresh(&mut self, session: u64, now_ns: u64) -> bool {
        match self.reservations.get_mut(&session) {
            Some(r) => {
                r.expires_at_ns = now_ns + self.lifetime_ns;
                true
            }
            None => false,
        }
    }

    /// Tear down every reservation whose soft state expired. Returns the
    /// sessions removed.
    pub fn sweep(&mut self, router: &mut Router, now_ns: u64) -> Vec<u64> {
        let expired: Vec<u64> = self
            .reservations
            .iter()
            .filter(|(_, r)| r.expires_at_ns <= now_ns)
            .map(|(s, _)| *s)
            .collect();
        let mut out = Vec::new();
        for s in expired {
            if self.teardown(router, s).is_ok() {
                out.push(s);
            }
        }
        out.sort_unstable();
        out
    }

    /// Tear a reservation down, releasing its filter and weight.
    pub fn teardown(&mut self, router: &mut Router, session: u64) -> Result<(), PluginError> {
        let res = self
            .reservations
            .remove(&session)
            .ok_or_else(|| PluginError::Busy(format!("no session {session}")))?;
        router.send_message(
            &self.plugin,
            PluginMsg::DeregisterInstance {
                gate: Gate::Scheduling,
                filter: res.filter,
            },
        )?;
        Ok(())
    }

    /// Live sessions.
    pub fn sessions(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.reservations.keys().copied().collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::v6_host;
    use router_core::plugins::register_builtin_factories;
    use router_core::RouterConfig;

    fn setup() -> (Router, SspDaemon) {
        let mut r = Router::new(RouterConfig::default());
        register_builtin_factories(&mut r.loader);
        router_core::pmgr::run_script(&mut r, "load drr\ncreate drr quantum=9180").unwrap();
        let d = SspDaemon::new("drr", InstanceId(0), 10);
        (r, d)
    }

    fn flow(n: u16) -> FlowTuple {
        FlowTuple {
            src: v6_host(n),
            dst: v6_host(100),
            proto: 17,
            sport: 1000 + n,
            dport: 2000,
            rx_if: 0,
        }
    }

    #[test]
    fn reserve_and_teardown() {
        let (mut r, mut d) = setup();
        let s1 = d.reserve(&mut r, flow(1), 4).unwrap();
        let s2 = d.reserve(&mut r, flow(2), 4).unwrap();
        assert_eq!(d.granted(), 8);
        assert_eq!(d.sessions(), vec![s1, s2]);
        d.teardown(&mut r, s1).unwrap();
        assert_eq!(d.granted(), 4);
        assert!(d.teardown(&mut r, s1).is_err());
    }

    #[test]
    fn soft_state_expiry_and_refresh() {
        let (mut r, mut d) = setup();
        d.lifetime_ns = 1_000;
        let s1 = d.reserve_at(&mut r, flow(1), 2, 0).unwrap();
        let s2 = d.reserve_at(&mut r, flow(2), 2, 0).unwrap();
        // Refresh s1 at t=900; s2 goes stale.
        assert!(d.refresh(s1, 900));
        assert!(!d.refresh(999, 900));
        let swept = d.sweep(&mut r, 1_500);
        assert_eq!(swept, vec![s2]);
        assert_eq!(d.sessions(), vec![s1]);
        assert_eq!(d.granted(), 2);
        // s1 expires at 1900.
        let swept = d.sweep(&mut r, 2_000);
        assert_eq!(swept, vec![s1]);
        assert!(d.sessions().is_empty());
    }

    #[test]
    fn admission_control() {
        let (mut r, mut d) = setup();
        d.reserve(&mut r, flow(1), 8).unwrap();
        let err = d.reserve(&mut r, flow(2), 4).unwrap_err();
        assert!(matches!(err, PluginError::Busy(_)));
        // After teardown, capacity frees up.
        let s = d.sessions()[0];
        d.teardown(&mut r, s).unwrap();
        d.reserve(&mut r, flow(2), 4).unwrap();
    }
}
