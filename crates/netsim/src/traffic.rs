//! Traffic and filter-set generators.
//!
//! Reproduces the paper's workloads: flow-structured traffic (the
//! Section 7 testbed sends 8 KB UDP/IPv6 datagrams over three concurrent
//! flows, 100 packets each), plus the large random filter sets (50,000)
//! used to evaluate worst-case classification in Table 2.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use router_core::ip_core::fragment_v4;
use rp_classifier::FilterSpec;
use rp_packet::builder::PacketSpec;
use rp_packet::ipv4::Ipv4Packet;
use rp_packet::mbuf::IfIndex;
use rp_packet::Mbuf;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// One flow's traffic description.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// Source address.
    pub src: IpAddr,
    /// Destination address.
    pub dst: IpAddr,
    /// UDP source port.
    pub sport: u16,
    /// UDP destination port.
    pub dport: u16,
    /// Transport payload bytes per packet.
    pub payload_len: usize,
    /// Packets to send.
    pub count: usize,
    /// Arrival interface.
    pub rx_if: IfIndex,
}

/// How flows interleave on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interleave {
    /// Round-robin between flows (the paper's "concurrently").
    RoundRobin,
    /// All of flow 1, then all of flow 2, …
    Sequential,
    /// Uniform random order (seeded).
    Random(u64),
}

/// A set of flows plus an interleaving.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The flows.
    pub flows: Vec<FlowSpec>,
    /// Wire order.
    pub interleave: Interleave,
}

/// Test address helpers (the 2001:db8::/32 documentation prefix).
pub fn v6_host(n: u16) -> IpAddr {
    IpAddr::V6(Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, n))
}

/// Test IPv4 host in 10/8.
pub fn v4_host(b: u8, c: u8, d: u8) -> IpAddr {
    IpAddr::V4(Ipv4Addr::new(10, b, c, d))
}

impl Workload {
    /// The paper's Table 3 workload: "We sent 8 KByte UDP/IPv6 datagrams
    /// belonging to three different flows concurrently through our router
    /// … a total of 100 packets per flow."
    pub fn paper_table3() -> Workload {
        Workload {
            flows: (0..3)
                .map(|i| FlowSpec {
                    src: v6_host(10 + i),
                    dst: v6_host(100 + i),
                    sport: 5000 + i,
                    dport: 6000 + i,
                    payload_len: 8192,
                    count: 100,
                    rx_if: 0,
                })
                .collect(),
            interleave: Interleave::RoundRobin,
        }
    }

    /// `n` concurrent flows of `pkts` packets each (flow-cache stress).
    pub fn uniform(n: usize, pkts: usize, payload_len: usize) -> Workload {
        Workload {
            flows: (0..n)
                .map(|i| FlowSpec {
                    src: v6_host((i % 60000) as u16),
                    dst: v6_host(((i / 60000) + 100) as u16),
                    sport: 1024 + (i % 50000) as u16,
                    dport: 80,
                    payload_len,
                    count: pkts,
                    rx_if: 0,
                })
                .collect(),
            interleave: Interleave::RoundRobin,
        }
    }

    /// Heavy-tailed flow-size mix: a few elephants carrying most of the
    /// packets over many mice sending a handful each. Sizes follow a
    /// bounded Pareto profile (α ≈ 1.1) sampled at evenly spaced
    /// quantiles, so the mix is identical for a given flow count; `seed`
    /// only shuffles which six-tuple (and therefore which shard) each
    /// size lands on. Round-robin interleave: once the mice drain, the
    /// residual traffic is pure elephant — the hot-shard regime.
    pub fn heavy_tailed(flows: usize, min_pkts: usize, payload_len: usize, seed: u64) -> Workload {
        assert!(flows > 0 && min_pkts > 0);
        const ALPHA: f64 = 1.1;
        let mut sizes: Vec<usize> = (0..flows)
            .map(|i| {
                // Inverse CDF of Pareto(x_min = min_pkts, ALPHA) at the
                // midpoint quantile of slot i; capped so one draw cannot
                // dwarf the whole workload.
                let q = (i as f64 + 0.5) / flows as f64;
                let x = min_pkts as f64 / (1.0 - q).powf(1.0 / ALPHA);
                (x.round() as usize).clamp(min_pkts, min_pkts * 512)
            })
            .collect();
        // Fisher–Yates so elephant tuples vary with the seed.
        let mut rng = StdRng::seed_from_u64(seed);
        for i in (1..sizes.len()).rev() {
            sizes.swap(i, rng.gen_range(0..=i));
        }
        Workload {
            flows: sizes
                .into_iter()
                .enumerate()
                .map(|(i, count)| FlowSpec {
                    src: v6_host((i % 60000) as u16),
                    dst: v6_host(((i / 60000) + 100) as u16),
                    sport: 1024 + (i % 50000) as u16,
                    dport: 80,
                    payload_len,
                    count,
                    rx_if: 0,
                })
                .collect(),
            interleave: Interleave::RoundRobin,
        }
    }

    /// SYN-flood-style thrash: `flows` one-packet flows, every tuple
    /// unique, in seeded random arrival order. Every packet takes the
    /// slow classification path and wants a fresh flow record — the
    /// workload that thrashes a flow cache with no admission control.
    pub fn one_packet_flood(flows: usize, payload_len: usize, seed: u64) -> Workload {
        Workload {
            flows: (0..flows)
                .map(|i| FlowSpec {
                    src: IpAddr::V6(Ipv6Addr::new(
                        0x2001,
                        0xdb8,
                        0xdead,
                        (i >> 16) as u16,
                        0,
                        0,
                        0,
                        (i & 0xffff) as u16,
                    )),
                    dst: v6_host(100),
                    sport: 1024 + (i % 50000) as u16,
                    dport: 80,
                    payload_len,
                    count: 1,
                    rx_if: 0,
                })
                .collect(),
            interleave: Interleave::Random(seed),
        }
    }

    /// Total packet count.
    pub fn total_packets(&self) -> usize {
        self.flows.iter().map(|f| f.count).sum()
    }

    /// Materialise the packet sequence. Packets are built once; the
    /// testbench clones per run so generation cost stays out of the
    /// measurement.
    pub fn build(&self) -> Vec<Mbuf> {
        // Pre-build one template packet per flow.
        let templates: Vec<Mbuf> = self
            .flows
            .iter()
            .map(|f| {
                Mbuf::new(
                    PacketSpec::udp(f.src, f.dst, f.sport, f.dport, f.payload_len).build(),
                    f.rx_if,
                )
            })
            .collect();
        let mut remaining: Vec<usize> = self.flows.iter().map(|f| f.count).collect();
        let mut out = Vec::with_capacity(self.total_packets());
        match self.interleave {
            Interleave::Sequential => {
                for (i, t) in templates.iter().enumerate() {
                    for _ in 0..remaining[i] {
                        out.push(t.clone());
                    }
                }
            }
            Interleave::RoundRobin => {
                let mut any = true;
                while any {
                    any = false;
                    for (i, t) in templates.iter().enumerate() {
                        if remaining[i] > 0 {
                            remaining[i] -= 1;
                            out.push(t.clone());
                            any = true;
                        }
                    }
                }
            }
            Interleave::Random(seed) => {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut live: Vec<usize> = (0..templates.len()).collect();
                while !live.is_empty() {
                    let pick = rng.gen_range(0..live.len());
                    let i = live[pick];
                    remaining[i] -= 1;
                    out.push(templates[i].clone());
                    if remaining[i] == 0 {
                        live.swap_remove(pick);
                    }
                }
            }
        }
        out
    }
}

/// Fragment flood: `flows` large IPv4 UDP datagrams, each split into
/// on-wire fragments (DF cleared, fragmented at `mtu`), with fragments
/// of different datagrams interleaved round-robin. Only the first
/// fragment of each datagram carries the transport header, so every
/// non-first fragment exercises the fragment-keyed classification path.
/// Deterministic: `seed` shuffles datagram order only.
pub fn fragment_flood(flows: usize, payload_len: usize, mtu: usize, seed: u64) -> Vec<Mbuf> {
    assert!(
        flows > 0 && payload_len > mtu,
        "datagrams must exceed the MTU"
    );
    let mut order: Vec<usize> = (0..flows).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..order.len()).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    let per_flow: Vec<Vec<Vec<u8>>> = order
        .into_iter()
        .map(|i| {
            let src = v4_host(1, (i >> 8) as u8, (i & 0xff) as u8);
            let dst = v4_host(200, 0, 1);
            let mut buf =
                PacketSpec::udp(src, dst, 1024 + (i % 50000) as u16, 80, payload_len).build();
            {
                let p = Ipv4Packet::new_unchecked(&mut buf[..]);
                let b = p.into_inner();
                b[6] &= !0x40; // clear DF so the datagram can fragment
                let mut p = Ipv4Packet::new_unchecked(&mut buf[..]);
                p.fill_checksum();
            }
            fragment_v4(&buf, mtu).expect("payload_len > mtu fragments")
        })
        .collect();
    let mut out = Vec::new();
    let mut round = 0usize;
    loop {
        let mut emitted = false;
        for frags in &per_flow {
            if let Some(f) = frags.get(round) {
                out.push(Mbuf::new(f.clone(), 0));
                emitted = true;
            }
        }
        if !emitted {
            break;
        }
        round += 1;
    }
    out
}

/// Deterministic synthetic IPv4 FIB: `n` distinct prefixes with a
/// BGP-table-like length distribution (/24-heavy, short prefixes rare),
/// each mapped to an egress interface in `0..interfaces`. Address bits
/// are drawn from a seeded generator, so the same `(n, interfaces,
/// seed)` triple always yields the same table — the scale experiments
/// load ~900K of these to stand in for a default-free-zone FIB.
pub fn synthetic_fib_v4(n: usize, interfaces: u32, seed: u64) -> Vec<(IpAddr, u8, u32)> {
    assert!(interfaces > 0);
    const LENS: [u8; 16] = [
        8, 12, 16, 16, 19, 20, 21, 22, 22, 23, 24, 24, 24, 24, 24, 24,
    ];
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::with_capacity(n * 2);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let len = LENS[rng.gen_range(0..LENS.len())];
        let mask = if len == 0 { 0 } else { u32::MAX << (32 - len) };
        let bits = rng.gen::<u32>() & mask;
        if !seen.insert((bits, len)) {
            continue;
        }
        out.push((
            IpAddr::V4(Ipv4Addr::from(bits)),
            len,
            rng.gen_range(0..interfaces),
        ));
    }
    out
}

/// Generate `n` random six-tuple filters with a realistic CIDR length
/// distribution — the Table 2 experiment installs ~50,000 of these.
/// `v6` selects the address family. Port fields are exact ports or
/// wildcards (partially overlapping ranges would be rejected by the DAG).
pub fn random_filters(n: usize, v6: bool, seed: u64) -> Vec<FilterSpec> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let spec = if v6 {
            const V6_LENS: [u8; 12] = [24, 32, 32, 40, 44, 48, 48, 48, 56, 64, 64, 128];
            let len = V6_LENS[rng.gen_range(0..V6_LENS.len())];
            let addr = Ipv6Addr::new(
                0x2000 | rng.gen_range(0..0x1000),
                rng.gen(),
                rng.gen(),
                rng.gen(),
                rng.gen(),
                rng.gen(),
                rng.gen(),
                rng.gen(),
            );
            let dlen = *[32u8, 48, 64, 128].get(rng.gen_range(0..4)).unwrap();
            let daddr = Ipv6Addr::new(
                0x2000 | rng.gen_range(0..0x1000),
                rng.gen(),
                rng.gen(),
                rng.gen(),
                rng.gen(),
                rng.gen(),
                rng.gen(),
                rng.gen(),
            );
            format!(
                "{addr}/{len}, {daddr}/{dlen}, {}, {}, {}, *",
                proto_tok(&mut rng),
                port_tok(&mut rng),
                port_tok(&mut rng)
            )
        } else {
            // Realistic CIDR length mix (BGP-table-like: /24-heavy, /8
            // rare). Short prefixes nest under many longer ones and blow
            // up set-pruning replication, exactly as real tables avoid.
            const V4_LENS: [u8; 16] = [
                8, 16, 16, 19, 20, 21, 22, 22, 23, 24, 24, 24, 24, 24, 32, 32,
            ];
            let len = V4_LENS[rng.gen_range(0..V4_LENS.len())];
            let addr = Ipv4Addr::from(rng.gen::<u32>());
            let dlen = V4_LENS[rng.gen_range(0..V4_LENS.len())];
            let daddr = Ipv4Addr::from(rng.gen::<u32>());
            format!(
                "{addr}/{len}, {daddr}/{dlen}, {}, {}, {}, *",
                proto_tok(&mut rng),
                port_tok(&mut rng),
                port_tok(&mut rng)
            )
        };
        out.push(spec.parse().expect("generated filter parses"));
    }
    out
}

fn proto_tok(rng: &mut StdRng) -> String {
    match rng.gen_range(0..3) {
        0 => "TCP".into(),
        1 => "UDP".into(),
        _ => "*".into(),
    }
}

fn port_tok(rng: &mut StdRng) -> String {
    if rng.gen_bool(0.5) {
        "*".into()
    } else {
        format!("{}", rng.gen_range(1u16..=u16::MAX))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_packet::FlowTuple;

    #[test]
    fn paper_workload_shape() {
        let w = Workload::paper_table3();
        assert_eq!(w.total_packets(), 300);
        let pkts = w.build();
        assert_eq!(pkts.len(), 300);
        // Round-robin: first three packets belong to distinct flows.
        let t0 = FlowTuple::from_mbuf(&pkts[0]).unwrap();
        let t1 = FlowTuple::from_mbuf(&pkts[1]).unwrap();
        let t2 = FlowTuple::from_mbuf(&pkts[2]).unwrap();
        assert_ne!(t0, t1);
        assert_ne!(t1, t2);
        // 8 KB payload: packet bigger than 8 KB, below ATM MTU 9180.
        assert!(pkts[0].len() > 8192 && pkts[0].len() <= 9180);
    }

    #[test]
    fn interleave_modes() {
        let mut w = Workload::uniform(2, 3, 64);
        w.interleave = Interleave::Sequential;
        let seq = w.build();
        let first = FlowTuple::from_mbuf(&seq[0]).unwrap();
        let second = FlowTuple::from_mbuf(&seq[1]).unwrap();
        assert_eq!(first, second);
        w.interleave = Interleave::Random(1);
        let r1 = w.build();
        w.interleave = Interleave::Random(1);
        let r2 = w.build();
        assert_eq!(r1.len(), 6);
        // Deterministic under the same seed.
        let k1: Vec<_> = r1
            .iter()
            .map(|m| FlowTuple::from_mbuf(m).unwrap())
            .collect();
        let k2: Vec<_> = r2
            .iter()
            .map(|m| FlowTuple::from_mbuf(m).unwrap())
            .collect();
        assert_eq!(k1, k2);
    }

    #[test]
    fn heavy_tailed_mixes_elephants_and_mice() {
        let w = Workload::heavy_tailed(64, 4, 256, 1);
        assert_eq!(w.flows.len(), 64);
        let mut sizes: Vec<usize> = w.flows.iter().map(|f| f.count).collect();
        sizes.sort_unstable();
        // Median stays mouse-sized while the tail is an order of
        // magnitude heavier — the elephant/mouse split.
        let median = sizes[sizes.len() / 2];
        let max = *sizes.last().unwrap();
        assert!(median <= 4 * 4, "median {median} not mouse-sized");
        assert!(max >= 10 * median, "max {max} vs median {median}: no tail");
        // Deterministic profile; the seed moves sizes across tuples.
        let w2 = Workload::heavy_tailed(64, 4, 256, 2);
        let mut sizes2: Vec<usize> = w2.flows.iter().map(|f| f.count).collect();
        sizes2.sort_unstable();
        assert_eq!(sizes, sizes2, "size profile must not depend on seed");
        assert_eq!(
            Workload::heavy_tailed(64, 4, 256, 1).build().len(),
            w.total_packets()
        );
    }

    #[test]
    fn one_packet_flood_is_all_unique_tuples() {
        let w = Workload::one_packet_flood(500, 64, 9);
        assert_eq!(w.total_packets(), 500);
        let pkts = w.build();
        let mut tuples: Vec<FlowTuple> = pkts
            .iter()
            .map(|m| FlowTuple::from_mbuf(m).unwrap())
            .collect();
        tuples.sort_by_key(|t| format!("{t:?}"));
        tuples.dedup();
        assert_eq!(tuples.len(), 500, "every flood packet is its own flow");
        // Same seed, same wire order.
        let again = Workload::one_packet_flood(500, 64, 9).build();
        assert_eq!(
            FlowTuple::from_mbuf(&again[17]).unwrap(),
            FlowTuple::from_mbuf(&pkts[17]).unwrap()
        );
    }

    #[test]
    fn fragment_flood_interleaves_fragments() {
        let pkts = fragment_flood(8, 2000, 600, 3);
        // 2000-byte payload at MTU 600 → at least 4 on-wire fragments
        // per datagram.
        assert!(pkts.len() >= 8 * 4, "got {}", pkts.len());
        // The first 8 packets are first-fragments of 8 distinct
        // datagrams (round-robin interleave), so all parse a transport
        // header; later rounds are non-first fragments.
        let mut firsts: Vec<FlowTuple> = pkts[..8]
            .iter()
            .map(|m| FlowTuple::from_mbuf(m).unwrap())
            .collect();
        firsts.sort_by_key(|t| format!("{t:?}"));
        firsts.dedup();
        assert_eq!(firsts.len(), 8);
        // Deterministic under the seed.
        let again = fragment_flood(8, 2000, 600, 3);
        assert_eq!(again.len(), pkts.len());
        assert_eq!(again[11].data(), pkts[11].data());
    }

    #[test]
    fn synthetic_fib_is_deterministic_and_distinct() {
        let fib = synthetic_fib_v4(5000, 4, 11);
        assert_eq!(fib.len(), 5000);
        assert_eq!(fib, synthetic_fib_v4(5000, 4, 11));
        let mut keys: Vec<(IpAddr, u8)> = fib.iter().map(|(a, l, _)| (*a, *l)).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 5000, "prefixes must be distinct");
        assert!(fib.iter().all(|(_, l, i)| *l >= 8 && *l <= 24 && *i < 4));
        // Host bits below each prefix length are zero (valid prefixes).
        for (a, l, _) in &fib {
            let IpAddr::V4(v4) = a else { unreachable!() };
            let bits = u32::from(*v4);
            assert_eq!(bits & (u32::MAX >> l), 0, "{a}/{l} has host bits");
        }
    }

    #[test]
    fn random_filters_parse_and_vary() {
        for v6 in [false, true] {
            let fs = random_filters(200, v6, 42);
            assert_eq!(fs.len(), 200);
            // Reasonable diversity.
            let mut dedup = fs.clone();
            dedup.sort_by_key(|f| format!("{f}"));
            dedup.dedup();
            assert!(dedup.len() > 190);
        }
    }

    #[test]
    fn random_filters_deterministic() {
        assert_eq!(random_filters(50, false, 7), random_filters(50, false, 7));
    }
}
