//! Multi-router topologies: wire several [`Router`]s together with
//! simulated links and step packets between them — the harness behind
//! multi-hop scenarios (VPN chains, QoS domains) that single-router tests
//! cannot express.
//!
//! Interfaces without a link are *host-facing*: whatever leaves there is
//! a delivery, collected per node for assertions.

use router_core::ip_core::Disposition;
use router_core::Router;
use rp_packet::mbuf::IfIndex;
use rp_packet::Mbuf;
use std::collections::{HashMap, VecDeque};
use std::net::IpAddr;

/// Node handle in a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub usize);

/// One attachment point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Port {
    /// The node.
    pub node: NodeId,
    /// Interface on that node.
    pub iface: IfIndex,
}

/// Fault state of one link direction (applied at the source port as
/// packets leave it). All counters are per-direction.
#[derive(Debug, Clone, Copy, Default)]
struct LinkFault {
    /// Interface administratively down: everything leaving is lost.
    down: bool,
    /// Lose every Nth packet crossing (0 = no loss).
    loss_every: u64,
    /// Corrupt every Nth packet crossing (0 = no corruption).
    corrupt_every: u64,
    /// Packets that attempted to cross this direction.
    crossed: u64,
}

/// A simulated network of routers.
pub struct Topology {
    nodes: Vec<Router>,
    /// Bidirectional links: port → peer port.
    links: HashMap<Port, Port>,
    /// Per-direction fault injection, keyed by source port.
    faults: HashMap<Port, LinkFault>,
    /// Packets delivered on host-facing interfaces, per node.
    delivered: HashMap<NodeId, Vec<Mbuf>>,
    /// Networks attached at host-facing ports: (port, prefix, len).
    networks: Vec<(Port, IpAddr, u8)>,
    /// Total packets moved across links.
    pub forwarded_hops: u64,
    /// Packets lost to injected link faults (down or loss).
    pub lost_to_faults: u64,
    /// Packets corrupted by injected link faults.
    pub corrupted_by_faults: u64,
}

impl Topology {
    /// Empty topology.
    pub fn new() -> Self {
        Topology {
            nodes: Vec::new(),
            links: HashMap::new(),
            faults: HashMap::new(),
            delivered: HashMap::new(),
            networks: Vec::new(),
            forwarded_hops: 0,
            lost_to_faults: 0,
            corrupted_by_faults: 0,
        }
    }

    /// Add a router.
    pub fn add_node(&mut self, router: Router) -> NodeId {
        self.nodes.push(router);
        NodeId(self.nodes.len() - 1)
    }

    /// Access a node's router (configuration, stats).
    pub fn node_mut(&mut self, id: NodeId) -> &mut Router {
        &mut self.nodes[id.0]
    }

    /// Connect two ports with a bidirectional link.
    ///
    /// # Panics
    /// Panics if either port is already connected.
    pub fn connect(&mut self, a: Port, b: Port) {
        assert!(!self.links.contains_key(&a), "port {a:?} already linked");
        assert!(!self.links.contains_key(&b), "port {b:?} already linked");
        self.links.insert(a, b);
        self.links.insert(b, a);
    }

    /// Administratively take one link direction down (or back up):
    /// everything leaving `from` is lost until re-enabled. The reverse
    /// direction is unaffected — model a full outage by downing both.
    pub fn set_link_down(&mut self, from: Port, down: bool) {
        self.faults.entry(from).or_default().down = down;
    }

    /// Lose every `every`-th packet leaving `from` (0 disables loss).
    pub fn set_link_loss(&mut self, from: Port, every: u64) {
        self.faults.entry(from).or_default().loss_every = every;
    }

    /// Corrupt (bit-flip) every `every`-th packet leaving `from`
    /// (0 disables corruption).
    pub fn set_link_corruption(&mut self, from: Port, every: u64) {
        self.faults.entry(from).or_default().corrupt_every = every;
    }

    /// Declare that the network `addr/len` hangs off a host-facing port.
    /// [`Topology::install_routes`] then propagates reachability.
    pub fn attach_network(&mut self, port: Port, addr: IpAddr, len: u8) {
        self.networks.push((port, addr, len));
    }

    /// The route-daemon analogue (paper §3.1 mentions a `routed` linked
    /// against the Router Plugin Library): compute shortest paths over
    /// the link graph with BFS and install a route for every attached
    /// network on every node.
    pub fn install_routes(&mut self) {
        let networks = self.networks.clone();
        for (home, addr, len) in networks {
            // BFS outward from the home node; each node learns the
            // interface of its first hop back toward `home`.
            let mut next_if: HashMap<usize, IfIndex> = HashMap::new();
            let mut visited = vec![false; self.nodes.len()];
            visited[home.node.0] = true;
            let mut queue = VecDeque::from([home.node.0]);
            while let Some(cur) = queue.pop_front() {
                for (a, b) in self.links.iter() {
                    if a.node.0 == cur && !visited[b.node.0] {
                        visited[b.node.0] = true;
                        next_if.insert(b.node.0, b.iface);
                        queue.push_back(b.node.0);
                    }
                }
            }
            self.nodes[home.node.0].add_route(addr, len, home.iface);
            for (node, iface) in next_if {
                self.nodes[node].add_route(addr, len, iface);
            }
        }
    }

    /// Inject a packet arriving at a node's interface (from a host).
    pub fn inject(&mut self, at: Port, data: Vec<u8>) -> Disposition {
        self.nodes[at.node.0].receive(Mbuf::new(data, at.iface))
    }

    /// Move every transmitted packet one hop: pump schedulers, collect
    /// tx logs, deliver across links (re-receiving at the peer) or into
    /// the host-delivery buckets. Returns the number of packets moved.
    pub fn step(&mut self) -> usize {
        let mut moved = 0;
        // Gather (source port → packets) first to avoid borrow tangles.
        let mut in_flight: Vec<(Port, Vec<Mbuf>)> = Vec::new();
        for (i, node) in self.nodes.iter_mut().enumerate() {
            for iface in 0..node.interface_count() as IfIndex {
                node.pump(iface, usize::MAX / 2);
                let tx = node.take_tx(iface);
                if !tx.is_empty() {
                    in_flight.push((
                        Port {
                            node: NodeId(i),
                            iface,
                        },
                        tx,
                    ));
                }
            }
        }
        for (port, pkts) in in_flight {
            let peer = self.links.get(&port).copied();
            for mut m in pkts {
                // Source-side link faults fire before the packet crosses.
                if let Some(f) = self.faults.get_mut(&port) {
                    f.crossed += 1;
                    if f.down || (f.loss_every > 0 && f.crossed % f.loss_every == 0) {
                        self.lost_to_faults += 1;
                        continue;
                    }
                    if f.corrupt_every > 0 && f.crossed % f.corrupt_every == 0 {
                        if let Some(b) = m.data_mut().last_mut() {
                            *b ^= 0xFF;
                        }
                        self.corrupted_by_faults += 1;
                    }
                }
                moved += 1;
                match peer {
                    Some(peer) => {
                        self.forwarded_hops += 1;
                        let mut m2 = Mbuf::new(m.into_data(), peer.iface);
                        m2.fix = None;
                        let _ = self.nodes[peer.node.0].receive(m2);
                    }
                    None => self.delivered.entry(port.node).or_default().push(m),
                }
            }
        }
        moved
    }

    /// Step until no packets are in flight (or `max_steps` passes).
    /// Returns the number of steps executed.
    pub fn run_until_idle(&mut self, max_steps: usize) -> usize {
        for s in 0..max_steps {
            if self.step() == 0 {
                return s;
            }
        }
        max_steps
    }

    /// Take packets delivered at a node's host-facing interfaces.
    pub fn take_delivered(&mut self, node: NodeId) -> Vec<Mbuf> {
        self.delivered.remove(&node).unwrap_or_default()
    }
}

impl Default for Topology {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::v6_host;
    use router_core::plugins::register_builtin_factories;
    use router_core::pmgr::run_script;
    use router_core::RouterConfig;
    use rp_packet::builder::PacketSpec;
    use rp_packet::FlowTuple;

    fn router(script: &str) -> Router {
        let mut r = Router::new(RouterConfig {
            verify_checksums: false,
            ..RouterConfig::default()
        });
        register_builtin_factories(&mut r.loader);
        r.add_route(v6_host(0), 32, 1);
        run_script(&mut r, script).unwrap();
        r
    }

    /// host → A → B → C → host, three hops, hop limits age accordingly.
    #[test]
    fn linear_chain_delivery() {
        let mut topo = Topology::new();
        let a = topo.add_node(router(""));
        let b = topo.add_node(router(""));
        let c = topo.add_node(router(""));
        // A.if1 ↔ B.if0 and B.if1 ↔ C.if0; C.if1 is host-facing.
        topo.connect(Port { node: a, iface: 1 }, Port { node: b, iface: 0 });
        topo.connect(Port { node: b, iface: 1 }, Port { node: c, iface: 0 });
        let pkt = PacketSpec::udp(v6_host(1), v6_host(200), 7, 8, 100).build();
        let d = topo.inject(Port { node: a, iface: 0 }, pkt.clone());
        assert!(matches!(d, Disposition::Forwarded(1)));
        let steps = topo.run_until_idle(10);
        assert!(steps <= 3, "took {steps} steps");
        let got = topo.take_delivered(c);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].data()[7], pkt[7] - 3, "three hop-limit decrements");
        assert_eq!(topo.forwarded_hops, 2);
    }

    /// A VPN spanning the chain: encrypt at A, decrypt at C, fair-queue
    /// at B — three routers running different plugin mixes.
    #[test]
    fn chain_with_heterogeneous_plugins() {
        let mut topo = Topology::new();
        let a = topo.add_node(router(
            "load esp\ncreate esp mode=encap key=topo spi=3\n\
             bind ipsec esp 0 <*, *, UDP, *, *, *>",
        ));
        let b = topo.add_node(router(
            "load drr\ncreate drr quantum=9180\nattach 1 drr 0\n\
             bind sched drr 0 <*, *, *, *, *, *>",
        ));
        let c = topo.add_node(router(
            "load esp\ncreate esp mode=decap key=topo spi=3\n\
             bind ipsec esp 0 <*, *, ESP, *, *, *>",
        ));
        topo.connect(Port { node: a, iface: 1 }, Port { node: b, iface: 0 });
        topo.connect(Port { node: b, iface: 1 }, Port { node: c, iface: 0 });
        for i in 0..8u16 {
            let pkt = PacketSpec::udp(v6_host(1), v6_host(200), 6000 + i, 443, 256).build();
            topo.inject(Port { node: a, iface: 0 }, pkt);
        }
        topo.run_until_idle(10);
        let got = topo.take_delivered(c);
        assert_eq!(got.len(), 8);
        for m in &got {
            let t = FlowTuple::from_mbuf(m).unwrap();
            assert_eq!(t.dport, 443, "decrypted back to cleartext UDP");
        }
    }

    /// install_routes computes next hops over a small mesh: a diamond
    /// A—{B,C}—D with two networks attached at A and D.
    #[test]
    fn route_daemon_installs_shortest_paths() {
        fn bare() -> Router {
            let mut r = Router::new(RouterConfig {
                verify_checksums: false,
                ..RouterConfig::default()
            });
            register_builtin_factories(&mut r.loader);
            r
        }
        let mut topo = Topology::new();
        let a = topo.add_node(bare());
        let b = topo.add_node(bare());
        let c = topo.add_node(bare());
        let d = topo.add_node(bare());
        topo.connect(Port { node: a, iface: 1 }, Port { node: b, iface: 0 });
        topo.connect(Port { node: a, iface: 2 }, Port { node: c, iface: 0 });
        topo.connect(Port { node: b, iface: 1 }, Port { node: d, iface: 0 });
        topo.connect(Port { node: c, iface: 1 }, Port { node: d, iface: 1 });
        // net-left (…:a::/96-ish) hangs off A.if0; net-right off D.if2.
        let left: std::net::IpAddr = "2001:db8:a::0".parse().unwrap();
        let right: std::net::IpAddr = "2001:db8:d::0".parse().unwrap();
        topo.attach_network(Port { node: a, iface: 0 }, left, 48);
        topo.attach_network(Port { node: d, iface: 2 }, right, 48);
        topo.install_routes();

        // A host on the left sends to the right network: delivered at D.
        let pkt = PacketSpec::udp(
            "2001:db8:a::1".parse().unwrap(),
            "2001:db8:d::9".parse().unwrap(),
            5,
            6,
            64,
        )
        .build();
        let disp = topo.inject(Port { node: a, iface: 0 }, pkt.clone());
        assert!(matches!(disp, Disposition::Forwarded(_)), "{disp:?}");
        topo.run_until_idle(10);
        let got = topo.take_delivered(d);
        assert_eq!(got.len(), 1);
        // Exactly two transit hops (A→B or C→D): hop limit aged twice…
        // plus once at D = 3 decrements total? A decrements, middle
        // decrements, D decrements → 3.
        assert_eq!(got[0].data()[7], pkt[7] - 3);
        // And the reverse direction works symmetrically.
        let back = PacketSpec::udp(
            "2001:db8:d::9".parse().unwrap(),
            "2001:db8:a::1".parse().unwrap(),
            6,
            5,
            64,
        )
        .build();
        topo.inject(Port { node: d, iface: 2 }, back);
        topo.run_until_idle(10);
        assert_eq!(topo.take_delivered(a).len(), 1);
    }

    /// Periodic link loss: every 2nd packet leaving A.if1 vanishes and is
    /// accounted as a fault loss, the rest are delivered downstream.
    #[test]
    fn link_loss_drops_every_nth() {
        let mut topo = Topology::new();
        let a = topo.add_node(router(""));
        let b = topo.add_node(router(""));
        topo.connect(Port { node: a, iface: 1 }, Port { node: b, iface: 0 });
        topo.set_link_loss(Port { node: a, iface: 1 }, 2);
        for i in 0..10u16 {
            let pkt = PacketSpec::udp(v6_host(1), v6_host(200), 100 + i, 9, 64).build();
            topo.inject(Port { node: a, iface: 0 }, pkt);
        }
        topo.run_until_idle(10);
        assert_eq!(topo.take_delivered(b).len(), 5);
        assert_eq!(topo.lost_to_faults, 5);
    }

    /// Interface-down blackholes the direction until re-enabled; traffic
    /// resumes afterwards.
    #[test]
    fn link_down_blackholes_until_reenabled() {
        let mut topo = Topology::new();
        let a = topo.add_node(router(""));
        let b = topo.add_node(router(""));
        let link = Port { node: a, iface: 1 };
        topo.connect(link, Port { node: b, iface: 0 });
        topo.set_link_down(link, true);
        for i in 0..3u16 {
            let pkt = PacketSpec::udp(v6_host(1), v6_host(200), 100 + i, 9, 64).build();
            topo.inject(Port { node: a, iface: 0 }, pkt);
        }
        topo.run_until_idle(10);
        assert_eq!(topo.take_delivered(b).len(), 0);
        assert_eq!(topo.lost_to_faults, 3);
        topo.set_link_down(link, false);
        let pkt = PacketSpec::udp(v6_host(1), v6_host(200), 200, 9, 64).build();
        topo.inject(Port { node: a, iface: 0 }, pkt);
        topo.run_until_idle(10);
        assert_eq!(topo.take_delivered(b).len(), 1);
    }

    /// Corruption flips a byte in flight: the packet still arrives but its
    /// payload differs from what was sent.
    #[test]
    fn link_corruption_flips_payload() {
        let mut topo = Topology::new();
        let a = topo.add_node(router(""));
        let b = topo.add_node(router(""));
        topo.connect(Port { node: a, iface: 1 }, Port { node: b, iface: 0 });
        topo.set_link_corruption(Port { node: a, iface: 1 }, 1);
        let pkt = PacketSpec::udp(v6_host(1), v6_host(200), 100, 9, 64).build();
        topo.inject(Port { node: a, iface: 0 }, pkt.clone());
        topo.run_until_idle(10);
        let got = topo.take_delivered(b);
        assert_eq!(got.len(), 1);
        assert_eq!(topo.corrupted_by_faults, 1);
        let last = *got[0].data().last().unwrap();
        assert_eq!(last, pkt.last().unwrap() ^ 0xFF, "payload byte flipped");
    }

    #[test]
    #[should_panic(expected = "already linked")]
    fn double_connect_panics() {
        let mut topo = Topology::new();
        let a = topo.add_node(router(""));
        let b = topo.add_node(router(""));
        let c = topo.add_node(router(""));
        topo.connect(Port { node: a, iface: 1 }, Port { node: b, iface: 0 });
        topo.connect(Port { node: a, iface: 1 }, Port { node: c, iface: 0 });
    }
}
