//! # rp-netsim — simulated testbed for the Router Plugins reproduction
//!
//! Stands in for the paper's physical testbed (a P6/233 NetBSD box with
//! ATM NICs, MTU 9180): simulated interfaces, flow-structured traffic
//! generators, an SSP-daemon analogue driving the control path, and a
//! testbench that pushes packets through a [`router_core::Router`] while
//! collecting per-packet costs — the measurements behind Table 3 and the
//! flow-cache experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ssp;
pub mod testbench;
pub mod topology;
pub mod traffic;

pub use testbench::{ParallelRunStats, RunStats, Testbench};
pub use topology::{NodeId, Port, Topology};
pub use traffic::{FlowSpec, Interleave, Workload};
