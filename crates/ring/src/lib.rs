//! # rp-ring — lock-free SPSC ring buffers for shard dispatch
//!
//! The parallel data plane's ingress path was built on a vendored
//! channel stand-in that pays a lock (and, on the receive side, a mutex
//! acquisition per message) for every hop. This crate replaces it with
//! the queue the DPDK/R2 lineage of packet routers uses between pipeline
//! stages: a bounded single-producer/single-consumer ring of
//! power-of-two capacity with free-running cursors, where a push is a
//! slot write plus one release-store and a pop is one acquire-load plus
//! a slot read.
//!
//! Design points:
//!
//! * **Cache-line-padded cursors.** The producer cursor (`tail`) and the
//!   consumer cursor (`head`) live on their own 64-byte lines
//!   ([`CachePadded`]), so the two sides never false-share: each side
//!   writes only its own line and reads the other's at a cadence
//!   governed by cursor caching (below).
//! * **Cursor caching.** The producer keeps a local copy of the last
//!   `head` it observed and only re-loads the shared cursor when the
//!   ring *appears* full; the consumer mirrors that with `tail`. At
//!   steady state each side touches the other's line once per wrap, not
//!   once per item.
//! * **Batched publication.** [`Producer::stage`] writes slots without
//!   publishing; one [`Producer::publish`] makes the whole run visible
//!   with a single release-store. [`Consumer::pop_batch`] consumes a run
//!   with one acquire-load of `tail` up front and one release-store of
//!   `head` at the end — one cursor write per *batch*, not per packet.
//! * **Doorbell parking.** The consumer side is designed for busy-poll
//!   with adaptive fallback: spin briefly, yield a few times, then park
//!   on a condvar doorbell ([`Consumer::wait_nonempty`]). The producer
//!   rings the doorbell only when the parked flag is set, so at steady
//!   state a push performs **no** syscall and no lock — the wake cost
//!   exists only at the idle edge. The flag handshake is the classic
//!   Dekker store/fence/load pattern (see `Doorbell`), so a wakeup can
//!   never be lost.
//!
//! # Memory-ordering argument
//!
//! Correctness rests on two release/acquire edges:
//!
//! 1. The producer initializes slot `i` and then stores `tail = i + 1`
//!    with `Release`. The consumer loads `tail` with `Acquire` before
//!    reading slot `i`, so the slot write *happens-before* the slot
//!    read.
//! 2. The consumer moves the value out of slot `i` and then stores
//!    `head = i + 1` with `Release`. The producer loads `head` with
//!    `Acquire` before re-using slot `i` (it only writes slots in
//!    `[tail, head + capacity)`), so the read happens-before the
//!    overwrite.
//!
//! Cursors are free-running `u64`s (never masked until indexing), so
//! full (`tail - head == capacity`) and empty (`tail == head`) are
//! unambiguous without a separate count, and wrap-around of the index
//! mask is invisible to the protocol. Each cursor has exactly one
//! writer, so no read-modify-write atomics are needed anywhere on the
//! data path.

#![warn(missing_docs)]

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Pads and aligns a value to 64 bytes so two [`CachePadded`] fields
/// never share a cache line (the producer and consumer cursors must not
/// false-share).
#[repr(align(64))]
struct CachePadded<T>(T);

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The ring is full; the value comes back to the caller.
    Full(T),
    /// The consumer is gone; the value comes back to the caller.
    Disconnected(T),
}

impl<T> PushError<T> {
    /// The value that could not be pushed.
    pub fn into_inner(self) -> T {
        match self {
            PushError::Full(v) | PushError::Disconnected(v) => v,
        }
    }
}

/// Why a pop returned nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PopError {
    /// The ring is currently empty (producer still connected).
    Empty,
    /// The ring is empty and the producer is gone.
    Disconnected,
}

/// Outcome of a blocking wait for data ([`Consumer::wait_nonempty`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitOutcome {
    /// At least one item is visible.
    Ready,
    /// The ring is empty and the producer is gone.
    Disconnected,
    /// The park timeout elapsed with no data (callers re-check their own
    /// shutdown conditions and wait again).
    TimedOut,
}

/// The consumer-side parking doorbell. The producer's fast path is one
/// relaxed flag load; the mutex is touched only around an actual park or
/// an actual wake.
///
/// Lost-wakeup freedom (Dekker handshake): the consumer stores
/// `parked = true`, issues a `SeqCst` fence, then re-checks the ring
/// before sleeping; the producer publishes `tail`, issues a `SeqCst`
/// fence, then loads `parked`. Whatever the interleaving, either the
/// consumer's re-check sees the new `tail`, or the producer's load sees
/// `parked == true` and rings. The flag is cleared under the same mutex
/// the sleeper holds, so a stale `true` costs at most one spurious
/// notify.
struct Doorbell {
    parked: AtomicBool,
    lock: Mutex<()>,
    cv: Condvar,
}

impl Doorbell {
    fn new() -> Doorbell {
        Doorbell {
            parked: AtomicBool::new(false),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Producer side: wake the consumer if (and only if) it is parked.
    /// Call *after* publishing `tail` (the internal fence pairs with the
    /// consumer's in [`Doorbell::park`]). The flag is cleared here, under
    /// the lock, so a burst of pushes landing while the woken consumer is
    /// still being scheduled costs one notify, not one per push.
    fn ring(&self) {
        fence(Ordering::SeqCst);
        if self.parked.load(Ordering::Relaxed) {
            // Taking the lock orders this notify after the sleeper's
            // re-check-then-wait, closing the remaining window.
            let _g = self.lock.lock().unwrap_or_else(|p| p.into_inner());
            self.parked.store(false, Ordering::Relaxed);
            self.cv.notify_all();
        }
    }

    /// Consumer side: sleep until rung or `timeout`, unless `nonempty`
    /// already holds after the parked flag is visible.
    fn park(&self, nonempty: impl Fn() -> bool, timeout: Duration) {
        let guard = self.lock.lock().unwrap_or_else(|p| p.into_inner());
        self.parked.store(true, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        if nonempty() {
            self.parked.store(false, Ordering::Relaxed);
            return;
        }
        let (guard, _) = self
            .cv
            .wait_timeout(guard, timeout)
            .unwrap_or_else(|p| p.into_inner());
        self.parked.store(false, Ordering::Relaxed);
        drop(guard);
    }
}

/// The storage both handles share.
struct Shared<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: u64,
    /// Producer cursor: next slot to write. Written only by the producer.
    tail: CachePadded<AtomicU64>,
    /// Consumer cursor: next slot to read. Written only by the consumer.
    head: CachePadded<AtomicU64>,
    producer_alive: AtomicBool,
    consumer_alive: AtomicBool,
    doorbell: Doorbell,
}

// SAFETY: the SPSC protocol partitions slot access — the producer only
// writes slots in [tail, head+cap) and the consumer only reads slots in
// [head, tail), with release/acquire cursor edges ordering the handoff
// (see the module docs). T itself crosses threads, hence T: Send.
unsafe impl<T: Send> Send for Shared<T> {}
unsafe impl<T: Send> Sync for Shared<T> {}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        // Both handles are gone, so the cursors are quiescent; drop
        // whatever was pushed but never popped.
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Relaxed);
        for i in head..tail {
            let slot = (i & self.mask) as usize;
            // SAFETY: slots in [head, tail) hold initialized values the
            // consumer never read; we have exclusive access in drop.
            unsafe { (*self.buf[slot].get()).assume_init_drop() };
        }
    }
}

/// Create a bounded SPSC ring holding at most `capacity` items
/// (rounded up to a power of two, minimum 1). The two halves are the
/// only handles; dropping either closes the ring.
pub fn spsc<T: Send>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let cap = capacity.max(1).next_power_of_two();
    let buf: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect();
    let shared = Arc::new(Shared {
        buf,
        mask: (cap - 1) as u64,
        tail: CachePadded(AtomicU64::new(0)),
        head: CachePadded(AtomicU64::new(0)),
        producer_alive: AtomicBool::new(true),
        consumer_alive: AtomicBool::new(true),
        doorbell: Doorbell::new(),
    });
    (
        Producer {
            shared: Arc::clone(&shared),
            tail: 0,
            published: 0,
            head_cache: 0,
        },
        Consumer {
            shared,
            head: 0,
            tail_cache: 0,
        },
    )
}

/// The producing half. `!Sync` by construction (one producer thread at a
/// time); move it or guard it externally to hand it around.
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
    /// Local write cursor, including staged-but-unpublished slots.
    tail: u64,
    /// The value of `tail` last made visible to the consumer.
    published: u64,
    /// Last observed consumer cursor (refreshed only when full).
    head_cache: u64,
}

impl<T: Send> Producer<T> {
    /// Ring capacity in items.
    pub fn capacity(&self) -> usize {
        self.shared.buf.len()
    }

    /// Items staged but not yet visible to the consumer.
    pub fn staged(&self) -> usize {
        (self.tail - self.published) as usize
    }

    /// Whether the consumer handle still exists.
    pub fn is_connected(&self) -> bool {
        self.shared.consumer_alive.load(Ordering::Acquire)
    }

    /// Write one item into the ring *without* publishing it. Returns
    /// `Full` when no free slot exists (counting already-staged items) —
    /// staged items are still unpublished then; call
    /// [`publish`](Producer::publish) to flush them before retrying.
    pub fn stage(&mut self, value: T) -> Result<(), PushError<T>> {
        if !self.is_connected() {
            return Err(PushError::Disconnected(value));
        }
        let cap = self.shared.buf.len() as u64;
        if self.tail - self.head_cache == cap {
            self.head_cache = self.shared.head.0.load(Ordering::Acquire);
            if self.tail - self.head_cache == cap {
                return Err(PushError::Full(value));
            }
        }
        let slot = (self.tail & self.shared.mask) as usize;
        // SAFETY: `slot` is in the producer's exclusive window
        // [tail, head+cap): the fullness check above proved
        // tail - head < cap, and the consumer never reads past the
        // published cursor (which is ≤ tail).
        unsafe { (*self.shared.buf[slot].get()).write(value) };
        self.tail += 1;
        Ok(())
    }

    /// Make every staged item visible with one release-store, and ring
    /// the doorbell if the consumer is parked.
    pub fn publish(&mut self) {
        if self.tail != self.published {
            self.shared.tail.0.store(self.tail, Ordering::Release);
            self.published = self.tail;
            self.shared.doorbell.ring();
        }
    }

    /// Stage-and-publish one item (the drop-in replacement for a channel
    /// `try_send`).
    pub fn try_push(&mut self, value: T) -> Result<(), PushError<T>> {
        self.stage(value)?;
        self.publish();
        Ok(())
    }

    /// Free slots right now, from the producer's (cached-cursor) view.
    pub fn free_slots(&mut self) -> usize {
        self.head_cache = self.shared.head.0.load(Ordering::Acquire);
        (self.shared.buf.len() as u64 - (self.tail - self.head_cache)) as usize
    }

    /// Items currently in the ring (staged items included), from the
    /// producer's view: one acquire-load of the consumer cursor. This is
    /// the queue-depth signal load-aware dispatch reads — a point-in-time
    /// gauge, monotone-safe (`tail ≥ head` always), never an estimate
    /// below zero.
    pub fn occupancy(&mut self) -> usize {
        self.head_cache = self.shared.head.0.load(Ordering::Acquire);
        (self.tail - self.head_cache) as usize
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        // Publish any staged tail so the consumer can drain everything
        // written, then close and wake it.
        if self.tail != self.published {
            self.shared.tail.0.store(self.tail, Ordering::Release);
        }
        self.shared.producer_alive.store(false, Ordering::Release);
        fence(Ordering::SeqCst);
        let _g = self
            .shared
            .doorbell
            .lock
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        self.shared.doorbell.cv.notify_all();
    }
}

/// The consuming half.
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
    /// Local read cursor.
    head: u64,
    /// Last observed producer cursor (refreshed only when empty).
    tail_cache: u64,
}

/// On batch pops the consumer cursor is published through this guard, so
/// a panic inside the caller's closure still publishes the items already
/// moved out (no double-drop from `Shared::drop`).
struct HeadGuard<'a, T> {
    shared: &'a Shared<T>,
    head: &'a mut u64,
}

impl<T> Drop for HeadGuard<'_, T> {
    fn drop(&mut self) {
        self.shared.head.0.store(*self.head, Ordering::Release);
    }
}

impl<T: Send> Consumer<T> {
    /// Ring capacity in items.
    pub fn capacity(&self) -> usize {
        self.shared.buf.len()
    }

    /// Whether the producer handle still exists. Data may still be
    /// buffered after disconnection; pops drain it first.
    pub fn is_connected(&self) -> bool {
        self.shared.producer_alive.load(Ordering::Acquire)
    }

    /// Items visible right now, from the consumer's view: one
    /// acquire-load of the producer cursor. The consumer-side counterpart
    /// of [`Producer::occupancy`] (staged-but-unpublished items are not
    /// visible here until the producer publishes).
    pub fn occupancy(&mut self) -> usize {
        self.tail_cache = self.shared.tail.0.load(Ordering::Acquire);
        (self.tail_cache - self.head) as usize
    }

    /// Items visible right now (refreshes the cached producer cursor
    /// only when the cache says empty).
    fn available(&mut self) -> u64 {
        if self.tail_cache == self.head {
            self.tail_cache = self.shared.tail.0.load(Ordering::Acquire);
        }
        self.tail_cache - self.head
    }

    /// Pop one item.
    pub fn try_pop(&mut self) -> Result<T, PopError> {
        if self.available() == 0 {
            // Order matters: check aliveness *then* re-check the cursor,
            // so a producer that pushes and exits is never misread as
            // empty-and-dead while its last items are still in the ring.
            if !self.is_connected() {
                self.tail_cache = self.shared.tail.0.load(Ordering::Acquire);
                if self.tail_cache == self.head {
                    return Err(PopError::Disconnected);
                }
            } else {
                return Err(PopError::Empty);
            }
        }
        let slot = (self.head & self.shared.mask) as usize;
        // SAFETY: head < tail (checked above), so this slot holds an
        // initialized value published by the producer; the acquire load
        // of `tail` ordered its initialization before this read.
        let value = unsafe { (*self.shared.buf[slot].get()).assume_init_read() };
        self.head += 1;
        self.shared.head.0.store(self.head, Ordering::Release);
        Ok(value)
    }

    /// Consume up to `max` items in one run: one acquire-load of the
    /// producer cursor up front, one release-store of the consumer
    /// cursor at the end (published even if `f` panics). Returns the
    /// number consumed.
    pub fn pop_batch(&mut self, max: usize, f: &mut dyn FnMut(T)) -> usize {
        let avail = self.available().min(max as u64);
        if avail == 0 {
            return 0;
        }
        let guard = HeadGuard {
            shared: &self.shared,
            head: &mut self.head,
        };
        for _ in 0..avail {
            let slot = (*guard.head & self.shared.mask) as usize;
            // SAFETY: as in `try_pop`; the guard keeps the published
            // cursor in sync with the slots actually moved out.
            let value = unsafe { (*self.shared.buf[slot].get()).assume_init_read() };
            *guard.head += 1;
            f(value);
        }
        drop(guard);
        avail as usize
    }

    /// Adaptive wait for data: spin `spins` times, yield `yields` times,
    /// then park on the doorbell for at most `park_timeout`. Designed
    /// for the shard loop: on a loaded multi-core host the spin phase
    /// catches back-to-back batches without a syscall; on an
    /// oversubscribed single-core host the yield phase hands the CPU
    /// straight to the producer instead of livelocking; a truly idle
    /// consumer parks, making the producer's doorbell check the only
    /// cost of waking it.
    pub fn wait_nonempty(
        &mut self,
        spins: u32,
        yields: u32,
        park_timeout: Duration,
    ) -> WaitOutcome {
        for _ in 0..spins {
            if self.available() > 0 {
                return WaitOutcome::Ready;
            }
            std::hint::spin_loop();
        }
        for _ in 0..yields {
            if self.available() > 0 {
                return WaitOutcome::Ready;
            }
            if !self.is_connected() {
                return self.drained_outcome();
            }
            std::thread::yield_now();
        }
        if self.available() > 0 {
            return WaitOutcome::Ready;
        }
        if !self.is_connected() {
            return self.drained_outcome();
        }
        let shared = &self.shared;
        let head = self.head;
        shared.doorbell.park(
            || {
                shared.tail.0.load(Ordering::Acquire) != head
                    || !shared.producer_alive.load(Ordering::Acquire)
            },
            park_timeout,
        );
        if self.available() > 0 {
            WaitOutcome::Ready
        } else if !self.is_connected() {
            self.drained_outcome()
        } else {
            WaitOutcome::TimedOut
        }
    }

    /// Producer is gone: `Ready` if parting items remain, else
    /// `Disconnected`.
    fn drained_outcome(&mut self) -> WaitOutcome {
        self.tail_cache = self.shared.tail.0.load(Ordering::Acquire);
        if self.tail_cache != self.head {
            WaitOutcome::Ready
        } else {
            WaitOutcome::Disconnected
        }
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        self.shared.consumer_alive.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_roundtrip() {
        let (mut tx, mut rx) = spsc::<u32>(4);
        assert_eq!(rx.try_pop(), Err(PopError::Empty));
        tx.try_push(7).unwrap();
        tx.try_push(8).unwrap();
        assert_eq!(rx.try_pop(), Ok(7));
        assert_eq!(rx.try_pop(), Ok(8));
        assert_eq!(rx.try_pop(), Err(PopError::Empty));
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let (tx, _rx) = spsc::<u8>(3);
        assert_eq!(tx.capacity(), 4);
        let (tx, _rx) = spsc::<u8>(0);
        assert_eq!(tx.capacity(), 1);
        let (tx, _rx) = spsc::<u8>(1024);
        assert_eq!(tx.capacity(), 1024);
    }

    #[test]
    fn full_boundary_at_capacity_one_and_two() {
        for cap in [1usize, 2] {
            let (mut tx, mut rx) = spsc::<usize>(cap);
            for i in 0..cap {
                tx.try_push(i).unwrap();
            }
            assert_eq!(tx.try_push(99), Err(PushError::Full(99)), "cap {cap}");
            assert_eq!(rx.try_pop(), Ok(0));
            // Space opens exactly one slot at a time.
            tx.try_push(99).unwrap();
            assert_eq!(tx.try_push(100), Err(PushError::Full(100)));
        }
    }

    #[test]
    fn wraparound_preserves_fifo() {
        let (mut tx, mut rx) = spsc::<u64>(4);
        // Push/pop far past several index wraps.
        for i in 0..1000u64 {
            tx.try_push(i).unwrap();
            if i % 2 == 1 {
                assert_eq!(rx.try_pop(), Ok(i - 1));
                assert_eq!(rx.try_pop(), Ok(i));
            }
        }
    }

    #[test]
    fn staged_items_invisible_until_publish() {
        let (mut tx, mut rx) = spsc::<u32>(8);
        tx.stage(1).unwrap();
        tx.stage(2).unwrap();
        tx.stage(3).unwrap();
        assert_eq!(tx.staged(), 3);
        assert_eq!(rx.try_pop(), Err(PopError::Empty), "staged must be hidden");
        tx.publish();
        assert_eq!(tx.staged(), 0);
        assert_eq!(rx.try_pop(), Ok(1));
        assert_eq!(rx.try_pop(), Ok(2));
        assert_eq!(rx.try_pop(), Ok(3));
    }

    #[test]
    fn pop_batch_consumes_a_run_and_frees_space() {
        let (mut tx, mut rx) = spsc::<u32>(4);
        for i in 0..4 {
            tx.try_push(i).unwrap();
        }
        assert_eq!(tx.try_push(9), Err(PushError::Full(9)));
        let mut got = Vec::new();
        assert_eq!(rx.pop_batch(16, &mut |v| got.push(v)), 4);
        assert_eq!(got, vec![0, 1, 2, 3]);
        // The single batched cursor publication freed all four slots.
        assert_eq!(tx.free_slots(), 4);
        assert_eq!(rx.pop_batch(16, &mut |_| {}), 0);
    }

    #[test]
    fn pop_batch_respects_max() {
        let (mut tx, mut rx) = spsc::<u32>(8);
        for i in 0..6 {
            tx.try_push(i).unwrap();
        }
        let mut got = Vec::new();
        assert_eq!(rx.pop_batch(2, &mut |v| got.push(v)), 2);
        assert_eq!(rx.pop_batch(100, &mut |v| got.push(v)), 4);
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn producer_drop_publishes_staged_and_disconnects() {
        let (mut tx, mut rx) = spsc::<u32>(8);
        tx.try_push(1).unwrap();
        tx.stage(2).unwrap();
        drop(tx);
        assert_eq!(rx.try_pop(), Ok(1));
        assert_eq!(rx.try_pop(), Ok(2), "staged item published by drop");
        assert_eq!(rx.try_pop(), Err(PopError::Disconnected));
        assert_eq!(
            rx.wait_nonempty(4, 1, Duration::from_millis(1)),
            WaitOutcome::Disconnected
        );
    }

    #[test]
    fn consumer_drop_disconnects_producer() {
        let (mut tx, rx) = spsc::<u32>(8);
        tx.try_push(1).unwrap();
        drop(rx);
        assert_eq!(tx.try_push(2), Err(PushError::Disconnected(2)));
        assert!(!tx.is_connected());
    }

    #[test]
    fn dropping_ring_with_items_drops_them() {
        let arc = Arc::new(());
        {
            let (mut tx, rx) = spsc::<Arc<()>>(8);
            for _ in 0..5 {
                tx.try_push(Arc::clone(&arc)).unwrap();
            }
            let mut first = None;
            rx_take(&rx, &mut first); // no-op helper keeps rx alive here
            drop(tx);
            drop(rx);
        }
        assert_eq!(Arc::strong_count(&arc), 1, "in-flight items leaked");
    }

    fn rx_take<T>(_rx: &Consumer<T>, _out: &mut Option<T>) {}

    #[test]
    fn occupancy_tracks_both_ends() {
        let (mut tx, mut rx) = spsc::<u32>(8);
        assert_eq!(tx.occupancy(), 0);
        assert_eq!(rx.occupancy(), 0);
        tx.try_push(1).unwrap();
        tx.try_push(2).unwrap();
        tx.stage(3).unwrap(); // staged counts on the producer side only
        assert_eq!(tx.occupancy(), 3);
        assert_eq!(rx.occupancy(), 2);
        tx.publish();
        assert_eq!(rx.occupancy(), 3);
        assert_eq!(rx.try_pop(), Ok(1));
        assert_eq!(tx.occupancy(), 2);
        assert_eq!(rx.occupancy(), 2);
        rx.pop_batch(8, &mut |_| {});
        assert_eq!(tx.occupancy(), 0);
        assert_eq!(rx.occupancy(), 0);
        assert_eq!(tx.free_slots(), 8);
    }

    #[test]
    fn parked_consumer_is_woken_by_push() {
        let (mut tx, mut rx) = spsc::<u32>(8);
        let waiter = std::thread::spawn(move || {
            // Long park timeout: the test only passes quickly if the
            // doorbell actually wakes us.
            let r = rx.wait_nonempty(0, 0, Duration::from_secs(30));
            (r, rx.try_pop())
        });
        std::thread::sleep(Duration::from_millis(50));
        tx.try_push(42).unwrap();
        let (outcome, v) = waiter.join().unwrap();
        assert_eq!(outcome, WaitOutcome::Ready);
        assert_eq!(v, Ok(42));
    }

    #[test]
    fn parked_consumer_is_woken_by_producer_drop() {
        let (tx, mut rx) = spsc::<u32>(8);
        let waiter = std::thread::spawn(move || rx.wait_nonempty(0, 0, Duration::from_secs(30)));
        std::thread::sleep(Duration::from_millis(50));
        drop(tx);
        assert_eq!(waiter.join().unwrap(), WaitOutcome::Disconnected);
    }
}
