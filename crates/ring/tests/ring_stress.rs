//! Cross-thread stress tests for the SPSC ring: ordering under real
//! concurrency at degenerate and typical capacities, batched-cursor
//! publication under load, and clean teardown with items in flight.
//!
//! CI runs these in release mode with `RUST_TEST_THREADS` unset so the
//! producer and consumer genuinely race.

use std::sync::Arc;
use std::time::Duration;

use rp_ring::{spsc, PopError, PushError, WaitOutcome};

const ITEMS: u64 = 100_000;

/// Retry backoff for test loops. A bare `spin_loop` would livelock a
/// 1-core host for a whole scheduler timeslice per handoff; yielding
/// hands the CPU straight to the peer thread.
fn backoff() {
    std::thread::yield_now();
}

/// Producer pushes 0..ITEMS (spinning on Full), consumer pops and
/// asserts strict FIFO order. Exercised at capacity 1 (every push/pop
/// alternates), 2, and a typical power of two.
fn ordered_transfer(cap: usize) {
    let (mut tx, mut rx) = spsc::<u64>(cap);
    let producer = std::thread::spawn(move || {
        for i in 0..ITEMS {
            let mut v = i;
            loop {
                match tx.try_push(v) {
                    Ok(()) => break,
                    Err(PushError::Full(back)) => {
                        v = back;
                        backoff();
                    }
                    Err(PushError::Disconnected(_)) => panic!("consumer died early"),
                }
            }
        }
    });
    let mut expect = 0u64;
    loop {
        match rx.try_pop() {
            Ok(v) => {
                assert_eq!(v, expect, "out-of-order at capacity {cap}");
                expect += 1;
            }
            Err(PopError::Empty) => backoff(),
            Err(PopError::Disconnected) => break,
        }
    }
    assert_eq!(expect, ITEMS, "lost items at capacity {cap}");
    producer.join().unwrap();
}

#[test]
fn cross_thread_order_capacity_1() {
    ordered_transfer(1);
}

#[test]
fn cross_thread_order_capacity_2() {
    ordered_transfer(2);
}

#[test]
fn cross_thread_order_capacity_256() {
    ordered_transfer(256);
}

/// Same transfer but the producer stages runs and publishes once per
/// run, and the consumer drains via `pop_batch` — the batched-cursor
/// path the dispatcher and shard loop actually use.
#[test]
fn batched_publication_cross_thread() {
    const RUN: usize = 64;
    let (mut tx, mut rx) = spsc::<u64>(256);
    let producer = std::thread::spawn(move || {
        let mut next = 0u64;
        while next < ITEMS {
            let mut staged = 0;
            while staged < RUN && next < ITEMS {
                match tx.stage(next) {
                    Ok(()) => {
                        next += 1;
                        staged += 1;
                    }
                    Err(PushError::Full(_)) => {
                        tx.publish();
                        backoff();
                    }
                    Err(PushError::Disconnected(_)) => panic!("consumer died early"),
                }
            }
            tx.publish();
        }
    });
    let mut expect = 0u64;
    while expect < ITEMS {
        let before = expect;
        rx.pop_batch(RUN, &mut |v| {
            assert_eq!(v, expect);
            expect += 1;
        });
        if expect == before {
            match rx.wait_nonempty(64, 8, Duration::from_millis(2)) {
                WaitOutcome::Disconnected => break,
                WaitOutcome::Ready | WaitOutcome::TimedOut => {}
            }
        }
    }
    assert_eq!(expect, ITEMS);
    producer.join().unwrap();
}

/// The parked-consumer path under a slow producer: every wakeup must be
/// delivered, none lost, across many park/ring cycles.
#[test]
fn parking_never_loses_wakeups() {
    const N: u64 = 200;
    let (mut tx, mut rx) = spsc::<u64>(4);
    let consumer = std::thread::spawn(move || {
        let mut got = 0u64;
        loop {
            match rx.try_pop() {
                Ok(v) => {
                    assert_eq!(v, got);
                    got += 1;
                }
                Err(PopError::Empty) => {
                    // Short spin so most iterations actually park.
                    match rx.wait_nonempty(4, 0, Duration::from_millis(50)) {
                        WaitOutcome::Disconnected => break,
                        WaitOutcome::Ready | WaitOutcome::TimedOut => {}
                    }
                }
                Err(PopError::Disconnected) => break,
            }
        }
        got
    });
    for i in 0..N {
        let mut v = i;
        loop {
            match tx.try_push(v) {
                Ok(()) => break,
                Err(PushError::Full(back)) => {
                    v = back;
                    std::thread::yield_now();
                }
                Err(PushError::Disconnected(_)) => panic!("consumer died early"),
            }
        }
        if i % 16 == 0 {
            // Give the consumer time to drain and park.
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    drop(tx);
    assert_eq!(consumer.join().unwrap(), N);
}

/// Teardown with items still buffered must drop every item exactly once
/// (no leaks, no double drops), in whatever order the threads stop.
#[test]
fn concurrent_teardown_drops_in_flight_items() {
    for round in 0..50 {
        let token = Arc::new(());
        let (mut tx, mut rx) = spsc::<Arc<()>>(8);
        let t = Arc::clone(&token);
        let producer = std::thread::spawn(move || {
            for _ in 0..64 {
                if tx.try_push(Arc::clone(&t)).is_err() {
                    break;
                }
            }
        });
        // Consume a varying share, then drop the consumer mid-stream.
        for _ in 0..(round % 8) {
            let _ = rx.try_pop();
        }
        drop(rx);
        producer.join().unwrap();
        assert_eq!(Arc::strong_count(&token), 1, "leak on round {round}");
    }
}

/// A consumer draining after producer death sees every published item
/// and then Disconnected — the shard shutdown path.
#[test]
fn drain_after_producer_death() {
    let (mut tx, mut rx) = spsc::<u64>(64);
    for i in 0..40 {
        tx.try_push(i).unwrap();
    }
    std::thread::spawn(move || drop(tx)).join().unwrap();
    let mut got = Vec::new();
    loop {
        match rx.try_pop() {
            Ok(v) => got.push(v),
            Err(PopError::Disconnected) => break,
            Err(PopError::Empty) => unreachable!("Empty after producer death with data drained"),
        }
    }
    assert_eq!(got, (0..40).collect::<Vec<_>>());
}
