//! Address-width abstraction: the LPM structures are generic over the
//! machine word that holds an address (`u32` for IPv4, `u128` for IPv6).

use std::fmt::Debug;
use std::hash::Hash;
use std::net::{Ipv4Addr, Ipv6Addr};

/// An unsigned word usable as an IP address of `BITS` bits.
pub trait Bits: Copy + Clone + Eq + Ord + Hash + Debug {
    /// Address width in bits (32 or 128).
    const BITS: u32;
    /// The all-zero address.
    const ZERO: Self;

    /// Keep only the top `len` bits (the canonical form of a prefix of
    /// length `len`). `len == 0` yields zero; `len == BITS` is identity.
    fn mask(self, len: u8) -> Self;

    /// Value of the bit at position `index` counted from the most
    /// significant bit (bit 0 = MSB).
    fn bit(self, index: u8) -> bool;

    /// The top `count` bits as a `usize` (for stride indexing;
    /// `count <= 16`).
    fn top_bits(self, count: u8) -> usize;

    /// Shift left by `n` bits (for stride walking).
    fn shl(self, n: u8) -> Self;

    /// Length of the longest common prefix of `self` and `other`, capped at
    /// `max` bits.
    fn common_len(self, other: Self, max: u8) -> u8;
}

impl Bits for u32 {
    const BITS: u32 = 32;
    const ZERO: Self = 0;

    #[inline]
    fn mask(self, len: u8) -> Self {
        if len == 0 {
            0
        } else {
            self & (u32::MAX << (32 - u32::from(len)))
        }
    }

    #[inline]
    fn bit(self, index: u8) -> bool {
        (self >> (31 - u32::from(index))) & 1 == 1
    }

    #[inline]
    fn top_bits(self, count: u8) -> usize {
        if count == 0 {
            0
        } else {
            (self >> (32 - u32::from(count))) as usize
        }
    }

    #[inline]
    fn shl(self, n: u8) -> Self {
        if n >= 32 {
            0
        } else {
            self << n
        }
    }

    #[inline]
    fn common_len(self, other: Self, max: u8) -> u8 {
        let lz = (self ^ other).leading_zeros().min(32) as u8;
        lz.min(max)
    }
}

impl Bits for u128 {
    const BITS: u32 = 128;
    const ZERO: Self = 0;

    #[inline]
    fn mask(self, len: u8) -> Self {
        if len == 0 {
            0
        } else {
            self & (u128::MAX << (128 - u32::from(len)))
        }
    }

    #[inline]
    fn bit(self, index: u8) -> bool {
        (self >> (127 - u32::from(index))) & 1 == 1
    }

    #[inline]
    fn top_bits(self, count: u8) -> usize {
        if count == 0 {
            0
        } else {
            (self >> (128 - u32::from(count))) as usize
        }
    }

    #[inline]
    fn shl(self, n: u8) -> Self {
        if n >= 128 {
            0
        } else {
            self << n
        }
    }

    #[inline]
    fn common_len(self, other: Self, max: u8) -> u8 {
        let lz = (self ^ other).leading_zeros().min(128) as u8;
        lz.min(max)
    }
}

/// Convert an [`Ipv4Addr`] to its `u32` bits.
pub fn v4_bits(a: Ipv4Addr) -> u32 {
    u32::from(a)
}

/// Convert an [`Ipv6Addr`] to its `u128` bits.
pub fn v6_bits(a: Ipv6Addr) -> u128 {
    u128::from(a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_u32() {
        let a: u32 = 0xFFFF_FFFF;
        assert_eq!(a.mask(0), 0);
        assert_eq!(a.mask(8), 0xFF00_0000);
        assert_eq!(a.mask(32), a);
        let b: u32 = 0x8180_9901; // 129.128.153.1
        assert_eq!(b.mask(8), 0x8100_0000);
    }

    #[test]
    fn bit_u32_msb_first() {
        let a: u32 = 0x8000_0001;
        assert!(a.bit(0));
        assert!(!a.bit(1));
        assert!(a.bit(31));
    }

    #[test]
    fn top_bits_u32() {
        let a: u32 = 0xAB00_0000;
        assert_eq!(a.top_bits(8), 0xAB);
        assert_eq!(a.top_bits(4), 0xA);
        assert_eq!(a.top_bits(0), 0);
    }

    #[test]
    fn mask_u128() {
        let a: u128 = u128::MAX;
        assert_eq!(a.mask(0), 0);
        assert_eq!(a.mask(64), 0xFFFF_FFFF_FFFF_FFFF_0000_0000_0000_0000);
        assert_eq!(a.mask(128), a);
    }

    #[test]
    fn bit_u128() {
        let a: u128 = 1u128 << 127 | 1;
        assert!(a.bit(0));
        assert!(a.bit(127));
        assert!(!a.bit(64));
    }

    #[test]
    fn shl_saturates() {
        assert_eq!(5u32.shl(32), 0);
        assert_eq!(5u128.shl(128), 0);
        assert_eq!(1u32.shl(3), 8);
    }

    #[test]
    fn common_len_cases() {
        assert_eq!(0xFF00_0000u32.common_len(0xFF00_0000, 32), 32);
        assert_eq!(0xFF00_0000u32.common_len(0xFE00_0000, 32), 7);
        assert_eq!(0x0000_0000u32.common_len(0x8000_0000, 32), 0);
        assert_eq!(0xFF00_0000u32.common_len(0xFF00_0000, 16), 16);
        assert_eq!(u128::MAX.common_len(u128::MAX, 128), 128);
        assert_eq!(u128::MAX.common_len(u128::MAX - 1, 128), 127);
    }
}
