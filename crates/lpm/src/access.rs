//! Memory-access accounting.
//!
//! The paper's Table 2 expresses worst-case filter-lookup cost in *memory
//! accesses* (then multiplies by a 60 ns access delay), because on the 1998
//! testbed every hash probe and trie-node visit was a likely cache miss.
//! Each LPM structure here charges one unit per node visit / hash-bucket
//! probe through a shared [`AccessCounter`], so the benches can report the
//! same deterministic metric regardless of the host machine.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared memory-access counter. Cloning shares the underlying count.
/// Relaxed atomics keep the counter `Send` so a whole classifier (and the
/// router shard owning it) can move onto a worker thread; each shard still
/// runs its data path single-threaded per the paper's in-kernel design, so
/// the counter is never actually contended.
#[derive(Debug, Clone, Default)]
pub struct AccessCounter {
    count: Arc<AtomicU64>,
}

impl AccessCounter {
    /// New counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge `n` memory accesses.
    #[inline]
    pub fn charge(&self, n: u64) {
        self.count.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Reset to zero.
    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
    }

    /// Run `f` and return `(result, accesses charged during f)`.
    pub fn measure<T>(&self, f: impl FnOnce() -> T) -> (T, u64) {
        let before = self.get();
        let out = f();
        (out, self.get() - before)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_count() {
        let a = AccessCounter::new();
        let b = a.clone();
        a.charge(3);
        b.charge(2);
        assert_eq!(a.get(), 5);
        assert_eq!(b.get(), 5);
    }

    #[test]
    fn measure_delta() {
        let c = AccessCounter::new();
        c.charge(10);
        let (v, delta) = c.measure(|| {
            c.charge(7);
            42
        });
        assert_eq!(v, 42);
        assert_eq!(delta, 7);
        assert_eq!(c.get(), 17);
    }

    #[test]
    fn reset() {
        let c = AccessCounter::new();
        c.charge(5);
        c.reset();
        assert_eq!(c.get(), 0);
    }
}
