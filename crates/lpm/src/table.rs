//! The common LPM interface implemented by every BMP algorithm, mirroring
//! how the paper treats best-matching-prefix functions as interchangeable
//! plugins behind one interface.

use crate::bits::Bits;
use std::fmt;

/// A prefix: the canonical (masked) address bits plus a length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Prefix<A: Bits> {
    bits: A,
    len: u8,
}

impl<A: Bits> Prefix<A> {
    /// Construct, canonicalising (masking off bits beyond `len`).
    ///
    /// # Panics
    /// Panics if `len` exceeds the address width — a programming error, not
    /// a data error.
    pub fn new(bits: A, len: u8) -> Self {
        assert!(u32::from(len) <= A::BITS, "prefix length out of range");
        Prefix {
            bits: bits.mask(len),
            len,
        }
    }

    /// The default (zero-length, match-everything) prefix.
    pub fn default_route() -> Self {
        Prefix {
            bits: A::ZERO,
            len: 0,
        }
    }

    /// Masked address bits.
    pub fn bits(&self) -> A {
        self.bits
    }

    /// Prefix length.
    pub fn len(&self) -> u8 {
        self.len
    }

    /// True for the zero-length prefix.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Does this prefix cover `addr`?
    pub fn matches(&self, addr: A) -> bool {
        addr.mask(self.len) == self.bits
    }

    /// Does this prefix cover all addresses covered by `other`? (i.e. is it
    /// equal or shorter and agreeing on its bits)
    pub fn covers(&self, other: &Prefix<A>) -> bool {
        self.len <= other.len && other.bits.mask(self.len) == self.bits
    }
}

impl<A: Bits> fmt::Display for Prefix<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}/{}", self.bits, self.len)
    }
}

/// The interface every BMP algorithm implements. `V` is the value attached
/// to each prefix (a next hop, a DAG child pointer, …).
pub trait LpmTable<A: Bits, V> {
    /// Insert or replace the value for `prefix`. Returns the previous value
    /// if the prefix was present.
    fn insert(&mut self, prefix: Prefix<A>, value: V) -> Option<V>;

    /// Remove a prefix, returning its value.
    fn remove(&mut self, prefix: Prefix<A>) -> Option<V>;

    /// Longest-prefix match: the value and length of the most specific
    /// prefix covering `addr`.
    fn lookup(&self, addr: A) -> Option<(&V, u8)>;

    /// Exact-match fetch of a stored prefix.
    fn get(&self, prefix: Prefix<A>) -> Option<&V>;

    /// Number of stored prefixes.
    fn len(&self) -> usize;

    /// True when no prefixes are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate all stored prefixes (order unspecified).
    fn prefixes(&self) -> Vec<Prefix<A>>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalises() {
        let p = Prefix::new(0x8180_9901u32, 8); // 129.128.153.1/8
        assert_eq!(p.bits(), 0x8100_0000);
        assert_eq!(p.len(), 8);
    }

    #[test]
    fn matches_and_covers() {
        let p8 = Prefix::new(0x8100_0000u32, 8); // 129/8
        let p16 = Prefix::new(0x8101_0000u32, 16); // 129.1/16
        assert!(p8.matches(0x8122_3344));
        assert!(!p8.matches(0x8022_3344));
        assert!(p8.covers(&p16));
        assert!(!p16.covers(&p8));
        assert!(p8.covers(&p8));
        let def = Prefix::<u32>::default_route();
        assert!(def.matches(0xFFFF_FFFF));
        assert!(def.covers(&p8));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn overlong_prefix_panics() {
        Prefix::new(0u32, 33);
    }
}
