//! # rp-lpm — longest-prefix-match algorithms (the paper's "BMP plugins")
//!
//! The Router Plugins architecture makes the best-matching-prefix (BMP)
//! function itself a plugin: the DAG classifier calls a pluggable matcher at
//! each IP-address level (paper §5.1.1). The paper ships two BMP plugins —
//! a PATRICIA trie ("slower but freely available") and *binary search on
//! prefix lengths* (Waldvogel et al., SIGCOMM '97). This crate implements
//! both, plus controlled prefix expansion (Srinivasan & Varghese,
//! SIGMETRICS '98), which the paper cites as the state of the art.
//!
//! All structures are generic over the address width through the [`Bits`]
//! trait (`u32` for IPv4, `u128` for IPv6) and count their **memory
//! accesses** through an [`AccessCounter`], because the paper's Table 2 is
//! denominated in memory accesses, not nanoseconds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod bits;
pub mod bspl;
pub mod cpe;
pub mod patricia;
pub mod table;

pub use access::AccessCounter;
pub use bits::Bits;
pub use bspl::BsplTable;
pub use cpe::CpeTable;
pub use patricia::PatriciaTable;
pub use table::{LpmTable, Prefix};
