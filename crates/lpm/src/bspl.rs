//! Binary Search on Prefix Lengths (Waldvogel, Varghese, Turner, Plattner —
//! SIGCOMM '97): the paper's fast BMP plugin.
//!
//! One hash table per *populated* prefix length. A lookup binary-searches
//! the sorted list of populated lengths: a hash hit at length `m` means "a
//! prefix or marker of length `m` matches — try longer", a miss means "try
//! shorter". **Markers** are inserted on the binary-search path of every
//! real prefix so that hits reliably guide the search toward longer
//! matches, and every table entry carries its precomputed **best matching
//! prefix** (`bmp`) so that a marker-guided descent that ultimately fails
//! still knows the best shorter answer without backtracking.
//!
//! Worst-case lookup cost: `ceil(log2(k+1))` hash probes for `k` populated
//! lengths — at most 5 for IPv4 (k ≤ 31 non-trivial lengths fit height 5)
//! and 7 for IPv6 with realistic length distributions, which is the
//! `log2(32)`/`log2(128)` accounting the paper's Table 2 uses. Each probe
//! is charged as one memory access.
//!
//! Updates: inserting a prefix whose length is already populated touches
//! only its own search path plus the entries it covers (found through a
//! PATRICIA side index). Inserting the *first* prefix of a new length
//! changes the search tree shape, so the structure rebuilds — that happens
//! at most once per distinct length (≤ W times over a table's lifetime),
//! keeping bulk loads near-linear.

use crate::access::AccessCounter;
use crate::bits::Bits;
use crate::patricia::PatriciaTable;
use crate::table::{LpmTable, Prefix};
use std::collections::HashMap;

#[derive(Debug, Clone)]
struct Entry<V> {
    /// Number of real prefixes whose search path passes through this entry
    /// as a marker (not counting a real prefix stored here).
    marker_refs: u32,
    /// True when a real prefix of exactly this length/key is stored.
    has_value: bool,
    /// Best real matching prefix of length ≤ this entry's length covering
    /// this entry's key — includes the entry's own value when `has_value`.
    bmp: Option<(V, u8)>,
}

/// BSPL longest-prefix-match table.
///
/// ```
/// use rp_lpm::{BsplTable, LpmTable, Prefix};
///
/// let mut t = BsplTable::new();
/// t.insert(Prefix::new(u32::from(u32::from_be_bytes([10, 0, 0, 0])), 8), "ten/8");
/// t.insert(Prefix::new(u32::from_be_bytes([10, 10, 0, 0]), 16), "ten.ten/16");
/// let addr = u32::from_be_bytes([10, 10, 3, 4]);
/// assert_eq!(t.lookup(addr), Some((&"ten.ten/16", 16)));
/// ```
pub struct BsplTable<A: Bits, V: Clone> {
    /// One hash table per populated length, keyed by masked address bits.
    /// Stored contiguously, parallel to `lengths`: the binary search over
    /// `lengths` yields the slot index directly, so a probe indexes this
    /// vector instead of hashing the length through an outer map — one
    /// fewer dependent memory access per probe, and the per-length table
    /// headers sit in adjacent cache lines.
    tables: Vec<HashMap<A, Entry<V>>>,
    /// Sorted list of populated lengths (excluding 0), parallel to
    /// `tables`.
    lengths: Vec<u8>,
    /// Real-prefix count per length.
    len_counts: HashMap<u8, usize>,
    /// Source of truth for real prefixes and their values.
    real: PatriciaTable<A, V>,
    /// Index of every entry key (markers included) for covered-entry
    /// enumeration during updates.
    key_index: PatriciaTable<A, ()>,
    /// Value for the zero-length prefix, handled without a hash probe (a
    /// default route / full wildcard needs no search).
    default_value: Option<V>,
    counter: AccessCounter,
}

impl<A: Bits, V: Clone> Default for BsplTable<A, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A: Bits, V: Clone> BsplTable<A, V> {
    /// Empty table.
    pub fn new() -> Self {
        Self::with_counter(AccessCounter::new())
    }

    /// Empty table charging probes to `counter`.
    pub fn with_counter(counter: AccessCounter) -> Self {
        BsplTable {
            tables: Vec::new(),
            lengths: Vec::new(),
            len_counts: HashMap::new(),
            real: PatriciaTable::new(),
            key_index: PatriciaTable::new(),
            default_value: None,
            counter,
        }
    }

    /// The access counter used by this table.
    pub fn counter(&self) -> &AccessCounter {
        &self.counter
    }

    /// Number of populated lengths (binary-search domain size).
    pub fn populated_lengths(&self) -> usize {
        self.lengths.len()
    }

    /// Worst-case hash probes for the current length set:
    /// `ceil(log2(k+1))`.
    pub fn worst_case_probes(&self) -> u32 {
        let k = self.lengths.len() as u32;
        (k + 1).next_power_of_two().trailing_zeros()
    }

    /// The binary-search probe path for a target length within the current
    /// sorted length set: lengths probed before reaching `target`
    /// (exclusive), in probe order. `target` must be present.
    fn marker_path(&self, target: u8) -> Vec<u8> {
        let mut path = Vec::new();
        let (mut lo, mut hi) = (0isize, self.lengths.len() as isize - 1);
        while lo <= hi {
            let mid = ((lo + hi) / 2) as usize;
            let m = self.lengths[mid];
            match m.cmp(&target) {
                std::cmp::Ordering::Equal => return path,
                std::cmp::Ordering::Less => {
                    path.push(m);
                    lo = mid as isize + 1;
                }
                std::cmp::Ordering::Greater => hi = mid as isize - 1,
            }
        }
        unreachable!("target length not in length set")
    }

    /// Slot of `len` in the parallel `lengths`/`tables` vectors, if that
    /// length is populated.
    fn slot_of(&self, len: u8) -> Option<usize> {
        self.lengths.binary_search(&len).ok()
    }

    fn entry_key_exists(&self, len: u8, key: A) -> bool {
        self.slot_of(len)
            .map(|s| self.tables[s].contains_key(&key))
            .unwrap_or(false)
    }

    /// Create-or-update the entry at `(len, key)`, recomputing its bmp from
    /// the real-prefix trie.
    fn touch_entry(&mut self, len: u8, key: A, marker: bool, has_value: Option<bool>) {
        let bmp = self
            .real
            .lookup_max_len(key, len)
            .map(|(v, l)| (v.clone(), l));
        let existed = self.entry_key_exists(len, key);
        let slot = self
            .slot_of(len)
            .expect("touch_entry called for an unpopulated length");
        let e = self.tables[slot].entry(key).or_insert(Entry {
            marker_refs: 0,
            has_value: false,
            bmp: None,
        });
        if marker {
            e.marker_refs += 1;
        }
        if let Some(hv) = has_value {
            e.has_value = hv;
        }
        e.bmp = bmp;
        if !existed {
            self.key_index.insert(Prefix::new(key, len), ());
        }
    }

    /// Insert markers and the real entry for `prefix` along its search
    /// path; assumes `prefix.len()` is already in the length set and the
    /// real trie is up to date.
    fn install_paths(&mut self, prefix: Prefix<A>) {
        for m in self.marker_path(prefix.len()) {
            self.touch_entry(m, prefix.bits().mask(m), true, None);
        }
        self.touch_entry(prefix.len(), prefix.bits(), false, Some(true));
    }

    /// Refresh the bmp of every entry covered by `prefix` (whose bmp may
    /// have been changed by an insert or remove of that prefix).
    fn refresh_covered(&mut self, prefix: Prefix<A>) {
        for key_pfx in self.key_index.covered_by(prefix) {
            let len = key_pfx.len();
            let key = key_pfx.bits();
            let bmp = self
                .real
                .lookup_max_len(key, len)
                .map(|(v, l)| (v.clone(), l));
            if let Some(s) = self.slot_of(len) {
                if let Some(e) = self.tables[s].get_mut(&key) {
                    e.bmp = bmp;
                }
            }
        }
    }

    /// Rebuild all hash tables and markers from the real-prefix trie.
    /// Called when the set of populated lengths changes.
    fn rebuild(&mut self) {
        self.key_index = PatriciaTable::new();
        let prefixes = self.real.prefixes();
        let mut lengths: Vec<u8> = self
            .len_counts
            .iter()
            .filter(|&(_, c)| *c > 0)
            .map(|(l, _)| *l)
            .collect();
        lengths.sort_unstable();
        self.lengths = lengths;
        self.tables = (0..self.lengths.len()).map(|_| HashMap::new()).collect();
        for p in prefixes {
            if !p.is_empty() {
                self.install_paths(p);
            }
        }
    }

    /// Expected-case probe count for `addr` (for instrumentation): runs a
    /// lookup and returns how many probes it used.
    pub fn probes_for(&self, addr: A) -> u64 {
        let before = self.counter.get();
        let _ = self.lookup(addr);
        self.counter.get() - before
    }
}

impl<A: Bits, V: Clone> LpmTable<A, V> for BsplTable<A, V> {
    fn insert(&mut self, prefix: Prefix<A>, value: V) -> Option<V> {
        if prefix.is_empty() {
            let old = self.default_value.replace(value.clone());
            self.real.insert(prefix, value);
            return old;
        }
        let old = self.real.insert(prefix, value);
        if old.is_some() {
            // Replacement: lengths unchanged; refresh bmps below this
            // prefix (they may cache the old value) and its own entry.
            self.refresh_covered(prefix);
            return old;
        }
        let count = self.len_counts.entry(prefix.len()).or_insert(0);
        *count += 1;
        if *count == 1 {
            // New populated length: the search tree changes shape.
            self.rebuild();
        } else {
            self.install_paths(prefix);
        }
        self.refresh_covered(prefix);
        None
    }

    fn remove(&mut self, prefix: Prefix<A>) -> Option<V> {
        if prefix.is_empty() {
            self.real.remove(prefix);
            return self.default_value.take();
        }
        let old = self.real.remove(prefix)?;
        let count = self.len_counts.get_mut(&prefix.len()).unwrap();
        *count -= 1;
        if *count == 0 {
            self.len_counts.remove(&prefix.len());
            self.rebuild();
        } else {
            // Unwind this prefix's markers.
            for m in self.marker_path(prefix.len()) {
                let key = prefix.bits().mask(m);
                let mut drop_entry = false;
                if let Some(s) = self.slot_of(m) {
                    let t = &mut self.tables[s];
                    if let Some(e) = t.get_mut(&key) {
                        e.marker_refs -= 1;
                        drop_entry = e.marker_refs == 0 && !e.has_value;
                    }
                    if drop_entry {
                        t.remove(&key);
                        self.key_index.remove(Prefix::new(key, m));
                    }
                }
            }
            // The real entry itself.
            let mut drop_entry = false;
            if let Some(s) = self.slot_of(prefix.len()) {
                let t = &mut self.tables[s];
                if let Some(e) = t.get_mut(&prefix.bits()) {
                    e.has_value = false;
                    drop_entry = e.marker_refs == 0;
                }
                if drop_entry {
                    t.remove(&prefix.bits());
                    self.key_index.remove(prefix);
                }
            }
            self.refresh_covered(prefix);
        }
        Some(old)
    }

    fn lookup(&self, addr: A) -> Option<(&V, u8)> {
        let mut best: Option<(&V, u8)> = self.default_value.as_ref().map(|v| (v, 0));
        let (mut lo, mut hi) = (0isize, self.lengths.len() as isize - 1);
        while lo <= hi {
            let mid = ((lo + hi) / 2) as usize;
            let m = self.lengths[mid];
            self.counter.charge(1); // one hash probe
            match self.tables[mid].get(&addr.mask(m)) {
                Some(e) => {
                    if let Some((v, l)) = &e.bmp {
                        best = Some((v, *l));
                    }
                    lo = mid as isize + 1;
                }
                None => hi = mid as isize - 1,
            }
        }
        best
    }

    fn get(&self, prefix: Prefix<A>) -> Option<&V> {
        if prefix.is_empty() {
            return self.default_value.as_ref();
        }
        self.real.get(prefix)
    }

    fn len(&self) -> usize {
        self.real.len()
    }

    fn prefixes(&self) -> Vec<Prefix<A>> {
        self.real.prefixes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(bits: u32, len: u8) -> Prefix<u32> {
        Prefix::new(bits, len)
    }

    #[test]
    fn paper_table1_prefixes() {
        let mut t = BsplTable::new();
        t.insert(p(0x8100_0000, 8), "129.*");
        t.insert(p(0x80FC_9901, 32), "128.252.153.1");
        t.insert(p(0x80FC_9900, 24), "128.252.153.*");
        assert_eq!(t.lookup(0x80FC_9901).unwrap(), (&"128.252.153.1", 32));
        assert_eq!(t.lookup(0x80FC_994D).unwrap(), (&"128.252.153.*", 24));
        assert_eq!(t.lookup(0x8101_0203).unwrap(), (&"129.*", 8));
        assert!(t.lookup(0x8201_0203).is_none());
    }

    /// The classic case that breaks marker-less binary search: a short real
    /// prefix plus a longer prefix whose marker lures the search upward.
    #[test]
    fn marker_fallback_via_bmp() {
        let mut t = BsplTable::new();
        t.insert(p(0x0A00_0000, 8), "ten/8");
        t.insert(p(0x0A0A_0000, 24), "ten.ten.0/24");
        // Address shares 16 bits with the /24 (so any /16-ish marker hits)
        // but diverges before /24 → correct answer is the /8.
        let addr = 0x0A0A_FF01;
        assert_eq!(t.lookup(addr).unwrap(), (&"ten/8", 8));
    }

    #[test]
    fn default_route_without_probe() {
        let mut t: BsplTable<u32, &str> = BsplTable::new();
        t.insert(Prefix::default_route(), "default");
        t.counter().reset();
        assert_eq!(t.lookup(0x1234_5678).unwrap(), (&"default", 0));
        assert_eq!(t.counter().get(), 0, "default route must cost no probes");
    }

    #[test]
    fn probe_count_is_logarithmic() {
        let mut t = BsplTable::new();
        // Populate 31 distinct lengths → worst case 5 probes.
        for len in 1..=31u8 {
            t.insert(Prefix::new(0xFFFF_FFFFu32, len), len);
        }
        assert_eq!(t.populated_lengths(), 31);
        t.counter().reset();
        let _ = t.lookup(0xFFFF_FFFF);
        assert!(t.counter().get() <= 5, "probes = {}", t.counter().get());
        t.counter().reset();
        let _ = t.lookup(0x0000_0001); // all misses
        assert!(t.counter().get() <= 5, "probes = {}", t.counter().get());
    }

    #[test]
    fn worst_case_probe_formula() {
        let mut t: BsplTable<u32, u8> = BsplTable::new();
        assert_eq!(t.worst_case_probes(), 0);
        t.insert(p(0x8000_0000, 1), 0);
        assert_eq!(t.worst_case_probes(), 1);
        for len in 2..=3u8 {
            t.insert(Prefix::new(0xFFFF_FFFFu32, len), 0);
        }
        assert_eq!(t.worst_case_probes(), 2); // k=3
        for len in 4..=7u8 {
            t.insert(Prefix::new(0xFFFF_FFFFu32, len), 0);
        }
        assert_eq!(t.worst_case_probes(), 3); // k=7
    }

    #[test]
    fn replace_updates_value_everywhere() {
        let mut t = BsplTable::new();
        t.insert(p(0x0A00_0000, 8), 1);
        t.insert(p(0x0A0A_0000, 24), 2);
        assert_eq!(t.insert(p(0x0A00_0000, 8), 99), Some(1));
        // Marker bmps referencing the old value must be refreshed.
        assert_eq!(t.lookup(0x0A0A_FF01).unwrap(), (&99, 8));
        assert_eq!(t.lookup(0x0A00_0001).unwrap(), (&99, 8));
    }

    #[test]
    fn remove_restores_previous_best() {
        let mut t = BsplTable::new();
        t.insert(p(0x0A00_0000, 8), "eight");
        t.insert(p(0x0A0A_0000, 16), "sixteen");
        t.insert(p(0x0A0A_0A00, 24), "twentyfour");
        let addr = 0x0A0A_0A01;
        assert_eq!(t.lookup(addr).unwrap().1, 24);
        assert_eq!(t.remove(p(0x0A0A_0A00, 24)), Some("twentyfour"));
        assert_eq!(t.lookup(addr).unwrap(), (&"sixteen", 16));
        assert_eq!(t.remove(p(0x0A0A_0000, 16)), Some("sixteen"));
        assert_eq!(t.lookup(addr).unwrap(), (&"eight", 8));
        assert_eq!(t.remove(p(0x0A00_0000, 8)), Some("eight"));
        assert_eq!(t.lookup(addr), None);
        assert_eq!(t.len(), 0);
        assert_eq!(t.populated_lengths(), 0);
    }

    #[test]
    fn remove_with_shared_markers() {
        let mut t = BsplTable::new();
        // Two /24s sharing their /16 marker region, plus lengths 8 and 16
        // to give the search tree structure.
        t.insert(p(0x0A00_0000, 8), 8u32);
        t.insert(p(0x0A0A_0000, 16), 16);
        t.insert(p(0x0A0A_0A00, 24), 241);
        t.insert(p(0x0A0A_0B00, 24), 242);
        assert_eq!(t.remove(p(0x0A0A_0A00, 24)), Some(241));
        // The sibling /24 must still be reachable through shared markers.
        assert_eq!(t.lookup(0x0A0A_0B05).unwrap(), (&242, 24));
        assert_eq!(t.lookup(0x0A0A_0A05).unwrap(), (&16, 16));
    }

    #[test]
    fn v6_lookup() {
        let mut t: BsplTable<u128, &str> = BsplTable::new();
        let base: u128 = 0x2001_0db8 << 96;
        t.insert(Prefix::new(base, 32), "site");
        t.insert(Prefix::new(base | (1 << 64), 64), "subnet");
        t.insert(Prefix::new(base | (1 << 64) | 42, 128), "host");
        assert_eq!(t.lookup(base | (1 << 64) | 42).unwrap(), (&"host", 128));
        assert_eq!(t.lookup(base | (1 << 64) | 43).unwrap(), (&"subnet", 64));
        assert_eq!(t.lookup(base | 7).unwrap(), (&"site", 32));
        assert_eq!(t.lookup(1), None);
    }

    #[test]
    fn randomised_against_patricia() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let mut bspl = BsplTable::new();
        let mut pat = PatriciaTable::new();
        for i in 0..600u32 {
            // Cluster prefixes so covers/overlaps actually happen.
            let bits: u32 = (rng.gen::<u32>() & 0xFF00_FFFF) | 0x000A_0000;
            let len: u8 = rng.gen_range(0..=32);
            let pfx = Prefix::new(bits, len);
            bspl.insert(pfx, i);
            pat.insert(pfx, i);
            if rng.gen_bool(0.2) {
                let rb: u32 = (rng.gen::<u32>() & 0xFF00_FFFF) | 0x000A_0000;
                let rl: u8 = rng.gen_range(0..=32);
                let rp = Prefix::new(rb, rl);
                assert_eq!(bspl.remove(rp), pat.remove(rp), "remove {rp}");
            }
        }
        for _ in 0..3000 {
            let addr: u32 = (rng.gen::<u32>() & 0xFF00_FFFF) | 0x000A_0000;
            let want = pat.lookup(addr).map(|(v, l)| (*v, l));
            let got = bspl.lookup(addr).map(|(v, l)| (*v, l));
            assert_eq!(got, want, "addr {addr:08x}");
        }
    }
}
