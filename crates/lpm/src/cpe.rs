//! Controlled Prefix Expansion (Srinivasan & Varghese, SIGMETRICS '98): a
//! fixed-stride multibit trie. The paper cites CPE as the state-of-the-art
//! BMP that makes its DAG classifier "more or less independent of the
//! number of filters"; worst-case lookup cost is the number of stride
//! levels, each charged as one memory access.
//!
//! Prefixes whose length falls inside a stride are *expanded* into all
//! matching slots of that level; on collision the longer original prefix
//! wins (it is more specific by construction).

use crate::access::AccessCounter;
use crate::bits::Bits;
use crate::patricia::PatriciaTable;
use crate::table::{LpmTable, Prefix};

struct Slot<V> {
    /// Best expanded prefix ending at this level: value + original length.
    value: Option<(V, u8)>,
    child: Option<Box<Node<V>>>,
}

impl<V> Default for Slot<V> {
    fn default() -> Self {
        Slot {
            value: None,
            child: None,
        }
    }
}

struct Node<V> {
    slots: Vec<Slot<V>>,
}

impl<V> Node<V> {
    fn new(stride: u8) -> Box<Self> {
        let mut slots = Vec::with_capacity(1 << stride);
        slots.resize_with(1 << stride, Slot::default);
        Box::new(Node { slots })
    }
}

/// Fixed-stride multibit trie with controlled prefix expansion.
pub struct CpeTable<A: Bits, V: Clone> {
    root: Box<Node<V>>,
    strides: Vec<u8>,
    /// Source of truth, used for removal rebuilds and exact gets.
    real: PatriciaTable<A, V>,
    counter: AccessCounter,
}

impl<A: Bits, V: Clone> CpeTable<A, V> {
    /// Build with the given stride schedule, which must sum to the address
    /// width. The canonical schedules are [`CpeTable::new_v4`] /
    /// [`CpeTable::new_v6`].
    ///
    /// # Panics
    /// Panics when the strides do not sum to `A::BITS` or any stride
    /// exceeds 16 bits (slot vectors get unreasonably large beyond that).
    pub fn with_strides(strides: Vec<u8>) -> Self {
        let total: u32 = strides.iter().map(|s| u32::from(*s)).sum();
        assert_eq!(total, A::BITS, "strides must cover the address width");
        assert!(strides.iter().all(|s| *s > 0 && *s <= 16));
        CpeTable {
            root: Node::new(strides[0]),
            strides,
            real: PatriciaTable::new(),
            counter: AccessCounter::new(),
        }
    }

    /// The access counter used by this table.
    pub fn counter(&self) -> &AccessCounter {
        &self.counter
    }

    /// Number of stride levels (= worst-case memory accesses per lookup).
    pub fn levels(&self) -> usize {
        self.strides.len()
    }

    fn insert_expanded(&mut self, prefix: Prefix<A>, value: V) {
        let mut node = &mut self.root;
        let mut consumed: u8 = 0;
        let mut level = 0usize;
        let mut bits = prefix.bits();
        loop {
            let stride = self.strides[level];
            if prefix.len() <= consumed + stride {
                // Expand into this level: all slots whose top bits match.
                let fixed = prefix.len() - consumed;
                let base = bits.top_bits(fixed) << (stride - fixed);
                let count = 1usize << (stride - fixed);
                for idx in base..base + count {
                    let slot = &mut node.slots[idx];
                    let replace = match &slot.value {
                        Some((_, l)) => prefix.len() >= *l,
                        None => true,
                    };
                    if replace {
                        slot.value = Some((value.clone(), prefix.len()));
                    }
                }
                return;
            }
            let idx = bits.top_bits(stride);
            bits = bits.shl(stride);
            consumed += stride;
            let next_stride = self.strides[level + 1];
            node = node.slots[idx]
                .child
                .get_or_insert_with(|| Node::new(next_stride));
            level += 1;
        }
    }

    fn rebuild(&mut self) {
        self.root = Node::new(self.strides[0]);
        for p in self.real.prefixes() {
            // Re-expansion order doesn't matter: longer-wins comparison is
            // order-independent.
            let v = self.real.get(p).expect("prefix just listed").clone();
            self.insert_expanded(p, v);
        }
    }
}

impl<V: Clone> CpeTable<u32, V> {
    /// IPv4 schedule 8-8-8-8 (4 levels).
    pub fn new_v4() -> CpeTable<u32, V> {
        CpeTable::with_strides(vec![8, 8, 8, 8])
    }
}

impl<V: Clone> CpeTable<u128, V> {
    /// IPv6 schedule 16×8 (8 levels).
    pub fn new_v6() -> CpeTable<u128, V> {
        CpeTable::with_strides(vec![16; 8])
    }
}

impl<A: Bits, V: Clone> LpmTable<A, V> for CpeTable<A, V> {
    fn insert(&mut self, prefix: Prefix<A>, value: V) -> Option<V> {
        let old = self.real.insert(prefix, value.clone());
        // Re-expansion alone is correct for replacement too: a slot holds
        // the longest covering prefix, and two distinct prefixes of equal
        // length never share a slot, so the equal-length overwrite below
        // hits exactly the slots whose best prefix is `prefix`.
        self.insert_expanded(prefix, value);
        old
    }

    fn remove(&mut self, prefix: Prefix<A>) -> Option<V> {
        let old = self.real.remove(prefix)?;
        // Expansion is lossy (slots do not remember what they overwrote),
        // so removal rebuilds. Removals are control-path events.
        self.rebuild();
        Some(old)
    }

    fn lookup(&self, addr: A) -> Option<(&V, u8)> {
        let mut node = &self.root;
        let mut bits = addr;
        let mut best: Option<(&V, u8)> = None;
        for (level, stride) in self.strides.iter().enumerate() {
            self.counter.charge(1);
            let idx = bits.top_bits(*stride);
            let slot = &node.slots[idx];
            if let Some((v, l)) = &slot.value {
                best = Some((v, *l));
            }
            match &slot.child {
                Some(child) if level + 1 < self.strides.len() => {
                    node = child;
                    bits = bits.shl(*stride);
                }
                _ => break,
            }
        }
        best
    }

    fn get(&self, prefix: Prefix<A>) -> Option<&V> {
        self.real.get(prefix)
    }

    fn len(&self) -> usize {
        self.real.len()
    }

    fn prefixes(&self) -> Vec<Prefix<A>> {
        self.real.prefixes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(bits: u32, len: u8) -> Prefix<u32> {
        Prefix::new(bits, len)
    }

    fn table() -> CpeTable<u32, &'static str> {
        CpeTable::<u32, &'static str>::new_v4()
    }

    #[test]
    fn paper_table1_prefixes() {
        let mut t = table();
        t.insert(p(0x8100_0000, 8), "129.*");
        t.insert(p(0x80FC_9901, 32), "128.252.153.1");
        t.insert(p(0x80FC_9900, 24), "128.252.153.*");
        assert_eq!(t.lookup(0x80FC_9901).unwrap(), (&"128.252.153.1", 32));
        assert_eq!(t.lookup(0x80FC_994D).unwrap(), (&"128.252.153.*", 24));
        assert_eq!(t.lookup(0x8101_0203).unwrap(), (&"129.*", 8));
        assert!(t.lookup(0x8201_0203).is_none());
    }

    #[test]
    fn mid_stride_expansion() {
        let mut t = table();
        // /6 expands into 4 slots of the first 8-bit level.
        t.insert(p(0x8800_0000, 6), "a"); // 136.0.0.0/6 → 136..139
        assert_eq!(t.lookup(0x8801_0000).unwrap(), (&"a", 6));
        assert_eq!(t.lookup(0x8B01_0000).unwrap(), (&"a", 6)); // 139.x
        assert!(t.lookup(0x8C01_0000).is_none()); // 140.x
                                                  // A /7 inside the /6 takes priority in its half.
        t.insert(p(0x8A00_0000, 7), "b"); // 138..139
        assert_eq!(t.lookup(0x8B01_0000).unwrap(), (&"b", 7));
        assert_eq!(t.lookup(0x8901_0000).unwrap(), (&"a", 6));
    }

    #[test]
    fn lookup_cost_is_levels() {
        let mut t = table();
        t.insert(p(0xFFFF_FFFF, 32), "deep");
        t.counter().reset();
        let _ = t.lookup(0xFFFF_FFFF);
        assert_eq!(t.counter().get(), 4);
        // Shallow miss costs a single access.
        t.counter().reset();
        let _ = t.lookup(0x0000_0001);
        assert_eq!(t.counter().get(), 1);
    }

    #[test]
    fn remove_rebuilds() {
        let mut t = table();
        t.insert(p(0x0A00_0000, 8), "eight");
        t.insert(p(0x0A0A_0000, 16), "sixteen");
        assert_eq!(t.remove(p(0x0A0A_0000, 16)), Some("sixteen"));
        assert_eq!(t.lookup(0x0A0A_0101).unwrap(), (&"eight", 8));
        assert_eq!(t.remove(p(0x0A0A_0000, 16)), None);
    }

    #[test]
    fn insert_shorter_does_not_shadow_longer() {
        let mut t = table();
        t.insert(p(0x0A0A_0000, 16), "long");
        t.insert(p(0x0A00_0000, 8), "short");
        assert_eq!(t.lookup(0x0A0A_0101).unwrap(), (&"long", 16));
        assert_eq!(t.lookup(0x0A0B_0101).unwrap(), (&"short", 8));
    }

    #[test]
    fn v6_strides() {
        let mut t = CpeTable::<u128, u32>::new_v6();
        let base: u128 = 0x2001_0db8 << 96;
        t.insert(Prefix::new(base, 32), 1);
        t.insert(Prefix::new(base | 42, 128), 2);
        assert_eq!(t.levels(), 8);
        assert_eq!(t.lookup(base | 42).unwrap(), (&2, 128));
        assert_eq!(t.lookup(base | 43).unwrap(), (&1, 32));
        t.counter().reset();
        let _ = t.lookup(base | 42);
        assert_eq!(t.counter().get(), 8);
    }

    #[test]
    #[should_panic(expected = "cover the address width")]
    fn bad_strides_panic() {
        let _ = CpeTable::<u32, u8>::with_strides(vec![8, 8]);
    }

    #[test]
    fn randomised_against_patricia() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let mut cpe = table();
        let mut pat = PatriciaTable::new();
        for _ in 0..300 {
            let bits: u32 = (rng.gen::<u32>() & 0x0F0F_FFFF) | 0x0A00_0000;
            let len: u8 = rng.gen_range(1..=32);
            let pfx = Prefix::new(bits, len);
            cpe.insert(pfx, "x");
            pat.insert(pfx, "x");
        }
        for _ in 0..2000 {
            let addr: u32 = (rng.gen::<u32>() & 0x0F0F_FFFF) | 0x0A00_0000;
            assert_eq!(
                cpe.lookup(addr).map(|(_, l)| l),
                pat.lookup(addr).map(|(_, l)| l)
            );
        }
    }
}
