//! PATRICIA-style path-compressed radix trie.
//!
//! This is the paper's "slower but freely available" BMP plugin, modelled on
//! the BSD radix tree (Sklower). Lookup walks at most one node per differing
//! bit region, charging one memory access per node visited, so its
//! worst-case access count grows with the trie depth — exactly the property
//! that motivates the paper's preference for binary search on prefix
//! lengths in Table 2.

use crate::access::AccessCounter;
use crate::bits::Bits;
use crate::table::{LpmTable, Prefix};

struct Node<A: Bits, V> {
    prefix: Prefix<A>,
    value: Option<V>,
    children: [Option<Box<Node<A, V>>>; 2],
}

impl<A: Bits, V> Node<A, V> {
    fn leaf(prefix: Prefix<A>, value: Option<V>) -> Box<Self> {
        Box::new(Node {
            prefix,
            value,
            children: [None, None],
        })
    }
}

/// Path-compressed binary trie keyed by prefixes.
///
/// ```
/// use rp_lpm::{PatriciaTable, LpmTable, Prefix};
///
/// let mut t = PatriciaTable::new();
/// t.insert(Prefix::new(0x0A00_0000u32, 8), 1);
/// assert_eq!(t.lookup(0x0A01_0203), Some((&1, 8)));
/// assert_eq!(t.lookup(0x0B01_0203), None);
/// ```
pub struct PatriciaTable<A: Bits, V> {
    root: Box<Node<A, V>>,
    len: usize,
    counter: AccessCounter,
}

impl<A: Bits, V> Default for PatriciaTable<A, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A: Bits, V> PatriciaTable<A, V> {
    /// Empty trie.
    pub fn new() -> Self {
        PatriciaTable {
            root: Node::leaf(Prefix::default_route(), None),
            len: 0,
            counter: AccessCounter::new(),
        }
    }

    /// Empty trie charging accesses to `counter`.
    pub fn with_counter(counter: AccessCounter) -> Self {
        PatriciaTable {
            root: Node::leaf(Prefix::default_route(), None),
            len: 0,
            counter,
        }
    }

    /// The access counter used by this table.
    pub fn counter(&self) -> &AccessCounter {
        &self.counter
    }

    fn insert_at(
        node: &mut Box<Node<A, V>>,
        prefix: Prefix<A>,
        value: V,
        len: &mut usize,
    ) -> Option<V> {
        debug_assert!(node.prefix.covers(&prefix));
        if node.prefix == prefix {
            let old = node.value.replace(value);
            if old.is_none() {
                *len += 1;
            }
            return old;
        }
        let bit = usize::from(prefix.bits().bit(node.prefix.len()));
        match &mut node.children[bit] {
            slot @ None => {
                *slot = Some(Node::leaf(prefix, Some(value)));
                *len += 1;
                None
            }
            Some(child) => {
                let common = prefix
                    .bits()
                    .common_len(child.prefix.bits(), prefix.len().min(child.prefix.len()));
                if common == child.prefix.len() {
                    // Child's prefix covers ours: descend.
                    Self::insert_at(child, prefix, value, len)
                } else if common == prefix.len() {
                    // Our prefix covers the child: splice ourselves in.
                    let old_child = node.children[bit].take().unwrap();
                    let mut new_node = Node::leaf(prefix, Some(value));
                    let cbit = usize::from(old_child.prefix.bits().bit(prefix.len()));
                    new_node.children[cbit] = Some(old_child);
                    node.children[bit] = Some(new_node);
                    *len += 1;
                    None
                } else {
                    // Diverge below a common ancestor: split.
                    let old_child = node.children[bit].take().unwrap();
                    let mut mid = Node::leaf(Prefix::new(prefix.bits(), common), None);
                    let cbit = usize::from(old_child.prefix.bits().bit(common));
                    let pbit = usize::from(prefix.bits().bit(common));
                    debug_assert_ne!(cbit, pbit);
                    mid.children[cbit] = Some(old_child);
                    mid.children[pbit] = Some(Node::leaf(prefix, Some(value)));
                    node.children[bit] = Some(mid);
                    *len += 1;
                    None
                }
            }
        }
    }

    /// Longest-prefix match restricted to prefixes of length at most
    /// `max_len`. Used by the BSPL structure to precompute marker
    /// best-match values ("bmp" in Waldvogel et al.).
    pub fn lookup_max_len(&self, addr: A, max_len: u8) -> Option<(&V, u8)> {
        let mut node = &self.root;
        let mut best: Option<(&V, u8)> = None;
        loop {
            if !node.prefix.matches(addr) || node.prefix.len() > max_len {
                break;
            }
            if let Some(v) = &node.value {
                best = Some((v, node.prefix.len()));
            }
            if u32::from(node.prefix.len()) >= A::BITS {
                break;
            }
            let bit = usize::from(addr.bit(node.prefix.len()));
            match &node.children[bit] {
                Some(child) => node = child,
                None => break,
            }
        }
        best
    }

    /// All stored prefixes covered by `prefix` (i.e. equal or more
    /// specific), in unspecified order. Control-path helper for the BSPL
    /// structure's incremental best-match maintenance.
    pub fn covered_by(&self, prefix: Prefix<A>) -> Vec<Prefix<A>> {
        fn collect<A: Bits, V>(node: &Node<A, V>, out: &mut Vec<Prefix<A>>) {
            if node.value.is_some() {
                out.push(node.prefix);
            }
            for c in node.children.iter().flatten() {
                collect(c, out);
            }
        }
        // Descend to the node region covered by `prefix`, then collect.
        let mut node = &self.root;
        let mut out = Vec::new();
        loop {
            if prefix.covers(&node.prefix) {
                collect(node, &mut out);
                return out;
            }
            if !node.prefix.covers(&prefix) {
                return out;
            }
            if u32::from(node.prefix.len()) >= A::BITS {
                return out;
            }
            let bit = usize::from(prefix.bits().bit(node.prefix.len()));
            match &node.children[bit] {
                Some(child) => node = child,
                None => return out,
            }
        }
    }

    /// Splice out `child` slots that hold valueless single/zero-child nodes.
    fn compact(node: &mut Box<Node<A, V>>, bit: usize) {
        let splice = match &node.children[bit] {
            Some(c) if c.value.is_none() => {
                let kids = c.children.iter().filter(|k| k.is_some()).count();
                kids <= 1
            }
            _ => false,
        };
        if splice {
            let mut c = node.children[bit].take().unwrap();
            let grand = c.children.iter_mut().find_map(|k| k.take());
            node.children[bit] = grand;
        }
    }
}

impl<A: Bits, V> LpmTable<A, V> for PatriciaTable<A, V> {
    fn insert(&mut self, prefix: Prefix<A>, value: V) -> Option<V> {
        let mut len = self.len;
        let out = Self::insert_at(&mut self.root, prefix, value, &mut len);
        self.len = len;
        out
    }

    fn remove(&mut self, prefix: Prefix<A>) -> Option<V> {
        // Iterative descent recording the path would fight the borrow
        // checker; recursion depth is bounded by the address width.
        fn rec<A: Bits, V>(node: &mut Box<Node<A, V>>, prefix: Prefix<A>) -> Option<V> {
            if node.prefix == prefix {
                return node.value.take();
            }
            if !node.prefix.covers(&prefix) {
                return None;
            }
            let bit = usize::from(prefix.bits().bit(node.prefix.len()));
            let out = match &mut node.children[bit] {
                Some(child) if child.prefix.covers(&prefix) => rec(child, prefix),
                _ => None,
            };
            if out.is_some() {
                PatriciaTable::compact(node, bit);
            }
            out
        }
        let out = rec(&mut self.root, prefix);
        if out.is_some() {
            self.len -= 1;
        }
        out
    }

    fn lookup(&self, addr: A) -> Option<(&V, u8)> {
        let mut node = &self.root;
        let mut best: Option<(&V, u8)> = None;
        loop {
            self.counter.charge(1);
            if !node.prefix.matches(addr) {
                break;
            }
            if let Some(v) = &node.value {
                best = Some((v, node.prefix.len()));
            }
            if u32::from(node.prefix.len()) >= A::BITS {
                break;
            }
            let bit = usize::from(addr.bit(node.prefix.len()));
            match &node.children[bit] {
                Some(child) => node = child,
                None => break,
            }
        }
        best
    }

    fn get(&self, prefix: Prefix<A>) -> Option<&V> {
        let mut node = &self.root;
        loop {
            if node.prefix == prefix {
                return node.value.as_ref();
            }
            if !node.prefix.covers(&prefix) {
                return None;
            }
            let bit = usize::from(prefix.bits().bit(node.prefix.len()));
            match &node.children[bit] {
                Some(child) if child.prefix.covers(&prefix) => node = child,
                _ => return None,
            }
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn prefixes(&self) -> Vec<Prefix<A>> {
        fn walk<A: Bits, V>(node: &Node<A, V>, out: &mut Vec<Prefix<A>>) {
            if node.value.is_some() {
                out.push(node.prefix);
            }
            for c in node.children.iter().flatten() {
                walk(c, out);
            }
        }
        let mut out = Vec::with_capacity(self.len);
        walk(&self.root, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(bits: u32, len: u8) -> Prefix<u32> {
        Prefix::new(bits, len)
    }

    #[test]
    fn paper_table1_prefixes() {
        // Source-address column of the paper's Table 1.
        let mut t = PatriciaTable::new();
        t.insert(p(0x8100_0000, 8), "129.*"); // filter 1
        t.insert(p(0x80FC_9901, 32), "128.252.153.1"); // filters 2,3
        t.insert(p(0x80FC_9900, 24), "128.252.153.*"); // filter 4
        assert_eq!(t.len(), 3);

        // 128.252.153.1 → the /32, most specific.
        assert_eq!(t.lookup(0x80FC_9901).unwrap(), (&"128.252.153.1", 32));
        // 128.252.153.77 → the /24.
        assert_eq!(t.lookup(0x80FC_994D).unwrap(), (&"128.252.153.*", 24));
        // 129.1.2.3 → the /8.
        assert_eq!(t.lookup(0x8101_0203).unwrap(), (&"129.*", 8));
        // 130.x matches nothing.
        assert!(t.lookup(0x8201_0203).is_none());
    }

    #[test]
    fn default_route() {
        let mut t = PatriciaTable::new();
        t.insert(Prefix::default_route(), 0u32);
        t.insert(p(0x0A00_0000, 8), 1);
        assert_eq!(t.lookup(0x0A01_0101).unwrap(), (&1, 8));
        assert_eq!(t.lookup(0xC0A8_0101).unwrap(), (&0, 0));
    }

    #[test]
    fn replace_returns_old() {
        let mut t = PatriciaTable::new();
        assert_eq!(t.insert(p(0x0A00_0000, 8), 1), None);
        assert_eq!(t.insert(p(0x0A00_0000, 8), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(0x0A01_0101).unwrap(), (&2, 8));
    }

    #[test]
    fn remove_and_compact() {
        let mut t = PatriciaTable::new();
        t.insert(p(0x0A00_0000, 8), 1);
        t.insert(p(0x0A0A_0000, 16), 2);
        t.insert(p(0x0A0B_0000, 16), 3);
        assert_eq!(t.remove(p(0x0A0A_0000, 16)), Some(2));
        assert_eq!(t.len(), 2);
        assert!(t.lookup(0x0A0A_0101).map(|(v, _)| *v) == Some(1));
        assert_eq!(t.remove(p(0x0A0A_0000, 16)), None);
        assert_eq!(t.remove(p(0x0A00_0000, 8)), Some(1));
        assert_eq!(t.lookup(0x0A0A_0101).map(|(v, _)| *v), None);
        assert_eq!(t.lookup(0x0A0B_0101).unwrap(), (&3, 16));
    }

    #[test]
    fn split_on_divergence() {
        let mut t = PatriciaTable::new();
        // 10.128/9 and 10.0/9 diverge at bit 8 under a common 10/8 ancestor
        // that holds no value.
        t.insert(p(0x0A80_0000, 9), "hi");
        t.insert(p(0x0A00_0000, 9), "lo");
        assert_eq!(t.lookup(0x0A80_0001).unwrap(), (&"hi", 9));
        assert_eq!(t.lookup(0x0A00_0001).unwrap(), (&"lo", 9));
        assert!(t.lookup(0x0B00_0001).is_none());
    }

    #[test]
    fn get_exact() {
        let mut t = PatriciaTable::new();
        t.insert(p(0x0A00_0000, 8), 1);
        t.insert(p(0x0A00_0000, 16), 2);
        assert_eq!(t.get(p(0x0A00_0000, 8)), Some(&1));
        assert_eq!(t.get(p(0x0A00_0000, 16)), Some(&2));
        assert_eq!(t.get(p(0x0A00_0000, 12)), None);
    }

    #[test]
    fn host_routes_v6() {
        let mut t: PatriciaTable<u128, u32> = PatriciaTable::new();
        for i in 0..100u128 {
            t.insert(Prefix::new(i << 16, 128), i as u32);
        }
        for i in 0..100u128 {
            assert_eq!(t.lookup(i << 16).unwrap(), (&(i as u32), 128));
        }
        assert!(t.lookup(1).is_none());
    }

    #[test]
    fn access_counting() {
        let t: PatriciaTable<u32, u32> = PatriciaTable::new();
        t.counter().reset();
        t.lookup(42);
        assert!(t.counter().get() >= 1);
    }

    #[test]
    fn lookup_max_len_restricts() {
        let mut t = PatriciaTable::new();
        t.insert(p(0x0A00_0000, 8), 8u8);
        t.insert(p(0x0A0A_0000, 16), 16);
        t.insert(p(0x0A0A_0A00, 24), 24);
        let addr = 0x0A0A_0A01;
        assert_eq!(t.lookup_max_len(addr, 32).unwrap(), (&24, 24));
        assert_eq!(t.lookup_max_len(addr, 24).unwrap(), (&24, 24));
        assert_eq!(t.lookup_max_len(addr, 23).unwrap(), (&16, 16));
        assert_eq!(t.lookup_max_len(addr, 15).unwrap(), (&8, 8));
        assert_eq!(t.lookup_max_len(addr, 7), None);
    }

    #[test]
    fn covered_by_enumerates_descendants() {
        let mut t = PatriciaTable::new();
        t.insert(p(0x0A00_0000, 8), ());
        t.insert(p(0x0A0A_0000, 16), ());
        t.insert(p(0x0A0A_0A00, 24), ());
        t.insert(p(0x0B00_0000, 8), ());
        let mut got = t.covered_by(p(0x0A00_0000, 8));
        got.sort();
        assert_eq!(
            got,
            vec![p(0x0A00_0000, 8), p(0x0A0A_0000, 16), p(0x0A0A_0A00, 24)]
        );
        assert_eq!(t.covered_by(p(0x0A0A_0A00, 24)), vec![p(0x0A0A_0A00, 24)]);
        assert_eq!(t.covered_by(p(0x0C00_0000, 8)), vec![]);
        // The whole table under the default prefix.
        assert_eq!(t.covered_by(Prefix::default_route()).len(), 4);
    }

    #[test]
    fn randomised_against_linear_scan() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let mut t = PatriciaTable::new();
        let mut reference: Vec<(Prefix<u32>, u32)> = Vec::new();
        for i in 0..500u32 {
            let bits: u32 = rng.gen();
            let len: u8 = rng.gen_range(0..=32);
            let pfx = Prefix::new(bits, len);
            t.insert(pfx, i);
            reference.retain(|(q, _)| *q != pfx);
            reference.push((pfx, i));
        }
        for _ in 0..2000 {
            let addr: u32 = rng.gen();
            let expect = reference
                .iter()
                .filter(|(q, _)| q.matches(addr))
                .max_by_key(|(q, _)| q.len())
                .map(|(q, v)| (*v, q.len()));
            let got = t.lookup(addr).map(|(v, l)| (*v, l));
            assert_eq!(got, expect);
        }
    }
}
