//! PATRICIA-style path-compressed radix trie.
//!
//! This is the paper's "slower but freely available" BMP plugin, modelled on
//! the BSD radix tree (Sklower). Lookup walks at most one node per differing
//! bit region, charging one memory access per node visited, so its
//! worst-case access count grows with the trie depth — exactly the property
//! that motivates the paper's preference for binary search on prefix
//! lengths in Table 2.
//!
//! **Cache-aware layout.** Nodes live in one contiguous arena (`Vec`) and
//! reference children by `u32` index instead of `Box` pointers: a node is
//! a fixed-size slot, three of which share a cache line for IPv4, and the
//! whole trie is one allocation instead of one per node. After bulk
//! loading, [`PatriciaTable::repack`] reorders the arena breadth-first so
//! the first few levels of every lookup — the hottest nodes, shared by
//! all traffic — sit in adjacent cache lines (the level-compressed-layout
//! idea of "Cache-aware data structures for packet forwarding tables";
//! path compression already collapses degree-1 chains, so breadth-first
//! placement is what turns depth into line-adjacency). The access
//! accounting is unchanged: one charge per node visited, so Table 2
//! semantics are identical to the pointer-chasing layout.

use crate::access::AccessCounter;
use crate::bits::Bits;
use crate::table::{LpmTable, Prefix};

/// Arena "null" child index.
const NIL: u32 = u32::MAX;

struct Node<A: Bits, V> {
    prefix: Prefix<A>,
    value: Option<V>,
    children: [u32; 2],
}

/// Path-compressed binary trie keyed by prefixes.
///
/// ```
/// use rp_lpm::{PatriciaTable, LpmTable, Prefix};
///
/// let mut t = PatriciaTable::new();
/// t.insert(Prefix::new(0x0A00_0000u32, 8), 1);
/// assert_eq!(t.lookup(0x0A01_0203), Some((&1, 8)));
/// assert_eq!(t.lookup(0x0B01_0203), None);
/// ```
pub struct PatriciaTable<A: Bits, V> {
    /// Node arena; the root (default-route region) is always slot 0.
    nodes: Vec<Node<A, V>>,
    /// Recycled arena slots.
    free: Vec<u32>,
    len: usize,
    counter: AccessCounter,
}

impl<A: Bits, V> Default for PatriciaTable<A, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A: Bits, V> PatriciaTable<A, V> {
    /// Empty trie.
    pub fn new() -> Self {
        Self::with_counter(AccessCounter::new())
    }

    /// Empty trie charging accesses to `counter`.
    pub fn with_counter(counter: AccessCounter) -> Self {
        PatriciaTable {
            nodes: vec![Node {
                prefix: Prefix::default_route(),
                value: None,
                children: [NIL, NIL],
            }],
            free: Vec::new(),
            len: 0,
            counter,
        }
    }

    /// The access counter used by this table.
    pub fn counter(&self) -> &AccessCounter {
        &self.counter
    }

    /// Allocate an arena slot for a fresh leaf.
    fn alloc(&mut self, prefix: Prefix<A>, value: Option<V>) -> u32 {
        let node = Node {
            prefix,
            value,
            children: [NIL, NIL],
        };
        match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = node;
                i
            }
            None => {
                self.nodes.push(node);
                (self.nodes.len() - 1) as u32
            }
        }
    }

    /// Return a slot to the free list (its value must already be `None`).
    fn release(&mut self, idx: u32) {
        debug_assert!(idx != 0, "root is never released");
        self.nodes[idx as usize].children = [NIL, NIL];
        self.free.push(idx);
    }

    /// Repack the arena breadth-first: level `d` of the trie becomes a
    /// contiguous run of slots, so the top of every lookup path — shared
    /// by all addresses — occupies adjacent cache lines. Call after bulk
    /// route loading; semantics (and access counts) are unchanged, only
    /// slot order. Also compacts out free-list holes.
    pub fn repack(&mut self) {
        let mut order: Vec<u32> = Vec::with_capacity(self.nodes.len());
        let mut map: Vec<u32> = vec![NIL; self.nodes.len()];
        map[0] = 0;
        order.push(0);
        let mut head = 0usize;
        while head < order.len() {
            let i = order[head];
            head += 1;
            for &c in &self.nodes[i as usize].children {
                if c != NIL {
                    map[c as usize] = order.len() as u32;
                    order.push(c);
                }
            }
        }
        let mut old: Vec<Option<Node<A, V>>> = std::mem::take(&mut self.nodes)
            .into_iter()
            .map(Some)
            .collect();
        let mut packed: Vec<Node<A, V>> = Vec::with_capacity(order.len());
        for &i in &order {
            let mut n = old[i as usize]
                .take()
                .expect("BFS visits each live node once");
            for c in n.children.iter_mut() {
                if *c != NIL {
                    *c = map[*c as usize];
                }
            }
            packed.push(n);
        }
        self.nodes = packed;
        self.free.clear();
    }

    /// Longest-prefix match restricted to prefixes of length at most
    /// `max_len`. Used by the BSPL structure to precompute marker
    /// best-match values ("bmp" in Waldvogel et al.).
    pub fn lookup_max_len(&self, addr: A, max_len: u8) -> Option<(&V, u8)> {
        let mut node = &self.nodes[0];
        let mut best: Option<(&V, u8)> = None;
        loop {
            if !node.prefix.matches(addr) || node.prefix.len() > max_len {
                break;
            }
            if let Some(v) = &node.value {
                best = Some((v, node.prefix.len()));
            }
            if u32::from(node.prefix.len()) >= A::BITS {
                break;
            }
            let bit = usize::from(addr.bit(node.prefix.len()));
            let c = node.children[bit];
            if c == NIL {
                break;
            }
            node = &self.nodes[c as usize];
        }
        best
    }

    /// All stored prefixes covered by `prefix` (i.e. equal or more
    /// specific), in unspecified order. Control-path helper for the BSPL
    /// structure's incremental best-match maintenance.
    pub fn covered_by(&self, prefix: Prefix<A>) -> Vec<Prefix<A>> {
        // Descend to the node region covered by `prefix`, then collect.
        let mut cur = 0u32;
        let mut out = Vec::new();
        loop {
            let node = &self.nodes[cur as usize];
            if prefix.covers(&node.prefix) {
                // Collect the whole subtree with an explicit stack.
                let mut stack = vec![cur];
                while let Some(i) = stack.pop() {
                    let n = &self.nodes[i as usize];
                    if n.value.is_some() {
                        out.push(n.prefix);
                    }
                    for &c in &n.children {
                        if c != NIL {
                            stack.push(c);
                        }
                    }
                }
                return out;
            }
            if !node.prefix.covers(&prefix) {
                return out;
            }
            if u32::from(node.prefix.len()) >= A::BITS {
                return out;
            }
            let bit = usize::from(prefix.bits().bit(node.prefix.len()));
            let c = node.children[bit];
            if c == NIL {
                return out;
            }
            cur = c;
        }
    }

    /// Splice out the child at `(parent, bit)` when it is a valueless
    /// single/zero-child node, recycling its arena slot.
    fn compact(&mut self, parent: u32, bit: usize) {
        let c = self.nodes[parent as usize].children[bit];
        if c == NIL {
            return;
        }
        let (splice, grand) = {
            let cn = &self.nodes[c as usize];
            if cn.value.is_none() {
                let mut kids = cn.children.iter().copied().filter(|k| *k != NIL);
                let first = kids.next();
                if kids.next().is_none() {
                    (true, first.unwrap_or(NIL))
                } else {
                    (false, NIL)
                }
            } else {
                (false, NIL)
            }
        };
        if splice {
            self.nodes[parent as usize].children[bit] = grand;
            self.release(c);
        }
    }
}

impl<A: Bits, V> LpmTable<A, V> for PatriciaTable<A, V> {
    fn insert(&mut self, prefix: Prefix<A>, value: V) -> Option<V> {
        let mut cur = 0u32;
        loop {
            let cur_prefix = self.nodes[cur as usize].prefix;
            debug_assert!(cur_prefix.covers(&prefix));
            if cur_prefix == prefix {
                let old = self.nodes[cur as usize].value.replace(value);
                if old.is_none() {
                    self.len += 1;
                }
                return old;
            }
            let bit = usize::from(prefix.bits().bit(cur_prefix.len()));
            let child = self.nodes[cur as usize].children[bit];
            if child == NIL {
                let n = self.alloc(prefix, Some(value));
                self.nodes[cur as usize].children[bit] = n;
                self.len += 1;
                return None;
            }
            let child_prefix = self.nodes[child as usize].prefix;
            let common = prefix
                .bits()
                .common_len(child_prefix.bits(), prefix.len().min(child_prefix.len()));
            if common == child_prefix.len() {
                // Child's prefix covers ours: descend.
                cur = child;
            } else if common == prefix.len() {
                // Our prefix covers the child: splice ourselves in.
                let n = self.alloc(prefix, Some(value));
                let cbit = usize::from(child_prefix.bits().bit(prefix.len()));
                self.nodes[n as usize].children[cbit] = child;
                self.nodes[cur as usize].children[bit] = n;
                self.len += 1;
                return None;
            } else {
                // Diverge below a common ancestor: split.
                let mid = self.alloc(Prefix::new(prefix.bits(), common), None);
                let n = self.alloc(prefix, Some(value));
                let cbit = usize::from(child_prefix.bits().bit(common));
                let pbit = usize::from(prefix.bits().bit(common));
                debug_assert_ne!(cbit, pbit);
                self.nodes[mid as usize].children[cbit] = child;
                self.nodes[mid as usize].children[pbit] = n;
                self.nodes[cur as usize].children[bit] = mid;
                self.len += 1;
                return None;
            }
        }
    }

    fn remove(&mut self, prefix: Prefix<A>) -> Option<V> {
        // Record the descent path so compaction can splice valueless
        // nodes bottom-up, exactly like the recursive unwind used to.
        let mut path: Vec<(u32, usize)> = Vec::new();
        let mut cur = 0u32;
        loop {
            let cur_prefix = self.nodes[cur as usize].prefix;
            if cur_prefix == prefix {
                let out = self.nodes[cur as usize].value.take();
                if out.is_some() {
                    self.len -= 1;
                    for &(parent, bit) in path.iter().rev() {
                        self.compact(parent, bit);
                    }
                }
                return out;
            }
            if !cur_prefix.covers(&prefix) {
                return None;
            }
            let bit = usize::from(prefix.bits().bit(cur_prefix.len()));
            let child = self.nodes[cur as usize].children[bit];
            if child == NIL || !self.nodes[child as usize].prefix.covers(&prefix) {
                return None;
            }
            path.push((cur, bit));
            cur = child;
        }
    }

    fn lookup(&self, addr: A) -> Option<(&V, u8)> {
        let mut node = &self.nodes[0];
        let mut best: Option<(&V, u8)> = None;
        loop {
            self.counter.charge(1);
            if !node.prefix.matches(addr) {
                break;
            }
            if let Some(v) = &node.value {
                best = Some((v, node.prefix.len()));
            }
            if u32::from(node.prefix.len()) >= A::BITS {
                break;
            }
            let bit = usize::from(addr.bit(node.prefix.len()));
            let c = node.children[bit];
            if c == NIL {
                break;
            }
            node = &self.nodes[c as usize];
        }
        best
    }

    fn get(&self, prefix: Prefix<A>) -> Option<&V> {
        let mut node = &self.nodes[0];
        loop {
            if node.prefix == prefix {
                return node.value.as_ref();
            }
            if !node.prefix.covers(&prefix) {
                return None;
            }
            let bit = usize::from(prefix.bits().bit(node.prefix.len()));
            let c = node.children[bit];
            if c == NIL || !self.nodes[c as usize].prefix.covers(&prefix) {
                return None;
            }
            node = &self.nodes[c as usize];
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn prefixes(&self) -> Vec<Prefix<A>> {
        let mut out = Vec::with_capacity(self.len);
        let mut stack = vec![0u32];
        while let Some(i) = stack.pop() {
            let n = &self.nodes[i as usize];
            if n.value.is_some() {
                out.push(n.prefix);
            }
            for &c in &n.children {
                if c != NIL {
                    stack.push(c);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(bits: u32, len: u8) -> Prefix<u32> {
        Prefix::new(bits, len)
    }

    #[test]
    fn paper_table1_prefixes() {
        // Source-address column of the paper's Table 1.
        let mut t = PatriciaTable::new();
        t.insert(p(0x8100_0000, 8), "129.*"); // filter 1
        t.insert(p(0x80FC_9901, 32), "128.252.153.1"); // filters 2,3
        t.insert(p(0x80FC_9900, 24), "128.252.153.*"); // filter 4
        assert_eq!(t.len(), 3);

        // 128.252.153.1 → the /32, most specific.
        assert_eq!(t.lookup(0x80FC_9901).unwrap(), (&"128.252.153.1", 32));
        // 128.252.153.77 → the /24.
        assert_eq!(t.lookup(0x80FC_994D).unwrap(), (&"128.252.153.*", 24));
        // 129.1.2.3 → the /8.
        assert_eq!(t.lookup(0x8101_0203).unwrap(), (&"129.*", 8));
        // 130.x matches nothing.
        assert!(t.lookup(0x8201_0203).is_none());
    }

    #[test]
    fn default_route() {
        let mut t = PatriciaTable::new();
        t.insert(Prefix::default_route(), 0u32);
        t.insert(p(0x0A00_0000, 8), 1);
        assert_eq!(t.lookup(0x0A01_0101).unwrap(), (&1, 8));
        assert_eq!(t.lookup(0xC0A8_0101).unwrap(), (&0, 0));
    }

    #[test]
    fn replace_returns_old() {
        let mut t = PatriciaTable::new();
        assert_eq!(t.insert(p(0x0A00_0000, 8), 1), None);
        assert_eq!(t.insert(p(0x0A00_0000, 8), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(0x0A01_0101).unwrap(), (&2, 8));
    }

    #[test]
    fn remove_and_compact() {
        let mut t = PatriciaTable::new();
        t.insert(p(0x0A00_0000, 8), 1);
        t.insert(p(0x0A0A_0000, 16), 2);
        t.insert(p(0x0A0B_0000, 16), 3);
        assert_eq!(t.remove(p(0x0A0A_0000, 16)), Some(2));
        assert_eq!(t.len(), 2);
        assert!(t.lookup(0x0A0A_0101).map(|(v, _)| *v) == Some(1));
        assert_eq!(t.remove(p(0x0A0A_0000, 16)), None);
        assert_eq!(t.remove(p(0x0A00_0000, 8)), Some(1));
        assert_eq!(t.lookup(0x0A0A_0101).map(|(v, _)| *v), None);
        assert_eq!(t.lookup(0x0A0B_0101).unwrap(), (&3, 16));
    }

    #[test]
    fn split_on_divergence() {
        let mut t = PatriciaTable::new();
        // 10.128/9 and 10.0/9 diverge at bit 8 under a common 10/8 ancestor
        // that holds no value.
        t.insert(p(0x0A80_0000, 9), "hi");
        t.insert(p(0x0A00_0000, 9), "lo");
        assert_eq!(t.lookup(0x0A80_0001).unwrap(), (&"hi", 9));
        assert_eq!(t.lookup(0x0A00_0001).unwrap(), (&"lo", 9));
        assert!(t.lookup(0x0B00_0001).is_none());
    }

    #[test]
    fn get_exact() {
        let mut t = PatriciaTable::new();
        t.insert(p(0x0A00_0000, 8), 1);
        t.insert(p(0x0A00_0000, 16), 2);
        assert_eq!(t.get(p(0x0A00_0000, 8)), Some(&1));
        assert_eq!(t.get(p(0x0A00_0000, 16)), Some(&2));
        assert_eq!(t.get(p(0x0A00_0000, 12)), None);
    }

    #[test]
    fn host_routes_v6() {
        let mut t: PatriciaTable<u128, u32> = PatriciaTable::new();
        for i in 0..100u128 {
            t.insert(Prefix::new(i << 16, 128), i as u32);
        }
        for i in 0..100u128 {
            assert_eq!(t.lookup(i << 16).unwrap(), (&(i as u32), 128));
        }
        assert!(t.lookup(1).is_none());
    }

    #[test]
    fn access_counting() {
        let t: PatriciaTable<u32, u32> = PatriciaTable::new();
        t.counter().reset();
        t.lookup(42);
        assert!(t.counter().get() >= 1);
    }

    #[test]
    fn lookup_max_len_restricts() {
        let mut t = PatriciaTable::new();
        t.insert(p(0x0A00_0000, 8), 8u8);
        t.insert(p(0x0A0A_0000, 16), 16);
        t.insert(p(0x0A0A_0A00, 24), 24);
        let addr = 0x0A0A_0A01;
        assert_eq!(t.lookup_max_len(addr, 32).unwrap(), (&24, 24));
        assert_eq!(t.lookup_max_len(addr, 24).unwrap(), (&24, 24));
        assert_eq!(t.lookup_max_len(addr, 23).unwrap(), (&16, 16));
        assert_eq!(t.lookup_max_len(addr, 15).unwrap(), (&8, 8));
        assert_eq!(t.lookup_max_len(addr, 7), None);
    }

    #[test]
    fn covered_by_enumerates_descendants() {
        let mut t = PatriciaTable::new();
        t.insert(p(0x0A00_0000, 8), ());
        t.insert(p(0x0A0A_0000, 16), ());
        t.insert(p(0x0A0A_0A00, 24), ());
        t.insert(p(0x0B00_0000, 8), ());
        let mut got = t.covered_by(p(0x0A00_0000, 8));
        got.sort();
        assert_eq!(
            got,
            vec![p(0x0A00_0000, 8), p(0x0A0A_0000, 16), p(0x0A0A_0A00, 24)]
        );
        assert_eq!(t.covered_by(p(0x0A0A_0A00, 24)), vec![p(0x0A0A_0A00, 24)]);
        assert_eq!(t.covered_by(p(0x0C00_0000, 8)), vec![]);
        // The whole table under the default prefix.
        assert_eq!(t.covered_by(Prefix::default_route()).len(), 4);
    }

    #[test]
    fn repack_preserves_lookups_and_access_counts() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(21);
        let mut t = PatriciaTable::new();
        let mut reference: Vec<(Prefix<u32>, u32)> = Vec::new();
        for i in 0..400u32 {
            let bits: u32 = rng.gen();
            let len: u8 = rng.gen_range(0..=32);
            let pfx = Prefix::new(bits, len);
            t.insert(pfx, i);
            reference.retain(|(q, _)| *q != pfx);
            reference.push((pfx, i));
        }
        // Deletions leave free-list holes for repack to squeeze out.
        for (q, _) in reference.iter().step_by(7) {
            t.remove(*q);
        }
        let removed: Vec<Prefix<u32>> = reference.iter().step_by(7).map(|(q, _)| *q).collect();
        reference.retain(|(q, _)| !removed.contains(q));

        let probes: Vec<u32> = (0..2000).map(|_| rng.gen()).collect();
        let before: Vec<(Option<(u32, u8)>, u64)> = probes
            .iter()
            .map(|a| {
                t.counter().reset();
                let r = t.lookup(*a).map(|(v, l)| (*v, l));
                (r, t.counter().get())
            })
            .collect();
        t.repack();
        for (a, (want, accesses)) in probes.iter().zip(&before) {
            t.counter().reset();
            let got = t.lookup(*a).map(|(v, l)| (*v, l));
            assert_eq!(&got, want, "lookup changed by repack at {a:08x}");
            assert_eq!(
                t.counter().get(),
                *accesses,
                "access count changed by repack at {a:08x}"
            );
        }
        // Structure still fully mutable after repack.
        assert_eq!(t.len(), reference.len());
        t.insert(p(0x0A00_0000, 8), 12345);
        assert_eq!(t.lookup(0x0A01_0101).map(|(v, _)| *v), Some(12345));
    }

    #[test]
    fn randomised_against_linear_scan() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let mut t = PatriciaTable::new();
        let mut reference: Vec<(Prefix<u32>, u32)> = Vec::new();
        for i in 0..500u32 {
            let bits: u32 = rng.gen();
            let len: u8 = rng.gen_range(0..=32);
            let pfx = Prefix::new(bits, len);
            t.insert(pfx, i);
            reference.retain(|(q, _)| *q != pfx);
            reference.push((pfx, i));
        }
        for _ in 0..2000 {
            let addr: u32 = rng.gen();
            let expect = reference
                .iter()
                .filter(|(q, _)| q.matches(addr))
                .max_by_key(|(q, _)| q.len())
                .map(|(q, v)| (*v, q.len()));
            let got = t.lookup(addr).map(|(v, l)| (*v, l));
            assert_eq!(got, expect);
        }
    }
}
