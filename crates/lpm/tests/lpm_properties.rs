//! Property tests: all three BMP implementations must agree with each
//! other (and with a naive reference) on longest-prefix-match semantics,
//! under arbitrary insert/remove interleavings.

use proptest::prelude::*;
use rp_lpm::{BsplTable, CpeTable, LpmTable, PatriciaTable, Prefix};

/// Naive reference: a list scanned for the longest matching prefix.
struct Reference {
    entries: Vec<(Prefix<u32>, u32)>,
}

impl Reference {
    fn new() -> Self {
        Reference {
            entries: Vec::new(),
        }
    }

    fn insert(&mut self, p: Prefix<u32>, v: u32) {
        self.entries.retain(|(q, _)| *q != p);
        self.entries.push((p, v));
    }

    fn remove(&mut self, p: Prefix<u32>) {
        self.entries.retain(|(q, _)| *q != p);
    }

    fn lookup(&self, addr: u32) -> Option<(u32, u8)> {
        self.entries
            .iter()
            .filter(|(q, _)| q.matches(addr))
            .max_by_key(|(q, _)| q.len())
            .map(|(q, v)| (*v, q.len()))
    }
}

#[derive(Debug, Clone)]
enum Op {
    Insert(u32, u8, u32),
    Remove(u32, u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    // Clustered address space (10.0.0.0/8-ish) so prefixes nest.
    let addr = (0u32..1 << 20).prop_map(|a| 0x0A00_0000 | a);
    prop_oneof![
        (addr.clone(), 8u8..=32, any::<u32>()).prop_map(|(a, l, v)| Op::Insert(a, l, v)),
        (addr, 8u8..=32).prop_map(|(a, l)| Op::Remove(a, l)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_implementations_agree(
        ops in prop::collection::vec(arb_op(), 1..120),
        probes in prop::collection::vec(0u32..1 << 20, 1..200),
    ) {
        let mut reference = Reference::new();
        let mut pat = PatriciaTable::new();
        let mut bspl = BsplTable::new();
        let mut cpe = CpeTable::<u32, u32>::new_v4();
        for op in ops {
            match op {
                Op::Insert(a, l, v) => {
                    let p = Prefix::new(a, l);
                    reference.insert(p, v);
                    pat.insert(p, v);
                    bspl.insert(p, v);
                    cpe.insert(p, v);
                }
                Op::Remove(a, l) => {
                    let p = Prefix::new(a, l);
                    reference.remove(p);
                    pat.remove(p);
                    bspl.remove(p);
                    cpe.remove(p);
                }
            }
        }
        for probe in probes {
            let addr = 0x0A00_0000 | probe;
            let want = reference.lookup(addr);
            prop_assert_eq!(pat.lookup(addr).map(|(v, l)| (*v, l)), want, "patricia @ {:08x}", addr);
            prop_assert_eq!(bspl.lookup(addr).map(|(v, l)| (*v, l)), want, "bspl @ {:08x}", addr);
            prop_assert_eq!(cpe.lookup(addr).map(|(v, l)| (*v, l)), want, "cpe @ {:08x}", addr);
        }
        // Size bookkeeping agrees too.
        prop_assert_eq!(pat.len(), reference.entries.len());
        prop_assert_eq!(bspl.len(), reference.entries.len());
        prop_assert_eq!(cpe.len(), reference.entries.len());
    }

    #[test]
    fn bspl_probe_bound_holds(
        lens in prop::collection::btree_set(1u8..=32, 1..32),
        probes in prop::collection::vec(any::<u32>(), 1..64),
    ) {
        // Worst-case probes must never exceed ceil(log2(k+1)).
        let mut t = BsplTable::new();
        for (i, l) in lens.iter().enumerate() {
            t.insert(Prefix::new(0xFFFF_FFFFu32, *l), i as u32);
            t.insert(Prefix::new((i as u32) << 12, *l), i as u32);
        }
        let bound = t.worst_case_probes() as u64;
        for p in probes {
            t.counter().reset();
            let _ = t.lookup(p);
            prop_assert!(t.counter().get() <= bound,
                "probes {} > bound {} with {} lengths", t.counter().get(), bound, lens.len());
        }
    }
}

#[test]
fn v6_agreement_smoke() {
    let mut pat: PatriciaTable<u128, u32> = PatriciaTable::new();
    let mut bspl: BsplTable<u128, u32> = BsplTable::new();
    let base: u128 = 0x2001_0db8u128 << 96;
    let prefixes = [
        (base, 32u8),
        (base | (0xau128 << 64), 64),
        (base | (0xau128 << 64) | 5, 128),
        (base | (0xbu128 << 64), 64),
    ];
    for (i, (bits, len)) in prefixes.iter().enumerate() {
        pat.insert(Prefix::new(*bits, *len), i as u32);
        bspl.insert(Prefix::new(*bits, *len), i as u32);
    }
    for probe in [
        base,
        base | (0xau128 << 64),
        base | (0xau128 << 64) | 5,
        base | (0xau128 << 64) | 6,
        base | (0xbu128 << 64) | 1,
        base | (0xcu128 << 64),
        1u128,
    ] {
        assert_eq!(
            pat.lookup(probe).map(|(v, l)| (*v, l)),
            bspl.lookup(probe).map(|(v, l)| (*v, l)),
            "probe {probe:x}"
        );
    }
}
