//! Model-based property test for the flow cache: random
//! lookup/insert/remove interleavings against a simple reference model
//! (set + insertion-order queue with oldest-first recycling).

use proptest::prelude::*;
use rp_classifier::flow_table::{FlowTable, FlowTableConfig};
use rp_packet::FlowTuple;
use std::collections::HashMap;
use std::collections::VecDeque;

fn key(i: u16) -> FlowTuple {
    FlowTuple {
        src: format!("2001:db8::{:x}", i + 1).parse().unwrap(),
        dst: "2001:db8::ffff".parse().unwrap(),
        proto: 17,
        sport: 1000 + i,
        dport: 80,
        rx_if: 0,
    }
}

struct Model {
    live: HashMap<u16, u64>,
    order: VecDeque<u16>,
    max: usize,
    seq: u64,
}

impl Model {
    fn new(max: usize) -> Self {
        Model {
            live: HashMap::new(),
            order: VecDeque::new(),
            max,
            seq: 0,
        }
    }

    fn contains(&self, k: u16) -> bool {
        self.live.contains_key(&k)
    }

    /// Miss-path insert; returns the evicted key when the cap was hit.
    fn insert(&mut self, k: u16) -> Option<u16> {
        let mut evicted = None;
        if self.live.len() == self.max {
            // Oldest by insertion sequence.
            let victim = *self.order.front().expect("full implies nonempty");
            self.order.pop_front();
            self.live.remove(&victim);
            evicted = Some(victim);
        }
        self.seq += 1;
        self.live.insert(k, self.seq);
        self.order.push_back(k);
        evicted
    }

    fn remove(&mut self, k: u16) -> bool {
        if self.live.remove(&k).is_some() {
            self.order.retain(|x| *x != k);
            true
        } else {
            false
        }
    }
}

#[derive(Debug, Clone)]
enum Op {
    Classify(u16),
    Remove(u16),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u16..40).prop_map(Op::Classify),
        (0u16..40).prop_map(Op::Remove),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn matches_reference_model(ops in prop::collection::vec(arb_op(), 1..300)) {
        const MAX: usize = 8;
        let mut table: FlowTable<u32> = FlowTable::new(FlowTableConfig {
            buckets: 16, // deliberately tiny: long chains get exercised
            max_buckets: 0,
            initial_records: 2,
            max_records: MAX,
            gates: 1,
            max_idle_ns: 0,
            lru_evict: false,
        });
        let mut model = Model::new(MAX);
        let mut fix_of = std::collections::HashMap::new();

        for op in ops {
            match op {
                Op::Classify(k) => {
                    let hit = table.lookup(&key(k)).is_some();
                    prop_assert_eq!(hit, model.contains(k), "hit status for {}", k);
                    if !hit {
                        let (fix, evicted) = table.insert(key(k));
                        let model_evicted = model.insert(k);
                        match (&evicted, model_evicted) {
                            (Some(ev), Some(mk)) => {
                                prop_assert_eq!(ev.key, key(mk), "evicted key");
                                fix_of.remove(&mk);
                            }
                            (None, None) => {}
                            other => prop_assert!(false, "eviction mismatch: {:?}", other.1),
                        }
                        fix_of.insert(k, fix);
                    }
                }
                Op::Remove(k) => {
                    let model_had = model.remove(k);
                    let fix = fix_of.remove(&k);
                    match fix {
                        Some(f) if model_had => {
                            prop_assert!(table.remove(f).is_some(), "remove live {}", k);
                        }
                        _ => {
                            // Key not cached (or already evicted): stale
                            // FIX removal must be a no-op.
                            if let Some(f) = fix {
                                table.remove(f);
                            }
                        }
                    }
                }
            }
        }
        // Final live-set agreement.
        prop_assert_eq!(table.live(), model.live.len());
        for k in 0u16..40 {
            prop_assert_eq!(table.peek(&key(k)).is_some(), model.contains(k), "final {}", k);
        }
        prop_assert!(table.stats().allocated <= MAX);
    }
}

// ---------------------------------------------------------------------
// Churn conservation under admission control: random interleavings of
// insert / touch / clock-advance / expire / invalidate never lose track
// of a record and never expire a recently-touched flow.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum ChurnOp {
    /// Classify-style arrival: lookup, then admission-controlled insert
    /// on miss.
    Arrive(u16),
    /// Cached-path hit (refreshes the idle timer when live).
    Touch(u16),
    /// Advance the table clock.
    Advance(u32),
    /// Background idle sweep.
    Expire,
    /// Explicit removal (filter deletion / instance quarantine path).
    Invalidate(u16),
}

fn arb_churn_op() -> impl Strategy<Value = ChurnOp> {
    prop_oneof![
        (0u16..48).prop_map(ChurnOp::Arrive),
        (0u16..48).prop_map(ChurnOp::Arrive),
        (0u16..48).prop_map(ChurnOp::Touch),
        (0u16..48).prop_map(ChurnOp::Touch),
        (1u32..2_000_000).prop_map(ChurnOp::Advance),
        Just(ChurnOp::Expire),
        (0u16..48).prop_map(ChurnOp::Invalidate),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn churn_conserves_records_and_never_expires_fresh_flows(
        ops in prop::collection::vec(arb_churn_op(), 1..400),
    ) {
        const MAX: usize = 8;
        const IDLE_NS: u64 = 1_000_000;
        let mut table: FlowTable<u32> = FlowTable::new(FlowTableConfig {
            buckets: 16,
            max_buckets: 0,
            initial_records: 2,
            max_records: MAX,
            gates: 1,
            max_idle_ns: IDLE_NS,
            lru_evict: false,
        });
        let mut now: u64 = 0;
        let mut inserted: u64 = 0;
        let mut evicted: u64 = 0; // expire + invalidate + inline reclaim
        let mut last_touch: HashMap<FlowTuple, u64> = HashMap::new();
        let mut scratch = Vec::new();

        for op in ops {
            match op {
                ChurnOp::Arrive(k) => {
                    if table.lookup(&key(k)).is_some() {
                        last_touch.insert(key(k), now);
                    } else if let Some((_, ev)) = table.try_insert(key(k)) {
                        inserted += 1;
                        last_touch.insert(key(k), now);
                        if let Some(ev) = ev {
                            // Inline idle reclaim at the cap: the victim
                            // must have been idle for the full window.
                            evicted += 1;
                            let t = last_touch.remove(&ev.key).expect("evicted flow was tracked");
                            prop_assert!(
                                now.saturating_sub(t) > IDLE_NS,
                                "inline reclaim took a flow touched {}ns ago",
                                now - t
                            );
                        }
                    }
                    // Denied: no state change to account for.
                }
                ChurnOp::Touch(k) => {
                    if table.lookup(&key(k)).is_some() {
                        last_touch.insert(key(k), now);
                    }
                }
                ChurnOp::Advance(dt) => {
                    now += u64::from(dt);
                    table.set_now(now);
                }
                ChurnOp::Expire => {
                    scratch.clear();
                    let n = table.expire_idle_into(IDLE_NS, &mut scratch);
                    prop_assert_eq!(n, scratch.len());
                    for ev in &scratch {
                        evicted += 1;
                        let t = last_touch.remove(&ev.key).expect("expired flow was tracked");
                        prop_assert!(
                            now.saturating_sub(t) > IDLE_NS,
                            "expired a flow touched {}ns ago",
                            now - t
                        );
                    }
                }
                ChurnOp::Invalidate(k) => {
                    if let Some(fix) = table.peek(&key(k)) {
                        prop_assert!(table.remove(fix).is_some());
                        evicted += 1;
                        last_touch.remove(&key(k));
                    }
                }
            }
            // Conservation after every step, not just at the end.
            prop_assert_eq!(
                inserted,
                table.live() as u64 + evicted,
                "inserted != live + evicted"
            );
            prop_assert!(table.live() <= MAX);
        }
        let s = table.stats();
        prop_assert_eq!(s.inline_expired + s.recycled, {
            // Admission control is on for every insert here, so the only
            // cap-pressure evictions are inline idle reclaims.
            prop_assert_eq!(s.recycled, 0);
            s.inline_expired
        });
    }
}

// ---------------------------------------------------------------------
// Incremental resize: interleave insert / lookup / expire / invalidate
// across a *forced multi-step bucket migration* (boot array of 2
// buckets, ceiling 256, key space big enough to trigger several
// doublings — the 128→256 migration alone spans 64 operations at two
// buckets per op). After every single step: no flow lost, none
// duplicated, none mis-bucketed (the hash-path `peek` must find exactly
// the live set), and `inserted == live + evicted`.
// ---------------------------------------------------------------------

const RESIZE_KEYS: u16 = 160;

fn arb_resize_op() -> impl Strategy<Value = ChurnOp> {
    prop_oneof![
        (0u16..RESIZE_KEYS).prop_map(ChurnOp::Arrive),
        (0u16..RESIZE_KEYS).prop_map(ChurnOp::Arrive),
        (0u16..RESIZE_KEYS).prop_map(ChurnOp::Arrive),
        (0u16..RESIZE_KEYS).prop_map(ChurnOp::Arrive),
        (0u16..RESIZE_KEYS).prop_map(ChurnOp::Touch),
        (0u16..RESIZE_KEYS).prop_map(ChurnOp::Touch),
        (1u32..2_000_000).prop_map(ChurnOp::Advance),
        Just(ChurnOp::Expire),
        (0u16..RESIZE_KEYS).prop_map(ChurnOp::Invalidate),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn incremental_resize_never_loses_duplicates_or_misbuckets(
        ops in prop::collection::vec(arb_resize_op(), 100..500),
    ) {
        const IDLE_NS: u64 = 1_000_000;
        let mut table: FlowTable<u32> = FlowTable::new(FlowTableConfig {
            buckets: 2, // forces repeated doublings as flows accumulate
            max_buckets: 256,
            initial_records: 2,
            max_records: 2 * RESIZE_KEYS as usize, // cap never binds
            gates: 1,
            max_idle_ns: IDLE_NS,
            lru_evict: false,
        });
        let mut now: u64 = 0;
        let mut inserted: u64 = 0;
        let mut evicted: u64 = 0;
        let mut live: HashMap<u16, u64> = HashMap::new(); // key → last touch
        let mut scratch = Vec::new();
        let mut saw_migration_in_flight = false;
        let mut max_live = 0usize;

        for op in ops {
            match op {
                ChurnOp::Arrive(k) => {
                    if table.lookup(&key(k)).is_some() {
                        live.insert(k, now);
                    } else {
                        let (_, ev) = table
                            .try_insert(key(k))
                            .expect("cap never binds in this test");
                        prop_assert!(ev.is_none(), "no cap pressure expected");
                        inserted += 1;
                        live.insert(k, now);
                    }
                }
                ChurnOp::Touch(k) => {
                    if table.lookup(&key(k)).is_some() {
                        live.insert(k, now);
                    }
                }
                ChurnOp::Advance(dt) => {
                    now += u64::from(dt);
                    table.set_now(now);
                }
                ChurnOp::Expire => {
                    scratch.clear();
                    table.expire_idle_into(IDLE_NS, &mut scratch);
                    for ev in &scratch {
                        evicted += 1;
                        let k = live
                            .iter()
                            .find(|(k, _)| key(**k) == ev.key)
                            .map(|(k, _)| *k)
                            .expect("expired flow was tracked");
                        let t = live.remove(&k).unwrap();
                        prop_assert!(now.saturating_sub(t) > IDLE_NS);
                    }
                }
                ChurnOp::Invalidate(k) => {
                    if let Some(fix) = table.peek(&key(k)) {
                        prop_assert!(table.remove(fix).is_some());
                        evicted += 1;
                        live.remove(&k);
                    }
                }
            }
            saw_migration_in_flight |= table.resizing();
            max_live = max_live.max(table.live());
            // Conservation after every step.
            prop_assert_eq!(inserted, table.live() as u64 + evicted);
            // live() agreeing with the model's cardinality rules out
            // duplicated records (a double-linked flow would inflate it).
            prop_assert_eq!(table.live(), live.len());
            // Every live flow reachable through the hash path (not
            // mis-bucketed), every dead flow absent — mid-migration too.
            for k in 0..RESIZE_KEYS {
                prop_assert_eq!(
                    table.peek(&key(k)).is_some(),
                    live.contains_key(&k),
                    "flow {} presence wrong (resizing={})",
                    k,
                    table.resizing()
                );
            }
        }
        // The op mix must actually have exercised the resize machinery:
        // any moment with 3+ live flows forces the first doubling, and
        // 5+ live flows force a migration that outlives its own insert
        // (old array of 4+ buckets, two migrated per op).
        if max_live > 2 {
            prop_assert!(table.stats().resize_steps > 0, "resize never ran");
            prop_assert!(table.bucket_count() > 2);
        }
        if max_live > 4 {
            prop_assert!(saw_migration_in_flight, "migration never observed in flight");
        }
    }
}
