//! Structural properties of the set-pruning DAG: replication cost (the
//! paper's §5.1.2 memory caveat), pruning on removal, and cache/table
//! interaction in the AIU.

use rp_classifier::{Aiu, AiuConfig, BmpKind, DagTable, FilterSpec, FlowTableConfig};
use rp_packet::FlowTuple;
use std::net::IpAddr;

fn t(src: &str, dport: u16) -> FlowTuple {
    FlowTuple {
        src: src.parse::<IpAddr>().unwrap(),
        dst: "10.0.0.9".parse().unwrap(),
        proto: 17,
        sport: 1,
        dport,
        rx_if: 0,
    }
}

#[test]
fn disjoint_filters_grow_linearly() {
    // Disjoint filters (distinct sources) should not replicate: node
    // count grows linearly.
    let mut dag: DagTable<u32> = DagTable::new(BmpKind::Bspl);
    let mut counts = Vec::new();
    for i in 0..64u32 {
        let f: FilterSpec = format!("10.{}.{}.0/24, *, UDP, *, *, *", i / 8, i % 8)
            .parse()
            .unwrap();
        dag.insert(f, i).unwrap();
        counts.push(dag.node_count());
    }
    // Each disjoint filter adds a constant number of nodes (one path).
    let d1 = counts[1] - counts[0];
    let dlast = counts[63] - counts[62];
    assert_eq!(d1, dlast, "disjoint inserts must cost constant nodes");
}

#[test]
fn nested_wildcards_replicate() {
    // A wildcard filter must be replicated under every specific edge —
    // node count impact grows with the number of specific edges
    // (the paper's acknowledged space cost).
    let mut dag: DagTable<u32> = DagTable::new(BmpKind::Bspl);
    for i in 0..16u32 {
        let f: FilterSpec = format!("10.{i}.0.0/16, *, UDP, *, {}, *", 1000 + i)
            .parse()
            .unwrap();
        dag.insert(f, i).unwrap();
    }
    let before = dag.node_count();
    // One wildcard-source filter with a distinct protocol: replicates
    // into all 16 source edges + the wildcard edge.
    dag.insert("*, *, TCP, *, *, *".parse().unwrap(), 99)
        .unwrap();
    let added = dag.node_count() - before;
    assert!(added >= 17 * 3, "wildcard replicated {added} nodes only");
    // And every source still sees it for TCP.
    for i in 0..16 {
        let mut probe = t(&format!("10.{i}.0.1"), 1);
        probe.proto = 6;
        assert_eq!(dag.lookup(&probe).map(|(_, v)| *v), Some(99));
    }
}

#[test]
fn removal_returns_node_count_to_baseline() {
    let mut dag: DagTable<u32> = DagTable::new(BmpKind::Bspl);
    let a = dag
        .insert("10.0.0.0/8, *, UDP, *, *, *".parse().unwrap(), 1)
        .unwrap();
    let baseline = dag.node_count();
    let installed_root = dag.filter_ids().len();
    assert_eq!(installed_root, 1);
    let b = dag
        .insert("10.1.0.0/16, *, *, *, 500-600, *".parse().unwrap(), 2)
        .unwrap();
    let c = dag
        .insert("*, *, TCP, *, *, *".parse().unwrap(), 3)
        .unwrap();
    assert!(dag.node_count() > baseline);
    dag.remove(b).unwrap();
    dag.remove(c).unwrap();
    // Structure pruned back to exactly the single-filter shape is not
    // guaranteed node-for-node (arena slots are not reused), but the
    // *reachable* filter set matches: every probe behaves as with only
    // filter a.
    let mut reference: DagTable<u32> = DagTable::new(BmpKind::Bspl);
    reference
        .insert("10.0.0.0/8, *, UDP, *, *, *".parse().unwrap(), 1)
        .unwrap();
    for probe in [
        t("10.1.2.3", 550),
        t("10.1.2.3", 700),
        t("11.1.2.3", 550),
        t("10.200.2.3", 80),
    ] {
        assert_eq!(
            dag.lookup(&probe).map(|(_, v)| *v),
            reference.lookup(&probe).map(|(_, v)| *v),
            "probe {probe}"
        );
    }
    let _ = a;
}

#[test]
fn aiu_cache_cold_vs_warm_accounting() {
    let mut aiu: Aiu<u32> = Aiu::new(AiuConfig {
        gates: 2,
        flow_table: FlowTableConfig {
            gates: 2,
            buckets: 256,
            initial_records: 16,
            max_records: 64,
            max_idle_ns: 0,
            ..FlowTableConfig::default()
        },
        bmp: BmpKind::Bspl,
    });
    aiu.install_filter(0, "*, *, UDP, *, *, *".parse().unwrap(), 7)
        .unwrap();
    aiu.install_filter(1, "*, *, *, *, *, *".parse().unwrap(), 8)
        .unwrap();
    // 10 flows × 20 packets.
    for round in 0..20 {
        for flow in 0..10u16 {
            let probe = t("10.0.0.1", 1000 + flow);
            let (outcome, _) = aiu.classify(&probe);
            if round == 0 {
                assert!(matches!(
                    outcome,
                    rp_classifier::aiu::ClassifyOutcome::CacheMiss(_)
                ));
            } else {
                assert!(matches!(
                    outcome,
                    rp_classifier::aiu::ClassifyOutcome::CacheHit(_)
                ));
            }
        }
    }
    let s = aiu.flow_stats();
    assert_eq!(s.misses, 10);
    assert_eq!(s.hits, 190);
    // Filter tables were consulted exactly 10 times per gate: 2 gates ×
    // 10 misses × 6 edge accesses... except gate tables shortcut when
    // edges run out; both tables here have full wildcard chains.
    let fs = aiu.filter_stats();
    assert_eq!(fs.dag_edges, 2 * 10 * 6);
}
