//! The flow table (paper §5.2): a hash-indexed cache of fully specified
//! flows. Each record stores, **per gate**, the bound plugin instance and
//! an opaque per-flow soft-state slot (the DRR plugin keeps its per-flow
//! queue pointer there).
//!
//! Reproduced mechanics:
//!
//! * The cheap five-tuple hash ("17 processor cycles on a Pentium") —
//!   a short xor/fold with no multiplies, [`flow_hash`].
//! * Bucket array sized at boot (default 32768), collision chains as
//!   singly linked lists threaded through the record slab.
//! * Records come from a free list seeded with 1024 entries that **grows
//!   exponentially** (1024, 2048, 4096, …) up to a configurable maximum,
//!   after which the **oldest records are recycled**.
//! * Records are addressed by [`FlowIndex`] — the FIX the data path caches
//!   in the packet's mbuf so later gates skip the hash lookup entirely.

use rp_packet::mbuf::FlowIndex;
use rp_packet::FlowTuple;
use std::any::Any;
use std::net::IpAddr;

use crate::filter::FilterId;

/// The paper's cheap flow hash: fold the full six-tuple into 32 bits with
/// xors, rotates and one final avalanche — comparable work to the
/// "17 cycles" original (no multiplies, no divisions beyond the mask).
#[inline]
pub fn flow_hash(t: &FlowTuple) -> u32 {
    #[inline]
    fn fold_addr(a: IpAddr) -> u32 {
        match a {
            IpAddr::V4(v) => u32::from(v),
            IpAddr::V6(v) => {
                let b = u128::from(v);
                (b as u32) ^ ((b >> 32) as u32) ^ ((b >> 64) as u32) ^ ((b >> 96) as u32)
            }
        }
    }
    let mut h = fold_addr(t.src);
    h = h.rotate_left(7) ^ fold_addr(t.dst);
    h = h.rotate_left(7) ^ (u32::from(t.sport) << 16 | u32::from(t.dport));
    // The key — and record equality — is the full six-tuple; the incoming
    // interface must perturb the hash too, or same-5-tuple flows from
    // different interfaces chain in one bucket (and always co-shard).
    h = h.rotate_left(5) ^ t.rx_if;
    h ^= u32::from(t.proto) << 8;
    // One-round finisher to spread low bits into the bucket mask.
    h ^= h >> 16;
    h = h.wrapping_mul(0x45d9_f3b5);
    h ^ (h >> 13)
}

/// Per-gate binding stored in a flow record: the paper's "pair of pointers
/// for each gate" — the plugin instance and its private per-flow soft
/// state.
pub struct GateBinding<V> {
    /// The bound plugin instance (None when no filter matched at this
    /// gate).
    pub instance: Option<V>,
    /// The filter this binding was derived from.
    pub filter: Option<FilterId>,
    /// Plugin-private per-flow soft state (`Send` so flow records can live
    /// on data-plane worker shards).
    pub soft_state: Option<Box<dyn Any + Send>>,
}

impl<V> Default for GateBinding<V> {
    fn default() -> Self {
        GateBinding {
            instance: None,
            filter: None,
            soft_state: None,
        }
    }
}

/// One row of the flow table.
pub struct FlowRecord<V> {
    /// The fully specified six-tuple identifying the flow.
    pub key: FlowTuple,
    /// Per-gate bindings, indexed by gate id.
    pub gates: Vec<GateBinding<V>>,
    /// Chain link (next record in the same hash bucket).
    next: Option<u32>,
    /// Insertion sequence number (for oldest-first recycling).
    seq: u64,
    /// Virtual time of the last lookup hit (for idle expiry).
    last_used: u64,
    /// Slot-in-use flag (false = on the free list).
    live: bool,
}

/// Flow table configuration (paper defaults).
#[derive(Debug, Clone, Copy)]
pub struct FlowTableConfig {
    /// Number of hash buckets ("default value used in our kernel is
    /// 32768").
    pub buckets: usize,
    /// Initial free-list size ("default is 1024").
    pub initial_records: usize,
    /// Hard cap on allocated records; beyond this the oldest are recycled.
    pub max_records: usize,
    /// Number of gates each record carries bindings for.
    pub gates: usize,
    /// Admission control against cache thrash. `0` keeps the legacy
    /// behaviour (recycle the oldest record when full). When non-zero, a
    /// full table reclaims an *idle* record (unused for `max_idle_ns`)
    /// found within a bounded clock-hand scan, and otherwise **denies**
    /// the insert — a one-packet-flow flood then degrades the flood's own
    /// flows (no cached record) instead of recycling established ones.
    pub max_idle_ns: u64,
}

impl Default for FlowTableConfig {
    fn default() -> Self {
        FlowTableConfig {
            buckets: 32768,
            initial_records: 1024,
            max_records: 65536,
            gates: 4,
            max_idle_ns: 0,
        }
    }
}

/// Statistics exposed for the experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowTableStats {
    /// Lookup hits.
    pub hits: u64,
    /// Lookup misses.
    pub misses: u64,
    /// Records recycled (evicted while live).
    pub recycled: u64,
    /// Inserts denied by admission control (table full, nothing idle).
    pub denied: u64,
    /// Idle records reclaimed inline at the allocation cap.
    pub inline_expired: u64,
    /// Current allocation (live + free).
    pub allocated: usize,
    /// Live records.
    pub live: usize,
}

impl FlowTableStats {
    /// Fold another table's counters into this one. A sharded data plane
    /// runs one flow table per worker; control-plane reporting sums them
    /// into the view a single-table router would show.
    pub fn absorb(&mut self, other: &FlowTableStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.recycled += other.recycled;
        self.denied += other.denied;
        self.inline_expired += other.inline_expired;
        self.allocated += other.allocated;
        self.live += other.live;
    }
}

/// The flow cache.
pub struct FlowTable<V> {
    buckets: Vec<Option<u32>>,
    records: Vec<FlowRecord<V>>,
    free: Vec<u32>,
    cfg: FlowTableConfig,
    next_seq: u64,
    now_ns: u64,
    /// Clock hand for the bounded idle-reclaim scan at the cap.
    hand: usize,
    stats: FlowTableStats,
}

/// Slots examined per at-cap idle-reclaim attempt. Bounds the hot-path
/// cost of admission control: one insert never scans more than this many
/// records, no matter how large the table.
const RECLAIM_SCAN: usize = 64;

impl<V> FlowTable<V> {
    /// Build with the given configuration.
    pub fn new(cfg: FlowTableConfig) -> Self {
        assert!(cfg.buckets.is_power_of_two(), "bucket count must be 2^k");
        assert!(cfg.initial_records >= 1);
        let mut t = FlowTable {
            buckets: vec![None; cfg.buckets],
            records: Vec::new(),
            free: Vec::new(),
            cfg,
            next_seq: 0,
            now_ns: 0,
            hand: 0,
            stats: FlowTableStats::default(),
        };
        t.grow(cfg.initial_records);
        t
    }

    fn grow(&mut self, n: usize) {
        let start = self.records.len();
        for i in 0..n {
            self.records.push(FlowRecord {
                key: dummy_key(),
                gates: (0..self.cfg.gates)
                    .map(|_| GateBinding::default())
                    .collect(),
                next: None,
                seq: 0,
                last_used: 0,
                live: false,
            });
            self.free.push((start + i) as u32);
        }
        self.stats.allocated = self.records.len();
    }

    fn bucket_of(&self, key: &FlowTuple) -> usize {
        (flow_hash(key) as usize) & (self.cfg.buckets - 1)
    }

    /// Advance the table's virtual clock (drives idle expiry; the router
    /// calls this as packets arrive).
    pub fn set_now(&mut self, now_ns: u64) {
        self.now_ns = now_ns;
    }

    /// Cached-path lookup: the FIX for `key` if present. One hash + chain
    /// walk; a hit refreshes the record's idle timer.
    pub fn lookup(&mut self, key: &FlowTuple) -> Option<FlowIndex> {
        let b = self.bucket_of(key);
        let mut cur = self.buckets[b];
        while let Some(idx) = cur {
            let r = &self.records[idx as usize];
            if r.key == *key {
                self.stats.hits += 1;
                self.records[idx as usize].last_used = self.now_ns;
                return Some(FlowIndex(idx));
            }
            cur = r.next;
        }
        self.stats.misses += 1;
        None
    }

    /// Remove every flow idle for longer than `max_idle_ns` ("if a cached
    /// flow remains idle for an extended period, its cached entry may be
    /// removed", paper §3.2). Returns the evicted bindings for plugin
    /// callbacks.
    pub fn expire_idle(&mut self, max_idle_ns: u64) -> Vec<EvictedFlow<V>> {
        let mut out = Vec::new();
        self.expire_idle_into(max_idle_ns, &mut out);
        out
    }

    /// Allocation-free variant of [`expire_idle`](Self::expire_idle):
    /// evicted flows are appended to `out` (typically a scratch buffer
    /// the caller drains and reuses). Returns how many were evicted.
    pub fn expire_idle_into(&mut self, max_idle_ns: u64, out: &mut Vec<EvictedFlow<V>>) -> usize {
        let cutoff = self.now_ns.saturating_sub(max_idle_ns);
        let mut evicted = 0;
        for i in 0..self.records.len() {
            let r = &self.records[i];
            if r.live && r.last_used < cutoff {
                if let Some(ev) = self.remove(FlowIndex(i as u32)) {
                    out.push(ev);
                    evicted += 1;
                }
            }
        }
        evicted
    }

    /// Non-counting peek (used by tests/diagnostics).
    pub fn peek(&self, key: &FlowTuple) -> Option<FlowIndex> {
        let b = self.bucket_of(key);
        let mut cur = self.buckets[b];
        while let Some(idx) = cur {
            let r = &self.records[idx as usize];
            if r.key == *key {
                return Some(FlowIndex(idx));
            }
            cur = r.next;
        }
        None
    }

    /// Insert a record for `key` (which must not be cached), returning its
    /// FIX and, when a live record had to be recycled, the evicted record's
    /// bindings so the caller can run plugin eviction callbacks. Always
    /// succeeds: at the cap this recycles the oldest record regardless of
    /// admission policy.
    pub fn insert(&mut self, key: FlowTuple) -> (FlowIndex, Option<EvictedFlow<V>>) {
        self.insert_inner(key, false)
            .expect("insert without admission control is infallible")
    }

    /// Admission-controlled insert: like [`insert`](Self::insert), but when
    /// the table is at its cap and `max_idle_ns` is configured, only an
    /// *idle* record (found within a bounded clock-hand scan) may be
    /// reclaimed. With every record busy the insert is **denied**
    /// (`None`, counted in [`FlowTableStats::denied`]) — the flow-cache
    /// equivalent of a `FlowTableFull` error: established flows keep
    /// their records and the new flow runs uncached.
    pub fn try_insert(&mut self, key: FlowTuple) -> Option<(FlowIndex, Option<EvictedFlow<V>>)> {
        self.insert_inner(key, self.cfg.max_idle_ns > 0)
    }

    fn insert_inner(
        &mut self,
        key: FlowTuple,
        admission: bool,
    ) -> Option<(FlowIndex, Option<EvictedFlow<V>>)> {
        debug_assert!(self.peek(&key).is_none(), "flow already cached");
        let mut evicted = None;
        let idx = match self.free.pop() {
            Some(i) => i,
            None => {
                if self.records.len() < self.cfg.max_records {
                    // Exponential growth: double (capped at max).
                    let add = self
                        .records
                        .len()
                        .min(self.cfg.max_records - self.records.len());
                    self.grow(add.max(1));
                    self.free.pop().expect("grew the free list")
                } else if admission {
                    match self.reclaim_idle() {
                        Some(victim) => {
                            evicted = Some(self.evict(victim));
                            self.stats.inline_expired += 1;
                            victim
                        }
                        None => {
                            self.stats.denied += 1;
                            return None;
                        }
                    }
                } else {
                    let victim = self.oldest_live().expect("table full but nothing live");
                    evicted = Some(self.evict(victim));
                    self.stats.recycled += 1;
                    victim
                }
            }
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        let b = self.bucket_of(&key);
        {
            let head = self.buckets[b];
            let r = &mut self.records[idx as usize];
            r.key = key;
            r.seq = seq;
            r.last_used = self.now_ns;
            r.live = true;
            r.next = head;
            for g in &mut r.gates {
                *g = GateBinding::default();
            }
            self.buckets[b] = Some(idx);
        }
        self.stats.live += 1;
        Some((FlowIndex(idx), evicted))
    }

    /// Inline idle-expiry at the cap: advance the clock hand over at most
    /// [`RECLAIM_SCAN`] slots looking for a record idle past
    /// `max_idle_ns`. No allocation, no full-slab sweep — the bounded
    /// cost rides on the (already slow) classification-miss path.
    fn reclaim_idle(&mut self) -> Option<u32> {
        let cutoff = self.now_ns.saturating_sub(self.cfg.max_idle_ns);
        let n = self.records.len();
        for _ in 0..RECLAIM_SCAN.min(n) {
            let i = self.hand;
            self.hand = (self.hand + 1) % n;
            let r = &self.records[i];
            if r.live && r.last_used < cutoff {
                return Some(i as u32);
            }
        }
        None
    }

    fn oldest_live(&self) -> Option<u32> {
        // Oldest-first recycling. A scan keeps the fast path free of list
        // maintenance; recycling only happens at the allocation cap.
        self.records
            .iter()
            .enumerate()
            .filter(|(_, r)| r.live)
            .min_by_key(|(_, r)| r.seq)
            .map(|(i, _)| i as u32)
    }

    fn unlink(&mut self, idx: u32) {
        let b = self.bucket_of(&self.records[idx as usize].key);
        let mut cur = self.buckets[b];
        if cur == Some(idx) {
            self.buckets[b] = self.records[idx as usize].next;
            return;
        }
        while let Some(i) = cur {
            let next = self.records[i as usize].next;
            if next == Some(idx) {
                self.records[i as usize].next = self.records[idx as usize].next;
                return;
            }
            cur = next;
        }
    }

    fn evict(&mut self, idx: u32) -> EvictedFlow<V> {
        self.unlink(idx);
        let r = &mut self.records[idx as usize];
        r.live = false;
        let gates = std::mem::take(&mut r.gates);
        r.gates = (0..self.cfg.gates)
            .map(|_| GateBinding::default())
            .collect();
        self.stats.live -= 1;
        EvictedFlow { key: r.key, gates }
    }

    /// Remove a cached flow explicitly (e.g. when its filter is removed),
    /// returning its bindings for eviction callbacks.
    pub fn remove(&mut self, fix: FlowIndex) -> Option<EvictedFlow<V>> {
        let idx = fix.0;
        if !self.records.get(idx as usize)?.live {
            return None;
        }
        let out = self.evict(idx);
        self.free.push(idx);
        Some(out)
    }

    /// Drop every cached flow whose key matches `spec` (the AIU calls
    /// this when a *new* filter is installed: cached flows it matches may
    /// now classify differently and must be re-resolved on their next
    /// packet). Returns the evicted flows.
    pub fn invalidate_matching(&mut self, spec: &crate::filter::FilterSpec) -> Vec<EvictedFlow<V>> {
        let victims: Vec<u32> = self
            .records
            .iter()
            .enumerate()
            .filter(|(_, r)| r.live && spec.matches(&r.key))
            .map(|(i, _)| i as u32)
            .collect();
        victims
            .into_iter()
            .filter_map(|v| self.remove(FlowIndex(v)))
            .collect()
    }

    /// Drop every cached flow derived from `filter` at `gate` (the AIU
    /// calls this when a filter is removed — paper §4,
    /// `deregister_instance` semantics). Returns the evicted flows.
    pub fn invalidate_filter(&mut self, gate: usize, filter: FilterId) -> Vec<EvictedFlow<V>> {
        let victims: Vec<u32> = self
            .records
            .iter()
            .enumerate()
            .filter(|(_, r)| r.live && r.gates.get(gate).and_then(|g| g.filter) == Some(filter))
            .map(|(i, _)| i as u32)
            .collect();
        victims
            .into_iter()
            .filter_map(|v| self.remove(FlowIndex(v)))
            .collect()
    }

    /// Drop every cached flow for which `pred` holds (the router calls
    /// this when it quarantines a faulted plugin instance: any record
    /// still binding that instance at *any* gate must be re-resolved so
    /// its flows fall back to the gate's default path). Returns the
    /// evicted flows.
    pub fn invalidate_where(
        &mut self,
        mut pred: impl FnMut(&FlowRecord<V>) -> bool,
    ) -> Vec<EvictedFlow<V>> {
        let victims: Vec<u32> = self
            .records
            .iter()
            .enumerate()
            .filter(|(_, r)| r.live && pred(r))
            .map(|(i, _)| i as u32)
            .collect();
        victims
            .into_iter()
            .filter_map(|v| self.remove(FlowIndex(v)))
            .collect()
    }

    /// Access a record by FIX.
    pub fn record(&self, fix: FlowIndex) -> Option<&FlowRecord<V>> {
        self.records.get(fix.0 as usize).filter(|r| r.live)
    }

    /// Mutable access to a record by FIX.
    pub fn record_mut(&mut self, fix: FlowIndex) -> Option<&mut FlowRecord<V>> {
        self.records.get_mut(fix.0 as usize).filter(|r| r.live)
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> FlowTableStats {
        self.stats
    }

    /// Number of live flows.
    pub fn live(&self) -> usize {
        self.stats.live
    }
}

/// Bindings of a removed/recycled flow, handed back for plugin callbacks.
pub struct EvictedFlow<V> {
    /// The evicted flow's key.
    pub key: FlowTuple,
    /// Its per-gate bindings (instances + soft state).
    pub gates: Vec<GateBinding<V>>,
}

fn dummy_key() -> FlowTuple {
    FlowTuple {
        src: IpAddr::V4(std::net::Ipv4Addr::UNSPECIFIED),
        dst: IpAddr::V4(std::net::Ipv4Addr::UNSPECIFIED),
        proto: 0,
        sport: 0,
        dport: 0,
        rx_if: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn key(i: u32) -> FlowTuple {
        FlowTuple {
            src: IpAddr::V4(Ipv4Addr::from(0x0A00_0000 | i)),
            dst: IpAddr::V4(Ipv4Addr::from(0x1400_0000 | i)),
            proto: 17,
            sport: (i % 60000) as u16,
            dport: 80,
            rx_if: 0,
        }
    }

    fn small() -> FlowTable<u32> {
        FlowTable::new(FlowTableConfig {
            buckets: 64,
            initial_records: 4,
            max_records: 8,
            gates: 2,
            max_idle_ns: 0,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut t = small();
        assert!(t.lookup(&key(1)).is_none());
        let (fix, ev) = t.insert(key(1));
        assert!(ev.is_none());
        assert_eq!(t.lookup(&key(1)), Some(fix));
        let s = t.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn bindings_round_trip() {
        let mut t = small();
        let (fix, _) = t.insert(key(1));
        {
            let r = t.record_mut(fix).unwrap();
            r.gates[0].instance = Some(77);
            r.gates[0].filter = Some(FilterId(5));
            r.gates[0].soft_state = Some(Box::new("queue".to_string()));
        }
        let r = t.record(fix).unwrap();
        assert_eq!(r.gates[0].instance, Some(77));
        assert_eq!(r.gates[0].filter, Some(FilterId(5)));
        assert_eq!(
            r.gates[0]
                .soft_state
                .as_ref()
                .unwrap()
                .downcast_ref::<String>()
                .unwrap(),
            "queue"
        );
        assert!(r.gates[1].instance.is_none());
    }

    #[test]
    fn exponential_growth_then_recycling() {
        let mut t = small(); // 4 initial, max 8
        for i in 0..8 {
            t.insert(key(i));
        }
        assert_eq!(t.stats().allocated, 8);
        assert_eq!(t.live(), 8);
        // Ninth insert recycles the oldest (key 0).
        let (_, ev) = t.insert(key(100));
        let ev = ev.expect("must recycle");
        assert_eq!(ev.key, key(0));
        assert_eq!(t.live(), 8);
        assert!(t.lookup(&key(0)).is_none());
        assert!(t.lookup(&key(100)).is_some());
        assert_eq!(t.stats().recycled, 1);
    }

    #[test]
    fn chains_survive_unlink() {
        // Force collisions with a single bucket.
        let mut t: FlowTable<u32> = FlowTable::new(FlowTableConfig {
            buckets: 1,
            initial_records: 4,
            max_records: 16,
            gates: 1,
            max_idle_ns: 0,
        });
        let (f1, _) = t.insert(key(1));
        let (_f2, _) = t.insert(key(2));
        let (_f3, _) = t.insert(key(3));
        // Remove the middle of the chain.
        t.remove(f1).unwrap();
        assert!(t.lookup(&key(1)).is_none());
        assert!(t.lookup(&key(2)).is_some());
        assert!(t.lookup(&key(3)).is_some());
        // Reuse the freed slot.
        let (f4, _) = t.insert(key(4));
        assert!(t.lookup(&key(4)) == Some(f4));
    }

    #[test]
    fn invalidate_filter_drops_derived_flows() {
        let mut t = small();
        for i in 0..3 {
            let (fix, _) = t.insert(key(i));
            let r = t.record_mut(fix).unwrap();
            r.gates[1].filter = Some(FilterId(if i == 1 { 9 } else { 5 }));
            r.gates[1].instance = Some(i);
        }
        let evicted = t.invalidate_filter(1, FilterId(5));
        assert_eq!(evicted.len(), 2);
        assert!(t.lookup(&key(1)).is_some());
        assert!(t.lookup(&key(0)).is_none());
        assert!(t.lookup(&key(2)).is_none());
    }

    #[test]
    fn invalidate_where_drops_matching_records() {
        let mut t = small();
        for i in 0..4 {
            let (fix, _) = t.insert(key(i));
            let r = t.record_mut(fix).unwrap();
            // Bind instance 7 at gate 0 for even flows only.
            if i % 2 == 0 {
                r.gates[0].instance = Some(7);
            }
        }
        let evicted = t.invalidate_where(|r| r.gates.iter().any(|g| g.instance == Some(7)));
        assert_eq!(evicted.len(), 2);
        assert!(t.peek(&key(0)).is_none());
        assert!(t.peek(&key(1)).is_some());
        assert!(t.peek(&key(2)).is_none());
        assert!(t.peek(&key(3)).is_some());
        // Idempotent once the matching records are gone.
        assert!(t
            .invalidate_where(|r| r.gates.iter().any(|g| g.instance == Some(7)))
            .is_empty());
    }

    #[test]
    fn hash_spreads() {
        // Distinct flows should not all collide: over 1000 keys and 256
        // buckets, expect a reasonable spread.
        let mut buckets = vec![0u32; 256];
        for i in 0..1000 {
            buckets[(flow_hash(&key(i)) as usize) % 256] += 1;
        }
        let max = *buckets.iter().max().unwrap();
        assert!(max < 30, "worst bucket has {max} of 1000 keys");
        let empty = buckets.iter().filter(|b| **b == 0).count();
        assert!(empty < 30, "{empty} of 256 buckets empty");
    }

    #[test]
    fn hash_depends_on_each_field() {
        let base = key(1);
        let h = flow_hash(&base);
        let mut t = base;
        t.sport ^= 1;
        assert_ne!(flow_hash(&t), h);
        let mut t = base;
        t.dport ^= 1;
        assert_ne!(flow_hash(&t), h);
        let mut t = base;
        t.proto ^= 1;
        assert_ne!(flow_hash(&t), h);
        let mut t = base;
        t.src = IpAddr::V4(Ipv4Addr::new(9, 9, 9, 9));
        assert_ne!(flow_hash(&t), h);
        let mut t = base;
        t.rx_if ^= 1;
        assert_ne!(flow_hash(&t), h);
    }

    #[test]
    fn idle_expiry() {
        let mut t = small();
        t.set_now(0);
        let (f1, _) = t.insert(key(1));
        t.set_now(1_000_000);
        let (_f2, _) = t.insert(key(2));
        // Touch flow 1 at t=2ms: refreshes its idle timer.
        t.set_now(2_000_000);
        assert_eq!(t.lookup(&key(1)), Some(f1));
        // At t=2.5ms with 1ms max idle: flow 2 (last used at 1ms) dies,
        // flow 1 (used at 2ms) survives.
        t.set_now(2_500_000);
        let evicted = t.expire_idle(1_000_000);
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].key, key(2));
        assert!(t.peek(&key(1)).is_some());
        assert!(t.peek(&key(2)).is_none());
        // Expiring again is a no-op.
        assert!(t.expire_idle(1_000_000).is_empty());
    }

    fn defended() -> FlowTable<u32> {
        FlowTable::new(FlowTableConfig {
            buckets: 64,
            initial_records: 4,
            max_records: 8,
            gates: 2,
            max_idle_ns: 1_000_000,
        })
    }

    #[test]
    fn admission_denies_when_full_of_busy_flows() {
        let mut t = defended();
        t.set_now(10_000_000);
        for i in 0..8 {
            assert!(t.try_insert(key(i)).is_some());
        }
        // All 8 records were used "now": nothing is idle, so the flood
        // flow is denied and every established record survives.
        let before = t.stats();
        assert!(t.try_insert(key(100)).is_none());
        assert_eq!(t.stats().denied, before.denied + 1);
        assert_eq!(t.live(), 8);
        for i in 0..8 {
            assert!(t.peek(&key(i)).is_some(), "established flow {i} evicted");
        }
        assert!(t.peek(&key(100)).is_none());
        // Plain insert still recycles (legacy escape hatch).
        let (_, ev) = t.insert(key(101));
        assert!(ev.is_some());
    }

    #[test]
    fn admission_reclaims_idle_inline() {
        let mut t = defended();
        t.set_now(0);
        for i in 0..8 {
            t.try_insert(key(i)).unwrap();
        }
        // Refresh all but flow 3, then advance past the idle window.
        t.set_now(6_000_000);
        for i in 0..8 {
            if i != 3 {
                t.lookup(&key(i));
            }
        }
        t.set_now(6_500_000);
        let (_, ev) = t.try_insert(key(200)).expect("idle record reclaimable");
        let ev = ev.expect("reclaim returns the evicted flow");
        assert_eq!(ev.key, key(3), "only the idle flow is reclaimable");
        assert_eq!(t.stats().inline_expired, 1);
        assert_eq!(t.stats().recycled, 0, "inline expiry is not recycling");
        assert!(t.peek(&key(200)).is_some());
        // Now every record is busy again → next insert is denied.
        assert!(t.try_insert(key(201)).is_none());
    }

    #[test]
    fn expire_idle_into_reuses_buffer() {
        let mut t = small();
        t.set_now(0);
        t.insert(key(1));
        t.insert(key(2));
        t.set_now(2_000_000);
        t.lookup(&key(1));
        t.set_now(2_500_000);
        let mut scratch = Vec::with_capacity(4);
        let n = t.expire_idle_into(1_000_000, &mut scratch);
        assert_eq!(n, 1);
        assert_eq!(scratch.len(), 1);
        assert_eq!(scratch[0].key, key(2));
        // Drain and reuse: the buffer keeps its capacity, and a second
        // sweep with nothing idle appends nothing.
        scratch.clear();
        assert_eq!(t.expire_idle_into(1_000_000, &mut scratch), 0);
        assert!(scratch.is_empty());
    }

    #[test]
    fn stale_fix_rejected() {
        let mut t = small();
        let (fix, _) = t.insert(key(1));
        t.remove(fix).unwrap();
        assert!(t.record(fix).is_none());
        assert!(t.remove(fix).is_none());
    }
}
