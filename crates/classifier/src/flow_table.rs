//! The flow table (paper §5.2): a hash-indexed cache of fully specified
//! flows. Each record stores, **per gate**, the bound plugin instance and
//! an opaque per-flow soft-state slot (the DRR plugin keeps its per-flow
//! queue pointer there).
//!
//! Reproduced mechanics:
//!
//! * The cheap five-tuple hash ("17 processor cycles on a Pentium") —
//!   a short xor/fold with no multiplies, [`flow_hash`].
//! * Bucket array sized at boot (default 32768), collision chains as
//!   singly linked lists threaded through the record slab.
//! * Records come from a free list seeded with 1024 entries that **grows
//!   exponentially** (1024, 2048, 4096, …) up to a configurable maximum,
//!   after which the **oldest records are recycled**.
//! * Records are addressed by [`FlowIndex`] — the FIX the data path caches
//!   in the packet's mbuf so later gates skip the hash lookup entirely.
//!
//! Internet-scale extensions (beyond the paper's fixed-size table):
//!
//! * **Incremental resize.** When the live-record count outgrows the
//!   bucket array, the table doubles it *incrementally*: the old array
//!   stays live while a bounded number of its buckets are migrated per
//!   `lookup`/`insert` ([`MIGRATE_BUCKETS_PER_OP`]), so there is never a
//!   stop-the-world rehash on the data path. During a migration a lookup
//!   probes the new chain first and falls back to the old one; each
//!   record lives in exactly one chain at all times.
//! * **Inline LRU eviction.** With [`FlowTableConfig::lru_evict`] set, a
//!   table at its record cap evicts the *coldest* record found within the
//!   bounded clock-hand probe run instead of denying the insert — the
//!   right policy for established-flow churn workloads where admission
//!   denial would punish legitimate new flows.

use rp_packet::mbuf::FlowIndex;
use rp_packet::FlowTuple;
use std::any::Any;
use std::net::IpAddr;

use crate::filter::FilterId;

/// The paper's cheap flow hash: fold the full six-tuple into 32 bits with
/// xors, rotates and one final avalanche — comparable work to the
/// "17 cycles" original (no multiplies, no divisions beyond the mask).
#[inline]
pub fn flow_hash(t: &FlowTuple) -> u32 {
    #[inline]
    fn fold_addr(a: IpAddr) -> u32 {
        match a {
            IpAddr::V4(v) => u32::from(v),
            IpAddr::V6(v) => {
                let b = u128::from(v);
                (b as u32) ^ ((b >> 32) as u32) ^ ((b >> 64) as u32) ^ ((b >> 96) as u32)
            }
        }
    }
    let mut h = fold_addr(t.src);
    h = h.rotate_left(7) ^ fold_addr(t.dst);
    h = h.rotate_left(7) ^ (u32::from(t.sport) << 16 | u32::from(t.dport));
    // The key — and record equality — is the full six-tuple; the incoming
    // interface must perturb the hash too, or same-5-tuple flows from
    // different interfaces chain in one bucket (and always co-shard).
    h = h.rotate_left(5) ^ t.rx_if;
    h ^= u32::from(t.proto) << 8;
    // One-round finisher to spread low bits into the bucket mask.
    h ^= h >> 16;
    h = h.wrapping_mul(0x45d9_f3b5);
    h ^ (h >> 13)
}

/// Per-gate binding stored in a flow record: the paper's "pair of pointers
/// for each gate" — the plugin instance and its private per-flow soft
/// state.
pub struct GateBinding<V> {
    /// The bound plugin instance (None when no filter matched at this
    /// gate).
    pub instance: Option<V>,
    /// The filter this binding was derived from.
    pub filter: Option<FilterId>,
    /// Plugin-private per-flow soft state (`Send` so flow records can live
    /// on data-plane worker shards).
    pub soft_state: Option<Box<dyn Any + Send>>,
}

impl<V> Default for GateBinding<V> {
    fn default() -> Self {
        GateBinding {
            instance: None,
            filter: None,
            soft_state: None,
        }
    }
}

/// Hard cap on per-record gate bindings (the data path compiles six
/// gates; two slots of headroom).
pub const MAX_GATES: usize = 8;

/// A record's gate bindings, stored **inline** in the record slab rather
/// than behind a per-record heap `Vec`. A cold-flow hit then costs slab
/// accesses whose neighbouring lines the hardware prefetcher streams,
/// instead of a dependent pointer chase into allocator scatter — and a
/// million-record table makes zero per-record allocations.
///
/// Layout is structure-of-arrays, hottest field first: the per-gate
/// fast path reads only `instances`, so for a pointer-sized `V` every
/// gate's binding for a flow lands in **one cache line**, adjacent to
/// the record header the lookup already touched. Filters are consulted
/// on control-plane invalidation, soft state only when a bound plugin
/// runs.
#[repr(C)]
pub struct GateArray<V> {
    instances: [Option<V>; MAX_GATES],
    filters: [Option<FilterId>; MAX_GATES],
    soft: [Option<Box<dyn Any + Send>>; MAX_GATES],
    len: u8,
}

impl<V> GateArray<V> {
    fn new(len: usize) -> Self {
        assert!(
            len <= MAX_GATES,
            "flow table supports at most {MAX_GATES} gates"
        );
        GateArray {
            instances: std::array::from_fn(|_| None),
            filters: [None; MAX_GATES],
            soft: std::array::from_fn(|_| None),
            len: len as u8,
        }
    }

    /// Number of gate slots in use.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when configured with zero gates.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The instance bound at `gate` (the per-packet fast-path read).
    pub fn instance(&self, gate: usize) -> Option<&V> {
        if gate >= self.len() {
            return None;
        }
        self.instances[gate].as_ref()
    }

    /// Bind (or unbind) an instance at `gate`.
    pub fn set_instance(&mut self, gate: usize, v: Option<V>) {
        assert!(gate < self.len());
        self.instances[gate] = v;
    }

    /// All in-use instance slots (for bound-anywhere scans).
    pub fn instances(&self) -> &[Option<V>] {
        &self.instances[..self.len()]
    }

    /// The filter the binding at `gate` was derived from.
    pub fn filter(&self, gate: usize) -> Option<FilterId> {
        self.filters.get(self.check(gate)?).copied().flatten()
    }

    /// Record the filter a binding was derived from.
    pub fn set_filter(&mut self, gate: usize, f: Option<FilterId>) {
        assert!(gate < self.len());
        self.filters[gate] = f;
    }

    /// Per-flow plugin soft state at `gate` (shared view).
    pub fn soft(&self, gate: usize) -> Option<&(dyn Any + Send)> {
        self.soft[self.check(gate)?].as_deref()
    }

    /// Mutable slot for per-flow plugin soft state at `gate`.
    pub fn soft_mut(&mut self, gate: usize) -> Option<&mut Option<Box<dyn Any + Send>>> {
        let g = self.check(gate)?;
        Some(&mut self.soft[g])
    }

    /// One-access fetch of a gate's filter id plus its soft-state slot
    /// (the data path's per-gate plugin call).
    pub fn binding_mut(&mut self, gate: usize) -> Option<crate::aiu::BindingMut<'_>> {
        let g = self.check(gate)?;
        Some((self.filters[g], &mut self.soft[g]))
    }

    fn check(&self, gate: usize) -> Option<usize> {
        (gate < self.len()).then_some(gate)
    }

    /// Move every binding out (for eviction callbacks), leaving defaults.
    fn take_all(&mut self) -> Vec<GateBinding<V>> {
        (0..self.len())
            .map(|g| GateBinding {
                instance: self.instances[g].take(),
                filter: self.filters[g].take(),
                soft_state: self.soft[g].take(),
            })
            .collect()
    }

    fn reset(&mut self) {
        for g in 0..self.len() {
            self.instances[g] = None;
            self.filters[g] = None;
            self.soft[g] = None;
        }
    }
}

/// One row of the flow table. `repr(C)` keeps the header (key, chain
/// link, timestamps) and the gate instances on adjacent cache lines —
/// the only bytes a forwarded packet touches.
#[repr(C)]
pub struct FlowRecord<V> {
    /// The fully specified six-tuple identifying the flow.
    pub key: FlowTuple,
    /// Chain link (next record in the same hash bucket; [`EMPTY`]
    /// terminates).
    next: u32,
    /// Cached [`flow_hash`] of the key: bucket migration and unlinking
    /// must not rehash, and the resize path never touches the key bytes.
    hash: u32,
    /// Insertion sequence number (for oldest-first recycling).
    seq: u64,
    /// Virtual time of the last lookup hit (for idle expiry).
    last_used: u64,
    /// Slot-in-use flag (false = on the free list).
    live: bool,
    /// Per-gate bindings, indexed by gate id, inline in the slab (after
    /// the header so the hot `instances` line is adjacent to it).
    pub gates: GateArray<V>,
}

/// Flow table configuration (paper defaults).
#[derive(Debug, Clone, Copy)]
pub struct FlowTableConfig {
    /// Number of hash buckets at boot ("default value used in our kernel
    /// is 32768").
    pub buckets: usize,
    /// Ceiling for incremental bucket-array doubling (`0` pins the array
    /// at `buckets` — no resize, the paper's fixed-size behaviour). Must
    /// be a power of two when non-zero.
    pub max_buckets: usize,
    /// Initial free-list size ("default is 1024").
    pub initial_records: usize,
    /// Hard cap on allocated records; beyond this the oldest are recycled.
    pub max_records: usize,
    /// Number of gates each record carries bindings for.
    pub gates: usize,
    /// Admission control against cache thrash. `0` keeps the legacy
    /// behaviour (recycle the oldest record when full). When non-zero, a
    /// full table reclaims an *idle* record (unused for `max_idle_ns`)
    /// found within a bounded clock-hand scan, and otherwise **denies**
    /// the insert — a one-packet-flow flood then degrades the flood's own
    /// flows (no cached record) instead of recycling established ones.
    pub max_idle_ns: u64,
    /// Inline LRU eviction at the cap: instead of denying when nothing in
    /// the probe run is idle, evict the *coldest* (least recently used)
    /// record seen in the bounded scan. The right policy for
    /// established-flow churn workloads; leave off to keep strict
    /// admission-denial semantics under floods.
    pub lru_evict: bool,
}

impl Default for FlowTableConfig {
    fn default() -> Self {
        FlowTableConfig {
            buckets: 32768,
            max_buckets: 1 << 22,
            initial_records: 1024,
            max_records: 65536,
            gates: 4,
            max_idle_ns: 0,
            lru_evict: false,
        }
    }
}

/// Statistics exposed for the experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowTableStats {
    /// Lookup hits.
    pub hits: u64,
    /// Lookup misses.
    pub misses: u64,
    /// Records recycled (evicted while live).
    pub recycled: u64,
    /// Inserts denied by admission control (table full, nothing idle).
    pub denied: u64,
    /// Idle records reclaimed inline at the allocation cap.
    pub inline_expired: u64,
    /// Coldest-record evictions at the cap (LRU policy).
    pub evicted_lru: u64,
    /// Buckets migrated by the incremental-resize machinery.
    pub resize_steps: u64,
    /// Current allocation (live + free).
    pub allocated: usize,
    /// Live records.
    pub live: usize,
}

impl FlowTableStats {
    /// Fold another table's counters into this one. A sharded data plane
    /// runs one flow table per worker; control-plane reporting sums them
    /// into the view a single-table router would show.
    pub fn absorb(&mut self, other: &FlowTableStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.recycled += other.recycled;
        self.denied += other.denied;
        self.inline_expired += other.inline_expired;
        self.evicted_lru += other.evicted_lru;
        self.resize_steps += other.resize_steps;
        self.allocated += other.allocated;
        self.live += other.live;
    }
}

/// Chain terminator / empty-bucket sentinel. Bare `u32` heads instead of
/// `Option<u32>` halve the bucket arrays (a million-flow table carries
/// megabytes of them — fewer cache lines and TLB entries on every probe).
const EMPTY: u32 = u32::MAX;

/// The flow cache.
pub struct FlowTable<V> {
    /// Current bucket array (the *new* array while a resize is active).
    buckets: Vec<u32>,
    /// Previous bucket array during an incremental resize; empty
    /// otherwise. Buckets below `migrate_pos` have been drained into
    /// `buckets`.
    old_buckets: Vec<u32>,
    /// Migration cursor into `old_buckets`.
    migrate_pos: usize,
    records: Vec<FlowRecord<V>>,
    free: Vec<u32>,
    cfg: FlowTableConfig,
    next_seq: u64,
    now_ns: u64,
    /// Clock hand for the bounded idle-reclaim scan at the cap.
    hand: usize,
    stats: FlowTableStats,
}

/// Slots examined per at-cap idle-reclaim attempt. Bounds the hot-path
/// cost of admission control: one insert never scans more than this many
/// records, no matter how large the table.
const RECLAIM_SCAN: usize = 64;

/// Old-array buckets migrated per `lookup`/`insert` while a resize is in
/// flight. Two per operation means a resize completes after at most
/// `old_buckets / 2` operations while bounding any single packet's extra
/// work to two (usually short) chain relinks.
const MIGRATE_BUCKETS_PER_OP: usize = 2;

impl<V> FlowTable<V> {
    /// Build with the given configuration.
    pub fn new(cfg: FlowTableConfig) -> Self {
        assert!(cfg.buckets.is_power_of_two(), "bucket count must be 2^k");
        assert!(
            cfg.max_buckets == 0 || cfg.max_buckets.is_power_of_two(),
            "max bucket count must be 0 or 2^k"
        );
        assert!(cfg.initial_records >= 1);
        let mut t = FlowTable {
            buckets: vec![EMPTY; cfg.buckets],
            old_buckets: Vec::new(),
            migrate_pos: 0,
            records: Vec::new(),
            free: Vec::new(),
            cfg,
            next_seq: 0,
            now_ns: 0,
            hand: 0,
            stats: FlowTableStats::default(),
        };
        t.grow(cfg.initial_records);
        t
    }

    fn grow(&mut self, n: usize) {
        let start = self.records.len();
        for i in 0..n {
            self.records.push(FlowRecord {
                key: dummy_key(),
                gates: GateArray::new(self.cfg.gates),
                next: EMPTY,
                hash: 0,
                seq: 0,
                last_used: 0,
                live: false,
            });
            self.free.push((start + i) as u32);
        }
        self.stats.allocated = self.records.len();
    }

    /// Bucket-array ceiling: `max_buckets`, floored at the boot size.
    fn bucket_cap(&self) -> usize {
        if self.cfg.max_buckets == 0 {
            self.cfg.buckets
        } else {
            self.cfg.max_buckets.max(self.cfg.buckets)
        }
    }

    /// Current bucket-array size (tests/benches; grows under incremental
    /// resize).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// True while an incremental resize is migrating buckets.
    pub fn resizing(&self) -> bool {
        !self.old_buckets.is_empty()
    }

    /// Rough resident size: bucket arrays + record slab (including the
    /// inline per-gate bindings) + free list. Used by the scale bench's
    /// bounded-memory gate; excludes plugin soft state (opaque boxes).
    pub fn approx_mem_bytes(&self) -> usize {
        use std::mem::size_of;
        (self.buckets.capacity() + self.old_buckets.capacity()) * size_of::<u32>()
            + self.records.capacity() * size_of::<FlowRecord<V>>()
            + self.free.capacity() * size_of::<u32>()
    }

    /// Advance the table's virtual clock (drives idle expiry; the router
    /// calls this as packets arrive).
    pub fn set_now(&mut self, now_ns: u64) {
        self.now_ns = now_ns;
    }

    /// Find a live record for `key` without touching stats or timers.
    /// Probes the current chain, then (during a resize) the old one.
    fn find(&self, key: &FlowTuple, hash: u32) -> Option<u32> {
        let mut cur = self.buckets[(hash as usize) & (self.buckets.len() - 1)];
        while cur != EMPTY {
            let r = &self.records[cur as usize];
            if r.key == *key {
                return Some(cur);
            }
            cur = r.next;
        }
        if !self.old_buckets.is_empty() {
            let mut cur = self.old_buckets[(hash as usize) & (self.old_buckets.len() - 1)];
            while cur != EMPTY {
                let r = &self.records[cur as usize];
                if r.key == *key {
                    return Some(cur);
                }
                cur = r.next;
            }
        }
        None
    }

    /// Cached-path lookup: the FIX for `key` if present. One hash + chain
    /// walk; a hit refreshes the record's idle timer.
    pub fn lookup(&mut self, key: &FlowTuple) -> Option<FlowIndex> {
        self.lookup_hashed(key, flow_hash(key))
    }

    /// [`lookup`](Self::lookup) with the caller's precomputed
    /// [`flow_hash`] — the AIU hashes each packet exactly once and threads
    /// the value through lookup *and* the subsequent insert, so even the
    /// admission-denied flood path pays for one hash.
    pub fn lookup_hashed(&mut self, key: &FlowTuple, hash: u32) -> Option<FlowIndex> {
        let found = self.find(key, hash);
        let out = match found {
            Some(idx) => {
                self.stats.hits += 1;
                self.records[idx as usize].last_used = self.now_ns;
                Some(FlowIndex(idx))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        };
        self.migrate_step();
        out
    }

    /// Allocation-free idle-expiry sweep ("if a cached flow remains idle
    /// for an extended period, its cached entry may be removed", paper
    /// §3.2): flows idle longer than `max_idle_ns` are evicted and
    /// appended to `out` (typically a scratch buffer the caller drains
    /// and reuses). Returns how many were evicted.
    pub fn expire_idle_into(&mut self, max_idle_ns: u64, out: &mut Vec<EvictedFlow<V>>) -> usize {
        let cutoff = self.now_ns.saturating_sub(max_idle_ns);
        let mut evicted = 0;
        for i in 0..self.records.len() {
            let r = &self.records[i];
            if r.live && r.last_used < cutoff {
                if let Some(ev) = self.remove(FlowIndex(i as u32)) {
                    out.push(ev);
                    evicted += 1;
                }
            }
        }
        evicted
    }

    /// Non-counting peek (used by tests/diagnostics).
    pub fn peek(&self, key: &FlowTuple) -> Option<FlowIndex> {
        self.find(key, flow_hash(key)).map(FlowIndex)
    }

    /// Insert a record for `key` (which must not be cached), returning its
    /// FIX and, when a live record had to be recycled, the evicted record's
    /// bindings so the caller can run plugin eviction callbacks. Always
    /// succeeds: at the cap this recycles the oldest record regardless of
    /// admission policy.
    pub fn insert(&mut self, key: FlowTuple) -> (FlowIndex, Option<EvictedFlow<V>>) {
        let hash = flow_hash(&key);
        self.insert_hashed(key, hash)
    }

    /// [`insert`](Self::insert) with a precomputed [`flow_hash`].
    pub fn insert_hashed(
        &mut self,
        key: FlowTuple,
        hash: u32,
    ) -> (FlowIndex, Option<EvictedFlow<V>>) {
        self.insert_inner(key, hash, false)
            .expect("insert without admission control is infallible")
    }

    /// Admission-controlled insert: like [`insert`](Self::insert), but when
    /// the table is at its cap and `max_idle_ns` is configured, only an
    /// *idle* record (found within a bounded clock-hand scan) may be
    /// reclaimed. With every record busy the insert is **denied**
    /// (`None`, counted in [`FlowTableStats::denied`]) — the flow-cache
    /// equivalent of a `FlowTableFull` error: established flows keep
    /// their records and the new flow runs uncached. With
    /// [`FlowTableConfig::lru_evict`] the deny becomes a coldest-record
    /// eviction instead.
    pub fn try_insert(&mut self, key: FlowTuple) -> Option<(FlowIndex, Option<EvictedFlow<V>>)> {
        let hash = flow_hash(&key);
        self.try_insert_hashed(key, hash)
    }

    /// [`try_insert`](Self::try_insert) with a precomputed [`flow_hash`].
    pub fn try_insert_hashed(
        &mut self,
        key: FlowTuple,
        hash: u32,
    ) -> Option<(FlowIndex, Option<EvictedFlow<V>>)> {
        let admission = self.cfg.max_idle_ns > 0 || self.cfg.lru_evict;
        self.insert_inner(key, hash, admission)
    }

    fn insert_inner(
        &mut self,
        key: FlowTuple,
        hash: u32,
        admission: bool,
    ) -> Option<(FlowIndex, Option<EvictedFlow<V>>)> {
        debug_assert!(self.find(&key, hash).is_none(), "flow already cached");
        let mut evicted = None;
        let idx = match self.free.pop() {
            Some(i) => i,
            None => {
                if self.records.len() < self.cfg.max_records {
                    // Exponential growth: double (capped at max).
                    let add = self
                        .records
                        .len()
                        .min(self.cfg.max_records - self.records.len());
                    self.grow(add.max(1));
                    self.free.pop().expect("grew the free list")
                } else if admission {
                    match self.reclaim_victim() {
                        Some((victim, was_idle)) => {
                            evicted = Some(self.evict(victim));
                            if was_idle {
                                self.stats.inline_expired += 1;
                            } else {
                                self.stats.evicted_lru += 1;
                            }
                            victim
                        }
                        None => {
                            self.stats.denied += 1;
                            return None;
                        }
                    }
                } else {
                    let victim = self.oldest_live().expect("table full but nothing live");
                    evicted = Some(self.evict(victim));
                    self.stats.recycled += 1;
                    victim
                }
            }
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        let b = (hash as usize) & (self.buckets.len() - 1);
        {
            let head = self.buckets[b];
            let r = &mut self.records[idx as usize];
            r.key = key;
            r.hash = hash;
            r.seq = seq;
            r.last_used = self.now_ns;
            r.live = true;
            r.next = head;
            r.gates.reset();
            self.buckets[b] = idx;
        }
        self.stats.live += 1;
        self.maybe_start_resize();
        self.migrate_step();
        Some((FlowIndex(idx), evicted))
    }

    /// Begin an incremental bucket-array doubling when the live-record
    /// count has outgrown the array (load factor > 1) and the ceiling
    /// allows it. The old array stays live; [`Self::migrate_step`] drains
    /// it a few buckets at a time.
    fn maybe_start_resize(&mut self) {
        if !self.old_buckets.is_empty() {
            return;
        }
        let cur = self.buckets.len();
        if self.stats.live <= cur || cur >= self.bucket_cap() {
            return;
        }
        let new_len = (cur * 2).min(self.bucket_cap());
        self.old_buckets = std::mem::replace(&mut self.buckets, vec![EMPTY; new_len]);
        self.migrate_pos = 0;
    }

    /// Drain up to [`MIGRATE_BUCKETS_PER_OP`] buckets from the old array
    /// into the current one. Called from every lookup/insert while a
    /// resize is active, so migration cost is amortized over the packets
    /// that caused the growth.
    fn migrate_step(&mut self) {
        if self.old_buckets.is_empty() {
            return;
        }
        let mask = self.buckets.len() - 1;
        for _ in 0..MIGRATE_BUCKETS_PER_OP {
            if self.migrate_pos >= self.old_buckets.len() {
                break;
            }
            let mut cur = std::mem::replace(&mut self.old_buckets[self.migrate_pos], EMPTY);
            while cur != EMPTY {
                let next = self.records[cur as usize].next;
                let nb = (self.records[cur as usize].hash as usize) & mask;
                self.records[cur as usize].next = self.buckets[nb];
                self.buckets[nb] = cur;
                cur = next;
            }
            self.migrate_pos += 1;
            self.stats.resize_steps += 1;
        }
        if self.migrate_pos >= self.old_buckets.len() {
            self.old_buckets = Vec::new();
            self.migrate_pos = 0;
        }
    }

    /// At-cap victim selection: advance the clock hand over at most
    /// [`RECLAIM_SCAN`] slots. An *idle* record (past `max_idle_ns`) wins
    /// immediately; otherwise, under the LRU policy, the coldest live
    /// record seen in the window is evicted. No allocation, no full-slab
    /// sweep — the bounded cost rides on the (already slow)
    /// classification-miss path. Returns `(victim, was_idle)`.
    fn reclaim_victim(&mut self) -> Option<(u32, bool)> {
        let idle_cutoff = if self.cfg.max_idle_ns > 0 {
            Some(self.now_ns.saturating_sub(self.cfg.max_idle_ns))
        } else {
            None
        };
        let n = self.records.len();
        let mut coldest: Option<u32> = None;
        for _ in 0..RECLAIM_SCAN.min(n) {
            let i = self.hand;
            self.hand = (self.hand + 1) % n;
            let r = &self.records[i];
            if !r.live {
                continue;
            }
            if idle_cutoff.is_some_and(|c| r.last_used < c) {
                return Some((i as u32, true));
            }
            if self.cfg.lru_evict {
                let colder = match coldest {
                    None => true,
                    Some(c) => {
                        let cr = &self.records[c as usize];
                        (r.last_used, r.seq) < (cr.last_used, cr.seq)
                    }
                };
                if colder {
                    coldest = Some(i as u32);
                }
            }
        }
        coldest.map(|c| (c, false))
    }

    fn oldest_live(&self) -> Option<u32> {
        // Oldest-first recycling. A scan keeps the fast path free of list
        // maintenance; recycling only happens at the allocation cap.
        self.records
            .iter()
            .enumerate()
            .filter(|(_, r)| r.live)
            .min_by_key(|(_, r)| r.seq)
            .map(|(i, _)| i as u32)
    }

    /// Remove `idx` from whichever chain holds it — the current array, or
    /// (mid-resize) the not-yet-migrated old bucket.
    fn unlink(&mut self, idx: u32) {
        let hash = self.records[idx as usize].hash;
        let nb = (hash as usize) & (self.buckets.len() - 1);
        if Self::unlink_from(&mut self.buckets, &mut self.records, nb, idx) {
            return;
        }
        if !self.old_buckets.is_empty() {
            let ob = (hash as usize) & (self.old_buckets.len() - 1);
            Self::unlink_from(&mut self.old_buckets, &mut self.records, ob, idx);
        }
    }

    fn unlink_from(heads: &mut [u32], records: &mut [FlowRecord<V>], b: usize, idx: u32) -> bool {
        let mut cur = heads[b];
        if cur == idx {
            heads[b] = records[idx as usize].next;
            return true;
        }
        while cur != EMPTY {
            let next = records[cur as usize].next;
            if next == idx {
                records[cur as usize].next = records[idx as usize].next;
                return true;
            }
            cur = next;
        }
        false
    }

    fn evict(&mut self, idx: u32) -> EvictedFlow<V> {
        self.unlink(idx);
        let r = &mut self.records[idx as usize];
        r.live = false;
        let gates = r.gates.take_all();
        self.stats.live -= 1;
        EvictedFlow { key: r.key, gates }
    }

    /// Remove a cached flow explicitly (e.g. when its filter is removed),
    /// returning its bindings for eviction callbacks.
    pub fn remove(&mut self, fix: FlowIndex) -> Option<EvictedFlow<V>> {
        let idx = fix.0;
        if !self.records.get(idx as usize)?.live {
            return None;
        }
        let out = self.evict(idx);
        self.free.push(idx);
        Some(out)
    }

    /// Drop every cached flow whose key matches `spec` (the AIU calls
    /// this when a *new* filter is installed: cached flows it matches may
    /// now classify differently and must be re-resolved on their next
    /// packet). Returns the evicted flows.
    pub fn invalidate_matching(&mut self, spec: &crate::filter::FilterSpec) -> Vec<EvictedFlow<V>> {
        let victims: Vec<u32> = self
            .records
            .iter()
            .enumerate()
            .filter(|(_, r)| r.live && spec.matches(&r.key))
            .map(|(i, _)| i as u32)
            .collect();
        victims
            .into_iter()
            .filter_map(|v| self.remove(FlowIndex(v)))
            .collect()
    }

    /// Drop every cached flow derived from `filter` at `gate` (the AIU
    /// calls this when a filter is removed — paper §4,
    /// `deregister_instance` semantics). Returns the evicted flows.
    pub fn invalidate_filter(&mut self, gate: usize, filter: FilterId) -> Vec<EvictedFlow<V>> {
        let victims: Vec<u32> = self
            .records
            .iter()
            .enumerate()
            .filter(|(_, r)| r.live && r.gates.filter(gate) == Some(filter))
            .map(|(i, _)| i as u32)
            .collect();
        victims
            .into_iter()
            .filter_map(|v| self.remove(FlowIndex(v)))
            .collect()
    }

    /// Drop every cached flow for which `pred` holds (the router calls
    /// this when it quarantines a faulted plugin instance: any record
    /// still binding that instance at *any* gate must be re-resolved so
    /// its flows fall back to the gate's default path). Returns the
    /// evicted flows.
    pub fn invalidate_where(
        &mut self,
        mut pred: impl FnMut(&FlowRecord<V>) -> bool,
    ) -> Vec<EvictedFlow<V>> {
        let victims: Vec<u32> = self
            .records
            .iter()
            .enumerate()
            .filter(|(_, r)| r.live && pred(r))
            .map(|(i, _)| i as u32)
            .collect();
        victims
            .into_iter()
            .filter_map(|v| self.remove(FlowIndex(v)))
            .collect()
    }

    /// Access a record by FIX.
    pub fn record(&self, fix: FlowIndex) -> Option<&FlowRecord<V>> {
        self.records.get(fix.0 as usize).filter(|r| r.live)
    }

    /// Mutable access to a record by FIX.
    pub fn record_mut(&mut self, fix: FlowIndex) -> Option<&mut FlowRecord<V>> {
        self.records.get_mut(fix.0 as usize).filter(|r| r.live)
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> FlowTableStats {
        self.stats
    }

    /// Number of live flows.
    pub fn live(&self) -> usize {
        self.stats.live
    }
}

/// Bindings of a removed/recycled flow, handed back for plugin callbacks.
pub struct EvictedFlow<V> {
    /// The evicted flow's key.
    pub key: FlowTuple,
    /// Its per-gate bindings (instances + soft state).
    pub gates: Vec<GateBinding<V>>,
}

fn dummy_key() -> FlowTuple {
    FlowTuple {
        src: IpAddr::V4(std::net::Ipv4Addr::UNSPECIFIED),
        dst: IpAddr::V4(std::net::Ipv4Addr::UNSPECIFIED),
        proto: 0,
        sport: 0,
        dport: 0,
        rx_if: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn key(i: u32) -> FlowTuple {
        FlowTuple {
            src: IpAddr::V4(Ipv4Addr::from(0x0A00_0000 | i)),
            dst: IpAddr::V4(Ipv4Addr::from(0x1400_0000 | i)),
            proto: 17,
            sport: (i % 60000) as u16,
            dport: 80,
            rx_if: 0,
        }
    }

    fn small() -> FlowTable<u32> {
        FlowTable::new(FlowTableConfig {
            buckets: 64,
            max_buckets: 0,
            initial_records: 4,
            max_records: 8,
            gates: 2,
            max_idle_ns: 0,
            lru_evict: false,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut t = small();
        assert!(t.lookup(&key(1)).is_none());
        let (fix, ev) = t.insert(key(1));
        assert!(ev.is_none());
        assert_eq!(t.lookup(&key(1)), Some(fix));
        let s = t.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn bindings_round_trip() {
        let mut t = small();
        let (fix, _) = t.insert(key(1));
        {
            let r = t.record_mut(fix).unwrap();
            r.gates.set_instance(0, Some(77));
            r.gates.set_filter(0, Some(FilterId(5)));
            *r.gates.soft_mut(0).unwrap() = Some(Box::new("queue".to_string()));
        }
        let r = t.record(fix).unwrap();
        assert_eq!(r.gates.instance(0), Some(&77));
        assert_eq!(r.gates.filter(0), Some(FilterId(5)));
        assert_eq!(
            r.gates.soft(0).unwrap().downcast_ref::<String>().unwrap(),
            "queue"
        );
        assert!(r.gates.instance(1).is_none());
    }

    #[test]
    fn exponential_growth_then_recycling() {
        let mut t = small(); // 4 initial, max 8
        for i in 0..8 {
            t.insert(key(i));
        }
        assert_eq!(t.stats().allocated, 8);
        assert_eq!(t.live(), 8);
        // Ninth insert recycles the oldest (key 0).
        let (_, ev) = t.insert(key(100));
        let ev = ev.expect("must recycle");
        assert_eq!(ev.key, key(0));
        assert_eq!(t.live(), 8);
        assert!(t.lookup(&key(0)).is_none());
        assert!(t.lookup(&key(100)).is_some());
        assert_eq!(t.stats().recycled, 1);
    }

    #[test]
    fn chains_survive_unlink() {
        // Force collisions with a single bucket (max_buckets: 0 pins the
        // array so incremental resize can't break the chains apart).
        let mut t: FlowTable<u32> = FlowTable::new(FlowTableConfig {
            buckets: 1,
            max_buckets: 0,
            initial_records: 4,
            max_records: 16,
            gates: 1,
            max_idle_ns: 0,
            lru_evict: false,
        });
        let (f1, _) = t.insert(key(1));
        let (_f2, _) = t.insert(key(2));
        let (_f3, _) = t.insert(key(3));
        // Remove the middle of the chain.
        t.remove(f1).unwrap();
        assert!(t.lookup(&key(1)).is_none());
        assert!(t.lookup(&key(2)).is_some());
        assert!(t.lookup(&key(3)).is_some());
        // Reuse the freed slot.
        let (f4, _) = t.insert(key(4));
        assert!(t.lookup(&key(4)) == Some(f4));
    }

    #[test]
    fn invalidate_filter_drops_derived_flows() {
        let mut t = small();
        for i in 0..3 {
            let (fix, _) = t.insert(key(i));
            let r = t.record_mut(fix).unwrap();
            r.gates
                .set_filter(1, Some(FilterId(if i == 1 { 9 } else { 5 })));
            r.gates.set_instance(1, Some(i));
        }
        let evicted = t.invalidate_filter(1, FilterId(5));
        assert_eq!(evicted.len(), 2);
        assert!(t.lookup(&key(1)).is_some());
        assert!(t.lookup(&key(0)).is_none());
        assert!(t.lookup(&key(2)).is_none());
    }

    #[test]
    fn invalidate_where_drops_matching_records() {
        let mut t = small();
        for i in 0..4 {
            let (fix, _) = t.insert(key(i));
            let r = t.record_mut(fix).unwrap();
            // Bind instance 7 at gate 0 for even flows only.
            if i % 2 == 0 {
                r.gates.set_instance(0, Some(7));
            }
        }
        let evicted = t.invalidate_where(|r| r.gates.instances().contains(&Some(7)));
        assert_eq!(evicted.len(), 2);
        assert!(t.peek(&key(0)).is_none());
        assert!(t.peek(&key(1)).is_some());
        assert!(t.peek(&key(2)).is_none());
        assert!(t.peek(&key(3)).is_some());
        // Idempotent once the matching records are gone.
        assert!(t
            .invalidate_where(|r| r.gates.instances().contains(&Some(7)))
            .is_empty());
    }

    #[test]
    fn hash_spreads() {
        // Distinct flows should not all collide: over 1000 keys and 256
        // buckets, expect a reasonable spread.
        let mut buckets = vec![0u32; 256];
        for i in 0..1000 {
            buckets[(flow_hash(&key(i)) as usize) % 256] += 1;
        }
        let max = *buckets.iter().max().unwrap();
        assert!(max < 30, "worst bucket has {max} of 1000 keys");
        let empty = buckets.iter().filter(|b| **b == 0).count();
        assert!(empty < 30, "{empty} of 256 buckets empty");
    }

    #[test]
    fn hash_depends_on_each_field() {
        let base = key(1);
        let h = flow_hash(&base);
        let mut t = base;
        t.sport ^= 1;
        assert_ne!(flow_hash(&t), h);
        let mut t = base;
        t.dport ^= 1;
        assert_ne!(flow_hash(&t), h);
        let mut t = base;
        t.proto ^= 1;
        assert_ne!(flow_hash(&t), h);
        let mut t = base;
        t.src = IpAddr::V4(Ipv4Addr::new(9, 9, 9, 9));
        assert_ne!(flow_hash(&t), h);
        let mut t = base;
        t.rx_if ^= 1;
        assert_ne!(flow_hash(&t), h);
    }

    #[test]
    fn idle_expiry() {
        let mut t = small();
        t.set_now(0);
        let (f1, _) = t.insert(key(1));
        t.set_now(1_000_000);
        let (_f2, _) = t.insert(key(2));
        // Touch flow 1 at t=2ms: refreshes its idle timer.
        t.set_now(2_000_000);
        assert_eq!(t.lookup(&key(1)), Some(f1));
        // At t=2.5ms with 1ms max idle: flow 2 (last used at 1ms) dies,
        // flow 1 (used at 2ms) survives.
        t.set_now(2_500_000);
        let mut evicted = Vec::new();
        assert_eq!(t.expire_idle_into(1_000_000, &mut evicted), 1);
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].key, key(2));
        assert!(t.peek(&key(1)).is_some());
        assert!(t.peek(&key(2)).is_none());
        // Expiring again is a no-op.
        evicted.clear();
        assert_eq!(t.expire_idle_into(1_000_000, &mut evicted), 0);
        assert!(evicted.is_empty());
    }

    fn defended() -> FlowTable<u32> {
        FlowTable::new(FlowTableConfig {
            buckets: 64,
            max_buckets: 0,
            initial_records: 4,
            max_records: 8,
            gates: 2,
            max_idle_ns: 1_000_000,
            lru_evict: false,
        })
    }

    #[test]
    fn admission_denies_when_full_of_busy_flows() {
        let mut t = defended();
        t.set_now(10_000_000);
        for i in 0..8 {
            assert!(t.try_insert(key(i)).is_some());
        }
        // All 8 records were used "now": nothing is idle, so the flood
        // flow is denied and every established record survives.
        let before = t.stats();
        assert!(t.try_insert(key(100)).is_none());
        assert_eq!(t.stats().denied, before.denied + 1);
        assert_eq!(t.live(), 8);
        for i in 0..8 {
            assert!(t.peek(&key(i)).is_some(), "established flow {i} evicted");
        }
        assert!(t.peek(&key(100)).is_none());
        // Plain insert still recycles (legacy escape hatch).
        let (_, ev) = t.insert(key(101));
        assert!(ev.is_some());
    }

    #[test]
    fn admission_reclaims_idle_inline() {
        let mut t = defended();
        t.set_now(0);
        for i in 0..8 {
            t.try_insert(key(i)).unwrap();
        }
        // Refresh all but flow 3, then advance past the idle window.
        t.set_now(6_000_000);
        for i in 0..8 {
            if i != 3 {
                t.lookup(&key(i));
            }
        }
        t.set_now(6_500_000);
        let (_, ev) = t.try_insert(key(200)).expect("idle record reclaimable");
        let ev = ev.expect("reclaim returns the evicted flow");
        assert_eq!(ev.key, key(3), "only the idle flow is reclaimable");
        assert_eq!(t.stats().inline_expired, 1);
        assert_eq!(t.stats().recycled, 0, "inline expiry is not recycling");
        assert!(t.peek(&key(200)).is_some());
        // Now every record is busy again → next insert is denied.
        assert!(t.try_insert(key(201)).is_none());
    }

    #[test]
    fn lru_evicts_coldest_instead_of_denying() {
        let mut t: FlowTable<u32> = FlowTable::new(FlowTableConfig {
            buckets: 64,
            max_buckets: 0,
            initial_records: 4,
            max_records: 8,
            gates: 2,
            max_idle_ns: 1_000_000,
            lru_evict: true,
        });
        t.set_now(0);
        for i in 0..8 {
            t.try_insert(key(i)).unwrap();
        }
        // Touch everything recently — but flow 5 least recently — with all
        // records inside the idle window, so idle reclaim finds nothing.
        t.set_now(10_000_000);
        t.lookup(&key(5));
        t.set_now(10_500_000);
        for i in 0..8 {
            if i != 5 {
                t.lookup(&key(i));
            }
        }
        t.set_now(10_600_000);
        let (_, ev) = t.try_insert(key(300)).expect("LRU eviction, not denial");
        let ev = ev.expect("eviction returns the coldest flow");
        assert_eq!(ev.key, key(5), "coldest record is the LRU victim");
        let s = t.stats();
        assert_eq!(s.evicted_lru, 1);
        assert_eq!(s.denied, 0);
        assert_eq!(s.inline_expired, 0, "nothing was idle");
        assert!(t.peek(&key(300)).is_some());
        assert_eq!(t.live(), 8);
    }

    #[test]
    fn incremental_resize_preserves_every_flow() {
        let mut t: FlowTable<u32> = FlowTable::new(FlowTableConfig {
            buckets: 8,
            max_buckets: 1024,
            initial_records: 4,
            max_records: 4096,
            gates: 1,
            max_idle_ns: 0,
            lru_evict: false,
        });
        const N: u32 = 700;
        for i in 0..N {
            t.insert(key(i));
            // Every already-inserted flow stays reachable mid-migration.
            if i % 97 == 0 {
                for j in (0..=i).step_by(61) {
                    assert!(t.peek(&key(j)).is_some(), "flow {j} lost at insert {i}");
                }
            }
        }
        assert!(t.stats().resize_steps > 0, "resize never ran");
        assert!(t.bucket_count() > 8, "bucket array never grew");
        assert_eq!(t.live(), N as usize);
        for i in 0..N {
            assert!(t.lookup(&key(i)).is_some(), "flow {i} lost after resize");
        }
        // Drive any in-flight migration to completion with lookups only.
        let mut guard = 0;
        while t.resizing() {
            t.lookup(&key(0));
            guard += 1;
            assert!(guard < 100_000, "migration never completes");
        }
        assert_eq!(t.bucket_count(), 1024);
        for i in 0..N {
            assert!(t.peek(&key(i)).is_some(), "flow {i} lost post-migration");
        }
    }

    #[test]
    fn removal_mid_resize_unlinks_from_correct_chain() {
        let mut t: FlowTable<u32> = FlowTable::new(FlowTableConfig {
            buckets: 2,
            max_buckets: 256,
            initial_records: 4,
            max_records: 512,
            gates: 1,
            max_idle_ns: 0,
            lru_evict: false,
        });
        let mut fixes = Vec::new();
        for i in 0..64 {
            fixes.push(t.insert(key(i)).0);
        }
        assert!(t.resizing() || t.stats().resize_steps > 0);
        // Remove every third flow — some still sit in old-array chains.
        for (i, fix) in fixes.iter().enumerate() {
            if i % 3 == 0 {
                assert!(t.remove(*fix).is_some(), "flow {i} missing");
            }
        }
        for i in 0..64u32 {
            let present = t.peek(&key(i)).is_some();
            assert_eq!(present, i % 3 != 0, "flow {i} wrong presence");
        }
        assert_eq!(t.live(), 64 - 22);
    }

    #[test]
    fn expire_idle_into_reuses_buffer() {
        let mut t = small();
        t.set_now(0);
        t.insert(key(1));
        t.insert(key(2));
        t.set_now(2_000_000);
        t.lookup(&key(1));
        t.set_now(2_500_000);
        let mut scratch = Vec::with_capacity(4);
        let n = t.expire_idle_into(1_000_000, &mut scratch);
        assert_eq!(n, 1);
        assert_eq!(scratch.len(), 1);
        assert_eq!(scratch[0].key, key(2));
        // Drain and reuse: the buffer keeps its capacity, and a second
        // sweep with nothing idle appends nothing.
        scratch.clear();
        assert_eq!(t.expire_idle_into(1_000_000, &mut scratch), 0);
        assert!(scratch.is_empty());
    }

    #[test]
    fn hashed_entry_points_match_unhashed() {
        let mut a = small();
        let mut b = small();
        for i in 0..8 {
            let h = flow_hash(&key(i));
            let (fa, _) = a.insert(key(i));
            let (fb, _) = b.insert_hashed(key(i), h);
            assert_eq!(fa, fb);
        }
        for i in 0..8 {
            let h = flow_hash(&key(i));
            assert_eq!(a.lookup(&key(i)), b.lookup_hashed(&key(i), h));
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn stale_fix_rejected() {
        let mut t = small();
        let (fix, _) = t.insert(key(1));
        t.remove(fix).unwrap();
        assert!(t.record(fix).is_none());
        assert!(t.remove(fix).is_none());
    }
}
