//! # rp-classifier — the Association Identification Unit (AIU)
//!
//! The AIU is "the most important component" of the Router Plugins
//! architecture (paper §5): it classifies packets into flows and maintains
//! the binding between flows and plugin instances. It consists of:
//!
//! * [`filter::FilterSpec`] — the six-tuple filter language with prefix
//!   wildcards, port ranges, and full wildcards (paper §3, `<src, dst,
//!   proto, sport, dport, incoming interface>`).
//! * [`dag::DagTable`] — the paper's novel DAG / *set-pruning trie* filter
//!   table (§5.1): one level per header field, a pluggable match function
//!   per level (the BMP plugins from `rp-lpm` for the address levels),
//!   filter replication along covering edges so lookup never backtracks,
//!   and cost `O(fields)` — independent of the number of filters.
//! * [`flow_table::FlowTable`] — the hash-based flow cache (§5.2): the
//!   cheap five-tuple hash, chained buckets, a free list that grows
//!   exponentially (1024, 2048, …), and recycling of the oldest records.
//! * [`linear::LinearTable`] — the `O(n)` scan that stands in for the
//!   "typical filter algorithms used in existing implementations" the
//!   paper benchmarks against.
//! * [`aiu::Aiu`] — the facade combining one filter table per *gate* with
//!   the shared flow table, implementing the cached / uncached data paths
//!   of §3.2.
//!
//! Everything is generic over the bound value `V` (in `router-core` this is
//! the plugin-instance handle), so the classifier substrate is reusable and
//! testable in isolation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aiu;
pub mod dag;
pub mod filter;
pub mod flow_table;
pub mod grid;
pub mod linear;

pub use aiu::{Aiu, AiuConfig, GateId};
pub use dag::{BmpKind, DagTable, LookupStats};
pub use filter::{AddrMatch, FilterId, FilterSpec, PortMatch};
pub use flow_table::{FlowTable, FlowTableConfig};
pub use grid::{GridOfTries, TwoDFilter};
pub use linear::LinearTable;
