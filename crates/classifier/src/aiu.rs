//! The Association Identification Unit facade: one filter table per
//! *gate*, one shared flow table, and the two data paths of paper §3.2:
//!
//! * **Uncached** (first packet of a flow): the flow-table lookup misses,
//!   the AIU performs one filter-table lookup *per gate* and creates a
//!   single flow record caching every gate's plugin binding.
//! * **Cached**: the flow-table lookup hits; the FIX is handed back so
//!   subsequent gates cost one indexed load each.
//!
//! The paper keeps one filter table per gate (rather than one merged
//! global table) because per-function policies differ and a merged table
//! blows up combinatorially (§5.1); the AIU mirrors that design.

use crate::dag::{BmpKind, DagError, DagTable, LookupStats};
use crate::filter::{FilterId, FilterSpec};
use crate::flow_table::{EvictedFlow, FlowTable, FlowTableConfig, FlowTableStats};
use rp_packet::mbuf::FlowIndex;
use rp_packet::{FlowTuple, Mbuf};

/// Index of a gate (the paper's plugin-type/gate correspondence lives in
/// `router-core`; the AIU just numbers them).
pub type GateId = usize;

/// A flow record's gate binding, fetched in one slab access: the filter
/// the binding was derived from plus the per-flow soft-state slot.
pub type BindingMut<'a> = (
    Option<FilterId>,
    &'a mut Option<Box<dyn std::any::Any + Send>>,
);

/// AIU construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct AiuConfig {
    /// Number of gates (filter tables).
    pub gates: usize,
    /// Flow-cache configuration.
    pub flow_table: FlowTableConfig,
    /// BMP plugin for the DAG address levels.
    pub bmp: BmpKind,
}

impl Default for AiuConfig {
    fn default() -> Self {
        let gates = 4;
        AiuConfig {
            gates,
            flow_table: FlowTableConfig {
                gates,
                ..FlowTableConfig::default()
            },
            bmp: BmpKind::Bspl,
        }
    }
}

/// The AIU. `V` is the plugin-instance handle type (must be cheap to
/// clone: `router-core` uses an `Arc`).
pub struct Aiu<V: Clone> {
    filter_tables: Vec<DagTable<V>>,
    flow_table: FlowTable<V>,
    cfg: AiuConfig,
}

/// Outcome of classifying one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassifyOutcome {
    /// Flow was cached; FIX returned directly.
    CacheHit(FlowIndex),
    /// Flow was not cached; filter lookups ran at every gate and a record
    /// was created.
    CacheMiss(FlowIndex),
    /// The flow table's admission control refused a record (table full of
    /// busy flows). The packet is still forwarded, but uncached and on
    /// every gate's default path — under a flow-table flood it is the
    /// attacker's flows that land here, not established ones.
    Denied,
}

impl ClassifyOutcome {
    /// The flow index, when a record exists.
    pub fn fix(&self) -> Option<FlowIndex> {
        match self {
            ClassifyOutcome::CacheHit(f) | ClassifyOutcome::CacheMiss(f) => Some(*f),
            ClassifyOutcome::Denied => None,
        }
    }
}

impl<V: Clone> Aiu<V> {
    /// Build an AIU.
    pub fn new(cfg: AiuConfig) -> Self {
        assert_eq!(
            cfg.gates, cfg.flow_table.gates,
            "flow records must carry one binding per gate"
        );
        Aiu {
            filter_tables: (0..cfg.gates).map(|_| DagTable::new(cfg.bmp)).collect(),
            flow_table: FlowTable::new(cfg.flow_table),
            cfg,
        }
    }

    /// Number of gates.
    pub fn gates(&self) -> usize {
        self.cfg.gates
    }

    /// Install a filter in `gate`'s table, bound to `value`
    /// (`register_instance` semantics). Cached flows the new filter
    /// matches are invalidated — they may bind differently now — and
    /// returned so the caller can run plugin eviction callbacks.
    pub fn install_filter(
        &mut self,
        gate: GateId,
        spec: FilterSpec,
        value: V,
    ) -> Result<(FilterId, Vec<EvictedFlow<V>>), DagError> {
        let id = self.filter_tables[gate].insert(spec.clone(), value)?;
        let evicted = self.flow_table.invalidate_matching(&spec);
        Ok((id, evicted))
    }

    /// Remove a filter and invalidate every cached flow derived from it
    /// (`deregister_instance`). Returns the evicted flows so the caller
    /// can run plugin callbacks.
    pub fn remove_filter(
        &mut self,
        gate: GateId,
        id: FilterId,
    ) -> Result<(FilterSpec, V, Vec<EvictedFlow<V>>), DagError> {
        let (spec, v) = self.filter_tables[gate].remove(id)?;
        let evicted = self.flow_table.invalidate_filter(gate, id);
        Ok((spec, v, evicted))
    }

    /// The filter table of a gate (read access, e.g. for diagnostics).
    pub fn filter_table(&self, gate: GateId) -> &DagTable<V> {
        &self.filter_tables[gate]
    }

    /// Classify a packet: the paper's first-gate logic. On a miss, runs
    /// the filter lookup for **all** gates and creates one flow record
    /// ("the processing of the first packet of a new flow with n gates
    /// involves n filter table lookups to create a single entry"). Any
    /// recycled flow's bindings are returned for eviction callbacks.
    pub fn classify(&mut self, tuple: &FlowTuple) -> (ClassifyOutcome, Option<EvictedFlow<V>>) {
        // One hash per packet: the same value serves the lookup, the
        // insert, and — crucially — the admission-denied flood path,
        // which used to hash twice (lookup miss + denied insert).
        let hash = crate::flow_table::flow_hash(tuple);
        if let Some(fix) = self.flow_table.lookup_hashed(tuple, hash) {
            return (ClassifyOutcome::CacheHit(fix), None);
        }
        let Some((fix, evicted)) = self.flow_table.try_insert_hashed(*tuple, hash) else {
            return (ClassifyOutcome::Denied, None);
        };
        for gate in 0..self.cfg.gates {
            let binding = self.filter_tables[gate]
                .lookup(tuple)
                .map(|(id, v)| (id, v.clone()));
            let rec = self.flow_table.record_mut(fix).expect("fresh record");
            if let Some((id, v)) = binding {
                rec.gates.set_instance(gate, Some(v));
                rec.gates.set_filter(gate, Some(id));
            }
        }
        (ClassifyOutcome::CacheMiss(fix), evicted)
    }

    /// Classify an mbuf, extracting its tuple and caching the FIX into the
    /// mbuf (what the first gate's macro does in the paper). A denied
    /// packet is marked so later gates skip reclassification — without
    /// the mark, every gate of a denied packet would re-run the n filter
    /// lookups, turning admission control into an amplifier.
    pub fn classify_mbuf(
        &mut self,
        mbuf: &mut Mbuf,
    ) -> Result<(ClassifyOutcome, Option<EvictedFlow<V>>), rp_packet::Error> {
        let tuple = FlowTuple::from_mbuf(mbuf)?;
        let (outcome, evicted) = self.classify(&tuple);
        mbuf.fix = outcome.fix();
        if matches!(outcome, ClassifyOutcome::Denied) {
            mbuf.class_denied = true;
        }
        Ok((outcome, evicted))
    }

    /// Fast-path fetch: the instance bound at `gate` for an
    /// already-classified packet. One indexed load — no hashing, no
    /// filter lookup (the "indirect function call instead of a 'hardwired'
    /// function call" of §3.2).
    pub fn instance(&self, fix: FlowIndex, gate: GateId) -> Option<&V> {
        self.flow_table.record(fix)?.gates.instance(gate)
    }

    /// The filter a cached binding was derived from.
    pub fn bound_filter(&self, fix: FlowIndex, gate: GateId) -> Option<FilterId> {
        self.flow_table.record(fix)?.gates.filter(gate)
    }

    /// Single-access fetch of a gate binding's filter id and soft-state
    /// slot (the data path calls this once per gate; splitting it into
    /// two record lookups would double the fast-path slab accesses).
    pub fn binding_mut(&mut self, fix: FlowIndex, gate: GateId) -> Option<BindingMut<'_>> {
        self.flow_table.record_mut(fix)?.gates.binding_mut(gate)
    }

    /// Mutable access to per-flow plugin soft state at a gate.
    pub fn soft_state_mut(
        &mut self,
        fix: FlowIndex,
        gate: GateId,
    ) -> Option<&mut Option<Box<dyn std::any::Any + Send>>> {
        self.flow_table.record_mut(fix)?.gates.soft_mut(gate)
    }

    /// Drop every cached flow whose record satisfies `pred` (the router
    /// quarantining a faulted instance invalidates all flows still bound
    /// to it, at any gate). Returns the evicted flows for callbacks.
    pub fn invalidate_flows_where(
        &mut self,
        pred: impl FnMut(&crate::flow_table::FlowRecord<V>) -> bool,
    ) -> Vec<EvictedFlow<V>> {
        self.flow_table.invalidate_where(pred)
    }

    /// Advance the AIU's virtual clock (idle-expiry bookkeeping).
    pub fn set_now(&mut self, now_ns: u64) {
        self.flow_table.set_now(now_ns);
    }

    /// Allocation-free idle-expiry sweep: flows idle longer than
    /// `max_idle_ns` are evicted and their bindings appended to `out`
    /// (the router's reusable scratch buffer). Returns the eviction
    /// count. (The allocating `expire_idle` variant was removed; every
    /// caller threads a scratch buffer now.)
    pub fn expire_idle_into(&mut self, max_idle_ns: u64, out: &mut Vec<EvictedFlow<V>>) -> usize {
        self.flow_table.expire_idle_into(max_idle_ns, out)
    }

    /// Flow-cache statistics.
    pub fn flow_stats(&self) -> FlowTableStats {
        self.flow_table.stats()
    }

    /// Approximate heap footprint of the flow table (bucket arrays plus
    /// record storage) in bytes — the scale bench's bounded-memory gate.
    pub fn flow_mem_bytes(&self) -> usize {
        self.flow_table.approx_mem_bytes()
    }

    /// Cumulative filter-table access statistics summed over gates.
    pub fn filter_stats(&self) -> LookupStats {
        let mut total = LookupStats::default();
        for t in &self.filter_tables {
            let s = t.stats_snapshot();
            total.bmp_fn_ptr += s.bmp_fn_ptr;
            total.hash_fn_ptr += s.hash_fn_ptr;
            total.addr_probes += s.addr_probes;
            total.port_probes += s.port_probes;
            total.dag_edges += s.dag_edges;
        }
        total
    }

    /// Direct access to the flow table (testbench instrumentation).
    pub fn flow_table_mut(&mut self) -> &mut FlowTable<V> {
        &mut self.flow_table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{IpAddr, Ipv4Addr};

    fn tuple(i: u32) -> FlowTuple {
        FlowTuple {
            src: IpAddr::V4(Ipv4Addr::from(0x0A00_0000 | i)),
            dst: IpAddr::V4(Ipv4Addr::new(192, 94, 233, 10)),
            proto: 6,
            sport: 1000 + i as u16,
            dport: 80,
            rx_if: 0,
        }
    }

    fn aiu3() -> Aiu<&'static str> {
        Aiu::new(AiuConfig {
            gates: 3,
            flow_table: FlowTableConfig {
                gates: 3,
                buckets: 256,
                initial_records: 8,
                max_records: 32,
                max_idle_ns: 0,
                ..FlowTableConfig::default()
            },
            bmp: BmpKind::Bspl,
        })
    }

    #[test]
    fn uncached_then_cached() {
        let mut aiu = aiu3();
        aiu.install_filter(0, "10.0.0.0/8, *, TCP, *, *, *".parse().unwrap(), "sec")
            .unwrap();
        aiu.install_filter(2, "*, *, TCP, *, 80, *".parse().unwrap(), "sched")
            .unwrap();
        let t = tuple(1);
        let (o1, _) = aiu.classify(&t);
        assert!(matches!(o1, ClassifyOutcome::CacheMiss(_)));
        let (o2, _) = aiu.classify(&t);
        assert_eq!(o2, ClassifyOutcome::CacheHit(o1.fix().unwrap()));
        // All gates were resolved on the miss.
        assert_eq!(aiu.instance(o1.fix().unwrap(), 0), Some(&"sec"));
        assert_eq!(aiu.instance(o1.fix().unwrap(), 1), None); // no filter at gate 1
        assert_eq!(aiu.instance(o1.fix().unwrap(), 2), Some(&"sched"));
    }

    #[test]
    fn n_filter_lookups_on_first_packet_only() {
        let mut aiu = aiu3();
        aiu.install_filter(0, FilterSpec::any(), "a").unwrap();
        aiu.install_filter(1, FilterSpec::any(), "b").unwrap();
        aiu.install_filter(2, FilterSpec::any(), "c").unwrap();
        let t = tuple(7);
        let before = aiu.filter_stats().dag_edges;
        aiu.classify(&t);
        let after_miss = aiu.filter_stats().dag_edges;
        // 3 gates × 6 levels of edge traversal.
        assert_eq!(after_miss - before, 18);
        aiu.classify(&t);
        assert_eq!(
            aiu.filter_stats().dag_edges,
            after_miss,
            "cached path must not touch filter tables"
        );
    }

    #[test]
    fn filter_removal_invalidates_flows() {
        let mut aiu = aiu3();
        let (fid, _) = aiu
            .install_filter(1, "*, *, TCP, *, *, *".parse().unwrap(), "x")
            .unwrap();
        let t = tuple(3);
        let (o, _) = aiu.classify(&t);
        assert_eq!(aiu.instance(o.fix().unwrap(), 1), Some(&"x"));
        let (_, _, evicted) = aiu.remove_filter(1, fid).unwrap();
        assert_eq!(evicted.len(), 1);
        // The flow reclassifies to nothing at gate 1.
        let (o2, _) = aiu.classify(&t);
        assert!(matches!(o2, ClassifyOutcome::CacheMiss(_)));
        assert_eq!(aiu.instance(o2.fix().unwrap(), 1), None);
    }

    #[test]
    fn soft_state_slot() {
        let mut aiu = aiu3();
        aiu.install_filter(0, FilterSpec::any(), "p").unwrap();
        let (o, _) = aiu.classify(&tuple(9));
        *aiu.soft_state_mut(o.fix().unwrap(), 0).unwrap() = Some(Box::new(42u64));
        let st = aiu.soft_state_mut(o.fix().unwrap(), 0).unwrap();
        assert_eq!(*st.as_ref().unwrap().downcast_ref::<u64>().unwrap(), 42);
    }

    #[test]
    fn recycling_under_pressure() {
        let mut aiu = aiu3();
        aiu.install_filter(0, FilterSpec::any(), "p").unwrap();
        let mut evictions = 0;
        for i in 0..100 {
            let (_, ev) = aiu.classify(&tuple(i));
            if ev.is_some() {
                evictions += 1;
            }
        }
        assert_eq!(aiu.flow_stats().live, 32);
        assert_eq!(evictions, 100 - 32);
        // Oldest flows were recycled; recent ones still cached.
        let (o, _) = aiu.classify(&tuple(99));
        assert!(matches!(o, ClassifyOutcome::CacheHit(_)));
        let (o, _) = aiu.classify(&tuple(0));
        assert!(matches!(o, ClassifyOutcome::CacheMiss(_)));
    }
}
