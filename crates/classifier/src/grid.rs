//! Grid-of-tries (Srinivasan, Varghese, Suri, Waldvogel — SIGCOMM '98,
//! the paper's reference [26]): two-dimensional `(dst, src)` prefix
//! classification in `O(W_dst + W_src)` node visits **without**
//! set-pruning's filter replication.
//!
//! The Router Plugins paper names this as the better-memory alternative
//! it plans to incorporate ("more advanced techniques such as
//! grid-of-tries can provide better memory utilization without
//! sacrificing performance, but work only in the special case of
//! two-dimensional filters", §5.1.2). This module implements it so the
//! repository can quantify that trade-off (see the `grid_vs_dag`
//! experiment binary).
//!
//! Structure: a binary destination trie; each destination-prefix node
//! with filters owns a source trie. Source-trie nodes carry **switch
//! pointers** — precomputed jumps into the nearest destination-ancestor's
//! source trie — so a source walk never backtracks, and **stored
//! filters** — the best filter for the (dst-context, src-path) reached —
//! so the best match is the maximum of the stored values along the
//! single walk. Matching priority is the standard grid-of-tries order:
//! longest destination prefix, then longest source prefix, then earliest
//! installation.
//!
//! The structure is built statically (`from_filters`); the original
//! paper treats dynamic update as future work, and so do we — rebuild on
//! change.

use rp_lpm::{Bits, Prefix};

/// A two-dimensional filter: destination and source prefixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TwoDFilter {
    /// Destination prefix (the primary match dimension).
    pub dst: Prefix<u32>,
    /// Source prefix.
    pub src: Prefix<u32>,
}

impl TwoDFilter {
    /// Does the filter match a concrete (dst, src) pair?
    pub fn matches(&self, dst: u32, src: u32) -> bool {
        self.dst.matches(dst) && self.src.matches(src)
    }

    /// Grid-of-tries priority: (dst length, src length) descending.
    fn rank(&self, id: usize) -> (u8, u8, std::cmp::Reverse<usize>) {
        (self.dst.len(), self.src.len(), std::cmp::Reverse(id))
    }
}

#[derive(Default, Clone, Copy)]
struct DNode {
    children: [Option<u32>; 2],
    /// Root of this destination prefix's source trie, if it has filters.
    trie: Option<u32>,
}

#[derive(Default, Clone, Copy)]
struct SNode {
    children: [Option<u32>; 2],
    /// Switch pointers: where a failed child step jumps to in the
    /// nearest-ancestor structure.
    switch: [Option<u32>; 2],
    /// Best filter for (this trie's destination context, this source
    /// path), ancestors included.
    stored: Option<u32>,
}

/// The grid-of-tries classifier.
pub struct GridOfTries<V> {
    filters: Vec<(TwoDFilter, V)>,
    dnodes: Vec<DNode>,
    snodes: Vec<SNode>,
}

impl<V> GridOfTries<V> {
    /// Build from a filter list.
    pub fn from_filters(filters: Vec<(TwoDFilter, V)>) -> Self {
        let mut g = GridOfTries {
            filters,
            dnodes: vec![DNode::default()],
            snodes: Vec::new(),
        };
        g.build();
        g
    }

    /// Number of filters.
    pub fn len(&self) -> usize {
        self.filters.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.filters.is_empty()
    }

    /// Node counts `(destination trie, source tries)` — the memory
    /// footprint compared against set-pruning in the ablation bench.
    pub fn node_counts(&self) -> (usize, usize) {
        (self.dnodes.len(), self.snodes.len())
    }

    fn better(&self, a: Option<u32>, b: Option<u32>) -> Option<u32> {
        match (a, b) {
            (None, x) | (x, None) => x,
            (Some(x), Some(y)) => {
                let fx = &self.filters[x as usize].0;
                let fy = &self.filters[y as usize].0;
                if fx.rank(x as usize) >= fy.rank(y as usize) {
                    Some(x)
                } else {
                    Some(y)
                }
            }
        }
    }

    fn build(&mut self) {
        // 1. Destination trie over all dst prefixes.
        let specs: Vec<TwoDFilter> = self.filters.iter().map(|(f, _)| *f).collect();
        for f in &specs {
            let mut node = 0u32;
            for i in 0..f.dst.len() {
                let b = usize::from(f.dst.bits().bit(i));
                node = match self.dnodes[node as usize].children[b] {
                    Some(c) => c,
                    None => {
                        let c = self.dnodes.len() as u32;
                        self.dnodes.push(DNode::default());
                        self.dnodes[node as usize].children[b] = Some(c);
                        c
                    }
                };
            }
        }
        // 2. Per destination node: own source trie with own filters.
        for (idx, f) in specs.iter().enumerate() {
            let dnode = self.locate_dnode(f.dst);
            let trie = match self.dnodes[dnode as usize].trie {
                Some(t) => t,
                None => {
                    let t = self.snodes.len() as u32;
                    self.snodes.push(SNode::default());
                    self.dnodes[dnode as usize].trie = Some(t);
                    t
                }
            };
            let mut s = trie;
            for i in 0..f.src.len() {
                let b = usize::from(f.src.bits().bit(i));
                s = match self.snodes[s as usize].children[b] {
                    Some(c) => c,
                    None => {
                        let c = self.snodes.len() as u32;
                        self.snodes.push(SNode::default());
                        self.snodes[s as usize].children[b] = Some(c);
                        c
                    }
                };
            }
            let cur = self.snodes[s as usize].stored;
            self.snodes[s as usize].stored = self.better(cur, Some(idx as u32));
        }
        // 3. Top-down over destination nodes: propagate own stored down
        //    each trie, then merge ancestor context + switch pointers.
        self.process_dnode(0, None);
    }

    fn locate_dnode(&self, dst: Prefix<u32>) -> u32 {
        let mut node = 0u32;
        for i in 0..dst.len() {
            let b = usize::from(dst.bits().bit(i));
            node = self.dnodes[node as usize].children[b].expect("built above");
        }
        node
    }

    /// `ancestor_trie`: root of the nearest strict dst-ancestor's source
    /// trie (with its own merge already complete — we recurse top-down).
    fn process_dnode(&mut self, dnode: u32, ancestor_trie: Option<u32>) {
        let own_trie = self.dnodes[dnode as usize].trie;
        if let Some(root) = own_trie {
            self.merge_trie(root, ancestor_trie);
        }
        let next_ancestor = own_trie.or(ancestor_trie);
        for b in 0..2 {
            if let Some(c) = self.dnodes[dnode as usize].children[b] {
                self.process_dnode(c, next_ancestor);
            }
        }
    }

    /// One child-else-switch step in an already-processed structure.
    fn step(&self, node: Option<u32>, b: usize) -> Option<u32> {
        let n = node?;
        self.snodes[n as usize].children[b].or(self.snodes[n as usize].switch[b])
    }

    /// Merge ancestor stored values into `root`'s trie, propagate stored
    /// down paths, and set switch pointers. `shadow` tracks the node the
    /// same source path reaches in the ancestor structure.
    fn merge_trie(&mut self, root: u32, ancestor_root: Option<u32>) {
        // BFS with (node, shadow, inherited_stored).
        let anc_stored = ancestor_root.and_then(|a| self.snodes[a as usize].stored);
        let root_stored = self.better(self.snodes[root as usize].stored, anc_stored);
        self.snodes[root as usize].stored = root_stored;
        let mut queue: Vec<(u32, Option<u32>)> = vec![(root, ancestor_root)];
        while let Some((node, shadow)) = queue.pop() {
            let node_stored = self.snodes[node as usize].stored;
            for b in 0..2 {
                let next_shadow = self.step(shadow, b);
                match self.snodes[node as usize].children[b] {
                    Some(c) => {
                        // Child inherits: its own stored, the path stored,
                        // and the ancestor shadow's stored.
                        let shadow_stored =
                            next_shadow.and_then(|s| self.snodes[s as usize].stored);
                        let merged = self.better(
                            self.better(self.snodes[c as usize].stored, node_stored),
                            shadow_stored,
                        );
                        self.snodes[c as usize].stored = merged;
                        queue.push((c, next_shadow));
                    }
                    None => {
                        self.snodes[node as usize].switch[b] = next_shadow;
                    }
                }
            }
        }
    }

    /// Classify: the best (longest-dst, then longest-src) matching
    /// filter. Cost: one destination-trie walk + one source walk with at
    /// most one pointer per bit.
    pub fn lookup(&self, dst: u32, src: u32) -> Option<(usize, &V)> {
        // Walk the destination trie; remember the deepest trie seen on
        // the path (its merge already folded shallower contexts in).
        let mut dnode = 0u32;
        let mut trie = self.dnodes[0].trie;
        for i in 0..32u8 {
            let b = usize::from(dst.bit(i));
            match self.dnodes[dnode as usize].children[b] {
                Some(c) => {
                    dnode = c;
                    if let Some(t) = self.dnodes[dnode as usize].trie {
                        trie = Some(t);
                    }
                }
                None => break,
            }
        }
        // Source walk via child-else-switch, tracking the best stored.
        let mut best: Option<u32> = None;
        let mut cur = trie;
        if let Some(c) = cur {
            best = self.better(best, self.snodes[c as usize].stored);
        }
        for i in 0..32u8 {
            let b = usize::from(src.bit(i));
            match self.step(cur, b) {
                Some(n) => {
                    best = self.better(best, self.snodes[n as usize].stored);
                    cur = Some(n);
                }
                None => break,
            }
        }
        best.map(|i| (i as usize, &self.filters[i as usize].1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(dst: u32, dlen: u8, src: u32, slen: u8) -> TwoDFilter {
        TwoDFilter {
            dst: Prefix::new(dst, dlen),
            src: Prefix::new(src, slen),
        }
    }

    /// Brute-force reference with the same priority order.
    fn reference(filters: &[(TwoDFilter, u32)], dst: u32, src: u32) -> Option<u32> {
        filters
            .iter()
            .enumerate()
            .filter(|(_, (f, _))| f.matches(dst, src))
            .max_by_key(|(i, (f, _))| f.rank(*i))
            .map(|(_, (_, v))| *v)
    }

    #[test]
    fn basic_two_dimensional() {
        let filters = vec![
            (f(0x0A00_0000, 8, 0, 0), 1u32),          // dst 10/8, src *
            (f(0x0A0A_0000, 16, 0xC000_0000, 2), 2),  // dst 10.10/16, src 192/2
            (f(0x0A0A_0000, 16, 0xC0A8_0000, 16), 3), // dst 10.10/16, src 192.168/16
            (f(0, 0, 0xC0A8_0100, 24), 4),            // dst *, src 192.168.1/24
        ];
        let g = GridOfTries::from_filters(filters.clone());
        let q = |d, s| g.lookup(d, s).map(|(i, _)| filters[i].1);
        assert_eq!(q(0x0A0A_0001, 0xC0A8_0105), Some(3)); // dst16 + src16 beats all
        assert_eq!(q(0x0A0A_0001, 0xC100_0000), Some(2)); // src only matches /2
        assert_eq!(q(0x0A0B_0001, 0xC0A8_0105), Some(1)); // dst 10/8 beats dst-* (longest dst first)
        assert_eq!(q(0x0B00_0000, 0xC0A8_0105), Some(4)); // only the dst-* filter
        assert_eq!(q(0x0B00_0000, 0x0100_0000), None);
    }

    #[test]
    fn switch_pointer_jump_is_needed() {
        // The case hierarchical tries would backtrack on: long src under
        // a short dst, short src under a long dst.
        let filters = vec![
            (f(0x0A00_0000, 8, 0xC0A8_0000, 16), 10u32), // dst 10/8, src 192.168/16
            (f(0x0A0A_0000, 16, 0x8000_0000, 1), 20),    // dst 10.10/16, src 1xx/1
        ];
        let g = GridOfTries::from_filters(filters.clone());
        // Query matches dst 10.10/16 — walk starts in its trie, whose own
        // src only covers /1; the /16-src filter lives in the ancestor
        // trie and must be reached through switch pointers.
        let got = g
            .lookup(0x0A0A_0001, 0xC0A8_0001)
            .map(|(i, _)| filters[i].1);
        // Priority: dst 16 beats dst 8 → filter 20 wins even though 10
        // has the longer source.
        assert_eq!(got, Some(20));
        // With a source matching only the ancestor filter:
        let got = g.lookup(0x0A0A_0001, 0xC0A8_0001);
        assert!(got.is_some());
        // Source that matches /16 but not /1 (0xC... starts with 1 so it
        // does match /1=1; craft 0x40.. for /1=0 mismatch):
        let filters2 = vec![
            (f(0x0A00_0000, 8, 0x4000_0000, 2), 10u32), // dst 10/8, src 01xx/2
            (f(0x0A0A_0000, 16, 0x8000_0000, 1), 20),   // dst 10.10/16, src 1xxx/1
        ];
        let g2 = GridOfTries::from_filters(filters2.clone());
        // src 0x4... fails /1 in the deep trie; switch pointer must find
        // the ancestor's /2.
        let got = g2
            .lookup(0x0A0A_0001, 0x4123_4567)
            .map(|(i, _)| filters2[i].1);
        assert_eq!(got, Some(10));
    }

    #[test]
    fn duplicate_pairs_keep_earliest() {
        let filters = vec![
            (f(0x0A00_0000, 8, 0, 0), 1u32),
            (f(0x0A00_0000, 8, 0, 0), 2),
        ];
        let g = GridOfTries::from_filters(filters);
        assert_eq!(g.lookup(0x0A01_0203, 5).map(|(i, _)| i), Some(0));
    }

    #[test]
    fn randomized_against_reference() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x5EED);
        for round in 0..20 {
            let n = rng.gen_range(1..40);
            let filters: Vec<(TwoDFilter, u32)> = (0..n)
                .map(|i| {
                    let cluster = |r: &mut StdRng| (r.gen::<u32>() & 0x0303_FFFF) | 0x0A00_0000;
                    (
                        f(
                            cluster(&mut rng),
                            rng.gen_range(0..=32),
                            cluster(&mut rng),
                            rng.gen_range(0..=32),
                        ),
                        i,
                    )
                })
                .collect();
            let g = GridOfTries::from_filters(filters.clone());
            for _ in 0..400 {
                let d = (rng.gen::<u32>() & 0x0303_FFFF) | 0x0A00_0000;
                let s = (rng.gen::<u32>() & 0x0303_FFFF) | 0x0A00_0000;
                let want = reference(&filters, d, s);
                let got = g.lookup(d, s).map(|(i, _)| filters[i].1);
                assert_eq!(got, want, "round {round}: dst {d:08x} src {s:08x}");
            }
        }
    }

    #[test]
    fn empty_grid_matches_nothing() {
        let g: GridOfTries<u32> = GridOfTries::from_filters(Vec::new());
        assert!(g.is_empty());
        assert!(g.lookup(0x0A00_0001, 0x0A00_0002).is_none());
    }

    #[test]
    fn node_counts_reported() {
        let filters: Vec<(TwoDFilter, u32)> = (0..32)
            .map(|i| (f(0x0A00_0000 | (i << 8), 24, 0x1400_0000 | (i << 8), 24), i))
            .collect();
        let g = GridOfTries::from_filters(filters);
        let (d, s) = g.node_counts();
        assert!(d > 24 && s > 24);
        assert_eq!(g.len(), 32);
        assert!(!g.is_empty());
    }
}
