//! The DAG-based filter table (paper §5.1): a *set-pruning trie* with one
//! level per six-tuple field, in the paper's order `<src, dst, proto,
//! sport, dport, iface>`.
//!
//! Key properties reproduced from the paper:
//!
//! * **Pluggable per-level match functions** (§5.1.1): the address levels
//!   delegate to a BMP plugin — either PATRICIA ("slower but freely
//!   available") or binary search on prefix lengths — chosen at
//!   construction via [`BmpKind`]; ports match on ranges with wildcard;
//!   protocol and interface match exactly with wildcard.
//! * **Set-pruning replication**: when a filter is installed, its suffix is
//!   replicated under every more-specific edge it covers, and a newly
//!   created edge inherits the suffixes of every less-specific edge
//!   covering it. Lookup therefore follows the single most-specific edge
//!   at each level and **never backtracks** — cost is `O(fields)`,
//!   independent of the filter count, at the price of the exponential
//!   worst-case memory the paper acknowledges.
//! * **Most-specific-match semantics** with deterministic ambiguity
//!   resolution (lexicographic field-order specificity; see
//!   [`FilterSpec::specificity`]).
//! * **Memory-access accounting** in the units of the paper's Table 2:
//!   DAG-edge accesses, BMP probes, port lookups and the two
//!   function-pointer loads are tallied separately.

use crate::filter::{AddrMatch, FilterId, FilterSpec, PortMatch};
use rp_lpm::{AccessCounter, BsplTable, LpmTable, PatriciaTable, Prefix};
use rp_packet::FlowTuple;
use std::cell::Cell;
use std::collections::HashMap;
use std::fmt;
use std::net::IpAddr;

/// Which BMP plugin the address levels use (paper §5.1.1: "For IP address
/// matching, we implemented two such plugins").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BmpKind {
    /// The PATRICIA-trie plugin.
    Patricia,
    /// The binary-search-on-prefix-lengths plugin.
    Bspl,
}

/// Errors from filter installation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// The new filter's port range partially overlaps an installed
    /// filter's range (neither nests in the other) — ambiguous for
    /// set-pruning resolution; the paper defers ambiguity handling to its
    /// tech report, we reject it explicitly.
    AmbiguousPortOverlap(FilterId),
    /// Unknown filter id.
    NoSuchFilter,
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::AmbiguousPortOverlap(id) => {
                write!(f, "port range partially overlaps filter {}", id.0)
            }
            DagError::NoSuchFilter => write!(f, "no such filter"),
        }
    }
}

impl std::error::Error for DagError {}

/// Per-lookup memory-access tally in the paper's Table 2 units.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LookupStats {
    /// "Access to function pointer for BMP function" (1 per lookup).
    pub bmp_fn_ptr: u64,
    /// "Access to function pointer for index hash" (1 per lookup).
    pub hash_fn_ptr: u64,
    /// "IP address lookup" — BMP probes over both address levels.
    pub addr_probes: u64,
    /// "Port number lookup" — one per port level.
    pub port_probes: u64,
    /// "Access to DAG edges" — one per level transition.
    pub dag_edges: u64,
}

impl LookupStats {
    /// Total memory accesses (the paper's Table 2 bottom line).
    pub fn total(&self) -> u64 {
        self.bmp_fn_ptr + self.hash_fn_ptr + self.addr_probes + self.port_probes + self.dag_edges
    }
}

type NodeId = usize;

enum AddrMatcher<T: rp_lpm::Bits> {
    Patricia(PatriciaTable<T, NodeId>),
    Bspl(BsplTable<T, NodeId>),
}

impl<T: rp_lpm::Bits> AddrMatcher<T> {
    fn new(kind: BmpKind, counter: AccessCounter) -> Self {
        match kind {
            BmpKind::Patricia => AddrMatcher::Patricia(PatriciaTable::with_counter(counter)),
            BmpKind::Bspl => AddrMatcher::Bspl(BsplTable::with_counter(counter)),
        }
    }

    fn insert(&mut self, p: Prefix<T>, node: NodeId) {
        match self {
            AddrMatcher::Patricia(t) => {
                t.insert(p, node);
            }
            AddrMatcher::Bspl(t) => {
                t.insert(p, node);
            }
        }
    }

    fn remove(&mut self, p: Prefix<T>) {
        match self {
            AddrMatcher::Patricia(t) => {
                t.remove(p);
            }
            AddrMatcher::Bspl(t) => {
                t.remove(p);
            }
        }
    }

    fn lookup(&self, addr: T) -> Option<NodeId> {
        match self {
            AddrMatcher::Patricia(t) => t.lookup(addr).map(|(v, _)| *v),
            AddrMatcher::Bspl(t) => t.lookup(addr).map(|(v, _)| *v),
        }
    }
}

/// Edge map for the Exact levels (protocol, incoming interface).
///
/// Both fields have tiny label populations in any realistic filter set —
/// a handful of protocols, one label per router port — so the edges live
/// in a sorted array probed by binary search: the whole map is one or two
/// cache lines, where a `HashMap` pays a hasher call plus control-byte
/// and bucket indirections per probe. Should a table ever grow past
/// [`EXACT_SPILL`] distinct labels at one node, the map spills to a hash
/// so lookup stays O(1) in the degenerate case.
///
/// The Table 2 accounting is unaffected: a probe here is still exactly
/// one "access to DAG edges" in the paper's unit, whatever the backing
/// store.
enum ExactEdges {
    Sorted(Vec<(u32, NodeId)>),
    Hash(HashMap<u32, NodeId>),
}

/// Distinct-label count at which [`ExactEdges`] abandons the sorted array.
const EXACT_SPILL: usize = 96;

impl ExactEdges {
    fn new() -> Self {
        ExactEdges::Sorted(Vec::new())
    }

    fn get(&self, key: u32) -> Option<NodeId> {
        match self {
            ExactEdges::Sorted(v) => v
                .binary_search_by_key(&key, |(k, _)| *k)
                .ok()
                .map(|i| v[i].1),
            ExactEdges::Hash(m) => m.get(&key).copied(),
        }
    }

    fn insert(&mut self, key: u32, node: NodeId) {
        match self {
            ExactEdges::Sorted(v) => match v.binary_search_by_key(&key, |(k, _)| *k) {
                Ok(i) => v[i].1 = node,
                Err(i) => {
                    if v.len() >= EXACT_SPILL {
                        let mut m: HashMap<u32, NodeId> = v.drain(..).collect();
                        m.insert(key, node);
                        *self = ExactEdges::Hash(m);
                    } else {
                        v.insert(i, (key, node));
                    }
                }
            },
            ExactEdges::Hash(m) => {
                m.insert(key, node);
            }
        }
    }

    fn remove(&mut self, key: u32) {
        match self {
            ExactEdges::Sorted(v) => {
                if let Ok(i) = v.binary_search_by_key(&key, |(k, _)| *k) {
                    v.remove(i);
                }
            }
            ExactEdges::Hash(m) => {
                m.remove(&key);
            }
        }
    }

    /// Owned `(label, child)` snapshot (used by removal, which needs to
    /// recurse while holding no borrow of the node).
    fn entries(&self) -> Vec<(u32, NodeId)> {
        match self {
            ExactEdges::Sorted(v) => v.clone(),
            ExactEdges::Hash(m) => m.iter().map(|(k, c)| (*k, *c)).collect(),
        }
    }

    /// Owned child list (used by wildcard replication).
    fn children(&self) -> Vec<NodeId> {
        match self {
            ExactEdges::Sorted(v) => v.iter().map(|(_, c)| *c).collect(),
            ExactEdges::Hash(m) => m.values().copied().collect(),
        }
    }
}

// The Addr variant dominates the size, but Addr nodes also dominate the
// node population of any realistic filter set — boxing it would add a
// pointer chase to every address-level lookup for no real memory win.
#[allow(clippy::large_enum_variant)]
enum NodeKind {
    Addr {
        v4: Option<AddrMatcher<u32>>,
        v6: Option<AddrMatcher<u128>>,
        /// Authoritative edge list for cover computations.
        edges: Vec<(AddrMatch, NodeId)>,
        wildcard: Option<NodeId>,
    },
    Exact {
        edges: ExactEdges,
        wildcard: Option<NodeId>,
    },
    Port {
        edges: Vec<(PortMatch, NodeId)>,
        wildcard: Option<NodeId>,
    },
    Leaf {
        filters: Vec<FilterId>,
    },
}

struct Node {
    /// Every filter whose replication passes through this node.
    installed: Vec<FilterId>,
    kind: NodeKind,
}

/// Number of levels (fields) in the DAG.
pub const LEVELS: usize = 6;

/// The set-pruning-trie filter table. `V` is the value bound to each
/// filter (a plugin-instance handle in `router-core`).
///
/// ```
/// use rp_classifier::{BmpKind, DagTable};
/// use rp_packet::FlowTuple;
///
/// let mut dag = DagTable::new(BmpKind::Bspl);
/// let id = dag
///     .insert("129.*.*.*, 192.94.233.10, TCP, *, *, *".parse().unwrap(), "qos")
///     .unwrap();
/// let t = FlowTuple {
///     src: "129.1.2.3".parse().unwrap(),
///     dst: "192.94.233.10".parse().unwrap(),
///     proto: 6,
///     sport: 1234,
///     dport: 80,
///     rx_if: 0,
/// };
/// assert_eq!(dag.lookup(&t), Some((id, &"qos")));
/// ```
pub struct DagTable<V> {
    nodes: Vec<Node>,
    root: NodeId,
    registry: HashMap<FilterId, (FilterSpec, V)>,
    next_id: u64,
    bmp_kind: BmpKind,
    addr_counter: AccessCounter,
    /// Non-degenerate port ranges installed, per field (sport, dport).
    /// Only range-vs-range pairs can be ambiguous (exact ports always
    /// nest or miss), so the install-time ambiguity check scans these
    /// instead of every filter.
    sport_ranges: Vec<(PortMatch, FilterId)>,
    dport_ranges: Vec<(PortMatch, FilterId)>,
    // Lookup tallies (interior-mutable: lookup takes &self).
    s_bmp_fn: Cell<u64>,
    s_hash_fn: Cell<u64>,
    s_port: Cell<u64>,
    s_edges: Cell<u64>,
}

impl<V> DagTable<V> {
    /// Empty table with the chosen BMP plugin for its address levels.
    pub fn new(bmp_kind: BmpKind) -> Self {
        let root = Node {
            installed: Vec::new(),
            kind: Self::kind_for_level(0),
        };
        DagTable {
            nodes: vec![root],
            root: 0,
            registry: HashMap::new(),
            next_id: 0,
            bmp_kind,
            addr_counter: AccessCounter::new(),
            sport_ranges: Vec::new(),
            dport_ranges: Vec::new(),
            s_bmp_fn: Cell::new(0),
            s_hash_fn: Cell::new(0),
            s_port: Cell::new(0),
            s_edges: Cell::new(0),
        }
    }

    fn kind_for_level(level: usize) -> NodeKind {
        match level {
            0 | 1 => NodeKind::Addr {
                v4: None,
                v6: None,
                edges: Vec::new(),
                wildcard: None,
            },
            2 | 5 => NodeKind::Exact {
                edges: ExactEdges::new(),
                wildcard: None,
            },
            3 | 4 => NodeKind::Port {
                edges: Vec::new(),
                wildcard: None,
            },
            6 => NodeKind::Leaf {
                filters: Vec::new(),
            },
            _ => unreachable!("level out of range"),
        }
    }

    /// Number of installed filters.
    pub fn len(&self) -> usize {
        self.registry.len()
    }

    /// True when no filters are installed.
    pub fn is_empty(&self) -> bool {
        self.registry.is_empty()
    }

    /// Number of trie nodes (the memory-blowup metric of §5.1.2).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The spec and value of an installed filter.
    pub fn get(&self, id: FilterId) -> Option<(&FilterSpec, &V)> {
        self.registry.get(&id).map(|(s, v)| (s, v))
    }

    /// Mutable access to a filter's bound value (used to re-bind a filter
    /// to a different plugin instance).
    pub fn get_value_mut(&mut self, id: FilterId) -> Option<&mut V> {
        self.registry.get_mut(&id).map(|(_, v)| v)
    }

    /// Iterate installed filter ids.
    pub fn filter_ids(&self) -> Vec<FilterId> {
        let mut v: Vec<FilterId> = self.registry.keys().copied().collect();
        v.sort();
        v
    }

    /// Install a filter bound to `value`. Rejects ambiguous partial port
    /// overlaps with installed filters.
    pub fn insert(&mut self, spec: FilterSpec, value: V) -> Result<FilterId, DagError> {
        // Conservative ambiguity check (see DagError). Exact ports and
        // wildcards always nest, so only installed *ranges* need
        // scanning.
        for (r, id) in &self.sport_ranges {
            if spec.sport.overlaps_ambiguously(r) {
                return Err(DagError::AmbiguousPortOverlap(*id));
            }
        }
        for (r, id) in &self.dport_ranges {
            if spec.dport.overlaps_ambiguously(r) {
                return Err(DagError::AmbiguousPortOverlap(*id));
            }
        }
        let id = FilterId(self.next_id);
        self.next_id += 1;
        if let PortMatch::Range(lo, hi) = spec.sport {
            if lo != hi {
                self.sport_ranges.push((spec.sport, id));
            }
        }
        if let PortMatch::Range(lo, hi) = spec.dport {
            if lo != hi {
                self.dport_ranges.push((spec.dport, id));
            }
        }
        self.registry.insert(id, (spec, value));
        self.insert_rec(self.root, 0, id);
        Ok(id)
    }

    /// Remove a filter, returning its bound value.
    pub fn remove(&mut self, id: FilterId) -> Result<(FilterSpec, V), DagError> {
        if !self.registry.contains_key(&id) {
            return Err(DagError::NoSuchFilter);
        }
        self.remove_rec(self.root, id);
        self.sport_ranges.retain(|(_, f)| *f != id);
        self.dport_ranges.retain(|(_, f)| *f != id);
        Ok(self.registry.remove(&id).expect("checked present"))
    }

    fn spec_of(&self, id: FilterId) -> &FilterSpec {
        &self.registry.get(&id).expect("registered filter").0
    }

    fn insert_rec(&mut self, node: NodeId, level: usize, fid: FilterId) {
        debug_assert!(
            !self.nodes[node].installed.contains(&fid),
            "duplicate replication of {fid:?}"
        );
        self.nodes[node].installed.push(fid);
        if level == LEVELS {
            if let NodeKind::Leaf { filters } = &mut self.nodes[node].kind {
                filters.push(fid);
            }
            return;
        }
        // Only the one Copy field this level matches on is read from the
        // spec — cloning the whole multi-field spec here would deep-copy
        // it once per visited node of the replication recursion.
        match level {
            0 | 1 => {
                let spec = self.spec_of(fid);
                let label = if level == 0 { spec.src } else { spec.dst };
                self.insert_addr_level(node, level, fid, label)
            }
            2 | 5 => {
                let spec = self.spec_of(fid);
                let label = if level == 2 {
                    spec.proto.map(u32::from)
                } else {
                    spec.rx_if
                };
                self.insert_exact_level(node, level, fid, label)
            }
            3 | 4 => {
                let spec = self.spec_of(fid);
                let label = if level == 3 { spec.sport } else { spec.dport };
                self.insert_port_level(node, level, fid, label)
            }
            _ => unreachable!(),
        }
    }

    fn new_child(&mut self, level: usize) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(Node {
            installed: Vec::new(),
            kind: Self::kind_for_level(level + 1),
        });
        id
    }

    /// Deduplicated filters installed under each of `children`.
    fn inherited(&self, children: impl IntoIterator<Item = NodeId>) -> Vec<FilterId> {
        // Order-preserving dedup; the set guard keeps nested-filter
        // inheritance (where one edge's installed list can be large)
        // linear instead of quadratic.
        let mut seen = Vec::new();
        let mut guard = std::collections::HashSet::new();
        for c in children {
            for f in &self.nodes[c].installed {
                if guard.insert(*f) {
                    seen.push(*f);
                }
            }
        }
        seen
    }

    fn insert_addr_level(&mut self, node: NodeId, level: usize, fid: FilterId, label: AddrMatch) {
        // Single scan over the edge list: find the exact edge plus the
        // covering (less specific) and covered (more specific) edges.
        // Collecting only the matches keeps the common insert free of the
        // O(edges) clone that would otherwise dominate large tables.
        let (existing, covering, covered, wildcard) = match &self.nodes[node].kind {
            NodeKind::Addr {
                edges, wildcard, ..
            } => {
                let mut existing = None;
                let mut covering = Vec::new();
                let mut covered = Vec::new();
                if label == AddrMatch::Any {
                    covered.extend(edges.iter().map(|(_, c)| *c));
                } else {
                    for (l, c) in edges {
                        if *l == label {
                            existing = Some(*c);
                        } else if l.covers(&label) {
                            covering.push(*c);
                        } else if label.covers(l) {
                            covered.push(*c);
                        }
                    }
                }
                (existing, covering, covered, *wildcard)
            }
            _ => unreachable!("level kind mismatch"),
        };
        if label == AddrMatch::Any {
            // Main path: the wildcard edge; replicate into every edge.
            let wc = match wildcard {
                Some(w) => w,
                None => {
                    let w = self.new_child(level);
                    if let NodeKind::Addr { wildcard, .. } = &mut self.nodes[node].kind {
                        *wildcard = Some(w);
                    }
                    w
                }
            };
            self.insert_rec(wc, level + 1, fid);
            for child in covered {
                self.insert_rec(child, level + 1, fid);
            }
            return;
        }
        // Specific label: find or create its edge.
        let child = match existing {
            Some(c) => c,
            None => {
                let c = self.new_child(level);
                // Inherit suffixes from every covering edge + wildcard.
                let inherit_from: Vec<NodeId> = covering.iter().copied().chain(wildcard).collect();
                for g in self.inherited(inherit_from) {
                    self.insert_rec(c, level + 1, g);
                }
                // Register the edge in both the list and the matcher.
                if let NodeKind::Addr { edges, .. } = &mut self.nodes[node].kind {
                    edges.push((label, c));
                }
                self.matcher_insert(node, label, c);
                c
            }
        };
        self.insert_rec(child, level + 1, fid);
        // Replicate into strictly more specific edges.
        for ch in covered {
            self.insert_rec(ch, level + 1, fid);
        }
    }

    fn matcher_insert(&mut self, node: NodeId, label: AddrMatch, child: NodeId) {
        let kind = self.bmp_kind;
        let counter = self.addr_counter.clone();
        if let NodeKind::Addr { v4, v6, .. } = &mut self.nodes[node].kind {
            match label {
                AddrMatch::V4(p) => v4
                    .get_or_insert_with(|| AddrMatcher::new(kind, counter))
                    .insert(p, child),
                AddrMatch::V6(p) => v6
                    .get_or_insert_with(|| AddrMatcher::new(kind, counter))
                    .insert(p, child),
                AddrMatch::Any => unreachable!("wildcard not in matcher"),
            }
        }
    }

    fn insert_exact_level(
        &mut self,
        node: NodeId,
        level: usize,
        fid: FilterId,
        label: Option<u32>,
    ) {
        let (existing, all_children, wildcard) = match &self.nodes[node].kind {
            NodeKind::Exact {
                edges, wildcard, ..
            } => match label {
                None => (None, edges.children(), *wildcard),
                Some(val) => (edges.get(val), Vec::new(), *wildcard),
            },
            _ => unreachable!("level kind mismatch"),
        };
        match label {
            None => {
                let wc = match wildcard {
                    Some(w) => w,
                    None => {
                        let w = self.new_child(level);
                        if let NodeKind::Exact { wildcard, .. } = &mut self.nodes[node].kind {
                            *wildcard = Some(w);
                        }
                        w
                    }
                };
                self.insert_rec(wc, level + 1, fid);
                for child in all_children {
                    self.insert_rec(child, level + 1, fid);
                }
            }
            Some(val) => {
                let child = match existing {
                    Some(c) => c,
                    None => {
                        let c = self.new_child(level);
                        if let Some(w) = wildcard {
                            for g in self.inherited([w]) {
                                self.insert_rec(c, level + 1, g);
                            }
                        }
                        if let NodeKind::Exact { edges, .. } = &mut self.nodes[node].kind {
                            edges.insert(val, c);
                        }
                        c
                    }
                };
                self.insert_rec(child, level + 1, fid);
            }
        }
    }

    fn insert_port_level(&mut self, node: NodeId, level: usize, fid: FilterId, label: PortMatch) {
        let (existing, covering, covered, wildcard) = match &self.nodes[node].kind {
            NodeKind::Port {
                edges, wildcard, ..
            } => {
                let mut existing = None;
                let mut covering = Vec::new();
                let mut covered = Vec::new();
                if label == PortMatch::Any {
                    covered.extend(edges.iter().map(|(_, c)| *c));
                } else {
                    for (l, c) in edges {
                        if *l == label {
                            existing = Some(*c);
                        } else if l.covers(&label) {
                            covering.push(*c);
                        } else if label.covers(l) {
                            covered.push(*c);
                        }
                    }
                }
                (existing, covering, covered, *wildcard)
            }
            _ => unreachable!("level kind mismatch"),
        };
        if label == PortMatch::Any {
            let wc = match wildcard {
                Some(w) => w,
                None => {
                    let w = self.new_child(level);
                    if let NodeKind::Port { wildcard, .. } = &mut self.nodes[node].kind {
                        *wildcard = Some(w);
                    }
                    w
                }
            };
            self.insert_rec(wc, level + 1, fid);
            for child in covered {
                self.insert_rec(child, level + 1, fid);
            }
            return;
        }
        let child = match existing {
            Some(c) => c,
            None => {
                let c = self.new_child(level);
                let inherit_from: Vec<NodeId> = covering.iter().copied().chain(wildcard).collect();
                for g in self.inherited(inherit_from) {
                    self.insert_rec(c, level + 1, g);
                }
                if let NodeKind::Port { edges, .. } = &mut self.nodes[node].kind {
                    edges.push((label, c));
                }
                c
            }
        };
        self.insert_rec(child, level + 1, fid);
        for ch in covered {
            self.insert_rec(ch, level + 1, fid);
        }
    }

    fn remove_rec(&mut self, node: NodeId, fid: FilterId) {
        let pos = match self.nodes[node].installed.iter().position(|f| *f == fid) {
            Some(p) => p,
            None => return,
        };
        self.nodes[node].installed.swap_remove(pos);

        // Snapshot children (owned) so recursion can take &mut self.
        enum Snap {
            Leaf,
            Addr(Vec<(AddrMatch, NodeId)>, Option<NodeId>),
            Exact(Vec<(u32, NodeId)>, Option<NodeId>),
            Port(Vec<(PortMatch, NodeId)>, Option<NodeId>),
        }
        let snap = match &self.nodes[node].kind {
            NodeKind::Leaf { .. } => Snap::Leaf,
            NodeKind::Addr {
                edges, wildcard, ..
            } => Snap::Addr(edges.clone(), *wildcard),
            NodeKind::Exact { edges, wildcard } => Snap::Exact(edges.entries(), *wildcard),
            NodeKind::Port { edges, wildcard } => Snap::Port(edges.clone(), *wildcard),
        };

        match snap {
            Snap::Leaf => {
                if let NodeKind::Leaf { filters } = &mut self.nodes[node].kind {
                    filters.retain(|f| *f != fid);
                }
            }
            Snap::Addr(edges, wildcard) => {
                for (_, c) in &edges {
                    self.remove_rec(*c, fid);
                }
                if let Some(w) = wildcard {
                    self.remove_rec(w, fid);
                }
                let dead: Vec<AddrMatch> = edges
                    .iter()
                    .filter(|(_, c)| self.nodes[*c].installed.is_empty())
                    .map(|(l, _)| *l)
                    .collect();
                let wc_dead = wildcard.is_some_and(|w| self.nodes[w].installed.is_empty());
                if let NodeKind::Addr {
                    edges,
                    wildcard,
                    v4,
                    v6,
                } = &mut self.nodes[node].kind
                {
                    edges.retain(|(l, _)| !dead.contains(l));
                    if wc_dead {
                        *wildcard = None;
                    }
                    for l in &dead {
                        match l {
                            AddrMatch::V4(p) => {
                                if let Some(m) = v4 {
                                    m.remove(*p);
                                }
                            }
                            AddrMatch::V6(p) => {
                                if let Some(m) = v6 {
                                    m.remove(*p);
                                }
                            }
                            AddrMatch::Any => {}
                        }
                    }
                }
            }
            Snap::Exact(edges, wildcard) => {
                for (_, c) in &edges {
                    self.remove_rec(*c, fid);
                }
                if let Some(w) = wildcard {
                    self.remove_rec(w, fid);
                }
                let dead: Vec<u32> = edges
                    .iter()
                    .filter(|(_, c)| self.nodes[*c].installed.is_empty())
                    .map(|(k, _)| *k)
                    .collect();
                let wc_dead = wildcard.is_some_and(|w| self.nodes[w].installed.is_empty());
                if let NodeKind::Exact { edges, wildcard } = &mut self.nodes[node].kind {
                    for k in dead {
                        edges.remove(k);
                    }
                    if wc_dead {
                        *wildcard = None;
                    }
                }
            }
            Snap::Port(edges, wildcard) => {
                for (_, c) in &edges {
                    self.remove_rec(*c, fid);
                }
                if let Some(w) = wildcard {
                    self.remove_rec(w, fid);
                }
                let dead: Vec<PortMatch> = edges
                    .iter()
                    .filter(|(_, c)| self.nodes[*c].installed.is_empty())
                    .map(|(l, _)| *l)
                    .collect();
                let wc_dead = wildcard.is_some_and(|w| self.nodes[w].installed.is_empty());
                if let NodeKind::Port { edges, wildcard } = &mut self.nodes[node].kind {
                    edges.retain(|(l, _)| !dead.contains(l));
                    if wc_dead {
                        *wildcard = None;
                    }
                }
            }
        }
    }

    /// Classify a tuple: the most specific matching filter and its bound
    /// value. Never backtracks; `O(fields)` node visits.
    pub fn lookup(&self, t: &FlowTuple) -> Option<(FilterId, &V)> {
        self.s_bmp_fn.set(self.s_bmp_fn.get() + 1);
        self.s_hash_fn.set(self.s_hash_fn.get() + 1);
        let mut node = self.root;
        for level in 0..LEVELS {
            self.s_edges.set(self.s_edges.get() + 1);
            let next = match &self.nodes[node].kind {
                NodeKind::Addr {
                    v4, v6, wildcard, ..
                } => {
                    let addr = if level == 0 { t.src } else { t.dst };
                    let hit = match addr {
                        IpAddr::V4(a) => v4.as_ref().and_then(|m| m.lookup(u32::from(a))),
                        IpAddr::V6(a) => v6.as_ref().and_then(|m| m.lookup(u128::from(a))),
                    };
                    hit.or(*wildcard)
                }
                NodeKind::Exact { edges, wildcard } => {
                    let val = if level == 2 {
                        u32::from(t.proto)
                    } else {
                        t.rx_if
                    };
                    edges.get(val).or(*wildcard)
                }
                NodeKind::Port { edges, wildcard } => {
                    self.s_port.set(self.s_port.get() + 1);
                    let port = if level == 3 { t.sport } else { t.dport };
                    // Matching ranges are nested (ambiguity rejected), so
                    // the narrowest matching range is the most specific.
                    edges
                        .iter()
                        .filter(|(l, _)| l.matches(port))
                        .max_by_key(|(l, _)| l.specificity())
                        .map(|(_, c)| *c)
                        .or(*wildcard)
                }
                NodeKind::Leaf { .. } => unreachable!("leaf before last level"),
            };
            node = next?;
        }
        let NodeKind::Leaf { filters } = &self.nodes[node].kind else {
            unreachable!("non-leaf at last level");
        };
        let best = filters
            .iter()
            .max_by(|a, b| {
                let sa = self.spec_of(**a).specificity();
                let sb = self.spec_of(**b).specificity();
                sa.cmp(&sb).then(b.cmp(a)) // earlier id wins ties
            })
            .copied()?;
        Some((best, &self.registry[&best].1))
    }

    /// Like [`DagTable::lookup`] but also returns the Table 2 access
    /// breakdown for this single lookup.
    pub fn lookup_with_stats(&self, t: &FlowTuple) -> (Option<(FilterId, &V)>, LookupStats) {
        let before = self.stats_snapshot();
        let out = self.lookup(t);
        let after = self.stats_snapshot();
        (
            out,
            LookupStats {
                bmp_fn_ptr: after.bmp_fn_ptr - before.bmp_fn_ptr,
                hash_fn_ptr: after.hash_fn_ptr - before.hash_fn_ptr,
                addr_probes: after.addr_probes - before.addr_probes,
                port_probes: after.port_probes - before.port_probes,
                dag_edges: after.dag_edges - before.dag_edges,
            },
        )
    }

    /// Cumulative access counters since construction.
    pub fn stats_snapshot(&self) -> LookupStats {
        LookupStats {
            bmp_fn_ptr: self.s_bmp_fn.get(),
            hash_fn_ptr: self.s_hash_fn.get(),
            addr_probes: self.addr_counter.get(),
            port_probes: self.s_port.get(),
            dag_edges: self.s_edges.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::paper_table1_filters;
    use std::net::Ipv4Addr;

    fn t4(src: [u8; 4], dst: [u8; 4], proto: u8, sport: u16, dport: u16) -> FlowTuple {
        FlowTuple {
            src: IpAddr::V4(Ipv4Addr::from(src)),
            dst: IpAddr::V4(Ipv4Addr::from(dst)),
            proto,
            sport,
            dport,
            rx_if: 0,
        }
    }

    fn table1_dag(kind: BmpKind) -> (DagTable<usize>, Vec<FilterId>) {
        let mut dag = DagTable::new(kind);
        let ids = paper_table1_filters()
            .into_iter()
            .enumerate()
            .map(|(i, f)| dag.insert(f, i).unwrap())
            .collect();
        (dag, ids)
    }

    /// The paper's Figure 4 walkthrough: <128.252.153.1, 128.252.154.7,
    /// UDP> must return filter 2 of Table 1... careful: the paper's text
    /// matches the triple against 128.252.154.7 and still ends at filter 2
    /// because its Figure 4 destination prefix is 128.252.154.7 — in
    /// Table 1 the destination is 128.252.153.7. We follow Table 1: the
    /// .154. packet matches only filter 4; the .153. packet yields
    /// filter 2 exactly as the DAG walkthrough describes.
    #[test]
    fn paper_figure4_walkthrough() {
        for kind in [BmpKind::Patricia, BmpKind::Bspl] {
            let (dag, ids) = table1_dag(kind);
            let got = dag.lookup(&t4([128, 252, 153, 1], [128, 252, 153, 7], 17, 9, 9));
            assert_eq!(got.map(|(id, v)| (id, *v)), Some((ids[1], 1)), "{kind:?}");
            let got = dag.lookup(&t4([128, 252, 153, 1], [128, 252, 154, 7], 17, 9, 9));
            assert_eq!(got.map(|(id, v)| (id, *v)), Some((ids[3], 3)), "{kind:?}");
        }
    }

    #[test]
    fn table1_full_semantics() {
        let (dag, ids) = table1_dag(BmpKind::Bspl);
        // TCP from 129.x to the named host → filter 1.
        let got = dag.lookup(&t4([129, 1, 2, 3], [192, 94, 233, 10], 6, 1, 2));
        assert_eq!(got.unwrap().0, ids[0]);
        // TCP between the two hosts → filter 3.
        let got = dag.lookup(&t4([128, 252, 153, 1], [128, 252, 153, 7], 6, 1, 2));
        assert_eq!(got.unwrap().0, ids[2]);
        // UDP from another host on the /24 → filter 4.
        let got = dag.lookup(&t4([128, 252, 153, 9], [1, 2, 3, 4], 17, 1, 2));
        assert_eq!(got.unwrap().0, ids[3]);
        // TCP from the /24 (not .1) matches nothing.
        assert!(dag
            .lookup(&t4([128, 252, 153, 9], [1, 2, 3, 4], 6, 1, 2))
            .is_none());
    }

    #[test]
    fn wildcard_replication_into_specific_edges() {
        let mut dag: DagTable<&str> = DagTable::new(BmpKind::Bspl);
        // Install the specific filter FIRST, wildcard second: the wildcard
        // must be replicated into the existing specific edge.
        let _spec = dag
            .insert("10.0.0.0/8, *, TCP, *, *, *".parse().unwrap(), "tcp10")
            .unwrap();
        let _any = dag
            .insert("*, *, *, *, *, *".parse().unwrap(), "any")
            .unwrap();
        // UDP from 10.x: only the wildcard matches — reached through the
        // 10/8 edge (never backtracking).
        let got = dag.lookup(&t4([10, 1, 1, 1], [2, 2, 2, 2], 17, 1, 1));
        assert_eq!(*got.unwrap().1, "any");
        // TCP from 10.x: the specific filter wins on specificity.
        let got = dag.lookup(&t4([10, 1, 1, 1], [2, 2, 2, 2], 6, 1, 1));
        assert_eq!(*got.unwrap().1, "tcp10");
        // Non-10.x falls to the wildcard edge.
        let got = dag.lookup(&t4([11, 1, 1, 1], [2, 2, 2, 2], 6, 1, 1));
        assert_eq!(*got.unwrap().1, "any");
    }

    #[test]
    fn inheritance_on_late_specific_edge() {
        let mut dag: DagTable<&str> = DagTable::new(BmpKind::Bspl);
        // Wildcard-ish first, then a more specific edge: the new edge
        // inherits the earlier filter's suffix.
        dag.insert("10.0.0.0/8, *, *, *, *, *".parse().unwrap(), "eight")
            .unwrap();
        dag.insert("10.20.0.0/16, *, UDP, *, *, *".parse().unwrap(), "sixteen")
            .unwrap();
        // TCP (≠ UDP) from 10.20.x: descends the /16 edge, must still find
        // the /8 filter there.
        let got = dag.lookup(&t4([10, 20, 1, 1], [2, 2, 2, 2], 6, 1, 1));
        assert_eq!(*got.unwrap().1, "eight");
        // UDP from 10.20.x: both match; /16 more specific.
        let got = dag.lookup(&t4([10, 20, 1, 1], [2, 2, 2, 2], 17, 1, 1));
        assert_eq!(*got.unwrap().1, "sixteen");
    }

    #[test]
    fn port_ranges_nested() {
        let mut dag: DagTable<&str> = DagTable::new(BmpKind::Bspl);
        dag.insert("*, *, UDP, *, 1000-2000, *".parse().unwrap(), "wide")
            .unwrap();
        dag.insert("*, *, UDP, *, 1500-1600, *".parse().unwrap(), "narrow")
            .unwrap();
        dag.insert("*, *, UDP, *, 1550, *".parse().unwrap(), "exact")
            .unwrap();
        let q = |p: u16| {
            dag.lookup(&t4([1, 1, 1, 1], [2, 2, 2, 2], 17, 9, p))
                .map(|(_, v)| *v)
        };
        assert_eq!(q(1000), Some("wide"));
        assert_eq!(q(1500), Some("narrow"));
        assert_eq!(q(1550), Some("exact"));
        assert_eq!(q(1601), Some("wide"));
        assert_eq!(q(2001), None);
    }

    #[test]
    fn ambiguous_port_overlap_rejected() {
        let mut dag: DagTable<&str> = DagTable::new(BmpKind::Bspl);
        let id = dag
            .insert("*, *, UDP, *, 1000-2000, *".parse().unwrap(), "a")
            .unwrap();
        let err = dag
            .insert("*, *, UDP, *, 1500-2500, *".parse().unwrap(), "b")
            .unwrap_err();
        assert_eq!(err, DagError::AmbiguousPortOverlap(id));
    }

    #[test]
    fn iface_level() {
        let mut dag: DagTable<&str> = DagTable::new(BmpKind::Bspl);
        dag.insert("*, *, *, *, *, if1".parse().unwrap(), "if1")
            .unwrap();
        dag.insert("*, *, *, *, *, *".parse().unwrap(), "any")
            .unwrap();
        let mut t = t4([1, 1, 1, 1], [2, 2, 2, 2], 6, 1, 1);
        t.rx_if = 1;
        assert_eq!(*dag.lookup(&t).unwrap().1, "if1");
        t.rx_if = 2;
        assert_eq!(*dag.lookup(&t).unwrap().1, "any");
    }

    #[test]
    fn remove_prunes_and_restores() {
        let mut dag: DagTable<&str> = DagTable::new(BmpKind::Bspl);
        let base_nodes = dag.node_count();
        let a = dag
            .insert("10.0.0.0/8, *, *, *, *, *".parse().unwrap(), "a")
            .unwrap();
        let b = dag
            .insert("10.20.0.0/16, *, UDP, *, *, *".parse().unwrap(), "b")
            .unwrap();
        let t_tcp = t4([10, 20, 1, 1], [2, 2, 2, 2], 6, 1, 1);
        assert_eq!(*dag.lookup(&t_tcp).unwrap().1, "a");
        let (spec, val) = dag.remove(a).unwrap();
        assert_eq!(val, "a");
        assert_eq!(spec.src.specificity(), 9);
        // The /8's replica under the /16 edge must be gone.
        assert!(dag.lookup(&t_tcp).is_none());
        let t_udp = t4([10, 20, 1, 1], [2, 2, 2, 2], 17, 1, 1);
        assert_eq!(*dag.lookup(&t_udp).unwrap().1, "b");
        dag.remove(b).unwrap();
        assert!(dag.lookup(&t_udp).is_none());
        assert_eq!(dag.len(), 0);
        // All edges pruned (root remains).
        assert_eq!(
            dag.nodes[dag.root].installed.len(),
            0,
            "root installed list drained"
        );
        let _ = base_nodes;
        assert!(dag.remove(a).is_err());
    }

    #[test]
    fn v6_filters() {
        let mut dag: DagTable<&str> = DagTable::new(BmpKind::Bspl);
        dag.insert("2001:db8::/32, *, UDP, *, *, *".parse().unwrap(), "site")
            .unwrap();
        dag.insert(
            "2001:db8::1, 2001:db8::2, UDP, *, *, *".parse().unwrap(),
            "pair",
        )
        .unwrap();
        let t = FlowTuple {
            src: "2001:db8::1".parse().unwrap(),
            dst: "2001:db8::2".parse().unwrap(),
            proto: 17,
            sport: 1,
            dport: 2,
            rx_if: 0,
        };
        assert_eq!(*dag.lookup(&t).unwrap().1, "pair");
        let t2 = FlowTuple {
            src: "2001:db8::99".parse().unwrap(),
            ..t
        };
        assert_eq!(*dag.lookup(&t2).unwrap().1, "site");
    }

    #[test]
    fn stats_have_paper_shape() {
        let (dag, _) = table1_dag(BmpKind::Bspl);
        let t = t4([128, 252, 153, 1], [128, 252, 153, 7], 17, 9, 9);
        let (hit, stats) = dag.lookup_with_stats(&t);
        assert!(hit.is_some());
        assert_eq!(stats.bmp_fn_ptr, 1);
        assert_eq!(stats.hash_fn_ptr, 1);
        assert_eq!(stats.dag_edges, 6);
        assert_eq!(stats.port_probes, 2);
        assert!(stats.addr_probes >= 1);
        assert_eq!(
            stats.total(),
            1 + 1 + 6 + 2 + stats.addr_probes,
            "breakdown sums"
        );
    }

    #[test]
    fn lookup_cost_independent_of_filter_count() {
        // The headline claim (§5.1.2): DAG lookup cost is O(fields).
        // Compare edge/port accesses at 4 filters vs hundreds.
        let (dag_small, _) = table1_dag(BmpKind::Patricia);
        let t = t4([128, 252, 153, 1], [128, 252, 153, 7], 17, 9, 9);
        let (_, small) = dag_small.lookup_with_stats(&t);

        let mut dag_big: DagTable<usize> = DagTable::new(BmpKind::Patricia);
        for (i, f) in paper_table1_filters().into_iter().enumerate() {
            dag_big.insert(f, i).unwrap();
        }
        for i in 0..500u32 {
            let spec: FilterSpec = format!(
                "172.{}.{}.0/24, *, TCP, *, {}, *",
                i % 256,
                (i / 256) % 256,
                1000 + i
            )
            .parse()
            .unwrap();
            dag_big.insert(spec, 100 + i as usize).unwrap();
        }
        let (hit, big) = dag_big.lookup_with_stats(&t);
        assert!(hit.is_some());
        assert_eq!(small.dag_edges, big.dag_edges);
        assert_eq!(small.port_probes, big.port_probes);
    }

    #[test]
    fn exact_edges_sorted_then_spills() {
        // Small maps stay in the sorted array; past the spill threshold
        // the map converts to a hash and keeps answering identically.
        let mut s = ExactEdges::new();
        for k in [5u32, 1, 3] {
            s.insert(k, k as usize);
        }
        assert!(matches!(s, ExactEdges::Sorted(_)));
        assert_eq!(s.get(3), Some(3));
        assert_eq!(s.get(2), None);
        s.remove(3);
        assert_eq!(s.get(3), None);
        assert_eq!(s.children().len(), 2);
        assert_eq!(s.entries().len(), 2);

        let mut e = ExactEdges::new();
        for k in (0..2 * EXACT_SPILL as u32).rev() {
            e.insert(k, k as usize);
        }
        assert!(matches!(e, ExactEdges::Hash(_)));
        for k in 0..2 * EXACT_SPILL as u32 {
            assert_eq!(e.get(k), Some(k as usize));
        }
        e.remove(100);
        assert_eq!(e.get(100), None);
        assert_eq!(e.entries().len(), 2 * EXACT_SPILL - 1);
    }

    #[test]
    fn ambiguity_resolved_lexicographically() {
        // F1 <src/8, dst/32>, F2 <src/32, dst/8>: both match; src level
        // decides (field order), so F2 wins.
        let mut dag: DagTable<&str> = DagTable::new(BmpKind::Bspl);
        dag.insert("10.0.0.0/8, 20.0.0.1, *, *, *, *".parse().unwrap(), "f1")
            .unwrap();
        dag.insert("10.0.0.1, 20.0.0.0/8, *, *, *, *".parse().unwrap(), "f2")
            .unwrap();
        let got = dag.lookup(&t4([10, 0, 0, 1], [20, 0, 0, 1], 6, 1, 1));
        assert_eq!(*got.unwrap().1, "f2");
    }
}
