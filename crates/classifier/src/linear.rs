//! Linear-scan classifier: the `O(n)` baseline standing in for "the
//! 'typical' filter algorithms used in existing implementations" the paper
//! compares against (§5.1.2: "most of these existing techniques require
//! O(n) time, n being the number of filters").
//!
//! Uses the same specificity order as the DAG, so both classifiers return
//! identical results — which the property tests in `tests/` assert.

use crate::filter::{FilterId, FilterSpec};
use rp_packet::FlowTuple;

/// A classifier that scans every installed filter.
pub struct LinearTable<V> {
    filters: Vec<(FilterId, FilterSpec, V)>,
    next_id: u64,
}

impl<V> Default for LinearTable<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> LinearTable<V> {
    /// Empty table.
    pub fn new() -> Self {
        LinearTable {
            filters: Vec::new(),
            next_id: 0,
        }
    }

    /// Install a filter.
    pub fn insert(&mut self, spec: FilterSpec, value: V) -> FilterId {
        let id = FilterId(self.next_id);
        self.next_id += 1;
        self.filters.push((id, spec, value));
        id
    }

    /// Remove a filter by id.
    pub fn remove(&mut self, id: FilterId) -> Option<(FilterSpec, V)> {
        let pos = self.filters.iter().position(|(i, _, _)| *i == id)?;
        let (_, spec, v) = self.filters.remove(pos);
        Some((spec, v))
    }

    /// Number of installed filters.
    pub fn len(&self) -> usize {
        self.filters.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.filters.is_empty()
    }

    /// Most specific matching filter: scans all `n` filters.
    pub fn lookup(&self, t: &FlowTuple) -> Option<(FilterId, &V)> {
        self.filters
            .iter()
            .filter(|(_, spec, _)| spec.matches(t))
            .max_by(|(ia, sa, _), (ib, sb, _)| {
                sa.specificity().cmp(&sb.specificity()).then(ib.cmp(ia)) // earlier id wins ties
            })
            .map(|(id, _, v)| (*id, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::paper_table1_filters;
    use std::net::{IpAddr, Ipv4Addr};

    fn t4(src: [u8; 4], dst: [u8; 4], proto: u8) -> FlowTuple {
        FlowTuple {
            src: IpAddr::V4(Ipv4Addr::from(src)),
            dst: IpAddr::V4(Ipv4Addr::from(dst)),
            proto,
            sport: 9,
            dport: 9,
            rx_if: 0,
        }
    }

    #[test]
    fn table1_most_specific() {
        let mut lt = LinearTable::new();
        let ids: Vec<FilterId> = paper_table1_filters()
            .into_iter()
            .enumerate()
            .map(|(i, f)| lt.insert(f, i))
            .collect();
        let got = lt.lookup(&t4([128, 252, 153, 1], [128, 252, 153, 7], 17));
        assert_eq!(got.unwrap().0, ids[1]); // filter 2 beats filter 4
        let got = lt.lookup(&t4([128, 252, 153, 1], [128, 252, 154, 7], 17));
        assert_eq!(got.unwrap().0, ids[3]);
        assert!(lt.lookup(&t4([1, 2, 3, 4], [5, 6, 7, 8], 6)).is_none());
    }

    #[test]
    fn remove_by_id() {
        let mut lt = LinearTable::new();
        let a = lt.insert(FilterSpec::any(), "a");
        assert_eq!(lt.len(), 1);
        assert_eq!(lt.remove(a).unwrap().1, "a");
        assert!(lt.remove(a).is_none());
        assert!(lt.is_empty());
    }

    #[test]
    fn tie_breaks_to_earliest() {
        let mut lt = LinearTable::new();
        let first = lt.insert(FilterSpec::any(), "first");
        let _second = lt.insert(FilterSpec::any(), "second");
        let got = lt.lookup(&t4([1, 1, 1, 1], [2, 2, 2, 2], 6));
        assert_eq!(got.unwrap().0, first);
    }
}
