//! The filter language: the paper's six-tuple with per-field wildcarding.
//!
//! A filter is `<source address, destination address, protocol, source
//! port, destination port, incoming interface>`; address fields may be
//! partially wildcarded by a prefix mask, ports may be ranges, and any
//! field may be `*` (paper §3). The textual form accepted here covers both
//! the paper's dotted-star style (`129.*.*.*`) and CIDR (`129.0.0.0/8`).

use rp_lpm::Prefix;
use rp_packet::mbuf::IfIndex;
use rp_packet::{FlowTuple, Protocol};
use std::fmt;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};
use std::str::FromStr;

/// Identifier of an installed filter, unique within one filter table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FilterId(pub u64);

/// Address field match: a family-specific prefix or a full wildcard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddrMatch {
    /// Matches any address of either family.
    Any,
    /// IPv4 prefix (possibly /32 = exact host, /0 behaves like `Any` for
    /// v4 packets only).
    V4(Prefix<u32>),
    /// IPv6 prefix.
    V6(Prefix<u128>),
}

impl AddrMatch {
    /// Exact-host convenience constructor.
    pub fn host(addr: IpAddr) -> Self {
        match addr {
            IpAddr::V4(a) => AddrMatch::V4(Prefix::new(u32::from(a), 32)),
            IpAddr::V6(a) => AddrMatch::V6(Prefix::new(u128::from(a), 128)),
        }
    }

    /// Prefix constructor from an address + length.
    pub fn prefix(addr: IpAddr, len: u8) -> Self {
        match addr {
            IpAddr::V4(a) => AddrMatch::V4(Prefix::new(u32::from(a), len)),
            IpAddr::V6(a) => AddrMatch::V6(Prefix::new(u128::from(a), len)),
        }
    }

    /// Does this field match the given concrete address?
    pub fn matches(&self, addr: IpAddr) -> bool {
        match (self, addr) {
            (AddrMatch::Any, _) => true,
            (AddrMatch::V4(p), IpAddr::V4(a)) => p.matches(u32::from(a)),
            (AddrMatch::V6(p), IpAddr::V6(a)) => p.matches(u128::from(a)),
            _ => false,
        }
    }

    /// Does this field cover (match everything matched by) `other`?
    pub fn covers(&self, other: &AddrMatch) -> bool {
        match (self, other) {
            (AddrMatch::Any, _) => true,
            (_, AddrMatch::Any) => matches!(self, AddrMatch::Any),
            (AddrMatch::V4(p), AddrMatch::V4(q)) => p.covers(q),
            (AddrMatch::V6(p), AddrMatch::V6(q)) => p.covers(q),
            _ => false,
        }
    }

    /// Specificity rank: higher = more specific. `Any` ranks 0, a prefix
    /// ranks `1 + len`.
    pub fn specificity(&self) -> u32 {
        match self {
            AddrMatch::Any => 0,
            AddrMatch::V4(p) => 1 + u32::from(p.len()),
            AddrMatch::V6(p) => 1 + u32::from(p.len()),
        }
    }
}

impl fmt::Display for AddrMatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AddrMatch::Any => write!(f, "*"),
            AddrMatch::V4(p) => {
                write!(f, "{}/{}", Ipv4Addr::from(p.bits()), p.len())
            }
            AddrMatch::V6(p) => {
                write!(f, "{}/{}", Ipv6Addr::from(p.bits()), p.len())
            }
        }
    }
}

/// Port field match: wildcard or inclusive range (an exact port is the
/// degenerate range `p-p`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortMatch {
    /// Matches any port.
    Any,
    /// Inclusive range `lo..=hi`.
    Range(u16, u16),
}

impl PortMatch {
    /// Exact-port constructor.
    pub fn eq(port: u16) -> Self {
        PortMatch::Range(port, port)
    }

    /// Range constructor (normalising reversed bounds).
    pub fn range(lo: u16, hi: u16) -> Self {
        if lo <= hi {
            PortMatch::Range(lo, hi)
        } else {
            PortMatch::Range(hi, lo)
        }
    }

    /// Does this field match the given port?
    pub fn matches(&self, port: u16) -> bool {
        match self {
            PortMatch::Any => true,
            PortMatch::Range(lo, hi) => (*lo..=*hi).contains(&port),
        }
    }

    /// Does this field cover `other`?
    pub fn covers(&self, other: &PortMatch) -> bool {
        match (self, other) {
            (PortMatch::Any, _) => true,
            (_, PortMatch::Any) => false,
            (PortMatch::Range(a, b), PortMatch::Range(c, d)) => a <= c && d <= b,
        }
    }

    /// True when the two matches overlap without either covering the other
    /// — the ambiguous case the DAG rejects at install time.
    pub fn overlaps_ambiguously(&self, other: &PortMatch) -> bool {
        match (self, other) {
            (PortMatch::Range(a, b), PortMatch::Range(c, d)) => {
                let overlap = a.max(c) <= b.min(d);
                overlap && !self.covers(other) && !other.covers(self)
            }
            _ => false,
        }
    }

    /// Specificity rank: higher = more specific (narrower range).
    pub fn specificity(&self) -> u32 {
        match self {
            PortMatch::Any => 0,
            PortMatch::Range(lo, hi) => 65536 - u32::from(hi - lo),
        }
    }
}

impl fmt::Display for PortMatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortMatch::Any => write!(f, "*"),
            PortMatch::Range(lo, hi) if lo == hi => write!(f, "{lo}"),
            PortMatch::Range(lo, hi) => write!(f, "{lo}-{hi}"),
        }
    }
}

/// The six-tuple filter of paper §3.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FilterSpec {
    /// Source address field.
    pub src: AddrMatch,
    /// Destination address field.
    pub dst: AddrMatch,
    /// Protocol, `None` = wildcard.
    pub proto: Option<u8>,
    /// Source port field.
    pub sport: PortMatch,
    /// Destination port field.
    pub dport: PortMatch,
    /// Incoming interface, `None` = wildcard.
    pub rx_if: Option<IfIndex>,
}

impl FilterSpec {
    /// The match-everything filter.
    pub fn any() -> Self {
        FilterSpec {
            src: AddrMatch::Any,
            dst: AddrMatch::Any,
            proto: None,
            sport: PortMatch::Any,
            dport: PortMatch::Any,
            rx_if: None,
        }
    }

    /// A fully specified end-to-end application-flow filter for `t` — "the
    /// filter for an end-to-end application flow would have all fields
    /// fully specified" (paper §3).
    pub fn exact(t: &FlowTuple) -> Self {
        FilterSpec {
            src: AddrMatch::host(t.src),
            dst: AddrMatch::host(t.dst),
            proto: Some(t.proto),
            sport: PortMatch::eq(t.sport),
            dport: PortMatch::eq(t.dport),
            rx_if: Some(t.rx_if),
        }
    }

    /// Does the filter match a concrete flow tuple?
    pub fn matches(&self, t: &FlowTuple) -> bool {
        self.src.matches(t.src)
            && self.dst.matches(t.dst)
            && self.proto.is_none_or(|p| p == t.proto)
            && self.sport.matches(t.sport)
            && self.dport.matches(t.dport)
            && self.rx_if.is_none_or(|i| i == t.rx_if)
    }

    /// Specificity vector compared lexicographically in the DAG's field
    /// order. This is the deterministic resolution of filter ambiguity
    /// (the paper defers ambiguity resolution to its tech report; any
    /// consistent total order works, and field order is the natural one
    /// for a set-pruning trie).
    pub fn specificity(&self) -> (u32, u32, u32, u32, u32, u32) {
        (
            self.src.specificity(),
            self.dst.specificity(),
            u32::from(self.proto.is_some()),
            self.sport.specificity(),
            self.dport.specificity(),
            u32::from(self.rx_if.is_some()),
        )
    }

    /// Does this filter cover `other` in every field? (`other` is then "more
    /// specific", like Table 1's filter 2 versus filter 4.)
    pub fn covers(&self, other: &FilterSpec) -> bool {
        self.src.covers(&other.src)
            && self.dst.covers(&other.dst)
            && (self.proto.is_none() || self.proto == other.proto)
            && self.sport.covers(&other.sport)
            && self.dport.covers(&other.dport)
            && (self.rx_if.is_none() || self.rx_if == other.rx_if)
    }
}

impl fmt::Display for FilterSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let proto = match self.proto {
            None => "*".to_string(),
            Some(p) => Protocol::from(p).to_string(),
        };
        let rx = match self.rx_if {
            None => "*".to_string(),
            Some(i) => format!("if{i}"),
        };
        write!(
            f,
            "<{}, {}, {}, {}, {}, {}>",
            self.src, self.dst, proto, self.sport, self.dport, rx
        )
    }
}

/// Errors from parsing the textual filter form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFilterError(pub String);

impl fmt::Display for ParseFilterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid filter: {}", self.0)
    }
}

impl std::error::Error for ParseFilterError {}

fn parse_addr(tok: &str) -> Result<AddrMatch, ParseFilterError> {
    let tok = tok.trim();
    if tok == "*" {
        return Ok(AddrMatch::Any);
    }
    if let Some((addr, len)) = tok.split_once('/') {
        let len: u8 = len
            .parse()
            .map_err(|_| ParseFilterError(format!("bad prefix length in {tok}")))?;
        let ip: IpAddr = addr
            .parse()
            .map_err(|_| ParseFilterError(format!("bad address in {tok}")))?;
        let max = match ip {
            IpAddr::V4(_) => 32,
            IpAddr::V6(_) => 128,
        };
        if len > max {
            return Err(ParseFilterError(format!("prefix too long in {tok}")));
        }
        return Ok(AddrMatch::prefix(ip, len));
    }
    if tok.contains('*') {
        // Paper style: 129.*.*.* — leading literal octets, trailing stars.
        let parts: Vec<&str> = tok.split('.').collect();
        if parts.len() != 4 {
            return Err(ParseFilterError(format!("bad dotted form {tok}")));
        }
        let mut octets = [0u8; 4];
        let mut len: u8 = 0;
        let mut stars = false;
        for (i, p) in parts.iter().enumerate() {
            if *p == "*" {
                stars = true;
            } else {
                if stars {
                    return Err(ParseFilterError(format!("literal octet after * in {tok}")));
                }
                octets[i] = p
                    .parse()
                    .map_err(|_| ParseFilterError(format!("bad octet in {tok}")))?;
                len += 8;
            }
        }
        return Ok(AddrMatch::V4(Prefix::new(u32::from_be_bytes(octets), len)));
    }
    let ip: IpAddr = tok
        .parse()
        .map_err(|_| ParseFilterError(format!("bad address {tok}")))?;
    Ok(AddrMatch::host(ip))
}

fn parse_proto(tok: &str) -> Result<Option<u8>, ParseFilterError> {
    let tok = tok.trim();
    if tok == "*" {
        return Ok(None);
    }
    let named = match tok.to_ascii_uppercase().as_str() {
        "TCP" => Some(6),
        "UDP" => Some(17),
        "ICMP" => Some(1),
        "ICMPV6" => Some(58),
        "ESP" => Some(50),
        "AH" => Some(51),
        "IGMP" => Some(2),
        _ => None,
    };
    if let Some(p) = named {
        return Ok(Some(p));
    }
    tok.parse::<u8>()
        .map(Some)
        .map_err(|_| ParseFilterError(format!("bad protocol {tok}")))
}

fn parse_port(tok: &str) -> Result<PortMatch, ParseFilterError> {
    let tok = tok.trim();
    if tok == "*" {
        return Ok(PortMatch::Any);
    }
    if let Some((lo, hi)) = tok.split_once('-') {
        let lo: u16 = lo
            .parse()
            .map_err(|_| ParseFilterError(format!("bad port {tok}")))?;
        let hi: u16 = hi
            .parse()
            .map_err(|_| ParseFilterError(format!("bad port {tok}")))?;
        return Ok(PortMatch::range(lo, hi));
    }
    tok.parse::<u16>()
        .map(PortMatch::eq)
        .map_err(|_| ParseFilterError(format!("bad port {tok}")))
}

fn parse_iface(tok: &str) -> Result<Option<IfIndex>, ParseFilterError> {
    let tok = tok.trim();
    if tok == "*" {
        return Ok(None);
    }
    let tok = tok.strip_prefix("if").unwrap_or(tok);
    tok.parse::<IfIndex>()
        .map(Some)
        .map_err(|_| ParseFilterError(format!("bad interface {tok}")))
}

impl FromStr for FilterSpec {
    type Err = ParseFilterError;

    /// Parse `"src, dst, proto, sport, dport, iface"` (angle brackets
    /// optional), e.g. the paper's `<129.*.*.*, 192.94.233.10, TCP, *, *,
    /// *>`. A five-field form (no interface) is also accepted.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim().trim_start_matches('<').trim_end_matches('>');
        let fields: Vec<&str> = s.split(',').collect();
        if fields.len() != 5 && fields.len() != 6 {
            return Err(ParseFilterError(format!(
                "expected 5 or 6 fields, got {}",
                fields.len()
            )));
        }
        Ok(FilterSpec {
            src: parse_addr(fields[0])?,
            dst: parse_addr(fields[1])?,
            proto: parse_proto(fields[2])?,
            sport: parse_port(fields[3])?,
            dport: parse_port(fields[4])?,
            rx_if: if fields.len() == 6 {
                parse_iface(fields[5])?
            } else {
                None
            },
        })
    }
}

/// The four sample filters of the paper's Table 1 (three-field form with
/// the remaining fields wildcarded), used across tests and examples.
pub fn paper_table1_filters() -> Vec<FilterSpec> {
    vec![
        "129.*.*.*, 192.94.233.10, TCP, *, *, *".parse().unwrap(),
        "128.252.153.1, 128.252.153.7, UDP, *, *, *"
            .parse()
            .unwrap(),
        "128.252.153.1, 128.252.153.7, TCP, *, *, *"
            .parse()
            .unwrap(),
        "128.252.153.*, *, UDP, *, *, *".parse().unwrap(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple(src: [u8; 4], dst: [u8; 4], proto: u8, sport: u16, dport: u16) -> FlowTuple {
        FlowTuple {
            src: IpAddr::V4(Ipv4Addr::from(src)),
            dst: IpAddr::V4(Ipv4Addr::from(dst)),
            proto,
            sport,
            dport,
            rx_if: 0,
        }
    }

    #[test]
    fn parse_paper_style() {
        let f: FilterSpec = "<129.*.*.*, 192.94.233.10, TCP, *, *, *>".parse().unwrap();
        assert_eq!(f.src, AddrMatch::V4(Prefix::new(0x8100_0000, 8)));
        assert_eq!(
            f.dst,
            AddrMatch::V4(Prefix::new(u32::from(Ipv4Addr::new(192, 94, 233, 10)), 32))
        );
        assert_eq!(f.proto, Some(6));
        assert_eq!(f.sport, PortMatch::Any);
        assert_eq!(f.rx_if, None);
    }

    #[test]
    fn parse_cidr_and_ranges() {
        let f: FilterSpec = "10.0.0.0/8, *, UDP, 1024-2047, 53, if3".parse().unwrap();
        assert_eq!(f.src, AddrMatch::V4(Prefix::new(0x0A00_0000, 8)));
        assert_eq!(f.dst, AddrMatch::Any);
        assert_eq!(f.sport, PortMatch::Range(1024, 2047));
        assert_eq!(f.dport, PortMatch::eq(53));
        assert_eq!(f.rx_if, Some(3));
    }

    #[test]
    fn parse_v6() {
        let f: FilterSpec = "2001:db8::/32, 2001:db8::7, *, *, *".parse().unwrap();
        match f.src {
            AddrMatch::V6(p) => assert_eq!(p.len(), 32),
            _ => panic!("expected v6 prefix"),
        }
        assert!(matches!(f.dst, AddrMatch::V6(p) if p.len() == 128));
    }

    #[test]
    fn parse_errors() {
        assert!("1,2".parse::<FilterSpec>().is_err());
        assert!("10.*.1.*, *, *, *, *, *".parse::<FilterSpec>().is_err());
        assert!("10.0.0.0/33, *, *, *, *, *".parse::<FilterSpec>().is_err());
        assert!("*, *, BOGUS, *, *, *".parse::<FilterSpec>().is_err());
        assert!("*, *, *, 70000, *, *".parse::<FilterSpec>().is_err());
    }

    #[test]
    fn table1_matching_semantics() {
        let filters = paper_table1_filters();
        // The paper's worked example: <128.252.153.1, 128.252.154.7, UDP>
        // matches only filter 4 — note .154. in the destination!
        let t = tuple([128, 252, 153, 1], [128, 252, 154, 7], 17, 1, 2);
        let matched: Vec<usize> = filters
            .iter()
            .enumerate()
            .filter(|(_, f)| f.matches(&t))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(matched, vec![3]);

        // <128.252.153.1, 128.252.153.7, UDP> matches filters 2 and 4;
        // filter 2 is more specific ("proper subset", §5.1.1).
        let t = tuple([128, 252, 153, 1], [128, 252, 153, 7], 17, 1, 2);
        let matched: Vec<usize> = filters
            .iter()
            .enumerate()
            .filter(|(_, f)| f.matches(&t))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(matched, vec![1, 3]);
        assert!(filters[3].covers(&filters[1]));
        assert!(!filters[1].covers(&filters[3]));
        assert!(filters[1].specificity() > filters[3].specificity());
    }

    #[test]
    fn disjoint_filters() {
        let filters = paper_table1_filters();
        // Filters 1 and 4 are disjoint (paper's observation).
        assert!(!filters[0].covers(&filters[3]));
        assert!(!filters[3].covers(&filters[0]));
    }

    #[test]
    fn port_overlap_detection() {
        let a = PortMatch::range(10, 20);
        let b = PortMatch::range(15, 30);
        let c = PortMatch::range(12, 18);
        assert!(a.overlaps_ambiguously(&b));
        assert!(!a.overlaps_ambiguously(&c)); // nested
        assert!(!a.overlaps_ambiguously(&PortMatch::Any));
        assert!(!a.overlaps_ambiguously(&PortMatch::range(21, 30)));
    }

    #[test]
    fn display_roundtrip() {
        for s in [
            "<129.0.0.0/8, 192.94.233.10/32, TCP, *, *, *>",
            "<*, *, *, 80, 1024-2047, if7>",
        ] {
            let f: FilterSpec = s.parse().unwrap();
            let f2: FilterSpec = f.to_string().parse().unwrap();
            assert_eq!(f, f2);
        }
    }

    #[test]
    fn exact_filter_matches_only_its_flow() {
        let t = tuple([10, 0, 0, 1], [10, 0, 0, 2], 17, 5, 6);
        let f = FilterSpec::exact(&t);
        assert!(f.matches(&t));
        let mut t2 = t;
        t2.sport = 7;
        assert!(!f.matches(&t2));
        let mut t3 = t;
        t3.rx_if = 9;
        assert!(!f.matches(&t3));
    }

    #[test]
    fn any_matches_everything() {
        let f = FilterSpec::any();
        assert!(f.matches(&tuple([1, 2, 3, 4], [5, 6, 7, 8], 99, 0, 0)));
        assert_eq!(f.specificity(), (0, 0, 0, 0, 0, 0));
    }

    #[test]
    fn cross_family_never_matches() {
        let f: FilterSpec = "10.0.0.0/8, *, *, *, *, *".parse().unwrap();
        let t6 = FlowTuple {
            src: "2001:db8::1".parse().unwrap(),
            dst: "2001:db8::2".parse().unwrap(),
            proto: 17,
            sport: 1,
            dport: 2,
            rx_if: 0,
        };
        assert!(!f.matches(&t6));
    }
}
