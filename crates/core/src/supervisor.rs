//! Plugin supervision: fault isolation, health tracking, and restart.
//!
//! The paper's architecture runs plugins *inside* the kernel: "plugins are
//! code modules that run in the kernel" (§1), so a misbehaving plugin can
//! take the whole router down. This module adds the containment layer a
//! production deployment of that architecture needs — without changing the
//! plugin programming model:
//!
//! * Every gate-side plugin invocation is wrapped in
//!   [`std::panic::catch_unwind`] (see [`run_isolated`]); a panicking
//!   instance loses the packet it was processing but never the router.
//! * Each instance carries a health state machine
//!   ([`HealthState`]: `Healthy → Degraded → Quarantined`) driven by a
//!   configurable [`FaultPolicy`]: panics and per-call packet-budget
//!   overruns (in netsim clock units) count as faults.
//! * On quarantine, the router removes the instance's filter bindings and
//!   invalidates its cached flows, so affected flows fall back to the
//!   gate's default path — dropped packets are *counted*, never silently
//!   blackholed.
//! * Quarantined instances are restarted from their plugin's factory with
//!   capped exponential backoff in simulated time, and their filter
//!   bindings are re-installed for the fresh instance.
//!
//! The supervisor itself is pure bookkeeping; [`crate::router::Router`]
//! orchestrates the AIU/PCU side effects (filter removal, flow
//! invalidation, restart) because only it holds those components.

use crate::gate::Gate;
use crate::plugin::{InstanceId, InstanceRef};
use rp_classifier::FilterSpec;
use std::cell::Cell;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;
use std::sync::Once;

/// Health of a supervised plugin instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// No recent faults; on the data path.
    Healthy,
    /// Faulted at least [`FaultPolicy::degrade_after`] times since the
    /// last (re)start; still on the data path, flagged for operators.
    Degraded,
    /// Faulted [`FaultPolicy::quarantine_after`] times: removed from the
    /// data path (bindings invalidated), awaiting restart or operator
    /// action.
    Quarantined,
}

impl fmt::Display for HealthState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HealthState::Healthy => write!(f, "healthy"),
            HealthState::Degraded => write!(f, "degraded"),
            HealthState::Quarantined => write!(f, "quarantined"),
        }
    }
}

/// What went wrong in one plugin invocation.
#[derive(Debug, Clone)]
pub enum FaultKind {
    /// The instance panicked; payload message attached.
    Panic(String),
    /// The instance reported more processing cost than the policy's
    /// per-call packet budget allows (a modelled stall).
    BudgetExceeded {
        /// Cost the instance charged for the call (ns, netsim clock).
        cost_ns: u64,
        /// The policy's budget it exceeded.
        budget_ns: u64,
    },
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Panic(msg) => write!(f, "panic: {msg}"),
            FaultKind::BudgetExceeded { cost_ns, budget_ns } => {
                write!(
                    f,
                    "budget exceeded: cost {cost_ns}ns > budget {budget_ns}ns"
                )
            }
        }
    }
}

/// Fault-handling policy for supervised instances.
#[derive(Debug, Clone)]
pub struct FaultPolicy {
    /// Faults (since last restart) after which an instance is Degraded.
    pub degrade_after: u32,
    /// Faults after which an instance is Quarantined.
    pub quarantine_after: u32,
    /// Per-call packet budget in netsim clock units (ns); a call charging
    /// more cost than this counts as a fault. `0` disables the budget.
    pub packet_budget_ns: u64,
    /// Restart quarantined instances automatically.
    pub restart: bool,
    /// Initial restart backoff (simulated ns).
    pub restart_backoff_ns: u64,
    /// Backoff cap: doubling stops here.
    pub restart_backoff_cap_ns: u64,
    /// Give up after this many restarts of one instance.
    pub max_restarts: u32,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        FaultPolicy {
            degrade_after: 1,
            quarantine_after: 3,
            packet_budget_ns: 0,
            restart: true,
            restart_backoff_ns: 1_000_000,      // 1 ms simulated
            restart_backoff_cap_ns: 64_000_000, // 64 ms simulated
            max_restarts: 4,
        }
    }
}

/// Verdict of recording one fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultVerdict {
    /// Health after the fault was counted.
    pub health: HealthState,
    /// This fault crossed the quarantine threshold — the caller must pull
    /// the instance off the data path.
    pub newly_quarantined: bool,
}

/// Snapshot of one supervised instance (pmgr `health`).
#[derive(Debug, Clone)]
pub struct HealthReport {
    /// Owning plugin name.
    pub plugin: String,
    /// Current instance id (changes across restarts).
    pub id: InstanceId,
    /// Current health.
    pub health: HealthState,
    /// Faults since the last (re)start.
    pub faults: u32,
    /// Faults across the instance's whole supervised life.
    pub total_faults: u64,
    /// Completed restarts.
    pub restarts: u32,
    /// Simulated time of the next restart attempt, if one is scheduled.
    pub restart_at_ns: Option<u64>,
    /// Description of the most recent fault.
    pub last_fault: Option<String>,
}

/// A quarantined instance due for a restart attempt.
#[derive(Debug, Clone)]
pub(crate) struct RestartTicket {
    pub plugin: String,
    pub id: InstanceId,
    pub config: String,
    /// Filter bindings to re-install for the fresh instance.
    pub bindings: Vec<(Gate, FilterSpec)>,
}

struct Record {
    /// Origin for restarts: set when the instance was created through the
    /// router's control path. Instances created behind the router's back
    /// (directly on the PCU) are supervised but not restartable.
    origin: Option<(String, InstanceId, String)>,
    inst: InstanceRef,
    health: HealthState,
    faults: u32,
    total_faults: u64,
    restarts: u32,
    restart_at_ns: Option<u64>,
    next_backoff_ns: u64,
    bindings: Vec<(Gate, FilterSpec, rp_classifier::FilterId)>,
    last_fault: Option<String>,
}

/// The supervisor: per-instance health records plus the restart queue.
pub struct Supervisor {
    policy: FaultPolicy,
    records: Vec<Record>,
    /// Earliest scheduled restart (cheap due-check on the hot path).
    next_due_ns: Option<u64>,
}

impl Supervisor {
    /// Build with a policy.
    pub fn new(policy: FaultPolicy) -> Self {
        Supervisor {
            policy,
            records: Vec::new(),
            next_due_ns: None,
        }
    }

    /// The active policy.
    pub fn policy(&self) -> &FaultPolicy {
        &self.policy
    }

    fn index_of(&self, inst: &InstanceRef) -> Option<usize> {
        self.records.iter().position(|r| Arc::ptr_eq(&r.inst, inst))
    }

    fn ensure_record(&mut self, inst: &InstanceRef) -> usize {
        if let Some(i) = self.index_of(inst) {
            return i;
        }
        self.records.push(Record {
            origin: None,
            inst: inst.clone(),
            health: HealthState::Healthy,
            faults: 0,
            total_faults: 0,
            restarts: 0,
            restart_at_ns: None,
            next_backoff_ns: self.policy.restart_backoff_ns,
            bindings: Vec::new(),
            last_fault: None,
        });
        self.records.len() - 1
    }

    /// Register a router-created instance (restartable).
    pub fn track(&mut self, plugin: &str, id: InstanceId, config: &str, inst: &InstanceRef) {
        let i = self.ensure_record(inst);
        self.records[i].origin = Some((plugin.to_string(), id, config.to_string()));
    }

    /// Drop an instance's record (freed through the control path).
    pub fn untrack(&mut self, inst: &InstanceRef) {
        self.records.retain(|r| !Arc::ptr_eq(&r.inst, inst));
        self.recompute_due();
    }

    /// Note a filter binding installed for `inst` (kept for re-install on
    /// restart).
    pub fn note_binding(
        &mut self,
        inst: &InstanceRef,
        gate: Gate,
        spec: FilterSpec,
        fid: rp_classifier::FilterId,
    ) {
        let i = self.ensure_record(inst);
        self.records[i].bindings.push((gate, spec, fid));
    }

    /// Note an explicit unbind (the binding is no longer re-installed on
    /// restart).
    pub fn note_unbinding(&mut self, inst: &InstanceRef, gate: Gate, fid: rp_classifier::FilterId) {
        if let Some(i) = self.index_of(inst) {
            self.records[i]
                .bindings
                .retain(|(g, _, f)| !(*g == gate && *f == fid));
        }
    }

    /// Count one fault against an instance, advancing its health machine.
    pub fn record_fault(&mut self, inst: &InstanceRef, kind: &FaultKind) -> FaultVerdict {
        let i = self.ensure_record(inst);
        let r = &mut self.records[i];
        r.faults += 1;
        r.total_faults += 1;
        r.last_fault = Some(kind.to_string());
        let before = r.health;
        if r.faults >= self.policy.quarantine_after {
            r.health = HealthState::Quarantined;
        } else if r.faults >= self.policy.degrade_after {
            r.health = HealthState::Degraded;
        }
        FaultVerdict {
            health: r.health,
            newly_quarantined: r.health == HealthState::Quarantined
                && before != HealthState::Quarantined,
        }
    }

    /// Health of an instance, if supervised.
    pub fn health_of(&self, inst: &InstanceRef) -> Option<HealthState> {
        self.index_of(inst).map(|i| self.records[i].health)
    }

    /// Is this instance currently quarantined? (The data path checks this
    /// to keep a quarantined instance off the packet flow even if a stale
    /// binding survives somewhere.)
    pub fn is_quarantined(&self, inst: &InstanceRef) -> bool {
        self.health_of(inst) == Some(HealthState::Quarantined)
    }

    /// Schedule a restart for a quarantined instance. Returns the
    /// simulated deadline, or `None` when policy or origin forbid it.
    pub fn schedule_restart(&mut self, inst: &InstanceRef, now_ns: u64) -> Option<u64> {
        if !self.policy.restart {
            return None;
        }
        let cap = self.policy.restart_backoff_cap_ns;
        let max_restarts = self.policy.max_restarts;
        let i = self.index_of(inst)?;
        let r = &mut self.records[i];
        if r.origin.is_none() || r.restarts >= max_restarts {
            return None;
        }
        let due = now_ns.saturating_add(r.next_backoff_ns);
        r.restart_at_ns = Some(due);
        r.next_backoff_ns = r.next_backoff_ns.saturating_mul(2).min(cap.max(1));
        self.recompute_due();
        Some(due)
    }

    fn recompute_due(&mut self) {
        self.next_due_ns = self.records.iter().filter_map(|r| r.restart_at_ns).min();
    }

    /// Cheap hot-path check: any restart due at `now_ns`?
    pub fn restart_due(&self, now_ns: u64) -> bool {
        self.next_due_ns.is_some_and(|t| t <= now_ns)
    }

    /// Pop every due restart as a ticket (the router attempts them).
    pub(crate) fn take_due(&mut self, now_ns: u64) -> Vec<RestartTicket> {
        let mut out = Vec::new();
        for r in &mut self.records {
            if r.restart_at_ns.is_some_and(|t| t <= now_ns) {
                r.restart_at_ns = None;
                if let Some((plugin, id, config)) = r.origin.clone() {
                    out.push(RestartTicket {
                        plugin,
                        id,
                        config,
                        bindings: r.bindings.iter().map(|(g, s, _)| (*g, s.clone())).collect(),
                    });
                }
            }
        }
        self.recompute_due();
        out
    }

    /// Complete a successful restart: swap in the fresh instance (new id,
    /// new filter ids), reset the fault window, keep the backoff ramp.
    pub(crate) fn complete_restart(
        &mut self,
        old_plugin: &str,
        old_id: InstanceId,
        new_id: InstanceId,
        new_inst: &InstanceRef,
        new_bindings: Vec<(Gate, FilterSpec, rp_classifier::FilterId)>,
    ) {
        if let Some(r) = self.records.iter_mut().find(|r| {
            r.origin
                .as_ref()
                .is_some_and(|(p, i, _)| p == old_plugin && *i == old_id)
        }) {
            if let Some(origin) = r.origin.as_mut() {
                origin.1 = new_id;
            }
            r.inst = new_inst.clone();
            r.health = HealthState::Healthy;
            r.faults = 0;
            r.restarts += 1;
            r.bindings = new_bindings;
        }
    }

    /// A restart attempt failed (factory refused, plugin gone): either
    /// re-arm the backoff timer or give up, per policy.
    pub(crate) fn fail_restart(&mut self, plugin: &str, id: InstanceId, now_ns: u64) {
        let cap = self.policy.restart_backoff_cap_ns;
        let max_restarts = self.policy.max_restarts;
        if let Some(r) = self.records.iter_mut().find(|r| {
            r.origin
                .as_ref()
                .is_some_and(|(p, i, _)| p == plugin && *i == id)
        }) {
            r.restarts += 1;
            if r.restarts < max_restarts {
                r.restart_at_ns = Some(now_ns.saturating_add(r.next_backoff_ns));
                r.next_backoff_ns = r.next_backoff_ns.saturating_mul(2).min(cap.max(1));
            }
        }
        self.recompute_due();
    }

    /// Snapshot every supervised instance (pmgr `health`).
    pub fn reports(&self) -> Vec<HealthReport> {
        let mut out: Vec<HealthReport> = self
            .records
            .iter()
            .map(|r| HealthReport {
                plugin: r
                    .origin
                    .as_ref()
                    .map(|(p, _, _)| p.clone())
                    .unwrap_or_else(|| "(untracked)".to_string()),
                id: r
                    .origin
                    .as_ref()
                    .map(|(_, i, _)| *i)
                    .unwrap_or(InstanceId(u32::MAX)),
                health: r.health,
                faults: r.faults,
                total_faults: r.total_faults,
                restarts: r.restarts,
                restart_at_ns: r.restart_at_ns,
                last_fault: r.last_fault.clone(),
            })
            .collect();
        out.sort_by(|a, b| (&a.plugin, a.id).cmp(&(&b.plugin, b.id)));
        out
    }
}

thread_local! {
    /// True while a supervised plugin call is in flight on this thread:
    /// the panic hook stays quiet so injected faults don't spam stderr.
    static SUPPRESS_PANIC_OUTPUT: Cell<bool> = const { Cell::new(false) };
}

static QUIET_HOOK: Once = Once::new();

fn install_quiet_hook() {
    QUIET_HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !SUPPRESS_PANIC_OUTPUT.with(Cell::get) {
                prev(info);
            }
        }));
    });
}

/// Run a plugin entry point with panic isolation. Returns the closure's
/// value, or the panic message.
///
/// The closure is `AssertUnwindSafe`: the router owns every structure a
/// plugin call can touch (the mbuf, the flow record's soft-state slot,
/// the instance's interior state) and on a caught panic either discards
/// the packet or quarantines the instance — torn intermediate state never
/// re-enters the data path.
pub(crate) fn run_isolated<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    install_quiet_hook();
    // Save-and-restore, not set-and-clear: these calls nest (every plugin
    // gate call inside a supervised shard loop is itself isolated), and a
    // plain `set(false)` on inner exit would strip the outer frame's
    // suppression — an injected shard kill would then symbolize a full
    // backtrace, parking the dying thread on the CPU for seconds before
    // the dispatcher can detect the death and settle its accounting.
    let prev = SUPPRESS_PANIC_OUTPUT.with(|s| s.replace(true));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    SUPPRESS_PANIC_OUTPUT.with(|s| s.set(prev));
    result.map_err(|payload| {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plugin::{PacketCtx, PluginAction, PluginInstance};
    use rp_packet::Mbuf;

    struct Null;
    impl PluginInstance for Null {
        fn handle_packet(&self, _m: &mut Mbuf, _c: &mut PacketCtx<'_>) -> PluginAction {
            PluginAction::Continue
        }
    }

    fn inst() -> InstanceRef {
        Arc::new(Null)
    }

    fn policy() -> FaultPolicy {
        FaultPolicy {
            degrade_after: 1,
            quarantine_after: 3,
            restart_backoff_ns: 1000,
            restart_backoff_cap_ns: 4000,
            max_restarts: 2,
            ..FaultPolicy::default()
        }
    }

    #[test]
    fn run_isolated_catches_panics() {
        assert_eq!(run_isolated(|| 7), Ok(7));
        let err = run_isolated(|| -> u32 { panic!("boom {}", 3) }).unwrap_err();
        assert!(err.contains("boom 3"), "{err}");
        let err = run_isolated(|| -> u32 { panic!("static") }).unwrap_err();
        assert_eq!(err, "static");
    }

    #[test]
    fn health_machine_degrade_then_quarantine() {
        let mut sup = Supervisor::new(policy());
        let i = inst();
        sup.track("p", InstanceId(0), "", &i);
        let k = FaultKind::Panic("x".into());
        let v1 = sup.record_fault(&i, &k);
        assert_eq!(v1.health, HealthState::Degraded);
        assert!(!v1.newly_quarantined);
        let v2 = sup.record_fault(&i, &k);
        assert_eq!(v2.health, HealthState::Degraded);
        let v3 = sup.record_fault(&i, &k);
        assert_eq!(v3.health, HealthState::Quarantined);
        assert!(v3.newly_quarantined);
        // Further faults do not re-trigger the quarantine edge.
        let v4 = sup.record_fault(&i, &k);
        assert!(!v4.newly_quarantined);
        assert!(sup.is_quarantined(&i));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut sup = Supervisor::new(policy());
        let i = inst();
        sup.track("p", InstanceId(0), "cfg", &i);
        assert_eq!(sup.schedule_restart(&i, 0), Some(1000));
        // Doubled to 2000, then capped at 4000.
        assert_eq!(sup.schedule_restart(&i, 0), Some(2000));
        assert_eq!(sup.schedule_restart(&i, 0), Some(4000));
        assert_eq!(sup.schedule_restart(&i, 0), Some(4000));
        assert!(sup.restart_due(4000));
    }

    #[test]
    fn untracked_instances_not_restartable() {
        let mut sup = Supervisor::new(policy());
        let i = inst();
        sup.record_fault(&i, &FaultKind::Panic("x".into()));
        assert_eq!(sup.schedule_restart(&i, 0), None);
        let reports = sup.reports();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].plugin, "(untracked)");
    }

    #[test]
    fn restart_ticket_lifecycle() {
        let mut sup = Supervisor::new(policy());
        let i = inst();
        sup.track("p", InstanceId(0), "k=v", &i);
        for _ in 0..3 {
            sup.record_fault(&i, &FaultKind::Panic("x".into()));
        }
        sup.schedule_restart(&i, 100).unwrap();
        assert!(!sup.restart_due(500));
        assert!(sup.restart_due(1100));
        let due = sup.take_due(1100);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].plugin, "p");
        assert_eq!(due[0].config, "k=v");
        let fresh = inst();
        sup.complete_restart("p", InstanceId(0), InstanceId(1), &fresh, Vec::new());
        assert_eq!(sup.health_of(&fresh), Some(HealthState::Healthy));
        let r = &sup.reports()[0];
        assert_eq!(r.restarts, 1);
        assert_eq!(r.faults, 0);
        assert_eq!(r.total_faults, 3);
    }

    #[test]
    fn max_restarts_enforced() {
        let mut sup = Supervisor::new(policy()); // max_restarts = 2
        let i = inst();
        sup.track("p", InstanceId(0), "", &i);
        sup.fail_restart("p", InstanceId(0), 0);
        assert!(sup.restart_due(u64::MAX), "first failure re-arms");
        sup.take_due(u64::MAX);
        sup.fail_restart("p", InstanceId(0), 0);
        assert!(!sup.restart_due(u64::MAX), "second failure gives up");
        assert_eq!(sup.schedule_restart(&i, 0), None);
    }

    #[test]
    fn bindings_follow_unbind() {
        let mut sup = Supervisor::new(policy());
        let i = inst();
        sup.track("p", InstanceId(0), "", &i);
        let fid = rp_classifier::FilterId(9);
        sup.note_binding(&i, Gate::Firewall, FilterSpec::any(), fid);
        sup.note_binding(
            &i,
            Gate::Stats,
            FilterSpec::any(),
            rp_classifier::FilterId(10),
        );
        sup.note_unbinding(&i, Gate::Firewall, fid);
        for _ in 0..3 {
            sup.record_fault(&i, &FaultKind::Panic("x".into()));
        }
        sup.schedule_restart(&i, 0).unwrap();
        let due = sup.take_due(u64::MAX);
        assert_eq!(due[0].bindings.len(), 1);
        assert_eq!(due[0].bindings[0].0, Gate::Stats);
    }
}
