//! Gates: the points in the IP core "where the flow of execution branches
//! off to an instance of a plugin" (paper §3.2).
//!
//! In the paper a gate is a macro that either reads the plugin-instance
//! pointer out of the flow record addressed by the packet's FIX (the fast
//! path) or calls the AIU (first gate / uncached flow). Here the same
//! logic lives in [`crate::router::Router::at_gate`]; this module defines
//! the gate identifiers and ordering.

use std::fmt;

/// The gates of this router, in data-path order. Each maps to a filter
/// table in the AIU and to one plugin type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(usize)]
pub enum Gate {
    /// Firewall / policy filtering, first thing after reception.
    Firewall = 0,
    /// IPv6 hop-by-hop option processing.
    Ipv6Options = 1,
    /// IP security (AH verification, ESP decapsulation or encapsulation).
    IpSecurity = 2,
    /// Flow-aware routing (L4 switching); falls back to the core routing
    /// table when unbound.
    Routing = 3,
    /// Statistics gathering / monitoring.
    Stats = 4,
    /// Packet scheduling on the egress interface.
    Scheduling = 5,
}

/// Number of gates (the AIU is built with this many filter tables).
pub const GATE_COUNT: usize = 6;

/// All gates in data-path order.
pub const ALL_GATES: [Gate; GATE_COUNT] = [
    Gate::Firewall,
    Gate::Ipv6Options,
    Gate::IpSecurity,
    Gate::Routing,
    Gate::Stats,
    Gate::Scheduling,
];

impl Gate {
    /// The gate's index into AIU tables and flow-record binding arrays.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Gate from its index.
    pub fn from_index(i: usize) -> Option<Gate> {
        ALL_GATES.get(i).copied()
    }

    /// Parse a gate name (as used in `pmgr` commands).
    pub fn parse(s: &str) -> Option<Gate> {
        match s.to_ascii_lowercase().as_str() {
            "firewall" | "fw" => Some(Gate::Firewall),
            "ipv6opts" | "opts" | "options" => Some(Gate::Ipv6Options),
            "ipsec" | "security" | "sec" => Some(Gate::IpSecurity),
            "routing" | "route" => Some(Gate::Routing),
            "stats" | "monitor" => Some(Gate::Stats),
            "sched" | "scheduling" => Some(Gate::Scheduling),
            _ => None,
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Gate::Firewall => "firewall",
            Gate::Ipv6Options => "ipv6opts",
            Gate::IpSecurity => "ipsec",
            Gate::Routing => "routing",
            Gate::Stats => "stats",
            Gate::Scheduling => "sched",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for (i, g) in ALL_GATES.iter().enumerate() {
            assert_eq!(g.index(), i);
            assert_eq!(Gate::from_index(i), Some(*g));
        }
        assert_eq!(Gate::from_index(GATE_COUNT), None);
    }

    #[test]
    fn parse_and_display() {
        for g in ALL_GATES {
            assert_eq!(Gate::parse(&g.to_string()), Some(g));
        }
        assert_eq!(Gate::parse("SEC"), Some(Gate::IpSecurity));
        assert_eq!(Gate::parse("bogus"), None);
    }

    #[test]
    fn scheduling_is_last() {
        assert_eq!(ALL_GATES[GATE_COUNT - 1], Gate::Scheduling);
    }
}
