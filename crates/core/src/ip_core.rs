//! The streamlined IPv4/IPv6 core (paper §3.1): "the (few) components
//! required for packet processing which do not come in the form of
//! dynamically loadable modules" — header validation, TTL / hop-limit
//! handling, and the routing-table types. The gate traversal that stitches
//! plugins into this path lives in [`crate::router`].

use rp_lpm::{LpmTable, PatriciaTable, Prefix};
use rp_packet::ipv4::Ipv4Packet;
use rp_packet::ipv6::Ipv6Packet;
use rp_packet::mbuf::IfIndex;
use rp_packet::{IpVersion, Mbuf};
use std::net::IpAddr;

use crate::gate::Gate;

/// Why a packet was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// Unparseable or version-inconsistent header.
    Malformed,
    /// IPv4 header checksum failed.
    BadChecksum,
    /// TTL / hop limit expired in transit.
    TtlExpired,
    /// No route to the destination.
    NoRoute,
    /// A plugin instance dropped it (firewall, RED, IPsec failure…).
    Plugin(Gate),
    /// The egress queue refused it.
    QueueFull,
    /// Larger than the egress MTU and cannot be fragmented (IPv6, or the
    /// IPv4 don't-fragment bit is set).
    TooBig,
    /// A plugin instance faulted (panicked or blew its packet budget)
    /// while holding the packet; the supervisor counted the fault and
    /// dropped the packet rather than forwarding possibly-torn state.
    PluginFault(Gate),
    /// The data path found its own state inconsistent (e.g. a flow record
    /// vanished between classification and the gate call). Counted, never
    /// a panic.
    Internal,
    /// Shed at the dispatcher of a parallel data plane: the owning
    /// shard's ingress FIFO stayed full past the bounded-wait budget.
    /// The shard is healthy but oversubscribed; loss is counted here
    /// instead of stalling the ingress thread forever.
    ShardOverload,
    /// Shed at the dispatcher of a parallel data plane: the owning shard
    /// is dead, stalled, or awaiting restart, so the packet had no
    /// worker to go to. Also covers packets that were queued on a shard
    /// when it died (the restart accounting attributes them here —
    /// zero silent loss).
    ShardDown,
    /// Dropped at a network device's receive side before the IP core ever
    /// saw an IP packet: truncated L2 frame, non-IP ethertype, or a
    /// failed decapsulation. Counted by the I/O plane so the device-level
    /// conservation ledger (`device_rx == forwarded + Σdrops`) stays
    /// exact.
    DeviceRx,
    /// Forwarded by the data path but refused by the egress device (write
    /// error, device gone). The I/O plane re-accounts the packet from
    /// `forwarded` into this counter — the wire never carried it.
    DeviceTx,
    /// Shed because the packet was already older than the configured
    /// `max_sojourn_ns` deadline when its shard dequeued it: forwarding
    /// it would only have delivered it uselessly late while stealing
    /// service from packets that can still meet the SLO. Latency
    /// degrades gracefully (drops, not collapse) and conservation stays
    /// exact.
    DeadlineExceeded,
}

/// Final outcome of processing one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Emitted directly on the egress interface.
    Forwarded(IfIndex),
    /// Handed to the egress scheduler; will leave via `pump`.
    Queued(IfIndex),
    /// Dropped.
    Dropped(DropReason),
    /// A non-scheduling plugin took ownership (e.g. a monitor diverting a
    /// copy, or an ESP tunnel re-injecting).
    Consumed(Gate),
}

/// Data-path counters (Table 3 instrumentation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DataPathStats {
    /// Packets handed to the core.
    pub received: u64,
    /// Packets forwarded or queued for egress.
    pub forwarded: u64,
    /// Drops by reason (indexed informally; see the individual counters).
    pub dropped_malformed: u64,
    /// TTL-expired drops.
    pub dropped_ttl: u64,
    /// No-route drops.
    pub dropped_no_route: u64,
    /// Plugin-initiated drops.
    pub dropped_plugin: u64,
    /// Egress-queue drops.
    pub dropped_queue: u64,
    /// Gate invocations that called a plugin instance.
    pub plugin_calls: u64,
    /// Packets fragmented at egress.
    pub fragmented: u64,
    /// Too-big drops (DF set or IPv6 over-MTU).
    pub dropped_too_big: u64,
    /// Plugin faults observed by the supervisor (panics and packet-budget
    /// overruns, across all instances).
    pub plugin_faults: u64,
    /// Packets dropped because the instance processing them faulted.
    pub dropped_fault: u64,
    /// Packets dropped on internal data-path inconsistencies.
    pub dropped_internal: u64,
    /// Packets shed at the dispatcher because the owning shard's ingress
    /// FIFO stayed full past the bounded-wait budget (parallel plane
    /// only; always 0 on a single router).
    pub dropped_shard_overload: u64,
    /// Packets shed at the dispatcher because the owning shard was dead,
    /// stalled, or awaiting restart — including packets that were queued
    /// on a shard when it died (parallel plane only).
    pub dropped_shard_down: u64,
    /// Frames dropped at a device's receive side before IP processing
    /// (truncated / non-IP L2 frames; I/O plane only, always 0 without
    /// bound devices).
    pub dropped_device_rx: u64,
    /// Forwarded packets the egress device refused to transmit (I/O plane
    /// only).
    pub dropped_device_tx: u64,
    /// Packets shed because they were already past the configured
    /// end-to-end latency deadline (`max_sojourn_ns`) when their shard
    /// dequeued them (always 0 unless a deadline is configured).
    pub dropped_deadline: u64,
    /// Instances moved to quarantine.
    pub plugin_quarantines: u64,
    /// Successful supervised instance restarts.
    pub plugin_restarts: u64,
}

impl DataPathStats {
    /// Fold another data path's counters into this one. A sharded data
    /// plane runs one `Router` per worker; control-plane reporting sums
    /// them into the view a single data path would show.
    pub fn absorb(&mut self, other: &DataPathStats) {
        self.received += other.received;
        self.forwarded += other.forwarded;
        self.dropped_malformed += other.dropped_malformed;
        self.dropped_ttl += other.dropped_ttl;
        self.dropped_no_route += other.dropped_no_route;
        self.dropped_plugin += other.dropped_plugin;
        self.dropped_queue += other.dropped_queue;
        self.plugin_calls += other.plugin_calls;
        self.fragmented += other.fragmented;
        self.dropped_too_big += other.dropped_too_big;
        self.plugin_faults += other.plugin_faults;
        self.dropped_fault += other.dropped_fault;
        self.dropped_internal += other.dropped_internal;
        self.dropped_shard_overload += other.dropped_shard_overload;
        self.dropped_shard_down += other.dropped_shard_down;
        self.dropped_device_rx += other.dropped_device_rx;
        self.dropped_device_tx += other.dropped_device_tx;
        self.dropped_deadline += other.dropped_deadline;
        self.plugin_quarantines += other.plugin_quarantines;
        self.plugin_restarts += other.plugin_restarts;
    }

    /// Total drops across every reason counter.
    pub fn dropped_total(&self) -> u64 {
        self.dropped_malformed
            + self.dropped_ttl
            + self.dropped_no_route
            + self.dropped_plugin
            + self.dropped_queue
            + self.dropped_too_big
            + self.dropped_fault
            + self.dropped_internal
            + self.dropped_shard_overload
            + self.dropped_shard_down
            + self.dropped_device_rx
            + self.dropped_device_tx
            + self.dropped_deadline
    }
}

/// Validate the IP header and decrement TTL / hop limit in place.
/// Returns the version on success.
pub fn validate_and_age(
    mbuf: &mut Mbuf,
    verify_v4_checksum: bool,
) -> Result<IpVersion, DropReason> {
    let version = IpVersion::of_packet(mbuf.data()).map_err(|_| DropReason::Malformed)?;
    match version {
        IpVersion::V4 => {
            let mut pkt =
                Ipv4Packet::new_checked(mbuf.data_mut()).map_err(|_| DropReason::Malformed)?;
            if verify_v4_checksum && !pkt.verify_checksum() {
                return Err(DropReason::BadChecksum);
            }
            let ttl = pkt.decrement_ttl().map_err(|_| DropReason::TtlExpired)?;
            if ttl == 0 {
                return Err(DropReason::TtlExpired);
            }
        }
        IpVersion::V6 => {
            let mut pkt =
                Ipv6Packet::new_checked(mbuf.data_mut()).map_err(|_| DropReason::Malformed)?;
            let hl = pkt
                .decrement_hop_limit()
                .map_err(|_| DropReason::TtlExpired)?;
            if hl == 0 {
                return Err(DropReason::TtlExpired);
            }
        }
    }
    Ok(version)
}

/// A routing-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteEntry {
    /// Egress interface.
    pub tx_if: IfIndex,
}

/// Hot-prefix FIB cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FibCacheStats {
    /// Cached lookups answered from the exact-match array.
    pub hits: u64,
    /// Cached lookups that fell through to the full trie.
    pub misses: u64,
    /// Cache entries cleared because a route insert/withdraw covered
    /// their address (the hidden-prefix hazard).
    pub invalidations: u64,
}

/// Default FIB-cache size (slots; 2-way set-associative, one address
/// each). Sized so a few hundred concurrently-hot destinations rarely
/// collide; at ~40 bytes a slot the whole cache is still well under L2.
pub const FIB_CACHE_SLOTS: usize = 8192;

/// Dual-stack longest-prefix-match routing table (PATRICIA-backed, as in
/// the BSD kernel the paper modifies), fronted by a small 2-way
/// set-associative exact-match cache over *addresses* (not prefixes). Internet traffic is
/// heavy-tailed — a few popular destinations dominate — so a tiny cache
/// absorbs most lookups without walking the trie.
///
/// The correctness hazard of FIB caching is the **hidden prefix**: a cached
/// answer for address `a` embeds the best-matching prefix at fill time, so
/// inserting a *more specific* route covering `a` (or withdrawing the one
/// the answer came from) silently invalidates it. [`RoutingTable::add`] and
/// [`RoutingTable::remove`] therefore scan the cache and clear every entry
/// whose address the changed prefix matches — the conservative form of the
/// invalidation rule from the FIB-caching literature. The scan is skipped
/// entirely while the cache is empty, so bulk route loading stays linear.
pub struct RoutingTable {
    v4: PatriciaTable<u32, RouteEntry>,
    v6: PatriciaTable<u128, RouteEntry>,
    /// Two-way set-associative address cache (consecutive slot pairs form
    /// a set, MRU first); empty vector = caching disabled.
    cache: Vec<Option<(IpAddr, RouteEntry)>>,
    /// Occupied cache slots (0 ⇒ invalidation scans can be skipped).
    cache_live: usize,
    cache_stats: FibCacheStats,
}

impl Default for RoutingTable {
    fn default() -> Self {
        Self::new()
    }
}

impl RoutingTable {
    /// Empty table with the default hot-prefix cache.
    pub fn new() -> Self {
        Self::with_cache(FIB_CACHE_SLOTS)
    }

    /// Empty table with a `slots`-entry FIB cache (rounded up to a power
    /// of two; 0 disables caching — [`RoutingTable::lookup_cached`] then
    /// degenerates to the plain trie walk).
    pub fn with_cache(slots: usize) -> Self {
        let slots = if slots == 0 {
            0
        } else {
            slots.next_power_of_two().max(2)
        };
        RoutingTable {
            v4: PatriciaTable::new(),
            v6: PatriciaTable::new(),
            cache: vec![None; slots],
            cache_live: 0,
            cache_stats: FibCacheStats::default(),
        }
    }

    /// Base slot of an address's 2-way set (cache must be non-empty).
    /// The set is `{base, base + 1}` with the MRU entry kept at `base`;
    /// two-way associativity stops a pair of hot destinations that hash
    /// alike from evicting each other on every alternate packet, which
    /// is the classic direct-mapped failure mode.
    fn cache_set(&self, addr: IpAddr) -> usize {
        let h = match addr {
            IpAddr::V4(a) => u64::from(u32::from(a)).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            IpAddr::V6(a) => {
                let v = u128::from(a);
                ((v as u64) ^ ((v >> 64) as u64)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            }
        };
        ((h >> 32) as usize & (self.cache.len() / 2 - 1)) * 2
    }

    /// Clear every cache entry whose address the changed prefix matches.
    /// No-op while the cache is empty, so bulk loads never pay the scan.
    fn invalidate_covered(&mut self, addr: IpAddr, prefix_len: u8) {
        if self.cache_live == 0 {
            return;
        }
        let mut cleared = 0usize;
        match addr {
            IpAddr::V4(a) => {
                let p = Prefix::new(u32::from(a), prefix_len);
                for slot in self.cache.iter_mut() {
                    if let Some((IpAddr::V4(ca), _)) = slot {
                        if p.matches(u32::from(*ca)) {
                            *slot = None;
                            cleared += 1;
                        }
                    }
                }
            }
            IpAddr::V6(a) => {
                let p = Prefix::new(u128::from(a), prefix_len);
                for slot in self.cache.iter_mut() {
                    if let Some((IpAddr::V6(ca), _)) = slot {
                        if p.matches(u128::from(*ca)) {
                            *slot = None;
                            cleared += 1;
                        }
                    }
                }
            }
        }
        self.cache_live -= cleared;
        self.cache_stats.invalidations += cleared as u64;
    }

    /// Add a route for an address prefix.
    pub fn add(&mut self, addr: IpAddr, prefix_len: u8, entry: RouteEntry) {
        match addr {
            IpAddr::V4(a) => {
                self.v4.insert(Prefix::new(u32::from(a), prefix_len), entry);
            }
            IpAddr::V6(a) => {
                self.v6
                    .insert(Prefix::new(u128::from(a), prefix_len), entry);
            }
        }
        self.invalidate_covered(addr, prefix_len);
    }

    /// Remove a route.
    pub fn remove(&mut self, addr: IpAddr, prefix_len: u8) -> Option<RouteEntry> {
        let out = match addr {
            IpAddr::V4(a) => self.v4.remove(Prefix::new(u32::from(a), prefix_len)),
            IpAddr::V6(a) => self.v6.remove(Prefix::new(u128::from(a), prefix_len)),
        };
        if out.is_some() {
            self.invalidate_covered(addr, prefix_len);
        }
        out
    }

    /// Longest-prefix-match lookup against the full trie, bypassing the
    /// cache. The uncached reference path — differential tests compare
    /// [`RoutingTable::lookup_cached`] against this.
    pub fn lookup(&self, addr: IpAddr) -> Option<RouteEntry> {
        match addr {
            IpAddr::V4(a) => self.v4.lookup(u32::from(a)).map(|(e, _)| *e),
            IpAddr::V6(a) => self.v6.lookup(u128::from(a)).map(|(e, _)| *e),
        }
    }

    /// Longest-prefix-match lookup through the hot-prefix cache. Positive
    /// answers are cached (2-way set-associative, LRU-of-two evicted);
    /// negative answers
    /// are not, so a later route add needs no negative invalidation.
    pub fn lookup_cached(&mut self, addr: IpAddr) -> Option<RouteEntry> {
        if self.cache.is_empty() {
            return self.lookup(addr);
        }
        let s = self.cache_set(addr);
        if let Some((ca, e)) = self.cache[s] {
            if ca == addr {
                self.cache_stats.hits += 1;
                return Some(e);
            }
        }
        if let Some((ca, e)) = self.cache[s + 1] {
            if ca == addr {
                self.cache_stats.hits += 1;
                self.cache.swap(s, s + 1);
                return Some(e);
            }
        }
        self.cache_stats.misses += 1;
        let out = self.lookup(addr);
        if let Some(e) = out {
            // New entry becomes the set's MRU; the old MRU shifts to the
            // LRU way, evicting whatever was there.
            if self.cache[s].is_none() {
                self.cache[s] = Some((addr, e));
                self.cache_live += 1;
            } else {
                if self.cache[s + 1].is_none() {
                    self.cache_live += 1;
                }
                self.cache[s + 1] = self.cache[s].replace((addr, e));
            }
        }
        out
    }

    /// FIB-cache counters.
    pub fn fib_cache_stats(&self) -> FibCacheStats {
        self.cache_stats
    }

    /// Drop every cached answer (counters are kept).
    pub fn flush_cache(&mut self) {
        for slot in self.cache.iter_mut() {
            *slot = None;
        }
        self.cache_live = 0;
    }

    /// Repack both tries breadth-first for cache-line adjacency (see
    /// [`PatriciaTable::repack`]). Call after bulk route loading; lookups
    /// are unaffected semantically.
    pub fn optimize(&mut self) {
        self.v4.repack();
        self.v6.repack();
    }

    /// Number of routes (both families).
    pub fn len(&self) -> usize {
        self.v4.len() + self.v6.len()
    }

    /// True when no routes are installed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Fragment an IPv4 packet to fit `mtu` (RFC 791 §3.2). Returns the
/// fragment buffers in order. Fails with [`DropReason::TooBig`] when the
/// don't-fragment bit is set; IPv6 packets are never fragmented in
/// transit (the caller drops and would emit Packet Too Big).
pub fn fragment_v4(data: &[u8], mtu: usize) -> Result<Vec<Vec<u8>>, DropReason> {
    fragment_v4_with(data, mtu, &mut Vec::new)
}

/// [`fragment_v4`] with caller-supplied fragment buffers: `acquire`
/// yields an empty `Vec<u8>` for each fragment (the router passes its
/// mbuf pool's `buffer`, making fragment emission allocation-free once
/// the pool is warm; plain callers pass `Vec::new`).
pub fn fragment_v4_with(
    data: &[u8],
    mtu: usize,
    acquire: &mut dyn FnMut() -> Vec<u8>,
) -> Result<Vec<Vec<u8>>, DropReason> {
    use rp_packet::ipv4::Ipv4Packet;
    use rp_packet::ipv4_opts::{build_options, Ipv4Option, OptionIter, OptionKind};
    let pkt = Ipv4Packet::new_checked(data).map_err(|_| DropReason::Malformed)?;
    if data.len() <= mtu {
        let mut whole = acquire();
        whole.extend_from_slice(data);
        return Ok(vec![whole]);
    }
    if pkt.dont_frag() {
        return Err(DropReason::TooBig);
    }
    let hdr_len = pkt.header_len();
    // Options for fragment 1 = all; for the rest = copied-only.
    let copied: Vec<(OptionKind, Vec<u8>)> = OptionIter::from_slice(pkt.options())
        .filter_map(|o| o.ok())
        .filter(|o: &Ipv4Option<'_>| o.kind.copied())
        .map(|o| (o.kind, o.data.to_vec()))
        .collect();
    let copied_refs: Vec<(OptionKind, &[u8])> =
        copied.iter().map(|(k, d)| (*k, d.as_slice())).collect();
    let later_opts = build_options(&copied_refs);
    let later_hdr_len = 20 + later_opts.len();

    let payload = pkt.payload();
    let base_offset = usize::from(pkt.frag_offset()) * 8;
    let orig_mf = pkt.more_frags();

    let mut frags = Vec::new();
    let mut consumed = 0usize;
    while consumed < payload.len() {
        let first = consumed == 0;
        let this_hdr = if first { hdr_len } else { later_hdr_len };
        let room = ((mtu - this_hdr) / 8) * 8;
        if room == 0 {
            return Err(DropReason::TooBig);
        }
        let take = room.min(payload.len() - consumed);
        let last = consumed + take == payload.len();
        let mut buf = acquire();
        buf.reserve(this_hdr + take);
        buf.extend_from_slice(&data[..20]);
        if first {
            buf.extend_from_slice(pkt.options());
        } else {
            buf.extend_from_slice(&later_opts);
        }
        buf.extend_from_slice(&payload[consumed..consumed + take]);
        {
            let mut f = Ipv4Packet::new_unchecked(&mut buf[..]);
            // IHL for this fragment.
            let ihl = (this_hdr / 4) as u8;
            f.set_total_len((this_hdr + take) as u16);
            let offset_units = ((base_offset + consumed) / 8) as u16;
            let mf = if last && !orig_mf { 0u16 } else { 0x2000 };
            let word = mf | (offset_units & 0x1FFF);
            let bytes = f.into_inner();
            bytes[0] = 0x40 | ihl;
            bytes[6] = (word >> 8) as u8;
            bytes[7] = word as u8;
        }
        let mut f = Ipv4Packet::new_unchecked(&mut buf[..]);
        f.fill_checksum();
        frags.push(buf);
        consumed += take;
    }
    Ok(frags)
}

/// Build an ICMP / ICMPv6 Time Exceeded message quoting `original`,
/// sourced from `router_addr` and addressed to the original sender.
/// Returns `None` when the original is unparsable or the address
/// families mismatch.
pub fn build_time_exceeded(router_addr: IpAddr, original: &[u8]) -> Option<Vec<u8>> {
    use rp_packet::checksum;
    use rp_packet::icmp;
    use rp_packet::ipv4::{Ipv4Packet as V4, Ipv4Repr};
    use rp_packet::ipv6::{Ipv6Packet as V6, Ipv6Repr};
    use rp_packet::Protocol;

    match (IpVersion::of_packet(original).ok()?, router_addr) {
        (IpVersion::V4, IpAddr::V4(src)) => {
            let orig = V4::new_checked(original).ok()?;
            let body = icmp::time_exceeded(original);
            let repr = Ipv4Repr {
                src_addr: src,
                dst_addr: orig.src_addr(),
                protocol: Protocol::Icmp,
                payload_len: body.len(),
                ttl: 64,
                tos: 0,
            };
            let mut buf = vec![0u8; repr.buffer_len() + body.len()];
            let mut pkt = V4::new_unchecked(&mut buf[..]);
            repr.emit(&mut pkt);
            pkt.payload_mut().copy_from_slice(&body);
            Some(buf)
        }
        (IpVersion::V6, IpAddr::V6(src)) => {
            let orig = V6::new_checked(original).ok()?;
            // ICMPv6 Time Exceeded: type 3, code 0 (hop limit exceeded),
            // 4 reserved bytes, then as much of the packet as fits.
            let quote = &original[..original.len().min(1232 - 8)];
            let mut body = vec![0u8; 8 + quote.len()];
            body[0] = 3;
            body[8..].copy_from_slice(quote);
            let repr = Ipv6Repr {
                src_addr: src,
                dst_addr: orig.src_addr(),
                next_header: Protocol::Icmpv6,
                payload_len: body.len(),
                hop_limit: 64,
                traffic_class: 0,
                flow_label: 0,
            };
            // ICMPv6 checksum over pseudo-header + body.
            let mut c = checksum::pseudo_header_v6(
                src,
                orig.src_addr(),
                Protocol::Icmpv6,
                body.len() as u32,
            );
            c.add_bytes(&body);
            let sum = c.finish();
            body[2..4].copy_from_slice(&sum.to_be_bytes());
            let mut buf = vec![0u8; repr.buffer_len() + body.len()];
            let mut pkt = V6::new_unchecked(&mut buf[..]);
            repr.emit(&mut pkt);
            pkt.payload_mut().copy_from_slice(&body);
            Some(buf)
        }
        _ => None,
    }
}

/// Destination address of a packet (for the core routing step).
pub fn dst_of(mbuf: &Mbuf) -> Result<IpAddr, DropReason> {
    match IpVersion::of_packet(mbuf.data()).map_err(|_| DropReason::Malformed)? {
        IpVersion::V4 => Ok(IpAddr::V4(
            Ipv4Packet::new_checked(mbuf.data())
                .map_err(|_| DropReason::Malformed)?
                .dst_addr(),
        )),
        IpVersion::V6 => Ok(IpAddr::V6(
            Ipv6Packet::new_checked(mbuf.data())
                .map_err(|_| DropReason::Malformed)?
                .dst_addr(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_packet::builder::PacketSpec;
    use std::net::{Ipv4Addr, Ipv6Addr};

    fn v4(a: u8) -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(10, 0, 0, a))
    }

    fn v6(a: u16) -> IpAddr {
        IpAddr::V6(Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, a))
    }

    #[test]
    fn age_v4_updates_checksum() {
        let buf = PacketSpec::udp(v4(1), v4(2), 1, 2, 16).build();
        let mut m = Mbuf::new(buf, 0);
        assert_eq!(validate_and_age(&mut m, true).unwrap(), IpVersion::V4);
        let pkt = Ipv4Packet::new_checked(m.data()).unwrap();
        assert_eq!(pkt.ttl(), 63);
        assert!(pkt.verify_checksum());
    }

    #[test]
    fn ttl_expiry_detected() {
        let mut spec = PacketSpec::udp(v4(1), v4(2), 1, 2, 0);
        spec.ttl = 1;
        let mut m = Mbuf::new(spec.build(), 0);
        // Decrement 1 → 0: must not forward.
        assert_eq!(
            validate_and_age(&mut m, true).unwrap_err(),
            DropReason::TtlExpired
        );
    }

    #[test]
    fn corrupt_checksum_rejected() {
        let mut buf = PacketSpec::udp(v4(1), v4(2), 1, 2, 0).build();
        buf[8] ^= 0xFF; // clobber TTL without fixing checksum
        let mut m = Mbuf::new(buf, 0);
        assert_eq!(
            validate_and_age(&mut m, true).unwrap_err(),
            DropReason::BadChecksum
        );
        // With verification off (the paper's kernel trusts its NICs), it
        // ages fine.
        let mut buf2 = PacketSpec::udp(v4(1), v4(2), 1, 2, 0).build();
        buf2[10] ^= 0x01;
        let mut m2 = Mbuf::new(buf2, 0);
        assert!(validate_and_age(&mut m2, false).is_ok());
    }

    #[test]
    fn age_v6() {
        let buf = PacketSpec::udp(v6(1), v6(2), 1, 2, 16).build();
        let mut m = Mbuf::new(buf, 0);
        assert_eq!(validate_and_age(&mut m, true).unwrap(), IpVersion::V6);
        let pkt = Ipv6Packet::new_checked(m.data()).unwrap();
        assert_eq!(pkt.hop_limit(), 63);
    }

    #[test]
    fn garbage_malformed() {
        let mut m = Mbuf::new(vec![0xFF; 10], 0);
        assert_eq!(
            validate_and_age(&mut m, true).unwrap_err(),
            DropReason::Malformed
        );
    }

    #[test]
    fn routing_table_lpm() {
        let mut rt = RoutingTable::new();
        rt.add(v4(0), 8, RouteEntry { tx_if: 1 });
        rt.add(v4(0), 24, RouteEntry { tx_if: 2 });
        rt.add(v6(0), 32, RouteEntry { tx_if: 3 });
        assert_eq!(rt.lookup(v4(5)).unwrap().tx_if, 2);
        assert_eq!(
            rt.lookup(IpAddr::V4(Ipv4Addr::new(10, 9, 9, 9)))
                .unwrap()
                .tx_if,
            1
        );
        assert_eq!(rt.lookup(v6(9)).unwrap().tx_if, 3);
        assert!(rt.lookup(IpAddr::V4(Ipv4Addr::new(11, 0, 0, 1))).is_none());
        assert_eq!(rt.len(), 3);
        assert_eq!(rt.remove(v4(0), 24).unwrap().tx_if, 2);
        assert_eq!(rt.lookup(v4(5)).unwrap().tx_if, 1);
    }

    #[test]
    fn fib_cache_hits_and_counts() {
        let mut rt = RoutingTable::new();
        rt.add(v4(0), 8, RouteEntry { tx_if: 1 });
        assert_eq!(rt.lookup_cached(v4(5)).unwrap().tx_if, 1);
        assert_eq!(rt.lookup_cached(v4(5)).unwrap().tx_if, 1);
        let s = rt.fib_cache_stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        // Negative lookups are not cached: both probes miss.
        assert!(rt
            .lookup_cached(IpAddr::V4(Ipv4Addr::new(11, 0, 0, 1)))
            .is_none());
        assert!(rt
            .lookup_cached(IpAddr::V4(Ipv4Addr::new(11, 0, 0, 1)))
            .is_none());
        assert_eq!(rt.fib_cache_stats().misses, 3);
    }

    #[test]
    fn fib_cache_hidden_prefix_invalidation() {
        let mut rt = RoutingTable::new();
        rt.add(v4(0), 8, RouteEntry { tx_if: 1 });
        // Warm the cache through the /8.
        assert_eq!(rt.lookup_cached(v4(5)).unwrap().tx_if, 1);
        assert_eq!(rt.lookup_cached(v4(5)).unwrap().tx_if, 1);
        // A more specific route covering the cached address must evict the
        // stale answer (the hidden-prefix hazard).
        rt.add(v4(0), 24, RouteEntry { tx_if: 2 });
        assert!(rt.fib_cache_stats().invalidations >= 1);
        assert_eq!(rt.lookup_cached(v4(5)).unwrap().tx_if, 2);
        // Withdrawing it must fall back to the /8, not the cached /24.
        rt.remove(v4(0), 24);
        assert_eq!(rt.lookup_cached(v4(5)).unwrap().tx_if, 1);
        // Removing a route that does not exist invalidates nothing.
        let inv = rt.fib_cache_stats().invalidations;
        assert!(rt.remove(v4(0), 24).is_none());
        assert_eq!(rt.fib_cache_stats().invalidations, inv);
    }

    #[test]
    fn fib_cache_disabled_matches_reference() {
        let mut rt = RoutingTable::with_cache(0);
        rt.add(v4(0), 8, RouteEntry { tx_if: 1 });
        assert_eq!(rt.lookup_cached(v4(5)).unwrap().tx_if, 1);
        let s = rt.fib_cache_stats();
        assert_eq!((s.hits, s.misses, s.invalidations), (0, 0, 0));
    }

    #[test]
    fn fib_cached_differential_with_route_churn() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(4242);
        let mut cached = RoutingTable::with_cache(64); // tiny → heavy conflict traffic
        let mut plain = RoutingTable::with_cache(0);
        for step in 0..4000u32 {
            match rng.gen_range(0..10) {
                0..=2 => {
                    let a = IpAddr::V4(Ipv4Addr::from(rng.gen::<u32>() & 0x0F0F_FFFF));
                    let len = rng.gen_range(0..=32);
                    let e = RouteEntry { tx_if: step % 7 };
                    cached.add(a, len, e);
                    plain.add(a, len, e);
                }
                3 => {
                    let a = IpAddr::V4(Ipv4Addr::from(rng.gen::<u32>() & 0x0F0F_FFFF));
                    let len = rng.gen_range(0..=32);
                    assert_eq!(cached.remove(a, len), plain.remove(a, len));
                }
                _ => {
                    let a = IpAddr::V4(Ipv4Addr::from(rng.gen::<u32>() & 0x0F0F_FFFF));
                    // Probe twice: the second lookup exercises the hit path
                    // whenever the first cached a positive answer.
                    assert_eq!(
                        cached.lookup_cached(a),
                        plain.lookup(a),
                        "addr {a} step {step}"
                    );
                    assert_eq!(
                        cached.lookup_cached(a),
                        plain.lookup(a),
                        "addr {a} step {step}"
                    );
                }
            }
        }
        assert!(cached.fib_cache_stats().hits > 0);
        assert!(cached.fib_cache_stats().invalidations > 0);
    }

    #[test]
    fn optimize_preserves_routes() {
        let mut rt = RoutingTable::new();
        rt.add(v4(0), 8, RouteEntry { tx_if: 1 });
        rt.add(v4(0), 24, RouteEntry { tx_if: 2 });
        rt.add(v6(0), 32, RouteEntry { tx_if: 3 });
        rt.optimize();
        assert_eq!(rt.lookup(v4(5)).unwrap().tx_if, 2);
        assert_eq!(rt.lookup(v6(9)).unwrap().tx_if, 3);
        assert_eq!(rt.len(), 3);
    }

    #[test]
    fn fragment_v4_copied_options() {
        use rp_packet::ipv4::Ipv4Packet;
        use rp_packet::ipv4_opts::{OptionIter, OptionKind};
        // Router-alert has the copied bit; record-route does not.
        let mut spec = PacketSpec::udp(v4(1), v4(2), 1, 2, 1000);
        spec.v4_options = vec![
            (OptionKind::ROUTER_ALERT.0, vec![0, 0]),
            (OptionKind::RECORD_ROUTE.0, vec![4, 0, 0, 0, 0]),
        ];
        let mut buf = spec.build();
        {
            let p = Ipv4Packet::new_unchecked(&mut buf[..]);
            let b = p.into_inner();
            b[6] &= !0x40; // clear DF
            let mut p = Ipv4Packet::new_unchecked(&mut buf[..]);
            p.fill_checksum();
        }
        let frags = fragment_v4(&buf, 400).unwrap();
        assert!(frags.len() >= 3);
        // Fragment 1 keeps both options; later fragments only the copied
        // router alert.
        let f0 = Ipv4Packet::new_checked(&frags[0][..]).unwrap();
        let kinds0: Vec<u8> = OptionIter::from_slice(f0.options())
            .map(|o| o.unwrap().kind.0)
            .collect();
        assert!(kinds0.contains(&OptionKind::ROUTER_ALERT.0));
        assert!(kinds0.contains(&OptionKind::RECORD_ROUTE.0));
        let f1 = Ipv4Packet::new_checked(&frags[1][..]).unwrap();
        let kinds1: Vec<u8> = OptionIter::from_slice(f1.options())
            .filter_map(|o| o.ok())
            .map(|o| o.kind.0)
            .filter(|k| *k != 0 && *k != 1)
            .collect();
        assert_eq!(kinds1, vec![OptionKind::ROUTER_ALERT.0]);
        for f in &frags {
            assert!(Ipv4Packet::new_checked(&f[..]).unwrap().verify_checksum());
        }
    }

    #[test]
    fn fragment_v4_under_mtu_is_identity() {
        let buf = PacketSpec::udp(v4(1), v4(2), 1, 2, 64).build();
        let frags = fragment_v4(&buf, 1500).unwrap();
        assert_eq!(frags.len(), 1);
        assert_eq!(frags[0], buf);
    }

    #[test]
    fn fragment_v4_df_refused() {
        let buf = PacketSpec::udp(v4(1), v4(2), 1, 2, 2000).build(); // DF set
        assert_eq!(fragment_v4(&buf, 600).unwrap_err(), DropReason::TooBig);
    }

    #[test]
    fn icmp_time_exceeded_v4() {
        let orig = PacketSpec::udp(v4(1), v4(2), 5, 6, 64).build();
        let reply = build_time_exceeded(v4(254), &orig).unwrap();
        let pkt = rp_packet::ipv4::Ipv4Packet::new_checked(&reply[..]).unwrap();
        assert!(pkt.verify_checksum());
        assert_eq!(pkt.src_addr(), Ipv4Addr::new(10, 0, 0, 254));
        assert_eq!(pkt.dst_addr(), Ipv4Addr::new(10, 0, 0, 1));
        let icmp = rp_packet::icmp::IcmpPacket::new_checked(pkt.payload()).unwrap();
        assert_eq!(icmp.msg_type(), 11);
        assert!(icmp.verify_checksum());
    }

    #[test]
    fn icmp_time_exceeded_v6() {
        let orig = PacketSpec::udp(v6(1), v6(2), 5, 6, 64).build();
        let reply = build_time_exceeded(v6(254), &orig).unwrap();
        let pkt = rp_packet::ipv6::Ipv6Packet::new_checked(&reply[..]).unwrap();
        assert_eq!(pkt.next_header(), rp_packet::Protocol::Icmpv6);
        assert_eq!(pkt.dst_addr().segments()[7], 1);
        // Verify ICMPv6 checksum.
        let mut c = rp_packet::checksum::pseudo_header_v6(
            pkt.src_addr(),
            pkt.dst_addr(),
            rp_packet::Protocol::Icmpv6,
            pkt.payload().len() as u32,
        );
        c.add_bytes(pkt.payload());
        assert_eq!(c.finish(), 0);
        assert_eq!(pkt.payload()[0], 3); // time exceeded
    }

    #[test]
    fn icmp_family_mismatch_none() {
        let orig = PacketSpec::udp(v4(1), v4(2), 5, 6, 8).build();
        assert!(build_time_exceeded(v6(254), &orig).is_none());
        assert!(build_time_exceeded(v4(254), &[0xFF; 4]).is_none());
    }

    #[test]
    fn dst_extraction() {
        let m = Mbuf::new(PacketSpec::udp(v4(1), v4(2), 1, 2, 0).build(), 0);
        assert_eq!(dst_of(&m).unwrap(), v4(2));
        let m = Mbuf::new(PacketSpec::udp(v6(1), v6(2), 1, 2, 0).build(), 0);
        assert_eq!(dst_of(&m).unwrap(), v6(2));
    }
}
