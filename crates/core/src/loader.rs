//! The dynamic-loading analogue of NetBSD's `modload` (paper §3.1).
//!
//! In the paper, plugins are kernel modules loaded with `modload`; on
//! load they register a callback with the PCU. A safe-Rust user-space
//! reproduction cannot `dlopen` kernel modules, so the loader models the
//! same lifecycle with **named plugin factories**: a factory is
//! "available on disk"; `load` instantiates the plugin and registers it
//! with the PCU; `unload` unregisters (refused while instances live, as
//! `modunload` would be). Factories can be added at run time, which is
//! what "third parties introduce additional plugin types once the code is
//! released" looks like in this model.

use crate::pcu::Pcu;
use crate::plugin::{Plugin, PluginError};
use std::collections::HashMap;
use std::sync::Arc;

/// A function that constructs a fresh plugin object (the module's entry
/// point). Shared (`Arc` + `Sync`) so one registry — the modules "on
/// disk" — can serve every shard of a parallel data plane: each shard
/// loads its own plugin object and instances from the same factory.
pub type PluginFactory = Arc<dyn Fn() -> Box<dyn Plugin> + Send + Sync>;

/// The module loader.
#[derive(Default)]
pub struct PluginLoader {
    factories: HashMap<String, PluginFactory>,
    loaded: Vec<String>,
}

impl PluginLoader {
    /// Empty loader.
    pub fn new() -> Self {
        Self::default()
    }

    /// Make a plugin available for loading (put the module "on disk").
    pub fn add_factory(
        &mut self,
        name: &str,
        factory: impl Fn() -> Box<dyn Plugin> + Send + Sync + 'static,
    ) -> Result<(), PluginError> {
        if self.factories.contains_key(name) {
            return Err(PluginError::Busy(format!("factory {name} already exists")));
        }
        self.factories.insert(name.to_string(), Arc::new(factory));
        Ok(())
    }

    /// A fresh loader (nothing loaded) sharing this loader's factory
    /// registry. This is how a parallel data plane hands every shard the
    /// same set of modules "on disk": the factories are shared, while each
    /// shard's load state and plugin objects stay its own.
    pub fn share_factories(&self) -> PluginLoader {
        PluginLoader {
            factories: self.factories.clone(),
            loaded: Vec::new(),
        }
    }

    /// Names available to load (sorted).
    pub fn available(&self) -> Vec<String> {
        let mut v: Vec<String> = self.factories.keys().cloned().collect();
        v.sort();
        v
    }

    /// Names currently loaded (sorted).
    pub fn loaded(&self) -> Vec<String> {
        let mut v = self.loaded.clone();
        v.sort();
        v
    }

    /// `modload`: instantiate the plugin and register its callback with
    /// the PCU.
    pub fn load(&mut self, name: &str, pcu: &mut Pcu) -> Result<(), PluginError> {
        if self.loaded.iter().any(|n| n == name) {
            return Err(PluginError::Busy(format!("plugin {name} already loaded")));
        }
        let factory = self
            .factories
            .get(name)
            .ok_or_else(|| PluginError::NoSuchPlugin(name.to_string()))?;
        let plugin = factory();
        if plugin.name() != name {
            return Err(PluginError::BadConfig(format!(
                "factory {name} built a plugin named {}",
                plugin.name()
            )));
        }
        pcu.register(plugin)?;
        self.loaded.push(name.to_string());
        Ok(())
    }

    /// `modunload`: unregister from the PCU (refused while instances
    /// live).
    pub fn unload(&mut self, name: &str, pcu: &mut Pcu) -> Result<(), PluginError> {
        if !self.loaded.iter().any(|n| n == name) {
            return Err(PluginError::NoSuchPlugin(name.to_string()));
        }
        pcu.unregister(name)?;
        self.loaded.retain(|n| n != name);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plugin::{
        InstanceRef, PacketCtx, PluginAction, PluginCode, PluginInstance, PluginType,
    };
    use rp_packet::Mbuf;
    use std::sync::Arc;

    struct Null;
    impl PluginInstance for Null {
        fn handle_packet(&self, _m: &mut Mbuf, _c: &mut PacketCtx<'_>) -> PluginAction {
            PluginAction::Continue
        }
    }
    struct P(&'static str);
    impl Plugin for P {
        fn name(&self) -> &str {
            self.0
        }
        fn code(&self) -> PluginCode {
            PluginCode::new(PluginType::STATS, 0)
        }
        fn create_instance(&mut self, _c: &str) -> Result<InstanceRef, PluginError> {
            Ok(Arc::new(Null))
        }
    }

    #[test]
    fn load_unload_cycle() {
        let mut loader = PluginLoader::new();
        let mut pcu = Pcu::new();
        loader
            .add_factory("stats", || Box::new(P("stats")))
            .unwrap();
        assert_eq!(loader.available(), vec!["stats"]);
        loader.load("stats", &mut pcu).unwrap();
        assert_eq!(loader.loaded(), vec!["stats"]);
        assert!(matches!(
            loader.load("stats", &mut pcu),
            Err(PluginError::Busy(_))
        ));
        loader.unload("stats", &mut pcu).unwrap();
        assert!(loader.loaded().is_empty());
        // Can load again after unload.
        loader.load("stats", &mut pcu).unwrap();
    }

    #[test]
    fn unload_refused_with_instances() {
        let mut loader = PluginLoader::new();
        let mut pcu = Pcu::new();
        loader
            .add_factory("stats", || Box::new(P("stats")))
            .unwrap();
        loader.load("stats", &mut pcu).unwrap();
        let (id, _) = pcu.create_instance("stats", "").unwrap();
        assert!(matches!(
            loader.unload("stats", &mut pcu),
            Err(PluginError::Busy(_))
        ));
        pcu.free_instance("stats", id).unwrap();
        loader.unload("stats", &mut pcu).unwrap();
    }

    #[test]
    fn misbehaving_factory_rejected() {
        let mut loader = PluginLoader::new();
        let mut pcu = Pcu::new();
        loader
            .add_factory("alias", || Box::new(P("other")))
            .unwrap();
        assert!(matches!(
            loader.load("alias", &mut pcu),
            Err(PluginError::BadConfig(_))
        ));
        assert!(loader.loaded().is_empty());
    }

    #[test]
    fn unknown_names() {
        let mut loader = PluginLoader::new();
        let mut pcu = Pcu::new();
        assert!(matches!(
            loader.load("nope", &mut pcu),
            Err(PluginError::NoSuchPlugin(_))
        ));
        assert!(matches!(
            loader.unload("nope", &mut pcu),
            Err(PluginError::NoSuchPlugin(_))
        ));
    }
}
