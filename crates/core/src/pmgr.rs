//! The Plugin Manager (paper §3.1): "a simple application which takes
//! arguments from the command line and translates them into calls to the
//! user-space Router Plugin Library". Here it is a command interpreter
//! over any [`ControlPlane`] — the single-threaded
//! [`Router`](crate::router::Router) or the sharded
//! [`ParallelRouter`](crate::dataplane::ParallelRouter) — used
//! interactively (the `pmgr` example binary), from configuration scripts,
//! and by the SSP daemon analogue. The command language is identical over
//! both data planes; on the parallel one every command fans out to all
//! shards and the replies are merged.
//!
//! Command language (one command per line; `#` comments):
//!
//! ```text
//! load <plugin>                      # modload
//! unload <plugin> [force]            # modunload; force frees live
//!                                    # instances and their bindings first
//! create <plugin> [k=v ...]          # create_instance → prints id
//! free <plugin> <iid>                # free_instance
//! bind <gate> <plugin> <iid> <six-tuple-filter>   # register_instance
//! unbind <gate> <plugin> <fid>       # deregister_instance
//! msg <plugin> [<iid>] <name> [args...]           # plugin-specific
//! route <addr>/<len> <ifindex>       # core routing table
//! gate <gate> on|off
//! attach <ifindex> <plugin> <iid>    # default egress scheduler
//! info                               # loaded plugins and stats
//! stats                              # data-path + flow-cache counters,
//!                                    # with a per-shard breakdown on a
//!                                    # parallel data plane
//! metrics [json]                     # merged metrics registry (gate
//!                                    # latency histograms, classification
//!                                    # outcomes, drops, interfaces), with
//!                                    # a per-shard breakdown on a
//!                                    # parallel data plane
//! trace on|off                       # toggle the event tracer
//! trace dump [n]                     # last n (default 16) trace events
//! show filters <gate>                # installed filters at a gate
//! show instances                     # live plugin instances
//! health                             # supervision state per instance
//! faults                             # fault/quarantine/restart counters
//! shards                             # shard supervision state (parallel
//!                                    # data plane only)
//! devices                            # bound network devices with rx/tx
//!                                    # packet/byte/error counters and
//!                                    # batch-size histograms (I/O plane
//!                                    # only)
//! shard restart <i>                  # rebuild shard i from the command
//!                                    # journal (operator override: skips
//!                                    # backoff, revives an exhausted
//!                                    # restart budget)
//! shard kill <i>                     # inject a panic into shard i
//!                                    # (fault-injection/testing)
//! ```

use crate::dataplane::control::ControlPlane;
use crate::gate::Gate;
use crate::message::{PluginMsg, PluginReply};
use crate::plugin::{InstanceId, PluginError};
use rp_classifier::{FilterId, FilterSpec};
use std::net::IpAddr;

/// Errors from interpreting a pmgr command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PmgrError {
    /// Could not parse the command line.
    Syntax(String),
    /// The router rejected the operation.
    Plugin(String),
}

impl std::fmt::Display for PmgrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PmgrError::Syntax(m) => write!(f, "syntax error: {m}"),
            PmgrError::Plugin(m) => write!(f, "error: {m}"),
        }
    }
}

impl std::error::Error for PmgrError {}

impl From<PluginError> for PmgrError {
    fn from(e: PluginError) -> Self {
        PmgrError::Plugin(e.to_string())
    }
}

/// Execute one pmgr command against a control plane, returning the
/// printed output line.
pub fn run_command<C: ControlPlane>(router: &mut C, line: &str) -> Result<String, PmgrError> {
    let line = line.split('#').next().unwrap_or("").trim();
    if line.is_empty() {
        return Ok(String::new());
    }
    let toks: Vec<&str> = line.split_whitespace().collect();
    match toks[0] {
        "load" => {
            let name = arg(&toks, 1)?;
            router.cp_load_plugin(name)?;
            Ok(format!("loaded {name}"))
        }
        "unload" => {
            let name = arg(&toks, 1)?;
            match toks.get(2) {
                Some(&"force") => {
                    router.cp_force_unload_plugin(name)?;
                    Ok(format!("force-unloaded {name}"))
                }
                Some(other) => Err(PmgrError::Syntax(format!(
                    "unload <plugin> [force], got {other}"
                ))),
                None => {
                    router.cp_unload_plugin(name)?;
                    Ok(format!("unloaded {name}"))
                }
            }
        }
        "create" => {
            let name = arg(&toks, 1)?;
            let config = toks[2..].join(" ");
            let reply = router.cp_send_message(name, PluginMsg::CreateInstance { config })?;
            match reply {
                PluginReply::InstanceCreated(id) => Ok(format!("{name} instance {}", id.0)),
                other => Ok(format!("{other:?}")),
            }
        }
        "free" => {
            let name = arg(&toks, 1)?;
            let id = parse_iid(arg(&toks, 2)?)?;
            router.cp_send_message(name, PluginMsg::FreeInstance { id })?;
            Ok(format!("freed {name} instance {}", id.0))
        }
        "bind" => {
            let gate = parse_gate(arg(&toks, 1)?)?;
            let name = arg(&toks, 2)?;
            let id = parse_iid(arg(&toks, 3)?)?;
            let filter_str = toks[4..].join(" ");
            let filter: FilterSpec = filter_str
                .parse()
                .map_err(|e| PmgrError::Syntax(format!("{e}")))?;
            let reply =
                router.cp_send_message(name, PluginMsg::RegisterInstance { id, gate, filter })?;
            match reply {
                PluginReply::Registered(fid) => Ok(format!("filter {}", fid.0)),
                other => Ok(format!("{other:?}")),
            }
        }
        "unbind" => {
            let gate = parse_gate(arg(&toks, 1)?)?;
            let name = arg(&toks, 2)?;
            let fid: u64 = arg(&toks, 3)?
                .parse()
                .map_err(|_| PmgrError::Syntax("bad filter id".into()))?;
            router.cp_send_message(
                name,
                PluginMsg::DeregisterInstance {
                    gate,
                    filter: FilterId(fid),
                },
            )?;
            Ok(format!("unbound filter {fid}"))
        }
        "msg" => {
            let name = arg(&toks, 1)?;
            // Optional numeric instance id in position 2.
            let (instance, rest) = match toks.get(2).and_then(|t| t.parse::<u32>().ok()) {
                Some(n) => (Some(InstanceId(n)), 3),
                None => (None, 2),
            };
            let msg_name = arg(&toks, rest)?.to_string();
            let args = toks[rest + 1..].join(" ");
            let reply = router.cp_send_message(
                name,
                PluginMsg::Custom {
                    instance,
                    name: msg_name,
                    args,
                },
            )?;
            match reply {
                PluginReply::Text(t) => Ok(t),
                other => Ok(format!("{other:?}")),
            }
        }
        "route" => {
            let spec = arg(&toks, 1)?;
            let (addr, len) = spec
                .split_once('/')
                .ok_or_else(|| PmgrError::Syntax("route <addr>/<len> <if>".into()))?;
            let addr: IpAddr = addr
                .parse()
                .map_err(|_| PmgrError::Syntax(format!("bad address {addr}")))?;
            let len: u8 = len
                .parse()
                .map_err(|_| PmgrError::Syntax(format!("bad prefix length {len}")))?;
            let tx_if: u32 = arg(&toks, 2)?
                .parse()
                .map_err(|_| PmgrError::Syntax("bad interface".into()))?;
            router.cp_add_route(addr, len, tx_if);
            Ok(format!("route {spec} → if{tx_if}"))
        }
        "gate" => {
            let gate = parse_gate(arg(&toks, 1)?)?;
            let on = match arg(&toks, 2)? {
                "on" => true,
                "off" => false,
                other => return Err(PmgrError::Syntax(format!("gate … on|off, got {other}"))),
            };
            router.cp_set_gate_enabled(gate, on);
            Ok(format!("gate {gate} {}", if on { "on" } else { "off" }))
        }
        "attach" => {
            let iface: u32 = arg(&toks, 1)?
                .parse()
                .map_err(|_| PmgrError::Syntax("bad interface".into()))?;
            let name = arg(&toks, 2)?;
            let id = parse_iid(arg(&toks, 3)?)?;
            router.cp_set_default_scheduler(iface, name, id)?;
            Ok(format!("if{iface} default scheduler = {name} {}", id.0))
        }
        "show" => match arg(&toks, 1)? {
            "filters" => {
                let gate = parse_gate(arg(&toks, 2)?)?;
                let lines = router.cp_describe_filters(gate);
                if lines.is_empty() {
                    Ok(format!("no filters at gate {gate}"))
                } else {
                    Ok(lines.join("\n"))
                }
            }
            "instances" => {
                let lines = router.cp_describe_instances();
                if lines.is_empty() {
                    Ok("no instances".to_string())
                } else {
                    Ok(lines.join("\n"))
                }
            }
            other => Err(PmgrError::Syntax(format!(
                "show filters|instances, got {other}"
            ))),
        },
        "health" => {
            let reports = router.cp_health_reports();
            if reports.is_empty() {
                return Ok("no supervised instances".to_string());
            }
            Ok(reports
                .into_iter()
                .map(|sr| {
                    let r = sr.report;
                    let mut line = match sr.shard {
                        Some(s) => format!("[shard {s}] "),
                        None => String::new(),
                    };
                    line.push_str(&format!(
                        "{} {}: {} faults={}/{} restarts={}",
                        r.plugin, r.id.0, r.health, r.faults, r.total_faults, r.restarts
                    ));
                    if let Some(at) = r.restart_at_ns {
                        line.push_str(&format!(" restart_at={at}ns"));
                    }
                    if let Some(f) = r.last_fault {
                        line.push_str(&format!(" last=\"{f}\""));
                    }
                    line
                })
                .collect::<Vec<_>>()
                .join("\n"))
        }
        "shards" => {
            let rows = router.cp_shard_status();
            if rows.is_empty() {
                return Ok("no data-plane shards (single-threaded router)".to_string());
            }
            Ok(rows
                .into_iter()
                .map(|s| {
                    let mut line = format!(
                        "shard {}: {} restarts={} sent={} processed={} shed(overload={} down={})",
                        s.shard,
                        s.health,
                        s.restarts,
                        s.sent,
                        s.processed,
                        s.shed_overload,
                        s.shed_down
                    );
                    if s.restart_pending {
                        line.push_str(" restart-pending");
                    }
                    if let Some(f) = s.last_fault {
                        line.push_str(&format!(" last=\"{f}\""));
                    }
                    line
                })
                .collect::<Vec<_>>()
                .join("\n"))
        }
        "devices" => {
            let rows = router.cp_device_rows();
            if rows.is_empty() {
                return Ok("no bound devices (data plane not under an I/O plane)".to_string());
            }
            Ok(rows
                .into_iter()
                .map(|d| {
                    let s = d.stats;
                    let mut line = format!(
                        "{} if{} [{}]: rx={}pkts/{}B (err={} drop={}) tx={}pkts/{}B (err={} drop={}) \
                         rx_batch(mean={:.1} n={}) tx_batch(mean={:.1} n={})",
                        d.name,
                        d.iface,
                        d.health,
                        s.rx_packets,
                        s.rx_bytes,
                        s.rx_errors,
                        s.rx_dropped,
                        s.tx_packets,
                        s.tx_bytes,
                        s.tx_errors,
                        s.tx_dropped,
                        s.rx_batch.mean(),
                        s.rx_batch.count,
                        s.tx_batch.mean(),
                        s.tx_batch.count,
                    );
                    if d.quarantines > 0 || d.reopens > 0 {
                        line.push_str(&format!(
                            " quarantines={} reopens={}",
                            d.quarantines, d.reopens
                        ));
                    }
                    line
                })
                .collect::<Vec<_>>()
                .join("\n"))
        }
        "shard" => {
            let verb = arg(&toks, 1)?;
            let idx: usize = arg(&toks, 2)?
                .parse()
                .map_err(|_| PmgrError::Syntax("bad shard index".into()))?;
            match verb {
                "restart" => Ok(router.cp_shard_restart(idx)?),
                "kill" => Ok(router.cp_shard_kill(idx)?),
                other => Err(PmgrError::Syntax(format!(
                    "shard restart|kill <i>, got {other}"
                ))),
            }
        }
        "faults" => {
            // Row 0 is always the merged total.
            let rows = router.cp_stats_rows();
            let s = rows.first().map(|r| r.data).unwrap_or_default();
            Ok(format!(
                "plugin_calls={} faults={} dropped_fault={} dropped_internal={} quarantines={} restarts={}",
                s.plugin_calls,
                s.plugin_faults,
                s.dropped_fault,
                s.dropped_internal,
                s.plugin_quarantines,
                s.plugin_restarts
            ))
        }
        "stats" => {
            let rows = router.cp_stats_rows();
            Ok(rows
                .into_iter()
                .map(|r| {
                    format!(
                        "{}: rx={} fwd={} dropped={} frag={} plugin_calls={} \
                         flows(live={} hits={} misses={} recycled={} allocated={})",
                        r.label,
                        r.data.received,
                        r.data.forwarded,
                        r.data.dropped_total(),
                        r.data.fragmented,
                        r.data.plugin_calls,
                        r.flows.live,
                        r.flows.hits,
                        r.flows.misses,
                        r.flows.recycled,
                        r.flows.allocated,
                    )
                })
                .collect::<Vec<_>>()
                .join("\n"))
        }
        "metrics" => {
            let rows = router.cp_metrics_rows();
            match toks.get(1) {
                Some(&"json") => {
                    // `merged` is always the total row; `shards` appears
                    // only when there is a per-shard breakdown.
                    let merged = rows
                        .first()
                        .map(|r| r.metrics.render_json())
                        .unwrap_or_else(|| "{}".to_string());
                    if rows.len() > 1 {
                        let shards = rows[1..]
                            .iter()
                            .map(|r| r.metrics.render_json())
                            .collect::<Vec<_>>()
                            .join(",");
                        Ok(format!("{{\"merged\":{merged},\"shards\":[{shards}]}}"))
                    } else {
                        Ok(format!("{{\"merged\":{merged}}}"))
                    }
                }
                Some(other) => Err(PmgrError::Syntax(format!("metrics [json], got {other}"))),
                None => Ok(rows
                    .into_iter()
                    .map(|r| format!("== {} ==\n{}", r.label, r.metrics.render_text()))
                    .collect::<Vec<_>>()
                    .join("\n")),
            }
        }
        "trace" => match arg(&toks, 1)? {
            "on" => {
                router.cp_trace_enable(true);
                Ok("trace on".to_string())
            }
            "off" => {
                router.cp_trace_enable(false);
                Ok("trace off".to_string())
            }
            "dump" => {
                let n = match toks.get(2) {
                    Some(t) => t
                        .parse()
                        .map_err(|_| PmgrError::Syntax(format!("bad count {t}")))?,
                    None => 16,
                };
                let events = router.cp_trace_dump(n);
                if events.is_empty() {
                    return Ok("no trace events".to_string());
                }
                Ok(events
                    .into_iter()
                    .map(|se| {
                        let e = se.event;
                        let origin = match se.shard {
                            Some(s) => format!("[shard {s}] "),
                            None => String::new(),
                        };
                        format!(
                            "{origin}#{} t={}ns [{}] {}",
                            e.seq,
                            e.now_ns,
                            e.category.label(),
                            e.detail
                        )
                    })
                    .collect::<Vec<_>>()
                    .join("\n"))
            }
            other => Err(PmgrError::Syntax(format!(
                "trace on|off|dump [n], got {other}"
            ))),
        },
        "info" => {
            let loaded = router.cp_loaded_plugins().join(", ");
            let rows = router.cp_stats_rows();
            let (s, f) = rows.first().map(|r| (r.data, r.flows)).unwrap_or_default();
            Ok(format!(
                "plugins: [{loaded}]; rx={} fwd={} flows(live={} hits={} misses={})",
                s.received, s.forwarded, f.live, f.hits, f.misses
            ))
        }
        other => Err(PmgrError::Syntax(format!("unknown command {other}"))),
    }
}

/// Run a multi-line configuration script; stops at the first error.
/// Returns the non-empty output lines.
pub fn run_script<C: ControlPlane>(router: &mut C, script: &str) -> Result<Vec<String>, PmgrError> {
    let mut out = Vec::new();
    for line in script.lines() {
        let o = run_command(router, line)?;
        if !o.is_empty() {
            out.push(o);
        }
    }
    Ok(out)
}

fn arg<'a>(toks: &[&'a str], i: usize) -> Result<&'a str, PmgrError> {
    toks.get(i)
        .copied()
        .ok_or_else(|| PmgrError::Syntax(format!("missing argument {i}")))
}

fn parse_gate(s: &str) -> Result<Gate, PmgrError> {
    Gate::parse(s).ok_or_else(|| PmgrError::Syntax(format!("unknown gate {s}")))
}

fn parse_iid(s: &str) -> Result<InstanceId, PmgrError> {
    s.parse::<u32>()
        .map(InstanceId)
        .map_err(|_| PmgrError::Syntax(format!("bad instance id {s}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plugins::register_builtin_factories;
    use crate::router::{Router, RouterConfig};

    fn router() -> Router {
        let mut r = Router::new(RouterConfig::default());
        register_builtin_factories(&mut r.loader);
        r
    }

    #[test]
    fn paper_section6_style_script() {
        // The flavour of the paper's §6.1 listing: modload + pmgr commands
        // configuring a DRR instance on an interface and binding a flow.
        let mut r = router();
        let out = run_script(
            &mut r,
            "# configure DRR on interface 1\n\
             load drr\n\
             create drr quantum=9180 limit=64\n\
             attach 1 drr 0\n\
             bind sched drr 0 <*, *, UDP, *, *, *>\n\
             route 2001:db8::/32 1\n\
             info\n",
        )
        .unwrap();
        assert_eq!(out[0], "loaded drr");
        assert_eq!(out[1], "drr instance 0");
        assert!(out[3].starts_with("filter "));
        assert!(out[5].contains("plugins: [drr]"));
    }

    #[test]
    fn unknown_command_and_missing_args() {
        let mut r = router();
        assert!(matches!(
            run_command(&mut r, "explode"),
            Err(PmgrError::Syntax(_))
        ));
        assert!(matches!(
            run_command(&mut r, "load"),
            Err(PmgrError::Syntax(_))
        ));
        assert!(matches!(
            run_command(&mut r, "load nonexistent"),
            Err(PmgrError::Plugin(_))
        ));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let mut r = router();
        assert_eq!(run_command(&mut r, "  # nothing ").unwrap(), "");
        assert_eq!(run_command(&mut r, "").unwrap(), "");
    }

    #[test]
    fn gate_toggle() {
        let mut r = router();
        assert!(r.gate_enabled(Gate::IpSecurity));
        run_command(&mut r, "gate ipsec off").unwrap();
        assert!(!r.gate_enabled(Gate::IpSecurity));
        run_command(&mut r, "gate ipsec on").unwrap();
        assert!(r.gate_enabled(Gate::IpSecurity));
    }

    #[test]
    fn msg_routing_with_and_without_instance() {
        let mut r = router();
        run_script(&mut r, "load stats\ncreate stats").unwrap();
        let out = run_command(&mut r, "msg stats 0 report").unwrap();
        assert!(out.contains("stats:"), "{out}");
        assert!(run_command(&mut r, "msg stats bogus").is_err());
    }

    #[test]
    fn show_commands() {
        let mut r = router();
        run_script(
            &mut r,
            "load stats
create stats
bind stats stats 0 <*, *, UDP, *, 53, *>",
        )
        .unwrap();
        let out = run_command(&mut r, "show filters stats").unwrap();
        assert!(out.contains("UDP") && out.contains("53"), "{out}");
        let out = run_command(&mut r, "show instances").unwrap();
        assert!(out.contains("stats 0:"), "{out}");
        assert_eq!(
            run_command(&mut r, "show filters fw").unwrap(),
            "no filters at gate firewall"
        );
        assert!(run_command(&mut r, "show bogus").is_err());
    }

    #[test]
    fn unbind_and_free() {
        let mut r = router();
        run_script(&mut r, "load firewall\ncreate firewall action=deny").unwrap();
        let out = run_command(&mut r, "bind fw firewall 0 <10.0.0.0/8, *, *, *, *, *>").unwrap();
        let fid: u64 = out.strip_prefix("filter ").unwrap().parse().unwrap();
        run_command(&mut r, &format!("unbind fw firewall {fid}")).unwrap();
        run_command(&mut r, "free firewall 0").unwrap();
        run_command(&mut r, "unload firewall").unwrap();
    }

    #[test]
    fn stats_command_single_router() {
        let mut r = router();
        let out = run_command(&mut r, "stats").unwrap();
        assert!(out.starts_with("total: rx=0 fwd=0"), "{out}");
        assert!(out.contains("flows(live=0"), "{out}");
    }

    #[test]
    fn metrics_command_single_router() {
        let mut r = router();
        let out = run_command(&mut r, "metrics").unwrap();
        assert!(out.starts_with("== total =="), "{out}");
        let out = run_command(&mut r, "metrics json").unwrap();
        assert!(out.starts_with("{\"merged\":{"), "{out}");
        assert!(out.contains("\"gates\""), "{out}");
        // Single router: no per-shard breakdown.
        assert!(!out.contains("\"shards\""), "{out}");
        assert!(run_command(&mut r, "metrics bogus").is_err());
    }

    #[test]
    fn shard_commands_on_single_router() {
        // The single-threaded router has no shards: status is an empty
        // (informative) answer, restart/kill are plugin errors.
        let mut r = router();
        assert_eq!(
            run_command(&mut r, "shards").unwrap(),
            "no data-plane shards (single-threaded router)"
        );
        assert!(matches!(
            run_command(&mut r, "shard restart 0"),
            Err(PmgrError::Plugin(_))
        ));
        assert!(matches!(
            run_command(&mut r, "shard kill 0"),
            Err(PmgrError::Plugin(_))
        ));
        assert!(run_command(&mut r, "shard bogus 0").is_err());
        assert!(run_command(&mut r, "shard restart x").is_err());
    }

    #[test]
    fn shard_commands_on_parallel_router() {
        use crate::dataplane::{ParallelRouter, ParallelRouterConfig};
        use crate::loader::PluginLoader;

        let mut template = PluginLoader::new();
        register_builtin_factories(&mut template);
        let mut pr = ParallelRouter::new(
            ParallelRouterConfig {
                shards: 2,
                ..ParallelRouterConfig::default()
            },
            &template,
        );
        run_script(&mut pr, "load firewall\ncreate firewall").unwrap();

        let out = run_command(&mut pr, "shards").unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2, "{out}");
        assert!(lines[0].starts_with("shard 0: healthy"), "{out}");
        assert!(lines[1].starts_with("shard 1: healthy"), "{out}");

        // Operator restart rebuilds from the journal and reports it.
        let out = run_command(&mut pr, "shard restart 1").unwrap();
        assert!(out.contains("shard 1 restarted"), "{out}");
        assert!(out.contains("journal commands replayed"), "{out}");
        let out = run_command(&mut pr, "shards").unwrap();
        assert!(out.contains("shard 1: degraded restarts=1"), "{out}");

        assert!(matches!(
            run_command(&mut pr, "shard restart 7"),
            Err(PmgrError::Plugin(_))
        ));
    }

    #[test]
    fn devices_command_without_io_plane() {
        // Bare data planes have no bound devices; the command still
        // answers (the informative empty reply, like `shards`).
        let mut r = router();
        assert_eq!(
            run_command(&mut r, "devices").unwrap(),
            "no bound devices (data plane not under an I/O plane)"
        );
    }

    #[test]
    fn trace_commands() {
        let mut r = router();
        assert_eq!(
            run_command(&mut r, "trace dump").unwrap(),
            "no trace events"
        );
        assert_eq!(run_command(&mut r, "trace on").unwrap(), "trace on");
        assert!(r.tracer().enabled());
        // A filter installation is a traced event.
        run_script(
            &mut r,
            "load stats\ncreate stats\nbind stats stats 0 <*, *, UDP, *, 53, *>",
        )
        .unwrap();
        let out = run_command(&mut r, "trace dump 8").unwrap();
        assert!(out.contains("[filter] filter installed"), "{out}");
        assert_eq!(run_command(&mut r, "trace off").unwrap(), "trace off");
        assert!(!r.tracer().enabled());
        assert!(run_command(&mut r, "trace bogus").is_err());
        assert!(run_command(&mut r, "trace dump bogus").is_err());
    }
}
