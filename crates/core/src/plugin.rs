//! The plugin model (paper §4).
//!
//! Each plugin is identified by a 32-bit **plugin code**: the upper 16
//! bits name the plugin *type* (which corresponds one-to-one with a gate),
//! the lower 16 bits distinguish implementations of the same type. A
//! loaded plugin must answer the standardized message set
//! ([`crate::message::PluginMsg`]); instances are specific run-time
//! configurations of a plugin that get bound to flows through filters.

use rp_packet::mbuf::FlowIndex;
use rp_packet::{FlowTuple, Mbuf};
use std::any::Any;
use std::fmt;
use std::sync::Arc;

use crate::gate::Gate;

/// Plugin type — the upper 16 bits of the plugin code. "There is a direct
/// correspondence between a gate in our architecture and the plugin type."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PluginType(pub u16);

impl PluginType {
    /// IPv6 option processing plugins.
    pub const IPV6_OPTS: PluginType = PluginType(1);
    /// IP security (AH/ESP) plugins.
    pub const IP_SECURITY: PluginType = PluginType(2);
    /// Packet scheduling plugins.
    pub const PACKET_SCHED: PluginType = PluginType(3);
    /// Best-matching-prefix plugins (used inside the AIU's classifier).
    pub const BMP: PluginType = PluginType(4);
    /// Routing plugins (the paper's planned L4-switching extension).
    pub const ROUTING: PluginType = PluginType(5);
    /// Statistics-gathering plugins (network monitoring).
    pub const STATS: PluginType = PluginType(6);
    /// Congestion-control plugins (RED).
    pub const CONGESTION: PluginType = PluginType(7);
    /// Firewall plugins.
    pub const FIREWALL: PluginType = PluginType(8);

    /// The gate packets of this plugin type are dispatched at, if the type
    /// has a data-path gate (BMP plugins are called inside the classifier,
    /// not at a gate).
    pub fn gate(self) -> Option<Gate> {
        match self {
            PluginType::IPV6_OPTS => Some(Gate::Ipv6Options),
            PluginType::IP_SECURITY => Some(Gate::IpSecurity),
            PluginType::PACKET_SCHED => Some(Gate::Scheduling),
            PluginType::ROUTING => Some(Gate::Routing),
            PluginType::STATS => Some(Gate::Stats),
            PluginType::FIREWALL => Some(Gate::Firewall),
            PluginType::CONGESTION => Some(Gate::Scheduling),
            _ => None,
        }
    }
}

/// Full 32-bit plugin code: `type << 16 | implementation`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PluginCode(pub u32);

impl PluginCode {
    /// Compose from type and implementation number.
    pub fn new(ty: PluginType, implementation: u16) -> Self {
        PluginCode((u32::from(ty.0) << 16) | u32::from(implementation))
    }

    /// The plugin type (upper 16 bits).
    pub fn plugin_type(self) -> PluginType {
        PluginType((self.0 >> 16) as u16)
    }

    /// The implementation number (lower 16 bits).
    pub fn implementation(self) -> u16 {
        self.0 as u16
    }
}

impl fmt::Display for PluginCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}", self.0)
    }
}

/// Identifier of a plugin instance within its plugin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstanceId(pub u32);

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// What a plugin instance tells the IP core to do with the packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PluginAction {
    /// Continue along the data path.
    Continue,
    /// The instance took ownership (e.g. queued it for scheduling); the
    /// core stops processing this mbuf.
    Consumed,
    /// Drop the packet.
    Drop,
}

/// Context handed to an instance along with the packet at a gate.
pub struct PacketCtx<'a> {
    /// The gate issuing the call.
    pub gate: Gate,
    /// Virtual time (ns).
    pub now_ns: u64,
    /// The packet's flow index (always set — gates run after
    /// classification).
    pub fix: FlowIndex,
    /// The filter this flow's binding at the current gate derives from
    /// (plugins use it to look up per-filter configuration such as DRR
    /// weights — the paper's "opaque pointer … to plugin specific (hard)
    /// state associated with installed filters").
    pub filter: Option<rp_classifier::FilterId>,
    /// The plugin's private per-flow soft state slot in the flow record
    /// (the second pointer of the paper's per-gate pointer pair). `Send`
    /// because flow records may live on a data-plane worker shard.
    pub soft_state: &'a mut Option<Box<dyn Any + Send>>,
    /// Processing cost the instance charges for this call, in netsim
    /// clock units (ns). Starts at 0; the supervisor compares it against
    /// [`crate::supervisor::FaultPolicy::packet_budget_ns`] after the
    /// call, so a modelled stall is a countable fault instead of a hang.
    pub cost_ns: u64,
}

/// A plugin *instance*: the run-time object bound to flows and called at
/// gates. Shared (`Arc`) between the PCU's instance table and every flow
/// record bound to it, so stateful instances use interior mutability.
pub trait PluginInstance: Send + Sync {
    /// Process one packet. The main packet-processing function called at
    /// the gate (paper §4, `create_instance`).
    fn handle_packet(&self, mbuf: &mut Mbuf, ctx: &mut PacketCtx<'_>) -> PluginAction;

    /// Called by the AIU when a flow bound to this instance is removed
    /// from the flow table (entry eviction callback, §4). Receives the
    /// flow key and the instance's soft state for that flow.
    fn flow_unbound(&self, _key: &FlowTuple, _soft_state: Option<Box<dyn Any + Send>>) {}

    /// Called when a filter bound to this instance is removed from a
    /// filter table.
    fn filter_unbound(&self, _filter: rp_classifier::FilterId) {}

    /// Scheduler instances additionally expose a dequeue side; the
    /// interface driver uses this to drain the egress queue.
    fn as_scheduler(&self) -> Option<&dyn SchedulerInstance> {
        None
    }

    /// Human-readable instance status (for `pmgr info`).
    fn describe(&self) -> String {
        "(no description)".to_string()
    }
}

/// Extension trait for packet-scheduling instances: the gate enqueues via
/// [`PluginInstance::handle_packet`] (returning
/// [`PluginAction::Consumed`]); the interface drains via this trait.
pub trait SchedulerInstance: Send + Sync {
    /// Next packet to transmit on the interface, if any.
    fn dequeue(&self, now_ns: u64) -> Option<Mbuf>;

    /// Queued packet count.
    fn backlog(&self) -> usize;
}

/// Shared handle to an instance — the value type bound into the AIU.
pub type InstanceRef = Arc<dyn PluginInstance>;

/// Errors surfaced by plugin and PCU operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PluginError {
    /// No plugin registered under that name.
    NoSuchPlugin(String),
    /// No such instance.
    NoSuchInstance(InstanceId),
    /// The instance configuration string was rejected.
    BadConfig(String),
    /// The plugin does not understand a plugin-specific message.
    UnknownMessage(String),
    /// The operation conflicts with current state (e.g. unloading a plugin
    /// with live instances).
    Busy(String),
    /// Filter-table error.
    Filter(String),
}

impl fmt::Display for PluginError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PluginError::NoSuchPlugin(n) => write!(f, "no such plugin: {n}"),
            PluginError::NoSuchInstance(i) => write!(f, "no such instance: {i}"),
            PluginError::BadConfig(m) => write!(f, "bad instance config: {m}"),
            PluginError::UnknownMessage(m) => write!(f, "unknown message: {m}"),
            PluginError::Busy(m) => write!(f, "operation refused: {m}"),
            PluginError::Filter(m) => write!(f, "filter error: {m}"),
        }
    }
}

impl std::error::Error for PluginError {}

/// A loadable plugin module: the callback object registered with the PCU
/// when the module is loaded (the paper's `modload` callback).
pub trait Plugin: Send {
    /// Short unique name (what `pmgr` addresses).
    fn name(&self) -> &str;

    /// The plugin's 32-bit code.
    fn code(&self) -> PluginCode;

    /// `create_instance`: allocate a configured instance. The config
    /// string is plugin-specific (e.g. `"iface=1 quantum=1500"` for DRR).
    fn create_instance(&mut self, config: &str) -> Result<InstanceRef, PluginError>;

    /// `free_instance` notification; the PCU removes its own references.
    fn free_instance(&mut self, _instance: &InstanceRef) {}

    /// Plugin-specific messages (paper §4: "plugin developers can define
    /// an arbitrary number of plugin specific messages").
    fn custom_message(
        &mut self,
        _instance: Option<&InstanceRef>,
        name: &str,
        _args: &str,
    ) -> Result<String, PluginError> {
        Err(PluginError::UnknownMessage(name.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_packing() {
        let c = PluginCode::new(PluginType::PACKET_SCHED, 7);
        assert_eq!(c.0, 0x0003_0007);
        assert_eq!(c.plugin_type(), PluginType::PACKET_SCHED);
        assert_eq!(c.implementation(), 7);
        assert_eq!(c.to_string(), "0x00030007");
    }

    #[test]
    fn type_gate_mapping() {
        assert_eq!(PluginType::IPV6_OPTS.gate(), Some(Gate::Ipv6Options));
        assert_eq!(PluginType::PACKET_SCHED.gate(), Some(Gate::Scheduling));
        assert_eq!(PluginType::BMP.gate(), None);
    }
}
