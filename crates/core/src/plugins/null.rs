//! The empty plugin: does nothing and returns immediately.
//!
//! This is the instrument behind the paper's Table 3 row "NetBSD with our
//! Plugin Architecture": "We installed three gates which called empty
//! plugins" — it measures the pure framework overhead (flow detection +
//! indirect calls) with zero useful work.

use crate::plugin::{
    InstanceRef, PacketCtx, Plugin, PluginAction, PluginCode, PluginError, PluginInstance,
    PluginType,
};
use rp_packet::Mbuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An instance that counts invocations and continues.
#[derive(Default)]
pub struct NullInstance {
    calls: AtomicU64,
}

impl NullInstance {
    /// Number of times the instance was called.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }
}

impl PluginInstance for NullInstance {
    fn handle_packet(&self, _mbuf: &mut Mbuf, _ctx: &mut PacketCtx<'_>) -> PluginAction {
        self.calls.fetch_add(1, Ordering::Relaxed);
        PluginAction::Continue
    }

    fn describe(&self) -> String {
        format!("null: {} calls", self.calls())
    }
}

/// The empty plugin module.
#[derive(Default)]
pub struct NullPlugin {
    _priv: (),
}

impl Plugin for NullPlugin {
    fn name(&self) -> &str {
        "null"
    }

    fn code(&self) -> PluginCode {
        PluginCode::new(PluginType::STATS, 0)
    }

    fn create_instance(&mut self, _config: &str) -> Result<InstanceRef, PluginError> {
        Ok(Arc::new(NullInstance::default()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;
    use rp_packet::mbuf::FlowIndex;

    #[test]
    fn counts_calls() {
        let inst = NullInstance::default();
        let mut m = Mbuf::new(vec![0u8; 20], 0);
        let mut soft = None;
        let mut ctx = PacketCtx {
            gate: Gate::Stats,
            now_ns: 0,
            fix: FlowIndex(0),
            filter: None,
            soft_state: &mut soft,
            cost_ns: 0,
        };
        assert_eq!(inst.handle_packet(&mut m, &mut ctx), PluginAction::Continue);
        assert_eq!(inst.handle_packet(&mut m, &mut ctx), PluginAction::Continue);
        assert_eq!(inst.calls(), 2);
        assert!(inst.describe().contains("2 calls"));
    }
}
